module nitro

go 1.24
