package nitro_test

// Public-facade coverage for the observability layer: decision tracing,
// model explanation, per-variant latency histograms, and the live telemetry
// endpoint — the end-to-end path a deployment would wire up.

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"nitro"
)

// tunedToy builds and tunes the toy fixture so the model-dependent
// observability paths (explanations, traces with scores) are exercised.
func tunedToy(t testing.TB) *nitro.CodeVariant[toy] {
	t.Helper()
	cv := buildToy(t, nitro.DefaultPolicy("toy"))
	if _, err := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm", GridSearch: true}).Tune(toyInputs()); err != nil {
		t.Fatal(err)
	}
	return cv
}

// TestPublicAPITracing enables Always-mode tracing through the facade and
// checks the captured decision against the call it explains.
func TestPublicAPITracing(t *testing.T) {
	cv := tunedToy(t)
	tracer := cv.EnableTracing(nitro.TracePolicy{Mode: nitro.TraceAlways})

	var seen []nitro.DecisionTrace
	tracer.SetSink(func(tr nitro.DecisionTrace) { seen = append(seen, tr) })

	_, chosen, err := cv.Call(toy{x: 18})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("captured %d traces, want 1", len(seen))
	}
	tr := seen[0]
	if tr.Chosen != chosen {
		t.Errorf("trace chose %q, call chose %q", tr.Chosen, chosen)
	}
	if tr.Function != "toy" || len(tr.RawFeatures) != 1 || tr.RawFeatures[0] != 18 {
		t.Errorf("trace = %+v", tr)
	}
	if len(tr.Scores) == 0 || len(tr.Ranked) == 0 {
		t.Errorf("trace missing model explanation: %+v", tr)
	}
	if rec := tracer.Recent(10); len(rec) != 1 || rec[0].Chosen != chosen {
		t.Errorf("Recent = %+v", rec)
	}

	cv.DisableTracing()
	if _, _, err := cv.Call(toy{x: 2}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Error("disabled tracer still captured")
	}
}

// TestPublicAPIExplain: Model.Explain through the facade must agree with the
// dispatch decision for the same input.
func TestPublicAPIExplain(t *testing.T) {
	cv := tunedToy(t)
	m, ok := cv.Context().Model("toy")
	if !ok {
		t.Fatal("no model installed")
	}
	var ex nitro.Explanation = m.Explain([]float64{18})
	_, chosen, err := cv.Call(toy{x: 18})
	if err != nil {
		t.Fatal(err)
	}
	if got := cv.VariantNames()[ex.Predicted]; got != chosen {
		t.Errorf("Explain predicted %q, Call chose %q", got, chosen)
	}
	if len(ex.Ranked) == 0 || ex.Ranked[0] != ex.Predicted {
		t.Errorf("ranked order %v inconsistent with predicted %d", ex.Ranked, ex.Predicted)
	}
}

// TestPublicAPIMetricsEndpoint wires the full registry — deployment
// counters, tracer gauges, latency histograms — and scrapes the live
// endpoint over HTTP.
func TestPublicAPIMetricsEndpoint(t *testing.T) {
	cv := tunedToy(t)
	cx := cv.Context()
	cx.EnableLatencyHistograms("toy")
	tracer := cv.EnableTracing(nitro.TracePolicy{Mode: nitro.TraceSampled, SamplePeriod: 2})

	for _, in := range toyInputs() {
		if _, _, err := cv.Call(in); err != nil {
			t.Fatal(err)
		}
	}
	st := cx.Stats("toy")
	if len(st.Latency) == 0 {
		t.Fatal("no latency summaries with histograms enabled")
	}
	for name, s := range st.Latency {
		if s.Count == 0 || s.P50 <= 0 {
			t.Errorf("variant %q summary %+v", name, s)
		}
	}

	reg := nitro.NewMetricsRegistry()
	reg.Register(cx.Collector())
	reg.Register(tracer.Collector("toy"))
	reg.RegisterVar("call_stats:toy", func() any { return cx.Stats("toy") })

	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`nitro_calls_total{function="toy"} 21`,
		`nitro_variant_calls_total{function="toy",variant="low"}`,
		`nitro_variant_value_seconds_bucket{function="toy",variant="high",le="+Inf"}`,
		`nitro_traces_recorded_total{function="toy"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	vars := get("/vars")
	for _, want := range []string{`"call_stats:toy"`, `"per_variant"`, `"latency"`} {
		if !strings.Contains(vars, want) {
			t.Errorf("/vars missing %s:\n%s", want, vars)
		}
	}
	if get("/healthz") != "ok\n" {
		t.Error("/healthz not ok")
	}
}
