package nitro_test

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// experiment index), plus ablation benches for the design choices DESIGN.md
// flags (classifier kind, grid search, active-learning strategy, constraint
// checking, feature-evaluation mode). Benches run on reduced-scale corpora
// so `go test -bench=.` stays tractable; cmd/nitro-experiments regenerates
// the full-scale numbers. Quality metrics (mean % of exhaustive-search
// performance) are attached to the benchmark output via ReportMetric.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/datasets"
	"nitro/internal/experiments"
	"nitro/internal/gpusim"
	"nitro/internal/ml"
)

// benchCfg is the reduced corpus configuration shared by every bench.
func benchCfg() datasets.Config {
	return datasets.Config{Seed: 42, Scale: 0.2, TrainCount: 24, TestCount: 36}
}

func benchOpts() experiments.Options {
	return experiments.Options{
		Cfg:   benchCfg(),
		Train: autotuner.TrainOptions{Classifier: "svm"},
	}
}

var (
	suiteOnce   sync.Once
	benchSuites []*autotuner.Suite
	suiteErr    error
)

func suites(b *testing.B) []*autotuner.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		benchSuites, suiteErr = experiments.BuildSuites(benchOpts(), gpusim.Fermi())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return benchSuites
}

// BenchmarkFig4Setup measures corpus construction: generating every input
// and exhaustively executing every code variant on it (the paper's training
// data collection cost). Variant labelling fans out over all cores; the
// reported "speedup" metric compares against a serial (Parallelism=1) run in
// the same process. Corpora are bit-identical at every worker count.
func BenchmarkFig4Setup(b *testing.B) {
	dev := gpusim.Fermi()
	serialCfg := benchCfg()
	serialCfg.Parallelism = 1
	start := time.Now()
	if _, err := datasets.All(serialCfg, dev); err != nil {
		b.Fatal(err)
	}
	serialDur := time.Since(start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datasets.All(benchCfg(), dev); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(serialDur)/(float64(b.Elapsed())/float64(b.N)), "speedup")
}

// BenchmarkFig4SetupSerial is the one-worker baseline of BenchmarkFig4Setup.
func BenchmarkFig4SetupSerial(b *testing.B) {
	dev := gpusim.Fermi()
	cfg := benchCfg()
	cfg.Parallelism = 1
	for i := 0; i < b.N; i++ {
		if _, err := datasets.All(cfg, dev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5VariantVsBest measures the per-variant performance analysis.
func BenchmarkFig5VariantVsBest(b *testing.B) {
	ss := suites(b)
	b.ResetTimer()
	var nitro float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(ss, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		nitro = 0
		for _, r := range rows {
			nitro += r.NitroPerf
		}
		nitro /= float64(len(rows))
	}
	b.ReportMetric(100*nitro, "%ofBest")
}

// BenchmarkFig6NitroVsExhaustive measures the headline train+evaluate
// pipeline over all five benchmarks.
func BenchmarkFig6NitroVsExhaustive(b *testing.B) {
	ss := suites(b)
	dev := gpusim.Fermi()
	b.ResetTimer()
	var avg, min float64
	for i := 0; i < b.N; i++ {
		h, err := experiments.Headline(ss, benchOpts(), dev)
		if err != nil {
			b.Fatal(err)
		}
		avg, min = h.AvgPerf, h.MinPerf
	}
	b.ReportMetric(100*avg, "%ofBest")
	b.ReportMetric(100*min, "min%ofBest")
}

// BenchmarkFig7IncrementalTuning measures the Best-vs-Second-Best
// active-learning loop (15 iterations over every suite).
func BenchmarkFig7IncrementalTuning(b *testing.B) {
	ss := suites(b)
	b.ResetTimer()
	var final float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig7(ss, benchOpts(), 15)
		if err != nil {
			b.Fatal(err)
		}
		final = 0
		for _, c := range curves {
			if c.FullPerf > 0 {
				final += c.Curve[len(c.Curve)-1] / c.FullPerf
			}
		}
		final /= float64(len(curves))
	}
	b.ReportMetric(100*final, "%ofFullTrain")
}

// BenchmarkFig8FeatureOverhead measures the feature-prefix retraining study.
func BenchmarkFig8FeatureOverhead(b *testing.B) {
	ss := suites(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(ss, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainEval trains with the given options on every suite and reports
// the mean test performance.
func benchTrainEval(b *testing.B, opts autotuner.TrainOptions) {
	b.Helper()
	ss := suites(b)
	b.ResetTimer()
	var perf float64
	for i := 0; i < b.N; i++ {
		perf = 0
		for _, s := range ss {
			model, _, err := autotuner.Train(s.Train, opts)
			if err != nil {
				b.Fatal(err)
			}
			perf += autotuner.Evaluate(model, s, s.Test).MeanPerf
		}
		perf /= float64(len(ss))
	}
	b.ReportMetric(100*perf, "%ofBest")
}

// Ablation: classifier kind (the paper's pluggable-classifier option).
func BenchmarkAblationClassifierSVM(b *testing.B) {
	benchTrainEval(b, autotuner.TrainOptions{Classifier: "svm"})
}

func BenchmarkAblationClassifierKNN(b *testing.B) {
	benchTrainEval(b, autotuner.TrainOptions{Classifier: "knn"})
}

func BenchmarkAblationClassifierTree(b *testing.B) {
	benchTrainEval(b, autotuner.TrainOptions{Classifier: "tree"})
}

// Ablation: cross-validated grid search vs libSVM-style defaults.
func BenchmarkAblationGridSearchOn(b *testing.B) {
	benchTrainEval(b, autotuner.TrainOptions{
		Classifier: "svm", GridSearch: true,
		Grid: ml.GridConfig{CValues: []float64{1, 32}, GammaValues: []float64{0.1, 1}, Folds: 3},
	})
}

func BenchmarkAblationGridSearchOff(b *testing.B) {
	benchTrainEval(b, autotuner.TrainOptions{Classifier: "svm"})
}

// benchIncremental runs incremental tuning with the given strategy on every
// suite and reports the mean final performance.
func benchIncremental(b *testing.B, strat ml.QueryStrategy) {
	b.Helper()
	ss := suites(b)
	b.ResetTimer()
	var perf float64
	for i := 0; i < b.N; i++ {
		perf = 0
		for _, s := range ss {
			res, err := autotuner.IncrementalTune(s, autotuner.IncrementalOptions{
				TrainOptions:  autotuner.TrainOptions{Classifier: "svm"},
				MaxIterations: 10,
				Strategy:      strat,
			}, s)
			if err != nil {
				b.Fatal(err)
			}
			perf += res.PerfCurve[len(res.PerfCurve)-1]
		}
		perf /= float64(len(ss))
	}
	b.ReportMetric(100*perf, "%ofBest")
}

// Ablation: BvSB active learning vs random sampling.
func BenchmarkAblationActiveLearningBvSB(b *testing.B) {
	benchIncremental(b, ml.BvSBStrategy{})
}

func BenchmarkAblationActiveLearningRandom(b *testing.B) {
	benchIncremental(b, ml.RandomStrategy{Rng: rand.New(rand.NewSource(1))})
}

// Ablation: constraint checking on vs off for SpMV. With constraints off,
// a DIA/ELL pick on an incompatible matrix is scored as a failed execution
// (performance 0), quantifying the paper's misprediction penalty.
func benchConstraints(b *testing.B, enabled bool) {
	b.Helper()
	cfg := benchCfg()
	dev := gpusim.Fermi()
	s, err := datasets.SpMV(cfg, dev)
	if err != nil {
		b.Fatal(err)
	}
	if !enabled {
		// Disabling deployment-time constraints means no fallback: emulate
		// by making the default variant infeasible so mispredictions onto
		// vetoed variants score zero.
		s = &autotuner.Suite{
			Name:         s.Name,
			VariantNames: s.VariantNames,
			FeatureNames: s.FeatureNames,
			// An out-of-range default disables the fallback path.
			DefaultVariant: -1,
			Train:          s.Train,
			Test:           s.Test,
		}
	}
	// A degenerate model that always predicts DIA exercises the mechanism
	// directly: every DIA-infeasible matrix is a misprediction that only the
	// constraint fallback can save. The gap between the two benches is the
	// paper's misprediction penalty.
	ds := &ml.Dataset{}
	ds.Append(s.Train[0].Features, 1) // label 1 = DIA
	alwaysDIA := ml.NewKNN(1)
	if err := alwaysDIA.Fit(ds); err != nil {
		b.Fatal(err)
	}
	model := &ml.Model{Classifier: alwaysDIA}
	b.ResetTimer()
	var perf float64
	for i := 0; i < b.N; i++ {
		perf = autotuner.Evaluate(model, s, s.Test).MeanPerf
	}
	b.ReportMetric(100*perf, "%ofBest")
}

func BenchmarkAblationConstraintsOn(b *testing.B)  { benchConstraints(b, true) }
func BenchmarkAblationConstraintsOff(b *testing.B) { benchConstraints(b, false) }

func BenchmarkAblationClassifierLogistic(b *testing.B) {
	benchTrainEval(b, autotuner.TrainOptions{Classifier: "logistic"})
}
