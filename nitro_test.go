package nitro_test

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"nitro"
)

// toy is a minimal tunable-function input for exercising the public facade.
type toy struct{ x float64 }

func buildToy(t testing.TB, policy nitro.TuningPolicy) *nitro.CodeVariant[toy] {
	t.Helper()
	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[toy](cx, policy)
	cv.AddVariant("low", func(in toy) float64 { return 1 + in.x })
	cv.AddVariant("high", func(in toy) float64 { return 21 - in.x })
	if err := cv.SetDefault("low"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(nitro.Feature[toy]{
		Name: "x",
		Eval: func(in toy) float64 { return in.x },
		Cost: func(toy) float64 { return 1e-7 },
	})
	return cv
}

func toyInputs() []toy {
	var out []toy
	for x := 0.0; x <= 20; x++ {
		out = append(out, toy{x: x})
	}
	return out
}

// TestPublicAPIEndToEnd drives the whole facade: register, tune, persist,
// reload, adaptively dispatch.
func TestPublicAPIEndToEnd(t *testing.T) {
	cv := buildToy(t, nitro.DefaultPolicy("toy"))
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm", GridSearch: true})
	rep, err := tuner.Tune(toyInputs())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainAccuracy < 0.9 {
		t.Errorf("training accuracy %v", rep.TrainAccuracy)
	}
	if _, chosen, _ := cv.Call(toy{x: 2}); chosen != "low" {
		t.Errorf("x=2 chose %q", chosen)
	}
	if _, chosen, _ := cv.Call(toy{x: 18}); chosen != "high" {
		t.Errorf("x=18 chose %q", chosen)
	}

	path := filepath.Join(t.TempDir(), "toy.json")
	if err := cv.Context().SaveModel("toy", path); err != nil {
		t.Fatal(err)
	}
	cx2 := nitro.NewContext()
	if err := cx2.LoadModel("toy", path); err != nil {
		t.Fatal(err)
	}
	cv2 := nitro.NewCodeVariant[toy](cx2, nitro.DefaultPolicy("toy"))
	cv2.AddVariant("low", func(in toy) float64 { return 1 + in.x })
	cv2.AddVariant("high", func(in toy) float64 { return 21 - in.x })
	_ = cv2.SetDefault("low")
	cv2.AddInputFeature(nitro.Feature[toy]{Name: "x", Eval: func(in toy) float64 { return in.x }})
	if _, chosen, _ := cv2.Call(toy{x: 18}); chosen != "high" {
		t.Errorf("reloaded model chose %q", chosen)
	}
}

// TestPublicAPIConstraints verifies deployment-time constraint fallback
// through the facade.
func TestPublicAPIConstraints(t *testing.T) {
	cv := buildToy(t, nitro.DefaultPolicy("toy"))
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{})
	if _, err := tuner.Tune(toyInputs()); err != nil {
		t.Fatal(err)
	}
	if err := cv.AddConstraint("high", func(in toy) bool { return in.x < 15 }); err != nil {
		t.Fatal(err)
	}
	if _, chosen, _ := cv.Call(toy{x: 19}); chosen != "low" {
		t.Errorf("constraint should force fallback, chose %q", chosen)
	}
	stats := cv.Context().Stats("toy")
	if stats.DefaultFallbacks == 0 {
		t.Error("fallback not recorded")
	}
}

// TestPublicAPIAsyncFeatureEval exercises the FixInputs path.
func TestPublicAPIAsyncFeatureEval(t *testing.T) {
	p := nitro.DefaultPolicy("toy")
	p.AsyncFeatureEval = true
	p.ParallelFeatureEval = true
	cv := buildToy(t, p)
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{})
	if _, err := tuner.Tune(toyInputs()); err != nil {
		t.Fatal(err)
	}
	f := cv.FixInputs(toy{x: 18})
	if _, chosen, err := f.Call(); err != nil || chosen != "high" {
		t.Errorf("async call: %q %v", chosen, err)
	}
	// The future API also works through CallFixed, and handles are
	// single-shot.
	f2 := cv.FixInputs(toy{x: 2})
	if _, chosen, err := cv.CallFixed(f2); err != nil || chosen != "low" {
		t.Errorf("async call 2: %q %v", chosen, err)
	}
	if _, _, err := cv.CallFixed(f2); err == nil {
		t.Error("reusing a consumed Fixed handle should error")
	}
}

// TestPublicAPIConcurrentDispatch shares one tuned CodeVariant across
// goroutines: batched CallConcurrent, per-call futures and a mid-traffic
// model hot swap, with statistics that account for every call.
func TestPublicAPIConcurrentDispatch(t *testing.T) {
	cv := buildToy(t, nitro.DefaultPolicy("toy"))
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{})
	if _, err := tuner.Tune(toyInputs()); err != nil {
		t.Fatal(err)
	}
	batch := make([]toy, 64)
	for i := range batch {
		batch[i] = toy{x: float64(i % 21)}
	}
	results := cv.CallConcurrent(batch, 0)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("input %d: %v", i, r.Err)
		}
		want := "low"
		if batch[i].x > 10 {
			want = "high"
		}
		if r.Variant != want {
			t.Errorf("input %d (x=%v): chose %q, want %q", i, batch[i].x, r.Variant, want)
		}
	}
	// Hot-swap the model mid-traffic: reinstalling is just a SetModel.
	m, ok := cv.Context().Model("toy")
	if !ok {
		t.Fatal("tuned model missing")
	}
	cv.Context().SetModel("toy", m)
	if _, chosen, err := cv.Call(toy{x: 18}); err != nil || chosen != "high" {
		t.Errorf("post-swap call: %q %v", chosen, err)
	}
	if st := cv.Context().Stats("toy"); st.Calls != len(batch)+1 {
		t.Errorf("stats counted %d calls, want %d", st.Calls, len(batch)+1)
	}
}

// TestPublicAPIOnlineAdaptation drives the online adaptation loop through
// the facade: tune offline, flip the variant cost surfaces mid-traffic (a
// concept drift), and watch the engine detect it, retrain on its explored
// observations, and hot-swap a v2 model that restores correct selection.
func TestPublicAPIOnlineAdaptation(t *testing.T) {
	var drifted atomic.Bool
	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[toy](cx, nitro.DefaultPolicy("adaptive-toy"))
	cv.AddVariant("low", func(in toy) float64 {
		if drifted.Load() {
			return 21 - in.x
		}
		return 1 + in.x
	})
	cv.AddVariant("high", func(in toy) float64 {
		if drifted.Load() {
			return 1 + in.x
		}
		return 21 - in.x
	})
	if err := cv.SetDefault("low"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(nitro.Feature[toy]{Name: "x", Eval: func(in toy) float64 { return in.x }})
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm", Seed: 1})
	if _, err := tuner.Tune(toyInputs()); err != nil {
		t.Fatal(err)
	}

	pol := nitro.AdaptPolicy{
		SamplePeriod:      1,
		ExploreRate:       1,
		ReservoirSize:     128,
		Window:            10,
		MismatchThreshold: 0.5,
		RegretThreshold:   2.0,
		DriftWindows:      2,
		RecoveryWindows:   2,
		CooldownWindows:   2,
		MinRetrainSamples: 20,
		Retrain:           nitro.RetrainOptions{TrainOptions: nitro.TrainOptions{Classifier: "svm", Seed: 1}},
		Seed:              7,
		Synchronous:       true,
	}
	eng, err := nitro.EnableAdaptation(cv, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	serveCycle := func(n int) {
		ins := toyInputs()
		for i := 0; i < n; i++ {
			if _, _, err := cv.Call(ins[i%len(ins)]); err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
		}
	}
	serveCycle(30) // healthy windows
	if st := eng.Stats(); st.Drifts != 0 || st.State != "healthy" {
		t.Fatalf("healthy traffic triggered adaptation: %v", st)
	}
	drifted.Store(true)
	serveCycle(60) // detect, retrain, swap, recover

	st := eng.Stats()
	if st.Drifts != 1 || st.Retrains != 1 || st.Swaps != 1 || st.Rollbacks != 0 {
		t.Fatalf("drift loop: %v", st)
	}
	if st.ModelVersion != 2 {
		t.Errorf("installed model version = %d, want 2", st.ModelVersion)
	}
	// The swapped model must now select correctly on the drifted surfaces.
	if _, chosen, _ := cv.Call(toy{x: 2}); chosen != "high" {
		t.Errorf("post-swap x=2 chose %q, want high", chosen)
	}
	if _, chosen, _ := cv.Call(toy{x: 18}); chosen != "low" {
		t.Errorf("post-swap x=18 chose %q, want low", chosen)
	}

	// AdaptStats serializes to the stable snake_case wire form and round-trips.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"model_version":2`, `"state":"healthy"`, `"swaps":1`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("AdaptStats JSON missing %s: %s", key, raw)
		}
	}
	var back nitro.AdaptStats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Errorf("AdaptStats round trip: %v != %v", back, st)
	}
	if !strings.Contains(st.String(), "state=healthy") {
		t.Errorf("AdaptStats.String() = %q", st.String())
	}
}

// Ablation benches: feature-evaluation modes (serial, parallel, async) on a
// live code variant with several features.
func benchFeatureMode(b *testing.B, parallel, async bool) {
	p := nitro.DefaultPolicy("toy")
	p.ParallelFeatureEval = parallel
	p.AsyncFeatureEval = async
	cv := buildToy(b, p)
	for i := 0; i < 4; i++ {
		cv.AddInputFeature(nitro.Feature[toy]{
			Name: "extra",
			Eval: func(in toy) float64 {
				s := 0.0
				for k := 0; k < 1000; k++ {
					s += in.x * float64(k)
				}
				return s
			},
		})
	}
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{})
	if _, err := tuner.Tune(toyInputs()); err != nil {
		b.Fatal(err)
	}
	in := toy{x: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if async {
			f := cv.FixInputs(in)
			if _, _, err := f.Call(); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, _, err := cv.Call(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFeatureEvalSerial(b *testing.B)   { benchFeatureMode(b, false, false) }
func BenchmarkAblationFeatureEvalParallel(b *testing.B) { benchFeatureMode(b, true, false) }
func BenchmarkAblationFeatureEvalAsync(b *testing.B)    { benchFeatureMode(b, true, true) }

// TestPublicAPIEnsembleAndBakeoff exercises the committee classifier, the
// LinUCB bandit and the sequential bakeoff through the facade re-exports.
func TestPublicAPIEnsembleAndBakeoff(t *testing.T) {
	cv := buildToy(t, nitro.DefaultPolicy("toy"))
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "ensemble", Seed: 7})
	if _, err := tuner.Tune(toyInputs()); err != nil {
		t.Fatal(err)
	}
	if _, chosen, _ := cv.Call(toy{x: 2}); chosen != "low" {
		t.Errorf("x=2 chose %q", chosen)
	}
	if _, chosen, _ := cv.Call(toy{x: 18}); chosen != "high" {
		t.Errorf("x=18 chose %q", chosen)
	}
	model, ok := cv.Context().Model("toy")
	if !ok {
		t.Fatal("no model installed")
	}
	ens, ok := model.Classifier.(*nitro.Ensemble)
	if !ok {
		t.Fatalf("classifier is %T, want *nitro.Ensemble", model.Classifier)
	}
	if len(ens.Members()) != 4 {
		t.Errorf("committee has %d members, want 4", len(ens.Members()))
	}
	if c := model.Confidence([]float64{18}); c <= 0 || c > 1 {
		t.Errorf("calibrated confidence %v out of (0, 1]", c)
	}

	bd := nitro.NewBandit(1, 1)
	for i := 0; i < 20; i++ {
		arm := bd.Select([]float64{float64(i % 3)}, []int{0, 1})
		reward := 0.0
		if arm == 1 {
			reward = 1
		}
		bd.Update(arm, []float64{float64(i % 3)}, reward)
	}
	if bd.Pulls() != 20 {
		t.Errorf("bandit pulls %d, want 20", bd.Pulls())
	}

	b := nitro.NewBakeoff(nitro.BakeoffConfig{MinSamples: 4, MaxSamples: 50, Z: 2, MinEffect: 0.01})
	verdict := nitro.BakeoffUndecided
	for i := 0; verdict == nitro.BakeoffUndecided && i < 50; i++ {
		verdict = b.Observe(0.2 + 0.01*float64(i%3))
	}
	if verdict != nitro.BakeoffPromote {
		t.Errorf("verdict %v, want promote for a consistently faster challenger", verdict)
	}
}
