package main

// Correlated-tracing smoke: drives an ephemeral daemon through a full
// canary lifecycle under ONE injected trace id and then checks that the
// id is recoverable from every observability surface the daemon has —
// the structured slog stream, the journal WAL bytes on disk, the
// /debug/flight ring, and the settled deployment's last_decision_trace.
// The flight dump is also scraped twice and byte-compared: it must be
// wall-clock-free and side-effect-free, so forensics never perturb the
// evidence they collect.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nitro/internal/obs/trace"
	"nitro/internal/server"
	"nitro/internal/server/client"
)

const smokeTraceID = "t-smoke-e2e-0001"

func runTraceSmoke() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ctx = trace.With(ctx, smokeTraceID)

	dir, err := os.MkdirTemp("", "nitro-trace-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var logBuf bytes.Buffer
	fixed := time.Unix(1700000000, 0).UTC()
	cfg := server.Config{
		Addr: "127.0.0.1:0",
		Registry: server.RegistryConfig{
			Tenants: []server.TenantConfig{{Name: "smoke", Token: "smoke-token"}},
			Workers: 1,
			DataDir: dir,
			Canary:  server.CanaryPolicy{Fraction: 0.5, MinSamples: 20, MaxFailureRate: 0.2},
		},
		Obs: server.ObsConfig{
			LogWriter: &logBuf,
			Debug:     true,
			Clock:     func() time.Time { return fixed },
			TraceSeed: 7,
		},
	}
	d, err := server.NewDaemon(cfg)
	if err != nil {
		return err
	}
	if err := d.Start(cfg); err != nil {
		return err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		d.Shutdown(sctx) //nolint:errcheck // smoke teardown
	}()
	fmt.Printf("trace smoke: daemon up on http://%s, trace id %s\n", d.Addr(), smokeTraceID)

	c, err := client.New(client.Config{BaseURL: "http://" + d.Addr(), Token: "smoke-token", Seed: 11})
	if err != nil {
		return err
	}
	spec := server.FunctionSpec{Name: "trace-sort", Features: []string{"x"}, Variants: []string{"a", "b"}, Default: 0}
	if err := c.RegisterFunction(ctx, spec); err != nil {
		return fmt.Errorf("register: %w", err)
	}
	for i, boundary := range []float64{4.5, 6.5} {
		art, err := chaosArtifact(boundary)
		if err != nil {
			return err
		}
		if _, err := c.PushModel(ctx, spec.Name, art, ""); err != nil {
			return fmt.Errorf("push v%d: %w", i+1, err)
		}
	}
	dec, dep, err := c.ReportCanary(ctx, spec.Name, 2, 20, 0)
	if err != nil {
		return fmt.Errorf("canary report: %w", err)
	}
	if dec != server.DecisionPromoted {
		return fmt.Errorf("canary decision %q, want promoted", dec)
	}
	if dep.LastDecisionTrace != smokeTraceID {
		return fmt.Errorf("deployment last_decision_trace %q, want %q", dep.LastDecisionTrace, smokeTraceID)
	}
	fmt.Println("trace smoke: canary promoted, verdict carries the trace id")

	// Surface 1: the structured slog stream. Every span of the lifecycle
	// must appear under the injected id.
	spanEvents := []string{"function.register", "model.push", "canary.start", "canary.report", "canary.promote"}
	for _, want := range spanEvents {
		found := false
		for _, line := range strings.Split(logBuf.String(), "\n") {
			if strings.Contains(line, `"trace":"`+smokeTraceID+`"`) && strings.Contains(line, `"msg":"`+want+`"`) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("slog stream missing %q under trace %s:\n%s", want, smokeTraceID, logBuf.String())
		}
	}
	fmt.Printf("trace smoke: span tree complete in slog stream (%s)\n", strings.Join(spanEvents, " -> "))

	// Surface 2: the journal WAL bytes on disk carry the trace field.
	wal, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		return fmt.Errorf("reading journal: %w", err)
	}
	if !bytes.Contains(wal, []byte(smokeTraceID)) {
		return fmt.Errorf("journal WAL does not carry trace id %s", smokeTraceID)
	}
	fmt.Println("trace smoke: journal WAL frames carry the trace id")

	// Surface 3: /debug/flight. The dump must parse, carry the id, contain
	// no wall-clock, and be byte-identical across two scrapes — reading the
	// recorder is side-effect-free.
	scrape := func() ([]byte, error) {
		resp, err := http.Get("http://" + d.Addr() + "/debug/flight")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}
	dump1, err := scrape()
	if err != nil {
		return fmt.Errorf("flight scrape: %w", err)
	}
	dump2, err := scrape()
	if err != nil {
		return fmt.Errorf("flight re-scrape: %w", err)
	}
	if !bytes.Equal(dump1, dump2) {
		return fmt.Errorf("flight dump not idempotent:\n--- scrape 1 ---\n%s\n--- scrape 2 ---\n%s", dump1, dump2)
	}
	var flight struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Seq   uint64 `json:"seq"`
			Trace string `json:"trace"`
			Name  string `json:"event"`
		} `json:"events"`
	}
	if err := json.Unmarshal(dump1, &flight); err != nil {
		return fmt.Errorf("flight dump unparsable: %w\n%s", err, dump1)
	}
	if flight.Recorded == 0 || len(flight.Events) == 0 {
		return fmt.Errorf("flight dump empty: %s", dump1)
	}
	traced := 0
	for _, e := range flight.Events {
		if e.Seq == 0 {
			return fmt.Errorf("flight event missing seq: %s", dump1)
		}
		if e.Trace == smokeTraceID {
			traced++
		}
	}
	if traced == 0 {
		return fmt.Errorf("no flight events under trace %s: %s", smokeTraceID, dump1)
	}
	if bytes.Contains(dump1, []byte(`"time"`)) {
		return fmt.Errorf("flight dump carries wall-clock: %s", dump1)
	}
	fmt.Printf("trace smoke: flight dump clean (%d events recorded, %d under the trace, idempotent, wall-clock-free)\n",
		flight.Recorded, traced)

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := d.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("nitro-server trace smoke: PASS")
	return nil
}
