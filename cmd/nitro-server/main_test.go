package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadTenants covers the two tenant-declaration channels and their
// merge/error behavior.
func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(file, []byte(`[
		{"name":"team-a","token":"tok-a","quotas":{"max_functions":3}},
		{"name":"team-b","token":"tok-b"}
	]`), 0o600); err != nil {
		t.Fatal(err)
	}

	got, err := loadTenants(file, "team-c=tok-c, team-d=tok-d")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d tenants, want 4 (file + inline merged)", len(got))
	}
	if got[0].Name != "team-a" || got[0].Token != "tok-a" || got[0].Quotas.MaxFunctions != 3 {
		t.Fatalf("file tenant mangled: %+v", got[0])
	}
	if got[2].Name != "team-c" || got[3].Token != "tok-d" {
		t.Fatalf("inline tenants mangled: %+v", got[2:])
	}

	for name, args := range map[string][2]string{
		"no tenants":       {"", ""},
		"bad inline pair":  {"", "just-a-name"},
		"empty token":      {"", "name="},
		"missing file":     {filepath.Join(dir, "absent.json"), ""},
		"unparseable file": {file + "x", ""},
	} {
		if name == "unparseable file" {
			if err := os.WriteFile(file+"x", []byte("{not json"), 0o600); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := loadTenants(args[0], args[1]); err == nil {
			t.Errorf("%s: loadTenants(%q, %q) accepted", name, args[0], args[1])
		}
	}
}

// TestSmoke runs the binary's built-in end-to-end self-test in-process.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end smoke in -short mode")
	}
	if err := runSmoke(); err != nil {
		t.Fatal(err)
	}
}
