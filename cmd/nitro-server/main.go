// nitro-server runs the Nitro model registry daemon: a multi-tenant HTTP
// service that owns tuned models for many functions, ingests observation
// samples from deployed clients, retrains on pooled fleet evidence, and
// distributes versioned model artifacts behind a fraction-gated canary.
//
// Tenants are declared either inline (-tenant name=token, comma-separated
// for several) or in a JSON file (-tenants) that can also carry per-tenant
// quotas. The telemetry surface (/metrics, /vars, /healthz) shares the
// listener with the API.
//
// -smoke runs a self-contained end-to-end check instead of serving: an
// ephemeral daemon is driven through register -> push observations ->
// tune -> pull artifact -> scrape metrics -> graceful shutdown, and the
// process exits non-zero if any step misbehaves. CI uses it as the
// server equivalent of the telemetry smoke.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nitro/internal/faultnet"
	"nitro/internal/ml"
	"nitro/internal/obs"
	"nitro/internal/online"
	"nitro/internal/server"
	"nitro/internal/server/client"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9090", "listen address (host:port; :0 picks a free port)")
		dataDir     = flag.String("data-dir", "", "directory for persisted specs and model artifacts (empty: in-memory only)")
		tenantsFile = flag.String("tenants", "", "JSON file declaring tenants: [{\"name\":...,\"token\":...,\"quotas\":{...}}]")
		tenantFlag  = flag.String("tenant", "", "inline tenants, comma-separated name=token pairs")
		workers     = flag.Int("workers", 2, "tuning worker goroutines")
		canaryFrac  = flag.Float64("canary-fraction", 0.2, "traffic fraction a challenger model serves during the canary gate")
		canaryMin   = flag.Int64("canary-min-samples", 50, "fleet-wide challenger calls required before a canary verdict")
		canaryFail  = flag.Float64("canary-max-failure-rate", 0.1, "challenger failure rate above which a canary rolls back")
		smoke       = flag.Bool("smoke", false, "run the self-contained end-to-end smoke check and exit")
		smokeChaos  = flag.Bool("smoke-chaos", false, "run the seeded kill-restart-resume chaos smoke twice, diff the transcripts, and exit")
		chaosSeed   = flag.Int64("chaos-seed", 42, "seed for the chaos smoke's fault schedule")
		smokeTrace  = flag.Bool("smoke-trace", false, "run the correlated-tracing smoke (span tree + flight recorder assertions) and exit")
		traceSeed   = flag.Int64("trace-seed", 0, "seed for server-minted trace ids (0: crypto/rand)")
		logEvents   = flag.Bool("log-events", false, "emit the structured JSON event stream on stderr")
		debugEvents = flag.Bool("debug", false, "lower the event stream to Debug level (per-request events)")
		profiling   = flag.Bool("pprof", false, "mount /debug/pprof and export Go runtime metrics (trusted networks only)")
		flightCap   = flag.Int("flight-capacity", 0, "flight recorder ring size (0: default)")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "nitro-server smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *smokeChaos {
		if err := runChaosSmoke(*chaosSeed); err != nil {
			fmt.Fprintf(os.Stderr, "nitro-server chaos smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *smokeTrace {
		if err := runTraceSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "nitro-server trace smoke: FAIL: %v\n", err)
			os.Exit(1)
		}
		return
	}

	tenants, err := loadTenants(*tenantsFile, *tenantFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nitro-server: %v\n", err)
		os.Exit(2)
	}
	var logWriter io.Writer
	if *logEvents || *debugEvents {
		logWriter = os.Stderr
	}
	cfg := server.Config{
		Addr: *addr,
		Registry: server.RegistryConfig{
			Tenants: tenants,
			DataDir: *dataDir,
			Workers: *workers,
			Canary: server.CanaryPolicy{
				Fraction:       *canaryFrac,
				MinSamples:     *canaryMin,
				MaxFailureRate: *canaryFail,
			},
		},
		Obs: server.ObsConfig{
			LogWriter:      logWriter,
			Debug:          *debugEvents,
			TraceSeed:      *traceSeed,
			FlightCapacity: *flightCap,
			Profiling:      *profiling,
		},
	}
	d, err := server.NewDaemon(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nitro-server: %v\n", err)
		os.Exit(2)
	}
	if err := d.Start(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nitro-server: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("nitro-server listening on http://%s (%d tenants)\n", d.Addr(), len(tenants))

	// SIGQUIT dumps the flight recorder to stderr and keeps serving — the
	// crash-forensics path when a daemon misbehaves but must stay up.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintf(os.Stderr, "nitro-server: flight recorder dump:\n%s\n", d.Flight().DumpJSON())
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	fmt.Println("nitro-server: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "nitro-server: shutdown: %v\n", err)
		os.Exit(1)
	}
}

// loadTenants merges -tenants (JSON file) and -tenant (inline pairs).
func loadTenants(file, inline string) ([]server.TenantConfig, error) {
	var out []server.TenantConfig
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, &out); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", file, err)
		}
	}
	if inline != "" {
		for _, pair := range strings.Split(inline, ",") {
			name, token, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || name == "" || token == "" {
				return nil, fmt.Errorf("bad -tenant entry %q, want name=token", pair)
			}
			out = append(out, server.TenantConfig{Name: name, Token: token})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants configured: pass -tenant name=token or -tenants file.json")
	}
	return out, nil
}

// runSmoke drives an ephemeral daemon end to end through the client.
func runSmoke() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cfg := server.Config{
		Addr: "127.0.0.1:0",
		Registry: server.RegistryConfig{
			Tenants: []server.TenantConfig{{Name: "smoke", Token: "smoke-token"}},
			Workers: 1,
		},
	}
	d, err := server.NewDaemon(cfg)
	if err != nil {
		return err
	}
	if err := d.Start(cfg); err != nil {
		return err
	}
	fmt.Printf("smoke: daemon up on http://%s\n", d.Addr())

	c, err := client.New(client.Config{BaseURL: "http://" + d.Addr(), Token: "smoke-token"})
	if err != nil {
		return err
	}
	fn := "smoke-sort"
	spec := server.FunctionSpec{Name: fn, Features: []string{"n"}, Variants: []string{"small", "large"}, Default: 0}
	if err := c.RegisterFunction(ctx, spec); err != nil {
		return fmt.Errorf("register: %w", err)
	}
	fmt.Println("smoke: function registered")

	samples := make([]online.RemoteSample, 40)
	for i := range samples {
		x := float64(i % 10)
		times := []float64{1, 2}
		if x > 4.5 {
			times = []float64{2, 1}
		}
		samples[i] = online.RemoteSample{Features: []float64{x}, Times: times, Predicted: -1}
	}
	if _, err := c.PushObservations(ctx, fn, samples); err != nil {
		return fmt.Errorf("push observations: %w", err)
	}
	fmt.Printf("smoke: pushed %d observations\n", len(samples))

	job, err := c.Tune(ctx, fn)
	if err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	for {
		st, err := c.Job(ctx, job)
		if err != nil {
			return fmt.Errorf("job status: %w", err)
		}
		if st.State.Terminal() {
			if st.Error != "" {
				return fmt.Errorf("tune job failed: %s", st.Error)
			}
			fmt.Printf("smoke: tune job %s done (model v%d, train accuracy %.2f)\n", job, st.Version, st.TrainAccuracy)
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("tune job %s timed out", job)
		case <-time.After(50 * time.Millisecond):
		}
	}

	pull, err := c.PullModel(ctx, fn, 0, "")
	if err != nil {
		return fmt.Errorf("pull: %w", err)
	}
	if pull.Version != 1 || ml.ETagOf(pull.Data) != pull.ETag {
		return fmt.Errorf("pull returned v%d with inconsistent etag", pull.Version)
	}
	if again, err := c.PullModel(ctx, fn, 0, pull.ETag); err != nil || !again.NotModified {
		return fmt.Errorf("cached re-pull did not 304 (%+v, %v)", again, err)
	}
	fmt.Printf("smoke: pulled model v%d (%d bytes, etag %s), revalidation 304 ok\n", pull.Version, len(pull.Data), pull.ETag)

	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if err := obs.ValidatePrometheusText(string(text)); err != nil {
		return fmt.Errorf("metrics exposition invalid: %w", err)
	}
	for _, want := range []string{"nitro_server_observations_total", "nitro_server_tune_jobs_done_total", "nitro_server_artifact_pulls_total"} {
		if !strings.Contains(string(text), want) {
			return fmt.Errorf("metrics missing %s", want)
		}
	}
	fmt.Println("smoke: metrics exposition valid")

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := d.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("smoke: graceful shutdown ok")
	fmt.Println("nitro-server smoke: PASS")
	return nil
}

// chaosSpec is the function used by the chaos smoke.
var chaosSpec = server.FunctionSpec{Name: "chaos-sort", Features: []string{"x"}, Variants: []string{"a", "b"}, Default: 0}

// chaosArtifact trains a deterministic 1-feature/2-class model; distinct
// boundaries yield distinct artifact bytes, so two pushes stage a canary.
func chaosArtifact(boundary float64) ([]byte, error) {
	ds := &ml.Dataset{}
	for x := 0.0; x < 10; x++ {
		label := 0
		if x > boundary {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	svm := ml.NewSVM(ml.LinearKernel{}, 1)
	if err := svm.Fit(ds); err != nil {
		return nil, err
	}
	data, _, err := ml.EncodeArtifact(&ml.Model{Classifier: svm})
	return data, err
}

// runChaosSmoke runs the seeded kill-restart-resume lifecycle twice and
// diffs the transcripts byte for byte: all fault decisions come from one
// serial, seeded driver, so any divergence means nondeterminism crept into
// the crash-recovery path.
func runChaosSmoke(seed int64) error {
	first, err := chaosLifecycle(seed)
	if err != nil {
		return err
	}
	second, err := chaosLifecycle(seed)
	if err != nil {
		return err
	}
	if first != second {
		return fmt.Errorf("transcripts diverge between identically seeded runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
	}
	fmt.Print(first)
	fmt.Printf("chaos smoke: transcripts identical across 2 runs (seed %d)\n", seed)
	fmt.Println("nitro-server chaos smoke: PASS")
	return nil
}

// chaosLifecycle drives one seeded kill-restart-resume-promote pass and
// returns its transcript. The transcript carries only deterministic facts
// (versions, counters, decisions, fault tallies) — no addresses, no
// wall-clock — so identically seeded runs must produce identical bytes.
func chaosLifecycle(seed int64) (transcript string, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var b strings.Builder
	logf := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	dir, err := os.MkdirTemp("", "nitro-chaos-smoke-")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)

	startDaemon := func() (*server.Daemon, error) {
		cfg := server.Config{
			Addr: "127.0.0.1:0",
			Registry: server.RegistryConfig{
				Tenants: []server.TenantConfig{{Name: "smoke", Token: "smoke-token"}},
				Workers: 1,
				DataDir: dir,
				Canary:  server.CanaryPolicy{Fraction: 0.5, MinSamples: 40, MaxFailureRate: 0.2},
			},
		}
		d, err := server.NewDaemon(cfg)
		if err != nil {
			return nil, err
		}
		if err := d.Start(cfg); err != nil {
			return nil, err
		}
		return d, nil
	}

	// Stage a canary on a fault-free wire, then crash without any drain.
	d, err := startDaemon()
	if err != nil {
		return "", err
	}
	c, err := client.New(client.Config{BaseURL: "http://" + d.Addr(), Token: "smoke-token"})
	if err != nil {
		return "", err
	}
	if err := c.RegisterFunction(ctx, chaosSpec); err != nil {
		return "", fmt.Errorf("register: %w", err)
	}
	for i, boundary := range []float64{4.5, 6.5} {
		art, err := chaosArtifact(boundary)
		if err != nil {
			return "", err
		}
		if _, err := c.PushModel(ctx, chaosSpec.Name, art, ""); err != nil {
			return "", fmt.Errorf("push v%d: %w", i+1, err)
		}
	}
	dec, dep, err := c.ReportCanary(ctx, chaosSpec.Name, 2, 20, 1)
	if err != nil {
		return "", fmt.Errorf("mid-canary report: %w", err)
	}
	logf("staged: stable=v%d canary=v%d decision=%s", dep.Stable, dep.Canary.Version, dec)
	d.Kill()
	logf("killed: daemon crashed mid-canary (no drain, no marker)")

	// Restart over the same data dir; the journal resumes the canary.
	d, err = startDaemon()
	if err != nil {
		return "", fmt.Errorf("restart: %w", err)
	}
	defer func() {
		if d != nil {
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			if serr := d.Shutdown(sctx); serr != nil && err == nil {
				err = serr
			}
		}
	}()
	rec := d.Registry().Recovery()
	logf("recovery: journal=%v clean_shutdown=%v replayed=%d resumed=%d dropped=%d corrupt=%q",
		rec.Journal, rec.CleanShutdown, rec.RecordsReplayed, rec.ResumedCanaries, rec.DroppedRecords, rec.CorruptTail)
	if rec.ResumedCanaries != 1 || rec.CleanShutdown {
		return "", fmt.Errorf("restart did not resume the canary: %+v", rec)
	}

	// All remaining traffic crosses the seeded fault injector.
	ft := faultnet.New(nil, faultnet.Policy{
		Seed:      seed,
		DropRate:  0.20,
		Rate5xx:   0.15,
		BurstLen:  2,
		ResetRate: 0.15,
		DelayRate: 0.05,
		Delay:     time.Millisecond,
	})
	cc, err := client.New(client.Config{
		BaseURL:    "http://" + d.Addr(),
		Token:      "smoke-token",
		HTTPClient: &http.Client{Transport: ft},
		Retries:    8,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       seed + 1,
	})
	if err != nil {
		return "", err
	}
	dep, err = cc.Deployment(ctx, chaosSpec.Name)
	if err != nil {
		return "", fmt.Errorf("deployment through chaos: %w", err)
	}
	if dep.Canary == nil {
		return "", fmt.Errorf("canary lost across restart: %+v", dep)
	}
	logf("resumed: canary=v%d calls=%d failures=%d", dep.Canary.Version, dep.Canary.Calls, dep.Canary.Failures)

	reports := 0
	decision := server.DecisionPending
	for decision == server.DecisionPending {
		if reports++; reports > 20 {
			return "", fmt.Errorf("canary did not settle after %d reports", reports)
		}
		decision, _, err = cc.ReportCanary(ctx, chaosSpec.Name, 2, 10, 0)
		if err != nil {
			return "", fmt.Errorf("canary report %d dropped under chaos: %w", reports, err)
		}
		logf("report %d: decision=%s", reports, decision)
	}
	if decision != server.DecisionPromoted {
		return "", fmt.Errorf("canary decision %q, want promoted", decision)
	}
	dep, err = cc.Deployment(ctx, chaosSpec.Name)
	if err != nil {
		return "", err
	}
	logf("promoted: stable=v%d canary=%v", dep.Stable, dep.Canary != nil)
	st := ft.Stats()
	if st.Drops+st.Faults5xx+st.Resets == 0 {
		return "", fmt.Errorf("no faults injected (%v); the smoke proved nothing", st)
	}
	logf("faultnet: %v", st)

	// Graceful shutdown writes the clean marker; the next start has nothing
	// to resume.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := d.Shutdown(sctx); err != nil {
		return "", fmt.Errorf("shutdown: %w", err)
	}
	d = nil
	d2, err := startDaemon()
	if err != nil {
		return "", err
	}
	rec = d2.Registry().Recovery()
	logf("clean restart: clean_shutdown=%v resumed=%d", rec.CleanShutdown, rec.ResumedCanaries)
	sctx2, scancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel2()
	if err := d2.Shutdown(sctx2); err != nil {
		return "", err
	}
	if !rec.CleanShutdown || rec.ResumedCanaries != 0 {
		return "", fmt.Errorf("clean restart misread the journal: %+v", rec)
	}
	return b.String(), nil
}
