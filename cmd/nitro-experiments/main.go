// Command nitro-experiments regenerates the tables and figures of the Nitro
// paper's evaluation on the synthetic corpora (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	nitro-experiments [-run setup|fig5|fig6|fig7|fig8|headline|dispatch|extension|portability|all]
//	                  [-scale 1.0] [-seed 42] [-iters 50]
//	                  [-classifier svm|knn|tree] [-nogrid]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/datasets"
	"nitro/internal/experiments"
	"nitro/internal/gpusim"
)

func main() {
	run := flag.String("run", "all", "which experiment to run: setup, fig5, fig6, fig7, fig8, headline, dispatch, extension, portability, all")
	scale := flag.Float64("scale", 1.0, "instance-size scale in (0,1]")
	seed := flag.Int64("seed", 42, "corpus generation seed")
	iters := flag.Int("iters", 50, "incremental-tuning iteration budget (fig7)")
	classifier := flag.String("classifier", "svm", "classifier: svm, knn or tree")
	nogrid := flag.Bool("nogrid", false, "disable the cross-validated SVM grid search")
	trainN := flag.Int("train", 0, "override training corpus size (0 = paper)")
	testN := flag.Int("test", 0, "override test corpus size (0 = paper)")
	csvDir := flag.String("csvdir", "", "also write per-figure CSV files into this directory")
	dispatchCalls := flag.Int("dispatch-calls", 200000, "per-tier Call timing iterations for -run dispatch (0 = quality only)")
	dispatchJSON := flag.String("dispatch-json", "", "write the dispatch study as machine-readable JSON to this path (BENCH_dispatch.json)")
	parallelism := flag.Int("parallelism", 0, "worker count for corpus labelling, grid search and per-suite figures (0 = all cores, 1 = serial); results are identical at every setting")
	servingCalls := flag.Int("serving-calls", 200, "per-route samples for -run serving")
	servingJSON := flag.String("serving-json", "", "write the serving study as machine-readable JSON to this path (BENCH_serving.json)")
	ensembleCalls := flag.Int("ensemble-calls", 20000, "per-model prediction-timing iterations for -run ensemble (0 = quality only)")
	ensembleJSON := flag.String("ensemble-json", "", "write the ensemble study as machine-readable JSON to this path (BENCH_ensemble.json)")
	obsCalls := flag.Int("obs-calls", 400, "per-route samples for -run obs")
	obsJSON := flag.String("obs-json", "", "write the observability-overhead study as machine-readable JSON to this path (BENCH_obs.json)")
	flag.Parse()

	// The serving study drives a live registry daemon over HTTP; it needs no
	// corpora, so it branches before the (expensive) suite build. Like the
	// dispatch study it is opt-in: wall-clock latencies are only meaningful
	// on a quiet machine.
	if strings.EqualFold(*run, "serving") {
		rep, err := experiments.Serving(*servingCalls)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatServing(rep))
		if *servingJSON != "" {
			f, err := os.Create(*servingJSON)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteServingJSON(f, rep); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *servingJSON)
		}
		return
	}

	// The observability study also drives live daemons over HTTP and needs
	// no corpora; like serving it branches before the suite build and its
	// wall-clock overheads are only meaningful on a quiet machine.
	if strings.EqualFold(*run, "obs") {
		rep, err := experiments.ObsStudy(*obsCalls)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatObs(rep))
		if *obsJSON != "" {
			f, err := os.Create(*obsJSON)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteObsJSON(f, rep); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *obsJSON)
		}
		return
	}

	opts := experiments.Options{
		Cfg: datasets.Config{Seed: *seed, Scale: *scale, TrainCount: *trainN, TestCount: *testN,
			Parallelism: *parallelism},
		Train: autotuner.TrainOptions{
			Classifier:  *classifier,
			GridSearch:  *classifier == "svm" && !*nogrid,
			Seed:        *seed,
			Parallelism: *parallelism,
		},
	}
	dev := gpusim.Fermi()
	fmt.Printf("device: %s\n", dev)

	start := time.Now()
	suites, err := experiments.BuildSuites(opts, dev)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built 5 corpora in %v\n\n", time.Since(start).Round(time.Millisecond))

	want := func(name string) bool { return *run == "all" || strings.EqualFold(*run, name) }
	csvOut := func(fig string, write func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, experiments.CSVName(fig))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if want("setup") {
		rows := experiments.Setup(suites)
		fmt.Println(experiments.FormatSetup(rows))
		csvOut("setup", func(w *os.File) error { return experiments.WriteSetupCSV(w, rows) })
	}
	if want("fig5") {
		rows, err := experiments.Fig5(suites, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig5(rows))
		csvOut("fig5", func(w *os.File) error { return experiments.WriteFig5CSV(w, rows) })
	}
	if want("fig6") || want("headline") {
		h, err := experiments.Headline(suites, opts, dev)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatHeadline(h))
		csvOut("fig6", func(w *os.File) error { return experiments.WriteFig6CSV(w, h.Rows) })
	}
	if want("fig7") {
		curves, err := experiments.Fig7(suites, opts, *iters)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig7(curves))
		csvOut("fig7", func(w *os.File) error { return experiments.WriteFig7CSV(w, curves) })
	}
	if want("fig8") {
		rows, err := experiments.Fig8(suites, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatFig8(rows))
		csvOut("fig8", func(w *os.File) error { return experiments.WriteFig8CSV(w, rows) })
	}
	// The dispatch study is opt-in (not part of "all"): it is a wall-clock
	// micro-benchmark of the selection engine, not a paper figure, and its
	// timings are only meaningful on a quiet machine.
	if strings.EqualFold(*run, "dispatch") {
		rows, err := experiments.Dispatch(suites, opts, *dispatchCalls)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatDispatch(rows))
		if *dispatchJSON != "" {
			f, err := os.Create(*dispatchJSON)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteDispatchJSON(f, rows, *dispatchCalls); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *dispatchJSON)
		}
	}
	// The ensemble study is opt-in like dispatch: its prediction timings are
	// wall-clock micro-benchmarks, only meaningful on a quiet machine.
	if strings.EqualFold(*run, "ensemble") {
		rep, err := experiments.EnsembleStudy(suites, opts, *ensembleCalls)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatEnsemble(rep))
		if *ensembleJSON != "" {
			f, err := os.Create(*ensembleJSON)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteEnsembleJSON(f, rep); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *ensembleJSON)
		}
	}
	if want("classifiers") {
		rows, err := experiments.ClassifierComparison(suites, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatClassifierComparison(rows))
		csvOut("classifiers", func(w *os.File) error { return experiments.WriteClassifierCSV(w, rows) })
	}
	if want("extension") {
		rows, err := experiments.Extension(opts, dev)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatExtension(rows))
	}
	if want("noise") {
		rows, err := experiments.NoiseRobustness(suites, opts, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatNoise(rows))
	}
	if want("portability") {
		res, err := experiments.Portability(opts, dev, gpusim.Kepler())
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatPortability(res))
	}
	fmt.Printf("total wall time %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nitro-experiments:", err)
	os.Exit(1)
}
