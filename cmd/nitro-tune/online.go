// Online-replay mode: replay a deployment call stream through a live
// CodeVariant with an online adaptation engine attached, inject a synthetic
// concept drift mid-stream, and print the engine's adaptation timeline —
// sampling, exploration, drift detection, background retrain, hot-swap (or
// rollback) and recovery. The replay is serial, the engine synchronous and
// seeded, so the printed timeline is reproducible byte for byte (asserted by
// TestRunSpecOnlineReplayDeterministic).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"nitro/internal/autotuner"
	"nitro/internal/core"
	"nitro/internal/ensemble"
	"nitro/internal/ml"
	"nitro/internal/obs"
	"nitro/internal/online"
)

// onlineReplayPolicy is the fixed adaptation configuration the replay uses:
// every 2nd call is a sampling candidate and half the samples are explored,
// so roughly a quarter of the stream is re-timed; 20-observation windows
// with a 2-window drift hysteresis keep the timeline short enough to read.
// Only the stream length, drift point, classifier and seed come from the
// spec — everything else is pinned so transcripts are comparable across
// specs.
func onlineReplayPolicy(spec Spec) online.Policy {
	pol := online.Policy{
		SamplePeriod:      2,
		ExploreRate:       0.5,
		ReservoirSize:     256,
		Window:            20,
		MismatchThreshold: 0.4,
		RegretThreshold:   0.5,
		DriftWindows:      2,
		RecoveryWindows:   2,
		CooldownWindows:   2,
		MinRetrainSamples: 24,
		Retrain: autotuner.RetrainOptions{
			TrainOptions: autotuner.TrainOptions{
				Classifier:  spec.Classifier,
				Seed:        spec.Seed,
				Parallelism: spec.Parallelism,
			},
		},
		Seed:        spec.Seed,
		Synchronous: true, // retrain inline: deterministic timeline
	}
	if spec.Bandit {
		pol.Bandit = &online.BanditPolicy{MinConfidence: spec.BanditMinConfidence}
	}
	if spec.Bakeoff {
		// A short stopper keeps the transcript readable: verdicts land within
		// one or two windows of paired evidence.
		pol.Bakeoff = &ensemble.BakeoffConfig{MinSamples: 8, MaxSamples: 120, Z: 2, MinEffect: 0.005}
	}
	if spec.Incremental != nil {
		pol.Retrain.Incremental = true
		pol.Retrain.MaxIterations = spec.Incremental.Iterations
	}
	return pol
}

// rotateTimes returns a copy of the instance with its per-variant costs
// rotated by one slot: the feature→best-variant mapping changes while the
// features stay put — a pure concept drift from the selector's point of view.
func rotateTimes(in autotuner.Instance) autotuner.Instance {
	rot := make([]float64, len(in.Times))
	for j := range in.Times {
		rot[j] = in.Times[(j+1)%len(in.Times)]
	}
	cp := in
	cp.Times = rot
	return cp
}

// runOnlineReplay replays spec.OnlineReplay deployment calls over the
// feasible test instances through a live CodeVariant with an adaptation
// engine attached, switching every instance to its drifted (time-rotated)
// form at spec.DriftAt of the stream.
func runOnlineReplay(spec Spec, tel *telemetry, suite *autotuner.Suite, model *ml.Model, out io.Writer) error {
	feasible := autotuner.FeasibleTest(suite)
	if len(feasible) == 0 {
		return fmt.Errorf("online replay: no feasible test instances (set test_count or evaluate a benchmark with test inputs)")
	}
	cx := core.NewContext()
	policy := core.TuningPolicy{
		Name:                spec.Function,
		ParallelFeatureEval: spec.ParallelFeatureEval,
		AsyncFeatureEval:    spec.AsyncFeatureEval,
		ConstraintsEnabled:  spec.Constraints == nil || *spec.Constraints,
	}
	cv, err := autotuner.ReplayVariant(cx, suite, policy)
	if err != nil {
		return err
	}
	if err := cx.SetModel(spec.Function, model); err != nil {
		return err
	}
	eng, err := online.Attach(cv, onlineReplayPolicy(spec))
	if err != nil {
		return err
	}
	defer eng.Close()

	// Decision tracing: the replay is serial, admission is counter-exact and
	// DecisionTrace.String excludes wall-clock fields, so the collected
	// timeline is reproducible byte for byte across runs.
	var traceLines []string
	if tracer := tel.enableTracing(cv, spec.Function); tracer != nil {
		tracer.SetSink(func(tr obs.DecisionTrace) { traceLines = append(traceLines, tr.String()) })
	}
	if tel.reg != nil {
		cx.EnableLatencyHistograms(spec.Function)
		tel.reg.Register(cx.Collector())
		tel.reg.Register(eng.Collector(spec.Function))
		eng.RegisterVars(tel.reg, spec.Function, 64)
	}

	driftAt := spec.DriftAt
	if driftAt == 0 {
		driftAt = 0.3
	}
	driftCall := int(math.Round(driftAt * float64(spec.OnlineReplay)))
	fmt.Fprintf(out, "online replay: %d calls over %d feasible test inputs, drift injected at call %d (per-variant costs rotated)\n",
		spec.OnlineReplay, len(feasible), driftCall)
	served := 0
	for i := 0; i < spec.OnlineReplay; i++ {
		in := feasible[i%len(feasible)]
		if i >= driftCall {
			in = rotateTimes(in)
		}
		if _, _, err := cv.Call(in); err != nil {
			// A rotated instance can lose all feasible variants (every finite
			// cost moved onto a vetoed slot); skip it like deployments skip
			// unservable inputs.
			continue
		}
		served++
	}
	if tel.traceSet {
		fmt.Fprintf(out, "decision traces (%d):\n", len(traceLines))
		for _, line := range traceLines {
			fmt.Fprintf(out, "  %s\n", line)
		}
	}
	fmt.Fprintln(out, "adaptation timeline:")
	for _, ev := range eng.Events() {
		fmt.Fprintf(out, "  %s\n", ev)
	}
	st := eng.Stats()
	fmt.Fprintf(out, "online replay served %d/%d calls; %s\n", served, spec.OnlineReplay, st)
	if m, ok := cx.Model(spec.Function); ok && m.Meta != nil {
		fmt.Fprintf(out, "installed model: v%d (trained on %d observations)\n", m.Version(), m.Meta.TrainedOn)
	}
	if spec.StatsJSON {
		return emitStatsJSON(out, cx.Stats(spec.Function), &st)
	}
	return nil
}

// emitStatsJSON writes the machine-readable statistics line shared by the
// throughput and online replays: one JSON object with the replay context's
// CallStats and, when an adaptation engine ran, its AdaptStats.
func emitStatsJSON(out io.Writer, call core.CallStats, adapt *core.AdaptStats) error {
	payload := struct {
		CallStats  core.CallStats   `json:"call_stats"`
		AdaptStats *core.AdaptStats `json:"adapt_stats,omitempty"`
	}{CallStats: call, AdaptStats: adapt}
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "stats json: %s\n", data)
	return nil
}
