package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nitro/internal/core"
	"nitro/internal/ml"
	"nitro/internal/sparse"
)

func smallSpec() Spec {
	return Spec{
		Function:   "sort",
		Benchmark:  "Sort",
		Classifier: "svm",
		Scale:      0.1,
		Seed:       3,
		TrainCount: 12,
		TestCount:  12,
		Evaluate:   true,
	}
}

func TestRunSpecBenchmarkMode(t *testing.T) {
	spec := smallSpec()
	spec.ModelOut = filepath.Join(t.TempDir(), "sort.model.json")
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"3 variants", "trained on", "model written", "test evaluation"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(spec.ModelOut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ml.UnmarshalModel(data); err != nil {
		t.Errorf("written model does not parse: %v", err)
	}
}

func TestRunSpecIncrementalMode(t *testing.T) {
	spec := smallSpec()
	spec.Incremental = &struct {
		Iterations     int     `json:"iterations"`
		TargetAccuracy float64 `json:"target_accuracy"`
	}{Iterations: 5}
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "incremental tuning") {
		t.Errorf("output missing incremental report:\n%s", buf.String())
	}
}

func TestRunSpecUnknownBenchmark(t *testing.T) {
	spec := smallSpec()
	spec.Benchmark = "Nope"
	if err := runSpec(spec, &bytes.Buffer{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunSpecMatrixMarketGlob(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, m *sparse.CSR) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := sparse.WriteMatrixMarket(f, m.ToCOO()); err != nil {
			t.Fatal(err)
		}
	}
	// A corpus spanning two regimes so training has at least two labels.
	for i := 0; i < 3; i++ {
		write("stencil"+string(rune('a'+i))+".mtx", sparse.Stencil2D(20+4*i, 20+4*i))
		write("powerlaw"+string(rune('a'+i))+".mtx", sparse.PowerLaw(800+100*i, 8, 1.4, int64(i)))
	}
	spec := Spec{
		Function:  "spmv",
		Benchmark: "SpMV",
		Seed:      1,
		TrainGlob: filepath.Join(dir, "*.mtx"),
		TestGlob:  filepath.Join(dir, "stencil*.mtx"),
		Evaluate:  true,
	}
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "6 training") {
		t.Errorf("glob loading wrong:\n%s", buf.String())
	}
}

func TestRunSpecGlobErrors(t *testing.T) {
	spec := Spec{Function: "spmv", TrainGlob: filepath.Join(t.TempDir(), "*.mtx")}
	if err := runSpec(spec, &bytes.Buffer{}); err == nil {
		t.Error("empty glob accepted")
	}
	spec2 := Spec{Function: "bfs", Benchmark: "BFS", TrainGlob: "x/*.mtx"}
	if err := runSpec(spec2, &bytes.Buffer{}); err == nil {
		t.Error("file mode for non-SpMV benchmark accepted")
	}
}

func TestRunSpecThroughputReplay(t *testing.T) {
	spec := smallSpec()
	spec.Throughput = 200
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"deployment replay: 200 selections", "serial:", "concurrent:", "constraint fallbacks:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both passes ran, so the replay context recorded 2 * Throughput calls.
	if !strings.Contains(out, "of 400 calls") {
		t.Errorf("replay stats should count both passes (400 calls):\n%s", out)
	}
}

func TestRunSpecPolicyAndCrossValidate(t *testing.T) {
	spec := smallSpec()
	off := false
	spec.Constraints = &off
	spec.ParallelFeatureEval = true
	spec.AsyncFeatureEval = true
	spec.PolicyOut = filepath.Join(t.TempDir(), "policy.json")
	spec.CrossValidate = 3
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tuning policy written") || !strings.Contains(out, "cross-validated") {
		t.Errorf("output missing policy/CV lines:\n%s", out)
	}
	data, err := os.ReadFile(spec.PolicyOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"ParallelFeatureEval\": true", "\"AsyncFeatureEval\": true", "\"ConstraintsEnabled\": false"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("policy file missing %q:\n%s", want, data)
		}
	}
}

func TestValidateSpecTable(t *testing.T) {
	mut := func(f func(*Spec)) Spec {
		s := smallSpec()
		f(&s)
		return s
	}
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid", smallSpec(), true},
		{"empty function", mut(func(s *Spec) { s.Function = "" }), false},
		{"no corpus source", mut(func(s *Spec) { s.Benchmark = "" }), false},
		{"negative scale", mut(func(s *Spec) { s.Scale = -1 }), false},
		{"negative train count", mut(func(s *Spec) { s.TrainCount = -5 }), false},
		{"negative test count", mut(func(s *Spec) { s.TestCount = -1 }), false},
		{"negative parallelism", mut(func(s *Spec) { s.Parallelism = -2 }), false},
		{"negative throughput", mut(func(s *Spec) { s.Throughput = -1 }), false},
		{"one-fold cross validation", mut(func(s *Spec) { s.CrossValidate = 1 }), false},
		{"negative cross validation", mut(func(s *Spec) { s.CrossValidate = -3 }), false},
		{"valid cross validation", mut(func(s *Spec) { s.CrossValidate = 3 }), true},
		{"incremental negative iterations", mut(func(s *Spec) {
			s.Incremental = &struct {
				Iterations     int     `json:"iterations"`
				TargetAccuracy float64 `json:"target_accuracy"`
			}{Iterations: -1}
		}), false},
		{"incremental zero iterations no target", mut(func(s *Spec) {
			s.Incremental = &struct {
				Iterations     int     `json:"iterations"`
				TargetAccuracy float64 `json:"target_accuracy"`
			}{}
		}), false},
		{"incremental zero iterations with target", mut(func(s *Spec) {
			s.Incremental = &struct {
				Iterations     int     `json:"iterations"`
				TargetAccuracy float64 `json:"target_accuracy"`
			}{TargetAccuracy: 0.9}
		}), true},
		{"incremental bad target", mut(func(s *Spec) {
			s.Incremental = &struct {
				Iterations     int     `json:"iterations"`
				TargetAccuracy float64 `json:"target_accuracy"`
			}{Iterations: 5, TargetAccuracy: 2}
		}), false},
		{"inject faults without throughput", mut(func(s *Spec) { s.InjectFaults = "variant=Merge,panic=0.1" }), false},
		{"inject faults with throughput", mut(func(s *Spec) {
			s.Throughput = 10
			s.InjectFaults = "variant=Merge,panic=0.1"
		}), true},
		{"inject faults bad spec", mut(func(s *Spec) {
			s.Throughput = 10
			s.InjectFaults = "panic=0.1" // no variant
		}), false},
		{"inject faults rates over 1", mut(func(s *Spec) {
			s.Throughput = 10
			s.InjectFaults = "variant=Merge,panic=0.7,error=0.7"
		}), false},
		{"inject faults bad number", mut(func(s *Spec) {
			s.Throughput = 10
			s.InjectFaults = "variant=Merge,panic=lots"
		}), false},
		{"inject faults unknown key", mut(func(s *Spec) {
			s.Throughput = 10
			s.InjectFaults = "variant=Merge,frobnicate=1"
		}), false},
		{"negative online replay", mut(func(s *Spec) { s.OnlineReplay = -1 }), false},
		{"drift_at out of range", mut(func(s *Spec) {
			s.OnlineReplay = 100
			s.DriftAt = 1
		}), false},
		{"drift_at without online replay", mut(func(s *Spec) { s.DriftAt = 0.5 }), false},
		{"stats_json without replay", mut(func(s *Spec) { s.StatsJSON = true }), false},
		{"stats_json with online replay", mut(func(s *Spec) {
			s.StatsJSON = true
			s.OnlineReplay = 100
		}), true},
		{"valid online replay", mut(func(s *Spec) {
			s.OnlineReplay = 100
			s.DriftAt = 0.25
		}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateSpec(tc.spec)
			if tc.ok && err != nil {
				t.Fatalf("valid spec rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("invalid spec accepted")
				}
				if !errors.Is(err, errBadSpec) {
					t.Fatalf("error %v does not wrap errBadSpec", err)
				}
			}
		})
	}
}

func TestRunSpecRejectsInvalidWithoutPartialOutput(t *testing.T) {
	spec := smallSpec()
	spec.Parallelism = -4
	var buf bytes.Buffer
	err := runSpec(spec, &buf)
	if !errors.Is(err, errBadSpec) {
		t.Fatalf("err = %v, want errBadSpec", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("invalid spec produced partial output:\n%s", buf.String())
	}
}

func TestParseFaultSpec(t *testing.T) {
	fs, err := parseFaultSpec("variant=Radix, panic=0.15, error=0.05, delay=0.1, delayms=30, timeoutms=5, seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if fs.Variant != "Radix" || fs.Cfg.PanicRate != 0.15 || fs.Cfg.ErrorRate != 0.05 ||
		fs.Cfg.DelayRate != 0.1 || fs.Cfg.Delay != 30*time.Millisecond ||
		fs.Timeout != 5*time.Millisecond || fs.Cfg.Seed != 9 {
		t.Fatalf("parsed %+v", fs)
	}
}

// TestRunSpecInjectFaults runs the graceful-degradation demo end to end: a
// throughput replay with one variant panicking 15% and hanging 10% of the
// time must complete (no process crash), report the fault counters, and show
// the variant quarantined.
func TestRunSpecInjectFaults(t *testing.T) {
	spec := smallSpec()
	spec.Throughput = 400
	spec.InjectFaults = "variant=Merge,panic=0.15,delay=0.10,delayms=30,timeoutms=5,seed=11"
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fault injection: variant \"Merge\"", "graceful degradation:", "quarantine:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// onlineSpec is the shared online-replay configuration: 600 calls with the
// synthetic drift injected at the default 30% mark.
func onlineSpec() Spec {
	spec := smallSpec()
	spec.Evaluate = false
	spec.OnlineReplay = 600
	return spec
}

// TestRunSpecOnlineReplay drives the adaptation loop through the CLI: the
// replay must detect the injected drift, retrain on the explored samples,
// hot-swap a v2 model, and recover — and report it all machine-readably
// through -stats-json.
func TestRunSpecOnlineReplay(t *testing.T) {
	spec := onlineSpec()
	spec.StatsJSON = true
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"online replay: 600 calls",
		"drift injected at call 180",
		"adaptation timeline:",
		"] drift: ",
		"] retrain (",
		"] swap (v1 -> v2",
		"] recovered: ",
		"installed model: v2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The stats json line must parse back into the typed snapshots.
	idx := strings.Index(out, "stats json: ")
	if idx < 0 {
		t.Fatalf("no stats json line:\n%s", out)
	}
	line := out[idx+len("stats json: "):]
	line = line[:strings.Index(line, "\n")]
	var payload struct {
		CallStats  core.CallStats   `json:"call_stats"`
		AdaptStats *core.AdaptStats `json:"adapt_stats"`
	}
	if err := json.Unmarshal([]byte(line), &payload); err != nil {
		t.Fatalf("stats json does not parse: %v\n%s", err, line)
	}
	if payload.CallStats.Calls != 600 {
		t.Errorf("call_stats.calls = %d, want 600", payload.CallStats.Calls)
	}
	if payload.AdaptStats == nil || payload.AdaptStats.Swaps < 1 || payload.AdaptStats.ModelVersion < 2 {
		t.Errorf("adapt_stats did not record the swap: %+v", payload.AdaptStats)
	}
}

// TestRunSpecOnlineReplayDeterministic is the reproducibility contract: two
// runs of the same spec must produce byte-identical output, timeline
// included. (StatsJSON stays off: CallStats.TotalValue sums float values
// across randomly picked statistics shards, so its last bits are not
// deterministic — everything the replay itself prints is.)
func TestRunSpecOnlineReplayDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		if err := runSpec(onlineSpec(), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("online replay not reproducible:\nrun A:\n%s\nrun B:\n%s", a, b)
	}
	if !strings.Contains(a, "] swap (") {
		t.Fatalf("replay never swapped:\n%s", a)
	}
}

// TestRunSpecOnlineReplayIncremental routes the retrain through the BvSB
// incremental loop (spec.incremental applies to online retrains too).
func TestRunSpecOnlineReplayIncremental(t *testing.T) {
	spec := onlineSpec()
	spec.Incremental = &struct {
		Iterations     int     `json:"iterations"`
		TargetAccuracy float64 `json:"target_accuracy"`
	}{Iterations: 10}
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "] retrain (") {
		t.Errorf("incremental online replay never retrained:\n%s", buf.String())
	}
}

// TestRunSpecThroughputStatsJSON covers the stats json emission on the plain
// throughput replay (no adaptation engine → no adapt_stats key).
func TestRunSpecThroughputStatsJSON(t *testing.T) {
	spec := smallSpec()
	spec.Throughput = 100
	spec.StatsJSON = true
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "stats json: ") {
		t.Fatalf("no stats json line:\n%s", out)
	}
	if strings.Contains(out, "adapt_stats") {
		t.Errorf("throughput-only replay should omit adapt_stats:\n%s", out)
	}
	if !strings.Contains(out, `"calls":200`) {
		t.Errorf("stats json should count both passes (200 calls):\n%s", out)
	}
}

func TestRunSpecInjectFaultsUnknownVariant(t *testing.T) {
	spec := smallSpec()
	spec.Throughput = 10
	spec.InjectFaults = "variant=NoSuchVariant,panic=0.1"
	if err := runSpec(spec, &bytes.Buffer{}); !errors.Is(err, errBadSpec) {
		t.Fatalf("err = %v, want errBadSpec for unknown variant", err)
	}
}

// TestRunSpecDistill checks that "distill": true produces a model file with a
// compiled dispatch artifact installed (or, if the gates reject it, that the
// rejection is reported instead of silently dropped).
func TestRunSpecDistill(t *testing.T) {
	spec := smallSpec()
	spec.Distill = true
	spec.ModelOut = filepath.Join(t.TempDir(), "sort.model.json")
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "compiled dispatch:") {
		t.Fatalf("output missing compiled dispatch report:\n%s", out)
	}
	data, err := os.ReadFile(spec.ModelOut)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ml.UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "not installed") {
		if model.Compiled != nil {
			t.Error("report says not installed but artifact present")
		}
	} else if model.Compiled == nil {
		t.Errorf("distilled artifact missing from written model:\n%s", out)
	} else if model.Compiled.Agreement < 0.99 {
		t.Errorf("installed artifact agreement %v below gate", model.Compiled.Agreement)
	}
}

// TestRunSpecDistillIncremental: the distill hook also runs on the
// incremental-tuning path.
func TestRunSpecDistillIncremental(t *testing.T) {
	spec := smallSpec()
	spec.Distill = true
	spec.Incremental = &struct {
		Iterations     int     `json:"iterations"`
		TargetAccuracy float64 `json:"target_accuracy"`
	}{Iterations: 5}
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compiled dispatch:") {
		t.Errorf("output missing compiled dispatch report:\n%s", buf.String())
	}
}
