package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nitro/internal/ml"
	"nitro/internal/sparse"
)

func smallSpec() Spec {
	return Spec{
		Function:   "sort",
		Benchmark:  "Sort",
		Classifier: "svm",
		Scale:      0.1,
		Seed:       3,
		TrainCount: 12,
		TestCount:  12,
		Evaluate:   true,
	}
}

func TestRunSpecBenchmarkMode(t *testing.T) {
	spec := smallSpec()
	spec.ModelOut = filepath.Join(t.TempDir(), "sort.model.json")
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"3 variants", "trained on", "model written", "test evaluation"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(spec.ModelOut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ml.UnmarshalModel(data); err != nil {
		t.Errorf("written model does not parse: %v", err)
	}
}

func TestRunSpecIncrementalMode(t *testing.T) {
	spec := smallSpec()
	spec.Incremental = &struct {
		Iterations     int     `json:"iterations"`
		TargetAccuracy float64 `json:"target_accuracy"`
	}{Iterations: 5}
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "incremental tuning") {
		t.Errorf("output missing incremental report:\n%s", buf.String())
	}
}

func TestRunSpecUnknownBenchmark(t *testing.T) {
	spec := smallSpec()
	spec.Benchmark = "Nope"
	if err := runSpec(spec, &bytes.Buffer{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunSpecMatrixMarketGlob(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, m *sparse.CSR) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := sparse.WriteMatrixMarket(f, m.ToCOO()); err != nil {
			t.Fatal(err)
		}
	}
	// A corpus spanning two regimes so training has at least two labels.
	for i := 0; i < 3; i++ {
		write("stencil"+string(rune('a'+i))+".mtx", sparse.Stencil2D(20+4*i, 20+4*i))
		write("powerlaw"+string(rune('a'+i))+".mtx", sparse.PowerLaw(800+100*i, 8, 1.4, int64(i)))
	}
	spec := Spec{
		Function:  "spmv",
		Benchmark: "SpMV",
		Seed:      1,
		TrainGlob: filepath.Join(dir, "*.mtx"),
		TestGlob:  filepath.Join(dir, "stencil*.mtx"),
		Evaluate:  true,
	}
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "6 training") {
		t.Errorf("glob loading wrong:\n%s", buf.String())
	}
}

func TestRunSpecGlobErrors(t *testing.T) {
	spec := Spec{Function: "spmv", TrainGlob: filepath.Join(t.TempDir(), "*.mtx")}
	if err := runSpec(spec, &bytes.Buffer{}); err == nil {
		t.Error("empty glob accepted")
	}
	spec2 := Spec{Function: "bfs", Benchmark: "BFS", TrainGlob: "x/*.mtx"}
	if err := runSpec(spec2, &bytes.Buffer{}); err == nil {
		t.Error("file mode for non-SpMV benchmark accepted")
	}
}

func TestRunSpecThroughputReplay(t *testing.T) {
	spec := smallSpec()
	spec.Throughput = 200
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"deployment replay: 200 selections", "serial:", "concurrent:", "constraint fallbacks:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both passes ran, so the replay context recorded 2 * Throughput calls.
	if !strings.Contains(out, "of 400 calls") {
		t.Errorf("replay stats should count both passes (400 calls):\n%s", out)
	}
}

func TestRunSpecPolicyAndCrossValidate(t *testing.T) {
	spec := smallSpec()
	off := false
	spec.Constraints = &off
	spec.ParallelFeatureEval = true
	spec.AsyncFeatureEval = true
	spec.PolicyOut = filepath.Join(t.TempDir(), "policy.json")
	spec.CrossValidate = 3
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tuning policy written") || !strings.Contains(out, "cross-validated") {
		t.Errorf("output missing policy/CV lines:\n%s", out)
	}
	data, err := os.ReadFile(spec.PolicyOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"ParallelFeatureEval\": true", "\"AsyncFeatureEval\": true", "\"ConstraintsEnabled\": false"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("policy file missing %q:\n%s", want, data)
		}
	}
}
