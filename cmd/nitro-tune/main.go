// Command nitro-tune is the Go stand-in for the paper's Python tuning script
// (Fig. 3): it reads a JSON tuning specification, runs the offline autotuner
// over a training corpus, writes the deployable model file, and optionally
// evaluates it on the held-out test corpus.
//
// Two input modes are supported:
//
//   - "benchmark": one of the built-in corpora (SpMV, Solvers, BFS,
//     Histogram, Sort), generated synthetically at the configured scale;
//   - "train_glob"/"test_glob" (SpMV only): MatrixMarket .mtx files, the
//     paper's own training-input mechanism
//     (tuner.set_training_args(glob.glob("inputs/training/*.mtx"))).
//
// Example spec:
//
//	{
//	  "function":   "spmv",
//	  "benchmark":  "SpMV",
//	  "classifier": "svm",
//	  "grid_search": true,
//	  "incremental": {"iterations": 25},
//	  "scale": 0.5,
//	  "seed": 42,
//	  "model_out": "spmv.model.json",
//	  "evaluate": true
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/core"
	"nitro/internal/datasets"
	"nitro/internal/gpusim"
	"nitro/internal/ml"
	"nitro/internal/par"
	"nitro/internal/sparse"
)

// Spec is the JSON tuning specification.
type Spec struct {
	Function   string  `json:"function"`
	Benchmark  string  `json:"benchmark"`
	Classifier string  `json:"classifier"`
	GridSearch bool    `json:"grid_search"`
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	TrainCount int     `json:"train_count"`
	TestCount  int     `json:"test_count"`
	ModelOut   string  `json:"model_out"`
	Evaluate   bool    `json:"evaluate"`

	// Parallelism is the worker count used for corpus labelling and the SVM
	// grid search (0 = all cores, 1 = serial). Results are bit-identical at
	// every setting; the -parallelism flag overrides the spec value.
	Parallelism int `json:"parallelism"`

	TrainGlob string `json:"train_glob"`
	TestGlob  string `json:"test_glob"`

	Incremental *struct {
		Iterations     int     `json:"iterations"`
		TargetAccuracy float64 `json:"target_accuracy"`
	} `json:"incremental"`

	// The remaining Table II options of the paper's tuning interface. They
	// configure the deployment-time tuning policy which, like the paper's
	// generated header, is written to PolicyOut for the application to load.
	Constraints         *bool  `json:"constraints"`
	ParallelFeatureEval bool   `json:"parallel_feature_evaluation"`
	AsyncFeatureEval    bool   `json:"async_feature_eval"`
	PolicyOut           string `json:"policy_out"`

	// CrossValidate, when >= 2, additionally reports k-fold cross-validated
	// selection performance on the training corpus.
	CrossValidate int `json:"cross_validate"`

	// Throughput, when > 0, replays that many deployment-time selections of
	// the tuned model over the feasible test instances through a live
	// core.CodeVariant — once serially and once fanned over all cores — and
	// reports calls/sec plus the concurrent speedup. This exercises the
	// lock-free selection engine (atomic model load, constraint check,
	// sharded statistics), not the simulated kernels. The -throughput flag
	// overrides the spec value.
	Throughput int `json:"throughput"`
}

func main() {
	specPath := flag.String("spec", "", "path to the JSON tuning spec (required)")
	parallelism := flag.Int("parallelism", -1, "worker count for corpus labelling and grid search (0 = all cores, 1 = serial, -1 = use spec value); results are identical at every setting")
	throughput := flag.Int("throughput", -1, "number of deployment-replay selections to time after tuning (0 = none, -1 = use spec value)")
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "usage: nitro-tune -spec tuning.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		fatal(fmt.Errorf("bad spec: %w", err))
	}
	if *parallelism >= 0 {
		spec.Parallelism = *parallelism
	}
	if *throughput >= 0 {
		spec.Throughput = *throughput
	}
	if err := runSpec(spec, os.Stdout); err != nil {
		fatal(err)
	}
}

func runSpec(spec Spec, out io.Writer) error {
	dev := gpusim.Fermi()
	suite, err := buildSuite(spec, dev)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "function %q: %d variants, %d features, %d training / %d test inputs\n",
		spec.Function, len(suite.VariantNames), len(suite.FeatureNames), len(suite.Train), len(suite.Test))

	opts := autotuner.TrainOptions{
		Classifier:  spec.Classifier,
		GridSearch:  spec.GridSearch,
		Seed:        spec.Seed,
		Parallelism: spec.Parallelism,
	}
	var model *ml.Model
	if spec.Incremental != nil {
		res, err := autotuner.IncrementalTune(suite, autotuner.IncrementalOptions{
			TrainOptions:   opts,
			MaxIterations:  spec.Incremental.Iterations,
			TargetAccuracy: spec.Incremental.TargetAccuracy,
		}, suite)
		if err != nil {
			return err
		}
		model = res.Model
		fmt.Fprintf(out, "incremental tuning: seed %d, %d exhaustive-search queries\n", res.SeedSize, res.Queries)
	} else {
		m, rep, err := autotuner.Train(suite.Train, opts)
		if err != nil {
			return err
		}
		model = m
		fmt.Fprintf(out, "trained on %d labelled inputs (%d skipped), training accuracy %.1f%%\n",
			len(rep.Labels), rep.Skipped, 100*rep.TrainAccuracy)
		if rep.Grid.Evaluated > 0 {
			fmt.Fprintf(out, "grid search: C=%g gamma=%g (CV accuracy %.1f%%, %d points)\n",
				rep.Grid.C, rep.Grid.Gamma, 100*rep.Grid.Accuracy, rep.Grid.Evaluated)
		}
	}
	if spec.ModelOut != "" {
		data, err := ml.MarshalModel(model)
		if err != nil {
			return err
		}
		if err := os.WriteFile(spec.ModelOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "model written to %s\n", spec.ModelOut)
	}
	if spec.PolicyOut != "" {
		policy := core.TuningPolicy{
			Name:                spec.Function,
			ParallelFeatureEval: spec.ParallelFeatureEval,
			AsyncFeatureEval:    spec.AsyncFeatureEval,
			ConstraintsEnabled:  spec.Constraints == nil || *spec.Constraints,
		}
		data, err := json.MarshalIndent(policy, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(spec.PolicyOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "tuning policy written to %s\n", spec.PolicyOut)
	}
	if spec.CrossValidate >= 2 {
		cvPerf, err := autotuner.CrossValidateSuite(suite, opts, spec.CrossValidate)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d-fold cross-validated selection performance: %.2f%%\n",
			spec.CrossValidate, 100*cvPerf)
	}
	if spec.Evaluate {
		eval := autotuner.Evaluate(model, suite, suite.Test)
		fmt.Fprintf(out, "test evaluation: %.2f%% of exhaustive-search performance (%d/%d exact picks)\n",
			100*eval.MeanPerf, eval.ExactMatches, eval.Evaluated)
	}
	if spec.Throughput > 0 {
		if err := replayThroughput(spec, suite, model, out); err != nil {
			return err
		}
	}
	return nil
}

// replayThroughput installs the tuned model into a fresh context, wraps the
// suite in a live replay CodeVariant (autotuner.ReplayVariant), and times
// spec.Throughput deployment-time selections over the feasible test
// instances: once serially and once fanned over all cores. The replay
// variants return pre-measured costs, so what is being measured is the
// selection engine itself — atomic model load, feature evaluation,
// constraint check, sharded statistics — not the simulated kernels.
func replayThroughput(spec Spec, suite *autotuner.Suite, model *ml.Model, out io.Writer) error {
	feasible := autotuner.FeasibleTest(suite)
	if len(feasible) == 0 {
		return fmt.Errorf("throughput replay: no feasible test instances (set test_count or evaluate a benchmark with test inputs)")
	}
	cx := core.NewContext()
	cx.SetModel(spec.Function, model)
	policy := core.TuningPolicy{
		Name:                spec.Function,
		ParallelFeatureEval: spec.ParallelFeatureEval,
		AsyncFeatureEval:    spec.AsyncFeatureEval,
		ConstraintsEnabled:  spec.Constraints == nil || *spec.Constraints,
	}
	cv, err := autotuner.ReplayVariant(cx, suite, policy)
	if err != nil {
		return err
	}
	batch := make([]autotuner.Instance, spec.Throughput)
	for i := range batch {
		batch[i] = feasible[i%len(feasible)]
	}
	run := func(parallelism int) (float64, error) {
		start := time.Now()
		for _, r := range cv.CallConcurrent(batch, parallelism) {
			if r.Err != nil {
				return 0, r.Err
			}
		}
		elapsed := time.Since(start)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		return float64(len(batch)) / elapsed.Seconds(), nil
	}
	serial, err := run(1)
	if err != nil {
		return err
	}
	concurrent, err := run(0)
	if err != nil {
		return err
	}
	st := cx.Stats(spec.Function)
	fmt.Fprintf(out, "deployment replay: %d selections over %d feasible test inputs\n", spec.Throughput, len(feasible))
	fmt.Fprintf(out, "  serial:     %.0f calls/sec\n", serial)
	fmt.Fprintf(out, "  concurrent: %.0f calls/sec (%.2fx, %d workers)\n", concurrent, concurrent/serial, par.Workers(0))
	fmt.Fprintf(out, "  constraint fallbacks: %d of %d calls\n", st.DefaultFallbacks, st.Calls)
	return nil
}

func buildSuite(spec Spec, dev *gpusim.Device) (*autotuner.Suite, error) {
	if spec.TrainGlob != "" {
		if !strings.EqualFold(spec.Benchmark, "SpMV") && spec.Benchmark != "" {
			return nil, fmt.Errorf("file-based tuning is supported for SpMV only")
		}
		return spmvSuiteFromFiles(spec, dev)
	}
	cfg := datasets.Config{Seed: spec.Seed, Scale: spec.Scale,
		TrainCount: spec.TrainCount, TestCount: spec.TestCount,
		Parallelism: spec.Parallelism}
	for _, b := range datasets.Builders() {
		if strings.EqualFold(b.Name, spec.Benchmark) {
			return b.Build(cfg, dev)
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q (want SpMV, Solvers, BFS, Histogram or Sort)", spec.Benchmark)
}

// spmvSuiteFromFiles builds an SpMV suite from MatrixMarket files.
func spmvSuiteFromFiles(spec Spec, dev *gpusim.Device) (*autotuner.Suite, error) {
	load := func(glob string) ([]autotuner.Instance, error) {
		paths, err := filepath.Glob(glob)
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("no files match %q", glob)
		}
		rng := rand.New(rand.NewSource(spec.Seed))
		var out []autotuner.Instance
		for _, path := range paths {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			coo, err := sparse.ReadMatrixMarket(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			m := coo.ToCSR()
			x := make([]float64, m.Cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			p, err := sparse.NewProblem(m, x)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			inst := autotuner.Instance{ID: filepath.Base(path), Features: p.Features().Vector()}
			for _, v := range sparse.Variants() {
				if v.Constraint != nil && !v.Constraint(p) {
					inst.Times = append(inst.Times, math.Inf(1))
					continue
				}
				res, err := v.Run(p, dev)
				if err != nil {
					inst.Times = append(inst.Times, math.Inf(1))
					continue
				}
				inst.Times = append(inst.Times, res.Seconds)
			}
			out = append(out, inst)
		}
		return out, nil
	}
	suite := &autotuner.Suite{
		Name:           "SpMV",
		VariantNames:   sparse.VariantNames(),
		FeatureNames:   sparse.FeatureNames(),
		DefaultVariant: 0,
	}
	var err error
	if suite.Train, err = load(spec.TrainGlob); err != nil {
		return nil, err
	}
	if spec.TestGlob != "" {
		if suite.Test, err = load(spec.TestGlob); err != nil {
			return nil, err
		}
	}
	return suite, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nitro-tune:", err)
	os.Exit(1)
}
