// Command nitro-tune is the Go stand-in for the paper's Python tuning script
// (Fig. 3): it reads a JSON tuning specification, runs the offline autotuner
// over a training corpus, writes the deployable model file, and optionally
// evaluates it on the held-out test corpus.
//
// Two input modes are supported:
//
//   - "benchmark": one of the built-in corpora (SpMV, Solvers, BFS,
//     Histogram, Sort), generated synthetically at the configured scale;
//   - "train_glob"/"test_glob" (SpMV only): MatrixMarket .mtx files, the
//     paper's own training-input mechanism
//     (tuner.set_training_args(glob.glob("inputs/training/*.mtx"))).
//
// Example spec:
//
//	{
//	  "function":   "spmv",
//	  "benchmark":  "SpMV",
//	  "classifier": "svm",
//	  "grid_search": true,
//	  "incremental": {"iterations": 25},
//	  "scale": 0.5,
//	  "seed": 42,
//	  "model_out": "spmv.model.json",
//	  "evaluate": true
//	}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/core"
	"nitro/internal/datasets"
	"nitro/internal/gpusim"
	"nitro/internal/ml"
	"nitro/internal/obs"
	"nitro/internal/par"
	"nitro/internal/sparse"
)

// Spec is the JSON tuning specification.
type Spec struct {
	Function   string  `json:"function"`
	Benchmark  string  `json:"benchmark"`
	Classifier string  `json:"classifier"`
	GridSearch bool    `json:"grid_search"`
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	TrainCount int     `json:"train_count"`
	TestCount  int     `json:"test_count"`
	ModelOut   string  `json:"model_out"`
	Evaluate   bool    `json:"evaluate"`

	// Distill, when true, distills the fitted classifier into a compiled
	// dispatch artifact over the training corpus and installs it on the
	// written model when it passes the agreement/fallback gates (the
	// sub-100ns deployment fast path). Rejection is not an error — the
	// reason is printed and the exact model ships alone. The -distill flag
	// overrides the spec value.
	Distill bool `json:"distill"`
	// DistillGrid additionally precomputes the O(1) decision-grid lookup on
	// the compiled artifact (low-dimensional functions only).
	DistillGrid bool `json:"distill_grid"`

	// Parallelism is the worker count used for corpus labelling and the SVM
	// grid search (0 = all cores, 1 = serial). Results are bit-identical at
	// every setting; the -parallelism flag overrides the spec value.
	Parallelism int `json:"parallelism"`

	TrainGlob string `json:"train_glob"`
	TestGlob  string `json:"test_glob"`

	Incremental *struct {
		Iterations     int     `json:"iterations"`
		TargetAccuracy float64 `json:"target_accuracy"`
	} `json:"incremental"`

	// The remaining Table II options of the paper's tuning interface. They
	// configure the deployment-time tuning policy which, like the paper's
	// generated header, is written to PolicyOut for the application to load.
	Constraints         *bool  `json:"constraints"`
	ParallelFeatureEval bool   `json:"parallel_feature_evaluation"`
	AsyncFeatureEval    bool   `json:"async_feature_eval"`
	PolicyOut           string `json:"policy_out"`

	// CrossValidate, when >= 2, additionally reports k-fold cross-validated
	// selection performance on the training corpus.
	CrossValidate int `json:"cross_validate"`

	// Throughput, when > 0, replays that many deployment-time selections of
	// the tuned model over the feasible test instances through a live
	// core.CodeVariant — once serially and once fanned over all cores — and
	// reports calls/sec plus the concurrent speedup. This exercises the
	// lock-free selection engine (atomic model load, constraint check,
	// sharded statistics), not the simulated kernels. The -throughput flag
	// overrides the spec value.
	Throughput int `json:"throughput"`

	// InjectFaults, when non-empty, injects seeded faults into one variant of
	// the throughput replay to demonstrate graceful degradation. Format:
	// "variant=<name>[,panic=R][,error=R][,delay=R][,delayms=N][,timeoutms=N][,seed=N]"
	// where the R rates are per-call probabilities in [0, 1]. The replay then
	// runs with the quarantine breaker and (when timeoutms is set) a
	// per-variant deadline, and reports the fault counters instead of aborting
	// on the injected failures. Requires Throughput > 0. The -inject-faults
	// flag overrides the spec value.
	InjectFaults string `json:"inject_faults"`

	// OnlineReplay, when > 0, replays that many deployment calls through a
	// live CodeVariant with an online adaptation engine attached, injecting a
	// synthetic concept drift (every instance's per-variant costs rotated by
	// one slot) at DriftAt of the stream, and prints the engine's adaptation
	// timeline: windows, drift detection, retrain, hot-swap (or rollback) and
	// recovery. The replay is serial and seeded, so its output is reproducible
	// byte for byte. The -online-replay flag overrides the spec value.
	OnlineReplay int `json:"online_replay"`
	// DriftAt is the fraction of the online replay stream after which the
	// drift is injected (default 0.3; must be in [0, 1)).
	DriftAt float64 `json:"drift_at"`
	// Bandit, when true, routes the online replay's low-confidence or
	// drift-flagged predictions through a per-function LinUCB contextual
	// bandit instead of uniform exploration: the bandit picks which variant
	// to re-time from the feature vector and learns from the realised
	// regret. Seeded and deterministic — the replay timeline stays
	// reproducible byte for byte. Requires OnlineReplay > 0. The -bandit
	// flag overrides the spec value.
	Bandit bool `json:"bandit"`
	// BanditMinConfidence is the model-confidence floor below which a
	// prediction is handed to the bandit (0 uses the engine default, 0.6;
	// values above 1 flag every prediction). Requires Bandit.
	BanditMinConfidence float64 `json:"bandit_min_confidence"`
	// Bakeoff, when true, replaces the online replay's validate-then-swap
	// promotion with a sequential challenger-vs-incumbent bakeoff on paired
	// live timings: the retrained model is promoted only when the paired-t
	// evidence clears the bound, rejected when the incumbent wins, and the
	// experiment's progress is narrated in the adaptation timeline.
	// Requires OnlineReplay > 0. The -bakeoff flag overrides the spec value.
	Bakeoff bool `json:"bakeoff"`

	// StatsJSON additionally emits the replay context's CallStats — and, for
	// an online replay, the engine's AdaptStats — as one machine-readable JSON
	// line after each replay. Requires Throughput > 0 or OnlineReplay > 0.
	// The -stats-json flag overrides the spec value.
	StatsJSON bool `json:"stats_json"`

	// Trace enables decision tracing on the replay CodeVariant: "off",
	// "sampled" (1-in-64, counter-exact) or "always". A throughput replay
	// reports the number of captured traces; an online replay — which is
	// serial — additionally prints the trace timeline, reproducible byte for
	// byte across runs. Requires Throughput > 0 or OnlineReplay > 0. The
	// -trace flag overrides the spec value.
	Trace string `json:"trace"`

	// PhaseTimings prints the accumulated per-phase wall time of the offline
	// pipeline (corpus generate/label, feature scaling, classifier fit or
	// grid search) after tuning. The -phase-timings flag overrides the spec
	// value.
	PhaseTimings bool `json:"phase_timings"`

	// MetricsAddr, when non-empty, serves the live telemetry endpoint
	// (/metrics Prometheus text, /vars JSON debug view, /healthz) on that
	// address for the duration of the run: tuner phase timings, replay
	// deployment counters and — for an online replay — the adaptation
	// engine's drift gauges. Use "127.0.0.1:0" to pick a free port; the bound
	// address is printed. The -metrics-addr flag overrides the spec value.
	MetricsAddr string `json:"metrics_addr"`
}

// errBadSpec is wrapped by every spec-validation failure, so tests (and
// callers) can detect rejected configurations with errors.Is.
var errBadSpec = errors.New("invalid tuning spec")

// validateSpec rejects nonsensical configurations up front, before any
// tuning work (or partial output) happens.
func validateSpec(spec Spec) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", errBadSpec, fmt.Sprintf(format, args...))
	}
	if spec.Function == "" {
		return bad("function must be set")
	}
	if spec.Benchmark == "" && spec.TrainGlob == "" {
		return bad("either benchmark or train_glob must be set")
	}
	if spec.Scale < 0 {
		return bad("scale %v must be >= 0", spec.Scale)
	}
	if spec.TrainCount < 0 || spec.TestCount < 0 {
		return bad("train_count/test_count must be >= 0, got %d/%d", spec.TrainCount, spec.TestCount)
	}
	if spec.Parallelism < 0 {
		return bad("parallelism %d must be >= 0 (0 = all cores)", spec.Parallelism)
	}
	if spec.Throughput < 0 {
		return bad("throughput %d must be >= 0", spec.Throughput)
	}
	if spec.CrossValidate < 0 || spec.CrossValidate == 1 {
		return bad("cross_validate %d must be 0 (off) or >= 2 folds", spec.CrossValidate)
	}
	if inc := spec.Incremental; inc != nil {
		if inc.Iterations < 0 {
			return bad("incremental.iterations %d must be >= 0", inc.Iterations)
		}
		if inc.Iterations == 0 && inc.TargetAccuracy <= 0 {
			return bad("incremental tuning needs iterations > 0 or target_accuracy > 0")
		}
		if inc.TargetAccuracy < 0 || inc.TargetAccuracy > 1 {
			return bad("incremental.target_accuracy %v must be in [0, 1]", inc.TargetAccuracy)
		}
	}
	if spec.InjectFaults != "" {
		if spec.Throughput <= 0 {
			return bad("inject_faults requires throughput > 0")
		}
		if _, err := parseFaultSpec(spec.InjectFaults); err != nil {
			return fmt.Errorf("%w: %v", errBadSpec, err)
		}
	}
	if spec.OnlineReplay < 0 {
		return bad("online_replay %d must be >= 0", spec.OnlineReplay)
	}
	if spec.DriftAt < 0 || spec.DriftAt >= 1 {
		return bad("drift_at %v must be in [0, 1)", spec.DriftAt)
	}
	if spec.DriftAt > 0 && spec.OnlineReplay == 0 {
		return bad("drift_at requires online_replay > 0")
	}
	if (spec.Bandit || spec.Bakeoff) && spec.OnlineReplay <= 0 {
		return bad("bandit/bakeoff require online_replay > 0")
	}
	if spec.BanditMinConfidence < 0 {
		return bad("bandit_min_confidence %v must be >= 0", spec.BanditMinConfidence)
	}
	if spec.BanditMinConfidence > 0 && !spec.Bandit {
		return bad("bandit_min_confidence requires bandit")
	}
	if spec.StatsJSON && spec.Throughput <= 0 && spec.OnlineReplay <= 0 {
		return bad("stats_json requires throughput > 0 or online_replay > 0")
	}
	if spec.Trace != "" {
		if _, err := obs.ParseTraceMode(spec.Trace); err != nil {
			return fmt.Errorf("%w: %v", errBadSpec, err)
		}
		if spec.Throughput <= 0 && spec.OnlineReplay <= 0 {
			return bad("trace requires throughput > 0 or online_replay > 0")
		}
	}
	return nil
}

// faultSpec is the parsed form of the inject_faults option.
type faultSpec struct {
	Variant string
	Cfg     core.FaultConfig
	Timeout time.Duration
}

// parseFaultSpec parses "variant=NAME,panic=0.15,delay=0.1,delayms=30,...".
func parseFaultSpec(s string) (faultSpec, error) {
	fs := faultSpec{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fs, fmt.Errorf("inject_faults: %q is not key=value", part)
		}
		num := func() (float64, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return 0, fmt.Errorf("inject_faults: bad value %q for %s", val, key)
			}
			return f, nil
		}
		var f float64
		var err error
		switch key {
		case "variant":
			fs.Variant = val
			continue
		default:
			if f, err = num(); err != nil {
				return fs, err
			}
		}
		switch key {
		case "panic":
			fs.Cfg.PanicRate = f
		case "error":
			fs.Cfg.ErrorRate = f
		case "delay":
			fs.Cfg.DelayRate = f
		case "delayms":
			fs.Cfg.Delay = time.Duration(f * float64(time.Millisecond))
		case "timeoutms":
			fs.Timeout = time.Duration(f * float64(time.Millisecond))
		case "seed":
			fs.Cfg.Seed = int64(f)
		default:
			return fs, fmt.Errorf("inject_faults: unknown key %q", key)
		}
	}
	if fs.Variant == "" {
		return fs, errors.New("inject_faults: variant=<name> is required")
	}
	if sum := fs.Cfg.PanicRate + fs.Cfg.ErrorRate + fs.Cfg.DelayRate; sum > 1 {
		return fs, fmt.Errorf("inject_faults: rates sum to %v > 1", sum)
	}
	return fs, nil
}

func main() {
	specPath := flag.String("spec", "", "path to the JSON tuning spec (required)")
	parallelism := flag.Int("parallelism", -1, "worker count for corpus labelling and grid search (0 = all cores, 1 = serial, -1 = use spec value); results are identical at every setting")
	throughput := flag.Int("throughput", -1, "number of deployment-replay selections to time after tuning (0 = none, -1 = use spec value)")
	injectFaults := flag.String("inject-faults", "", "inject seeded faults into one replay variant, e.g. \"variant=CSR,panic=0.15,delay=0.1,delayms=30,timeoutms=5\" (requires a throughput replay; overrides the spec value)")
	onlineReplay := flag.Int("online-replay", -1, "number of deployment calls to replay through an online adaptation engine with a synthetic mid-stream drift (0 = none, -1 = use spec value); the printed timeline is reproducible byte for byte")
	bandit := flag.Bool("bandit", false, "route low-confidence/drift-flagged predictions through a LinUCB contextual bandit during the online replay (overrides the spec value)")
	bakeoff := flag.Bool("bakeoff", false, "promote retrained models through a sequential paired-timing bakeoff instead of validate-then-swap during the online replay (overrides the spec value)")
	statsJSON := flag.Bool("stats-json", false, "emit replay CallStats/AdaptStats as machine-readable JSON lines (requires a throughput or online replay; overrides the spec value)")
	trace := flag.String("trace", "", "decision tracing for the replays: off, sampled or always (requires a throughput or online replay; overrides the spec value)")
	phaseTimings := flag.Bool("phase-timings", false, "print accumulated per-phase wall time of the offline pipeline (overrides the spec value)")
	metricsAddr := flag.String("metrics-addr", "", "serve the live telemetry endpoint (/metrics, /vars, /healthz) on this address for the run, e.g. 127.0.0.1:9090 (overrides the spec value)")
	distill := flag.Bool("distill", false, "distill the fitted classifier into a compiled dispatch artifact when it passes the agreement gates (overrides the spec value)")
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "usage: nitro-tune -spec tuning.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(fmt.Errorf("read spec: %w", err))
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		fatal(fmt.Errorf("bad spec %s: %w", *specPath, err))
	}
	if *parallelism >= 0 {
		spec.Parallelism = *parallelism
	}
	if *throughput >= 0 {
		spec.Throughput = *throughput
	}
	if *injectFaults != "" {
		spec.InjectFaults = *injectFaults
	}
	if *onlineReplay >= 0 {
		spec.OnlineReplay = *onlineReplay
	}
	if *bandit {
		spec.Bandit = true
	}
	if *bakeoff {
		spec.Bakeoff = true
	}
	if *statsJSON {
		spec.StatsJSON = true
	}
	if *trace != "" {
		spec.Trace = *trace
	}
	if *phaseTimings {
		spec.PhaseTimings = true
	}
	if *metricsAddr != "" {
		spec.MetricsAddr = *metricsAddr
	}
	if *distill {
		spec.Distill = true
	}
	if err := runSpec(spec, os.Stdout); err != nil {
		fatal(err)
	}
}

// telemetry bundles the run-scoped observability state runSpec threads
// through the pipeline and the replays: the phase tracker (always present;
// printed only with PhaseTimings), the optional live metrics registry, and
// the parsed trace mode.
type telemetry struct {
	phases   *obs.PhaseTracker
	reg      *obs.Registry // nil unless MetricsAddr is set
	trace    obs.TraceMode
	traceSet bool
}

// newTelemetry builds the run's telemetry state from the validated spec.
func newTelemetry(spec Spec) (*telemetry, error) {
	tel := &telemetry{phases: obs.NewPhaseTracker()}
	if spec.Trace != "" {
		mode, err := obs.ParseTraceMode(spec.Trace)
		if err != nil {
			return nil, err
		}
		tel.trace = mode
		tel.traceSet = true
	}
	if spec.MetricsAddr != "" {
		tel.reg = obs.NewRegistry()
		tel.reg.Register(tel.phases.Collector())
	}
	return tel, nil
}

// enableTracing installs a tracer on the replay CodeVariant when the spec
// asked for one, and registers its counters on the metrics registry.
func (tel *telemetry) enableTracing(cv *core.CodeVariant[autotuner.Instance], function string) *obs.Tracer {
	if !tel.traceSet {
		return nil
	}
	tracer := cv.EnableTracing(obs.TracePolicy{Mode: tel.trace})
	if tel.reg != nil {
		tel.reg.Register(tracer.Collector(function))
	}
	return tracer
}

func runSpec(spec Spec, out io.Writer) error {
	if err := validateSpec(spec); err != nil {
		return err
	}
	tel, err := newTelemetry(spec)
	if err != nil {
		return err
	}
	if tel.reg != nil {
		srv, err := tel.reg.Serve(spec.MetricsAddr)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		// Drain gracefully on teardown so an in-flight scrape finishes its
		// body instead of being cut mid-exposition; the deadline bounds how
		// long a stuck scraper can delay process exit.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // best-effort drain at exit
		}()
		fmt.Fprintf(out, "metrics endpoint: http://%s/metrics\n", srv.Addr())
	}
	dev := gpusim.Fermi()
	suite, err := buildSuite(spec, tel, dev)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "function %q: %d variants, %d features, %d training / %d test inputs\n",
		spec.Function, len(suite.VariantNames), len(suite.FeatureNames), len(suite.Train), len(suite.Test))

	opts := autotuner.TrainOptions{
		Classifier:  spec.Classifier,
		GridSearch:  spec.GridSearch,
		Seed:        spec.Seed,
		Parallelism: spec.Parallelism,
		Phases:      tel.phases,
		Distill:     spec.Distill,
		DistillOpts: ml.DistillOptions{Grid: spec.DistillGrid},
	}
	var model *ml.Model
	var distillNote string
	if spec.Incremental != nil {
		res, err := autotuner.IncrementalTune(suite, autotuner.IncrementalOptions{
			TrainOptions:   opts,
			MaxIterations:  spec.Incremental.Iterations,
			TargetAccuracy: spec.Incremental.TargetAccuracy,
		}, suite)
		if err != nil {
			return err
		}
		model = res.Model
		distillNote = res.DistillNote
		fmt.Fprintf(out, "incremental tuning: seed %d, %d exhaustive-search queries\n", res.SeedSize, res.Queries)
	} else {
		m, rep, err := autotuner.Train(suite.Train, opts)
		if err != nil {
			return err
		}
		model = m
		distillNote = rep.DistillNote
		fmt.Fprintf(out, "trained on %d labelled inputs (%d skipped), training accuracy %.1f%%\n",
			len(rep.Labels), rep.Skipped, 100*rep.TrainAccuracy)
		if rep.Grid.Evaluated > 0 {
			fmt.Fprintf(out, "grid search: C=%g gamma=%g (CV accuracy %.1f%%, %d points)\n",
				rep.Grid.C, rep.Grid.Gamma, 100*rep.Grid.Accuracy, rep.Grid.Evaluated)
		}
	}
	if spec.Distill {
		if c := model.Compiled; c != nil {
			fmt.Fprintf(out, "compiled dispatch: %d nodes depth %d, agreement %.2f%%, exact fallback %.1f%%\n",
				len(c.Nodes), c.Depth(), 100*c.Agreement, 100*c.FallbackRate)
		} else {
			fmt.Fprintf(out, "compiled dispatch: not installed (%s)\n", distillNote)
		}
	}
	if spec.ModelOut != "" {
		data, err := ml.MarshalModel(model)
		if err != nil {
			return err
		}
		if err := os.WriteFile(spec.ModelOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "model written to %s\n", spec.ModelOut)
	}
	if spec.PolicyOut != "" {
		policy := core.TuningPolicy{
			Name:                spec.Function,
			ParallelFeatureEval: spec.ParallelFeatureEval,
			AsyncFeatureEval:    spec.AsyncFeatureEval,
			ConstraintsEnabled:  spec.Constraints == nil || *spec.Constraints,
		}
		data, err := json.MarshalIndent(policy, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(spec.PolicyOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "tuning policy written to %s\n", spec.PolicyOut)
	}
	if spec.CrossValidate >= 2 {
		cvPerf, err := autotuner.CrossValidateSuite(suite, opts, spec.CrossValidate)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d-fold cross-validated selection performance: %.2f%%\n",
			spec.CrossValidate, 100*cvPerf)
	}
	if spec.Evaluate {
		eval := autotuner.Evaluate(model, suite, suite.Test)
		fmt.Fprintf(out, "test evaluation: %.2f%% of exhaustive-search performance (%d/%d exact picks)\n",
			100*eval.MeanPerf, eval.ExactMatches, eval.Evaluated)
	}
	if spec.Throughput > 0 {
		if err := replayThroughput(spec, tel, suite, model, out); err != nil {
			return err
		}
	}
	if spec.OnlineReplay > 0 {
		if err := runOnlineReplay(spec, tel, suite, model, out); err != nil {
			return err
		}
	}
	if spec.PhaseTimings {
		fmt.Fprintln(out, tel.phases)
	}
	if tel.reg != nil {
		// Self-scrape before shutdown: validate the exposition the endpoint
		// served (format + nitro_ name lint) and report its size, so a batch
		// run leaves evidence of what a scraper would have seen.
		text, err := tel.reg.PrometheusText()
		if err != nil {
			return fmt.Errorf("metrics exposition: %w", err)
		}
		if err := obs.ValidatePrometheusText(text); err != nil {
			return fmt.Errorf("metrics exposition: %w", err)
		}
		fmt.Fprintf(out, "metrics exposition valid: %d lines at shutdown\n", strings.Count(text, "\n"))
	}
	return nil
}

// replayThroughput installs the tuned model into a fresh context, wraps the
// suite in a live replay CodeVariant (autotuner.ReplayVariant), and times
// spec.Throughput deployment-time selections over the feasible test
// instances: once serially and once fanned over all cores. The replay
// variants return pre-measured costs, so what is being measured is the
// selection engine itself — atomic model load, feature evaluation,
// constraint check, sharded statistics — not the simulated kernels.
func replayThroughput(spec Spec, tel *telemetry, suite *autotuner.Suite, model *ml.Model, out io.Writer) error {
	feasible := autotuner.FeasibleTest(suite)
	if len(feasible) == 0 {
		return fmt.Errorf("throughput replay: no feasible test instances (set test_count or evaluate a benchmark with test inputs)")
	}
	var inject *faultSpec
	if spec.InjectFaults != "" {
		fs, err := parseFaultSpec(spec.InjectFaults)
		if err != nil {
			return err
		}
		inject = &fs
	}
	cx := core.NewContext()
	policy := core.TuningPolicy{
		Name:                spec.Function,
		ParallelFeatureEval: spec.ParallelFeatureEval,
		AsyncFeatureEval:    spec.AsyncFeatureEval,
		ConstraintsEnabled:  spec.Constraints == nil || *spec.Constraints,
	}
	if inject != nil {
		// Fault injection exercises the degradation machinery: quarantine the
		// flaky variant after repeated failures and (when configured) bound
		// each invocation with a deadline.
		policy.Quarantine = core.DefaultQuarantine()
		policy.VariantTimeout = inject.Timeout
	}
	// Build the replay variant first so the context knows the function's
	// shape, then install the model — SetModel validates it against the
	// registered features/variants and rejects a mismatched artifact.
	cv, err := autotuner.ReplayVariant(cx, suite, policy)
	if err != nil {
		return err
	}
	if err := cx.SetModel(spec.Function, model); err != nil {
		return err
	}
	tracer := tel.enableTracing(cv, spec.Function)
	if tel.reg != nil {
		// The endpoint's deployment view: per-function counters, per-variant
		// latency histograms, and the CallStats JSON debug var.
		cx.EnableLatencyHistograms(spec.Function)
		tel.reg.Register(cx.Collector())
		tel.reg.RegisterVar("call_stats:"+spec.Function, func() any { return cx.Stats(spec.Function) })
	}
	if inject != nil {
		found := false
		cv.WrapVariants(func(name string, fn core.VariantFn[autotuner.Instance]) core.VariantFn[autotuner.Instance] {
			if name != inject.Variant {
				return fn
			}
			found = true
			return core.WrapFault(fn, inject.Cfg)
		})
		if !found {
			return fmt.Errorf("%w: inject_faults variant %q is not registered (have %v)", errBadSpec, inject.Variant, suite.VariantNames)
		}
		fmt.Fprintf(out, "fault injection: variant %q panic=%.0f%% error=%.0f%% delay=%.0f%% (delay %v, timeout %v)\n",
			inject.Variant, 100*inject.Cfg.PanicRate, 100*inject.Cfg.ErrorRate, 100*inject.Cfg.DelayRate,
			inject.Cfg.Delay, inject.Timeout)
	}
	batch := make([]autotuner.Instance, spec.Throughput)
	for i := range batch {
		batch[i] = feasible[i%len(feasible)]
	}
	run := func(parallelism int) (float64, int, error) {
		start := time.Now()
		failed := 0
		for _, r := range cv.CallConcurrent(batch, parallelism) {
			if r.Err == nil {
				continue
			}
			// Under fault injection, typed variant errors are the expected
			// degraded outcome (the fallback chain itself was exhausted or the
			// instance had a single feasible variant); anything else — and any
			// error without injection — is a real failure.
			var ve *core.VariantError
			if inject != nil && errors.As(r.Err, &ve) {
				failed++
				continue
			}
			return 0, 0, r.Err
		}
		elapsed := time.Since(start)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		return float64(len(batch)) / elapsed.Seconds(), failed, nil
	}
	serial, serialFailed, err := run(1)
	if err != nil {
		return err
	}
	concurrent, concFailed, err := run(0)
	if err != nil {
		return err
	}
	st := cx.Stats(spec.Function)
	fmt.Fprintf(out, "deployment replay: %d selections over %d feasible test inputs\n", spec.Throughput, len(feasible))
	fmt.Fprintf(out, "  serial:     %.0f calls/sec\n", serial)
	fmt.Fprintf(out, "  concurrent: %.0f calls/sec (%.2fx, %d workers)\n", concurrent, concurrent/serial, par.Workers(0))
	fmt.Fprintf(out, "  constraint fallbacks: %d of %d calls\n", st.DefaultFallbacks, st.Calls)
	if inject != nil {
		fmt.Fprintf(out, "  graceful degradation: %d panics recovered, %d timeouts, %d fallback hops\n",
			st.Panics, st.Timeouts, st.Fallbacks)
		fmt.Fprintf(out, "  quarantine: %d trips, %d recoveries; unresolved errors: %d serial + %d concurrent of %d calls\n",
			st.Quarantined, st.Recoveries, serialFailed, concFailed, 2*len(batch))
	}
	if tracer != nil {
		// The concurrent replay is unordered, so only the count is reported
		// here; the serial online replay prints full trace timelines.
		fmt.Fprintf(out, "  decision traces recorded: %d (mode %s)\n", tracer.Count(), tracer.Mode())
	}
	if spec.StatsJSON {
		return emitStatsJSON(out, st, nil)
	}
	return nil
}

func buildSuite(spec Spec, tel *telemetry, dev *gpusim.Device) (*autotuner.Suite, error) {
	if spec.TrainGlob != "" {
		if !strings.EqualFold(spec.Benchmark, "SpMV") && spec.Benchmark != "" {
			return nil, fmt.Errorf("file-based tuning is supported for SpMV only")
		}
		return spmvSuiteFromFiles(spec, dev)
	}
	cfg := datasets.Config{Seed: spec.Seed, Scale: spec.Scale,
		TrainCount: spec.TrainCount, TestCount: spec.TestCount,
		Parallelism: spec.Parallelism, Phases: tel.phases}
	for _, b := range datasets.Builders() {
		if strings.EqualFold(b.Name, spec.Benchmark) {
			return b.Build(cfg, dev)
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q (want SpMV, Solvers, BFS, Histogram or Sort)", spec.Benchmark)
}

// spmvSuiteFromFiles builds an SpMV suite from MatrixMarket files.
func spmvSuiteFromFiles(spec Spec, dev *gpusim.Device) (*autotuner.Suite, error) {
	load := func(glob string) ([]autotuner.Instance, error) {
		paths, err := filepath.Glob(glob)
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("no files match %q", glob)
		}
		rng := rand.New(rand.NewSource(spec.Seed))
		var out []autotuner.Instance
		for _, path := range paths {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			coo, err := sparse.ReadMatrixMarket(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			m := coo.ToCSR()
			x := make([]float64, m.Cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			p, err := sparse.NewProblem(m, x)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			inst := autotuner.Instance{ID: filepath.Base(path), Features: p.Features().Vector()}
			for _, v := range sparse.Variants() {
				if v.Constraint != nil && !v.Constraint(p) {
					inst.Times = append(inst.Times, math.Inf(1))
					continue
				}
				res, err := v.Run(p, dev)
				if err != nil {
					inst.Times = append(inst.Times, math.Inf(1))
					continue
				}
				inst.Times = append(inst.Times, res.Seconds)
			}
			out = append(out, inst)
		}
		return out, nil
	}
	suite := &autotuner.Suite{
		Name:           "SpMV",
		VariantNames:   sparse.VariantNames(),
		FeatureNames:   sparse.FeatureNames(),
		DefaultVariant: 0,
	}
	var err error
	if suite.Train, err = load(spec.TrainGlob); err != nil {
		return nil, err
	}
	if spec.TestGlob != "" {
		if suite.Test, err = load(spec.TestGlob); err != nil {
			return nil, err
		}
	}
	return suite, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nitro-tune:", err)
	os.Exit(1)
}
