package main

// CLI coverage for the observability flags: -trace (decision tracing on the
// replays, byte-identical under the serial online replay), -phase-timings
// (pipeline phase report) and -metrics-addr (live telemetry endpoint with a
// validated shutdown self-scrape).

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestRunSpecTracedOnlineReplayDeterministic is the ISSUE-5 acceptance
// criterion: a deterministic replay with tracing enabled yields
// byte-identical trace timelines across two runs — the traces ride the same
// serial, seeded stream as the adaptation timeline.
func TestRunSpecTracedOnlineReplayDeterministic(t *testing.T) {
	run := func() string {
		spec := onlineSpec()
		spec.Trace = "sampled"
		var buf bytes.Buffer
		if err := runSpec(spec, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("traced online replay not reproducible:\nrun A:\n%s\nrun B:\n%s", a, b)
	}
	if !strings.Contains(a, "decision traces (") {
		t.Fatalf("no decision-trace section:\n%s", a)
	}
	if !strings.Contains(a, "[trace 000001] sort v1 ") {
		t.Errorf("no captured trace lines:\n%s", a)
	}
	// Sampled admission is 1-in-64 counter-exact over 600 calls: ~10 traces.
	if n := strings.Count(a, "[trace "); n < 5 || n > 20 {
		t.Errorf("sampled replay captured %d traces, want ~10", n)
	}
}

// TestRunSpecTracedAlwaysCapturesSwap: in Always mode every served call is
// traced, and the traces straddling the hot-swap carry different model
// versions — the trace timeline records the swap the adaptation timeline
// reports.
func TestRunSpecTracedAlwaysCapturesSwap(t *testing.T) {
	spec := onlineSpec()
	spec.Trace = "always"
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "] swap (") {
		t.Fatalf("replay never swapped:\n%s", out)
	}
	if n := strings.Count(out, "[trace "); n < 500 {
		t.Errorf("always-mode replay captured %d traces, want every served call", n)
	}
}

// TestRunSpecPhaseTimings: the phase report names every pipeline stage the
// run exercised.
func TestRunSpecPhaseTimings(t *testing.T) {
	spec := smallSpec()
	spec.PhaseTimings = true
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "phase timings:") {
		t.Fatalf("no phase report:\n%s", out)
	}
	for _, phase := range []string{"generate=", "label=", "scale=", "fit="} {
		if !strings.Contains(out, phase) {
			t.Errorf("phase report missing %q:\n%s", phase, out)
		}
	}
}

// TestRunSpecMetricsEndpoint: -metrics-addr serves the live endpoint for the
// run and validates the exposition (Prometheus format + nitro_ name lint) on
// shutdown; the throughput replay's counters and histograms are registered.
func TestRunSpecMetricsEndpoint(t *testing.T) {
	spec := smallSpec()
	spec.Throughput = 100
	spec.MetricsAddr = "127.0.0.1:0"
	var buf bytes.Buffer
	if err := runSpec(spec, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "metrics endpoint: http://127.0.0.1:") {
		t.Errorf("no endpoint line:\n%s", out)
	}
	if !strings.Contains(out, "metrics exposition valid: ") {
		t.Errorf("no shutdown self-scrape line:\n%s", out)
	}
}

// TestRunSpecMetricsEndpointLiveScrape drives the endpoint over real HTTP
// while a replay context is still registered: newTelemetry + a served
// registry mirror what runSpec wires, scraped from a live listener.
func TestRunSpecMetricsEndpointLiveScrape(t *testing.T) {
	spec := smallSpec()
	spec.MetricsAddr = "127.0.0.1:0"
	tel, err := newTelemetry(spec)
	if err != nil {
		t.Fatal(err)
	}
	tel.phases.Add("label", 1500) // 1.5µs: any non-zero span
	srv, err := tel.reg.Serve(spec.MetricsAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `nitro_tuner_phase_seconds{phase="label"}`) {
		t.Errorf("scrape missing phase gauge:\n%s", body)
	}
}

// TestValidateSpecObservability covers the new spec knobs' validation.
func TestValidateSpecObservability(t *testing.T) {
	spec := smallSpec()
	spec.Trace = "sampled"
	if err := validateSpec(spec); !errors.Is(err, errBadSpec) {
		t.Errorf("trace without replay: err = %v, want errBadSpec", err)
	}
	spec.Throughput = 10
	if err := validateSpec(spec); err != nil {
		t.Errorf("trace with throughput replay rejected: %v", err)
	}
	spec.Trace = "verbose"
	if err := validateSpec(spec); !errors.Is(err, errBadSpec) {
		t.Errorf("unknown trace mode: err = %v, want errBadSpec", err)
	}
}
