package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"nitro/internal/core"
	"nitro/internal/ml"
	"nitro/internal/obs"
)

func fixtureModel(t *testing.T) []byte {
	t.Helper()
	ds := &ml.Dataset{}
	for x := 0.0; x < 10; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		ds.Append([]float64{x, 2 * x}, label)
	}
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 4)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	data, err := ml.MarshalModel(&ml.Model{Classifier: svm, Scaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInspectSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := inspect(fixtureModel(t), "", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"classifier: svm", "classes (variant labels): [0 1]", "support vectors", "rbf(gamma=1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestInspectPredict(t *testing.T) {
	var buf bytes.Buffer
	if err := inspect(fixtureModel(t), "8, 16", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "prediction: variant label 1") {
		t.Errorf("wrong prediction output:\n%s", buf.String())
	}
	buf.Reset()
	if err := inspect(fixtureModel(t), "1,2", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "prediction: variant label 0") {
		t.Errorf("wrong prediction output:\n%s", buf.String())
	}
}

func TestPredictBatch(t *testing.T) {
	data := fixtureModel(t)
	content := "# comment\n1,2\n\n8, 16\n3,6\n9,18\n"
	var serial bytes.Buffer
	if err := predictBatch(data, content, 1, &serial); err != nil {
		t.Fatal(err)
	}
	out := serial.String()
	for _, want := range []string{
		"batch predictions (4 vectors",
		"1,2 -> variant label 0",
		"8, 16 -> variant label 1",
		"3,6 -> variant label 0",
		"9,18 -> variant label 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("batch output missing %q:\n%s", want, out)
		}
	}
	// The fanned-out batch produces predictions in the same input order.
	var conc bytes.Buffer
	if err := predictBatch(data, content, 4, &conc); err != nil {
		t.Fatal(err)
	}
	serialLines := strings.SplitN(serial.String(), "\n", 2)[1]
	concLines := strings.SplitN(conc.String(), "\n", 2)[1]
	if serialLines != concLines {
		t.Errorf("concurrent batch differs from serial:\n%s\nvs\n%s", concLines, serialLines)
	}
}

func TestPredictBatchErrors(t *testing.T) {
	data := fixtureModel(t)
	if err := predictBatch(data, "# only comments\n", 1, &bytes.Buffer{}); err == nil {
		t.Error("empty batch accepted")
	}
	if err := predictBatch(data, "1,2\n1,x\n", 1, &bytes.Buffer{}); err == nil {
		t.Error("bad token in batch accepted")
	}
	if err := predictBatch(data, "1\n", 1, &bytes.Buffer{}); err == nil {
		t.Error("dimension mismatch in batch accepted")
	}
	if err := predictBatch([]byte("junk"), "1,2\n", 1, &bytes.Buffer{}); err == nil {
		t.Error("junk model accepted")
	}
}

func TestInspectErrors(t *testing.T) {
	if err := inspect([]byte("junk"), "", &bytes.Buffer{}); err == nil {
		t.Error("junk model accepted")
	}
	if err := inspect(fixtureModel(t), "1,x", &bytes.Buffer{}); err == nil {
		t.Error("bad feature token accepted")
	}
	if err := inspect(fixtureModel(t), "1", &bytes.Buffer{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestOptionsValidateTable(t *testing.T) {
	cases := []struct {
		name string
		opts options
		ok   bool
	}{
		{"valid", options{Model: "m.json"}, true},
		{"valid with parallelism", options{Model: "m.json", Parallelism: 4}, true},
		{"missing model", options{}, false},
		{"negative parallelism", options{Model: "m.json", Parallelism: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.validate()
			if tc.ok && err != nil {
				t.Fatalf("valid options rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("invalid options accepted")
				}
				if !errors.Is(err, errBadFlags) {
					t.Fatalf("error %v does not wrap errBadFlags", err)
				}
			}
		})
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.json")
	if err := os.WriteFile(modelPath, fixtureModel(t), 0o644); err != nil {
		t.Fatal(err)
	}
	batchPath := filepath.Join(dir, "vectors.txt")
	if err := os.WriteFile(batchPath, []byte("1,2\n8,16\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(options{Model: modelPath, Predict: "8,16", PredictFile: batchPath, Parallelism: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"classifier: svm", "prediction: variant label 1", "batch predictions (2 vectors"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.json")
	if err := os.WriteFile(modelPath, fixtureModel(t), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{Model: modelPath, Parallelism: -2}, &bytes.Buffer{}); !errors.Is(err, errBadFlags) {
		t.Errorf("negative parallelism: err = %v", err)
	}
	if err := run(options{Model: filepath.Join(dir, "missing.json")}, &bytes.Buffer{}); err == nil {
		t.Error("missing model file accepted")
	}
	if err := run(options{Model: modelPath, PredictFile: filepath.Join(dir, "missing.txt")}, &bytes.Buffer{}); err == nil {
		t.Error("missing predict-file accepted")
	}
}

// stampedModel returns the fixture model with provenance metadata, as the
// tuner and the online retrainer write it.
func stampedModel(t *testing.T) []byte {
	t.Helper()
	model, err := ml.UnmarshalModel(fixtureModel(t))
	if err != nil {
		t.Fatal(err)
	}
	model.Meta = &ml.ModelMeta{Version: 2, TrainedOn: 30}
	data, err := ml.MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestInspectJSON pins the machine-readable summary: classifier shape plus
// the provenance metadata a deployment dashboard keys on.
func TestInspectJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := inspectJSON(stampedModel(t), &buf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Classifier     string `json:"classifier"`
		Classes        []int  `json:"classes"`
		Features       int    `json:"features"`
		SupportVectors int    `json:"support_vectors"`
		Version        int    `json:"version"`
		Meta           *ml.ModelMeta
	}
	if err := json.Unmarshal(buf.Bytes(), &summary); err != nil {
		t.Fatalf("summary does not parse: %v\n%s", err, buf.String())
	}
	if summary.Classifier != "svm" || len(summary.Classes) != 2 || summary.Features != 2 {
		t.Errorf("summary shape: %+v", summary)
	}
	if summary.Version != 2 || summary.Meta == nil || summary.Meta.TrainedOn != 30 {
		t.Errorf("summary metadata: %+v", summary)
	}
}

// TestInspectJSONLegacyModel: artifacts written before metadata stamping
// report version 0 and a null meta instead of failing.
func TestInspectJSONLegacyModel(t *testing.T) {
	var buf bytes.Buffer
	if err := inspectJSON(fixtureModel(t), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 0`, `"meta": null`} {
		if !strings.Contains(out, want) {
			t.Errorf("legacy summary missing %q:\n%s", want, out)
		}
	}
}

// TestExplainOutput checks the derivation printout: raw and scaled features,
// per-class scores, the pairwise SVM decision, the ranked fallback order and
// the prediction, and that the explained prediction agrees with -predict.
func TestExplainOutput(t *testing.T) {
	data := fixtureModel(t)
	var buf bytes.Buffer
	if err := explain(data, "8,16", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"explanation (model v0):",
		"raw features:    [8 16]",
		"scaled features:",
		"label 0 score",
		"label 1 score",
		"svm pair 0 vs 1: decision",
		"ranked fallback order: 1 -> 0",
		"predicted: variant label 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	// Errors mirror -predict's.
	if err := explain(data, "1,x", &bytes.Buffer{}); err == nil {
		t.Error("bad feature token accepted")
	}
	if err := explain(data, "1", &bytes.Buffer{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := explain([]byte("junk"), "1,2", &bytes.Buffer{}); err == nil {
		t.Error("junk model accepted")
	}
}

// TestExplainMatchesCallUnderFaults is the acceptance check: the ranked
// fallback order -explain prints is the exact chain the deployment runtime
// walks. We install the same model on a live CodeVariant, make the predicted
// variant panic, and verify Call lands on the explanation's second choice
// with exactly one fallback hop.
func TestExplainMatchesCallUnderFaults(t *testing.T) {
	data := fixtureModel(t)

	var buf bytes.Buffer
	if err := explain(data, "8,16", &buf); err != nil {
		t.Fatal(err)
	}
	var rankedLine string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "ranked fallback order:") {
			rankedLine = strings.TrimSpace(strings.SplitN(line, ":", 2)[1])
		}
	}
	if rankedLine == "" {
		t.Fatalf("no ranked line in:\n%s", buf.String())
	}
	var ranked []int
	for _, tok := range strings.Split(rankedLine, "->") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			t.Fatalf("bad ranked token %q: %v", tok, err)
		}
		ranked = append(ranked, n)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v, want 2 entries", ranked)
	}

	type in struct{ x float64 }
	cx := core.NewContext()
	cv := core.New[in](cx, core.DefaultPolicy("fn"))
	names := []string{"v0", "v1"}
	cv.AddVariant("v0", func(i in) float64 { return 1 })
	cv.AddVariant("v1", func(i in) float64 { panic("predicted variant down") })
	if err := cv.SetDefault("v0"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(core.Feature[in]{Name: "x", Eval: func(i in) float64 { return i.x }})
	cv.AddInputFeature(core.Feature[in]{Name: "2x", Eval: func(i in) float64 { return 2 * i.x }})
	model, err := ml.UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := cx.SetModel("fn", model); err != nil {
		t.Fatal(err)
	}
	tracer := cv.EnableTracing(obs.TracePolicy{Mode: obs.TraceAlways})

	_, chosen, err := cv.Call(in{x: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := names[ranked[1]]; chosen != want {
		t.Errorf("Call chose %q, explain's fallback chain says %q", chosen, want)
	}
	traces := tracer.Recent(1)
	if len(traces) != 1 {
		t.Fatal("no trace captured")
	}
	tr := traces[0]
	if tr.Predicted != ranked[0] || !tr.FellBack || tr.FallbackHops != 1 {
		t.Errorf("trace = predicted=%d fellback=%v hops=%d, want predicted=%d one hop",
			tr.Predicted, tr.FellBack, tr.FallbackHops, ranked[0])
	}
	if len(tr.Ranked) != len(ranked) {
		t.Fatalf("trace ranked %v vs explain %v", tr.Ranked, ranked)
	}
	for i := range ranked {
		if tr.Ranked[i] != ranked[i] {
			t.Errorf("trace ranked %v differs from explain's %v", tr.Ranked, ranked)
			break
		}
	}
}

// TestRunJSONMode drives -json through run, including the exclusivity check.
func TestRunJSONMode(t *testing.T) {
	modelPath := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(modelPath, stampedModel(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(options{Model: modelPath, JSON: true}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version": 2`) {
		t.Errorf("-json output missing version:\n%s", buf.String())
	}
	if err := run(options{Model: modelPath, JSON: true, Predict: "1,2"}, &bytes.Buffer{}); !errors.Is(err, errBadFlags) {
		t.Errorf("-json with -predict: err = %v, want errBadFlags", err)
	}
}

// compiledFixtureModel is fixtureModel with a distilled compiled artifact
// (plus decision grid) installed before serialization.
func compiledFixtureModel(t *testing.T) []byte {
	t.Helper()
	model, err := ml.UnmarshalModel(fixtureModel(t))
	if err != nil {
		t.Fatal(err)
	}
	corpus := make([][]float64, 10)
	for x := 0; x < 10; x++ {
		corpus[x] = []float64{float64(x), 2 * float64(x)}
	}
	c, err := ml.Distill(model, corpus, ml.DistillOptions{Grid: true})
	if err != nil {
		t.Fatal(err)
	}
	model.Compiled = c
	data, err := ml.MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestInspectCompiledModel checks that inspection surfaces the compiled
// artifact (text and JSON) and that -explain reports the dispatch tier —
// the operator's view of which rung of the ladder decided.
func TestInspectCompiledModel(t *testing.T) {
	data := compiledFixtureModel(t)
	var buf bytes.Buffer
	if err := inspect(data, "", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"compiled dispatch:", "agreement", "margin"} {
		if !strings.Contains(out, want) {
			t.Errorf("compiled summary missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := inspectJSON(data, &buf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Compiled *struct {
			Nodes      int     `json:"nodes"`
			Agreement  float64 `json:"agreement"`
			CorpusSize int     `json:"corpus_size"`
			GridRes    int     `json:"grid_res"`
		} `json:"compiled"`
	}
	if err := json.Unmarshal(buf.Bytes(), &summary); err != nil {
		t.Fatalf("inspectJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	if summary.Compiled == nil {
		t.Fatalf("JSON summary missing compiled block:\n%s", buf.String())
	}
	if summary.Compiled.Nodes == 0 || summary.Compiled.Agreement < 0.99 || summary.Compiled.CorpusSize != 10 {
		t.Errorf("compiled block wrong: %+v", summary.Compiled)
	}

	buf.Reset()
	if err := explain(data, "8,16", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dispatch tier: ") {
		t.Errorf("explain missing dispatch tier line:\n%s", buf.String())
	}
	// A plain model reports the exact tier.
	buf.Reset()
	if err := explain(fixtureModel(t), "8,16", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dispatch tier: exact") {
		t.Errorf("plain model should explain as exact tier:\n%s", buf.String())
	}
}

// fixtureEnsembleModel trains the four-member committee on the boundary
// corpus and returns its serialized model.
func fixtureEnsembleModel(t *testing.T) []byte {
	t.Helper()
	ds := &ml.Dataset{}
	for x := 0.0; x < 20; x++ {
		label := 0
		if x > 9.5 {
			label = 1
		}
		ds.Append([]float64{x, 2 * x}, label)
	}
	scaler := &ml.Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	ens := ml.NewEnsemble()
	ens.Seed = 7
	if err := ens.Fit(&ml.Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	data, err := ml.MarshalModel(&ml.Model{Classifier: ens, Scaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInspectEnsembleSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := inspect(fixtureEnsembleModel(t), "", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"classifier: ensemble", "ensemble: 4 members",
		"member svm weight", "member knn weight", "member logistic weight", "member tree weight"} {
		if !strings.Contains(out, want) {
			t.Errorf("ensemble summary missing %q:\n%s", want, out)
		}
	}
}

func TestInspectJSONEnsemble(t *testing.T) {
	var buf bytes.Buffer
	if err := inspectJSON(fixtureEnsembleModel(t), &buf); err != nil {
		t.Fatal(err)
	}
	var summary struct {
		Classifier string `json:"classifier"`
		Ensemble   *struct {
			Members []struct {
				Name   string  `json:"name"`
				Weight float64 `json:"weight"`
			} `json:"members"`
		} `json:"ensemble"`
	}
	if err := json.Unmarshal(buf.Bytes(), &summary); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if summary.Classifier != "ensemble" || summary.Ensemble == nil || len(summary.Ensemble.Members) != 4 {
		t.Fatalf("ensemble JSON summary = %+v, want 4 committee members", summary)
	}
	total := 0.0
	for _, m := range summary.Ensemble.Members {
		if m.Name == "" || m.Weight <= 0 {
			t.Errorf("member %+v has empty name or non-positive weight", m)
		}
		total += m.Weight
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("member weights sum to %v, want ~1", total)
	}
}

func TestExplainEnsemble(t *testing.T) {
	var buf bytes.Buffer
	if err := explain(fixtureEnsembleModel(t), "15,30", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ensemble member svm", "ensemble member knn",
		"ensemble agreement:", "calibrated confidence", "predicted: variant label 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("ensemble explanation missing %q:\n%s", want, out)
		}
	}
}
