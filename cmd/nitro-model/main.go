// Command nitro-model inspects a model file written by the tuner (the
// deployable artifact of cmd/nitro-tune or Context.SaveModel): it prints the
// classifier kind, label set, scaler ranges and — for SVMs — the kernel
// parameters and support-vector count, and can classify a feature vector
// from the command line.
//
// Usage:
//
//	nitro-model -model spmv.model.json
//	nitro-model -model spmv.model.json -json
//	nitro-model -model spmv.model.json -predict "12.5,3.1,88,1.2,1.0"
//	nitro-model -model spmv.model.json -predict-file vectors.txt -parallelism 0
//	nitro-model -model spmv.model.json -explain "12.5,3.1,88,1.2,1.0"
//
// -predict-file reads one comma-separated feature vector per line (blank
// lines and '#' comments skipped) and classifies the batch, fanning the
// predictions over -parallelism workers; model prediction is read-only and
// safe to share, so the output is identical at every worker count.
//
// -explain prints the full decision derivation for one feature vector: the
// raw and scaled features, every class score, the pairwise SVM decision
// values, and the ranked preference order — the exact fallback chain the
// deployment runtime walks when the predicted variant is vetoed, quarantined
// or fails. The derivation reuses the scoring paths dispatch itself uses, so
// the printed order is the order Call would try.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nitro/internal/ml"
	"nitro/internal/par"
)

// options holds the parsed command line.
type options struct {
	Model       string
	Predict     string
	PredictFile string
	Explain     string
	Parallelism int
	JSON        bool
}

// errBadFlags is wrapped by every flag-validation failure so tests can detect
// rejected invocations with errors.Is.
var errBadFlags = errors.New("invalid flags")

// validate rejects nonsensical invocations before any file is touched.
func (o options) validate() error {
	if o.Model == "" {
		return fmt.Errorf("%w: -model is required", errBadFlags)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("%w: -parallelism %d must be >= 0 (0 = all cores)", errBadFlags, o.Parallelism)
	}
	if o.JSON && (o.Predict != "" || o.PredictFile != "" || o.Explain != "") {
		return fmt.Errorf("%w: -json is a summary-only mode (drop -predict/-predict-file/-explain)", errBadFlags)
	}
	return nil
}

func main() {
	var opts options
	flag.StringVar(&opts.Model, "model", "", "path to a model JSON file (required)")
	flag.StringVar(&opts.Predict, "predict", "", "comma-separated feature vector to classify")
	flag.StringVar(&opts.PredictFile, "predict-file", "", "file with one comma-separated feature vector per line to classify as a batch")
	flag.StringVar(&opts.Explain, "explain", "", "comma-separated feature vector to explain: scaled features, class scores, pairwise SVM decisions and the ranked fallback order")
	flag.IntVar(&opts.Parallelism, "parallelism", 0, "worker count for batch prediction (0 = all cores, 1 = serial); output is identical at every setting")
	flag.BoolVar(&opts.JSON, "json", false, "print a machine-readable model summary (classifier, classes, feature count, provenance metadata) instead of the textual inspection")
	flag.Parse()
	if opts.Model == "" {
		fmt.Fprintln(os.Stderr, "usage: nitro-model -model file.json [-predict \"1,2,3\"] [-predict-file vectors.txt]")
		os.Exit(2)
	}
	if err := run(opts, os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes one nitro-model invocation: validate flags, load and inspect
// the model, optionally classify a vector and/or a batch file.
func run(opts options, out io.Writer) error {
	if err := opts.validate(); err != nil {
		return err
	}
	data, err := os.ReadFile(opts.Model)
	if err != nil {
		return fmt.Errorf("read model: %w", err)
	}
	if opts.JSON {
		return inspectJSON(data, out)
	}
	if err := inspect(data, opts.Predict, out); err != nil {
		return err
	}
	if opts.Explain != "" {
		if err := explain(data, opts.Explain, out); err != nil {
			return err
		}
	}
	if opts.PredictFile != "" {
		batch, err := os.ReadFile(opts.PredictFile)
		if err != nil {
			return fmt.Errorf("read predict-file: %w", err)
		}
		if err := predictBatch(data, string(batch), opts.Parallelism, out); err != nil {
			return err
		}
	}
	return nil
}

// inspect parses a serialized model, writes its summary and optionally a
// prediction for the given feature vector.
func inspect(data []byte, predict string, out io.Writer) error {
	model, err := ml.UnmarshalModel(data)
	if err != nil {
		return fmt.Errorf("parse model: %w", err)
	}
	fmt.Fprintf(out, "classifier: %s\n", model.Classifier.Name())
	fmt.Fprintf(out, "classes (variant labels): %v\n", model.Classifier.Classes())
	if model.Scaler != nil && model.Scaler.Fitted() {
		fmt.Fprintf(out, "features: %d (scaled to [-1,1])\n", len(model.Scaler.Min))
		for j := range model.Scaler.Min {
			fmt.Fprintf(out, "  feature %d range [%g, %g]\n", j, model.Scaler.Min[j], model.Scaler.Max[j])
		}
	} else {
		fmt.Fprintln(out, "no scaler (raw features)")
	}
	if svm, ok := model.Classifier.(*ml.SVM); ok {
		fmt.Fprintf(out, "svm: C=%g kernel=%s, %d support vectors\n",
			svm.C, describeKernel(svm.Kernel()), svm.NumSupportVectors())
	}
	if e, ok := model.Classifier.(*ml.Ensemble); ok {
		members := e.Members()
		weights := e.Weights()
		fmt.Fprintf(out, "ensemble: %d members (agreement-weighted committee)\n", len(members))
		for i, m := range members {
			fmt.Fprintf(out, "  member %s weight %.3f\n", m.Name(), weights[i])
		}
		for _, b := range e.Calibration() {
			if b.N > 0 {
				fmt.Fprintf(out, "  calibration bin [%.1f, %.1f): %d/%d correct\n", b.Lo, b.Hi, b.Correct, b.N)
			}
		}
	}
	if c := model.Compiled; c != nil {
		grid := "no grid"
		if c.Grid != nil {
			grid = fmt.Sprintf("grid res %d", c.Grid.Res)
		}
		fmt.Fprintf(out, "compiled dispatch: %d nodes depth %d, agreement %.2f%%, exact fallback %.1f%%, margin %g, %s (corpus %d)\n",
			len(c.Nodes), c.Depth(), 100*c.Agreement, 100*c.FallbackRate, c.Margin, grid, c.CorpusSize)
	}
	if predict == "" {
		return nil
	}
	vec, err := parseVector(model, predict)
	if err != nil {
		return err
	}
	pred := model.Predict(vec)
	scores := model.Scores(vec)
	fmt.Fprintf(out, "prediction: variant label %d\n", pred)
	for i, c := range model.Classifier.Classes() {
		fmt.Fprintf(out, "  label %d score %.4f\n", c, scores[i])
	}
	return nil
}

// inspectJSON writes the machine-readable model summary: classifier kind,
// label set, feature dimension, SVM size when applicable, and the provenance
// metadata (version / created_at / trained_on) stamped by the tuner — the
// fields a deployment dashboard needs to tell a hot-swapped v2 retrain from
// the offline v1 artifact. Legacy artifacts without metadata report
// "meta": null.
func inspectJSON(data []byte, out io.Writer) error {
	model, err := ml.UnmarshalModel(data)
	if err != nil {
		return fmt.Errorf("parse model: %w", err)
	}
	type compiledSummary struct {
		Nodes        int     `json:"nodes"`
		Depth        int     `json:"depth"`
		Agreement    float64 `json:"agreement"`
		FallbackRate float64 `json:"fallback_rate"`
		Margin       float64 `json:"margin"`
		CorpusSize   int     `json:"corpus_size"`
		GridRes      int     `json:"grid_res,omitempty"`
	}
	type ensembleMember struct {
		Name   string  `json:"name"`
		Weight float64 `json:"weight"`
	}
	type ensembleSummary struct {
		Members     []ensembleMember `json:"members"`
		Calibration []ml.CalibBin    `json:"calibration,omitempty"`
	}
	summary := struct {
		Classifier     string           `json:"classifier"`
		Classes        []int            `json:"classes"`
		Features       int              `json:"features"`
		SupportVectors int              `json:"support_vectors,omitempty"`
		Version        int              `json:"version"`
		Meta           *ml.ModelMeta    `json:"meta"`
		Ensemble       *ensembleSummary `json:"ensemble,omitempty"`
		Compiled       *compiledSummary `json:"compiled,omitempty"`
	}{
		Classifier: model.Classifier.Name(),
		Classes:    model.Classifier.Classes(),
		Version:    model.Version(),
		Meta:       model.Meta,
	}
	if model.Scaler != nil && model.Scaler.Fitted() {
		summary.Features = len(model.Scaler.Min)
	}
	if svm, ok := model.Classifier.(*ml.SVM); ok {
		summary.SupportVectors = svm.NumSupportVectors()
	}
	if e, ok := model.Classifier.(*ml.Ensemble); ok {
		es := &ensembleSummary{Calibration: e.Calibration()}
		for i, m := range e.Members() {
			es.Members = append(es.Members, ensembleMember{Name: m.Name(), Weight: e.Weights()[i]})
		}
		summary.Ensemble = es
	}
	if c := model.Compiled; c != nil {
		summary.Compiled = &compiledSummary{
			Nodes:        len(c.Nodes),
			Depth:        c.Depth(),
			Agreement:    c.Agreement,
			FallbackRate: c.FallbackRate,
			Margin:       c.Margin,
			CorpusSize:   c.CorpusSize,
		}
		if c.Grid != nil {
			summary.Compiled.GridRes = c.Grid.Res
		}
	}
	enc, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", enc)
	return nil
}

// explain prints the full decision derivation for one feature vector: raw
// and scaled features, per-class scores, the pairwise SVM decision values
// (when the classifier is an SVM), and the ranked preference order — the
// deployment runtime's fallback chain. Output is deterministic for a given
// model and vector.
func explain(data []byte, vector string, out io.Writer) error {
	model, err := ml.UnmarshalModel(data)
	if err != nil {
		return fmt.Errorf("parse model: %w", err)
	}
	vec, err := parseVector(model, vector)
	if err != nil {
		return err
	}
	ex := model.Explain(vec)
	fmt.Fprintf(out, "explanation (model v%d):\n", ex.Version)
	fmt.Fprintf(out, "  raw features:    %v\n", ex.Raw)
	if ex.Scaled != nil {
		fmt.Fprintf(out, "  scaled features: %v\n", formatVec(ex.Scaled))
	} else {
		fmt.Fprintln(out, "  scaled features: (no scaler; raw used)")
	}
	for i, c := range ex.Classes {
		fmt.Fprintf(out, "  label %d score %.4f\n", c, ex.Scores[i])
	}
	for i, pair := range ex.PairClasses {
		winner := pair[0]
		if ex.PairDecisions[i] < 0 {
			winner = pair[1]
		}
		fmt.Fprintf(out, "  svm pair %d vs %d: decision %+.4f -> %d\n",
			pair[0], pair[1], ex.PairDecisions[i], winner)
	}
	if ee := ex.Ensemble; ee != nil {
		for _, mv := range ee.Members {
			fmt.Fprintf(out, "  ensemble member %s (weight %.3f) voted %d\n", mv.Name, mv.Weight, mv.Predicted)
		}
		fmt.Fprintf(out, "  ensemble agreement: %.3f (calibrated confidence %.3f)\n", ee.Agreement, ex.Confidence)
	}
	fmt.Fprintf(out, "  ranked fallback order: %s\n", rankedString(ex.Ranked))
	fmt.Fprintf(out, "  predicted: variant label %d\n", ex.Predicted)
	if ex.Tier != "" {
		fmt.Fprintf(out, "  dispatch tier: %s\n", ex.Tier)
		if ex.Tier == "compiled" {
			fmt.Fprintf(out, "  compiled margin: %g (threshold %g)\n", ex.CompiledMargin, ex.CompiledThreshold)
		}
	}
	return nil
}

// formatVec renders a scaled feature vector with fixed precision so the
// output is stable across architectures.
func formatVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'g', 6, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// rankedString renders the preference order as "2 -> 0 -> 1".
func rankedString(ranked []int) string {
	parts := make([]string, len(ranked))
	for i, r := range ranked {
		parts[i] = strconv.Itoa(r)
	}
	return strings.Join(parts, " -> ")
}

// parseVector parses a comma-separated feature vector and validates its
// dimension against the model's scaler.
func parseVector(model *ml.Model, s string) ([]float64, error) {
	var vec []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad feature value %q: %w", tok, err)
		}
		vec = append(vec, v)
	}
	if model.Scaler != nil && model.Scaler.Fitted() && len(vec) != len(model.Scaler.Min) {
		return nil, fmt.Errorf("feature vector has %d values, model expects %d", len(vec), len(model.Scaler.Min))
	}
	return vec, nil
}

// predictBatch classifies every vector in content (one comma-separated
// vector per line; blank lines and lines starting with '#' are skipped),
// fanning the predictions over the given worker count. Model prediction is
// read-only, so sharing one model across workers is safe; results are
// written in input order regardless of scheduling.
func predictBatch(data []byte, content string, parallelism int, out io.Writer) error {
	model, err := ml.UnmarshalModel(data)
	if err != nil {
		return err
	}
	var lines []string
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return fmt.Errorf("predict-file contains no feature vectors")
	}
	vecs := make([][]float64, len(lines))
	for i, line := range lines {
		if vecs[i], err = parseVector(model, line); err != nil {
			return fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	preds := make([]int, len(vecs))
	par.For(len(vecs), par.Workers(parallelism), func(i int) {
		preds[i] = model.Predict(vecs[i])
	})
	fmt.Fprintf(out, "batch predictions (%d vectors, %d workers):\n", len(vecs), par.Workers(parallelism))
	for i, p := range preds {
		fmt.Fprintf(out, "  %s -> variant label %d\n", lines[i], p)
	}
	return nil
}

func describeKernel(k ml.Kernel) string {
	switch kk := k.(type) {
	case ml.RBFKernel:
		return fmt.Sprintf("rbf(gamma=%g)", kk.Gamma)
	case ml.PolyKernel:
		return fmt.Sprintf("poly(gamma=%g, coef0=%g, degree=%d)", kk.Gamma, kk.Coef0, kk.Degree)
	default:
		return k.Name()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nitro-model:", err)
	os.Exit(1)
}
