// Command nitro-model inspects a model file written by the tuner (the
// deployable artifact of cmd/nitro-tune or Context.SaveModel): it prints the
// classifier kind, label set, scaler ranges and — for SVMs — the kernel
// parameters and support-vector count, and can classify a feature vector
// from the command line.
//
// Usage:
//
//	nitro-model -model spmv.model.json
//	nitro-model -model spmv.model.json -predict "12.5,3.1,88,1.2,1.0"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nitro/internal/ml"
)

func main() {
	modelPath := flag.String("model", "", "path to a model JSON file (required)")
	predict := flag.String("predict", "", "comma-separated feature vector to classify")
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "usage: nitro-model -model file.json [-predict \"1,2,3\"]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*modelPath)
	if err != nil {
		fatal(err)
	}
	if err := inspect(data, *predict, os.Stdout); err != nil {
		fatal(err)
	}
}

// inspect parses a serialized model, writes its summary and optionally a
// prediction for the given feature vector.
func inspect(data []byte, predict string, out io.Writer) error {
	model, err := ml.UnmarshalModel(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "classifier: %s\n", model.Classifier.Name())
	fmt.Fprintf(out, "classes (variant labels): %v\n", model.Classifier.Classes())
	if model.Scaler != nil && model.Scaler.Fitted() {
		fmt.Fprintf(out, "features: %d (scaled to [-1,1])\n", len(model.Scaler.Min))
		for j := range model.Scaler.Min {
			fmt.Fprintf(out, "  feature %d range [%g, %g]\n", j, model.Scaler.Min[j], model.Scaler.Max[j])
		}
	} else {
		fmt.Fprintln(out, "no scaler (raw features)")
	}
	if svm, ok := model.Classifier.(*ml.SVM); ok {
		fmt.Fprintf(out, "svm: C=%g kernel=%s, %d support vectors\n",
			svm.C, describeKernel(svm.Kernel()), svm.NumSupportVectors())
	}
	if predict == "" {
		return nil
	}
	var vec []float64
	for _, tok := range strings.Split(predict, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad feature value %q: %w", tok, err)
		}
		vec = append(vec, v)
	}
	if model.Scaler != nil && model.Scaler.Fitted() && len(vec) != len(model.Scaler.Min) {
		return fmt.Errorf("feature vector has %d values, model expects %d", len(vec), len(model.Scaler.Min))
	}
	pred := model.Predict(vec)
	scores := model.Scores(vec)
	fmt.Fprintf(out, "prediction: variant label %d\n", pred)
	for i, c := range model.Classifier.Classes() {
		fmt.Fprintf(out, "  label %d score %.4f\n", c, scores[i])
	}
	return nil
}

func describeKernel(k ml.Kernel) string {
	switch kk := k.(type) {
	case ml.RBFKernel:
		return fmt.Sprintf("rbf(gamma=%g)", kk.Gamma)
	case ml.PolyKernel:
		return fmt.Sprintf("poly(gamma=%g, coef0=%g, degree=%d)", kk.Gamma, kk.Coef0, kk.Degree)
	default:
		return k.Name()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nitro-model:", err)
	os.Exit(1)
}
