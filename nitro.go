// Package nitro is a Go implementation of Nitro, the programmer-directed
// autotuning framework for adaptive code-variant selection described in
//
//	Muralidharan, Shantharam, Hall, Garland, Catanzaro.
//	"Nitro: A Framework for Adaptive Code Variant Tuning." IPDPS 2014.
//
// Expert programmers register code variants — functionally equivalent
// implementations of one computation — together with input-feature functions
// and optional per-variant constraints. An offline autotuner labels training
// inputs by exhaustive search, fits a multi-class SVM (RBF kernel, features
// scaled to [-1, 1], cross-validated parameter search), and installs the
// model so that deployment-time calls select the best variant for each new
// input from its features alone. Incremental tuning (Best-vs-Second-Best
// active learning) cuts the number of exhaustively searched training inputs,
// and feature evaluation can run in parallel or asynchronously.
//
// The package is a thin facade over internal/core (the library runtime) and
// internal/autotuner (the offline tuner). The five benchmark substrates the
// paper evaluates on — SpMV, sparse linear solvers, BFS, histogram and sort,
// each with every code variant implemented and costed on a deterministic GPU
// model — live under internal/ and are exercised by the example programs,
// the experiment harnesses in cmd/, and the benchmarks at the repo root.
//
// Minimal usage:
//
//	cx := nitro.NewContext()
//	cv := nitro.NewCodeVariant[MyInput](cx, nitro.DefaultPolicy("mine"))
//	cv.AddVariant("fast-small", fastSmall)
//	cv.AddVariant("fast-large", fastLarge)
//	cv.SetDefault("fast-small")
//	cv.AddInputFeature(nitro.Feature[MyInput]{Name: "size", Eval: size})
//
//	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{GridSearch: true})
//	tuner.Tune(trainingInputs)     // exhaustive search + SVM fit
//
//	value, chosen, err := cv.Call(input)  // adaptive dispatch
//
// A tuned CodeVariant is safe to share: Call, FixInputs/CallFixed and
// CallConcurrent may run from any number of goroutines, models can be
// hot-swapped mid-traffic with Context.SetModel/LoadModel, and Context.Stats
// snapshots the sharded call counters without stopping traffic:
//
//	results := cv.CallConcurrent(batch, 0) // fan a batch over all cores
//
//	f := cv.FixInputs(input) // async: overlap feature evaluation ...
//	doOtherWork()
//	value, chosen, err = f.Call() // ... then select on the fixed input
//
// Dispatch is fault tolerant: a variant that panics, aborts (Abort) or
// exceeds TuningPolicy.VariantTimeout surfaces as a typed *VariantError and
// the runtime falls back to the next-best variant (model score order, then
// the default) instead of crashing; an optional per-variant quarantine
// circuit breaker (TuningPolicy.Quarantine) excludes repeatedly failing
// variants from selection until a half-open probe recovers them. CallCtx and
// CallConcurrentCtx add caller-controlled cancellation, and WrapFault
// provides the seeded fault-injection harness used to test degradation:
//
//	policy.VariantTimeout = 5 * time.Millisecond
//	policy.Quarantine = nitro.DefaultQuarantine()
//	value, chosen, err = cv.CallCtx(ctx, input)
//
// Deployments whose input distribution drifts away from the offline training
// corpus can enable online adaptation: an engine samples live calls, spends a
// small epsilon-greedy exploration budget re-timing the alternative variants
// on sampled inputs, detects sustained drift with a windowed mismatch/regret
// detector, retrains in the background on the drifted observations, and
// hot-swaps the new model in (rolling back when the candidate loses its
// holdout validation). Adaptation is inert by default and deterministic under
// a fixed seed:
//
//	eng, err := nitro.EnableAdaptation(cv, nitro.DefaultAdaptPolicy(42))
//	defer eng.Close()
//	// ... serve traffic; eng.Stats() / eng.Events() report the timeline.
//
// Every layer is observable. Decision tracing captures, per sampled call, the
// full selection derivation — raw and scaled features, per-class SVM scores
// and pairwise decision values, the ranked preference order, constraint
// vetoes, quarantine state, fallback hops and the executed variant — without
// costing the untraced hot path more than one atomic load. Per-variant
// latency histograms add p50/p95/p99 and relative-regret estimates to
// Context.Stats, and a MetricsRegistry serves everything (Prometheus text
// exposition plus a JSON debug view) over HTTP:
//
//	tracer := cv.EnableTracing(nitro.TracePolicy{Mode: nitro.TraceSampled})
//	cx.EnableLatencyHistograms("mine")
//
//	reg := nitro.NewMetricsRegistry()
//	reg.Register(cx.Collector())
//	reg.Register(tracer.Collector("mine"))
//	srv, _ := reg.Serve("127.0.0.1:9090") // /metrics, /vars, /healthz
//	defer srv.Close()
package nitro

import (
	"context"

	"nitro/internal/autotuner"
	"nitro/internal/core"
	"nitro/internal/ensemble"
	"nitro/internal/ml"
	"nitro/internal/obs"
	"nitro/internal/obs/trace"
	"nitro/internal/online"
	"nitro/internal/server"
	"nitro/internal/server/client"
)

// Context maintains global tuning state (models, statistics) shared by the
// code variants of a program; it mirrors nitro::context in the paper.
type Context = core.Context

// NewContext returns an empty tuning context.
func NewContext() *Context { return core.NewContext() }

// TuningPolicy carries per-function tuning options (the contents of the
// paper's generated tuning_policies header).
type TuningPolicy = core.TuningPolicy

// DefaultPolicy returns the paper's defaults for a named tunable function:
// constraints enabled, serial synchronous feature evaluation.
func DefaultPolicy(name string) TuningPolicy { return core.DefaultPolicy(name) }

// CodeVariant is a tunable function with registered variants, features and
// constraints; it mirrors nitro::code_variant.
type CodeVariant[In any] = core.CodeVariant[In]

// NewCodeVariant creates a tunable function bound to a context.
func NewCodeVariant[In any](cx *Context, policy TuningPolicy) *CodeVariant[In] {
	return core.New[In](cx, policy)
}

// VariantFn executes one code variant and returns its optimization value
// (by convention, the time taken; any minimized criterion works).
type VariantFn[In any] = core.VariantFn[In]

// ConstraintFn vetoes a variant for an input when it returns false.
type ConstraintFn[In any] = core.ConstraintFn[In]

// Feature is an input-feature function with an optional evaluation-cost
// model used for overhead accounting.
type Feature[In any] = core.Feature[In]

// CallStats aggregates deployment-time selection statistics.
type CallStats = core.CallStats

// Fixed is the per-call future returned by CodeVariant.FixInputs: it binds
// one input to its (possibly still evaluating) feature vector so that
// selection, constraints and execution always agree on the same input.
// Consume it exactly once with Fixed.Call or CodeVariant.CallFixed.
type Fixed[In any] = core.Fixed[In]

// CallResult is one outcome of a CodeVariant.CallConcurrent batch.
type CallResult = core.CallResult

// ErrAllVariantsVetoed is returned by Call when deployment-time constraints
// veto every registered variant for an input.
var ErrAllVariantsVetoed = core.ErrAllVariantsVetoed

// VariantError describes one failed variant invocation (recovered panic,
// Abort, or timeout); use errors.As to inspect it.
type VariantError = core.VariantError

// ErrVariantTimeout is the VariantError cause when an invocation exceeds
// TuningPolicy.VariantTimeout.
var ErrVariantTimeout = core.ErrVariantTimeout

// ErrModelMismatch is wrapped by Context.SetModel/LoadModel when a model is
// structurally incompatible with the registered tunable function.
var ErrModelMismatch = core.ErrModelMismatch

// ErrInjectedFault is the error mode injected by WrapFault.
var ErrInjectedFault = core.ErrInjectedFault

// Abort aborts the calling variant with err: dispatch converts it into a
// *VariantError and walks the fallback chain, exactly as for a panic. It is
// the sanctioned way for a value-returning VariantFn to report that it cannot
// handle an input.
func Abort(err error) { core.Abort(err) }

// QuarantinePolicy configures the per-variant failure circuit breaker
// (TuningPolicy.Quarantine); the zero value disables quarantining.
type QuarantinePolicy = core.QuarantinePolicy

// DefaultQuarantine returns the breaker configuration used by the examples
// and the fault-injection harness: 5 failures within 1s quarantine a variant
// for 100ms.
func DefaultQuarantine() QuarantinePolicy { return core.DefaultQuarantine() }

// FaultConfig configures WrapFault's seeded fault injection.
type FaultConfig = core.FaultConfig

// WrapFault wraps a variant function with seeded fault injection (panics,
// aborts, delays) for robustness testing.
func WrapFault[In any](fn VariantFn[In], cfg FaultConfig) VariantFn[In] {
	return core.WrapFault(fn, cfg)
}

// TrainOptions configures the offline tuner's classifier ("svm", "knn" or
// "tree") and the cross-validated grid search.
type TrainOptions = autotuner.TrainOptions

// TuneReport summarizes a training run: label distribution, skipped inputs,
// training accuracy and grid-search outcome.
type TuneReport = autotuner.Report

// Autotuner drives the offline pipeline for one code variant: exhaustive
// search over training inputs, feature scaling, classifier fit, and model
// installation; it mirrors the paper's Python nitro.autotuner.
type Autotuner[In any] = autotuner.Tuner[In]

// NewAutotuner builds an offline tuner for cv.
func NewAutotuner[In any](cv *CodeVariant[In], opts TrainOptions) *Autotuner[In] {
	return &Autotuner[In]{CV: cv, Opts: opts}
}

// AdaptPolicy configures an online adaptation engine: sampling rate,
// exploration budget, drift-detector windows/thresholds/hysteresis, and the
// background retrainer.
type AdaptPolicy = online.Policy

// DefaultAdaptPolicy returns a balanced adaptation configuration (sample
// every 4th call, explore a quarter of the samples) driven by seed.
func DefaultAdaptPolicy(seed int64) AdaptPolicy { return online.DefaultPolicy(seed) }

// AdaptEngine is a per-function online adaptation engine; detach with Close,
// toggle with Pause/Resume, observe with Stats/State/Events.
type AdaptEngine[In any] = online.Engine[In]

// AdaptEvent is one entry of an adaptation engine's deterministic timeline
// (window closures, drift detections, retrains, swaps, rollbacks).
type AdaptEvent = online.Event

// AdaptState is the engine's drift state ("healthy", "drifting",
// "retraining").
type AdaptState = online.State

// AdaptStats is a point-in-time snapshot of an adaptation engine's counters;
// it serializes to stable snake_case JSON like CallStats.
type AdaptStats = core.AdaptStats

// RetrainOptions configures the online retrainer (classifier options,
// optional BvSB incremental seeding, holdout fraction, acceptance margin).
type RetrainOptions = autotuner.RetrainOptions

// BanditPolicy enables LinUCB contextual-bandit exploration routing in an
// adaptation engine (AdaptPolicy.Bandit): predictions whose calibrated
// confidence falls below MinConfidence — or that arrive while the drift
// detector is unhealthy — are handed to a per-function bandit that picks
// which variant to re-time from the feature vector and learns from the
// realised regret; confident healthy predictions are trusted for free.
type BanditPolicy = online.BanditPolicy

// Bandit is the seeded LinUCB contextual bandit itself (ridge-regression
// per-arm payoff model, UCB selection, deterministic tie-breaks).
type Bandit = ensemble.Bandit

// NewBandit constructs a LinUCB bandit with exploration width alpha and
// ridge regularisation (zeros select the defaults).
func NewBandit(alpha, ridge float64) *Bandit { return ensemble.NewBandit(alpha, ridge) }

// Classifier is the pluggable variant-selection model interface
// (Fit/Predict/Scores/Classes/Name) every committee member implements.
type Classifier = ml.Classifier

// Ensemble is the agreement-weighted voting committee classifier (SVM, kNN,
// logistic regression and CART) with calibrated per-prediction confidence;
// select it in training options with Classifier: "ensemble".
type Ensemble = ml.Ensemble

// NewEnsemble constructs the default four-member committee (pass explicit
// members to override).
func NewEnsemble(members ...Classifier) *Ensemble { return ml.NewEnsemble(members...) }

// BakeoffConfig configures the sequential paired-timing stopper that
// replaces validate-then-swap promotion when set on AdaptPolicy.Bakeoff (or
// on the tuning daemon's CanaryPolicy.Sequential): a retrained challenger
// is promoted only when the paired-t evidence on live timings clears the
// bound, rejected when the incumbent wins, and timed out — incumbent kept —
// when the sample budget ends undecided.
type BakeoffConfig = ensemble.BakeoffConfig

// Bakeoff is the running challenger-vs-incumbent experiment; observe paired
// deltas and read the verdict.
type Bakeoff = ensemble.Bakeoff

// NewBakeoff starts a sequential bakeoff under cfg.
func NewBakeoff(cfg BakeoffConfig) *Bakeoff { return ensemble.NewBakeoff(cfg) }

// BakeoffVerdict is a bakeoff outcome: Undecided, Promote, Reject or
// Timeout.
type BakeoffVerdict = ensemble.Verdict

// Bakeoff verdicts.
const (
	BakeoffUndecided = ensemble.Undecided
	BakeoffPromote   = ensemble.Promote
	BakeoffReject    = ensemble.Reject
	BakeoffTimeout   = ensemble.Timeout
)

// Model is a trained variant-selection model: classifier, feature scaler and
// metadata, hot-swappable via Context.SetModel/LoadModel.
type Model = ml.Model

// DispatchPolicy tunes the fast-path prediction tiers (memoization cache and
// compiled artifact) via TuningPolicy.Dispatch; the zero value enables both.
type DispatchPolicy = core.DispatchPolicy

// Compiled is the distilled fast-dispatch artifact an ml.Distill run attaches
// to a Model: a flattened threshold program over the scaled feature space
// with a calibrated exact-model fallback margin.
type Compiled = ml.Compiled

// DistillOptions configures Distill (CART depth, agreement gate, fallback
// cap, optional decision grid); the zero value selects the defaults.
type DistillOptions = ml.DistillOptions

// Distill compiles a model's decision function into a fast dispatch artifact
// trained on the model's own labels over corpus, installed only when it
// agrees with the exact model on at least the configured share of the corpus
// (99% by default). Attach the result to Model.Compiled.
func Distill(m *Model, corpus [][]float64, opts DistillOptions) (*Compiled, error) {
	return ml.Distill(m, corpus, opts)
}

// Tier identifies which dispatch tier served a prediction (see CallStats'
// MemoHits/CompiledHits/ExactFallbacks and DecisionTrace.Tier).
type Tier = ml.Tier

// Dispatch tiers, from cheapest to most expensive.
const (
	TierNone     = ml.TierNone
	TierExact    = ml.TierExact
	TierCompiled = ml.TierCompiled
	TierMemo     = ml.TierMemo
)

// Explanation is a full derivation of one model decision: raw and scaled
// features, per-class scores, pairwise SVM decision values, and the ranked
// class preference order dispatch walks on fallback. Produced by
// Model.Explain, which reuses the exact scoring paths dispatch itself uses,
// so an explanation can never disagree with the decision it explains.
type Explanation = ml.Explanation

// TraceMode selects a decision tracer's admission policy.
type TraceMode = obs.TraceMode

// Trace modes: Off mutes an installed tracer, Sampled admits one call in
// TracePolicy.SamplePeriod (counter-exact, so serial replays are
// deterministic), Always captures every call.
const (
	TraceOff     = obs.TraceOff
	TraceSampled = obs.TraceSampled
	TraceAlways  = obs.TraceAlways
)

// ParseTraceMode parses "off", "sampled" or "always".
func ParseTraceMode(s string) (TraceMode, error) { return obs.ParseTraceMode(s) }

// TracePolicy configures decision tracing: mode, sampling period and ring
// capacity. The zero value normalizes to Off with the default period (64)
// and capacity (256).
type TracePolicy = obs.TracePolicy

// DecisionTrace is one captured dispatch decision: the model explanation,
// the selection-time veto and quarantine view, the executed variant, the
// failure fallback hop count and the call's wall time. Its String form is
// deterministic under serial replay (wall-clock fields are excluded).
type DecisionTrace = obs.DecisionTrace

// Tracer is a lock-free sampled decision-trace ring buffer; install one with
// CodeVariant.EnableTracing and read it with Recent, or stream every
// admitted trace through SetSink.
type Tracer = obs.Tracer

// TraceSink receives every admitted DecisionTrace synchronously on the
// dispatching goroutine; keep it fast.
type TraceSink = obs.TraceSink

// LatencySummary digests one variant's latency histogram: count, mean,
// min/max, p50/p95/p99 and the relative regret against the best variant.
// Context.Stats fills CallStats.Latency with these once
// Context.EnableLatencyHistograms is on.
type LatencySummary = obs.LatencySummary

// MetricsRegistry aggregates metric collectors and debug variables and
// serves them as a Prometheus text exposition (/metrics), a JSON debug view
// (/vars), and the process-wide "nitro" expvar.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry; register
// Context.Collector, Tracer.Collector and AdaptEngine.Collector on it, then
// call Serve (or mount Handler yourself).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsServer is a live telemetry endpoint started by
// MetricsRegistry.Serve; Addr reports the bound address, Close shuts it
// down.
type MetricsServer = obs.Server

// PhaseTracker accumulates named phase durations (the offline tuner reports
// search/fit/install timings through one); nil-safe, so it can be threaded
// through options unconditionally.
type PhaseTracker = obs.PhaseTracker

// NewPhaseTracker returns an empty phase tracker.
func NewPhaseTracker() *PhaseTracker { return obs.NewPhaseTracker() }

// EnableAdaptation attaches an online adaptation engine to cv: live calls
// are sampled and explored per pol, sustained drift triggers a background
// retrain on the drifted observations, and an accepted candidate is
// hot-swapped into the context's model slot (a rejected one is rolled back).
// The engine observes every Call path until Close. Adaptation never changes
// what a call returns — with ExploreRate 0 the engine is observationally
// identical to plain Call.
func EnableAdaptation[In any](cv *CodeVariant[In], pol AdaptPolicy) (*AdaptEngine[In], error) {
	return online.Attach(cv, pol)
}

// ---------------------------------------------------------------------------
// Nitro-as-a-service: the model registry daemon and its client.

// TuningServer is a multi-tenant model registry daemon: it owns tuned models
// for many functions, queues tuning jobs over pushed observation corpora,
// versions and persists model artifacts, detects fleet-wide drift, and gates
// new versions behind a fraction-limited canary before promotion. Start one
// with NewTuningServer, stop it with Shutdown.
type TuningServer = server.Daemon

// TuningServerConfig configures a TuningServer: listen address, tenants with
// quotas, persistence directory, tuning workers and canary policy.
type TuningServerConfig = server.Config

// NewTuningServer builds and starts a registry daemon.
func NewTuningServer(cfg TuningServerConfig) (*TuningServer, error) {
	d, err := server.NewDaemon(cfg)
	if err != nil {
		return nil, err
	}
	if err := d.Start(cfg); err != nil {
		return nil, err
	}
	return d, nil
}

// TenantConfig declares one registry tenant: name, bearer token and quotas.
type TenantConfig = server.TenantConfig

// TenantQuotas caps a tenant's registered functions, pending tune jobs and
// observation-push rate; zero fields are unlimited.
type TenantQuotas = server.Quotas

// FunctionSpec describes a tunable function to the registry: feature and
// variant names plus the fallback default variant.
type FunctionSpec = server.FunctionSpec

// ServerCanaryPolicy is the server-side canary gate: traffic fraction,
// fleet-wide sample floor and the failure rate that triggers rollback.
type ServerCanaryPolicy = server.CanaryPolicy

// Deployment is a function's registry deployment state: stable and latest
// versions, the in-flight canary (if any) and the last canary decision.
type Deployment = server.Deployment

// RegistryClient talks to a TuningServer: registering specs, pulling
// ETag-cached model artifacts, pushing observations and reporting canary
// outcomes, with retry/backoff on transient failures.
type RegistryClient = client.Client

// RegistryClientConfig configures a RegistryClient (base URL, tenant token,
// retry budget).
type RegistryClientConfig = client.Config

// NewRegistryClient validates cfg and returns a registry client.
func NewRegistryClient(cfg RegistryClientConfig) (*RegistryClient, error) {
	return client.New(cfg)
}

// ModelPoller reconciles a local Context against a function's registry
// deployment: it installs new stable versions by atomic hot-swap, serves
// challenger models to the canary traffic fraction, reports outcomes, and
// promotes or rolls back on the server's verdict. Call PollOnce on a timer.
type ModelPoller = client.Poller

// NewModelPoller binds a poller to a client, context and function name.
func NewModelPoller(c *RegistryClient, cx *Context, fn string) *ModelPoller {
	return client.NewPoller(c, cx, fn)
}

// TraceIDHeader is the HTTP header that correlates a request with the
// registry's structured logs, journal records and flight recorder.
const TraceIDHeader = trace.Header

// WithTraceID attaches a fleet trace id to ctx: every registry request
// issued under the returned context (and any canary episode or verdict it
// produces server-side) is correlated under that id. Ids are confined to
// [A-Za-z0-9._-] and 64 bytes; anything else is replaced server-side.
func WithTraceID(ctx context.Context, id string) context.Context {
	return trace.With(ctx, id)
}

// TraceIDFrom returns the fleet trace id carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string { return trace.From(ctx) }

// RemoteSample is one labelled observation pushed to the registry's
// fleet-wide drift detector: a feature vector, per-variant times and the
// variant the local model predicted.
type RemoteSample = online.RemoteSample

// FleetStats snapshots the server-side drift detector for one function.
type FleetStats = online.FleetStats
