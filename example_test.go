package nitro_test

import (
	"fmt"

	"nitro"
)

// Example shows the complete expert-programmer flow from the paper's Fig. 2
// and Fig. 3: register variants and features, tune offline, dispatch
// adaptively.
func Example() {
	type workload struct{ Size float64 }

	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[workload](cx, nitro.DefaultPolicy("demo"))
	// Variants return their own cost (the paper's operator() convention).
	cv.AddVariant("small-opt", func(w workload) float64 { return 1 + w.Size })
	cv.AddVariant("large-opt", func(w workload) float64 { return 31 - w.Size })
	if err := cv.SetDefault("small-opt"); err != nil {
		panic(err)
	}
	cv.AddInputFeature(nitro.Feature[workload]{
		Name: "size",
		Eval: func(w workload) float64 { return w.Size },
	})

	// Offline tuning: exhaustive search labels each training input, then an
	// SVM learns the boundary.
	var train []workload
	for s := 0.0; s <= 30; s++ {
		train = append(train, workload{Size: s})
	}
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm"})
	if _, err := tuner.Tune(train); err != nil {
		panic(err)
	}

	// Deployment: each call selects per input.
	_, chosen, _ := cv.Call(workload{Size: 3})
	fmt.Println("size 3 ->", chosen)
	_, chosen, _ = cv.Call(workload{Size: 28})
	fmt.Println("size 28 ->", chosen)
	// Output:
	// size 3 -> small-opt
	// size 28 -> large-opt
}
