// Example spmv mirrors the paper's Fig. 2: a "MySparse" library whose
// SparseMatVec entry point is tuned by Nitro over the six CUSP-style format
// variants (CSR-Vec, DIA, ELL and their texture-cached twins), with the DIA
// and ELL variants guarded by fill-in cutoff constraints. End users of
// MySparse never see a Nitro construct.
//
// Run with: go run ./examples/spmv
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"nitro"
	"nitro/internal/gpusim"
	"nitro/internal/sparse"
)

// mySparse is the library of Fig. 2, holding the tuned code variant.
type mySparse struct {
	cx  *nitro.Context
	cv  *nitro.CodeVariant[*sparse.Problem]
	dev *gpusim.Device
}

// newMySparse registers variants, features and constraints — the expert-
// programmer side of the paper's interface.
func newMySparse(dev *gpusim.Device) *mySparse {
	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[*sparse.Problem](cx, nitro.DefaultPolicy("spmv"))
	for _, v := range sparse.Variants() {
		v := v
		cv.AddVariant(v.Name, func(p *sparse.Problem) float64 {
			res, err := v.Run(p, dev)
			if err != nil {
				panic(err) // constraints keep infeasible variants out
			}
			return res.Seconds
		})
		if v.Constraint != nil {
			if err := cv.AddConstraint(v.Name, nitro.ConstraintFn[*sparse.Problem](v.Constraint)); err != nil {
				panic(err)
			}
		}
	}
	if err := cv.SetDefault("CSR-Vec"); err != nil {
		panic(err)
	}
	names := sparse.FeatureNames()
	for i := range names {
		i := i
		cv.AddInputFeature(nitro.Feature[*sparse.Problem]{
			Name: names[i],
			Eval: func(p *sparse.Problem) float64 { return p.Features().Vector()[i] },
		})
	}
	return &mySparse{cx: cx, cv: cv, dev: dev}
}

// SparseMatVec is the end-user entry point: y = A*x with Nitro picking the
// format variant. It reports which variant ran and the simulated time.
func (lib *mySparse) SparseMatVec(m *sparse.CSR, x []float64) (string, float64) {
	p, err := sparse.NewProblem(m, x)
	if err != nil {
		panic(err)
	}
	secs, chosen, err := lib.cv.Call(p)
	if err != nil {
		panic(err)
	}
	return chosen, secs
}

func trainingMatrices(rng *rand.Rand) []*sparse.Problem {
	var out []*sparse.Problem
	add := func(m *sparse.CSR) {
		x := make([]float64, m.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		p, err := sparse.NewProblem(m, x)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	for i := 0; i < 6; i++ {
		add(sparse.Stencil2D(40+10*i, 40+10*i))
		add(sparse.Banded(2000+500*i, []int{-1 - i, 0, 1 + i}, rng.Int63()))
		add(sparse.RegularRandom(20000+5000*i, 6+4*i, rng.Int63()))
		add(sparse.PowerLaw(2500+400*i, 6+2*float64(i), 1.4+0.1*float64(i), rng.Int63()))
		add(sparse.BlockClustered(5000+1000*i, 24+4*i, 160, rng.Int63()))
	}
	return out
}

func main() {
	dev := gpusim.Fermi()
	lib := newMySparse(dev)
	rng := rand.New(rand.NewSource(7))

	tuner := nitro.NewAutotuner(lib.cv, nitro.TrainOptions{Classifier: "svm", GridSearch: true})
	rep, err := tuner.Tune(trainingMatrices(rng))
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained SpMV model: labels %v, accuracy %.0f%%\n", rep.LabelCounts, 100*rep.TrainAccuracy)

	// Persist and reload the model — the deployment artifact.
	path := filepath.Join(os.TempDir(), "spmv.model.json")
	if err := lib.cx.SaveModel("spmv", path); err != nil {
		panic(err)
	}
	fmt.Printf("model saved to %s\n", path)

	// End-user calls on unseen matrices.
	cases := []struct {
		name string
		m    *sparse.CSR
	}{
		{"poisson 2D stencil", sparse.Stencil2D(96, 96)},
		{"pentadiagonal band", sparse.Banded(8000, []int{-2, -1, 0, 1, 2}, 99)},
		{"regular random (ELL-friendly)", sparse.RegularRandom(30000, 14, 100)},
		{"power-law rows (CSR-only)", sparse.PowerLaw(6000, 10, 1.4, 101)},
		{"clustered columns (texture-friendly)", sparse.BlockClustered(20000, 32, 200, 102)},
	}
	for _, tc := range cases {
		x := make([]float64, tc.m.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		chosen, secs := lib.SparseMatVec(tc.m, x)
		f := sparse.ComputeFeatures(tc.m)
		fmt.Printf("%-38s -> %-8s (%.3f ms; DIA fill %.1f, ELL fill %.1f)\n",
			tc.name, chosen, secs*1e3, f.DIAFill, f.ELLFill)
	}
	// Concurrent serving: the tuned library handles simultaneous callers —
	// one CodeVariant shared by a batch fanned over all cores.
	var probs []*sparse.Problem
	for i := 0; i < 12; i++ {
		m := sparse.Stencil2D(48+8*i, 48+8*i)
		if i%3 == 2 {
			m = sparse.PowerLaw(3000+500*i, 8, 1.4, int64(300+i))
		}
		x := make([]float64, m.Cols)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		p, err := sparse.NewProblem(m, x)
		if err != nil {
			panic(err)
		}
		probs = append(probs, p)
	}
	served := map[string]int{}
	for i, r := range lib.cv.CallConcurrent(probs, 0) {
		if r.Err != nil {
			panic(fmt.Sprintf("concurrent call %d: %v", i, r.Err))
		}
		served[r.Variant]++
	}
	fmt.Printf("served %d concurrent SpMV calls: %v\n", len(probs), served)

	stats := lib.cx.Stats("spmv")
	fmt.Printf("calls: %d, fallbacks to default: %d, per-variant: %v\n",
		stats.Calls, stats.DefaultFallbacks, stats.PerVariant)
}
