// Example bfs tunes breadth-first-search variant selection over the six
// Merrill-style traversal kernels and compares the Nitro-tuned selection
// with the hand-built Hybrid baseline — the comparison the paper reports as
// Nitro beating Hybrid by ~11% on average.
//
// Run with: go run ./examples/bfs
package main

import (
	"fmt"
	"math/rand"

	"nitro"
	"nitro/internal/gpusim"
	"nitro/internal/graph"
)

func problems(rng *rand.Rand, n int) []*graph.Problem {
	var out []*graph.Problem
	mk := func(g *graph.Graph) {
		sources := []int{rng.Intn(g.V), rng.Intn(g.V), rng.Intn(g.V)}
		p, err := graph.NewProblem(g, sources)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			mk(graph.Grid2D(60+10*i%50, 60+10*i%50))
		case 1:
			mk(graph.RMAT(10+i%3, 12+4*(i%3), rng.Int63()))
		case 2:
			mk(graph.RandomRegular(4000+500*(i%4), 3+2*(i%5), rng.Int63()))
		case 3:
			mk(graph.SmallWorld(5000, 2+i%3, 0.1, rng.Int63()))
		default:
			mk(graph.Star(4+i%4, 600, rng.Int63()))
		}
	}
	return out
}

func main() {
	dev := gpusim.Fermi()
	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[*graph.Problem](cx, nitro.DefaultPolicy("bfs"))
	for _, v := range graph.Variants() {
		v := v
		cv.AddVariant(v.Name, func(p *graph.Problem) float64 {
			res, err := v.Run(p, dev)
			if err != nil {
				panic(err)
			}
			return res.Seconds
		})
	}
	if err := cv.SetDefault("CE-Fused"); err != nil {
		panic(err)
	}
	names := graph.FeatureNames()
	for i := range names {
		i := i
		cv.AddInputFeature(nitro.Feature[*graph.Problem]{
			Name: names[i],
			Eval: func(p *graph.Problem) float64 { return graph.ComputeFeatures(p.G).Vector()[i] },
		})
	}

	rng := rand.New(rand.NewSource(3))
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm", GridSearch: true})
	rep, err := tuner.Tune(problems(rng, 20))
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained BFS model on 20 graphs: labels %v\n", rep.LabelCounts)

	// Held-out graphs: Nitro vs Hybrid, in TEPS.
	var nitroSum, hybridSum float64
	tests := problems(rng, 15)
	fmt.Printf("%-12s %-14s %12s %12s\n", "graph", "chosen", "nitro TEPS", "hybrid TEPS")
	for i, p := range tests {
		secs, chosen, err := cv.Call(p)
		if err != nil {
			panic(err)
		}
		h, err := graph.Hybrid(p, dev)
		if err != nil {
			panic(err)
		}
		nitroTEPS := float64(p.Edges()) / secs
		fmt.Printf("graph-%-6d %-14s %12.3g %12.3g\n", i, chosen, nitroTEPS, h.TEPS())
		nitroSum += nitroTEPS
		hybridSum += h.TEPS()
	}
	fmt.Printf("mean TEPS: nitro %.3g vs hybrid %.3g (%.2fx)\n",
		nitroSum/float64(len(tests)), hybridSum/float64(len(tests)), nitroSum/hybridSum)
}
