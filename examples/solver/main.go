// Example solver builds a CULA-style sparse linear-solver library whose
// (solver, preconditioner) combination is selected by Nitro from numeric
// matrix features — the paper's second benchmark. Non-converging runs return
// +Inf, so training labels automatically avoid them and the tuned library
// picks converging combinations for unseen systems.
//
// Run with: go run ./examples/solver
package main

import (
	"fmt"
	"math"
	"math/rand"

	"nitro"
	"nitro/internal/gpusim"
	"nitro/internal/solver"
	"nitro/internal/sparse"
)

func system(kind string, n int, rng *rand.Rand) *solver.Problem {
	var m *sparse.CSR
	switch kind {
	case "spd-easy":
		side := int(math.Sqrt(float64(n)))
		m = sparse.Stencil2D(side, side)
	case "spd-tight":
		m = sparse.SPD(sparse.BlockClustered(n, 6, 24, rng.Int63()), 1.03, rng.Int63())
	default: // nonsymmetric
		m = sparse.RandomUniform(n, n*4, rng.Int63())
	}
	b := make([]float64, m.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	p, err := solver.NewProblem(m, b)
	if err != nil {
		panic(err)
	}
	return p
}

func main() {
	dev := gpusim.Fermi()
	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[*solver.Problem](cx, nitro.DefaultPolicy("solve"))
	for _, v := range solver.Variants() {
		v := v
		cv.AddVariant(v.Name, func(p *solver.Problem) float64 {
			res, err := v.Run(p, dev)
			return solver.Cost(res, err) // +Inf when setup fails or no convergence
		})
	}
	if err := cv.SetDefault("BiCGStab-Jacobi"); err != nil {
		panic(err)
	}
	names := solver.FeatureNames()
	for i := range names {
		i := i
		cv.AddInputFeature(nitro.Feature[*solver.Problem]{
			Name: names[i],
			Eval: func(p *solver.Problem) float64 { return solver.ComputeFeatures(p.A).Vector()[i] },
		})
	}

	rng := rand.New(rand.NewSource(5))
	var train []*solver.Problem
	for i := 0; i < 8; i++ {
		train = append(train,
			system("spd-easy", 150+20*i, rng),
			system("spd-tight", 150+20*i, rng),
			system("nonsym", 150+20*i, rng))
	}
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm", GridSearch: true})
	rep, err := tuner.Tune(train)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained on %d systems: labels %v, accuracy %.0f%%\n",
		len(train), rep.LabelCounts, 100*rep.TrainAccuracy)

	fmt.Printf("%-12s -> %-18s %12s\n", "system", "chosen", "solve time")
	for _, kind := range []string{"spd-easy", "spd-tight", "nonsym"} {
		for trial := 0; trial < 2; trial++ {
			p := system(kind, 220+30*trial, rng)
			cost, chosen, err := cv.Call(p)
			if err != nil {
				panic(err)
			}
			status := fmt.Sprintf("%8.3f ms", cost*1e3)
			if math.IsInf(cost, 1) {
				status = "  did not converge"
			}
			fmt.Printf("%-12s -> %-18s %s\n", kind, chosen, status)
		}
	}
	stats := cx.Stats("solve")
	fmt.Printf("selection counts: %v (fallbacks: %d)\n", stats.PerVariant, stats.DefaultFallbacks)
}
