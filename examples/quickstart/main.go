// Quickstart: tune a two-variant function end to end with the public nitro
// API, using real wall-clock timings.
//
// The tunable computation sorts an []int. Variant "insertion" wins on small
// or nearly-sorted inputs; variant "std" (pdqsort) wins elsewhere. Nitro
// learns the boundary from two features — input length and a sampled
// disorder estimate — and then dispatches adaptively.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nitro"
)

// input is the tunable function's argument type.
type input struct {
	data []int
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// timed runs f on a copy of the input and returns elapsed seconds — the
// value Nitro minimizes, per the paper's convention that variants return
// their own cost.
func timed(f func([]int)) nitro.VariantFn[input] {
	return func(in input) float64 {
		buf := append([]int(nil), in.data...)
		start := time.Now()
		f(buf)
		return time.Since(start).Seconds()
	}
}

// disorder samples adjacent pairs and returns the fraction out of order.
func disorder(in input) float64 {
	n := len(in.data)
	if n < 2 {
		return 0
	}
	bad, samples := 0, 0
	step := n/512 + 1
	for i := 0; i+1 < n; i += step {
		samples++
		if in.data[i] > in.data[i+1] {
			bad++
		}
	}
	return float64(bad) / float64(samples)
}

// gen builds an input: swapFrac < 1 yields a sorted array with that fraction
// of local swaps (insertion-sort territory); swapFrac >= 1 yields a full
// shuffle.
func gen(rng *rand.Rand, n int, swapFrac float64) input {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	if swapFrac >= 1 {
		rng.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		return input{data: a}
	}
	for s := 0; s < int(float64(n)*swapFrac/2); s++ {
		i := rng.Intn(n - 1)
		a[i], a[i+1] = a[i+1], a[i]
	}
	return input{data: a}
}

func main() {
	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[input](cx, nitro.DefaultPolicy("sortints"))
	cv.AddVariant("insertion", timed(insertionSort))
	cv.AddVariant("std", timed(func(a []int) { sort.Ints(a) }))
	if err := cv.SetDefault("std"); err != nil {
		panic(err)
	}
	cv.AddInputFeature(nitro.Feature[input]{Name: "n", Eval: func(in input) float64 { return float64(len(in.data)) }})
	cv.AddInputFeature(nitro.Feature[input]{Name: "disorder", Eval: disorder})

	// Training corpus: sizes and disorder levels spanning both regimes.
	// Exhaustive search runs every variant on every input, so shuffled
	// inputs are capped where insertion sort's quadratic cost stays sane.
	rng := rand.New(rand.NewSource(1))
	var train []input
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		for _, frac := range []float64{0, 0.02, 0.2, 1.0} {
			train = append(train, gen(rng, n, frac))
		}
	}
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm", GridSearch: true})
	rep, err := tuner.Tune(train)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tuned on %d inputs; label distribution %v; training accuracy %.0f%%\n",
		len(train), rep.LabelCounts, 100*rep.TrainAccuracy)

	// Deployment: Nitro picks per input.
	tests := []struct {
		name string
		in   input
	}{
		{"tiny shuffled", gen(rng, 128, 1.0)},
		{"small nearly-sorted", gen(rng, 2048, 0.005)},
		{"large nearly-sorted", gen(rng, 16384, 0.002)},
		{"large shuffled", gen(rng, 16384, 1.0)},
	}
	for _, tc := range tests {
		secs, chosen, err := cv.Call(tc.in)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s -> %-9s (%.3f ms)\n", tc.name, chosen, secs*1e3)
	}

	// Concurrent deployment: a tuned CodeVariant is safe to share, so a
	// whole batch can be fanned over all cores in one call ...
	batch := make([]input, 32)
	for i := range batch {
		if i%2 == 0 {
			batch[i] = gen(rng, 8192, 0.002)
		} else {
			batch[i] = gen(rng, 8192, 1.0)
		}
	}
	counts := map[string]int{}
	for i, r := range cv.CallConcurrent(batch, 0) {
		if r.Err != nil {
			panic(fmt.Sprintf("batch input %d: %v", i, r.Err))
		}
		counts[r.Variant]++
	}
	fmt.Printf("concurrent batch of %d: %v\n", len(batch), counts)

	// ... and feature evaluation can overlap other work: FixInputs starts
	// evaluating features for one input and returns a single-shot future.
	f := cv.FixInputs(gen(rng, 16384, 0.001))
	// (other work would happen here while features evaluate)
	if _, chosen, err := f.Call(); err != nil {
		panic(err)
	} else {
		fmt.Printf("async future            -> %s\n", chosen)
	}

	stats := cx.Stats("sortints")
	fmt.Printf("calls: %d, per-variant: %v\n", stats.Calls, stats.PerVariant)

	// Fault tolerance: dispatch survives broken variants. Build a second
	// tunable function whose preferred variant panics 30% of the time, with a
	// quarantine breaker: the runtime recovers each panic, falls back to the
	// healthy variant, and after repeated failures stops selecting the flaky
	// one altogether (re-probing it after a cooldown).
	fp := nitro.DefaultPolicy("sortints-faulty")
	fp.Quarantine = nitro.DefaultQuarantine()
	fcv := nitro.NewCodeVariant[input](cx, fp)
	flaky := nitro.WrapFault(timed(insertionSort), nitro.FaultConfig{PanicRate: 0.3, Seed: 5})
	fcv.AddVariant("flaky-insertion", flaky)
	fcv.AddVariant("std", timed(func(a []int) { sort.Ints(a) }))
	if err := fcv.SetDefault("flaky-insertion"); err != nil {
		panic(err)
	}
	fcv.AddInputFeature(nitro.Feature[input]{Name: "n", Eval: func(in input) float64 { return float64(len(in.data)) }})
	fcv.AddInputFeature(nitro.Feature[input]{Name: "disorder", Eval: disorder})
	for i := 0; i < 50; i++ {
		if _, _, err := fcv.Call(gen(rng, 512, 0.01)); err != nil {
			// Even total variant failure surfaces as a typed error, never a
			// crash.
			var ve *nitro.VariantError
			if !errors.As(err, &ve) {
				panic(err)
			}
		}
	}
	fstats := cx.Stats("sortints-faulty")
	fmt.Printf("fault demo: %d calls served, %d panics recovered, %d fallback hops, %d quarantine trips, %d recoveries\n",
		fstats.Calls, fstats.Panics, fstats.Fallbacks, fstats.Quarantined, fstats.Recoveries)
}
