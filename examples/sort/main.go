// Example sort builds an adaptive sorting library over the paper's three
// variants — ModernGPU-style Merge and Locality sorts and a CUB-style Radix
// sort — tuned on 32- and 64-bit float keys across the paper's three input
// categories (uniform random, reverse-sorted, almost-sorted). One combined
// model serves both key widths, as in the paper.
//
// Run with: go run ./examples/sort
package main

import (
	"fmt"
	"math/rand"

	"nitro"
	"nitro/internal/gpusim"
	"nitro/internal/sortbench"
)

func mkProblem(category string, n, bits int, seed int64) *sortbench.Problem {
	var keys []float64
	switch category {
	case "uniform":
		keys = sortbench.UniformKeys(n, seed)
	case "reverse":
		keys = sortbench.ReverseSortedKeys(n, seed)
	default:
		keys = sortbench.AlmostSortedKeys(n, 0.22, 64, seed)
	}
	p, err := sortbench.NewProblem(keys, bits)
	if err != nil {
		panic(err)
	}
	return p
}

func main() {
	dev := gpusim.Fermi()
	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[*sortbench.Problem](cx, nitro.DefaultPolicy("sort"))
	for _, v := range sortbench.Variants() {
		v := v
		cv.AddVariant(v.Name, func(p *sortbench.Problem) float64 {
			res, err := v.Run(p, dev)
			if err != nil {
				panic(err)
			}
			return res.Seconds
		})
	}
	if err := cv.SetDefault("Merge"); err != nil {
		panic(err)
	}
	names := sortbench.FeatureNames()
	for i := range names {
		i := i
		cv.AddInputFeature(nitro.Feature[*sortbench.Problem]{
			Name: names[i],
			Eval: func(p *sortbench.Problem) float64 { return sortbench.ComputeFeatures(p).Vector()[i] },
		})
	}

	// Combined training set across widths, categories and sizes.
	rng := rand.New(rand.NewSource(11))
	var train []*sortbench.Problem
	for _, bits := range []int{32, 64} {
		for _, cat := range []string{"uniform", "reverse", "almost"} {
			for _, n := range []int{32768, 131072, 262144} {
				train = append(train, mkProblem(cat, n, bits, rng.Int63()))
			}
		}
	}
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm", GridSearch: true})
	rep, err := tuner.Tune(train)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained combined 32/64-bit model on %d sequences: labels %v\n", len(train), rep.LabelCounts)

	fmt.Printf("%-10s %6s %9s -> %-9s %10s\n", "category", "bits", "keys", "chosen", "time")
	for _, bits := range []int{32, 64} {
		for _, cat := range []string{"uniform", "reverse", "almost"} {
			p := mkProblem(cat, 200000, bits, rng.Int63())
			secs, chosen, err := cv.Call(p)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%-10s %6d %9d -> %-9s %8.3f ms\n", cat, bits, len(p.Keys), chosen, secs*1e3)
		}
	}
	stats := cx.Stats("sort")
	fmt.Printf("selection counts: %v\n", stats.PerVariant)
}
