// Example histogram builds a CUB-style histogram library whose binning
// strategy and grid mapping are selected by Nitro from three cheap input
// features — the paper's fourth benchmark. Uniform data keeps the atomic
// variants in play; skewed data collapses them and the model switches to the
// sort-based variants.
//
// Run with: go run ./examples/histogram
package main

import (
	"fmt"
	"math/rand"

	"nitro"
	"nitro/internal/gpusim"
	"nitro/internal/histogram"
)

func workload(kind string, n int, rng *rand.Rand) *histogram.Problem {
	var data []float64
	switch kind {
	case "uniform":
		data = histogram.Uniform(n, rng.Int63())
	case "gaussian":
		data = histogram.Gaussian(n, rng.Int63())
	case "hotspot":
		data = histogram.HotSpot(n, 0.85, rng.Int63())
	default: // patchy
		data = histogram.Patchy(n, histogram.TileSize, rng.Int63())
	}
	p, err := histogram.NewProblem(data, 256)
	if err != nil {
		panic(err)
	}
	return p
}

func main() {
	dev := gpusim.Fermi()
	cx := nitro.NewContext()
	cv := nitro.NewCodeVariant[*histogram.Problem](cx, nitro.DefaultPolicy("histogram"))
	for _, v := range histogram.Variants() {
		v := v
		cv.AddVariant(v.Name, func(p *histogram.Problem) float64 {
			res, err := v.Run(p, dev)
			if err != nil {
				panic(err)
			}
			return res.Seconds
		})
	}
	if err := cv.SetDefault("Sort-ES"); err != nil {
		panic(err)
	}
	names := histogram.FeatureNames()
	for i := range names {
		i := i
		cv.AddInputFeature(nitro.Feature[*histogram.Problem]{
			Name: names[i],
			Eval: func(p *histogram.Problem) float64 {
				return histogram.ComputeFeatures(p, histogram.DefaultSubSample(len(p.Data))).Vector()[i]
			},
		})
	}

	rng := rand.New(rand.NewSource(13))
	var train []*histogram.Problem
	for i := 0; i < 10; i++ {
		for _, kind := range []string{"uniform", "gaussian", "hotspot", "patchy"} {
			train = append(train, workload(kind, 16384*(1+i%4), rng))
		}
	}
	tuner := nitro.NewAutotuner(cv, nitro.TrainOptions{Classifier: "svm", GridSearch: true})
	rep, err := tuner.Tune(train)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained on %d inputs: labels %v\n", len(train), rep.LabelCounts)

	fmt.Printf("%-10s -> %-24s %10s\n", "input", "chosen", "time")
	for _, kind := range []string{"uniform", "gaussian", "hotspot", "patchy"} {
		p := workload(kind, 65536, rng)
		secs, chosen, err := cv.Call(p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s -> %-24s %7.3f ms\n", kind, chosen, secs*1e3)
	}
	stats := cx.Stats("histogram")
	fmt.Printf("selection counts: %v\n", stats.PerVariant)
}
