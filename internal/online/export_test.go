package online

import (
	"encoding/json"
	"strings"
	"testing"

	"nitro/internal/obs"
)

// TestEngineCollectorExposition registers a driven engine's Collector on an
// obs.Registry and checks the Prometheus exposition: valid text format, the
// full nitro_adapt_* metric set, the function label, and values that match
// the engine's Stats snapshot.
func TestEngineCollectorExposition(t *testing.T) {
	eng := driveDriftScenario(t, 42)
	defer eng.Close()

	reg := obs.NewRegistry()
	reg.Register(eng.Collector("stencil"))
	text, err := reg.PrometheusText()
	if err != nil {
		t.Fatalf("PrometheusText: %v", err)
	}
	if err := obs.ValidatePrometheusText(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}

	for _, name := range []string{
		"nitro_adapt_calls_total",
		"nitro_adapt_sampled_total",
		"nitro_adapt_explored_total",
		"nitro_adapt_explore_failures_total",
		"nitro_adapt_mismatches_total",
		"nitro_adapt_windows_total",
		"nitro_adapt_drifts_total",
		"nitro_adapt_retrains_total",
		"nitro_adapt_retrains_deferred_total",
		"nitro_adapt_swaps_total",
		"nitro_adapt_rollbacks_total",
		"nitro_adapt_explore_seconds",
		"nitro_adapt_mismatch_rate",
		"nitro_adapt_regret",
		"nitro_adapt_state",
		"nitro_adapt_model_version",
		"nitro_adapt_paused",
		"nitro_bandit_flagged_total",
		"nitro_bandit_skipped_total",
		"nitro_bandit_pulls_total",
		"nitro_ensemble_confidence_mean",
		"nitro_bakeoff_started_total",
		"nitro_bakeoff_promotes_total",
		"nitro_bakeoff_rejects_total",
		"nitro_bakeoff_timeouts_total",
		"nitro_bakeoff_samples",
		"nitro_bakeoff_mean_delta",
	} {
		if !strings.Contains(text, name+`{function="stencil"}`) {
			t.Errorf("exposition missing %s{function=\"stencil\"}:\n%s", name, text)
		}
	}

	s := eng.Stats()
	for _, want := range []string{
		`nitro_adapt_drifts_total{function="stencil"} 1`,
		`nitro_adapt_swaps_total{function="stencil"} 1`,
		`nitro_adapt_model_version{function="stencil"} 2`,
		`nitro_adapt_state{function="stencil"} 0`, // recovered: healthy
		`nitro_adapt_paused{function="stencil"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q (stats: %+v)\n%s", want, s, text)
		}
	}
}

// TestEngineCollectorPausedGauge: pausing flips the gauge to 1 and the state
// gauge keeps reporting the drift state machine, not the pause flag.
func TestEngineCollectorPausedGauge(t *testing.T) {
	_, cv, _ := fixture(t)
	eng, err := Attach(cv, testPolicy(7))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Pause()

	reg := obs.NewRegistry()
	reg.Register(eng.Collector("stencil"))
	text, err := reg.PrometheusText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `nitro_adapt_paused{function="stencil"} 1`) {
		t.Errorf("paused gauge not 1:\n%s", text)
	}
}

// TestRegisterVars puts the engine's stats and timeline tail on the debug
// registry and checks the JSON view: stable snake_case stats keys, the tail
// bound honoured, and events serialized through Event.MarshalJSON.
func TestRegisterVars(t *testing.T) {
	eng := driveDriftScenario(t, 42)
	defer eng.Close()
	all := eng.Events()
	if len(all) < 4 {
		t.Fatalf("scenario produced only %d events", len(all))
	}

	reg := obs.NewRegistry()
	eng.RegisterVars(reg, "stencil", 3)
	blob, err := reg.VarsJSON()
	if err != nil {
		t.Fatalf("VarsJSON: %v", err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(blob, &vars); err != nil {
		t.Fatalf("vars not a JSON object: %v\n%s", err, blob)
	}

	var stats map[string]any
	if err := json.Unmarshal(vars["adapt_stats:stencil"], &stats); err != nil {
		t.Fatalf("adapt_stats: %v", err)
	}
	for _, key := range []string{"calls", "sampled", "drifts", "swaps", "model_version", "state"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("adapt_stats missing %q: %v", key, stats)
		}
	}
	if stats["state"] != "healthy" {
		t.Errorf("state = %v, want healthy", stats["state"])
	}

	var evs []Event
	if err := json.Unmarshal(vars["adapt_events:stencil"], &evs); err != nil {
		t.Fatalf("adapt_events: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("tail = %d events, want 3", len(evs))
	}
	if want := all[len(all)-3:]; evs[0] != want[0] || evs[1] != want[1] || evs[2] != want[2] {
		t.Errorf("tail = %+v, want %+v", evs, want)
	}

	// tail <= 0 exposes the full timeline.
	reg2 := obs.NewRegistry()
	eng.RegisterVars(reg2, "stencil", 0)
	blob, err = reg2.VarsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &vars); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(vars["adapt_events:stencil"], &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(all) {
		t.Errorf("full timeline = %d events, want %d", len(evs), len(all))
	}
}
