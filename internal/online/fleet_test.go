package online

import (
	"math"
	"sync"
	"testing"
)

func fleetPolicy() Policy {
	p := DefaultPolicy(1)
	p.Window = 5
	p.DriftWindows = 2
	return p
}

// TestFleetDetectorDriftAndRecovery drives pooled samples through the full
// state machine: healthy windows, sustained mismatch trips drift after the
// hysteresis, and the retrain/swap lifecycle resets it.
func TestFleetDetectorDriftAndRecovery(t *testing.T) {
	f := NewFleetDetector(fleetPolicy())
	good := RemoteSample{Features: []float64{1}, Times: []float64{1, 2}, Predicted: 0}
	bad := RemoteSample{Features: []float64{9}, Times: []float64{5, 1}, Predicted: 0}

	for i := 0; i < 5; i++ {
		if v := f.Ingest(good); v.DriftDetected {
			t.Fatal("healthy window flagged drift")
		}
	}
	if st := f.State(); st != StateHealthy {
		t.Fatalf("state after healthy window: %v", st)
	}

	drifted := false
	for i := 0; i < 10; i++ {
		if v := f.Ingest(bad); v.DriftDetected {
			drifted = true
		}
	}
	if !drifted {
		t.Fatal("two fully-mismatched windows did not trip drift")
	}
	if st := f.State(); st != StateDrifting {
		t.Fatalf("state after drift: %v", st)
	}

	f.OnRetrainStart()
	if st := f.State(); st != StateRetraining {
		t.Fatalf("state after retrain start: %v", st)
	}
	f.OnSwap()
	if st := f.State(); st != StateHealthy {
		t.Fatalf("state after swap: %v", st)
	}

	stats := f.Stats()
	if stats.Samples != 15 || stats.Mismatches != 10 || stats.Drifts != 1 || stats.Windows != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if f.Seq() != 15 {
		t.Fatalf("seq = %d, want 15", f.Seq())
	}
}

// TestFleetDetectorSkipsUnevaluableSamples: samples with no prediction or no
// feasible variant advance nothing.
func TestFleetDetectorSkipsUnevaluableSamples(t *testing.T) {
	f := NewFleetDetector(fleetPolicy())
	inf := math.Inf(1)
	for _, s := range []RemoteSample{
		{Times: []float64{1, 2}, Predicted: -1},    // no model installed
		{Times: []float64{inf, inf}, Predicted: 0}, // nothing feasible
	} {
		if v := f.Ingest(s); v.WindowClosed {
			t.Fatalf("unevaluable sample %+v closed a window", s)
		}
	}
	if st := f.Stats(); st.Samples != 0 {
		t.Fatalf("unevaluable samples counted: %+v", st)
	}
}

// TestFleetDetectorRegretOnly: correct-argmin predictions never carry
// mismatch, but an infeasible pick is maximal regret; sustained regret alone
// trips drift.
func TestFleetDetectorRegretOnly(t *testing.T) {
	f := NewFleetDetector(fleetPolicy())
	inf := math.Inf(1)
	// Predicted variant is infeasible: mismatch + regret 1.
	s := RemoteSample{Times: []float64{1, inf}, Predicted: 1}
	drifted := false
	for i := 0; i < 10; i++ {
		if v := f.Ingest(s); v.DriftDetected {
			drifted = true
		}
	}
	if !drifted {
		t.Fatal("infeasible-pick windows did not trip drift")
	}
}

// TestFleetDetectorConcurrentIngest exercises pooled ingestion from many
// goroutines under -race.
func TestFleetDetectorConcurrentIngest(t *testing.T) {
	f := NewFleetDetector(fleetPolicy())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				pred := 0
				if (g+i)%2 == 0 {
					pred = 1
				}
				f.Ingest(RemoteSample{Times: []float64{1, 2}, Predicted: pred})
				f.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := f.Stats(); st.Samples != 800 {
		t.Fatalf("samples = %d, want 800", st.Samples)
	}
}

// TestRemoteSampleBest covers the argmin helper.
func TestRemoteSampleBest(t *testing.T) {
	if b, v := (RemoteSample{Times: []float64{3, 1, 2}}).Best(); b != 1 || v != 1 {
		t.Fatalf("Best = (%d, %v)", b, v)
	}
	if b, _ := (RemoteSample{}).Best(); b != -1 {
		t.Fatalf("empty Best = %d, want -1", b)
	}
}
