// Package online implements Nitro's online adaptation subsystem: the closed
// loop that keeps a deployed variant-selection model honest as the input
// distribution drifts away from the offline training corpus.
//
// An Engine attaches to a live core.CodeVariant as its call observer and
//
//  1. samples deployment calls through a rate limiter into a seeded
//     reservoir,
//  2. spends a configurable epsilon-greedy exploration budget re-timing the
//     non-predicted (constraint-feasible, non-quarantined) variants on
//     sampled inputs to observe the actual best,
//  3. feeds (featureVector, observedBest, predictedBest, timings) into a
//     windowed drift detector (mismatch rate + estimated regret, with
//     thresholds and hysteresis), and
//  4. on sustained drift, launches a background retrainer that seeds the
//     autotuner's pipeline (optionally the BvSB incremental loop) with the
//     drifted samples, validates the candidate against the incumbent on a
//     holdout of the most recent observations, and hot-swaps it through the
//     context's atomic model slot — or rolls back (keeps the incumbent) when
//     the candidate underperforms.
//
// The subsystem is inert by default: a CodeVariant without an attached
// engine pays one atomic load per call, and an engine with ExploreRate 0 is
// observationally identical to plain Call (test-asserted). All randomness —
// the exploration draws and the reservoir eviction — flows from one seeded
// PCG stream, so a serial replay with a fixed seed reproduces the same
// adaptation timeline event for event.
package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"nitro/internal/autotuner"
	"nitro/internal/core"
	"nitro/internal/ensemble"
	"nitro/internal/ml"
)

// Policy configures an adaptation engine. The zero value is invalid;
// construct with DefaultPolicy and override, or set every field explicitly
// (zeros are replaced by the documented defaults, except ExploreRate, whose
// zero genuinely means "never explore").
type Policy struct {
	// SamplePeriod admits 1 of every N calls into the sampling stage
	// (default/minimum 1: every call is a sampling candidate). Synchronous
	// engines rate-limit deterministically — exactly every N-th observed
	// call — for reproducible replays; asynchronous engines admit each call
	// with probability 1/N on a lock-free per-thread generator so the
	// non-sampled hot path writes no shared state.
	SamplePeriod int
	// ExploreRate is the epsilon of the epsilon-greedy exploration budget:
	// the probability that a sampled call is re-timed across its alternative
	// variants. 0 disables exploration (and with it drift detection); the
	// engine is then observationally identical to plain Call.
	ExploreRate float64
	// ReservoirSize caps the labelled-observation reservoir (default 128).
	// When full, a seeded uniformly random slot is evicted, which biases the
	// reservoir toward recent observations (old samples decay
	// exponentially) — exactly what a drift-recovery corpus wants.
	ReservoirSize int
	// Window is the number of explored observations per drift-detector
	// window (default 25).
	Window int
	// MismatchThreshold / RegretThreshold mark a window "bad" when its
	// mismatch rate (observed best != predicted) or mean relative regret
	// reaches them (defaults 0.35 and 0.25).
	MismatchThreshold float64
	RegretThreshold   float64
	// DriftWindows is the hysteresis: consecutive bad windows required to
	// declare sustained drift (default 2).
	DriftWindows int
	// RecoveryWindows is the recovery hysteresis: consecutive good windows
	// after a swap required to declare the episode recovered (default 2).
	RecoveryWindows int
	// CooldownWindows suppresses retrain (re-)triggering for this many
	// windows after a swap, rollback or failed retrain (default 2).
	CooldownWindows int
	// MinRetrainSamples is the minimum number of labelled observations from
	// the drifted period required before a retrain launches (default 20).
	MinRetrainSamples int
	// Retrain configures the background retrainer (classifier, incremental
	// BvSB seeding, holdout fraction, acceptance margin).
	Retrain autotuner.RetrainOptions
	// Seed drives the exploration and reservoir-eviction RNG.
	Seed int64
	// Synchronous runs retrains inline on the observing goroutine instead of
	// in the background — used by the deterministic replay harness and
	// tests; production traffic wants the default (background) behaviour.
	Synchronous bool
	// Bandit, when non-nil, replaces epsilon-greedy uniform re-timing with a
	// LinUCB contextual bandit router: sampled calls that win the epsilon
	// draw are re-timed only when the installed model's calibrated confidence
	// is low (or the drift state is unhealthy), and then on the single
	// alternate the bandit picks for this feature vector rather than all of
	// them. nil keeps the legacy uniform explore path bit-for-bit.
	Bandit *BanditPolicy
	// Bakeoff, when non-nil, replaces the temporal-holdout validate-then-
	// hot-swap with a sequential paired-timing bakeoff: a retrained
	// challenger serves shadow predictions on explored calls and is promoted
	// / rejected by a paired-t stopper (see ensemble.Bakeoff). nil keeps the
	// legacy instant holdout verdict.
	Bakeoff *ensemble.BakeoffConfig
}

// BanditPolicy configures the contextual bandit explore router. Zero-value
// fields take the documented defaults.
type BanditPolicy struct {
	// Alpha is the LinUCB confidence width (default 1.0): larger explores
	// more aggressively.
	Alpha float64
	// Ridge is the l2 prior on each arm's design matrix (default 1.0).
	Ridge float64
	// MinConfidence flags a prediction for exploration when the model's
	// calibrated confidence falls below it (default 0.6). Drift-flagged
	// states (anything but healthy) always explore.
	MinConfidence float64
}

// DefaultPolicy returns a balanced starting configuration: sample every 4th
// call, explore a quarter of the samples, and retrain with the same SVM
// pipeline the offline tuner uses.
func DefaultPolicy(seed int64) Policy {
	return Policy{
		SamplePeriod:      4,
		ExploreRate:       0.25,
		ReservoirSize:     128,
		Window:            25,
		MismatchThreshold: 0.35,
		RegretThreshold:   0.25,
		DriftWindows:      2,
		RecoveryWindows:   2,
		CooldownWindows:   2,
		MinRetrainSamples: 20,
		Seed:              seed,
	}
}

// normalized fills structural zeros with the documented defaults.
func (p Policy) normalized() Policy {
	if p.SamplePeriod < 1 {
		p.SamplePeriod = 1
	}
	if p.ReservoirSize <= 0 {
		p.ReservoirSize = 128
	}
	if p.Window <= 0 {
		p.Window = 25
	}
	if p.MismatchThreshold <= 0 {
		p.MismatchThreshold = 0.35
	}
	if p.RegretThreshold <= 0 {
		p.RegretThreshold = 0.25
	}
	if p.DriftWindows <= 0 {
		p.DriftWindows = 2
	}
	if p.RecoveryWindows <= 0 {
		p.RecoveryWindows = 2
	}
	if p.CooldownWindows < 0 {
		p.CooldownWindows = 0
	} else if p.CooldownWindows == 0 {
		p.CooldownWindows = 2
	}
	if p.MinRetrainSamples <= 0 {
		p.MinRetrainSamples = 20
	}
	if p.Bandit != nil {
		b := *p.Bandit
		if b.Alpha <= 0 {
			b.Alpha = 1
		}
		if b.Ridge <= 0 {
			b.Ridge = 1
		}
		if b.MinConfidence <= 0 {
			b.MinConfidence = 0.6
		}
		p.Bandit = &b
	}
	return p
}

// validate rejects nonsensical policies up front.
func (p Policy) validate() error {
	if p.ExploreRate < 0 || p.ExploreRate > 1 {
		return fmt.Errorf("online: ExploreRate %v must be in [0, 1]", p.ExploreRate)
	}
	if p.SamplePeriod < 0 {
		return fmt.Errorf("online: SamplePeriod %d must be >= 0", p.SamplePeriod)
	}
	if p.MismatchThreshold > 1 {
		return fmt.Errorf("online: MismatchThreshold %v must be <= 1", p.MismatchThreshold)
	}
	return nil
}

// labelled is one explored observation: a live input's feature vector with
// the full observed per-variant timings.
type labelled struct {
	seq      int64
	features []float64
	times    []float64
}

// sampledShards is the number of sampled-call counter shards per engine.
// Sampled calls scatter across shards (same trick as core's call statistics)
// so the bookkeeping never contends on a shared cache line.
const sampledShards = 8

// padCounter is one padded lock-free counter shard; the trailing pad keeps
// neighbouring shards on separate cache lines.
type padCounter struct {
	n atomic.Int64
	_ [56]byte
}

// Engine is a per-function adaptation engine. Attach it to a CodeVariant
// with Attach; it then observes every successful call until Close. All
// exported methods are safe for concurrent use.
type Engine[In any] struct {
	cv    *core.CodeVariant[In]
	cx    *core.Context
	fn    string
	pol   Policy
	tuner *autotuner.Tuner[In]

	paused atomic.Bool
	closed atomic.Bool
	// The engine does not count calls itself: core's sharded call statistics
	// already count every successful dispatch, so the Calls stat is derived
	// from that counter minus the Attach-time baseline (and minus calls that
	// flowed past a paused engine). The per-call hot path therefore writes
	// no shared engine state at all when the call is not sampled.
	baseCalls atomic.Int64
	// syncCalls is the Synchronous-mode rate-limiter phase: serial replays
	// count every observed call so sampling hits exactly every N-th call
	// and the timeline stays reproducible. Concurrent (asynchronous)
	// engines rate-limit probabilistically instead — an admission draw on
	// math/rand/v2's lock-free per-thread generator — so the non-sampled
	// path stays write-free.
	syncCalls atomic.Int64
	// sampled counts admitted calls on padded lock-free shards.
	sampled [sampledShards]padCounter

	retrainCtx    context.Context
	retrainCancel context.CancelFunc
	wg            sync.WaitGroup // in-flight background retrains

	mu         sync.Mutex
	rng        *rand.Rand
	seq        int64 // labelled-observation sequence
	reservoir  []labelled
	det        *detector
	retraining bool
	events     []Event

	// Bandit router state (nil / zero when Policy.Bandit is nil).
	bandit                       *ensemble.Bandit
	banditFlagged, banditSkipped int64
	confSum                      float64
	confCount                    int64

	// Sequential-bakeoff state (nil / zero when no experiment is live).
	bakeoff     *ensemble.Bakeoff
	challenger  *ml.Model
	challengerX [][]float64 // retrain corpus features, for promote-time distill
	bakeoffs, bakeoffPromotes,
	bakeoffRejects, bakeoffTimeouts int64

	// Counters (under mu; snapshot by Stats). pausedCalls accumulates the
	// core call count that flowed past the engine while it was paused;
	// pauseMark is the core count at the moment of the last Pause (valid
	// while paused). Both keep the derived Calls stat frozen across a pause.
	pausedCalls, pauseMark     int64
	closeFrozen                bool  // Close happened; Calls is pinned
	closeCalls                 int64 // derived call count at Close time
	explored, exploreFails     int64
	exploreSeconds             float64
	mismatches                 int64
	retrains, retrainsDeferred int64
	swaps, rollbacks           int64
}

// Attach installs an adaptation engine as cv's call observer. The engine
// starts in StateHealthy and begins sampling immediately; detach with Close.
func Attach[In any](cv *core.CodeVariant[In], pol Policy) (*Engine[In], error) {
	if cv == nil {
		return nil, errors.New("online: nil code variant")
	}
	if cv.NumVariants() < 2 {
		return nil, fmt.Errorf("online: adaptation needs >= 2 variants, have %d", cv.NumVariants())
	}
	if err := pol.validate(); err != nil {
		return nil, err
	}
	pol = pol.normalized()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine[In]{
		cv:            cv,
		cx:            cv.Context(),
		fn:            cv.Policy().Name,
		pol:           pol,
		tuner:         &autotuner.Tuner[In]{CV: cv, Opts: pol.Retrain.TrainOptions},
		retrainCtx:    ctx,
		retrainCancel: cancel,
		rng:           rand.New(rand.NewPCG(uint64(pol.Seed), 0x6f6e6c696e65)), // "online"
		reservoir:     make([]labelled, 0, pol.ReservoirSize),
		det:           newDetector(pol),
	}
	if pol.Bandit != nil {
		e.bandit = ensemble.NewBandit(pol.Bandit.Alpha, pol.Bandit.Ridge)
	}
	e.baseCalls.Store(int64(e.cx.Stats(e.fn).Calls))
	cv.SetCallObserver(e)
	return e, nil
}

// Policy returns the engine's normalized policy.
func (e *Engine[In]) Policy() Policy { return e.pol }

// Pause makes the engine inert: observations pass through untouched (no
// sampling, no exploration, no drift accounting) until Resume. In-flight
// retrains are not interrupted.
func (e *Engine[In]) Pause() {
	if !e.paused.Swap(true) {
		e.mu.Lock()
		e.pauseMark = int64(e.cx.Stats(e.fn).Calls)
		e.emit(Event{Kind: EventPaused})
		e.mu.Unlock()
	}
}

// Resume re-enables a paused engine.
func (e *Engine[In]) Resume() {
	if e.paused.Swap(false) {
		e.mu.Lock()
		e.pausedCalls += int64(e.cx.Stats(e.fn).Calls) - e.pauseMark
		e.emit(Event{Kind: EventResumed})
		e.mu.Unlock()
	}
}

// Close detaches the engine from its CodeVariant, cancels and waits for any
// in-flight background retrain, and makes the engine permanently inert.
func (e *Engine[In]) Close() {
	if e.closed.Swap(true) {
		return
	}
	e.cv.SetCallObserver(nil)
	e.mu.Lock()
	e.closeCalls = e.observedCallsLocked()
	e.closeFrozen = true
	e.mu.Unlock()
	e.retrainCancel()
	e.wg.Wait()
}

// Wait blocks until no background retrain is in flight (tests and graceful
// drains; unlike Close it leaves the engine attached).
func (e *Engine[In]) Wait() { e.wg.Wait() }

// ObserveCall implements core.CallObserver: the sampling / exploration /
// drift pipeline. The non-sampled path writes no shared state at all: two
// atomic flag loads plus one admission draw on math/rand/v2's lock-free
// per-thread generator (call counting is core's job — see the baseCalls
// comment). A sampled-but-not-explored call adds one shard-local atomic
// add — the engine mutex is only taken when exploration actually happens
// (or to draw the epsilon, when ExploreRate > 0). Synchronous engines
// rate-limit on a real counter instead, so serial replays sample exactly
// every N-th call and stay deterministic.
func (e *Engine[In]) ObserveCall(o core.CallObservation[In]) {
	if e.paused.Load() || e.closed.Load() {
		return
	}
	if e.pol.Synchronous {
		c := e.syncCalls.Add(1)
		if (c-1)%int64(e.pol.SamplePeriod) != 0 {
			return
		}
	} else if e.pol.SamplePeriod > 1 && rand.Uint64N(uint64(e.pol.SamplePeriod)) != 0 {
		return
	}
	e.sampled[rand.Uint64N(sampledShards)].n.Add(1)
	if e.pol.ExploreRate <= 0 {
		return
	}

	e.mu.Lock()
	explore := e.rng.Float64() < e.pol.ExploreRate
	e.mu.Unlock()
	if !explore {
		return
	}

	if e.pol.Bandit != nil {
		e.banditExplore(o)
		return
	}

	lab, best, spent, fails := e.exploreInput(o)

	e.mu.Lock()
	e.explored++
	e.exploreFails += fails
	e.exploreSeconds += spent
	job := e.recordExploredLocked(o, lab, best)
	if e.bakeoff != nil {
		e.feedBakeoffLocked(o, lab.times, e.challenger)
	}
	e.mu.Unlock()

	e.runJob(job)
}

// runJob executes a retrain job inline (Synchronous) or in the background.
func (e *Engine[In]) runJob(job func()) {
	if job == nil {
		return
	}
	if e.pol.Synchronous {
		job()
		return
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		job()
	}()
}

// recordExploredLocked admits one labelled observation into the reservoir,
// feeds the drift detector, emits window/drift/recovered events and returns
// the retrain job to run (nil when none); mu must be held.
func (e *Engine[In]) recordExploredLocked(o core.CallObservation[In], lab labelled, best int) func() {
	e.seq++
	lab.seq = e.seq
	e.admitLocked(lab)

	pred := o.Predicted
	if pred < 0 {
		pred = o.ChosenIdx
	}
	mismatch := best != pred
	if mismatch {
		e.mismatches++
	}
	regret := 0.0
	if bt := lab.times[best]; bt > 0 && o.Value > bt {
		regret = (o.Value - bt) / bt
	}
	v := e.det.observe(lab.seq, mismatch, regret)
	var job func()
	if v.WindowClosed {
		e.emit(Event{Kind: EventWindow, MismatchRate: v.MismatchRate, Regret: v.Regret,
			Detail: fmt.Sprintf("bad=%v streak=%d state=%s", v.Bad, e.det.badStreak, e.det.state)})
		if v.DriftDetected {
			e.emit(Event{Kind: EventDrift, MismatchRate: v.MismatchRate, Regret: v.Regret,
				Detail: fmt.Sprintf("sustained over %d windows", e.pol.DriftWindows)})
		}
		if v.Recovered {
			e.emit(Event{Kind: EventRecovered, MismatchRate: v.MismatchRate, Regret: v.Regret,
				Detail: fmt.Sprintf("%d consecutive good windows", e.pol.RecoveryWindows)})
		}
		if v.WantRetrain && !e.retraining && e.bakeoff == nil {
			job = e.startRetrainLocked(v.StreakStart)
		}
	}
	return job
}

// banditExplore is the contextual-bandit explore path: confident-and-healthy
// predictions are trusted (no re-timing at all); low-confidence or
// drift-flagged predictions re-time exactly one alternate — the arm LinUCB
// considers most uncertain-or-promising for this feature vector. When a
// bakeoff is live the challenger's shadow pick is re-timed too, producing the
// paired sample the stopper consumes. Deterministic: no RNG beyond the
// epsilon draw the caller already made.
func (e *Engine[In]) banditExplore(o core.CallObservation[In]) {
	conf := e.cx.ModelConfidence(e.fn, o.Features)

	nv := e.cv.NumVariants()
	var eligible []int
	for j := 0; j < nv; j++ {
		if j != o.ChosenIdx && e.cv.Selectable(j, o.Input) {
			eligible = append(eligible, j)
		}
	}

	e.mu.Lock()
	e.confSum += conf
	e.confCount++
	flagged := conf < e.pol.Bandit.MinConfidence || e.det.state != StateHealthy
	arm := -1
	if flagged {
		e.banditFlagged++
		arm = e.bandit.Select(o.Features, eligible)
	} else {
		e.banditSkipped++
	}
	chal := e.challenger // live bakeoff's challenger, if any
	chalIdx := -1
	if e.bakeoff != nil && chal != nil {
		chalIdx = chal.Predict(o.Features)
	}
	e.mu.Unlock()

	if arm < 0 && chalIdx < 0 {
		return
	}

	times := make([]float64, nv)
	for i := range times {
		times[i] = math.Inf(1)
	}
	times[o.ChosenIdx] = o.Value
	var spent float64
	var fails int64
	retime := func(j int) {
		if j < 0 || j >= nv || j == o.ChosenIdx || !math.IsInf(times[j], 1) {
			return
		}
		if !e.cv.Selectable(j, o.Input) {
			return
		}
		v, err := e.cv.ObserveVariant(j, o.Input)
		if err != nil {
			fails++
			return
		}
		times[j] = v
		spent += v
	}
	retime(arm)
	retime(chalIdx)

	best, bestV := o.ChosenIdx, o.Value
	for j, t := range times {
		if t < bestV {
			best, bestV = j, t
		}
	}
	features := make([]float64, len(o.Features))
	copy(features, o.Features)
	lab := labelled{features: features, times: times}

	e.mu.Lock()
	e.exploreFails += fails
	e.exploreSeconds += spent
	var job func()
	if flagged && arm >= 0 {
		reward := -1.0 // a failed arm is the worst possible pull
		if t := times[arm]; !math.IsInf(t, 1) && o.Value > 0 {
			reward = (o.Value - t) / o.Value
			if reward > 1 {
				reward = 1
			} else if reward < -1 {
				reward = -1
			}
		}
		e.bandit.Update(arm, features, reward)
		e.explored++
		job = e.recordExploredLocked(o, lab, best)
	}
	if chalIdx >= 0 {
		e.feedBakeoffLocked(o, times, chal)
	}
	e.mu.Unlock()

	e.runJob(job)
}

// feedBakeoffLocked folds one paired (incumbent, challenger) timing into the
// live bakeoff and resolves it when the stopper reaches a verdict; mu must be
// held. chal must be the challenger whose pick was re-timed — if the
// experiment changed hands in between (async engines), the sample is dropped
// rather than fed to the wrong experiment.
func (e *Engine[In]) feedBakeoffLocked(o core.CallObservation[In], times []float64, chal *ml.Model) {
	if e.bakeoff == nil || chal == nil || chal != e.challenger {
		return
	}
	tInc := o.Value
	if tInc <= 0 {
		return
	}
	chalIdx := chal.Predict(o.Features)
	var delta float64
	switch {
	case chalIdx == o.ChosenIdx:
		delta = 0 // challenger agrees with the live pick: no paired difference
	case chalIdx < 0 || chalIdx >= len(times):
		return
	case math.IsInf(times[chalIdx], 1):
		delta = -1 // challenger picked a vetoed/failed variant: maximal loss
	default:
		delta = (tInc - times[chalIdx]) / tInc
	}
	if v := e.bakeoff.Observe(delta); v != ensemble.Undecided {
		e.resolveBakeoffLocked(v)
	}
}

// resolveBakeoffLocked applies a bakeoff verdict: promote hot-swaps the
// challenger (after best-effort distillation), reject and timeout keep the
// incumbent with a cooldown; mu must be held.
func (e *Engine[In]) resolveBakeoffLocked(v ensemble.Verdict) {
	b, chal, corpusX := e.bakeoff, e.challenger, e.challengerX
	e.bakeoff, e.challenger, e.challengerX = nil, nil, nil
	incumbent, _ := e.cx.Model(e.fn)
	n, mean, t := b.N(), b.Mean(), b.TStat()
	switch v {
	case ensemble.Promote:
		if chal.Compiled == nil && (e.pol.Retrain.Distill || (incumbent != nil && incumbent.Compiled != nil)) {
			if c, derr := ml.Distill(chal, corpusX, e.pol.Retrain.DistillOpts); derr == nil {
				chal.Compiled = c
			}
		}
		if err := e.cx.SetModel(e.fn, chal); err != nil {
			e.det.onRetrainFailed()
			e.emit(Event{Kind: EventRetrainFailed, Detail: "bakeoff install: " + err.Error()})
			return
		}
		e.swaps++
		e.bakeoffPromotes++
		e.det.onSwap()
		e.emit(Event{Kind: EventBakeoffPromote, Version: chal.Version(),
			Detail: fmt.Sprintf("v%d -> v%d: challenger faster by %.1f%% over %d paired samples (t=%.2f >= %.2f)",
				incumbent.Version(), chal.Version(), 100*mean, n, t, b.Config().Z)})
	case ensemble.Reject:
		e.rollbacks++
		e.bakeoffRejects++
		e.det.onRollback()
		e.emit(Event{Kind: EventBakeoffReject, Version: incumbent.Version(),
			Detail: fmt.Sprintf("challenger v%d slower by %.1f%% over %d paired samples (t=%.2f <= -%.2f); incumbent v%d kept",
				chal.Version(), -100*mean, n, t, b.Config().Z, incumbent.Version())})
	case ensemble.Timeout:
		e.bakeoffTimeouts++
		e.det.onRollback()
		e.emit(Event{Kind: EventBakeoffTimeout, Version: incumbent.Version(),
			Detail: fmt.Sprintf("no verdict after %d paired samples (mean=%+.1f%% t=%.2f); incumbent v%d kept",
				n, 100*mean, t, incumbent.Version())})
	}
}

// exploreInput re-times every selectable non-chosen variant on the sampled
// input, producing the full observed timing vector (vetoed / quarantined /
// failed variants score +Inf) and the observed-best index. The chosen
// variant's timing was already paid for by the live call.
func (e *Engine[In]) exploreInput(o core.CallObservation[In]) (labelled, int, float64, int64) {
	nv := e.cv.NumVariants()
	times := make([]float64, nv)
	for i := range times {
		times[i] = math.Inf(1)
	}
	times[o.ChosenIdx] = o.Value
	var spent float64
	var fails int64
	for j := 0; j < nv; j++ {
		if j == o.ChosenIdx || !e.cv.Selectable(j, o.Input) {
			continue
		}
		v, err := e.cv.ObserveVariant(j, o.Input)
		if err != nil {
			fails++
			continue
		}
		times[j] = v
		spent += v
	}
	best, bestV := o.ChosenIdx, o.Value
	for j, t := range times {
		if t < bestV {
			best, bestV = j, t
		}
	}
	features := make([]float64, len(o.Features))
	copy(features, o.Features)
	return labelled{features: features, times: times}, best, spent, fails
}

// admitLocked inserts one labelled observation into the reservoir, evicting
// a seeded-random slot when full (recency-biased: old samples decay
// exponentially as new ones arrive).
func (e *Engine[In]) admitLocked(lab labelled) {
	if len(e.reservoir) < cap(e.reservoir) {
		e.reservoir = append(e.reservoir, lab)
		return
	}
	e.reservoir[e.rng.IntN(len(e.reservoir))] = lab
}

// startRetrainLocked snapshots the drifted samples and returns the retrain
// job to run (nil when too few samples are available — the engine defers and
// retries on the next closed window).
func (e *Engine[In]) startRetrainLocked(streakStart int64) func() {
	var obs []autotuner.Observation
	for _, lab := range e.reservoir {
		if lab.seq >= streakStart {
			obs = append(obs, autotuner.Observation{Seq: lab.seq, Features: lab.features, Times: lab.times})
		}
	}
	if len(obs) < e.pol.MinRetrainSamples {
		e.retrainsDeferred++
		e.emit(Event{Kind: EventDeferred,
			Detail: fmt.Sprintf("%d drifted samples < %d required", len(obs), e.pol.MinRetrainSamples)})
		return nil
	}
	e.retraining = true
	e.retrains++
	e.det.onRetrainStart()
	e.emit(Event{Kind: EventRetrain, Detail: fmt.Sprintf("%d drifted samples", len(obs))})
	return func() { e.runRetrain(obs) }
}

// runRetrain executes one retrain → validate → swap/rollback cycle. Runs
// without holding mu (training is expensive); it re-locks to apply the
// verdict.
func (e *Engine[In]) runRetrain(obs []autotuner.Observation) {
	incumbent, _ := e.cx.Model(e.fn)
	res, err := e.tuner.RetrainFromObservations(e.retrainCtx, obs, incumbent, e.pol.Retrain)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.retraining = false
	if err != nil {
		e.det.onRetrainFailed()
		e.emit(Event{Kind: EventRetrainFailed, Detail: err.Error()})
		return
	}
	if e.pol.Bakeoff != nil {
		// Sequential bakeoff: the temporal-holdout verdict is advisory only —
		// the challenger must prove itself on paired live timings before the
		// stopper promotes it. The experiment's state machine parks in
		// StateBakeoff until resolveBakeoffLocked applies the verdict.
		e.bakeoff = ensemble.NewBakeoff(*e.pol.Bakeoff)
		e.challenger = res.Model
		rawX := make([][]float64, 0, len(obs))
		for _, o := range obs {
			rawX = append(rawX, o.Features)
		}
		e.challengerX = rawX
		e.bakeoffs++
		e.det.onBakeoffStart()
		cfg := e.bakeoff.Config()
		e.emit(Event{Kind: EventBakeoffStart, Version: res.Model.Version(),
			Detail: fmt.Sprintf("challenger v%d vs incumbent v%d on paired live timings (holdout perf %.3f vs %.3f advisory; stop at |t|>=%.1f, n in [%d, %d])",
				res.Model.Version(), incumbent.Version(), res.CandidatePerf, res.IncumbentPerf, cfg.Z, cfg.MinSamples, cfg.MaxSamples)})
		return
	}
	if !res.Accepted {
		e.rollbacks++
		e.det.onRollback()
		e.emit(Event{Kind: EventRollback, Version: incumbent.Version(),
			Detail: fmt.Sprintf("candidate holdout perf %.3f < incumbent %.3f (+%.3f required); incumbent v%d kept",
				res.CandidatePerf, res.IncumbentPerf, e.pol.Retrain.MinImprovement, incumbent.Version())})
		return
	}
	// Re-distill before installing: a validated candidate must not silently
	// lose the compiled fast path the incumbent was serving with. Covers
	// engines whose retrain options never opted into distillation but whose
	// offline model shipped an artifact. Best-effort — a rejected artifact
	// hot-swaps the exact model alone.
	distilled := ""
	if res.Model.Compiled == nil && (e.pol.Retrain.Distill || (incumbent != nil && incumbent.Compiled != nil)) {
		rawX := make([][]float64, 0, len(obs))
		for _, o := range obs {
			rawX = append(rawX, o.Features)
		}
		if c, derr := ml.Distill(res.Model, rawX, e.pol.Retrain.DistillOpts); derr == nil {
			res.Model.Compiled = c
			distilled = "; distilled"
		}
	}
	if err := e.cx.SetModel(e.fn, res.Model); err != nil {
		e.det.onRetrainFailed()
		e.emit(Event{Kind: EventRetrainFailed, Detail: "install: " + err.Error()})
		return
	}
	e.swaps++
	e.det.onSwap()
	e.emit(Event{Kind: EventSwap, Version: res.Model.Version(),
		Detail: fmt.Sprintf("v%d -> v%d: holdout perf %.3f vs %.3f, mismatch %.0f%% vs %.0f%% (trained on %d)%s",
			incumbent.Version(), res.Model.Version(), res.CandidatePerf, res.IncumbentPerf,
			100*res.CandidateMismatch, 100*res.IncumbentMismatch, res.TrainSize, distilled)})
}

// observedCallsLocked derives the number of calls the engine has observed
// from core's call statistics: the current count minus the Attach-time
// baseline and minus everything that flowed past a pause; after Close the
// count is pinned at its detach-time value (mu must be held).
func (e *Engine[In]) observedCallsLocked() int64 {
	if e.closeFrozen {
		return e.closeCalls
	}
	cur := int64(e.cx.Stats(e.fn).Calls)
	n := cur - e.baseCalls.Load() - e.pausedCalls
	if e.paused.Load() {
		n -= cur - e.pauseMark
	}
	if n < 0 {
		n = 0
	}
	return n
}

// totalSampled sums the sampled-call count across the counter shards.
func (e *Engine[In]) totalSampled() int64 {
	var n int64
	for i := range e.sampled {
		n += e.sampled[i].n.Load()
	}
	return n
}

// Stats snapshots the engine's counters.
func (e *Engine[In]) Stats() core.AdaptStats {
	m, _ := e.cx.Model(e.fn)
	e.mu.Lock()
	defer e.mu.Unlock()
	st := core.AdaptStats{
		Calls:            e.observedCallsLocked(),
		Sampled:          e.totalSampled(),
		Explored:         e.explored,
		ExploreFailures:  e.exploreFails,
		ExploreSeconds:   e.exploreSeconds,
		Mismatches:       e.mismatches,
		Windows:          e.det.windows,
		LastMismatchRate: e.det.lastMismatch,
		LastRegret:       e.det.lastRegret,
		Drifts:           e.det.drifts,
		Retrains:         e.retrains,
		RetrainsDeferred: e.retrainsDeferred,
		Swaps:            e.swaps,
		Rollbacks:        e.rollbacks,
		ModelVersion:     m.Version(),
		State:            e.det.state.String(),
		Paused:           e.paused.Load(),
		BanditFlagged:    e.banditFlagged,
		BanditSkipped:    e.banditSkipped,
		Bakeoffs:         e.bakeoffs,
		BakeoffPromotes:  e.bakeoffPromotes,
		BakeoffRejects:   e.bakeoffRejects,
		BakeoffTimeouts:  e.bakeoffTimeouts,
	}
	if e.bandit != nil {
		st.BanditPulls = int64(e.bandit.Pulls())
	}
	if e.confCount > 0 {
		st.MeanConfidence = e.confSum / float64(e.confCount)
	}
	if e.bakeoff != nil {
		st.BakeoffSamples = int64(e.bakeoff.N())
		st.BakeoffMean = e.bakeoff.Mean()
	}
	if e.retraining {
		st.State = StateRetraining.String()
	}
	return st
}

// State returns the drift state machine's current state.
func (e *Engine[In]) State() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.retraining {
		return StateRetraining
	}
	return e.det.state
}

// Events returns a copy of the adaptation timeline so far.
func (e *Engine[In]) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// emit appends one event (mu must be held).
func (e *Engine[In]) emit(ev Event) {
	ev.Seq = len(e.events)
	ev.Call = e.observedCallsLocked()
	e.events = append(e.events, ev)
}
