// Drift detection: a windowed mismatch-rate / regret detector with
// thresholds and hysteresis, driving the sampling → drift → retrain →
// swap/rollback state machine of the adaptation engine.
//
// The detector is deliberately a pure, lock-free state machine over explored
// observations — the Engine serializes access and executes the side effects
// (retraining, hot-swap) the verdicts ask for — so its transitions can be
// unit-tested without a CodeVariant or a classifier.
package online

import "fmt"

// State is the adaptation engine's drift state.
type State int32

const (
	// StateHealthy: the installed model matches the observed input
	// distribution (mismatch/regret below thresholds).
	StateHealthy State = iota
	// StateDrifting: sustained drift detected (hysteresis satisfied); the
	// engine is accumulating labelled samples toward a retrain.
	StateDrifting
	// StateRetraining: a background retrain is in flight.
	StateRetraining
	// StateBakeoff: a trained challenger is running a sequential paired-
	// timing bakeoff against the incumbent.
	StateBakeoff
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDrifting:
		return "drifting"
	case StateRetraining:
		return "retraining"
	case StateBakeoff:
		return "bakeoff"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Verdict is what the detector tells the engine after one explored
// observation.
type Verdict struct {
	// WindowClosed reports that this observation completed a window;
	// MismatchRate / Regret / Bad describe it.
	WindowClosed bool
	MismatchRate float64
	Regret       float64
	Bad          bool
	// DriftDetected fires once per sustained-drift episode, when the bad
	// streak reaches the hysteresis.
	DriftDetected bool
	// Recovered fires once after a swap, when the good streak reaches the
	// recovery hysteresis — the post-swap mismatch rate has stayed below the
	// thresholds long enough to call the episode closed.
	Recovered bool
	// WantRetrain asks the engine to start a retrain now (state is Drifting,
	// no cooldown pending). The engine still gates on sample availability
	// and on whether a retrain is already in flight.
	WantRetrain bool
	// StreakStart is the labelled-observation sequence number at which the
	// current bad streak began — the retrain corpus is every reservoir
	// sample at or after it.
	StreakStart int64
}

// detector accumulates explored observations into tumbling windows and runs
// the drift state machine. Not safe for concurrent use; the Engine guards it.
type detector struct {
	// Configuration (copied from the normalized Policy).
	window            int
	mismatchThreshold float64
	regretThreshold   float64
	driftWindows      int
	recoveryWindows   int
	cooldownWindows   int

	state State

	// Current window accumulation.
	n          int
	mismatches int
	regretSum  float64
	winStart   int64 // labelled seq of the window's first observation

	// Streak / hysteresis bookkeeping.
	badStreak   int
	goodStreak  int
	cooldown    int   // windows left before drift may (re-)trigger a retrain
	streakStart int64 // labelled seq where the current bad streak began

	recoveredPending bool

	// Rolling outputs.
	lastMismatch float64
	lastRegret   float64
	windows      int64
	drifts       int64
}

func newDetector(p Policy) *detector {
	return &detector{
		window:            p.Window,
		mismatchThreshold: p.MismatchThreshold,
		regretThreshold:   p.RegretThreshold,
		driftWindows:      p.DriftWindows,
		recoveryWindows:   p.RecoveryWindows,
		cooldownWindows:   p.CooldownWindows,
		state:             StateHealthy,
	}
}

// observe feeds one explored observation (its labelled sequence number,
// whether the predicted variant missed the observed best, and the relative
// regret of the executed variant) into the current window.
func (d *detector) observe(seq int64, mismatch bool, regret float64) Verdict {
	if d.n == 0 {
		d.winStart = seq
	}
	d.n++
	if mismatch {
		d.mismatches++
	}
	d.regretSum += regret
	if d.n < d.window {
		return Verdict{}
	}
	return d.closeWindow()
}

// closeWindow tumbles the window and advances the state machine.
func (d *detector) closeWindow() Verdict {
	v := Verdict{WindowClosed: true}
	v.MismatchRate = float64(d.mismatches) / float64(d.n)
	v.Regret = d.regretSum / float64(d.n)
	v.Bad = v.MismatchRate >= d.mismatchThreshold || v.Regret >= d.regretThreshold
	d.lastMismatch, d.lastRegret = v.MismatchRate, v.Regret
	d.windows++

	if v.Bad {
		if d.badStreak == 0 {
			d.streakStart = d.winStart
		}
		d.badStreak++
		d.goodStreak = 0
	} else {
		d.goodStreak++
		d.badStreak = 0
		if d.recoveredPending && d.goodStreak >= d.recoveryWindows {
			d.recoveredPending = false
			v.Recovered = true
		}
		if d.state == StateDrifting && d.goodStreak >= d.recoveryWindows {
			// False alarm (or the drift reverted on its own): stand down
			// without spending a retrain.
			d.state = StateHealthy
		}
	}
	if d.cooldown > 0 {
		d.cooldown--
	}

	if d.state == StateHealthy && d.cooldown == 0 && d.badStreak >= d.driftWindows {
		d.state = StateDrifting
		d.drifts++
		v.DriftDetected = true
	}
	if d.state == StateDrifting && d.cooldown == 0 {
		v.WantRetrain = true
		v.StreakStart = d.streakStart
	}

	// Reset the window accumulation.
	d.n, d.mismatches, d.regretSum = 0, 0, 0
	return v
}

// onRetrainStart marks a retrain in flight.
func (d *detector) onRetrainStart() { d.state = StateRetraining }

// onBakeoffStart marks a sequential bakeoff in flight: the state machine
// parks (no drift declarations, no retrain requests) until the experiment
// resolves through onSwap (promote) or onRollback (reject / timeout).
func (d *detector) onBakeoffStart() { d.state = StateBakeoff }

// onSwap records an accepted candidate hot-swap: the episode closes, a
// cooldown suppresses immediate re-triggering, and the detector watches for
// the recovery hysteresis. The partially filled window is discarded so
// post-swap measurements are not polluted by pre-swap observations.
func (d *detector) onSwap() {
	d.state = StateHealthy
	d.badStreak, d.goodStreak = 0, 0
	d.cooldown = d.cooldownWindows
	d.recoveredPending = true
	d.n, d.mismatches, d.regretSum = 0, 0, 0
}

// onRollback records a rejected candidate: drift persists, so the detector
// stays in StateDrifting but backs off for the cooldown before asking for
// another retrain (by then more labelled samples have accumulated).
func (d *detector) onRollback() {
	d.state = StateDrifting
	d.cooldown = d.cooldownWindows
}

// onRetrainFailed records a retrain that errored out; treated like a
// rollback (drift persists, back off before retrying).
func (d *detector) onRetrainFailed() { d.onRollback() }
