package online

import (
	"reflect"
	"regexp"
	"strconv"
	"testing"

	"nitro/internal/autotuner"
	"nitro/internal/core"
	"nitro/internal/ensemble"
)

// banditPolicy returns the shared test policy with the LinUCB router enabled
// and a MinConfidence above 1, so every explored call is flagged (no model
// produces calibrated confidence > 1) and the bandit path is exercised on
// every epsilon win.
func banditPolicy(seed int64) Policy {
	pol := testPolicy(seed)
	pol.Bandit = &BanditPolicy{Alpha: 1, Ridge: 1, MinConfidence: 1.1}
	return pol
}

// TestBanditOffIdentity pins the bandit-off contract: a Policy with Bandit
// nil must never touch the bandit machinery — zero flagged/skipped/pull
// counters and no confidence accounting — while the legacy drift→retrain→swap
// timeline runs unchanged (TestDriftRetrainSwap asserts the timeline itself).
func TestBanditOffIdentity(t *testing.T) {
	eng := driveDriftScenario(t, 42)
	defer eng.Close()
	st := eng.Stats()
	if st.BanditFlagged != 0 || st.BanditSkipped != 0 || st.BanditPulls != 0 {
		t.Errorf("bandit counters moved with Bandit nil: %+v", st)
	}
	if st.MeanConfidence != 0 {
		t.Errorf("MeanConfidence = %v with Bandit nil, want 0", st.MeanConfidence)
	}
	if st.Swaps != 1 {
		t.Errorf("legacy path swaps = %d, want 1", st.Swaps)
	}
}

// TestBanditSkipsConfidentHealthy: with a tiny MinConfidence and a healthy
// input stream, every flagged-check passes (the model is confident and the
// detector healthy), so the router trusts the prediction and re-times
// nothing — the exploration budget costs zero on a well-modelled workload.
func TestBanditSkipsConfidentHealthy(t *testing.T) {
	_, cv, _ := fixture(t)
	pol := testPolicy(42)
	pol.Bandit = &BanditPolicy{MinConfidence: 0.01}
	eng, err := Attach(cv, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	serve(t, cv, genInstances(60, 21))

	st := eng.Stats()
	if st.BanditSkipped == 0 {
		t.Fatal("no explorations were skipped on a healthy confident stream")
	}
	if st.BanditFlagged != 0 || st.BanditPulls != 0 {
		t.Errorf("confident stream still flagged: flagged=%d pulls=%d", st.BanditFlagged, st.BanditPulls)
	}
	if st.Explored != 0 || st.Windows != 0 {
		t.Errorf("trusted predictions were re-timed: explored=%d windows=%d", st.Explored, st.Windows)
	}
	if st.MeanConfidence <= 0 || st.MeanConfidence > 1 {
		t.Errorf("MeanConfidence = %v, want in (0, 1]", st.MeanConfidence)
	}
}

// TestBanditDriftAdaptation runs the full closed loop with the bandit router
// in place of uniform re-timing: drift is still detected from single-arm
// observations, a retrain still launches and the candidate still swaps in —
// with every exploration paying one alternate timing instead of all of them.
func TestBanditDriftAdaptation(t *testing.T) {
	_, cv, _ := fixture(t)
	eng, err := Attach(cv, banditPolicy(42))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	serve(t, cv, genInstances(30, 21))
	serve(t, cv, rotated(genInstances(120, 23)))

	st := eng.Stats()
	if st.BanditFlagged == 0 || st.BanditPulls == 0 {
		t.Fatalf("bandit never pulled: %+v", st)
	}
	if st.Drifts == 0 {
		t.Errorf("drift not detected through bandit-directed exploration: %+v", st)
	}
	if st.Retrains == 0 {
		t.Errorf("no retrain launched: %+v", st)
	}
	if st.Swaps == 0 {
		t.Errorf("no swap installed: %+v", st)
	}
	if st.MeanConfidence <= 0 || st.MeanConfidence > 1 {
		t.Errorf("MeanConfidence = %v, want in (0, 1]", st.MeanConfidence)
	}
}

// TestBanditReplayDeterminism: the bandit router must preserve the replay
// contract — two engines with the same seed and input stream produce
// byte-identical event timelines (LinUCB is deterministic; the only RNG is
// the shared seeded epsilon draw).
func TestBanditReplayDeterminism(t *testing.T) {
	run := func() []string {
		_, cv, _ := fixture(t)
		eng, err := Attach(cv, banditPolicy(42))
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		serve(t, cv, genInstances(30, 21))
		serve(t, cv, rotated(genInstances(120, 23)))
		evs := eng.Events()
		out := make([]string, len(evs))
		for i, ev := range evs {
			out[i] = ev.String()
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("bandit timelines diverged:\nrun A: %v\nrun B: %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty timeline")
	}
}

var pairedSamplesRe = regexp.MustCompile(`over (\d+) paired samples`)

// promoteSamples extracts the paired-sample count from a bakeoff verdict
// event's detail.
func promoteSamples(t *testing.T, ev Event) int {
	t.Helper()
	m := pairedSamplesRe.FindStringSubmatch(ev.Detail)
	if m == nil {
		t.Fatalf("no paired-sample count in %q", ev.Detail)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestBakeoffPromotesBetterChallenger is the promotion e2e: under drift the
// retrained challenger is genuinely better, so the sequential stopper
// promotes it — and does so in measurably fewer live samples than the fixed
// MaxSamples budget a non-sequential (holdout-sized) experiment would burn.
func TestBakeoffPromotesBetterChallenger(t *testing.T) {
	cfg := ensemble.BakeoffConfig{MinSamples: 6, MaxSamples: 120, Z: 2, MinEffect: 0.005}
	_, cv, _ := fixture(t)
	pol := testPolicy(42)
	pol.Bakeoff = &cfg
	eng, err := Attach(cv, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	serve(t, cv, genInstances(30, 21))
	serve(t, cv, rotated(genInstances(120, 23)))

	st := eng.Stats()
	if st.Bakeoffs != 1 || st.BakeoffPromotes != 1 {
		t.Fatalf("bakeoffs=%d promotes=%d, want 1/1 (stats %+v)", st.Bakeoffs, st.BakeoffPromotes, st)
	}
	if st.Swaps != 1 || st.Rollbacks != 0 {
		t.Errorf("swaps=%d rollbacks=%d, want 1/0", st.Swaps, st.Rollbacks)
	}
	if st.ModelVersion != 2 {
		t.Errorf("model version = %d, want promoted v2", st.ModelVersion)
	}
	if st.State != "healthy" {
		t.Errorf("final state = %q, want healthy", st.State)
	}

	var start, promote *Event
	for i, ev := range eng.Events() {
		switch ev.Kind {
		case EventBakeoffStart:
			start = &eng.Events()[i]
		case EventBakeoffPromote:
			promote = &eng.Events()[i]
		case EventSwap:
			t.Errorf("instant holdout swap fired alongside a bakeoff: %v", ev)
		}
	}
	if start == nil || promote == nil {
		t.Fatalf("timeline lacks bakeoff-start/bakeoff-promote: %v", eng.Events())
	}
	if start.Seq >= promote.Seq {
		t.Errorf("bakeoff-start (seq %d) not before promote (seq %d)", start.Seq, promote.Seq)
	}
	// Sample efficiency: the sequential stopper must beat the fixed budget a
	// temporal-holdout-sized live experiment would spend on the same verdict.
	if n := promoteSamples(t, *promote); n >= cfg.MaxSamples/2 {
		t.Errorf("promotion took %d paired samples; want early stop well under the %d budget", n, cfg.MaxSamples)
	}
}

// TestBakeoffRejectsWorseChallenger is the rejection e2e: drift triggers a
// retrain whose challenger is fitted to the drifted distribution, then the
// workload reverts to the healthy distribution mid-bakeoff — the incumbent
// is now genuinely faster on live pairs, so the stopper rejects the
// challenger and the incumbent stays installed, untouched.
func TestBakeoffRejectsWorseChallenger(t *testing.T) {
	cx, cv, s := fixture(t)
	pol := testPolicy(42)
	pol.Bakeoff = &ensemble.BakeoffConfig{MinSamples: 30, MaxSamples: 400, Z: 2, MinEffect: 0.005}
	eng, err := Attach(cv, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	serve(t, cv, genInstances(30, 21))
	serve(t, cv, rotated(genInstances(60, 23))) // retrain fires, bakeoff starts
	serve(t, cv, genInstances(150, 25))         // drift reverts: incumbent wins the pairs

	st := eng.Stats()
	if st.Bakeoffs != 1 || st.BakeoffRejects != 1 {
		t.Fatalf("bakeoffs=%d rejects=%d, want 1/1 (stats %+v)", st.Bakeoffs, st.BakeoffRejects, st)
	}
	if st.Swaps != 0 {
		t.Errorf("swaps = %d, want 0", st.Swaps)
	}
	if st.ModelVersion != 1 {
		t.Errorf("model version = %d, want incumbent v1 kept", st.ModelVersion)
	}
	m, _ := cx.Model(s.Name)
	if m.Version() != 1 {
		t.Errorf("installed model version = %d, want 1", m.Version())
	}
	var rejected bool
	for _, ev := range eng.Events() {
		if ev.Kind == EventBakeoffReject {
			rejected = true
		}
		if ev.Kind == EventBakeoffPromote || ev.Kind == EventSwap {
			t.Errorf("worse challenger was installed: %v", ev)
		}
	}
	if !rejected {
		t.Fatal("timeline lacks bakeoff-reject")
	}
}

// TestBakeoffTimeoutKeepsIncumbent: an unreachable stopping bound exhausts
// the sample budget undecided; the incumbent stays (absence of evidence is
// not a promotion) and the detector backs off like a rollback.
func TestBakeoffTimeoutKeepsIncumbent(t *testing.T) {
	_, cv, _ := fixture(t)
	pol := testPolicy(42)
	pol.Bakeoff = &ensemble.BakeoffConfig{MinSamples: 5, MaxSamples: 10, Z: 1e9, MinEffect: 0.99}
	eng, err := Attach(cv, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	serve(t, cv, genInstances(30, 21))
	serve(t, cv, rotated(genInstances(120, 23)))

	st := eng.Stats()
	if st.Bakeoffs == 0 || st.BakeoffTimeouts == 0 {
		t.Fatalf("bakeoffs=%d timeouts=%d, want both > 0 (stats %+v)", st.Bakeoffs, st.BakeoffTimeouts, st)
	}
	if st.BakeoffPromotes != 0 || st.Swaps != 0 {
		t.Errorf("undecided bakeoff promoted: %+v", st)
	}
	if st.ModelVersion != 1 {
		t.Errorf("model version = %d, want incumbent v1", st.ModelVersion)
	}
}

// TestBanditWithBakeoffEndToEnd composes the whole tentpole: bandit-directed
// exploration detects the drift, the retrained challenger enters a
// sequential bakeoff fed by paired single-arm timings, and the stopper
// promotes it — deterministically across two identical runs.
func TestBanditWithBakeoffEndToEnd(t *testing.T) {
	run := func() ([]string, autotuner.Instance, core.AdaptStats) {
		_, cv, _ := fixture(t)
		pol := banditPolicy(42)
		pol.Bakeoff = &ensemble.BakeoffConfig{MinSamples: 6, MaxSamples: 200, Z: 2, MinEffect: 0.005}
		eng, err := Attach(cv, pol)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		serve(t, cv, genInstances(30, 21))
		drifted := rotated(genInstances(200, 23))
		serve(t, cv, drifted)
		evs := eng.Events()
		out := make([]string, len(evs))
		for i, ev := range evs {
			out[i] = ev.String()
		}
		return out, drifted[0], eng.Stats()
	}
	a, _, st := run()
	b, _, _ := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("composed timelines diverged:\nrun A: %v\nrun B: %v", a, b)
	}
	if st.BakeoffPromotes != 1 {
		t.Fatalf("bakeoff promotes = %d, want 1 (stats %+v, timeline %v)", st.BakeoffPromotes, st, a)
	}
	if st.ModelVersion != 2 || st.State != "healthy" {
		t.Errorf("version=%d state=%q, want v2/healthy", st.ModelVersion, st.State)
	}
	if st.BanditPulls == 0 {
		t.Errorf("bakeoff promoted without bandit exploration: %+v", st)
	}
}
