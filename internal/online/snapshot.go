package online

// Detector state snapshot/restore: the registry daemon journals fleet
// detector state across restarts, so a crash does not reset windows,
// streaks or cooldowns that took the whole fleet's traffic to accumulate.
// The snapshot is a plain JSON value — the journal owns framing and
// integrity checking.

// FleetSnapshot is the serializable state of a FleetDetector: the pooled
// counters plus the drift state machine's window accumulation, streak
// bookkeeping and rolling outputs. Configuration (window sizes,
// thresholds) is NOT part of the snapshot — it is re-derived from the
// daemon's policy on restore, so a config change between restarts wins.
type FleetSnapshot struct {
	Seq        int64 `json:"seq"`
	Samples    int64 `json:"samples"`
	Mismatches int64 `json:"mismatches"`

	State       State   `json:"state"`
	WindowN     int     `json:"window_n"`
	WindowMiss  int     `json:"window_mismatches"`
	RegretSum   float64 `json:"regret_sum"`
	WinStart    int64   `json:"win_start"`
	BadStreak   int     `json:"bad_streak"`
	GoodStreak  int     `json:"good_streak"`
	Cooldown    int     `json:"cooldown"`
	StreakStart int64   `json:"streak_start"`
	Recovered   bool    `json:"recovered_pending"`

	LastMismatch float64 `json:"last_mismatch"`
	LastRegret   float64 `json:"last_regret"`
	Windows      int64   `json:"windows"`
	Drifts       int64   `json:"drifts"`
}

// Snapshot captures the detector's full mutable state.
func (f *FleetDetector) Snapshot() FleetSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := f.det
	return FleetSnapshot{
		Seq:          f.seq,
		Samples:      f.samples,
		Mismatches:   f.mismatches,
		State:        d.state,
		WindowN:      d.n,
		WindowMiss:   d.mismatches,
		RegretSum:    d.regretSum,
		WinStart:     d.winStart,
		BadStreak:    d.badStreak,
		GoodStreak:   d.goodStreak,
		Cooldown:     d.cooldown,
		StreakStart:  d.streakStart,
		Recovered:    d.recoveredPending,
		LastMismatch: d.lastMismatch,
		LastRegret:   d.lastRegret,
		Windows:      d.windows,
		Drifts:       d.drifts,
	}
}

// Restore overwrites the detector's mutable state from a snapshot taken by
// Snapshot. Out-of-range state values fall back to StateHealthy rather
// than poisoning the machine with an unknown state.
func (f *FleetDetector) Restore(s FleetSnapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq = s.Seq
	f.samples = s.Samples
	f.mismatches = s.Mismatches
	d := f.det
	d.state = s.State
	if d.state < StateHealthy || d.state > StateBakeoff {
		d.state = StateHealthy
	}
	d.n = s.WindowN
	d.mismatches = s.WindowMiss
	d.regretSum = s.RegretSum
	d.winStart = s.WinStart
	d.badStreak = s.BadStreak
	d.goodStreak = s.GoodStreak
	d.cooldown = s.Cooldown
	d.streakStart = s.StreakStart
	d.recoveredPending = s.Recovered
	d.lastMismatch = s.LastMismatch
	d.lastRegret = s.LastRegret
	d.windows = s.Windows
	d.drifts = s.Drifts
}
