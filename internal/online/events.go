// Event timeline: every state transition the adaptation engine makes is
// recorded as an Event, so tests and the replay harness can assert the exact
// sequence (and the CLI can print it) — determinism is a feature, not a
// debugging aid.
package online

import "fmt"

// EventKind labels one adaptation timeline entry.
type EventKind string

const (
	// EventWindow: a drift-detector window closed (rates in the event).
	EventWindow EventKind = "window"
	// EventDrift: sustained drift declared (hysteresis satisfied).
	EventDrift EventKind = "drift"
	// EventRecovered: post-swap mismatch stayed healthy long enough.
	EventRecovered EventKind = "recovered"
	// EventDeferred: a retrain was wanted but too few drifted samples exist.
	EventDeferred EventKind = "retrain-deferred"
	// EventRetrain: a retrain launched.
	EventRetrain EventKind = "retrain"
	// EventRetrainFailed: the retrain errored (or the install did).
	EventRetrainFailed EventKind = "retrain-failed"
	// EventRollback: the candidate lost the holdout; incumbent kept.
	EventRollback EventKind = "rollback"
	// EventSwap: the candidate won and was hot-swapped in.
	EventSwap EventKind = "swap"
	// EventPaused / EventResumed: operator toggles.
	EventPaused  EventKind = "paused"
	EventResumed EventKind = "resumed"
	// EventBakeoffStart: a trained challenger entered a sequential paired-
	// timing bakeoff against the incumbent (the holdout verdict is advisory).
	EventBakeoffStart EventKind = "bakeoff-start"
	// EventBakeoffPromote: the stopper found the challenger statistically
	// faster; it was hot-swapped in.
	EventBakeoffPromote EventKind = "bakeoff-promote"
	// EventBakeoffReject: the stopper found the challenger statistically
	// slower; the incumbent stays.
	EventBakeoffReject EventKind = "bakeoff-reject"
	// EventBakeoffTimeout: the sample budget elapsed without significance;
	// the incumbent stays.
	EventBakeoffTimeout EventKind = "bakeoff-timeout"
)

// Event is one adaptation timeline entry.
type Event struct {
	// Seq is the event's position in the timeline (0-based).
	Seq int
	// Call is the engine's observed-call count when the event fired.
	Call int64
	// Kind classifies the event.
	Kind EventKind
	// MismatchRate / Regret carry the closing window's rates for window,
	// drift and recovered events (0 otherwise).
	MismatchRate float64
	Regret       float64
	// Version is the model version a swap installed (or a rollback kept).
	Version int
	// Detail is a deterministic human-readable elaboration.
	Detail string
}

// String renders the event as one deterministic timeline line, e.g.
//
//	[call 000412] drift: mismatch=48.0% regret=0.312 (sustained over 2 windows)
func (ev Event) String() string {
	s := fmt.Sprintf("[call %06d] %s", ev.Call, ev.Kind)
	switch ev.Kind {
	case EventWindow, EventDrift, EventRecovered:
		s += fmt.Sprintf(": mismatch=%.1f%% regret=%.3f", 100*ev.MismatchRate, ev.Regret)
	}
	if ev.Detail != "" {
		s += " (" + ev.Detail + ")"
	}
	return s
}
