package online

import "testing"

// detPolicy is a small, fast detector configuration for unit tests.
func detPolicy() Policy {
	return Policy{
		Window:            4,
		MismatchThreshold: 0.5,
		RegretThreshold:   0.5,
		DriftWindows:      2,
		RecoveryWindows:   2,
		CooldownWindows:   2,
	}.normalized()
}

// feed pushes n observations with the given mismatch flag and regret,
// returning the verdicts of the windows that closed.
func feed(d *detector, seq *int64, n int, mismatch bool, regret float64) []Verdict {
	var closed []Verdict
	for i := 0; i < n; i++ {
		*seq++
		if v := d.observe(*seq, mismatch, regret); v.WindowClosed {
			closed = append(closed, v)
		}
	}
	return closed
}

// TestDetectorWindowRates: windows tumble every Window observations and
// report the window's mismatch rate and mean regret.
func TestDetectorWindowRates(t *testing.T) {
	d := newDetector(detPolicy())
	var seq int64
	if v := d.observe(1, true, 0.8); v.WindowClosed {
		t.Fatal("window closed early")
	}
	seq = 1
	closed := feed(d, &seq, 3, false, 0.2)
	if len(closed) != 1 {
		t.Fatalf("closed %d windows, want 1", len(closed))
	}
	v := closed[0]
	if v.MismatchRate != 0.25 {
		t.Errorf("mismatch rate = %v, want 0.25", v.MismatchRate)
	}
	if v.Regret != (0.8+3*0.2)/4 {
		t.Errorf("regret = %v", v.Regret)
	}
	if v.Bad {
		t.Error("window below both thresholds marked bad")
	}
	if d.state != StateHealthy {
		t.Errorf("state = %v", d.state)
	}
}

// TestDetectorDriftHysteresis: one bad window is not drift; DriftWindows
// consecutive bad windows are, and then every closed window asks for a
// retrain until the state machine moves on.
func TestDetectorDriftHysteresis(t *testing.T) {
	d := newDetector(detPolicy())
	var seq int64
	closed := feed(d, &seq, 4, true, 1)
	if closed[0].DriftDetected {
		t.Fatal("drift after a single bad window")
	}
	closed = feed(d, &seq, 4, true, 1)
	v := closed[0]
	if !v.DriftDetected || d.state != StateDrifting {
		t.Fatalf("no drift after %d bad windows: %+v state=%v", d.driftWindows, v, d.state)
	}
	if !v.WantRetrain {
		t.Fatal("drifting detector should want a retrain")
	}
	if v.StreakStart != 1 {
		t.Errorf("streak start = %d, want 1 (first obs of first bad window)", v.StreakStart)
	}
	// Subsequent bad windows keep asking but do not re-fire DriftDetected.
	closed = feed(d, &seq, 4, true, 1)
	if closed[0].DriftDetected {
		t.Error("DriftDetected re-fired mid-episode")
	}
	if !closed[0].WantRetrain {
		t.Error("drifting detector stopped asking for a retrain")
	}
	if d.drifts != 1 {
		t.Errorf("drifts = %d, want 1", d.drifts)
	}
}

// TestDetectorFalseAlarm: a drift episode that resolves on its own (good
// windows reach the recovery hysteresis before any retrain ran) stands the
// detector down without spending anything.
func TestDetectorFalseAlarm(t *testing.T) {
	d := newDetector(detPolicy())
	var seq int64
	feed(d, &seq, 8, true, 1) // 2 bad windows -> drifting
	if d.state != StateDrifting {
		t.Fatalf("state = %v, want drifting", d.state)
	}
	closed := feed(d, &seq, 8, false, 0) // 2 good windows
	if d.state != StateHealthy {
		t.Errorf("false alarm did not resolve: state = %v", d.state)
	}
	for _, v := range closed {
		if v.Recovered {
			t.Error("Recovered fired without a swap")
		}
	}
}

// TestDetectorSwapRecoveryAndCooldown: after a swap the detector returns to
// healthy, suppresses retrain re-triggering for the cooldown, and fires
// Recovered once the good streak reaches the recovery hysteresis.
func TestDetectorSwapRecoveryAndCooldown(t *testing.T) {
	d := newDetector(detPolicy())
	var seq int64
	feed(d, &seq, 8, true, 1)
	d.onRetrainStart()
	if d.state != StateRetraining {
		t.Fatalf("state = %v", d.state)
	}
	// Mid-window observations at swap time must be discarded.
	feed(d, &seq, 2, true, 1)
	d.onSwap()
	if d.n != 0 {
		t.Error("onSwap kept a partial window")
	}
	if d.state != StateHealthy {
		t.Fatalf("post-swap state = %v", d.state)
	}
	closed := feed(d, &seq, 8, false, 0)
	recovered := 0
	for _, v := range closed {
		if v.Recovered {
			recovered++
		}
	}
	if recovered != 1 {
		t.Errorf("Recovered fired %d times, want 1", recovered)
	}
	// A fresh bad streak during cooldown must not re-trigger drift until the
	// cooldown has elapsed (it elapsed during the two good windows above).
	closed = feed(d, &seq, 8, true, 1)
	if !closed[1].DriftDetected {
		t.Error("post-cooldown drift not re-detected")
	}
}

// TestDetectorRollbackCooldown: a rollback keeps the detector drifting but
// backs off asking for retrains for CooldownWindows windows.
func TestDetectorRollbackCooldown(t *testing.T) {
	d := newDetector(detPolicy())
	var seq int64
	feed(d, &seq, 8, true, 1)
	d.onRetrainStart()
	d.onRollback()
	if d.state != StateDrifting {
		t.Fatalf("post-rollback state = %v", d.state)
	}
	closed := feed(d, &seq, 8, true, 1) // 2 windows: cooldown 2 -> 0
	if closed[0].WantRetrain {
		t.Error("retrain requested during rollback cooldown")
	}
	if !closed[1].WantRetrain {
		t.Error("retrain not re-requested after cooldown")
	}
	// onRetrainFailed behaves like a rollback.
	d.onRetrainStart()
	d.onRetrainFailed()
	if d.state != StateDrifting || d.cooldown != d.cooldownWindows {
		t.Errorf("onRetrainFailed: state=%v cooldown=%d", d.state, d.cooldown)
	}
}

// TestStateString pins the state names used in stats and events.
func TestStateString(t *testing.T) {
	for want, s := range map[string]State{
		"healthy": StateHealthy, "drifting": StateDrifting, "retraining": StateRetraining,
	} {
		if s.String() != want {
			t.Errorf("%v.String() = %q", s, s.String())
		}
	}
	if State(42).String() != "state(42)" {
		t.Errorf("unknown state String = %q", State(42).String())
	}
}
