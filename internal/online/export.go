// Telemetry export for the adaptation engine: stable JSON forms for the
// event timeline, drift gauges for the metrics endpoint, and the debug-vars
// registration that puts the adaptation timeline tail on /vars.
package online

import (
	"encoding/json"

	"nitro/internal/obs"
)

// eventJSON fixes Event's wire field names, so external scrapers get a
// stable snake_case schema (mirrors core's adaptStatsJSON pattern).
type eventJSON struct {
	Seq          int       `json:"seq"`
	Call         int64     `json:"call"`
	Kind         EventKind `json:"kind"`
	MismatchRate float64   `json:"mismatch_rate"`
	Regret       float64   `json:"regret"`
	Version      int       `json:"version"`
	Detail       string    `json:"detail,omitempty"`
}

// MarshalJSON serializes the event with stable snake_case field names.
func (ev Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON(ev))
}

// UnmarshalJSON accepts the MarshalJSON wire form.
func (ev *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*ev = Event(j)
	return nil
}

// Collector exports the engine's adaptation and drift gauges under the
// nitro_adapt_* namespace, labelled with the tunable function's name.
// Register it on an obs.Registry next to Context.Collector().
func (e *Engine[In]) Collector(function string) obs.Collector {
	return func(emit func(obs.Metric)) {
		s := e.Stats()
		labels := []obs.Label{{Key: "function", Value: function}}
		counter := func(name, help string, v float64) {
			emit(obs.Metric{Name: name, Help: help, Kind: obs.KindCounter, Labels: labels, Value: v})
		}
		gauge := func(name, help string, v float64) {
			emit(obs.Metric{Name: name, Help: help, Kind: obs.KindGauge, Labels: labels, Value: v})
		}
		counter("nitro_adapt_calls_total", "Dispatches seen by the adaptation observer.", float64(s.Calls))
		counter("nitro_adapt_sampled_total", "Calls admitted by the sampling rate limiter.", float64(s.Sampled))
		counter("nitro_adapt_explored_total", "Sampled calls on which alternatives were re-timed.", float64(s.Explored))
		counter("nitro_adapt_explore_failures_total", "Variant failures during exploration re-timings.", float64(s.ExploreFailures))
		counter("nitro_adapt_mismatches_total", "Explored observations whose observed best differed from the prediction.", float64(s.Mismatches))
		counter("nitro_adapt_windows_total", "Completed drift-detector windows.", float64(s.Windows))
		counter("nitro_adapt_drifts_total", "Sustained-drift detections.", float64(s.Drifts))
		counter("nitro_adapt_retrains_total", "Background retrains started.", float64(s.Retrains))
		counter("nitro_adapt_retrains_deferred_total", "Drift windows with retraining deferred for lack of samples.", float64(s.RetrainsDeferred))
		counter("nitro_adapt_swaps_total", "Candidate models hot-swapped in.", float64(s.Swaps))
		counter("nitro_adapt_rollbacks_total", "Candidate models rejected on the holdout.", float64(s.Rollbacks))
		gauge("nitro_adapt_explore_seconds", "Accumulated exploration cost (optimization-value seconds).", s.ExploreSeconds)
		gauge("nitro_adapt_mismatch_rate", "Most recently closed window's mismatch rate.", s.LastMismatchRate)
		gauge("nitro_adapt_regret", "Most recently closed window's mean relative regret.", s.LastRegret)
		gauge("nitro_adapt_state", "Drift state (0=healthy,1=drifting,2=retraining,3=bakeoff).", float64(e.State()))
		gauge("nitro_adapt_model_version", "Stamped version of the installed model.", float64(s.ModelVersion))
		counter("nitro_bandit_flagged_total", "Explorations routed to the contextual bandit (low confidence or drift).", float64(s.BanditFlagged))
		counter("nitro_bandit_skipped_total", "Explorations skipped because the model was confident and healthy.", float64(s.BanditSkipped))
		counter("nitro_bandit_pulls_total", "Arm pulls recorded by the contextual bandit.", float64(s.BanditPulls))
		gauge("nitro_ensemble_confidence_mean", "Mean calibrated prediction confidence over bandit-routed calls.", s.MeanConfidence)
		counter("nitro_bakeoff_started_total", "Sequential challenger-vs-incumbent bakeoffs started.", float64(s.Bakeoffs))
		counter("nitro_bakeoff_promotes_total", "Bakeoffs resolved by promoting the challenger.", float64(s.BakeoffPromotes))
		counter("nitro_bakeoff_rejects_total", "Bakeoffs resolved by rejecting the challenger.", float64(s.BakeoffRejects))
		counter("nitro_bakeoff_timeouts_total", "Bakeoffs that exhausted the sample budget undecided.", float64(s.BakeoffTimeouts))
		gauge("nitro_bakeoff_samples", "Paired samples accumulated by the live bakeoff (0 when idle).", float64(s.BakeoffSamples))
		gauge("nitro_bakeoff_mean_delta", "Mean paired relative speedup of the live bakeoff's challenger.", s.BakeoffMean)
		paused := 0.0
		if s.Paused {
			paused = 1
		}
		gauge("nitro_adapt_paused", "Whether the engine is paused (1=paused).", paused)
	}
}

// RegisterVars puts the engine's adaptation statistics and the tail of its
// event timeline on the registry's JSON debug view (/vars and the "nitro"
// expvar). tail bounds the timeline length (<= 0 means the full timeline).
func (e *Engine[In]) RegisterVars(reg *obs.Registry, function string, tail int) {
	reg.RegisterVar("adapt_stats:"+function, func() any { return e.Stats() })
	reg.RegisterVar("adapt_events:"+function, func() any {
		evs := e.Events()
		if tail > 0 && len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		return evs
	})
}
