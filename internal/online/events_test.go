package online

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestEventStringGoldens pins the exact one-line rendering of every event
// kind. These strings are the replay harness's byte-identity surface and the
// CLI's timeline output — changing them is a breaking change, so the test is
// a golden, not a property.
func TestEventStringGoldens(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{
			Event{Seq: 0, Call: 412, Kind: EventDrift, MismatchRate: 0.48, Regret: 0.312, Detail: "sustained over 2 windows"},
			"[call 000412] drift: mismatch=48.0% regret=0.312 (sustained over 2 windows)",
		},
		{
			Event{Seq: 1, Call: 64, Kind: EventWindow, MismatchRate: 0.25, Regret: 0.05},
			"[call 000064] window: mismatch=25.0% regret=0.050",
		},
		{
			Event{Seq: 2, Call: 900, Kind: EventRecovered, MismatchRate: 0.0625, Regret: 0.001, Detail: "2 good windows"},
			"[call 000900] recovered: mismatch=6.2% regret=0.001 (2 good windows)",
		},
		{
			Event{Seq: 3, Call: 500, Kind: EventDeferred, Detail: "12/64 samples"},
			"[call 000500] retrain-deferred (12/64 samples)",
		},
		{
			Event{Seq: 4, Call: 640, Kind: EventRetrain, Detail: "64 samples"},
			"[call 000640] retrain (64 samples)",
		},
		{
			Event{Seq: 5, Call: 644, Kind: EventRetrainFailed, Detail: "train: singular kernel"},
			"[call 000644] retrain-failed (train: singular kernel)",
		},
		{
			Event{Seq: 6, Call: 700, Kind: EventRollback, Version: 3, Detail: "holdout 0.41 <= incumbent 0.44"},
			"[call 000700] rollback (holdout 0.41 <= incumbent 0.44)",
		},
		{
			Event{Seq: 7, Call: 702, Kind: EventSwap, Version: 4, Detail: "holdout 0.58 > incumbent 0.44"},
			"[call 000702] swap (holdout 0.58 > incumbent 0.44)",
		},
		{
			Event{Seq: 8, Call: 703, Kind: EventPaused},
			"[call 000703] paused",
		},
		{
			Event{Seq: 9, Call: 704, Kind: EventResumed},
			"[call 000704] resumed",
		},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("Event.String() =\n  %q\nwant\n  %q", got, c.want)
		}
	}
}

// TestEventJSONGolden pins the wire form: snake_case keys, detail omitted
// when empty, and a lossless round-trip through UnmarshalJSON.
func TestEventJSONGolden(t *testing.T) {
	ev := Event{Seq: 3, Call: 412, Kind: EventDrift, MismatchRate: 0.48, Regret: 0.312, Version: 2, Detail: "sustained over 2 windows"}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":3,"call":412,"kind":"drift","mismatch_rate":0.48,"regret":0.312,"version":2,"detail":"sustained over 2 windows"}`
	if string(b) != want {
		t.Errorf("MarshalJSON =\n  %s\nwant\n  %s", b, want)
	}

	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Errorf("round-trip = %+v, want %+v", back, ev)
	}

	// detail is omitempty: a bare event has no "detail" key.
	b, err = json.Marshal(Event{Seq: 0, Call: 1, Kind: EventPaused})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "detail") {
		t.Errorf("empty Detail not omitted: %s", b)
	}
	if want := `{"seq":0,"call":1,"kind":"paused","mismatch_rate":0,"regret":0,"version":0}`; string(b) != want {
		t.Errorf("bare event JSON = %s, want %s", b, want)
	}
}

// TestStateStringGoldens pins the State renderings the stats snapshot, the
// metrics gauge help text and the CLI all rely on.
func TestStateStringGoldens(t *testing.T) {
	cases := []struct {
		s    State
		want string
	}{
		{StateHealthy, "healthy"},
		{StateDrifting, "drifting"},
		{StateRetraining, "retraining"},
		{State(7), "state(7)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("State(%d).String() = %q, want %q", int32(c.s), got, c.want)
		}
	}
}

// TestDetectorStateTransitionGolden drives the detector through a full drift
// episode and pins the exact state trajectory as a golden string: healthy
// windows, sustained drift, retrain start, swap, and recovery back to
// healthy. This is the satellite's drift-state transition golden — the
// sequence must be deterministic, not merely eventually correct.
func TestDetectorStateTransitionGolden(t *testing.T) {
	d := newDetector(detPolicy()) // window=4, drift=2, recovery=2, cooldown=2
	var seq int64
	var trail []string
	record := func(tag string) {
		trail = append(trail, fmt.Sprintf("%s:%s", tag, d.state))
	}

	record("start")
	feed(d, &seq, 4, false, 0.1) // good window
	record("good-window")
	feed(d, &seq, 4, true, 0.9) // bad window 1 of 2 — not drift yet
	record("bad-window-1")
	feed(d, &seq, 4, true, 0.9) // bad window 2 — hysteresis satisfied
	record("bad-window-2")
	d.onRetrainStart()
	record("retrain-start")
	d.onSwap()
	record("swap")
	feed(d, &seq, 4, false, 0.1) // good window 1 of 2 post-swap
	record("good-window-1")
	feed(d, &seq, 4, false, 0.1) // good window 2 — recovered
	record("good-window-2")

	got := strings.Join(trail, " ")
	want := "start:healthy good-window:healthy bad-window-1:healthy " +
		"bad-window-2:drifting retrain-start:retraining swap:healthy " +
		"good-window-1:healthy good-window-2:healthy"
	if got != want {
		t.Errorf("state trajectory =\n  %s\nwant\n  %s", got, want)
	}
}

// TestDetectorRollbackTransitionGolden pins the rollback path: a failed
// candidate returns the machine to drifting (the episode is still open), and
// a retrain failure behaves identically.
func TestDetectorRollbackTransitionGolden(t *testing.T) {
	for _, fail := range []struct {
		name string
		f    func(d *detector)
	}{
		{"rollback", func(d *detector) { d.onRollback() }},
		{"retrain-failed", func(d *detector) { d.onRetrainFailed() }},
	} {
		t.Run(fail.name, func(t *testing.T) {
			d := newDetector(detPolicy())
			var seq int64
			feed(d, &seq, 8, true, 0.9) // two bad windows: drift
			if d.state != StateDrifting {
				t.Fatalf("pre: state = %v, want drifting", d.state)
			}
			d.onRetrainStart()
			if d.state != StateRetraining {
				t.Fatalf("state = %v, want retraining", d.state)
			}
			fail.f(d)
			if d.state != StateDrifting {
				t.Errorf("post-%s state = %v, want drifting", fail.name, d.state)
			}
		})
	}
}
