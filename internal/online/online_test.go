package online

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"nitro/internal/autotuner"
	"nitro/internal/core"
)

// genInstances builds a deterministic serving stream over the same 3-variant
// cost surfaces the autotuner's synthetic suite uses: the best variant is a
// function of a 2-D feature vector, and variant 2 is constraint-infeasible
// for x < 2 (its recorded time is +Inf, which ReplayVariant turns into a
// constraint veto).
func genInstances(n int, seed int64) []autotuner.Instance {
	rng := rand.New(rand.NewSource(seed))
	out := make([]autotuner.Instance, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		y := rng.Float64() * 10
		times := []float64{1 + x, 5 - 0.3*x + 0.5*y, 8 - 0.4*x - 0.5*y}
		if x < 2 {
			times[2] = math.Inf(1)
		}
		out = append(out, autotuner.Instance{Features: []float64{x, y}, Times: times})
	}
	return out
}

// rotated returns instances whose Times vectors are rotated by one slot:
// the feature→best-variant mapping changes while the features stay — a
// synthetic concept drift.
func rotated(ins []autotuner.Instance) []autotuner.Instance {
	out := make([]autotuner.Instance, len(ins))
	for i, in := range ins {
		rot := make([]float64, len(in.Times))
		for j := range in.Times {
			rot[j] = in.Times[(j+1)%len(in.Times)]
		}
		cp := in
		cp.Times = rot
		out[i] = cp
	}
	return out
}

// fixture builds a live replay CodeVariant with an installed v1 SVM model
// trained on the healthy distribution.
func fixture(t *testing.T) (*core.Context, *core.CodeVariant[autotuner.Instance], *autotuner.Suite) {
	t.Helper()
	train := genInstances(120, 7)
	s := &autotuner.Suite{
		Name:           "adaptive",
		VariantNames:   []string{"v0", "v1", "v2"},
		FeatureNames:   []string{"x", "y"},
		DefaultVariant: 0,
		Train:          train,
	}
	model, _, err := autotuner.Train(train, autotuner.TrainOptions{Classifier: "svm", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cx := core.NewContext()
	cv, err := autotuner.ReplayVariant(cx, s, core.DefaultPolicy(s.Name))
	if err != nil {
		t.Fatal(err)
	}
	if err := cx.SetModel(s.Name, model); err != nil {
		t.Fatal(err)
	}
	return cx, cv, s
}

// testPolicy is the fast deterministic configuration the engine tests share:
// every call sampled and explored, 10-observation windows, drift after 2 bad
// windows, retrain once 40 drifted samples exist (so the first drift verdict
// defers — exercising that path — and the retrain launches two windows
// later), synchronous retraining for determinism.
func testPolicy(seed int64) Policy {
	return Policy{
		SamplePeriod:      1,
		ExploreRate:       1,
		ReservoirSize:     256,
		Window:            10,
		MismatchThreshold: 0.5,
		RegretThreshold:   2.0,
		DriftWindows:      2,
		RecoveryWindows:   2,
		CooldownWindows:   2,
		MinRetrainSamples: 40,
		Retrain: autotuner.RetrainOptions{
			TrainOptions: autotuner.TrainOptions{Classifier: "svm", Seed: 1},
		},
		Seed:        seed,
		Synchronous: true,
	}
}

// serve pushes instances through Call, failing the test on serving errors.
func serve(t *testing.T, cv *core.CodeVariant[autotuner.Instance], ins []autotuner.Instance) {
	t.Helper()
	for i, in := range ins {
		if _, _, err := cv.Call(in); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestAttachValidation(t *testing.T) {
	if _, err := Attach[int](nil, DefaultPolicy(1)); err == nil {
		t.Error("nil cv accepted")
	}
	cx := core.NewContext()
	single := core.New[int](cx, core.DefaultPolicy("single"))
	single.AddVariant("only", func(int) float64 { return 1 })
	if _, err := Attach(single, DefaultPolicy(1)); err == nil {
		t.Error("single-variant cv accepted")
	}
	_, cv, _ := fixture(t)
	bad := DefaultPolicy(1)
	bad.ExploreRate = 1.5
	if _, err := Attach(cv, bad); err == nil {
		t.Error("ExploreRate 1.5 accepted")
	}
}

// TestExploreRateZeroIdentity is the inert-by-default property: an attached
// engine with ExploreRate 0 must be observationally identical to plain Call —
// same per-call results, same CallStats — while still counting samples.
func TestExploreRateZeroIdentity(t *testing.T) {
	cxA, cvA, s := fixture(t)
	cxB, cvB, _ := fixture(t)
	pol := testPolicy(42)
	pol.ExploreRate = 0
	eng, err := Attach(cvB, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ins := genInstances(200, 11)
	for i, in := range ins {
		vA, nA, errA := cvA.Call(in)
		vB, nB, errB := cvB.Call(in)
		if vA != vB || nA != nB || (errA == nil) != (errB == nil) {
			t.Fatalf("call %d diverged: plain=(%v,%q,%v) observed=(%v,%q,%v)",
				i, vA, nA, errA, vB, nB, errB)
		}
	}
	stA, stB := cxA.Stats(s.Name), cxB.Stats(s.Name)
	// TotalValue accumulates across randomly picked stat shards, so its float
	// summation order is not deterministic; compare it with a tolerance and
	// everything else exactly.
	if math.Abs(stA.TotalValue-stB.TotalValue) > 1e-9*math.Abs(stA.TotalValue) {
		t.Errorf("TotalValue diverged: %v vs %v", stA.TotalValue, stB.TotalValue)
	}
	stA.TotalValue, stB.TotalValue = 0, 0
	stA.FeatureSeconds, stB.FeatureSeconds = 0, 0
	if !reflect.DeepEqual(stA, stB) {
		t.Errorf("CallStats diverged:\nplain:    %+v\nobserved: %+v", stA, stB)
	}
	ast := eng.Stats()
	if ast.Calls != 200 || ast.Sampled != 200 {
		t.Errorf("engine counters: calls=%d sampled=%d, want 200/200", ast.Calls, ast.Sampled)
	}
	if ast.Explored != 0 || ast.Windows != 0 || ast.Drifts != 0 {
		t.Errorf("explore-rate-0 engine explored: %+v", ast)
	}
	if ast.State != "healthy" {
		t.Errorf("state = %q", ast.State)
	}
}

// driveDriftScenario runs the full healthy → drift → retrain → swap →
// recovered timeline on a fresh fixture and returns the engine (still
// attached; caller closes).
func driveDriftScenario(t *testing.T, seed int64) *Engine[autotuner.Instance] {
	t.Helper()
	_, cv, _ := fixture(t)
	eng, err := Attach(cv, testPolicy(seed))
	if err != nil {
		t.Fatal(err)
	}
	serve(t, cv, genInstances(30, 21))          // 3 healthy windows
	serve(t, cv, rotated(genInstances(90, 23))) // drift: detect, defer, retrain, swap, recover
	return eng
}

// TestDriftRetrainSwap is the subsystem's end-to-end: sustained drift is
// detected, the first retrain defers for lack of samples, the eventual
// retrain's candidate wins the holdout and is hot-swapped in as v2, and the
// post-swap windows recover.
func TestDriftRetrainSwap(t *testing.T) {
	eng := driveDriftScenario(t, 42)
	defer eng.Close()

	st := eng.Stats()
	if st.Drifts != 1 {
		t.Errorf("drifts = %d, want 1", st.Drifts)
	}
	if st.RetrainsDeferred == 0 {
		t.Error("expected at least one deferred retrain (MinRetrainSamples gate)")
	}
	if st.Retrains != 1 || st.Swaps != 1 || st.Rollbacks != 0 {
		t.Errorf("retrains=%d swaps=%d rollbacks=%d, want 1/1/0", st.Retrains, st.Swaps, st.Rollbacks)
	}
	if st.ModelVersion != 2 {
		t.Errorf("installed model version = %d, want 2", st.ModelVersion)
	}
	if st.State != "healthy" {
		t.Errorf("final state = %q, want healthy", st.State)
	}
	if st.LastMismatchRate >= 0.5 {
		t.Errorf("post-swap mismatch rate %.2f still above threshold", st.LastMismatchRate)
	}
	if st.ExploreSeconds <= 0 {
		t.Error("exploration spent no budget")
	}

	// The event timeline must contain the state machine's transitions in
	// causal order: drift -> deferred -> retrain -> swap -> recovered.
	var order []EventKind
	for _, ev := range eng.Events() {
		switch ev.Kind {
		case EventDrift, EventDeferred, EventRetrain, EventSwap, EventRollback, EventRecovered:
			order = append(order, ev.Kind)
		}
	}
	want := []EventKind{EventDrift, EventDeferred, EventDeferred, EventRetrain, EventSwap, EventRecovered}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("event order = %v, want %v", order, want)
	}
}

// TestReplayDeterminism: the same seed and input stream must reproduce the
// adaptation timeline event for event (the replay harness's contract).
func TestReplayDeterminism(t *testing.T) {
	render := func(eng *Engine[autotuner.Instance]) []string {
		defer eng.Close()
		evs := eng.Events()
		out := make([]string, len(evs))
		for i, ev := range evs {
			out[i] = ev.String()
		}
		return out
	}
	a := render(driveDriftScenario(t, 42))
	b := render(driveDriftScenario(t, 42))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("timelines diverged:\nrun A: %v\nrun B: %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty timeline")
	}
}

// TestRollbackKeepsIncumbent: with an unreachable acceptance margin the
// candidate must be rejected, the incumbent stays installed, and the
// detector backs off in StateDrifting.
func TestRollbackKeepsIncumbent(t *testing.T) {
	cx, cv, s := fixture(t)
	pol := testPolicy(42)
	pol.Retrain.MinImprovement = 10 // no candidate can clear this
	eng, err := Attach(cv, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	serve(t, cv, genInstances(30, 21))
	serve(t, cv, rotated(genInstances(60, 23)))

	st := eng.Stats()
	if st.Retrains == 0 || st.Rollbacks == 0 {
		t.Fatalf("retrains=%d rollbacks=%d, want both > 0", st.Retrains, st.Rollbacks)
	}
	if st.Swaps != 0 {
		t.Errorf("swaps = %d, want 0", st.Swaps)
	}
	if st.ModelVersion != 1 {
		t.Errorf("model version = %d, want incumbent v1", st.ModelVersion)
	}
	m, _ := cx.Model(s.Name)
	if m.Version() != 1 {
		t.Errorf("installed model version = %d, want 1", m.Version())
	}
	if st.State != "drifting" {
		t.Errorf("state = %q, want drifting (drift persists after rollback)", st.State)
	}
}

// TestPauseResume: a paused engine observes nothing (calls, samples and
// windows all frozen) and picks back up after Resume; both toggles land in
// the event timeline.
func TestPauseResume(t *testing.T) {
	_, cv, _ := fixture(t)
	eng, err := Attach(cv, testPolicy(42))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	serve(t, cv, genInstances(10, 21))
	eng.Pause()
	eng.Pause() // idempotent: one event
	before := eng.Stats()
	if !before.Paused {
		t.Error("Paused not reported")
	}
	serve(t, cv, genInstances(50, 22))
	mid := eng.Stats()
	if mid.Calls != before.Calls || mid.Explored != before.Explored {
		t.Errorf("paused engine observed calls: %+v -> %+v", before, mid)
	}
	eng.Resume()
	eng.Resume() // idempotent
	serve(t, cv, genInstances(10, 23))
	after := eng.Stats()
	if after.Calls != before.Calls+10 {
		t.Errorf("resumed calls = %d, want %d", after.Calls, before.Calls+10)
	}
	var paused, resumed int
	for _, ev := range eng.Events() {
		switch ev.Kind {
		case EventPaused:
			paused++
		case EventResumed:
			resumed++
		}
	}
	if paused != 1 || resumed != 1 {
		t.Errorf("paused/resumed events = %d/%d, want 1/1", paused, resumed)
	}
}

// TestCloseDetaches: after Close the engine observes nothing and the
// CodeVariant serves plain calls.
func TestCloseDetaches(t *testing.T) {
	_, cv, _ := fixture(t)
	eng, err := Attach(cv, testPolicy(42))
	if err != nil {
		t.Fatal(err)
	}
	serve(t, cv, genInstances(10, 21))
	eng.Close()
	eng.Close() // idempotent
	st := eng.Stats()
	serve(t, cv, genInstances(20, 22))
	if got := eng.Stats(); got.Calls != st.Calls {
		t.Errorf("closed engine kept observing: %d -> %d", st.Calls, got.Calls)
	}
}

// TestConcurrentAdaptationStress exercises the full loop under -race:
// concurrent Call traffic (healthy then drifted), background (asynchronous)
// retrains, and concurrent Stats/State/Events/Pause/Resume readers.
func TestConcurrentAdaptationStress(t *testing.T) {
	_, cv, _ := fixture(t)
	pol := testPolicy(42)
	pol.Synchronous = false // background retrains
	pol.MinRetrainSamples = 20
	eng, err := Attach(cv, pol)
	if err != nil {
		t.Fatal(err)
	}

	healthy := genInstances(200, 31)
	drifted := rotated(genInstances(400, 33))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, in := range healthy[w*50 : (w+1)*50] {
				cv.Call(in)
			}
			for _, in := range drifted[w*100 : (w+1)*100] {
				cv.Call(in)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = eng.Stats()
			_ = eng.State()
			_ = eng.Events()
			if i == 50 {
				eng.Pause()
			}
			if i == 60 {
				eng.Resume()
			}
		}
	}()
	wg.Wait()
	eng.Wait() // drain background retrains
	st := eng.Stats()
	if st.Explored == 0 || st.Windows == 0 {
		t.Errorf("stress run did no adaptation work: %+v", st)
	}
	eng.Close()
	// Serving continues after detach.
	serve(t, cv, healthy[:10])
}
