// Fleet-wide drift detection: the same windowed mismatch/regret state
// machine the per-process adaptation engine runs, exported for a registry
// daemon that pools observation samples pushed by many client processes.
//
// A single client sees only its own slice of the input distribution; the
// Nitro server aggregates samples across the fleet, so drift that no single
// instance observes often enough to trip its local detector still trips the
// fleet detector ("On-line Application Autotuning Exploiting Ensemble
// Models" — pooling runtime knowledge across instances). The FleetDetector
// wraps the pure detector with a mutex (remote ingestion is concurrent) and
// computes mismatch/regret from the raw pushed sample, so clients ship data,
// not verdicts.
package online

import (
	"math"
	"sync"
)

// RemoteSample is one observation pushed by a remote client: the input's
// feature vector, the per-variant timings it observed (+Inf for variants
// that were vetoed, quarantined or failed — the same convention as
// autotuner.Observation), and the variant index the client's installed
// model predicted.
type RemoteSample struct {
	// Features is the unscaled feature vector.
	Features []float64 `json:"features"`
	// Times holds the observed optimization value of every variant.
	Times []float64 `json:"times"`
	// Predicted is the variant index the client's model chose (-1 when the
	// client had no model installed; such samples still label the corpus but
	// carry no mismatch signal).
	Predicted int `json:"predicted"`
}

// Best returns the argmin variant of the sample's timings and its value
// (-1, +Inf when every variant is infeasible).
func (s RemoteSample) Best() (int, float64) {
	best, bestV := -1, math.Inf(1)
	for i, t := range s.Times {
		if t < bestV {
			best, bestV = i, t
		}
	}
	return best, bestV
}

// FleetDetector runs the drift state machine over samples pooled from many
// client processes. Safe for concurrent use.
type FleetDetector struct {
	mu  sync.Mutex
	det *detector
	seq int64

	samples    int64
	mismatches int64
}

// NewFleetDetector builds a detector from the policy's window/threshold/
// hysteresis fields (the sampling and retrain fields are ignored — the
// server owns those decisions).
func NewFleetDetector(pol Policy) *FleetDetector {
	pol = pol.normalized()
	return &FleetDetector{det: newDetector(pol)}
}

// Ingest feeds one pushed sample into the current window and returns the
// detector's verdict (zero-valued until a window closes). Samples with no
// evaluable best or no prediction advance nothing.
func (f *FleetDetector) Ingest(s RemoteSample) Verdict {
	best, bestV := s.Best()
	if best < 0 || s.Predicted < 0 {
		return Verdict{}
	}
	mismatch := best != s.Predicted
	regret := 0.0
	if s.Predicted < len(s.Times) {
		if pv := s.Times[s.Predicted]; !math.IsInf(pv, 1) && bestV > 0 && pv > bestV {
			regret = (pv - bestV) / bestV
		} else if math.IsInf(pv, 1) {
			// The model picked an infeasible variant: maximal regret signal.
			regret = 1
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	f.samples++
	if mismatch {
		f.mismatches++
	}
	return f.det.observe(f.seq, mismatch, regret)
}

// Seq returns the ingestion sequence number of the most recent sample.
func (f *FleetDetector) Seq() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// State returns the drift state machine's current state.
func (f *FleetDetector) State() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.det.state
}

// FleetStats is a point-in-time snapshot of a fleet detector.
type FleetStats struct {
	Samples          int64   `json:"samples"`
	Mismatches       int64   `json:"mismatches"`
	Windows          int64   `json:"windows"`
	Drifts           int64   `json:"drifts"`
	LastMismatchRate float64 `json:"last_mismatch_rate"`
	LastRegret       float64 `json:"last_regret"`
	State            string  `json:"state"`
}

// Stats snapshots the detector's counters.
func (f *FleetDetector) Stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FleetStats{
		Samples:          f.samples,
		Mismatches:       f.mismatches,
		Windows:          f.det.windows,
		Drifts:           f.det.drifts,
		LastMismatchRate: f.det.lastMismatch,
		LastRegret:       f.det.lastRegret,
		State:            f.det.state.String(),
	}
}

// OnRetrainStart / OnSwap / OnRollback / OnRetrainFailed forward the
// registry's retrain lifecycle into the state machine, exactly as the
// in-process engine drives its private detector.
func (f *FleetDetector) OnRetrainStart() { f.locked(func() { f.det.onRetrainStart() }) }
func (f *FleetDetector) OnBakeoffStart() { f.locked(func() { f.det.onBakeoffStart() }) }
func (f *FleetDetector) OnSwap()         { f.locked(func() { f.det.onSwap() }) }
func (f *FleetDetector) OnRollback()     { f.locked(func() { f.det.onRollback() }) }
func (f *FleetDetector) OnRetrainFailed() {
	f.locked(func() { f.det.onRetrainFailed() })
}

func (f *FleetDetector) locked(fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn()
}
