package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Classifier is the interface Nitro's tuner programs against; the paper's
// tuning script exposes the classifier as a pluggable option
// (svm_classifier() by default).
type Classifier interface {
	// Fit trains on the dataset. Feature scaling is the caller's concern.
	Fit(ds *Dataset) error
	// Predict returns the predicted class label of x.
	Predict(x []float64) int
	// Scores returns one confidence per known class, aligned with Classes;
	// higher means more confident. Used by Best-vs-Second-Best selection.
	Scores(x []float64) []float64
	// Classes returns the sorted labels the classifier was trained on.
	Classes() []int
	// Name identifies the classifier kind.
	Name() string
}

// defaultSVMEps is the KKT-violation stopping tolerance NewSVM installs —
// libSVM's default.
const defaultSVMEps = 1e-3

// SVM is a multi-class C-SVC with one-vs-one decomposition, mirroring
// libSVM's architecture. The zero value is unusable; construct with NewSVM.
type SVM struct {
	C       float64
	Eps     float64
	MaxIter int
	kernel  Kernel

	classes []int
	pairs   []svmPair
	// svRows holds the distinct support vectors across all one-vs-one pairs.
	// At deployment time, pairs frequently share support vectors (a training
	// row participates in every pair involving its class), so Scores and
	// DecisionValues evaluate K(sv, x) once per distinct vector here and let
	// each pair look the value up via svmPair.svID instead of re-evaluating
	// the kernel per pair.
	//
	// Concurrency audit (deployment runtime): svRows, classIdx, classes,
	// pairs and kernel are all written only by Fit/fit/buildSVCache (i.e.
	// training or deserialization) and read-only afterwards; Scores,
	// Predict and DecisionValues allocate their scratch (kv, out) per call.
	// A fitted *SVM is therefore safe for unlimited concurrent prediction —
	// the property core.CodeVariant's lock-free predict path relies on.
	svRows [][]float64
	// classIdx maps class label -> slot in classes, precomputed at fit time
	// so the Scores hot path does not rebuild (and reallocate) the map on
	// every prediction.
	classIdx map[int]int
}

type svmPair struct {
	a, b int // class labels; positive decision votes for a
	sol  *smoResult
	// svID maps each of sol's support vectors to its slot in SVM.svRows
	// (nil when the shared cache is unavailable; decision then falls back to
	// direct kernel evaluation).
	svID []int
}

// NewSVM returns an untrained SVM with the given kernel and box constraint.
func NewSVM(k Kernel, c float64) *SVM {
	return &SVM{C: c, Eps: defaultSVMEps, kernel: k}
}

// DefaultSVM returns the paper's default configuration: RBF kernel with
// gamma = 1/dim (set at Fit time if Gamma is zero) and C = 1. Use GridSearch
// to tune (C, gamma) by cross-validation as the paper does.
func DefaultSVM() *SVM { return NewSVM(RBFKernel{}, 1) }

// Kernel returns the (possibly Fit-adjusted) kernel.
func (m *SVM) Kernel() Kernel { return m.kernel }

// Name implements Classifier.
func (m *SVM) Name() string { return "svm" }

// Classes implements Classifier.
func (m *SVM) Classes() []int { return m.classes }

// Fit implements Classifier: it trains k(k-1)/2 binary machines, one per
// unordered pair of classes.
func (m *SVM) Fit(ds *Dataset) error { return m.fit(ds, nil) }

// fit trains the one-vs-one ensemble. When km is non-nil it must be the
// Gram matrix of ds.X under m.kernel (with any zero RBF gamma already
// resolved); each pair then trains on an index-subset gather of km instead
// of re-evaluating the kernel — the path the grid search's gamma-keyed
// kernel cache uses. Both paths produce bit-identical models.
func (m *SVM) fit(ds *Dataset, km [][]float64) error {
	if ds == nil || ds.Len() == 0 {
		return errors.New("ml: empty training set")
	}
	if rbf, ok := m.kernel.(RBFKernel); ok && rbf.Gamma == 0 {
		rbf.Gamma = 1 / float64(max(ds.Dim(), 1))
		m.kernel = rbf
	}
	m.classes = ds.Classes()
	if len(m.classes) < 1 {
		return errors.New("ml: no classes")
	}
	m.pairs = nil
	m.svRows = nil
	m.buildClassIndex()
	if len(m.classes) == 1 {
		return nil // degenerate: always predict the single class
	}
	// rowID assigns each dataset row used as a support vector one slot in
	// the shared svRows table, deduplicating across pairs.
	rowID := make(map[int]int)
	for i := 0; i < len(m.classes); i++ {
		for j := i + 1; j < len(m.classes); j++ {
			a, b := m.classes[i], m.classes[j]
			var gi []int
			var x [][]float64
			var y []float64
			for t, lab := range ds.Y {
				switch lab {
				case a:
					gi = append(gi, t)
					x = append(x, ds.X[t])
					y = append(y, 1)
				case b:
					gi = append(gi, t)
					x = append(x, ds.X[t])
					y = append(y, -1)
				}
			}
			var sol *smoResult
			var err error
			if km != nil {
				sol, err = solveBinaryKM(x, y, gatherKM(km, gi), m.C, m.Eps, m.MaxIter)
			} else {
				sol, err = solveBinary(x, y, m.kernel, m.C, m.Eps, m.MaxIter)
			}
			if err != nil {
				return fmt.Errorf("ml: pair (%d,%d): %w", a, b, err)
			}
			p := svmPair{a: a, b: b, sol: sol, svID: make([]int, len(sol.svIdx))}
			for s, t := range sol.svIdx {
				row := gi[t]
				id, ok := rowID[row]
				if !ok {
					id = len(m.svRows)
					m.svRows = append(m.svRows, ds.X[row])
					rowID[row] = id
				}
				p.svID[s] = id
			}
			m.pairs = append(m.pairs, p)
		}
	}
	return nil
}

// Predict implements Classifier using pairwise voting with soft-score
// tie-breaking.
func (m *SVM) Predict(x []float64) int {
	if len(m.classes) == 0 {
		return 0
	}
	scores := m.Scores(x)
	best, bestScore := m.classes[0], math.Inf(-1)
	for i, c := range m.classes {
		if scores[i] > bestScore {
			best, bestScore = c, scores[i]
		}
	}
	return best
}

// svKernels evaluates K(sv, x) once per distinct support vector in the
// shared svRows table, or returns nil when the cache is unavailable.
// Because the kernel is a pure function, reusing one evaluation across all
// pairs sharing a support vector is bit-identical to per-pair evaluation.
func (m *SVM) svKernels(x []float64) []float64 {
	if m.svRows == nil {
		return nil
	}
	kv := make([]float64, len(m.svRows))
	m.svKernelsInto(x, kv)
	return kv
}

// svKernelsInto fills kv (len == len(svRows)) with K(sv, x) per distinct
// support vector — the allocation-free core of svKernels.
func (m *SVM) svKernelsInto(x, kv []float64) {
	for i, sv := range m.svRows {
		kv[i] = m.kernel.Eval(sv, x)
	}
}

// pairDecision evaluates one pair's decision value, reading kernel values
// from kv (the shared support-vector cache) when available.
func (m *SVM) pairDecision(p *svmPair, x []float64, kv []float64) float64 {
	if kv == nil || p.svID == nil {
		return p.sol.decision(m.kernel, x)
	}
	var s float64
	for i, id := range p.svID {
		s += p.sol.svCoef[i] * kv[id]
	}
	return s - p.sol.rho
}

// Scores implements Classifier. Each pairwise decision value d contributes a
// sigmoid-soft vote sigma(d) to the winning class and 1-sigma(d) to the
// loser, which yields the smooth per-class confidences the
// Best-vs-Second-Best heuristic needs. One-vs-one pairs share support
// vectors, so K(sv, x) is evaluated once per distinct vector (svKernels)
// rather than once per pair.
func (m *SVM) Scores(x []float64) []float64 {
	out := make([]float64, len(m.classes))
	m.scoresInto(x, m.svKernels(x), out)
	return out
}

// scoresInto is the allocation-free core of Scores: it fills out (len ==
// len(classes)) with the per-class soft votes, reading kernel values from kv
// when non-nil. The dispatch hot path calls it with pooled kv/out buffers.
func (m *SVM) scoresInto(x, kv, out []float64) {
	for i := range out {
		out[i] = 0
	}
	if len(m.classes) == 1 {
		out[0] = 1
		return
	}
	idx := m.classIdx
	if idx == nil { // e.g. a hand-assembled SVM in tests
		idx = make(map[int]int, len(m.classes))
		for i, c := range m.classes {
			idx[c] = i
		}
	}
	for i := range m.pairs {
		p := &m.pairs[i]
		d := m.pairDecision(p, x, kv)
		s := 1 / (1 + math.Exp(-2*d))
		out[idx[p.a]] += s
		out[idx[p.b]] += 1 - s
	}
}

// DecisionValues returns the raw pairwise decision values (one per trained
// class pair, in pair order), for diagnostics. Like Scores, it shares one
// kernel evaluation per distinct support vector across pairs.
func (m *SVM) DecisionValues(x []float64) []float64 {
	out := make([]float64, len(m.pairs))
	kv := m.svKernels(x)
	for i := range m.pairs {
		out[i] = m.pairDecision(&m.pairs[i], x, kv)
	}
	return out
}

// buildClassIndex precomputes the label -> slot lookup Scores uses on every
// prediction. Called whenever classes are (re)assigned — fit and model
// deserialization — so the predict hot path never allocates the map.
func (m *SVM) buildClassIndex() {
	m.classIdx = make(map[int]int, len(m.classes))
	for i, c := range m.classes {
		m.classIdx[c] = i
	}
}

// buildSVCache rebuilds the shared support-vector table by vector content,
// deduplicating identical vectors across pairs. fit builds the table from
// dataset row identity; this variant serves deserialized models, where row
// identity is lost but equal content still implies equal kernel values.
func (m *SVM) buildSVCache() {
	m.buildClassIndex()
	m.svRows = nil
	seen := make(map[string]int)
	var key []byte
	for i := range m.pairs {
		p := &m.pairs[i]
		p.svID = make([]int, len(p.sol.svX))
		for s, sv := range p.sol.svX {
			key = key[:0]
			for _, v := range sv {
				key = binary.LittleEndian.AppendUint64(key, math.Float64bits(v))
			}
			id, ok := seen[string(key)]
			if !ok {
				id = len(m.svRows)
				m.svRows = append(m.svRows, sv)
				seen[string(key)] = id
			}
			p.svID[s] = id
		}
	}
}

// NumDistinctSupportVectors returns the size of the shared support-vector
// table — the number of kernel evaluations one Scores call costs.
func (m *SVM) NumDistinctSupportVectors() int { return len(m.svRows) }

// NumSupportVectors returns the total support-vector count across pairs.
func (m *SVM) NumSupportVectors() int {
	n := 0
	for _, p := range m.pairs {
		n += len(p.sol.svX)
	}
	return n
}

// BvSBMargin returns the Best-versus-Second-Best margin of clf on x: the gap
// between the highest and second-highest class confidence. Small margins mark
// the most informative points to label next in active learning (Joshi et al.,
// the heuristic cited by the paper).
func BvSBMargin(clf Classifier, x []float64) float64 {
	scores := clf.Scores(x)
	if len(scores) < 2 {
		return math.Inf(1)
	}
	best, second := math.Inf(-1), math.Inf(-1)
	for _, s := range scores {
		if s > best {
			second = best
			best = s
		} else if s > second {
			second = s
		}
	}
	return best - second
}
