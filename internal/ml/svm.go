package ml

import (
	"errors"
	"fmt"
	"math"
)

// Classifier is the interface Nitro's tuner programs against; the paper's
// tuning script exposes the classifier as a pluggable option
// (svm_classifier() by default).
type Classifier interface {
	// Fit trains on the dataset. Feature scaling is the caller's concern.
	Fit(ds *Dataset) error
	// Predict returns the predicted class label of x.
	Predict(x []float64) int
	// Scores returns one confidence per known class, aligned with Classes;
	// higher means more confident. Used by Best-vs-Second-Best selection.
	Scores(x []float64) []float64
	// Classes returns the sorted labels the classifier was trained on.
	Classes() []int
	// Name identifies the classifier kind.
	Name() string
}

// SVM is a multi-class C-SVC with one-vs-one decomposition, mirroring
// libSVM's architecture. The zero value is unusable; construct with NewSVM.
type SVM struct {
	C       float64
	Eps     float64
	MaxIter int
	kernel  Kernel

	classes []int
	pairs   []svmPair
}

type svmPair struct {
	a, b int // class labels; positive decision votes for a
	sol  *smoResult
}

// NewSVM returns an untrained SVM with the given kernel and box constraint.
func NewSVM(k Kernel, c float64) *SVM {
	return &SVM{C: c, Eps: 1e-3, kernel: k}
}

// DefaultSVM returns the paper's default configuration: RBF kernel with
// gamma = 1/dim (set at Fit time if Gamma is zero) and C = 1. Use GridSearch
// to tune (C, gamma) by cross-validation as the paper does.
func DefaultSVM() *SVM { return NewSVM(RBFKernel{}, 1) }

// Kernel returns the (possibly Fit-adjusted) kernel.
func (m *SVM) Kernel() Kernel { return m.kernel }

// Name implements Classifier.
func (m *SVM) Name() string { return "svm" }

// Classes implements Classifier.
func (m *SVM) Classes() []int { return m.classes }

// Fit implements Classifier: it trains k(k-1)/2 binary machines, one per
// unordered pair of classes.
func (m *SVM) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return errors.New("ml: empty training set")
	}
	if rbf, ok := m.kernel.(RBFKernel); ok && rbf.Gamma == 0 {
		rbf.Gamma = 1 / float64(max(ds.Dim(), 1))
		m.kernel = rbf
	}
	m.classes = ds.Classes()
	if len(m.classes) < 1 {
		return errors.New("ml: no classes")
	}
	m.pairs = nil
	if len(m.classes) == 1 {
		return nil // degenerate: always predict the single class
	}
	for i := 0; i < len(m.classes); i++ {
		for j := i + 1; j < len(m.classes); j++ {
			a, b := m.classes[i], m.classes[j]
			var x [][]float64
			var y []float64
			for t, lab := range ds.Y {
				switch lab {
				case a:
					x = append(x, ds.X[t])
					y = append(y, 1)
				case b:
					x = append(x, ds.X[t])
					y = append(y, -1)
				}
			}
			sol, err := solveBinary(x, y, m.kernel, m.C, m.Eps, m.MaxIter)
			if err != nil {
				return fmt.Errorf("ml: pair (%d,%d): %w", a, b, err)
			}
			m.pairs = append(m.pairs, svmPair{a: a, b: b, sol: sol})
		}
	}
	return nil
}

// Predict implements Classifier using pairwise voting with soft-score
// tie-breaking.
func (m *SVM) Predict(x []float64) int {
	if len(m.classes) == 0 {
		return 0
	}
	scores := m.Scores(x)
	best, bestScore := m.classes[0], math.Inf(-1)
	for i, c := range m.classes {
		if scores[i] > bestScore {
			best, bestScore = c, scores[i]
		}
	}
	return best
}

// Scores implements Classifier. Each pairwise decision value d contributes a
// sigmoid-soft vote sigma(d) to the winning class and 1-sigma(d) to the
// loser, which yields the smooth per-class confidences the
// Best-vs-Second-Best heuristic needs.
func (m *SVM) Scores(x []float64) []float64 {
	out := make([]float64, len(m.classes))
	if len(m.classes) == 1 {
		out[0] = 1
		return out
	}
	idx := make(map[int]int, len(m.classes))
	for i, c := range m.classes {
		idx[c] = i
	}
	for _, p := range m.pairs {
		d := p.sol.decision(m.kernel, x)
		s := 1 / (1 + math.Exp(-2*d))
		out[idx[p.a]] += s
		out[idx[p.b]] += 1 - s
	}
	return out
}

// DecisionValues returns the raw pairwise decision values (one per trained
// class pair, in pair order), for diagnostics.
func (m *SVM) DecisionValues(x []float64) []float64 {
	out := make([]float64, len(m.pairs))
	for i, p := range m.pairs {
		out[i] = p.sol.decision(m.kernel, x)
	}
	return out
}

// NumSupportVectors returns the total support-vector count across pairs.
func (m *SVM) NumSupportVectors() int {
	n := 0
	for _, p := range m.pairs {
		n += len(p.sol.svX)
	}
	return n
}

// BvSBMargin returns the Best-versus-Second-Best margin of clf on x: the gap
// between the highest and second-highest class confidence. Small margins mark
// the most informative points to label next in active learning (Joshi et al.,
// the heuristic cited by the paper).
func BvSBMargin(clf Classifier, x []float64) float64 {
	scores := clf.Scores(x)
	if len(scores) < 2 {
		return math.Inf(1)
	}
	best, second := math.Inf(-1), math.Inf(-1)
	for _, s := range scores {
		if s > best {
			second = best
			best = s
		} else if s > second {
			second = s
		}
	}
	return best - second
}
