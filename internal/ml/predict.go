package ml

import (
	"math"
	"sync"
)

// This file is the allocation-free prediction front end of Model: the tiered
// PredictTier entry point (compiled artifact first, exact classifier as the
// fallback) and the batch PredictAll used by core's CallConcurrent. All
// per-call scratch lives in a pooled predictScratch, so the steady-state
// exact path performs zero heap allocations — the remaining cost is the
// scaler pass plus one kernel evaluation per distinct support vector.

// predictScratch holds the per-prediction work buffers: the scaled feature
// vector, the kernel-value cache (one slot per distinct support vector) and
// the per-class score accumulator. Buffers grow monotonically and are reused
// across calls via predictPool.
type predictScratch struct {
	scaled []float64
	kv     []float64
	scores []float64
}

var predictPool = sync.Pool{New: func() any { return new(predictScratch) }}

// growFloats returns buf resized to n, reallocating only when capacity is
// insufficient.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// PredictTier classifies x and reports which tier decided: TierCompiled when
// the distilled artifact answered with margin clearance, TierExact when the
// full classifier ran (no artifact, or the walk landed within the calibrated
// margin of a decision boundary). The compiled tier walks the raw vector
// directly, scaling only the features the path reads — no scratch buffer, no
// pool traffic.
func (m *Model) PredictTier(x []float64) (int, Tier) {
	if c := m.Compiled; c != nil && len(x) == c.Dim {
		if pred, ok := m.predictCompiledLazy(c, x); ok {
			return pred, TierCompiled
		}
	}
	s := predictPool.Get().(*predictScratch)
	pred := m.classifyScratch(m.scaleScratch(x, s), s)
	predictPool.Put(s)
	return pred, TierExact
}

// predictCompiledLazy runs the compiled program over the raw vector, scaling
// each feature as the walk touches it via Scaler.scaleOne — bit-identical to
// transforming the whole vector first, but buffer-free. ok=false routes to
// the exact path (boundary proximity, or a scaler/program dimension skew that
// the exact path will surface the usual way).
func (m *Model) predictCompiledLazy(c *Compiled, x []float64) (int, bool) {
	sc := m.Scaler
	if sc == nil || !sc.Fitted() {
		return c.Predict(x)
	}
	if len(sc.Min) != len(x) {
		return 0, false
	}
	if g := c.Grid; g != nil {
		if ci := gridLookupLazy(g, sc, x); ci >= 0 {
			return c.Classes[ci], true
		}
	}
	margin := math.Inf(1)
	i := 0
	for {
		n := &c.Nodes[i]
		if n.Left < 0 {
			return c.Classes[n.Class], margin >= c.Margin
		}
		d := sc.scaleOne(int(n.Feature), x[n.Feature]) - n.Threshold
		if d <= 0 {
			if -d < margin {
				margin = -d
			}
			i = int(n.Left)
		} else {
			if d < margin {
				margin = d
			}
			i = int(n.Right)
		}
	}
}

// gridLookupLazy is DecisionGrid.lookup with on-the-fly scaling.
func gridLookupLazy(g *DecisionGrid, sc *Scaler, x []float64) int {
	idx := 0
	for j := range x {
		v := sc.scaleOne(j, x[j])
		lo, hi := g.Lo[j], g.Hi[j]
		if v < lo || v >= hi {
			return -1
		}
		cell := int(float64(g.Res) * (v - lo) / (hi - lo))
		if cell >= g.Res { // float round-up at the top edge
			cell = g.Res - 1
		}
		idx = idx*g.Res + cell
	}
	return int(g.Cells[idx])
}

// PredictExact classifies x through the exact classifier, bypassing any
// compiled artifact — the ground truth Distill calibrates against.
func (m *Model) PredictExact(x []float64) int {
	s := predictPool.Get().(*predictScratch)
	pred := m.classifyScratch(m.scaleScratch(x, s), s)
	predictPool.Put(s)
	return pred
}

// PredictAll classifies a batch of feature vectors with one shared scratch —
// the batched path CallConcurrent uses instead of N independent Predicts.
// Nil rows (inputs whose feature evaluation failed) yield pred -1 and
// TierNone. Both returned slices have len(xs).
func (m *Model) PredictAll(xs [][]float64) ([]int, []Tier) {
	preds := make([]int, len(xs))
	tiers := make([]Tier, len(xs))
	s := predictPool.Get().(*predictScratch)
	for i, x := range xs {
		if x == nil {
			preds[i] = -1
			continue
		}
		preds[i], tiers[i] = m.predictTierScratch(x, s)
	}
	predictPool.Put(s)
	return preds, tiers
}

// scaleScratch maps x into the model's scaled feature space using the
// scratch's pooled buffer, or returns x unchanged when no scaler is fitted.
func (m *Model) scaleScratch(x []float64, s *predictScratch) []float64 {
	if m.Scaler == nil || !m.Scaler.Fitted() {
		return x
	}
	s.scaled = growFloats(s.scaled, len(x))
	m.Scaler.TransformInto(s.scaled, x)
	return s.scaled
}

// predictTierScratch is the scratch-threaded core of PredictTier.
func (m *Model) predictTierScratch(x []float64, s *predictScratch) (int, Tier) {
	scaled := m.scaleScratch(x, s)
	if c := m.Compiled; c != nil && len(scaled) == c.Dim {
		if pred, ok := c.Predict(scaled); ok {
			return pred, TierCompiled
		}
	}
	return m.classifyScratch(scaled, s), TierExact
}

// classifyScratch runs the exact classifier on an already-scaled vector. The
// SVM path reuses the scratch's kernel and score buffers (zero allocations);
// other classifiers take their ordinary Predict.
func (m *Model) classifyScratch(scaled []float64, s *predictScratch) int {
	svm, ok := m.Classifier.(*SVM)
	if !ok {
		return m.Classifier.Predict(scaled)
	}
	return svm.predictScratch(scaled, s)
}

// predictScratch is SVM.Predict with caller-provided buffers: identical
// pairwise soft voting and first-maximum argmax, zero allocations.
func (m *SVM) predictScratch(x []float64, s *predictScratch) int {
	if len(m.classes) == 0 {
		return 0
	}
	var kv []float64
	if m.svRows != nil {
		s.kv = growFloats(s.kv, len(m.svRows))
		kv = s.kv
		m.svKernelsInto(x, kv)
	}
	s.scores = growFloats(s.scores, len(m.classes))
	m.scoresInto(x, kv, s.scores)
	best, bestScore := m.classes[0], math.Inf(-1)
	for i, c := range m.classes {
		if s.scores[i] > bestScore {
			best, bestScore = c, s.scores[i]
		}
	}
	return best
}
