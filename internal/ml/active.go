package ml

import (
	"errors"
	"math"
	"math/rand"
)

// ActiveLearner drives Nitro's incremental-tuning mode: starting from a small
// labelled seed set (at least one example per variant label), it iteratively
// picks the unlabelled pool point with the smallest Best-vs-Second-Best
// margin under the current model, asks the oracle (exhaustive variant search)
// for its label, and refits. This trades cheap feature evaluations for
// expensive exhaustive-search labellings, exactly as Section III-B of the
// paper describes.
type ActiveLearner struct {
	// Factory builds a fresh classifier per refit. If nil, DefaultSVM with
	// grid search disabled is used.
	Factory func() Classifier
	// Oracle returns the true label of pool point i; in Nitro it runs every
	// non-vetoed variant on input i and returns the argmin of simulated
	// time. It is the expensive call the learner tries to minimize.
	Oracle func(i int) int
	// Strategy selects the next pool index to label. Defaults to BvSB.
	Strategy QueryStrategy

	labeled *Dataset
	poolX   [][]float64
	poolIdx []int // original indices of remaining pool points
	clf     Classifier
	queries int
}

// QueryStrategy ranks the unlabelled pool; it returns the position (within
// poolX) of the next point to label.
type QueryStrategy interface {
	Next(clf Classifier, poolX [][]float64) int
	Name() string
}

// BvSBStrategy is the paper's Best-vs-Second-Best heuristic: query the point
// whose top-two class confidences are closest.
type BvSBStrategy struct{}

// Next implements QueryStrategy.
func (BvSBStrategy) Next(clf Classifier, poolX [][]float64) int {
	best, bestMargin := 0, math.Inf(1)
	for i, x := range poolX {
		if m := BvSBMargin(clf, x); m < bestMargin {
			best, bestMargin = i, m
		}
	}
	return best
}

// Name implements QueryStrategy.
func (BvSBStrategy) Name() string { return "bvsb" }

// RandomStrategy queries uniformly at random (seeded); it is the ablation
// baseline against BvSB in Fig. 7's analysis.
type RandomStrategy struct{ Rng *rand.Rand }

// Next implements QueryStrategy.
func (s RandomStrategy) Next(_ Classifier, poolX [][]float64) int {
	if s.Rng == nil {
		return 0
	}
	return s.Rng.Intn(len(poolX))
}

// Name implements QueryStrategy.
func (RandomStrategy) Name() string { return "random" }

// NewActiveLearner seeds the learner with labelled examples (seedX/seedY) and
// an unlabelled pool. Pool indices reported to the Oracle refer to positions
// in poolX as passed here.
func NewActiveLearner(seedX [][]float64, seedY []int, poolX [][]float64, oracle func(i int) int) (*ActiveLearner, error) {
	if len(seedX) == 0 {
		return nil, errors.New("ml: active learning needs a non-empty seed set")
	}
	seed, err := NewDataset(seedX, seedY)
	if err != nil {
		return nil, err
	}
	al := &ActiveLearner{
		Factory: func() Classifier { return DefaultSVM() },
		Oracle:  oracle,
		labeled: seed.Clone(),
		poolX:   append([][]float64(nil), poolX...),
	}
	al.poolIdx = make([]int, len(poolX))
	for i := range al.poolIdx {
		al.poolIdx[i] = i
	}
	return al, nil
}

// Refit trains a fresh classifier on the current labelled set.
func (al *ActiveLearner) Refit() error {
	f := al.Factory
	if f == nil {
		f = func() Classifier { return DefaultSVM() }
	}
	clf := f()
	if err := clf.Fit(al.labeled); err != nil {
		return err
	}
	al.clf = clf
	return nil
}

// Step performs one active-learning iteration: pick a pool point, label it
// with the oracle, move it to the labelled set, and refit. It reports whether
// a step was taken (false when the pool is exhausted).
func (al *ActiveLearner) Step() (bool, error) {
	if len(al.poolX) == 0 {
		return false, nil
	}
	if al.clf == nil {
		if err := al.Refit(); err != nil {
			return false, err
		}
	}
	strat := al.Strategy
	if strat == nil {
		strat = BvSBStrategy{}
	}
	p := strat.Next(al.clf, al.poolX)
	if p < 0 || p >= len(al.poolX) {
		return false, errors.New("ml: query strategy returned an out-of-range index")
	}
	x := al.poolX[p]
	orig := al.poolIdx[p]
	y := al.Oracle(orig)
	al.labeled.Append(x, y)
	al.poolX = append(al.poolX[:p], al.poolX[p+1:]...)
	al.poolIdx = append(al.poolIdx[:p], al.poolIdx[p+1:]...)
	al.queries++
	return true, al.Refit()
}

// RunIterations performs up to iters steps (the paper's itune(iter=N) mode)
// and returns the final classifier.
func (al *ActiveLearner) RunIterations(iters int) (Classifier, error) {
	if al.clf == nil {
		if err := al.Refit(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < iters; i++ {
		ok, err := al.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	return al.clf, nil
}

// RunToAccuracy steps until the classifier reaches the target accuracy on the
// validation set (the paper's itune(acc=T) mode, usable when test labels are
// known), or the pool empties, or maxIters is hit. It returns the classifier
// and the number of queries spent.
func (al *ActiveLearner) RunToAccuracy(valid *Dataset, target float64, maxIters int) (Classifier, int, error) {
	if al.clf == nil {
		if err := al.Refit(); err != nil {
			return nil, 0, err
		}
	}
	start := al.queries
	for i := 0; i < maxIters; i++ {
		if Accuracy(al.clf, valid) >= target {
			break
		}
		ok, err := al.Step()
		if err != nil {
			return nil, al.queries - start, err
		}
		if !ok {
			break
		}
	}
	return al.clf, al.queries - start, nil
}

// Classifier returns the current model (nil before the first Refit/Step).
func (al *ActiveLearner) Classifier() Classifier { return al.clf }

// LabeledCount returns the size of the labelled set.
func (al *ActiveLearner) LabeledCount() int { return al.labeled.Len() }

// PoolCount returns the remaining unlabelled pool size.
func (al *ActiveLearner) PoolCount() int { return len(al.poolX) }

// Queries returns how many oracle labellings have been spent.
func (al *ActiveLearner) Queries() int { return al.queries }
