package ml

import (
	"errors"
	"fmt"
	"math"
)

// Tier identifies which dispatch tier produced a prediction. The deployment
// runtime routes every selection through a tier ladder — memo cache, compiled
// artifact, exact classifier — and records which rung decided, so traces and
// stats can attribute latency and verify the fast paths stay honest.
type Tier int32

const (
	// TierNone means no prediction was made (no model installed).
	TierNone Tier = iota
	// TierExact means the full classifier (scaler + SVM/kNN/tree/logistic)
	// was evaluated.
	TierExact
	// TierCompiled means the distilled compiled artifact decided, with margin
	// clearance from every decision boundary it crossed.
	TierCompiled
	// TierMemo means the runtime's memoization cache returned a previously
	// computed prediction for an identical feature vector.
	TierMemo
)

// String implements fmt.Stringer. TierNone renders empty so trace lines and
// JSON can omit the field when no model participated.
func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierCompiled:
		return "compiled"
	case TierMemo:
		return "memo"
	default:
		return ""
	}
}

// CompiledNode is one instruction of the flattened decision program. Internal
// nodes compare scaled[Feature] <= Threshold and jump to Left or Right; leaves
// (Left < 0) return Classes[Class]. Child indices always point forward
// (strictly greater than the node's own index), so a validated program cannot
// loop — every walk terminates in at most len(Nodes) steps.
type CompiledNode struct {
	Feature   int32   `json:"f"`
	Left      int32   `json:"l"`
	Right     int32   `json:"r"`
	Class     int32   `json:"c"`
	Threshold float64 `json:"t"`
}

// Compiled is the distilled fast-dispatch artifact: a flattened
// threshold-comparison program over the scaled feature space, distilled from
// the exact model's own labels (see Distill), plus calibration metadata. A
// walk that passes within Margin of any split boundary it evaluates reports
// ok=false and the caller must consult the exact model — by construction the
// calibrated Margin routes every distillation-corpus disagreement to the
// exact path, so served agreement on that corpus is 100%.
type Compiled struct {
	// Nodes is the decision program; Nodes[0] is the root.
	Nodes []CompiledNode `json:"nodes"`
	// Classes are the labels leaf Class indices resolve to.
	Classes []int `json:"classes"`
	// Dim is the scaled feature dimensionality the program expects.
	Dim int `json:"dim"`
	// Margin is the calibrated boundary-clearance threshold (scaled space).
	Margin float64 `json:"margin"`
	// Agreement is the raw tree-vs-exact agreement over the distillation
	// corpus, before margin routing (the >= MinAgreement install gate).
	Agreement float64 `json:"agreement"`
	// FallbackRate is the corpus fraction whose walk margin fell below
	// Margin and would be routed to the exact model.
	FallbackRate float64 `json:"fallback_rate"`
	// CorpusSize is the number of corpus vectors the artifact was distilled
	// and calibrated on.
	CorpusSize int `json:"corpus_size"`
	// Grid is the optional precomputed decision grid (nil when disabled).
	Grid *DecisionGrid `json:"grid,omitempty"`
}

// DecisionGrid is an optional precomputed lookup over a bounded box of the
// scaled feature space. Each cell stores the class index the whole cell maps
// to with at least Margin clearance at every split, or -1 when any point of
// the cell could land near a boundary (those take the tree walk instead).
type DecisionGrid struct {
	// Res is the number of cells per dimension.
	Res int `json:"res"`
	// Lo / Hi are the box corners, one per dimension.
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
	// Cells is the row-major cell table, len Res^dim; values index
	// Compiled.Classes, -1 marks walk-required cells.
	Cells []int8 `json:"cells"`
}

// DistillOptions configures Distill. The zero value is usable: depth-8 CART,
// 99% agreement gate, 50% fallback-rate cap, no grid.
type DistillOptions struct {
	// MaxDepth bounds the CART tree depth (default 8).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// MinAgreement is the install gate: raw tree-vs-exact agreement on the
	// corpus must be at least this (default 0.99).
	MinAgreement float64
	// MaxFallbackRate rejects artifacts whose calibrated margin routes more
	// than this corpus fraction to the exact model (default 0.5) — a fast
	// path nobody hits is not a fast path.
	MaxFallbackRate float64
	// Grid additionally precomputes a decision grid when the feature space is
	// low-dimensional (Dim <= 3).
	Grid bool
	// GridRes is the grid resolution per dimension (default 24).
	GridRes int
}

// DefaultDistillOptions returns the zero value with defaults filled — the
// configuration Distill actually runs with when given DistillOptions{}.
func DefaultDistillOptions() DistillOptions {
	return DistillOptions{}.normalized()
}

// normalized fills defaults.
func (o DistillOptions) normalized() DistillOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 1
	}
	if o.MinAgreement <= 0 {
		o.MinAgreement = 0.99
	}
	if o.MaxFallbackRate <= 0 {
		o.MaxFallbackRate = 0.5
	}
	if o.GridRes <= 0 {
		o.GridRes = 24
	}
	return o
}

// ErrDistillRejected reports that distillation produced an artifact that
// failed an install gate (agreement or fallback rate); the model keeps its
// exact-only dispatch.
var ErrDistillRejected = errors.New("ml: distilled artifact rejected")

// maxGridDim bounds grid dimensionality: cells grow as Res^dim.
const maxGridDim = 3

// gridPad widens the grid box past the corpus extremes (scaled space) so
// mildly extrapolated inputs still hit the grid.
const gridPad = 0.1

// Predict walks the compiled program over a scaled feature vector and returns
// the predicted class label plus ok=true when the walk kept at least Margin
// clearance from every boundary it evaluated. ok=false means the caller must
// fall back to the exact model. x must have length Dim.
func (c *Compiled) Predict(x []float64) (int, bool) {
	if g := c.Grid; g != nil {
		if ci := g.lookup(x); ci >= 0 {
			return c.Classes[ci], true
		}
	}
	class, margin := c.walk(x)
	return class, margin >= c.Margin
}

// walk runs the decision program and returns the leaf's class label and the
// minimum boundary distance along the path (+Inf for a single-leaf program).
func (c *Compiled) walk(x []float64) (class int, margin float64) {
	margin = math.Inf(1)
	i := 0
	for {
		n := &c.Nodes[i]
		if n.Left < 0 {
			return c.Classes[n.Class], margin
		}
		d := x[n.Feature] - n.Threshold
		if d <= 0 {
			if -d < margin {
				margin = -d
			}
			i = int(n.Left)
		} else {
			if d < margin {
				margin = d
			}
			i = int(n.Right)
		}
	}
}

// lookup maps x to its cell's class index, or -1 when x falls outside the box
// or in a walk-required cell.
func (g *DecisionGrid) lookup(x []float64) int {
	idx := 0
	for j, v := range x {
		lo, hi := g.Lo[j], g.Hi[j]
		if v < lo || v >= hi {
			return -1
		}
		cell := int(float64(g.Res) * (v - lo) / (hi - lo))
		if cell >= g.Res { // float round-up at the top edge
			cell = g.Res - 1
		}
		idx = idx*g.Res + cell
	}
	return int(g.Cells[idx])
}

// Validate checks structural integrity: every child edge points forward and
// in range (so walks terminate), every feature and class index resolves, and
// calibration metadata is sane. Deserialized artifacts must pass Validate
// before use — UnmarshalModel enforces this.
func (c *Compiled) Validate() error {
	if len(c.Nodes) == 0 {
		return errors.New("ml: compiled artifact has no nodes")
	}
	if c.Dim < 1 {
		return fmt.Errorf("ml: compiled artifact dim %d < 1", c.Dim)
	}
	if len(c.Classes) == 0 {
		return errors.New("ml: compiled artifact has no classes")
	}
	if math.IsNaN(c.Margin) || math.IsInf(c.Margin, 0) || c.Margin < 0 {
		return fmt.Errorf("ml: compiled artifact margin %v invalid", c.Margin)
	}
	if math.IsNaN(c.Agreement) || c.Agreement < 0 || c.Agreement > 1 {
		return fmt.Errorf("ml: compiled artifact agreement %v invalid", c.Agreement)
	}
	if math.IsNaN(c.FallbackRate) || c.FallbackRate < 0 || c.FallbackRate > 1 {
		return fmt.Errorf("ml: compiled artifact fallback rate %v invalid", c.FallbackRate)
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Left < 0 { // leaf
			if n.Class < 0 || int(n.Class) >= len(c.Classes) {
				return fmt.Errorf("ml: compiled node %d: class index %d out of range", i, n.Class)
			}
			continue
		}
		if n.Feature < 0 || int(n.Feature) >= c.Dim {
			return fmt.Errorf("ml: compiled node %d: feature %d out of range", i, n.Feature)
		}
		if int(n.Left) <= i || int(n.Left) >= len(c.Nodes) {
			return fmt.Errorf("ml: compiled node %d: left child %d is not a forward edge", i, n.Left)
		}
		if n.Right <= int32(i) || int(n.Right) >= len(c.Nodes) {
			return fmt.Errorf("ml: compiled node %d: right child %d is not a forward edge", i, n.Right)
		}
		if math.IsNaN(n.Threshold) {
			return fmt.Errorf("ml: compiled node %d: NaN threshold", i)
		}
	}
	if g := c.Grid; g != nil {
		if g.Res < 1 || g.Res > 1024 {
			return fmt.Errorf("ml: decision grid res %d out of range", g.Res)
		}
		if len(g.Lo) != c.Dim || len(g.Hi) != c.Dim {
			return fmt.Errorf("ml: decision grid corners have %d/%d dims, want %d", len(g.Lo), len(g.Hi), c.Dim)
		}
		cells := 1
		for j := 0; j < c.Dim; j++ {
			if !(g.Lo[j] < g.Hi[j]) { // also rejects NaN
				return fmt.Errorf("ml: decision grid dim %d: lo %v >= hi %v", j, g.Lo[j], g.Hi[j])
			}
			if cells > len(g.Cells) { // overflow guard before multiply
				return errors.New("ml: decision grid cell table too small")
			}
			cells *= g.Res
		}
		if len(g.Cells) != cells {
			return fmt.Errorf("ml: decision grid has %d cells, want %d", len(g.Cells), cells)
		}
		for i, ci := range g.Cells {
			if ci < -1 || int(ci) >= len(c.Classes) {
				return fmt.Errorf("ml: decision grid cell %d: class index %d out of range", i, ci)
			}
		}
	}
	return nil
}

// Depth returns the longest root-to-leaf path length (edges) of the program.
func (c *Compiled) Depth() int {
	if len(c.Nodes) == 0 {
		return 0
	}
	depth := make([]int, len(c.Nodes))
	best := 0
	// Children are forward edges, so one forward sweep settles all depths.
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Left < 0 {
			continue
		}
		for _, ch := range [2]int32{n.Left, n.Right} {
			if d := depth[i] + 1; d > depth[ch] {
				depth[ch] = d
				if d > best {
					best = d
				}
			}
		}
	}
	return best
}

// Distill fits a shallow CART tree on model's own labels over the (raw)
// corpus, flattens it into a Compiled program over the scaled feature space,
// calibrates the fallback margin so every corpus point the tree mislabels is
// routed back to the exact model, and gates installation on raw agreement and
// fallback rate. It returns the artifact without mutating model; callers
// install it by setting model.Compiled.
//
// The corpus should be the training set (or observation window) the model was
// fitted on — the same distribution the artifact will serve.
func Distill(model *Model, corpus [][]float64, opts DistillOptions) (*Compiled, error) {
	if model == nil || model.Classifier == nil {
		return nil, errors.New("ml: distill: nil model")
	}
	if len(corpus) == 0 {
		return nil, errors.New("ml: distill: empty corpus")
	}
	opts = opts.normalized()
	dim := len(corpus[0])
	if dim == 0 {
		return nil, errors.New("ml: distill: zero-dimensional corpus")
	}

	// Label the corpus with the exact model and scale it into the space the
	// artifact will run in.
	scaled := make([][]float64, len(corpus))
	labels := make([]int, len(corpus))
	for i, x := range corpus {
		if len(x) != dim {
			return nil, fmt.Errorf("ml: distill: corpus row %d has %d features, want %d", i, len(x), dim)
		}
		labels[i] = model.PredictExact(x)
		if model.Scaler != nil && model.Scaler.Fitted() {
			scaled[i] = model.Scaler.Transform(x)
		} else {
			scaled[i] = append([]float64(nil), x...)
		}
	}

	tree := NewDecisionTree(opts.MaxDepth, opts.MinLeaf)
	if err := tree.Fit(&Dataset{X: scaled, Y: labels}); err != nil {
		return nil, fmt.Errorf("ml: distill: %w", err)
	}

	c := &Compiled{
		Nodes:      flattenTree(tree),
		Classes:    append([]int(nil), tree.Classes()...),
		Dim:        dim,
		CorpusSize: len(corpus),
	}

	// Calibrate: the margin must exceed the walk margin of every corpus
	// disagreement, so each one reports ok=false and takes the exact path.
	agree := 0
	maxBadMargin := 0.0
	margins := make([]float64, len(scaled))
	for i, x := range scaled {
		class, margin := c.walk(x)
		margins[i] = margin
		if class == labels[i] {
			agree++
		} else if margin > maxBadMargin {
			maxBadMargin = margin
		}
	}
	c.Agreement = float64(agree) / float64(len(scaled))
	if c.Agreement < opts.MinAgreement {
		return nil, fmt.Errorf("%w: agreement %.4f < %.4f on %d-point corpus",
			ErrDistillRejected, c.Agreement, opts.MinAgreement, len(scaled))
	}
	c.Margin = math.Nextafter(maxBadMargin, math.Inf(1))
	if math.IsInf(c.Margin, 1) {
		// A disagreement sits on an infinite-margin path (degenerate program,
		// e.g. a single leaf): no finite margin can route it to the exact
		// model, so the artifact cannot be made safe.
		return nil, fmt.Errorf("%w: no finite margin routes corpus disagreements to the exact path",
			ErrDistillRejected)
	}
	fallbacks := 0
	for _, m := range margins {
		if m < c.Margin {
			fallbacks++
		}
	}
	c.FallbackRate = float64(fallbacks) / float64(len(scaled))
	if c.FallbackRate > opts.MaxFallbackRate {
		return nil, fmt.Errorf("%w: calibrated margin %.4g routes %.1f%% of corpus to exact path (cap %.1f%%)",
			ErrDistillRejected, c.Margin, 100*c.FallbackRate, 100*opts.MaxFallbackRate)
	}

	if opts.Grid && dim <= maxGridDim {
		c.Grid = buildGrid(c, scaled, opts.GridRes)
	}
	return c, nil
}

// flattenTree lowers a fitted CART tree into the forward-edge node array.
// Leaf class indices follow DecisionTree.Predict's argmax (first maximum
// wins), so the flattened program is decision-identical to the tree.
func flattenTree(t *DecisionTree) []CompiledNode {
	var nodes []CompiledNode
	var emit func(n *treeNode) int32
	emit = func(n *treeNode) int32 {
		id := int32(len(nodes))
		nodes = append(nodes, CompiledNode{Left: -1, Right: -1, Class: -1})
		if n.Left == nil { // leaf: same first-maximum argmax as DecisionTree.Predict
			best, bestC := 0, math.Inf(-1)
			for i, cnt := range n.Counts {
				if cnt > bestC {
					best, bestC = i, cnt
				}
			}
			nodes[id].Class = int32(best)
			return id
		}
		nodes[id].Feature = int32(n.Feature)
		nodes[id].Threshold = n.Threshold
		nodes[id].Left = emit(n.Left)
		nodes[id].Right = emit(n.Right)
		return id
	}
	emit(t.root)
	return nodes
}

// buildGrid precomputes the decision grid over a padded bounding box of the
// corpus. Each cell is resolved by a cell-aware walk: descend only while the
// whole cell range lies at least Margin clear of the split threshold; any
// ambiguity marks the cell walk-required (-1), so a grid hit is exactly
// equivalent to a confident tree walk.
func buildGrid(c *Compiled, corpus [][]float64, res int) *DecisionGrid {
	if len(c.Classes) > 127 { // cells are int8
		return nil
	}
	dim := c.Dim
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := 0; j < dim; j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for _, x := range corpus {
		for j, v := range x {
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
	}
	for j := 0; j < dim; j++ {
		lo[j] -= gridPad
		hi[j] += gridPad
		if !(lo[j] < hi[j]) {
			return nil
		}
	}
	cells := 1
	for j := 0; j < dim; j++ {
		cells *= res
	}
	g := &DecisionGrid{Res: res, Lo: lo, Hi: hi, Cells: make([]int8, cells)}
	cellLo := make([]float64, dim)
	cellHi := make([]float64, dim)
	for idx := 0; idx < cells; idx++ {
		rem := idx
		for j := dim - 1; j >= 0; j-- {
			cell := rem % res
			rem /= res
			span := (hi[j] - lo[j]) / float64(res)
			cellLo[j] = lo[j] + float64(cell)*span
			cellHi[j] = cellLo[j] + span
		}
		g.Cells[idx] = int8(cellClass(c, cellLo, cellHi))
	}
	return g
}

// cellClass resolves the class index an axis-aligned cell maps to with Margin
// clearance at every split on its path, or -1 when the cell straddles (or
// comes within Margin of) any boundary.
func cellClass(c *Compiled, lo, hi []float64) int {
	i := 0
	for {
		n := &c.Nodes[i]
		if n.Left < 0 {
			return int(n.Class)
		}
		f := n.Feature
		switch {
		case hi[f] <= n.Threshold-c.Margin:
			// Every x in the cell has threshold - x[f] >= margin: safe left.
			i = int(n.Left)
		case lo[f] > n.Threshold+c.Margin:
			i = int(n.Right)
		default:
			return -1
		}
	}
}
