package ml

import (
	"errors"
	"math"
)

// smoResult is the solution of one binary C-SVC problem: the dual
// coefficients alpha_i * y_i for the support vectors and the bias rho, with
// decision(x) = sum_i coef_i K(sv_i, x) - rho. svIdx records each support
// vector's position in the training-row slice passed to the solver, so
// callers holding a precomputed kernel matrix can map support vectors back
// to cached rows without pointer comparisons.
type smoResult struct {
	svX    [][]float64
	svCoef []float64
	svIdx  []int
	rho    float64
	iters  int
}

// solveBinary trains a binary C-SVC with the maximal-violating-pair SMO
// solver (the working-set selection used by libSVM's Solver). x holds the
// feature vectors, y the labels in {-1, +1}, c the box constraint, eps the
// KKT-violation stopping tolerance.
func solveBinary(x [][]float64, y []float64, k Kernel, c, eps float64, maxIter int) (*smoResult, error) {
	if len(x) == 0 {
		return nil, errors.New("ml: empty binary problem")
	}
	// Precompute the kernel matrix: Nitro training sets are small (tens to
	// hundreds of examples), so a dense cache is both fastest and simplest.
	return solveBinaryKM(x, y, kernelMatrix(x, k), c, eps, maxIter)
}

// solveBinaryKM is solveBinary with the dense kernel matrix km (km[i][j] =
// K(x[i], x[j])) supplied by the caller. The gamma-keyed kernel cache used by
// the grid search computes the Gram matrix of the full training set once per
// gamma and feeds index-subset gathers of it through this entry point, so
// cached and direct training are bit-identical by construction.
func solveBinaryKM(x [][]float64, y []float64, km [][]float64, c, eps float64, maxIter int) (*smoResult, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("ml: empty binary problem")
	}
	if len(y) != n {
		return nil, errors.New("ml: label/row mismatch")
	}
	if len(km) != n {
		return nil, errors.New("ml: kernel matrix/row mismatch")
	}
	if c <= 0 {
		return nil, errors.New("ml: C must be positive")
	}
	if eps <= 0 {
		eps = 1e-3
	}
	if maxIter <= 0 {
		maxIter = 10000 * n
		if maxIter < 1_000_000 {
			maxIter = 1_000_000
		}
	}

	alpha := make([]float64, n)
	// Gradient of the dual objective: G_i = (Q alpha)_i - 1, Q_ij = y_i y_j K_ij.
	grad := make([]float64, n)
	for i := range grad {
		grad[i] = -1
	}

	const tau = 1e-12
	iters := 0
	for ; iters < maxIter; iters++ {
		// Working-set selection: maximal violating pair.
		i, j := -1, -1
		gmax, gmin := math.Inf(-1), math.Inf(1)
		for t := 0; t < n; t++ {
			if (y[t] > 0 && alpha[t] < c) || (y[t] < 0 && alpha[t] > 0) {
				if v := -y[t] * grad[t]; v > gmax {
					gmax, i = v, t
				}
			}
		}
		for t := 0; t < n; t++ {
			if (y[t] < 0 && alpha[t] < c) || (y[t] > 0 && alpha[t] > 0) {
				if v := -y[t] * grad[t]; v < gmin {
					gmin, j = v, t
				}
			}
		}
		if i < 0 || j < 0 || gmax-gmin < eps {
			break
		}

		oldAi, oldAj := alpha[i], alpha[j]
		if y[i] != y[j] {
			// Quadratic coefficient along the update direction: with
			// Q_ij = y_i y_j K_ij, both label cases reduce to
			// K_ii + K_jj - 2 K_ij (libSVM's quad_coef).
			quad := km[i][i] + km[j][j] - 2*km[i][j]
			if quad <= 0 {
				quad = tau
			}
			delta := (-grad[i] - grad[j]) / quad
			diff := alpha[i] - alpha[j]
			alpha[i] += delta
			alpha[j] += delta
			if diff > 0 && alpha[j] < 0 {
				alpha[j] = 0
				alpha[i] = diff
			} else if diff <= 0 && alpha[i] < 0 {
				alpha[i] = 0
				alpha[j] = -diff
			}
			if diff > 0 && alpha[i] > c {
				alpha[i] = c
				alpha[j] = c - diff
			} else if diff <= 0 && alpha[j] > c {
				alpha[j] = c
				alpha[i] = c + diff
			}
		} else {
			quad := km[i][i] + km[j][j] - 2*km[i][j]
			if quad <= 0 {
				quad = tau
			}
			delta := (grad[i] - grad[j]) / quad
			sum := alpha[i] + alpha[j]
			alpha[i] -= delta
			alpha[j] += delta
			if sum > c {
				if alpha[i] > c {
					alpha[i] = c
					alpha[j] = sum - c
				} else if alpha[j] > c {
					alpha[j] = c
					alpha[i] = sum - c
				}
			} else {
				if alpha[j] < 0 {
					alpha[j] = 0
					alpha[i] = sum
				} else if alpha[i] < 0 {
					alpha[i] = 0
					alpha[j] = sum
				}
			}
		}

		dAi, dAj := alpha[i]-oldAi, alpha[j]-oldAj
		if dAi == 0 && dAj == 0 {
			break // numerical fixpoint; avoid spinning
		}
		for t := 0; t < n; t++ {
			grad[t] += y[t] * (y[i]*km[t][i]*dAi + y[j]*km[t][j]*dAj)
		}
	}

	// rho: midpoint of the violating-pair bounds, averaged over free
	// support vectors when any exist (libSVM's calculate_rho).
	var rho float64
	nFree := 0
	var sumFree float64
	ub, lb := math.Inf(1), math.Inf(-1)
	for t := 0; t < n; t++ {
		yg := y[t] * grad[t]
		switch {
		case alpha[t] > 0 && alpha[t] < c:
			nFree++
			sumFree += yg
		case (y[t] > 0 && alpha[t] == 0) || (y[t] < 0 && alpha[t] == c):
			if yg < ub {
				ub = yg
			}
		default:
			if yg > lb {
				lb = yg
			}
		}
	}
	if nFree > 0 {
		rho = sumFree / float64(nFree)
	} else {
		rho = (ub + lb) / 2
	}

	res := &smoResult{rho: rho, iters: iters}
	for t := 0; t < n; t++ {
		if alpha[t] > 1e-12 {
			res.svX = append(res.svX, x[t])
			res.svCoef = append(res.svCoef, alpha[t]*y[t])
			res.svIdx = append(res.svIdx, t)
		}
	}
	return res, nil
}

// decision evaluates sum_i coef_i K(sv_i, x) - rho.
func (r *smoResult) decision(k Kernel, x []float64) float64 {
	var s float64
	for i, sv := range r.svX {
		s += r.svCoef[i] * k.Eval(sv, x)
	}
	return s - r.rho
}
