package ml

// Concurrency audit for the deployment predict path (see SVM.svRows): a
// fitted model's Scores/Predict/DecisionValues must be safe — and
// bit-identical to serial — under unlimited concurrent callers, including
// models that went through a serialize/deserialize round trip (whose
// support-vector cache is rebuilt by content). core.CodeVariant's lock-free
// hot path depends on this property.

import (
	"reflect"
	"sync"
	"testing"
)

func TestSVMConcurrentPredictDeterministic(t *testing.T) {
	ds := blobs(120, 3, 4, 0.9, 11)
	scaler := &Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	train := &Dataset{X: scaled, Y: ds.Y}
	svm := NewSVM(RBFKernel{Gamma: 0.5}, 8)
	if err := svm.Fit(train); err != nil {
		t.Fatal(err)
	}

	// A deserialized twin exercises the content-keyed SV cache rebuild path.
	blob, err := MarshalModel(&Model{Classifier: svm, Scaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}

	probe := blobs(80, 3, 4, 1.3, 12)
	type ref struct {
		pred   int
		scores []float64
		decs   []float64
	}
	want := make([]ref, len(probe.X))
	for i, x := range probe.X {
		xs := scaler.Transform(x)
		want[i] = ref{pred: svm.Predict(xs), scores: svm.Scores(xs), decs: svm.DecisionValues(xs)}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, x := range probe.X {
				xs := scaler.Transform(x)
				if p := svm.Predict(xs); p != want[i].pred {
					t.Errorf("g%d probe %d: concurrent Predict %d != serial %d", g, i, p, want[i].pred)
					return
				}
				if s := svm.Scores(xs); !reflect.DeepEqual(s, want[i].scores) {
					t.Errorf("g%d probe %d: concurrent Scores differ", g, i)
					return
				}
				if d := svm.DecisionValues(xs); !reflect.DeepEqual(d, want[i].decs) {
					t.Errorf("g%d probe %d: concurrent DecisionValues differ", g, i)
					return
				}
				// The deserialized model (shared Scaler via Model.Predict on
				// the raw vector) must agree under the same concurrency.
				if p := reloaded.Predict(x); p != want[i].pred {
					t.Errorf("g%d probe %d: reloaded concurrent Predict %d != %d", g, i, p, want[i].pred)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
