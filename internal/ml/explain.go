package ml

import "math"

// Explanation is the full story of one model decision: everything the
// selection engine computed between "here is a feature vector" and "dispatch
// variant k". It is the payload behind `nitro-model -explain` and the
// model-side half of a core DecisionTrace; both surfaces promise that the
// explanation reproduces the exact choice Call would make, so every field is
// derived from the same code paths dispatch uses (Scores, RankedClasses,
// Predict) rather than a parallel re-implementation.
type Explanation struct {
	// Raw is the feature vector as passed in (copied; safe to retain).
	Raw []float64 `json:"raw"`
	// Scaled is the vector after the model's scaler mapped it into the
	// training range ([-1,1] per the paper); nil when no fitted scaler is
	// installed.
	Scaled []float64 `json:"scaled,omitempty"`
	// Classes lists the known class labels; Scores is aligned with it.
	Classes []int     `json:"classes"`
	Scores  []float64 `json:"scores"`
	// PairDecisions holds the raw one-vs-one decision values (pair order,
	// aligned with PairClasses) when the classifier is an SVM; nil otherwise.
	PairDecisions []float64 `json:"pair_decisions,omitempty"`
	// PairClasses lists the class-label pair behind each decision value;
	// a positive decision votes for the first label of the pair.
	PairClasses [][2]int `json:"pair_classes,omitempty"`
	// Ranked is the exact model's full preference order, best first — the
	// failure fallback chain fault-tolerant dispatch walks. Ranked[0] ==
	// Predicted whenever the exact tier decided; with a compiled artifact
	// installed the two may (rarely, off-corpus) differ, since Predicted then
	// follows the distilled program while Ranked stays the exact ranking the
	// fallback walk uses.
	Ranked []int `json:"ranked"`
	// Predicted is the model's class prediction (identical to Predict(x)).
	Predicted int `json:"predicted"`
	// Version is the stamped model generation (0 when unstamped).
	Version int `json:"version"`
	// Tier names the dispatch tier that produced Predicted ("compiled" when
	// the distilled artifact answered with margin clearance, else "exact").
	Tier string `json:"tier,omitempty"`
	// CompiledMargin is the compiled walk's minimum boundary distance in
	// scaled space, and CompiledThreshold the calibrated fallback cutoff it
	// is compared against; both zero when no artifact is installed.
	CompiledMargin    float64 `json:"compiled_margin,omitempty"`
	CompiledThreshold float64 `json:"compiled_threshold,omitempty"`
	// Confidence is the model's calibrated estimate that Predicted names the
	// truly fastest variant (see Model.Confidence).
	Confidence float64 `json:"confidence"`
	// Ensemble details the committee vote when the classifier is an ensemble;
	// nil for single models.
	Ensemble *EnsembleExplanation `json:"ensemble,omitempty"`
}

// EnsembleExplanation is the committee-level half of an ensemble decision:
// who voted for what, with what weight, and how much weighted agreement the
// winning class collected.
type EnsembleExplanation struct {
	// Members lists each committee member's name, normalized vote weight and
	// individual prediction on this input.
	Members []EnsembleMemberVote `json:"members"`
	// Agreement is the weight share of members that voted with the committee
	// (the raw signal behind the calibrated Confidence).
	Agreement float64 `json:"agreement"`
}

// EnsembleMemberVote is one member's contribution to an ensemble decision.
type EnsembleMemberVote struct {
	Name      string  `json:"name"`
	Weight    float64 `json:"weight"`
	Predicted int     `json:"predicted"`
}

// PairClasses returns the class-label pair of every trained one-vs-one
// machine, in the same order DecisionValues reports decision values. The
// positive side of pair i's decision votes for PairClasses()[i][0].
func (m *SVM) PairClasses() [][2]int {
	out := make([][2]int, len(m.pairs))
	for i := range m.pairs {
		out[i] = [2]int{m.pairs[i].a, m.pairs[i].b}
	}
	return out
}

// Explain runs one prediction and captures every intermediate the selection
// engine would see: the scaled vector, per-class confidences, the ranked
// preference order and (for SVMs) the raw pairwise decision values. The
// returned explanation owns its slices.
//
// Contract: Explain(x).Predicted == Predict(x) and Explain(x).Ranked is
// exactly RankedClasses(x) — the explanation is computed by the same
// functions, not a reimplementation, so it can never drift from dispatch.
func (m *Model) Explain(x []float64) Explanation {
	ex := Explanation{
		Raw:     append([]float64(nil), x...),
		Version: m.Version(),
	}
	scaled := x
	if m.Scaler != nil && m.Scaler.Fitted() {
		scaled = m.Scaler.Transform(x)
		ex.Scaled = append([]float64(nil), scaled...)
	}
	ex.Classes = append([]int(nil), m.Classifier.Classes()...)
	ex.Scores = m.Classifier.Scores(scaled)
	if svm, ok := m.Classifier.(*SVM); ok {
		ex.PairDecisions = svm.DecisionValues(scaled)
		ex.PairClasses = svm.PairClasses()
	}
	ex.Confidence = m.Confidence(x)
	if e, ok := m.Classifier.(*Ensemble); ok {
		ee := &EnsembleExplanation{Agreement: e.Agreement(scaled)}
		for mi, member := range e.Members() {
			ee.Members = append(ee.Members, EnsembleMemberVote{
				Name:      member.Name(),
				Weight:    e.memberWeight(mi),
				Predicted: member.Predict(scaled),
			})
		}
		ex.Ensemble = ee
	}
	ex.Ranked = m.RankedClasses(x)
	pred, tier := m.PredictTier(x)
	ex.Predicted = pred
	ex.Tier = tier.String()
	if c := m.Compiled; c != nil && len(scaled) == c.Dim {
		_, margin := c.walk(scaled)
		if !math.IsInf(margin, 0) {
			ex.CompiledMargin = margin
		}
		ex.CompiledThreshold = c.Margin
	}
	return ex
}
