package ml

import (
	"math"
	"testing"
)

func TestLogisticBinary(t *testing.T) {
	ds := blobs(80, 2, 2, 0.4, 1)
	var s Scaler
	scaled, err := s.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	m := NewLogistic(0, 0, 0)
	if err := m.Fit(&Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, &Dataset{X: scaled, Y: ds.Y}); acc < 0.95 {
		t.Errorf("logistic binary accuracy %v", acc)
	}
}

func TestLogisticMulticlassProbabilities(t *testing.T) {
	ds := blobs(150, 4, 3, 0.5, 2)
	var s Scaler
	scaled, _ := s.FitTransform(ds.X)
	sds := &Dataset{X: scaled, Y: ds.Y}
	m := NewLogistic(0, 0, 800)
	if err := m.Fit(sds); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, sds); acc < 0.9 {
		t.Errorf("multiclass accuracy %v", acc)
	}
	for i := 0; i < 20; i++ {
		p := m.Scores(scaled[i])
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestLogisticSingleClassAndErrors(t *testing.T) {
	m := NewLogistic(0, 0, 10)
	if err := m.Fit(&Dataset{}); err == nil {
		t.Error("empty fit accepted")
	}
	one := &Dataset{X: [][]float64{{1}, {2}}, Y: []int{3, 3}}
	if err := m.Fit(one); err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{9}) != 3 {
		t.Error("single-class predict wrong")
	}
	if s := m.Scores([]float64{9}); s[0] != 1 {
		t.Errorf("single-class score = %v", s)
	}
}

func TestLogisticSerializationRoundTrip(t *testing.T) {
	ds := blobs(60, 3, 2, 0.4, 3)
	var s Scaler
	scaled, _ := s.FitTransform(ds.X)
	m := NewLogistic(0, 0, 300)
	if err := m.Fit(&Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	model := &Model{Classifier: m, Scaler: &s}
	data, err := MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.X {
		if model.Predict(ds.X[i]) != back.Predict(ds.X[i]) {
			t.Fatalf("round trip changed prediction at %d", i)
		}
	}
}

func TestConfusionMatrix(t *testing.T) {
	train := blobs(90, 3, 2, 0.4, 4)
	m := NewKNN(3)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	test := blobs(60, 3, 2, 0.4, 5)
	cm := ConfusionMatrix(m, test)
	if len(cm.Classes) != 3 {
		t.Fatalf("classes = %v", cm.Classes)
	}
	if math.Abs(cm.Accuracy()-Accuracy(m, test)) > 1e-12 {
		t.Errorf("confusion accuracy %v vs direct %v", cm.Accuracy(), Accuracy(m, test))
	}
	total := 0
	for i := range cm.Counts {
		for _, v := range cm.Counts[i] {
			total += v
		}
	}
	if total != test.Len() {
		t.Errorf("counts sum to %d, want %d", total, test.Len())
	}
	rec := cm.Recall()
	for i, r := range rec {
		if r < 0 || r > 1 {
			t.Errorf("recall[%d] = %v", i, r)
		}
	}
	if (Confusion{}).Accuracy() != 0 {
		t.Error("empty confusion accuracy should be 0")
	}
}

func TestConfusionMatrixUnknownTestLabel(t *testing.T) {
	train := &Dataset{X: [][]float64{{0}, {1}}, Y: []int{0, 1}}
	m := NewKNN(1)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	test := &Dataset{X: [][]float64{{0}, {5}}, Y: []int{0, 7}} // label 7 unseen
	cm := ConfusionMatrix(m, test)
	if len(cm.Classes) != 3 {
		t.Fatalf("unseen label not included: %v", cm.Classes)
	}
}
