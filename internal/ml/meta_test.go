package ml

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fitTinySVM returns a fitted two-class SVM + scaler for serializer tests.
func fitTinySVM(tb testing.TB) (*SVM, *Scaler) {
	tb.Helper()
	ds := &Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		ds.Append([]float64{x, 9 - x}, label)
	}
	scaler := &Scaler{}
	scaledX, err := scaler.FitTransform(ds.X)
	if err != nil {
		tb.Fatal(err)
	}
	svm := NewSVM(RBFKernel{Gamma: 0.5}, 4)
	if err := svm.Fit(&Dataset{X: scaledX, Y: ds.Y}); err != nil {
		tb.Fatal(err)
	}
	return svm, scaler
}

// TestModelMetaRoundTrip asserts a stamped model serializes its meta block
// losslessly: version, creation time and training-set size all survive.
func TestModelMetaRoundTrip(t *testing.T) {
	svm, scaler := fitTinySVM(t)
	meta := &ModelMeta{
		Version:   3,
		CreatedAt: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		TrainedOn: 10,
	}
	m := &Model{Classifier: svm, Scaler: scaler, Meta: meta}
	data, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"meta"`) {
		t.Fatalf("serialized model lacks a meta block:\n%s", data)
	}
	got, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta == nil {
		t.Fatal("meta lost in round trip")
	}
	if got.Meta.Version != 3 || got.Meta.TrainedOn != 10 || !got.Meta.CreatedAt.Equal(meta.CreatedAt) {
		t.Fatalf("meta round trip = %+v, want %+v", got.Meta, meta)
	}
	if got.Version() != 3 {
		t.Fatalf("Version() = %d, want 3", got.Version())
	}
	again, err := MarshalModel(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("stamped model round trip is not a fixed point:\n%s\nvs\n%s", data, again)
	}
}

// TestModelMetaBackwardCompatible asserts pre-stamping artifacts — model
// files with no meta block — still deserialize, predict, and re-serialize
// without growing a spurious stamp.
func TestModelMetaBackwardCompatible(t *testing.T) {
	svm, scaler := fitTinySVM(t)
	legacy, err := MarshalModel(&Model{Classifier: svm, Scaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(legacy), `"meta"`) {
		t.Fatalf("unstamped model should serialize without a meta key:\n%s", legacy)
	}
	// Simulate an old on-disk artifact: generic JSON without the field.
	var raw map[string]any
	if err := json.Unmarshal(legacy, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["meta"]; ok {
		t.Fatal("legacy artifact unexpectedly carries meta")
	}
	m, err := UnmarshalModel(legacy)
	if err != nil {
		t.Fatalf("legacy model failed to parse: %v", err)
	}
	if m.Meta != nil {
		t.Fatalf("legacy model grew a meta stamp: %+v", m.Meta)
	}
	if m.Version() != 0 {
		t.Fatalf("legacy Version() = %d, want 0", m.Version())
	}
	if got := m.Predict([]float64{1, 8}); got != 0 {
		t.Fatalf("legacy model predicts %d for a class-0 point", got)
	}
	again, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, again) {
		t.Fatalf("legacy round trip changed the artifact:\n%s\nvs\n%s", legacy, again)
	}
}

// TestNilModelVersion pins Version()'s nil-safety (hot-swap logs call it on
// possibly-uninstalled incumbents).
func TestNilModelVersion(t *testing.T) {
	var m *Model
	if m.Version() != 0 {
		t.Fatal("nil model must report version 0")
	}
}
