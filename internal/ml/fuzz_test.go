package ml

import (
	"bytes"
	"testing"
)

// fuzzSeedModels marshals one fitted model of every serializable kind, for
// the fuzz seed corpus and the lossless-round-trip check.
func fuzzSeedModels(tb testing.TB) [][]byte {
	tb.Helper()
	ds := &Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		ds.Append([]float64{x, 9 - x}, label)
	}
	scaler := &Scaler{}
	scaledX, err := scaler.FitTransform(ds.X)
	if err != nil {
		tb.Fatal(err)
	}
	scaled := &Dataset{X: scaledX, Y: ds.Y}
	ens := NewEnsemble(NewSVM(RBFKernel{Gamma: 0.5}, 4), NewKNN(3), NewDecisionTree(4, 1), NewLogistic(0, 0, 50))
	ens.Folds = 2
	var out [][]byte
	for _, clf := range []Classifier{
		NewSVM(RBFKernel{Gamma: 0.5}, 4),
		NewKNN(3),
		NewDecisionTree(4, 1),
		NewLogistic(0, 0, 50),
		ens,
	} {
		if err := clf.Fit(scaled); err != nil {
			tb.Fatal(err)
		}
		data, err := MarshalModel(&Model{Classifier: clf, Scaler: scaler})
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, data)
	}
	// One model carrying a distilled compiled artifact (with decision grid),
	// so the fuzzer exercises the compiled round-trip and validation paths.
	svm := NewSVM(RBFKernel{Gamma: 0.5}, 4)
	if err := svm.Fit(scaled); err != nil {
		tb.Fatal(err)
	}
	withCompiled := &Model{Classifier: svm, Scaler: scaler}
	c, err := Distill(withCompiled, ds.X, DistillOptions{Grid: true, GridRes: 8})
	if err != nil {
		tb.Fatal(err)
	}
	withCompiled.Compiled = c
	data, err := MarshalModel(withCompiled)
	if err != nil {
		tb.Fatal(err)
	}
	return append(out, data)
}

// FuzzUnmarshalModel asserts the model deserializer is total: arbitrary bytes
// must produce either a model or an error — never a panic — and any blob that
// deserializes must round-trip to a fixed point (marshal ∘ unmarshal is
// idempotent, so nothing is silently lost or mutated).
func FuzzUnmarshalModel(f *testing.F) {
	for _, seed := range fuzzSeedModels(f) {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"svm"}`))
	f.Add([]byte(`{"kind":"knn","meta":{"version":2,"created_at":"2026-08-06T00:00:00Z","trained_on":7},"knn":{"k":1}}`))
	f.Add([]byte(`{"kind":"knn","meta":{},"knn":{"k":1}}`))
	f.Add([]byte(`{"kind":"knn","knn":{"k":-1}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"kind":"tree","tree":{"root":{"leaf":true}}}`))
	// Ensemble seeds: a missing body, corrupt and unknown members, a nested
	// ensemble (rejected), and a member/weight arity mismatch — the total-
	// deserializer contract must hold for member-model corruption too.
	f.Add([]byte(`{"kind":"ensemble"}`))
	f.Add([]byte(`{"kind":"ensemble","ensemble":{"classes":[0,1],"members":[{"kind":"svm"}]}}`))
	f.Add([]byte(`{"kind":"ensemble","ensemble":{"classes":[0,1],"members":[{"kind":"wat"}]}}`))
	f.Add([]byte(`{"kind":"ensemble","ensemble":{"classes":[0],"members":[{"kind":"ensemble","ensemble":{"members":[{"kind":"knn","knn":{"k":1}}]}}]}}`))
	f.Add([]byte(`{"kind":"ensemble","ensemble":{"classes":[0,1],"weights":[1],"members":[{"kind":"knn","knn":{"k":1}},{"kind":"tree","tree":{"root":null}}]}}`))
	f.Add([]byte(`{"kind":"ensemble","ensemble":{"classes":[0,1],"weights":[0.5,0.5],"calib":[{"lo":0,"hi":0.5,"n":3,"correct":1}],"members":[{"kind":"knn","knn":{"k":1,"x":[[0],[1]],"y":[0,1]}},{"kind":"logistic","logistic":{"lr":0.5,"l2":0.001,"iters":10,"w":[[0,0],[0,0]],"classes":[0,1]}}]}}`))
	// Compiled-artifact seeds: a minimal valid program, a looping program
	// (must be rejected), and a grid with a bad cell table.
	f.Add([]byte(`{"kind":"knn","knn":{"k":1,"x":[[0],[1]],"y":[0,1]},"compiled":{"nodes":[{"f":0,"l":1,"r":2,"c":-1,"t":0.5},{"f":0,"l":-1,"r":-1,"c":0,"t":0},{"f":0,"l":-1,"r":-1,"c":1,"t":0}],"classes":[0,1],"dim":1,"margin":0.01,"agreement":1,"fallback_rate":0,"corpus_size":2}}`))
	f.Add([]byte(`{"kind":"knn","knn":{"k":1,"x":[[0],[1]],"y":[0,1]},"compiled":{"nodes":[{"f":0,"l":0,"r":0,"c":-1,"t":0.5}],"classes":[0],"dim":1,"margin":0.01}}`))
	f.Add([]byte(`{"kind":"knn","knn":{"k":1,"x":[[0],[1]],"y":[0,1]},"compiled":{"nodes":[{"f":0,"l":-1,"r":-1,"c":0,"t":0}],"classes":[0],"dim":1,"margin":0,"grid":{"res":2,"lo":[0],"hi":[1],"cells":[0,0,0]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalModel(data) // must never panic
		if err != nil {
			return
		}
		out1, err := MarshalModel(m)
		if err != nil {
			// A deserialized model that cannot re-serialize would lose the
			// artifact on the next save.
			t.Fatalf("deserialized model failed to marshal: %v", err)
		}
		m2, err := UnmarshalModel(out1)
		if err != nil {
			t.Fatalf("re-serialized model failed to parse: %v", err)
		}
		out2, err := MarshalModel(m2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("round trip is not a fixed point:\nfirst:  %s\nsecond: %s", out1, out2)
		}
	})
}

// TestModelRoundTripLossless asserts valid models survive a serialize /
// deserialize cycle exactly: identical serialized form and identical
// predictions.
func TestModelRoundTripLossless(t *testing.T) {
	for _, data := range fuzzSeedModels(t) {
		m, err := UnmarshalModel(data)
		if err != nil {
			t.Fatal(err)
		}
		again, err := MarshalModel(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("round trip changed the artifact:\nbefore: %s\nafter:  %s", data, again)
		}
		for x := 0.0; x <= 9; x += 0.5 {
			vec := []float64{x, 9 - x}
			m2, _ := UnmarshalModel(again)
			if m.Predict(vec) != m2.Predict(vec) {
				t.Fatalf("predictions diverged after round trip at %v", vec)
			}
		}
	}
}
