package ml

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Artifact versioning helpers for the model registry: a serialized model is
// distributed as an opaque byte blob identified by a strong ETag (content
// hash) and its stamped version, so clients can pull with If-None-Match and
// servers can enforce If-Match preconditions without parsing the body.

// ETagOf returns the strong HTTP entity tag of a serialized model artifact:
// a quoted sha256 of the exact bytes. Byte-identical artifacts — and only
// those — share an ETag.
func ETagOf(data []byte) string {
	sum := sha256.Sum256(data)
	return `"sha256-` + hex.EncodeToString(sum[:]) + `"`
}

// EncodeArtifact serializes m with MarshalModel and returns the bytes with
// their ETag. The encoding is deterministic for a given model (JSON with
// sorted struct fields), so re-encoding an unchanged model reproduces the
// same ETag.
func EncodeArtifact(m *Model) ([]byte, string, error) {
	data, err := MarshalModel(m)
	if err != nil {
		return nil, "", err
	}
	return data, ETagOf(data), nil
}

// DecodeArtifact reconstructs a model from artifact bytes and verifies the
// expected ETag when one is supplied (empty wantETag skips the check) — a
// truncated or corrupted pull fails loudly instead of installing garbage.
func DecodeArtifact(data []byte, wantETag string) (*Model, error) {
	if wantETag != "" {
		if got := ETagOf(data); got != wantETag {
			return nil, fmt.Errorf("ml: artifact etag mismatch: got %s, want %s", got, wantETag)
		}
	}
	return UnmarshalModel(data)
}
