package ml

import (
	"strings"
	"testing"
)

// TestArtifactRoundTrip: encode → decode reproduces the model, the ETag is
// deterministic, and a corrupted artifact fails the ETag check.
func TestArtifactRoundTrip(t *testing.T) {
	ds := &Dataset{}
	for x := 0.0; x < 6; x++ {
		label := 0
		if x > 2.5 {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	svm := NewSVM(LinearKernel{}, 1)
	if err := svm.Fit(ds); err != nil {
		t.Fatal(err)
	}
	m := &Model{Classifier: svm, Meta: &ModelMeta{Version: 3, TrainedOn: 6}}

	data, etag, err := EncodeArtifact(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(etag, `"sha256-`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("etag %q is not a quoted sha256 tag", etag)
	}
	data2, etag2, err := EncodeArtifact(m)
	if err != nil {
		t.Fatal(err)
	}
	if etag != etag2 || string(data) != string(data2) {
		t.Fatal("re-encoding an unchanged model changed the artifact")
	}

	back, err := DecodeArtifact(data, etag)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != 3 {
		t.Fatalf("round-trip lost the version stamp: %d", back.Version())
	}
	for x := 0.0; x < 6; x++ {
		if got, want := back.Predict([]float64{x}), m.Predict([]float64{x}); got != want {
			t.Fatalf("round-trip prediction diverged at x=%v: %d vs %d", x, got, want)
		}
	}

	// Corruption is caught by the ETag before the parser ever runs.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := DecodeArtifact(corrupt, etag); err == nil {
		t.Fatal("corrupted artifact passed the etag check")
	}
	// Empty wantETag skips the check but still parses.
	if _, err := DecodeArtifact(data, ""); err != nil {
		t.Fatal(err)
	}
}
