package ml

import (
	"errors"
	"math"
)

// CrossValidate returns the mean k-fold accuracy of the classifier produced
// by factory when trained on the folds of ds. The fold assignment is
// deterministic for a given seed.
func CrossValidate(factory func() Classifier, ds *Dataset, k int, seed int64) (float64, error) {
	trains, tests, err := KFold(ds.Len(), k, seed)
	if err != nil {
		return 0, err
	}
	var sum float64
	folds := 0
	for f := range trains {
		clf := factory()
		if err := clf.Fit(ds.Subset(trains[f])); err != nil {
			return 0, err
		}
		sum += Accuracy(clf, ds.Subset(tests[f]))
		folds++
	}
	return sum / float64(folds), nil
}

// GridSearchResult records the winning SVM hyper-parameters of a grid search
// and the cross-validation accuracy they achieved.
type GridSearchResult struct {
	C        float64
	Gamma    float64
	Accuracy float64
	// Evaluated is the number of (C, gamma) points tried.
	Evaluated int
}

// GridConfig controls GridSearchSVM. The zero value selects the defaults:
// C in 2^{-2..10} (step 2^2), gamma in 2^{-10..2} (step 2^2), 5-fold CV —
// the libSVM "grid.py" shape the paper relies on, coarsened to stay fast on
// Nitro-sized training sets.
type GridConfig struct {
	CValues     []float64
	GammaValues []float64
	Folds       int
	Seed        int64
}

func (g *GridConfig) defaults(dim int) {
	if len(g.CValues) == 0 {
		for e := -2.0; e <= 10; e += 2 {
			g.CValues = append(g.CValues, math.Pow(2, e))
		}
	}
	if len(g.GammaValues) == 0 {
		for e := -10.0; e <= 2; e += 2 {
			g.GammaValues = append(g.GammaValues, math.Pow(2, e))
		}
	}
	if g.Folds <= 0 {
		g.Folds = 5
	}
}

// GridSearchSVM performs the paper's cross-validation parameter search for
// the RBF C-SVC: it evaluates every (C, gamma) grid point by k-fold CV on the
// (already scaled) dataset and returns an SVM trained on the full dataset
// with the best pair. Ties prefer the smaller C then smaller gamma, keeping
// the search deterministic.
func GridSearchSVM(ds *Dataset, cfg GridConfig) (*SVM, GridSearchResult, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, GridSearchResult{}, errors.New("ml: empty dataset")
	}
	cfg.defaults(ds.Dim())
	best := GridSearchResult{Accuracy: -1}
	if len(ds.Classes()) < 2 || ds.Len() < 3 {
		// Degenerate problem: no boundary to tune. Train defaults.
		m := NewSVM(RBFKernel{Gamma: 1 / float64(max(ds.Dim(), 1))}, 1)
		err := m.Fit(ds)
		return m, GridSearchResult{C: 1, Gamma: 1 / float64(max(ds.Dim(), 1)), Accuracy: 1}, err
	}
	for _, c := range cfg.CValues {
		for _, g := range cfg.GammaValues {
			acc, err := CrossValidate(func() Classifier {
				return NewSVM(RBFKernel{Gamma: g}, c)
			}, ds, cfg.Folds, cfg.Seed)
			if err != nil {
				return nil, best, err
			}
			best.Evaluated++
			if acc > best.Accuracy {
				best.Accuracy = acc
				best.C, best.Gamma = c, g
			}
		}
	}
	m := NewSVM(RBFKernel{Gamma: best.Gamma}, best.C)
	if err := m.Fit(ds); err != nil {
		return nil, best, err
	}
	return m, best, nil
}
