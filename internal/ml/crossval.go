package ml

import (
	"errors"
	"math"

	"nitro/internal/par"
)

// CrossValidate returns the mean k-fold accuracy of the classifier produced
// by factory when trained on the folds of ds. The fold assignment is
// deterministic for a given seed.
func CrossValidate(factory func() Classifier, ds *Dataset, k int, seed int64) (float64, error) {
	trains, tests, err := KFold(ds.Len(), k, seed)
	if err != nil {
		return 0, err
	}
	var sum float64
	folds := 0
	for f := range trains {
		clf := factory()
		if err := clf.Fit(ds.Subset(trains[f])); err != nil {
			return 0, err
		}
		sum += Accuracy(clf, ds.Subset(tests[f]))
		folds++
	}
	return sum / float64(folds), nil
}

// GridSearchResult records the winning SVM hyper-parameters of a grid search
// and the cross-validation accuracy they achieved.
type GridSearchResult struct {
	C        float64
	Gamma    float64
	Accuracy float64
	// Evaluated is the number of (C, gamma) points tried by cross-validation.
	// It is 0 on the degenerate path (single class or < 3 examples), where no
	// boundary exists to tune and Accuracy reports the training-set accuracy
	// of the default model instead of a CV estimate.
	Evaluated int
}

// GridConfig controls GridSearchSVM. The zero value selects the defaults:
// C in 2^{-2..10} (step 2^2), gamma in 2^{-10..2} (step 2^2), 5-fold CV —
// the libSVM "grid.py" shape the paper relies on, coarsened to stay fast on
// Nitro-sized training sets.
type GridConfig struct {
	CValues     []float64
	GammaValues []float64
	Folds       int
	Seed        int64
	// Parallelism caps the number of worker goroutines that evaluate
	// (C, gamma) grid points concurrently: 0 uses all cores (GOMAXPROCS),
	// 1 runs the search serially on the calling goroutine. The result is
	// bit-identical at every setting — fold assignment is fixed up front,
	// kernel matrices are cached per gamma, and the smaller-C-then-
	// smaller-gamma tie-break is applied in a deterministic scan after all
	// points are collected, never in completion order.
	Parallelism int
}

func (g *GridConfig) defaults() {
	if len(g.CValues) == 0 {
		for e := -2.0; e <= 10; e += 2 {
			g.CValues = append(g.CValues, math.Pow(2, e))
		}
	}
	if len(g.GammaValues) == 0 {
		for e := -10.0; e <= 2; e += 2 {
			g.GammaValues = append(g.GammaValues, math.Pow(2, e))
		}
	}
	if g.Folds <= 0 {
		g.Folds = 5
	}
}

// GridSearchSVM performs the paper's cross-validation parameter search for
// the RBF C-SVC: it evaluates every (C, gamma) grid point by k-fold CV on the
// (already scaled) dataset and returns an SVM trained on the full dataset
// with the best pair. Ties prefer the smaller C then smaller gamma, keeping
// the search deterministic.
//
// The search is cache-aware and parallel: the RBF Gram matrix depends only
// on gamma, so one n×n matrix per gamma value is computed lazily and shared
// across every C value and every CV fold (folds train on index-subset views
// and score held-out points by row lookups), and the independent grid points
// fan out over cfg.Parallelism workers. Both optimizations are bit-exact:
// the selected hyper-parameters, CV accuracy and final model are identical
// to the serial, cache-free search.
func GridSearchSVM(ds *Dataset, cfg GridConfig) (*SVM, GridSearchResult, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, GridSearchResult{}, errors.New("ml: empty dataset")
	}
	cfg.defaults()
	if len(ds.Classes()) < 2 || ds.Len() < 3 {
		// Degenerate problem: a single class or fewer than 3 examples leaves
		// no decision boundary to tune and no room for k-fold CV. Train the
		// libSVM-style defaults (C=1, gamma=1/dim) on the full set and report
		// the honestly measured training-set accuracy with Evaluated=0 —
		// callers can tell this apart from a real CV estimate.
		gamma := 1 / float64(max(ds.Dim(), 1))
		m := NewSVM(RBFKernel{Gamma: gamma}, 1)
		if err := m.Fit(ds); err != nil {
			return nil, GridSearchResult{C: 1, Gamma: gamma}, err
		}
		return m, GridSearchResult{C: 1, Gamma: gamma, Accuracy: Accuracy(m, ds)}, nil
	}

	// Fold assignment is computed once up front; the serial search derived
	// the identical folds inside every CrossValidate call (same n, k, seed).
	trains, tests, err := KFold(ds.Len(), cfg.Folds, cfg.Seed)
	if err != nil {
		return nil, GridSearchResult{Accuracy: -1}, err
	}

	// One lazily computed Gram matrix per gamma, shared across all C values
	// and folds. A zero gamma is anchored at 1/dim exactly as SVM.Fit would.
	kernels := make([]RBFKernel, len(cfg.GammaValues))
	grams := make([]lazyGram, len(cfg.GammaValues))
	for gi, g := range cfg.GammaValues {
		if g == 0 {
			g = 1 / float64(max(ds.Dim(), 1))
		}
		kernels[gi] = RBFKernel{Gamma: g}
	}

	nC, nG := len(cfg.CValues), len(cfg.GammaValues)
	accs := make([]float64, nC*nG)
	errs := make([]error, nC*nG)
	par.For(nC*nG, par.Workers(cfg.Parallelism), func(p int) {
		ci, gi := p/nG, p%nG
		km := grams[gi].get(ds.X, kernels[gi])
		accs[p], errs[p] = crossValidateSVMGram(ds, km, cfg.CValues[ci], defaultSVMEps, trains, tests)
	})

	// Winner selection happens in a deterministic serial scan over the same
	// (C outer, gamma inner) order the serial search used, with a strict
	// improvement test — so ties resolve to the smaller C then the smaller
	// gamma regardless of which worker finished first.
	best := GridSearchResult{Accuracy: -1}
	bestGi := -1
	for ci := 0; ci < nC; ci++ {
		for gi := 0; gi < nG; gi++ {
			p := ci*nG + gi
			if errs[p] != nil {
				return nil, best, errs[p]
			}
			best.Evaluated++
			if accs[p] > best.Accuracy {
				best.Accuracy = accs[p]
				best.C, best.Gamma = cfg.CValues[ci], cfg.GammaValues[gi]
				bestGi = gi
			}
		}
	}

	// Final fit on the full dataset, reusing the winning gamma's cached Gram
	// matrix instead of re-evaluating the kernel.
	m := NewSVM(kernels[bestGi], best.C)
	if err := m.fit(ds, grams[bestGi].get(ds.X, kernels[bestGi])); err != nil {
		return nil, best, err
	}
	return m, best, nil
}
