package ml

import (
	"fmt"
	"math"
)

// Kernel is a positive-semidefinite similarity function between feature
// vectors, used by the SVM.
type Kernel interface {
	// Eval returns K(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel for serialization.
	Name() string
}

// RBFKernel is the radial-basis-function (Gaussian) kernel
// K(a,b) = exp(-gamma * ||a-b||^2), the paper's default.
type RBFKernel struct {
	Gamma float64 `json:"gamma"`
}

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	return math.Exp(-k.Gamma * d2)
}

// Name implements Kernel.
func (k RBFKernel) Name() string { return "rbf" }

// LinearKernel is K(a,b) = a . b.
type LinearKernel struct{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Name implements Kernel.
func (LinearKernel) Name() string { return "linear" }

// PolyKernel is K(a,b) = (gamma * a.b + coef0)^degree.
type PolyKernel struct {
	Gamma  float64 `json:"gamma"`
	Coef0  float64 `json:"coef0"`
	Degree int     `json:"degree"`
}

// Eval implements Kernel.
func (k PolyKernel) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return math.Pow(k.Gamma*s+k.Coef0, float64(k.Degree))
}

// Name implements Kernel.
func (k PolyKernel) Name() string { return "poly" }

// kernelSpec is the serializable description of a kernel.
type kernelSpec struct {
	Kind   string  `json:"kind"`
	Gamma  float64 `json:"gamma,omitempty"`
	Coef0  float64 `json:"coef0,omitempty"`
	Degree int     `json:"degree,omitempty"`
}

func specOf(k Kernel) kernelSpec {
	switch kk := k.(type) {
	case RBFKernel:
		return kernelSpec{Kind: "rbf", Gamma: kk.Gamma}
	case LinearKernel:
		return kernelSpec{Kind: "linear"}
	case PolyKernel:
		return kernelSpec{Kind: "poly", Gamma: kk.Gamma, Coef0: kk.Coef0, Degree: kk.Degree}
	default:
		return kernelSpec{Kind: k.Name()}
	}
}

func (s kernelSpec) kernel() (Kernel, error) {
	switch s.Kind {
	case "rbf":
		return RBFKernel{Gamma: s.Gamma}, nil
	case "linear":
		return LinearKernel{}, nil
	case "poly":
		return PolyKernel{Gamma: s.Gamma, Coef0: s.Coef0, Degree: s.Degree}, nil
	default:
		return nil, fmt.Errorf("ml: unknown kernel %q", s.Kind)
	}
}
