package ml

import "sort"

// RankedClasses scales x and returns every class label ordered by decision
// score, best first. The ordering is deterministic: ties break toward the
// classifier's Classes() order, which also guarantees RankedClasses(x)[0] ==
// Predict(x) (Predict is an argmax with the same first-wins tie break).
//
// The fault-tolerant dispatch layer uses the ranked tail as its failure
// fallback chain: when the top-ranked variant panics or times out, the next
// best variant by decision score is the most informed substitute.
func (m *Model) RankedClasses(x []float64) []int {
	scores := m.Scores(x)
	classes := m.Classifier.Classes()
	n := len(classes)
	if len(scores) < n {
		n = len(scores)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	out := make([]int, n)
	for i, j := range idx {
		out[i] = classes[j]
	}
	return out
}
