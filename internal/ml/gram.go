package ml

import (
	"fmt"
	"math"
	"sync"
)

// This file implements the gamma-keyed kernel-matrix cache behind the
// cross-validated grid search. The RBF Gram matrix of the training set
// depends only on gamma — not on C and not on the CV fold split — so the
// search computes one n×n matrix per gamma value and shares it across every
// C value and every fold. Folds train on index-subset gathers of the cached
// matrix (solveBinaryKM) and score test points by row lookups, eliminating
// every k.Eval call from the inner loop while staying bit-identical to
// direct evaluation: the cache stores the exact floats k.Eval would return.

// kernelMatrix computes the dense symmetric Gram matrix km[i][j] =
// K(x[i], x[j]). Rows share one flat backing array to keep the allocation
// count independent of n.
func kernelMatrix(x [][]float64, k Kernel) [][]float64 {
	n := len(x)
	flat := make([]float64, n*n)
	km := make([][]float64, n)
	for i := range km {
		km[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := k.Eval(x[i], x[j])
			km[i][j] = v
			km[j][i] = v
		}
	}
	return km
}

// gatherKM extracts the |idx|×|idx| principal submatrix of km at the given
// global indices — the kernel matrix of the corresponding row subset.
func gatherKM(km [][]float64, idx []int) [][]float64 {
	n := len(idx)
	flat := make([]float64, n*n)
	sub := make([][]float64, n)
	for i, gi := range idx {
		row := flat[i*n : (i+1)*n : (i+1)*n]
		src := km[gi]
		for j, gj := range idx {
			row[j] = src[gj]
		}
		sub[i] = row
	}
	return sub
}

// lazyGram computes a dataset's Gram matrix for one gamma on first use and
// then shares it across all (C, fold) consumers. Safe for concurrent use.
type lazyGram struct {
	once sync.Once
	km   [][]float64
}

func (g *lazyGram) get(x [][]float64, k Kernel) [][]float64 {
	g.once.Do(func() { g.km = kernelMatrix(x, k) })
	return g.km
}

// gramPair is one one-vs-one binary machine trained through the kernel
// cache: support vectors are identified by their global row index into the
// cached Gram matrix, so decision values on any cached point are pure table
// lookups.
type gramPair struct {
	a, b int // class labels; positive decision votes for a
	svGI []int
	coef []float64
	rho  float64
}

// gramSVM is the cache-backed counterpart of SVM used inside cross-
// validation: it trains on an index subset of the cached dataset and
// predicts other cached points without evaluating the kernel. Its numerics
// replicate SVM.Fit/Predict/Scores exactly (same pair order, same summation
// order, same tie-breaks), which the determinism tests assert.
type gramSVM struct {
	classes []int
	pairs   []gramPair
}

// fitGramSVM trains the one-vs-one ensemble on the rows of ds selected by
// idx, reading kernel values from km (the full-dataset Gram matrix).
func fitGramSVM(ds *Dataset, km [][]float64, idx []int, c, eps float64, maxIter int) (*gramSVM, error) {
	sub := ds.Subset(idx)
	g := &gramSVM{classes: sub.Classes()}
	if len(g.classes) < 1 {
		return nil, fmt.Errorf("ml: no classes")
	}
	if len(g.classes) == 1 {
		return g, nil // degenerate: always predict the single class
	}
	for i := 0; i < len(g.classes); i++ {
		for j := i + 1; j < len(g.classes); j++ {
			a, b := g.classes[i], g.classes[j]
			var gi []int
			var x [][]float64
			var y []float64
			for t, row := range idx {
				switch sub.Y[t] {
				case a:
					gi = append(gi, row)
					x = append(x, ds.X[row])
					y = append(y, 1)
				case b:
					gi = append(gi, row)
					x = append(x, ds.X[row])
					y = append(y, -1)
				}
			}
			sol, err := solveBinaryKM(x, y, gatherKM(km, gi), c, eps, maxIter)
			if err != nil {
				return nil, fmt.Errorf("ml: pair (%d,%d): %w", a, b, err)
			}
			p := gramPair{a: a, b: b, rho: sol.rho, coef: sol.svCoef}
			// Map the solver's local support-vector positions back to global
			// row indices into the cached Gram matrix.
			p.svGI = make([]int, len(sol.svIdx))
			for s, t := range sol.svIdx {
				p.svGI[s] = gi[t]
			}
			g.pairs = append(g.pairs, p)
		}
	}
	return g, nil
}

// scores replicates SVM.Scores for cached point t: each pairwise decision
// contributes a sigmoid-soft vote, accumulated in pair order.
func (g *gramSVM) scores(km [][]float64, t int) []float64 {
	out := make([]float64, len(g.classes))
	if len(g.classes) == 1 {
		out[0] = 1
		return out
	}
	idx := make(map[int]int, len(g.classes))
	for i, c := range g.classes {
		idx[c] = i
	}
	row := km[t]
	for _, p := range g.pairs {
		var d float64
		for i, gi := range p.svGI {
			d += p.coef[i] * row[gi]
		}
		d -= p.rho
		s := 1 / (1 + math.Exp(-2*d))
		out[idx[p.a]] += s
		out[idx[p.b]] += 1 - s
	}
	return out
}

// predict replicates SVM.Predict for cached point t.
func (g *gramSVM) predict(km [][]float64, t int) int {
	if len(g.classes) == 0 {
		return 0
	}
	scores := g.scores(km, t)
	best, bestScore := g.classes[0], math.Inf(-1)
	for i, c := range g.classes {
		if scores[i] > bestScore {
			best, bestScore = c, scores[i]
		}
	}
	return best
}

// accuracy replicates Accuracy over the cached points in test.
func (g *gramSVM) accuracy(ds *Dataset, km [][]float64, test []int) float64 {
	if len(test) == 0 {
		return 0
	}
	ok := 0
	for _, t := range test {
		if g.predict(km, t) == ds.Y[t] {
			ok++
		}
	}
	return float64(ok) / float64(len(test))
}

// crossValidateSVMGram runs the k-fold CV of an RBF C-SVC entirely through
// the kernel cache: per fold it trains on index views of km and scores the
// held-out fold by row lookups. The result equals
// CrossValidate(NewSVM(kernel, c).Fit, ...) bit for bit.
func crossValidateSVMGram(ds *Dataset, km [][]float64, c, eps float64, trains, tests [][]int) (float64, error) {
	var sum float64
	folds := 0
	for f := range trains {
		g, err := fitGramSVM(ds, km, trains[f], c, eps, 0)
		if err != nil {
			return 0, err
		}
		sum += g.accuracy(ds, km, tests[f])
		folds++
	}
	return sum / float64(folds), nil
}
