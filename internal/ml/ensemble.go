package ml

import (
	"errors"
	"fmt"
	"math"

	"nitro/internal/par"
)

// Ensemble is an agreement-weighted voting committee over the repo's base
// learners (SVM, kNN, CART, logistic). It implements Classifier, so it rides
// every existing surface unchanged: the Model envelope, the scaler, Distill
// (which labels its corpus through Predict), RankedClasses fallback chains
// and the registry/canary artifact plane.
//
// Beyond a bare argmax it exposes what a single model cannot: a calibrated
// per-prediction confidence. Fit runs a deterministic k-fold pass, weighs
// each member by its out-of-fold accuracy, and bins the committee's weighted
// agreement against its actual out-of-fold correctness — a reliability curve.
// Confidence(x) reads that curve, so "0.9" means "predictions that looked
// like this were right ~90% of the time on held-out data", not a raw vote
// share. The online plane routes low-confidence calls to the contextual
// bandit instead of trusting the label.
type Ensemble struct {
	// Folds is the cross-validation fold count used by Fit to estimate member
	// weights and fit the calibration curve (default 3).
	Folds int
	// Seed fixes the fold assignment so Fit is deterministic.
	Seed int64
	// Parallelism caps the goroutines fitting member×fold jobs: 0 uses all
	// cores, 1 is serial. The fitted ensemble is bit-identical at any setting.
	Parallelism int

	members []Classifier
	weights []float64 // per-member vote weight, normalized to sum 1
	classes []int
	calib   []CalibBin
}

// CalibBin is one bucket of the ensemble's reliability curve: of the
// out-of-fold predictions whose weighted agreement fell in [Lo, Hi), N were
// made and Correct were right.
type CalibBin struct {
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	N       int     `json:"n"`
	Correct int     `json:"correct"`
}

const calibBins = 5

// ErrNestedEnsemble rejects ensembles as ensemble members: the calibration
// story (and the serialized envelope) is defined for one committee level.
var ErrNestedEnsemble = errors.New("ml: ensembles cannot contain ensembles")

// NewEnsemble returns an untrained committee over the given members; with no
// arguments it uses the default stable: RBF SVM, 3-NN, CART and softmax
// logistic regression.
func NewEnsemble(members ...Classifier) *Ensemble {
	return &Ensemble{members: members}
}

// DefaultEnsembleMembers returns freshly constructed default members: the
// same four learners the single-model path can train individually.
func DefaultEnsembleMembers() []Classifier {
	return []Classifier{
		DefaultSVM(),
		NewKNN(3),
		NewDecisionTree(0, 0),
		NewLogistic(0, 0, 0),
	}
}

// Name implements Classifier.
func (e *Ensemble) Name() string { return "ensemble" }

// Classes implements Classifier.
func (e *Ensemble) Classes() []int { return e.classes }

// Members returns the fitted member classifiers (read-only).
func (e *Ensemble) Members() []Classifier { return e.members }

// Weights returns the per-member vote weights, aligned with Members and
// normalized to sum 1.
func (e *Ensemble) Weights() []float64 { return e.weights }

// Calibration returns the fitted reliability curve (nil when Fit had too few
// samples for cross-validation).
func (e *Ensemble) Calibration() []CalibBin { return e.calib }

// freshLike builds an untrained copy of a member carrying its
// hyper-parameters, for out-of-fold refits. Unknown classifier types return
// nil; their weight falls back to training-set accuracy.
func freshLike(c Classifier) Classifier {
	switch v := c.(type) {
	case *SVM:
		return NewSVM(v.Kernel(), v.C)
	case *KNN:
		return NewKNN(v.K)
	case *DecisionTree:
		return NewDecisionTree(v.MaxDepth, v.MinLeafSamples)
	case *Logistic:
		return NewLogistic(v.LR, v.L2, v.Iters)
	}
	return nil
}

// Fit implements Classifier. It trains every member on ds (member×fold jobs
// fan out over internal/par), weighs members by out-of-fold accuracy, and
// fits the agreement→accuracy calibration curve. Deterministic for a given
// (ds, Seed, Folds) at any parallelism.
func (e *Ensemble) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return errors.New("ml: empty training set")
	}
	if len(e.members) == 0 {
		e.members = DefaultEnsembleMembers()
	}
	for _, m := range e.members {
		if _, ok := m.(*Ensemble); ok {
			return ErrNestedEnsemble
		}
	}
	e.classes = ds.Classes()
	folds := e.Folds
	if folds <= 0 {
		folds = 3
	}

	nm := len(e.members)
	// Out-of-fold predicted labels, per member per sample; oof[mi] == nil
	// means member mi has no CV estimate (unknown type or dataset too small).
	oof := make([][]int, nm)
	canCV := len(e.classes) > 1 && ds.Len() >= 2*folds
	var trains, tests [][]int
	if canCV {
		var err error
		trains, tests, err = KFold(ds.Len(), folds, e.Seed)
		if err != nil {
			return err
		}
		for mi := range oof {
			if freshLike(e.members[mi]) != nil {
				oof[mi] = make([]int, ds.Len())
			}
		}
	}

	// One parallel sweep: nm final fits plus nm×folds out-of-fold fits. Every
	// write lands in a job-indexed slot, so completion order never matters.
	cvJobs := 0
	if canCV {
		cvJobs = nm * folds
	}
	errs := make([]error, nm+cvJobs)
	par.For(nm+cvJobs, par.Workers(e.Parallelism), func(p int) {
		if p < nm {
			errs[p] = e.members[p].Fit(ds)
			return
		}
		q := p - nm
		mi, fi := q/folds, q%folds
		if oof[mi] == nil {
			return
		}
		clf := freshLike(e.members[mi])
		if err := clf.Fit(ds.Subset(trains[fi])); err != nil {
			errs[p] = err
			return
		}
		for _, i := range tests[fi] {
			oof[mi][i] = clf.Predict(ds.X[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("ml: ensemble member fit: %w", err)
		}
	}

	// Member weights: out-of-fold accuracy where available, training-set
	// accuracy otherwise, floored so no member is silenced entirely, then
	// normalized to sum 1.
	e.weights = make([]float64, nm)
	for mi, m := range e.members {
		var acc float64
		if oof[mi] != nil {
			hits := 0
			for i, y := range ds.Y {
				if oof[mi][i] == y {
					hits++
				}
			}
			acc = float64(hits) / float64(ds.Len())
		} else {
			acc = Accuracy(m, ds)
		}
		e.weights[mi] = math.Max(acc, 0.05)
	}
	normalize(e.weights)

	// Reliability curve: bin the committee's weighted out-of-fold agreement
	// against whether the committee's out-of-fold vote was actually right.
	e.calib = nil
	if canCV {
		e.calib = make([]CalibBin, calibBins)
		for b := range e.calib {
			e.calib[b].Lo = float64(b) / calibBins
			e.calib[b].Hi = float64(b+1) / calibBins
		}
		labels := make([]int, 0, nm)
		ws := make([]float64, 0, nm)
		for i, y := range ds.Y {
			labels, ws = labels[:0], ws[:0]
			for mi := range e.members {
				if oof[mi] != nil {
					labels = append(labels, oof[mi][i])
					ws = append(ws, e.weights[mi])
				}
			}
			if len(labels) == 0 {
				e.calib = nil
				break
			}
			pred, agree := weightedVote(labels, ws, e.classes)
			b := int(agree * calibBins)
			if b >= calibBins {
				b = calibBins - 1
			}
			e.calib[b].N++
			if pred == y {
				e.calib[b].Correct++
			}
		}
	}
	return nil
}

func normalize(w []float64) {
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= sum
	}
}

// weightedVote tallies weighted member labels and returns the winning class
// (ties break toward classes order, matching Predict) and the winner's share
// of the total weight.
func weightedVote(labels []int, ws []float64, classes []int) (pred int, share float64) {
	votes := make(map[int]float64, len(classes))
	var total float64
	for i, l := range labels {
		votes[l] += ws[i]
		total += ws[i]
	}
	best, bestV := 0, math.Inf(-1)
	for ci, c := range classes {
		if v := votes[c]; v > bestV {
			best, bestV = ci, v
		}
	}
	if len(classes) == 0 {
		return 0, 0
	}
	if total <= 0 {
		return classes[best], 0
	}
	return classes[best], votes[classes[best]] / total
}

// Scores implements Classifier: the weighted sum of each member's score
// vector normalized to a distribution, aligned with Classes(). The result
// sums to ~1, so it reads as a committee probability.
func (e *Ensemble) Scores(x []float64) []float64 {
	out := make([]float64, len(e.classes))
	if len(e.members) == 0 || len(e.classes) == 0 {
		return out
	}
	idx := make(map[int]int, len(e.classes))
	for i, c := range e.classes {
		idx[c] = i
	}
	for mi, m := range e.members {
		w := e.memberWeight(mi)
		mc := m.Classes()
		if len(mc) == 0 {
			continue
		}
		s := m.Scores(x)
		if len(s) < len(mc) {
			continue
		}
		var sum float64
		for j := range mc {
			if s[j] > 0 {
				sum += s[j]
			}
		}
		for j, c := range mc {
			oi, ok := idx[c]
			if !ok {
				continue
			}
			if sum > 0 {
				if s[j] > 0 {
					out[oi] += w * s[j] / sum
				}
			} else {
				out[oi] += w / float64(len(mc))
			}
		}
	}
	return out
}

func (e *Ensemble) memberWeight(mi int) float64 {
	if mi < len(e.weights) {
		return e.weights[mi]
	}
	return 1 / float64(len(e.members))
}

// Predict implements Classifier: argmax of Scores with a first-wins tie
// break, so RankedClasses(x)[0] == Predict(x) holds like every other member.
func (e *Ensemble) Predict(x []float64) int {
	scores := e.Scores(x)
	if len(e.classes) == 0 {
		return 0
	}
	best, bestS := 0, math.Inf(-1)
	for i, s := range scores {
		if s > bestS {
			best, bestS = i, s
		}
	}
	return e.classes[best]
}

// Agreement returns the weight share of members whose own prediction matches
// the committee's, in [0,1]. This is the raw (uncalibrated) confidence
// signal.
func (e *Ensemble) Agreement(x []float64) float64 {
	if len(e.members) == 0 {
		return 0
	}
	pred := e.Predict(x)
	var agree, total float64
	for mi, m := range e.members {
		w := e.memberWeight(mi)
		total += w
		if m.Predict(x) == pred {
			agree += w
		}
	}
	if total <= 0 {
		return 0
	}
	return agree / total
}

// Confidence maps the committee's weighted agreement on x through the fitted
// reliability curve, yielding a calibrated estimate of P(prediction correct).
// Without a curve (tiny training set) it returns the raw agreement.
func (e *Ensemble) Confidence(x []float64) float64 {
	return e.calibrate(e.Agreement(x))
}

// calibrate interpolates piecewise-linearly between the centers of non-empty
// reliability bins, clamped to [0,1]; with no usable bins the raw agreement
// passes through.
func (e *Ensemble) calibrate(agree float64) float64 {
	type pt struct{ x, y float64 }
	var pts []pt
	for _, b := range e.calib {
		if b.N > 0 {
			pts = append(pts, pt{(b.Lo + b.Hi) / 2, float64(b.Correct) / float64(b.N)})
		}
	}
	if len(pts) == 0 {
		return clamp01(agree)
	}
	if agree <= pts[0].x {
		return clamp01(pts[0].y)
	}
	if agree >= pts[len(pts)-1].x {
		return clamp01(pts[len(pts)-1].y)
	}
	for i := 1; i < len(pts); i++ {
		if agree <= pts[i].x {
			a, b := pts[i-1], pts[i]
			t := (agree - a.x) / (b.x - a.x)
			return clamp01(a.y + t*(b.y-a.y))
		}
	}
	return clamp01(pts[len(pts)-1].y)
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Confidence scales x through the model's scaler and returns a calibrated
// estimate (in [0,1]) that Predict(x) names the truly fastest variant. For
// an ensemble classifier this reads the fitted reliability curve; for single
// models it falls back to the top score's share of the (non-negative) score
// mass — uncalibrated but monotone in the model's own margin. The online
// bandit router keys its explore-or-trust decision on this value.
func (m *Model) Confidence(x []float64) float64 {
	if m == nil || m.Classifier == nil {
		return 0
	}
	if m.Scaler != nil && m.Scaler.Fitted() {
		x = m.Scaler.Transform(x)
	}
	if e, ok := m.Classifier.(*Ensemble); ok {
		return e.Confidence(x)
	}
	scores := m.Classifier.Scores(x)
	if len(scores) == 0 {
		return 0
	}
	if len(scores) == 1 {
		return 1
	}
	var sum, best float64
	for _, s := range scores {
		if s > 0 {
			sum += s
		}
		if s > best {
			best = s
		}
	}
	if sum <= 0 {
		return 1 / float64(len(scores))
	}
	return clamp01(best / sum)
}
