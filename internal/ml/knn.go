package ml

import (
	"errors"
	"math"
	"sort"
)

// KNN is a k-nearest-neighbours classifier (Euclidean distance), provided as
// an alternate pluggable classifier for Nitro's tuning interface and for the
// classifier-choice ablation.
type KNN struct {
	K int

	train   *Dataset
	classes []int
}

// NewKNN returns an untrained k-NN classifier. k < 1 is treated as 3.
func NewKNN(k int) *KNN {
	if k < 1 {
		k = 3
	}
	return &KNN{K: k}
}

// Name implements Classifier.
func (m *KNN) Name() string { return "knn" }

// Classes implements Classifier.
func (m *KNN) Classes() []int { return m.classes }

// Fit implements Classifier by memorizing the training data.
func (m *KNN) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return errors.New("ml: empty training set")
	}
	m.train = ds.Clone()
	m.classes = ds.Classes()
	return nil
}

// Predict implements Classifier.
func (m *KNN) Predict(x []float64) int {
	scores := m.Scores(x)
	best, bestScore := 0, math.Inf(-1)
	for i, s := range scores {
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	if len(m.classes) == 0 {
		return 0
	}
	return m.classes[best]
}

// Scores implements Classifier: distance-weighted votes of the k nearest
// neighbours, normalized to sum to 1.
func (m *KNN) Scores(x []float64) []float64 {
	out := make([]float64, len(m.classes))
	if m.train == nil || m.train.Len() == 0 {
		return out
	}
	type nb struct {
		d float64
		y int
	}
	nbs := make([]nb, m.train.Len())
	for i, row := range m.train.X {
		var d2 float64
		for j := range row {
			diff := row[j] - x[j]
			d2 += diff * diff
		}
		nbs[i] = nb{d: d2, y: m.train.Y[i]}
	}
	sort.Slice(nbs, func(i, j int) bool {
		if nbs[i].d != nbs[j].d {
			return nbs[i].d < nbs[j].d
		}
		return nbs[i].y < nbs[j].y
	})
	k := m.K
	if k > len(nbs) {
		k = len(nbs)
	}
	idx := make(map[int]int, len(m.classes))
	for i, c := range m.classes {
		idx[c] = i
	}
	var total float64
	for _, n := range nbs[:k] {
		w := 1 / (1 + math.Sqrt(n.d))
		out[idx[n.y]] += w
		total += w
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}
