package ml

import (
	"testing"
	"time"
)

func BenchmarkSMOBinaryFit(b *testing.B) {
	ds := blobs(200, 2, 4, 1.0, 1)
	var x [][]float64
	var y []float64
	for i := range ds.X {
		x = append(x, ds.X[i])
		if ds.Y[i] == 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solveBinary(x, y, RBFKernel{Gamma: 0.25}, 4, 1e-3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMMulticlassFit(b *testing.B) {
	ds := blobs(200, 6, 5, 0.8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSVM(RBFKernel{Gamma: 0.2}, 4)
		if err := m.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMPredict(b *testing.B) {
	train := blobs(200, 6, 5, 0.8, 3)
	m := NewSVM(RBFKernel{Gamma: 0.2}, 4)
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	x := train.X[7]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(x)
	}
}

// gridBenchConfig is the shared workload of the serial/parallel grid-search
// benchmarks: a 28-point grid on a 150-example, 32-feature corpus, shaped
// like the paper's search (many C values sharing few gammas, libSVM-style
// feature counts) so the per-gamma kernel-cache reuse is representative.
func gridBenchConfig(parallelism int) (*Dataset, GridConfig) {
	ds := blobs(150, 3, 32, 1.2, 4)
	return ds, GridConfig{
		CValues:     []float64{0.25, 1, 4, 16, 64, 256, 1024},
		GammaValues: []float64{0.005, 0.02, 0.08, 0.32},
		Folds:       4,
		Parallelism: parallelism,
	}
}

// BenchmarkGridSearchUncached replicates the pre-cache search algorithm —
// one independent CrossValidate per (C, gamma) point, every kernel value
// re-evaluated per fold and per C — as the reference the gamma-keyed kernel
// cache is measured against. It returns the same winner (asserted by
// TestGridSearchMatchesCacheFreeSearch).
func BenchmarkGridSearchUncached(b *testing.B) {
	ds, cfg := gridBenchConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best := GridSearchResult{Accuracy: -1}
		for _, c := range cfg.CValues {
			for _, g := range cfg.GammaValues {
				acc, err := CrossValidate(func() Classifier { return NewSVM(RBFKernel{Gamma: g}, c) },
					ds, cfg.Folds, cfg.Seed)
				if err != nil {
					b.Fatal(err)
				}
				if acc > best.Accuracy {
					best.Accuracy, best.C, best.Gamma = acc, c, g
				}
			}
		}
		m := NewSVM(RBFKernel{Gamma: best.Gamma}, best.C)
		if err := m.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSearchSerial runs the cross-validated grid search with one
// worker — isolating the gamma-keyed kernel cache's gain over
// BenchmarkGridSearchUncached from the worker-pool gain measured by
// BenchmarkGridSearchParallel.
func BenchmarkGridSearchSerial(b *testing.B) {
	ds, cfg := gridBenchConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GridSearchSVM(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSearchParallel fans the same grid over all cores. The
// "speedup" metric is wall-clock vs the pre-optimization (uncached, serial)
// algorithm measured in the same process: the kernel-cache factor applies on
// any machine, the worker-pool factor additionally scales with core count
// (compare ns/op against BenchmarkGridSearchSerial for that component alone).
func BenchmarkGridSearchParallel(b *testing.B) {
	ds, cfg := gridBenchConfig(0)
	start := time.Now()
	for _, c := range cfg.CValues {
		for _, g := range cfg.GammaValues {
			if _, err := CrossValidate(func() Classifier { return NewSVM(RBFKernel{Gamma: g}, c) },
				ds, cfg.Folds, cfg.Seed); err != nil {
				b.Fatal(err)
			}
		}
	}
	baseline := time.Since(start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GridSearchSVM(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(baseline)/(float64(b.Elapsed())/float64(b.N)), "speedup")
}

func BenchmarkBvSBPoolQuery(b *testing.B) {
	train := blobs(60, 4, 4, 0.8, 5)
	m := NewSVM(RBFKernel{Gamma: 0.25}, 4)
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	pool := blobs(500, 4, 4, 0.8, 6).X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (BvSBStrategy{}).Next(m, pool)
	}
}

func BenchmarkModelSerialize(b *testing.B) {
	ds := blobs(150, 4, 5, 0.8, 7)
	m := NewSVM(RBFKernel{Gamma: 0.2}, 4)
	if err := m.Fit(ds); err != nil {
		b.Fatal(err)
	}
	var s Scaler
	if err := s.Fit(ds.X); err != nil {
		b.Fatal(err)
	}
	model := &Model{Classifier: m, Scaler: &s}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := MarshalModel(model)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalModel(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	train := blobs(500, 4, 5, 0.8, 8)
	m := NewKNN(5)
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	x := train.X[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(x)
	}
}

func BenchmarkDecisionTreeFit(b *testing.B) {
	ds := blobs(300, 4, 5, 0.8, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewDecisionTree(8, 1)
		if err := m.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}
