package ml

import "testing"

func BenchmarkSMOBinaryFit(b *testing.B) {
	ds := blobs(200, 2, 4, 1.0, 1)
	var x [][]float64
	var y []float64
	for i := range ds.X {
		x = append(x, ds.X[i])
		if ds.Y[i] == 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solveBinary(x, y, RBFKernel{Gamma: 0.25}, 4, 1e-3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMMulticlassFit(b *testing.B) {
	ds := blobs(200, 6, 5, 0.8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSVM(RBFKernel{Gamma: 0.2}, 4)
		if err := m.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMPredict(b *testing.B) {
	train := blobs(200, 6, 5, 0.8, 3)
	m := NewSVM(RBFKernel{Gamma: 0.2}, 4)
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	x := train.X[7]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(x)
	}
}

func BenchmarkGridSearch(b *testing.B) {
	ds := blobs(80, 3, 4, 0.8, 4)
	cfg := GridConfig{CValues: []float64{1, 8, 64}, GammaValues: []float64{0.05, 0.5}, Folds: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GridSearchSVM(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBvSBPoolQuery(b *testing.B) {
	train := blobs(60, 4, 4, 0.8, 5)
	m := NewSVM(RBFKernel{Gamma: 0.25}, 4)
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	pool := blobs(500, 4, 4, 0.8, 6).X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = (BvSBStrategy{}).Next(m, pool)
	}
}

func BenchmarkModelSerialize(b *testing.B) {
	ds := blobs(150, 4, 5, 0.8, 7)
	m := NewSVM(RBFKernel{Gamma: 0.2}, 4)
	if err := m.Fit(ds); err != nil {
		b.Fatal(err)
	}
	var s Scaler
	if err := s.Fit(ds.X); err != nil {
		b.Fatal(err)
	}
	model := &Model{Classifier: m, Scaler: &s}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := MarshalModel(model)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalModel(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	train := blobs(500, 4, 5, 0.8, 8)
	m := NewKNN(5)
	if err := m.Fit(train); err != nil {
		b.Fatal(err)
	}
	x := train.X[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(x)
	}
}

func BenchmarkDecisionTreeFit(b *testing.B) {
	ds := blobs(300, 4, 5, 0.8, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewDecisionTree(8, 1)
		if err := m.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}
