package ml

import (
	"math"
	"reflect"
	"testing"
)

// TestGridSearchParallelDeterministic asserts the headline guarantee of the
// parallel grid search: every Parallelism setting returns the same winning
// hyper-parameters, the same CV accuracy, and a final model with identical
// predictions — bit for bit, not merely statistically close.
func TestGridSearchParallelDeterministic(t *testing.T) {
	ds := blobs(90, 3, 4, 0.8, 19)
	probe := blobs(60, 3, 4, 1.2, 20) // includes ambiguous points near boundaries
	cfg := GridConfig{
		CValues:     []float64{0.5, 4, 32},
		GammaValues: []float64{0.03125, 0.25, 2},
		Folds:       4,
		Seed:        3,
	}

	run := func(parallelism int) (GridSearchResult, []int, []float64) {
		c := cfg
		c.Parallelism = parallelism
		m, res, err := GridSearchSVM(ds, c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		preds := make([]int, len(probe.X))
		var decs []float64
		for i, x := range probe.X {
			preds[i] = m.Predict(x)
			decs = append(decs, m.DecisionValues(x)...)
		}
		return res, preds, decs
	}

	serialRes, serialPreds, serialDecs := run(1)
	if serialRes.Evaluated != len(cfg.CValues)*len(cfg.GammaValues) {
		t.Fatalf("evaluated %d points, want %d", serialRes.Evaluated, len(cfg.CValues)*len(cfg.GammaValues))
	}
	for _, p := range []int{0, 2, 8} {
		res, preds, decs := run(p)
		if res != serialRes {
			t.Errorf("parallelism %d: result %+v differs from serial %+v", p, res, serialRes)
		}
		if !reflect.DeepEqual(preds, serialPreds) {
			t.Errorf("parallelism %d: predictions differ from serial", p)
		}
		if !reflect.DeepEqual(decs, serialDecs) {
			t.Errorf("parallelism %d: decision values differ from serial (not bit-identical)", p)
		}
	}
}

// TestGridSearchMatchesCacheFreeSearch cross-checks the cached CV numbers
// against the plain CrossValidate path the serial search used before the
// kernel cache existed: for every grid point the cached estimate must equal
// the direct estimate exactly.
func TestGridSearchMatchesCacheFreeSearch(t *testing.T) {
	ds := blobs(60, 3, 3, 0.7, 23)
	cValues := []float64{1, 10}
	gammas := []float64{0.1, 1}
	const folds, seed = 3, 0

	// Reference: the cache-free search (direct kernel evaluation everywhere).
	bestRef := GridSearchResult{Accuracy: -1}
	for _, c := range cValues {
		for _, g := range gammas {
			acc, err := CrossValidate(func() Classifier { return NewSVM(RBFKernel{Gamma: g}, c) }, ds, folds, seed)
			if err != nil {
				t.Fatal(err)
			}
			bestRef.Evaluated++
			if acc > bestRef.Accuracy {
				bestRef.Accuracy, bestRef.C, bestRef.Gamma = acc, c, g
			}

			// Point-wise: cached CV == direct CV, bit for bit.
			trains, tests, err := KFold(ds.Len(), folds, seed)
			if err != nil {
				t.Fatal(err)
			}
			km := kernelMatrix(ds.X, RBFKernel{Gamma: g})
			cached, err := crossValidateSVMGram(ds, km, c, defaultSVMEps, trains, tests)
			if err != nil {
				t.Fatal(err)
			}
			if cached != acc {
				t.Errorf("C=%g gamma=%g: cached CV %v != direct CV %v", c, g, cached, acc)
			}
		}
	}

	_, res, err := GridSearchSVM(ds, GridConfig{CValues: cValues, GammaValues: gammas, Folds: folds, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if res != bestRef {
		t.Errorf("grid search result %+v != cache-free reference %+v", res, bestRef)
	}
}

// TestKernelMatrixExact verifies the cache stores the exact floats k.Eval
// returns, and that gatherKM extracts the right principal submatrix.
func TestKernelMatrixExact(t *testing.T) {
	ds := blobs(25, 2, 3, 0.5, 29)
	k := RBFKernel{Gamma: 0.4}
	km := kernelMatrix(ds.X, k)
	for i := range ds.X {
		for j := range ds.X {
			if km[i][j] != k.Eval(ds.X[i], ds.X[j]) {
				t.Fatalf("km[%d][%d] = %v, want exact k.Eval = %v", i, j, km[i][j], k.Eval(ds.X[i], ds.X[j]))
			}
		}
	}
	idx := []int{3, 7, 11, 20}
	sub := gatherKM(km, idx)
	for i, gi := range idx {
		for j, gj := range idx {
			if sub[i][j] != km[gi][gj] {
				t.Fatalf("gatherKM[%d][%d] != km[%d][%d]", i, j, gi, gj)
			}
		}
	}
}

// TestSolveBinaryKMMatchesDirect trains the same binary subproblem once with
// direct kernel evaluation and once through an index-subset gather of a
// full-dataset Gram matrix; the SMO trajectories must be identical.
func TestSolveBinaryKMMatchesDirect(t *testing.T) {
	ds := blobs(40, 2, 2, 1.0, 37) // overlap so the solver works for its answer
	k := RBFKernel{Gamma: 0.6}
	full := kernelMatrix(ds.X, k)

	// Take an arbitrary index subset (as a CV fold would).
	var idx []int
	var x [][]float64
	var y []float64
	for i := range ds.X {
		if i%3 == 0 {
			continue
		}
		idx = append(idx, i)
		x = append(x, ds.X[i])
		if ds.Y[i] == 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	direct, err := solveBinary(x, y, k, 2, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := solveBinaryKM(x, y, gatherKM(full, idx), 2, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if direct.iters != cached.iters || direct.rho != cached.rho {
		t.Errorf("iters/rho differ: direct (%d, %v) vs cached (%d, %v)",
			direct.iters, direct.rho, cached.iters, cached.rho)
	}
	if !reflect.DeepEqual(direct.svIdx, cached.svIdx) {
		t.Errorf("svIdx differ: %v vs %v", direct.svIdx, cached.svIdx)
	}
	if !reflect.DeepEqual(direct.svCoef, cached.svCoef) {
		t.Errorf("svCoef differ: %v vs %v", direct.svCoef, cached.svCoef)
	}
}

// TestGramSVMMatchesSVM trains the cache-backed gramSVM and the plain SVM on
// the same fold and checks predictions and scores agree on every held-out
// point, exercising the pair order / summation order / tie-break replication.
func TestGramSVMMatchesSVM(t *testing.T) {
	ds := blobs(60, 4, 3, 0.9, 41)
	k := RBFKernel{Gamma: 0.3}
	km := kernelMatrix(ds.X, k)
	trains, tests, err := KFold(ds.Len(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for f := range trains {
		g, err := fitGramSVM(ds, km, trains[f], 4, defaultSVMEps, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewSVM(k, 4)
		if err := ref.Fit(ds.Subset(trains[f])); err != nil {
			t.Fatal(err)
		}
		for _, ti := range tests[f] {
			wantScores := ref.Scores(ds.X[ti])
			gotScores := g.scores(km, ti)
			if !reflect.DeepEqual(gotScores, wantScores) {
				t.Fatalf("fold %d point %d: scores %v != %v", f, ti, gotScores, wantScores)
			}
			if got, want := g.predict(km, ti), ref.Predict(ds.X[ti]); got != want {
				t.Fatalf("fold %d point %d: predict %d != %d", f, ti, got, want)
			}
		}
		if acc := g.accuracy(ds, km, tests[f]); acc != Accuracy(ref, ds.Subset(tests[f])) {
			t.Fatalf("fold %d: accuracy mismatch", f)
		}
	}
}

// TestSVCacheMatchesDirectDecision verifies the shared support-vector kernel
// cache: Scores/DecisionValues computed through the per-distinct-SV cache
// must equal the uncached pairwise decision sums.
func TestSVCacheMatchesDirectDecision(t *testing.T) {
	ds := blobs(80, 4, 3, 0.8, 43)
	m := NewSVM(RBFKernel{Gamma: 0.3}, 8)
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if m.NumDistinctSupportVectors() > m.NumSupportVectors() {
		t.Fatalf("distinct SVs %d > total SV references %d",
			m.NumDistinctSupportVectors(), m.NumSupportVectors())
	}
	probe := blobs(40, 4, 3, 1.2, 44)
	for _, x := range probe.X {
		got := m.DecisionValues(x)
		var want []float64
		for _, p := range m.pairs {
			want = append(want, p.sol.decision(m.Kernel(), x))
		}
		if len(got) != len(want) {
			t.Fatalf("decision count %d != %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("cached decision[%d] = %v, direct = %v", i, got[i], want[i])
			}
		}
	}
}
