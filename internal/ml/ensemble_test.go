package ml

import (
	"bytes"
	"strings"
	"testing"
)

func fitTinyEnsemble(tb testing.TB) (*Ensemble, *Scaler) {
	tb.Helper()
	_, scaled, scaler := fitTinyDataset(tb)
	e := NewEnsemble()
	e.Folds = 2
	if err := e.Fit(scaled); err != nil {
		tb.Fatal(err)
	}
	return e, scaler
}

// TestEnsembleFitBasics pins the committee's structural invariants: default
// member stable, normalized weights, calibration bins, and a Predict that is
// at least as accurate on the training set as a coin flip on this separable
// toy problem.
func TestEnsembleFitBasics(t *testing.T) {
	_, scaled, _ := fitTinyDataset(t)
	e, _ := fitTinyEnsemble(t)
	if len(e.Members()) != 4 {
		t.Fatalf("default stable has %d members, want 4", len(e.Members()))
	}
	var sum float64
	for _, w := range e.Weights() {
		if w <= 0 {
			t.Fatalf("non-positive member weight %v", w)
		}
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	if acc := Accuracy(e, scaled); acc < 0.9 {
		t.Fatalf("ensemble training accuracy %v on a separable toy problem", acc)
	}
	if e.Calibration() == nil {
		t.Fatal("expected a fitted calibration curve")
	}
	var binned int
	for _, b := range e.Calibration() {
		binned += b.N
		if b.Correct > b.N {
			t.Fatalf("bin %+v has more hits than samples", b)
		}
	}
	if binned != scaled.Len() {
		t.Fatalf("calibration binned %d of %d out-of-fold votes", binned, scaled.Len())
	}
}

// TestEnsembleDeterministicAcrossParallelism asserts serial and parallel fits
// produce byte-identical artifacts — the same bit-exactness contract the
// grid search upholds.
func TestEnsembleDeterministicAcrossParallelism(t *testing.T) {
	_, scaled, scaler := fitTinyDataset(t)
	marshal := func(parallelism int) []byte {
		e := NewEnsemble()
		e.Folds = 2
		e.Parallelism = parallelism
		if err := e.Fit(scaled); err != nil {
			t.Fatal(err)
		}
		data, err := MarshalModel(&Model{Classifier: e, Scaler: scaler})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial, parallel := marshal(1), marshal(0)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel ensemble fit is not bit-identical to serial")
	}
}

// TestEnsembleConfidence pins the confidence contract: values live in [0,1],
// unanimous regions score at least as high as the committee's contested
// boundary region, and Model.Confidence routes through the calibrated path.
func TestEnsembleConfidence(t *testing.T) {
	e, scaler := fitTinyEnsemble(t)
	m := &Model{Classifier: e, Scaler: scaler}
	deep := m.Confidence([]float64{0, 9})       // far inside class 0
	border := m.Confidence([]float64{4.5, 4.5}) // on the boundary
	for _, c := range []float64{deep, border} {
		if c < 0 || c > 1 {
			t.Fatalf("confidence %v outside [0,1]", c)
		}
	}
	if deep < border {
		t.Fatalf("deep-region confidence %v < boundary confidence %v", deep, border)
	}
	// Single-model fallback heuristic also stays in [0,1].
	svm, sc := fitTinySVM(t)
	sm := &Model{Classifier: svm, Scaler: sc}
	if c := sm.Confidence([]float64{1, 8}); c < 0 || c > 1 {
		t.Fatalf("svm heuristic confidence %v outside [0,1]", c)
	}
}

// TestEnsembleSerializationGuards exercises the failure edges of the
// "ensemble" kind: nested ensembles, corrupt members, weight mismatches and
// empty member lists must all error, never panic.
func TestEnsembleSerializationGuards(t *testing.T) {
	e, scaler := fitTinyEnsemble(t)
	nested := NewEnsemble(e)
	if err := nested.Fit(&Dataset{X: [][]float64{{0}}, Y: []int{0}}); err != ErrNestedEnsemble {
		t.Fatalf("nested fit error = %v, want ErrNestedEnsemble", err)
	}
	if _, err := MarshalModel(&Model{Classifier: NewEnsemble(NewEnsemble())}); err == nil {
		t.Fatal("nested ensemble must not serialize")
	}
	for name, blob := range map[string]string{
		"missing body":    `{"kind":"ensemble"}`,
		"no members":      `{"kind":"ensemble","ensemble":{"classes":[0,1],"members":[]}}`,
		"corrupt member":  `{"kind":"ensemble","ensemble":{"classes":[0,1],"members":[{"kind":"svm"}]}}`,
		"unknown member":  `{"kind":"ensemble","ensemble":{"classes":[0,1],"members":[{"kind":"wat"}]}}`,
		"nested member":   `{"kind":"ensemble","ensemble":{"classes":[0,1],"members":[{"kind":"ensemble","ensemble":{"members":[{"kind":"knn","knn":{"k":1}}]}}]}}`,
		"weight mismatch": `{"kind":"ensemble","ensemble":{"classes":[0,1],"weights":[0.5],"members":[{"kind":"knn","knn":{"k":1}},{"kind":"knn","knn":{"k":1}}]}}`,
	} {
		if _, err := UnmarshalModel([]byte(blob)); err == nil {
			t.Fatalf("%s: expected an error", name)
		}
	}
	// And the happy path stays a fixed point with real content.
	data, err := MarshalModel(&Model{Classifier: e, Scaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind": "ensemble"`) {
		t.Fatalf("artifact lacks the ensemble kind:\n%s", data)
	}
	m2, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := MarshalModel(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("ensemble artifact round trip is not a fixed point")
	}
	for x := 0.0; x <= 9; x += 0.5 {
		vec := []float64{x, 9 - x}
		if m2.Predict(vec) != (&Model{Classifier: e, Scaler: scaler}).Predict(vec) {
			t.Fatalf("deserialized ensemble diverged at %v", vec)
		}
	}
}

// TestEnsembleDistills asserts ml.Distill labels its corpus through the
// ensemble exactly like a single model — the compiled fast path rides on top
// of the committee unchanged.
func TestEnsembleDistills(t *testing.T) {
	raw, _, _ := fitTinyDataset(t)
	e, scaler := fitTinyEnsemble(t)
	m := &Model{Classifier: e, Scaler: scaler}
	c, err := Distill(m, raw.X, DistillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m.Compiled = c
	for _, x := range raw.X {
		if got, want := m.Predict(x), e.Predict(scaler.Transform(x)); got != want {
			t.Fatalf("compiled ensemble predicts %d, exact committee %d at %v", got, want, x)
		}
	}
	// Explanation surfaces the committee vote.
	ex := m.Explain(raw.X[0])
	if ex.Ensemble == nil || len(ex.Ensemble.Members) != 4 {
		t.Fatalf("explanation lacks committee detail: %+v", ex.Ensemble)
	}
	if ex.Confidence < 0 || ex.Confidence > 1 {
		t.Fatalf("explanation confidence %v outside [0,1]", ex.Confidence)
	}
}
