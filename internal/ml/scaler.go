package ml

import (
	"errors"
	"fmt"
)

// Scaler rescales every feature to the range [-1, 1] from per-feature min/max
// statistics, exactly as the paper (and svm-scale) does before SVM training.
// Constant features map to 0. The zero value is unfitted; call Fit first.
type Scaler struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// Fit computes per-feature minima and maxima over the rows of x.
func (s *Scaler) Fit(x [][]float64) error {
	if len(x) == 0 {
		return errors.New("ml: cannot fit scaler on empty data")
	}
	d := len(x[0])
	s.Min = make([]float64, d)
	s.Max = make([]float64, d)
	copy(s.Min, x[0])
	copy(s.Max, x[0])
	for _, row := range x {
		if len(row) != d {
			return fmt.Errorf("ml: inconsistent row dim %d, want %d", len(row), d)
		}
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return nil
}

// Fitted reports whether Fit has been called.
func (s *Scaler) Fitted() bool { return len(s.Min) > 0 }

// checkDim panics unless x matches the fitted width. Transform/Inverse used
// to silently truncate (extra features dropped) or zero-fill (missing
// features mapped to the mid-range) on mismatch, feeding wrong-width vectors
// straight into the SVM — a model-corrupting bug class that must fail loudly
// at the boundary, not statistically downstream.
func (s *Scaler) checkDim(op string, x []float64) {
	if !s.Fitted() {
		panic(fmt.Sprintf("ml: Scaler.%s on unfitted scaler (call Fit first)", op))
	}
	if len(x) != len(s.Min) {
		panic(fmt.Sprintf("ml: Scaler.%s dimension mismatch: vector has %d features, scaler fitted on %d", op, len(x), len(s.Min)))
	}
}

// Transform maps one feature vector into [-1, 1] per feature. Values outside
// the fitted range extrapolate linearly (they are not clamped), mirroring
// svm-scale behaviour on unseen test data. It panics when the vector's width
// does not match the fitted dimension.
func (s *Scaler) Transform(x []float64) []float64 {
	s.checkDim("Transform", x)
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = s.scaleOne(j, v)
	}
	return out
}

// scaleOne maps one feature value into [-1, 1] — the single-element core
// shared by Transform/TransformInto and the lazy compiled-dispatch walk, so
// element-at-a-time scaling is bit-identical to a full transform.
func (s *Scaler) scaleOne(j int, v float64) float64 {
	span := s.Max[j] - s.Min[j]
	if span == 0 {
		return 0
	}
	return 2*(v-s.Min[j])/span - 1
}

// TransformInto is Transform writing into a caller-provided buffer — the
// allocation-free variant the dispatch hot path uses. dst must have the same
// length as x; it may alias x.
func (s *Scaler) TransformInto(dst, x []float64) {
	s.checkDim("TransformInto", x)
	if len(dst) != len(x) {
		panic(fmt.Sprintf("ml: Scaler.TransformInto dst has %d features, want %d", len(dst), len(x)))
	}
	for j, v := range x {
		dst[j] = s.scaleOne(j, v)
	}
}

// TransformAll maps a whole design matrix.
func (s *Scaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}

// FitTransform fits on x and returns the transformed matrix.
func (s *Scaler) FitTransform(x [][]float64) ([][]float64, error) {
	if err := s.Fit(x); err != nil {
		return nil, err
	}
	return s.TransformAll(x), nil
}

// Inverse maps a scaled vector back to the original feature space, for
// diagnostics and round-trip tests. Like Transform it panics on a
// dimension mismatch rather than truncating or zero-filling.
func (s *Scaler) Inverse(x []float64) []float64 {
	s.checkDim("Inverse", x)
	out := make([]float64, len(x))
	for j, v := range x {
		span := s.Max[j] - s.Min[j]
		out[j] = s.Min[j] + (v+1)/2*span
	}
	return out
}
