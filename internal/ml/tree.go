package ml

import (
	"errors"
	"math"
	"sort"
)

// DecisionTree is a CART-style classification tree (Gini impurity, binary
// axis-aligned splits), provided as an alternate classifier. It is the kind
// of model an expert would hand-roll as "cutoff values for variant
// selection", so it doubles as the manual-heuristic baseline in ablations.
type DecisionTree struct {
	MaxDepth       int
	MinLeafSamples int

	root    *treeNode
	classes []int
}

type treeNode struct {
	Feature   int       `json:"feature"`
	Threshold float64   `json:"threshold"`
	Left      *treeNode `json:"left,omitempty"`
	Right     *treeNode `json:"right,omitempty"`
	// Counts holds per-class sample counts at leaves (aligned to classes).
	Counts []float64 `json:"counts,omitempty"`
}

// NewDecisionTree returns an untrained tree. Non-positive arguments select
// the defaults (depth 8, min leaf 1).
func NewDecisionTree(maxDepth, minLeaf int) *DecisionTree {
	if maxDepth <= 0 {
		maxDepth = 8
	}
	if minLeaf <= 0 {
		minLeaf = 1
	}
	return &DecisionTree{MaxDepth: maxDepth, MinLeafSamples: minLeaf}
}

// Name implements Classifier.
func (m *DecisionTree) Name() string { return "tree" }

// Classes implements Classifier.
func (m *DecisionTree) Classes() []int { return m.classes }

// Fit implements Classifier.
func (m *DecisionTree) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return errors.New("ml: empty training set")
	}
	m.classes = ds.Classes()
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	m.root = m.build(ds, idx, 0)
	return nil
}

func (m *DecisionTree) counts(ds *Dataset, idx []int) []float64 {
	pos := make(map[int]int, len(m.classes))
	for i, c := range m.classes {
		pos[c] = i
	}
	out := make([]float64, len(m.classes))
	for _, i := range idx {
		out[pos[ds.Y[i]]]++
	}
	return out
}

func gini(counts []float64) float64 {
	var n float64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

func (m *DecisionTree) build(ds *Dataset, idx []int, depth int) *treeNode {
	counts := m.counts(ds, idx)
	if depth >= m.MaxDepth || len(idx) <= m.MinLeafSamples || gini(counts) == 0 {
		return &treeNode{Counts: counts}
	}
	bestGain, bestF, bestT := 0.0, -1, 0.0
	parentG := gini(counts)
	dim := ds.Dim()
	for f := 0; f < dim; f++ {
		sorted := append([]int(nil), idx...)
		sort.Slice(sorted, func(a, b int) bool { return ds.X[sorted[a]][f] < ds.X[sorted[b]][f] })
		leftC := make([]float64, len(m.classes))
		rightC := append([]float64(nil), counts...)
		pos := make(map[int]int, len(m.classes))
		for i, c := range m.classes {
			pos[c] = i
		}
		for i := 0; i < len(sorted)-1; i++ {
			ci := pos[ds.Y[sorted[i]]]
			leftC[ci]++
			rightC[ci]--
			v, vn := ds.X[sorted[i]][f], ds.X[sorted[i+1]][f]
			if v == vn {
				continue
			}
			nl, nr := float64(i+1), float64(len(sorted)-i-1)
			gain := parentG - (nl*gini(leftC)+nr*gini(rightC))/float64(len(sorted))
			if gain > bestGain+1e-12 {
				bestGain, bestF, bestT = gain, f, (v+vn)/2
			}
		}
	}
	if bestF < 0 {
		return &treeNode{Counts: counts}
	}
	var li, ri []int
	for _, i := range idx {
		if ds.X[i][bestF] <= bestT {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &treeNode{Counts: counts}
	}
	return &treeNode{
		Feature:   bestF,
		Threshold: bestT,
		Left:      m.build(ds, li, depth+1),
		Right:     m.build(ds, ri, depth+1),
	}
}

func (m *DecisionTree) leaf(x []float64) *treeNode {
	n := m.root
	for n != nil && n.Left != nil {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Predict implements Classifier.
func (m *DecisionTree) Predict(x []float64) int {
	if m.root == nil || len(m.classes) == 0 {
		return 0
	}
	counts := m.leaf(x).Counts
	best, bestC := 0, math.Inf(-1)
	for i, c := range counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return m.classes[best]
}

// Scores implements Classifier: leaf class frequencies.
func (m *DecisionTree) Scores(x []float64) []float64 {
	out := make([]float64, len(m.classes))
	if m.root == nil {
		return out
	}
	counts := m.leaf(x).Counts
	var n float64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = c / n
	}
	return out
}

// Depth returns the depth of the fitted tree (0 for a stump/leaf).
func (m *DecisionTree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.Left == nil {
			return 0
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(m.root)
}
