//go:build !race

package ml

// raceEnabled reports whether the race detector is on; allocation-count
// assertions skip under it (instrumentation allocates).
const raceEnabled = false
