// Package ml implements the machine-learning substrate of the Nitro
// reproduction: a from-scratch C-SVC support vector machine with an SMO
// solver and RBF kernel (standing in for libSVM), min-max feature scaling to
// [-1, 1], k-fold cross-validated grid search over the kernel parameters,
// alternate classifiers (k-nearest-neighbours, CART decision tree), and the
// Best-vs-Second-Best active-learning loop used by Nitro's incremental
// tuning mode. Only the standard library is used.
package ml

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Dataset is a labelled design matrix: X[i] is the feature vector of example
// i and Y[i] its integer class label (for Nitro, the index of the best code
// variant).
type Dataset struct {
	X [][]float64
	Y []int
}

// NewDataset constructs a dataset after validating that X and Y agree in
// length and that every row has the same dimension.
func NewDataset(x [][]float64, y []int) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("ml: %d rows but %d labels", len(x), len(y))
	}
	if len(x) > 0 {
		d := len(x[0])
		for i, row := range x {
			if len(row) != d {
				return nil, fmt.Errorf("ml: row %d has dim %d, want %d", i, len(row), d)
			}
		}
	}
	return &Dataset{X: x, Y: y}, nil
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimension (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Classes returns the sorted distinct labels present in the dataset.
func (d *Dataset) Classes() []int {
	seen := map[int]bool{}
	for _, y := range d.Y {
		seen[y] = true
	}
	out := make([]int, 0, len(seen))
	for y := range seen {
		out = append(out, y)
	}
	sort.Ints(out)
	return out
}

// Append adds one example and returns the (possibly reallocated) dataset.
func (d *Dataset) Append(x []float64, y int) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Subset returns a view-free copy of the rows at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{X: make([][]float64, 0, len(idx)), Y: make([]int, 0, len(idx))}
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, d.Y[i])
	}
	return out
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{X: make([][]float64, len(d.X)), Y: make([]int, len(d.Y))}
	copy(out.Y, d.Y)
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	return out
}

// Shuffled returns a copy of the dataset with rows permuted by the seeded
// generator, so experiment pipelines stay deterministic.
func (d *Dataset) Shuffled(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())
	return d.Subset(idx)
}

// KFold partitions {0..n-1} into k folds (round-robin over a seeded
// permutation) and returns, for each fold, the (train, test) index sets.
// k is clamped to [2, n].
func KFold(n, k int, seed int64) (trains, tests [][]int, err error) {
	if n < 2 {
		return nil, nil, errors.New("ml: need at least 2 examples for k-fold")
	}
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		trains = append(trains, train)
		tests = append(tests, folds[f])
	}
	return trains, tests, nil
}

// Accuracy returns the fraction of examples in ds that clf predicts
// correctly.
func Accuracy(clf Classifier, ds *Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	ok := 0
	for i, x := range ds.X {
		if clf.Predict(x) == ds.Y[i] {
			ok++
		}
	}
	return float64(ok) / float64(ds.Len())
}
