package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// distilledBlobModel fits an RBF SVM on a gaussian-blob problem and distills
// it; returns the model (with Compiled installed), the raw corpus, and the
// artifact.
func distilledBlobModel(t *testing.T, n, k, dim int, spread float64, seed int64, opts DistillOptions) (*Model, [][]float64, *Compiled) {
	t.Helper()
	ds := blobs(n, k, dim, spread, seed)
	var s Scaler
	scaled, err := s.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	svm := NewSVM(RBFKernel{Gamma: 0.7}, 4)
	if err := svm.Fit(&Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	model := &Model{Classifier: svm, Scaler: &s}
	c, err := Distill(model, ds.X, opts)
	if err != nil {
		t.Fatalf("Distill: %v", err)
	}
	model.Compiled = c
	return model, ds.X, c
}

// Property: the flattened program is decision-identical to the CART tree it
// was lowered from, on corpus points and random probes alike.
func TestFlattenedProgramMatchesTree(t *testing.T) {
	ds := blobs(90, 3, 3, 0.6, 11)
	tree := NewDecisionTree(8, 1)
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	c := &Compiled{Nodes: flattenTree(tree), Classes: append([]int(nil), tree.Classes()...), Dim: 3}
	if err := c.Validate(); err != nil {
		t.Fatalf("flattened program invalid: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		var x []float64
		if i < len(ds.X) {
			x = ds.X[i]
		} else {
			x = []float64{rng.Float64() * 20, rng.Float64() * 20, rng.Float64() * 20}
		}
		class, _ := c.walk(x)
		if want := tree.Predict(x); class != want {
			t.Fatalf("vector %v: flattened program says %d, tree says %d", x, class, want)
		}
	}
}

// Property: on every corpus point, the tiered dispatch (compiled with margin
// fallback) serves exactly the exact model's choice. This is the contract the
// deployment runtime relies on: Distill calibrates the margin so every corpus
// disagreement routes to the exact path.
func TestServedChoiceMatchesExactOnCorpus(t *testing.T) {
	model, corpus, c := distilledBlobModel(t, 120, 3, 2, 0.8, 42, DistillOptions{})
	if c.Agreement < 0.99 {
		t.Fatalf("agreement %.4f below install gate", c.Agreement)
	}
	compiledHits := 0
	for i, x := range corpus {
		want := model.PredictExact(x)
		got, tier := model.PredictTier(x)
		if got != want {
			t.Fatalf("corpus point %d: served %d via %s, exact model says %d", i, got, tier, want)
		}
		if tier == TierCompiled {
			compiledHits++
		}
	}
	if compiledHits == 0 {
		t.Fatal("compiled tier never decided — margin calibration routed everything to exact")
	}
	gotRate := 1 - float64(compiledHits)/float64(len(corpus))
	if math.Abs(gotRate-c.FallbackRate) > 1e-9 {
		t.Fatalf("observed fallback rate %.4f != calibrated %.4f", gotRate, c.FallbackRate)
	}
}

// Off-corpus probes near decision boundaries must either agree with the exact
// model or report ok=false (and thus route to the exact path).
func TestCompiledMarginFallback(t *testing.T) {
	model, _, c := distilledBlobModel(t, 120, 3, 2, 0.8, 7, DistillOptions{})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		raw := []float64{rng.Float64() * 16, rng.Float64() * 16}
		scaled := model.Scaler.Transform(raw)
		pred, ok := c.Predict(scaled)
		if !ok {
			continue // routed to exact — always correct by definition
		}
		_, margin := c.walk(scaled)
		if margin < c.Margin {
			t.Fatalf("probe %d: ok=true with walk margin %g < calibrated %g", i, margin, c.Margin)
		}
		class, _ := c.walk(scaled)
		if pred != class {
			t.Fatalf("probe %d: Predict %d != walk %d", i, pred, class)
		}
	}
}

// A depth-1 stump cannot represent XOR: agreement is 50%, far below the
// install gate, so Distill must refuse with ErrDistillRejected.
func TestDistillRejectedLowAgreement(t *testing.T) {
	ds := &Dataset{}
	for i := 0; i < 8; i++ {
		a, b := float64(i&1), float64((i>>1)&1)
		label := int(a) ^ int(b)
		ds.Append([]float64{a, b}, label)
	}
	knn := NewKNN(1)
	if err := knn.Fit(ds); err != nil {
		t.Fatal(err)
	}
	model := &Model{Classifier: knn}
	_, err := Distill(model, ds.X, DistillOptions{MaxDepth: 1})
	if !errors.Is(err, ErrDistillRejected) {
		t.Fatalf("want ErrDistillRejected, got %v", err)
	}
	// With the agreement gate lowered, the tree degenerates to a single leaf
	// (no split has gini gain on XOR): disagreements sit on an infinite-margin
	// path, so calibration cannot route them to the exact model and the
	// artifact must still be rejected rather than served unsafely.
	_, err = Distill(model, ds.X, DistillOptions{MaxDepth: 1, MinAgreement: 0.4})
	if !errors.Is(err, ErrDistillRejected) {
		t.Fatalf("want ErrDistillRejected via margin calibration, got %v", err)
	}
}

func TestDistillInputErrors(t *testing.T) {
	model, corpus, _ := distilledBlobModel(t, 40, 2, 2, 0.4, 3, DistillOptions{})
	if _, err := Distill(nil, corpus, DistillOptions{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Distill(model, nil, DistillOptions{}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Distill(model, [][]float64{{1, 2}, {3}}, DistillOptions{}); err == nil {
		t.Error("ragged corpus accepted")
	}
	if _, err := Distill(model, [][]float64{{}}, DistillOptions{}); err == nil {
		t.Error("zero-dimensional corpus accepted")
	}
}

// Validate must reject every malformed artifact shape the deserializer could
// be handed: cycles, dangling indices, bad calibration, bad grids.
func TestCompiledValidateRejectsMalformed(t *testing.T) {
	leaf := func(class int32) CompiledNode { return CompiledNode{Left: -1, Right: -1, Class: class} }
	good := func() *Compiled {
		return &Compiled{
			Nodes: []CompiledNode{
				{Feature: 0, Threshold: 0.5, Left: 1, Right: 2},
				leaf(0), leaf(1),
			},
			Classes: []int{0, 1},
			Dim:     2,
			Margin:  0.01,
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good artifact rejected: %v", err)
	}
	cases := map[string]func(*Compiled){
		"no nodes":           func(c *Compiled) { c.Nodes = nil },
		"no classes":         func(c *Compiled) { c.Classes = nil },
		"dim zero":           func(c *Compiled) { c.Dim = 0 },
		"negative margin":    func(c *Compiled) { c.Margin = -1 },
		"NaN margin":         func(c *Compiled) { c.Margin = math.NaN() },
		"Inf margin":         func(c *Compiled) { c.Margin = math.Inf(1) },
		"agreement > 1":      func(c *Compiled) { c.Agreement = 1.5 },
		"fallback rate < 0":  func(c *Compiled) { c.FallbackRate = -0.1 },
		"self loop":          func(c *Compiled) { c.Nodes[0].Left = 0 },
		"backward edge":      func(c *Compiled) { c.Nodes[0].Right = 0 },
		"left out of range":  func(c *Compiled) { c.Nodes[0].Left = 9 },
		"feature out of dim": func(c *Compiled) { c.Nodes[0].Feature = 2 },
		"leaf class range":   func(c *Compiled) { c.Nodes[1].Class = 7 },
		"NaN threshold":      func(c *Compiled) { c.Nodes[0].Threshold = math.NaN() },
		"grid res zero":      func(c *Compiled) { c.Grid = &DecisionGrid{Res: 0} },
		"grid res too large": func(c *Compiled) { c.Grid = &DecisionGrid{Res: 2048} },
		"grid corner dims":   func(c *Compiled) { c.Grid = &DecisionGrid{Res: 2, Lo: []float64{0}, Hi: []float64{1}} },
		"grid lo >= hi": func(c *Compiled) {
			c.Grid = &DecisionGrid{Res: 2, Lo: []float64{0, 1}, Hi: []float64{1, 1}, Cells: make([]int8, 4)}
		},
		"grid cell count": func(c *Compiled) {
			c.Grid = &DecisionGrid{Res: 2, Lo: []float64{0, 0}, Hi: []float64{1, 1}, Cells: make([]int8, 3)}
		},
		"grid cell class oob": func(c *Compiled) {
			g := &DecisionGrid{Res: 2, Lo: []float64{0, 0}, Hi: []float64{1, 1}, Cells: make([]int8, 4)}
			g.Cells[2] = 5
			c.Grid = g
		},
	}
	for name, mutate := range cases {
		c := good()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed artifact", name)
		}
	}
}

func TestCompiledDepth(t *testing.T) {
	leaf := func(class int32) CompiledNode { return CompiledNode{Left: -1, Right: -1, Class: class} }
	c := &Compiled{Nodes: []CompiledNode{leaf(0)}}
	if d := c.Depth(); d != 0 {
		t.Fatalf("single leaf depth = %d, want 0", d)
	}
	c = &Compiled{Nodes: []CompiledNode{
		{Feature: 0, Threshold: 0, Left: 1, Right: 2},
		leaf(0),
		{Feature: 0, Threshold: 1, Left: 3, Right: 4},
		leaf(0), leaf(1),
	}}
	if d := c.Depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

// A grid hit must be exactly equivalent to a confident tree walk: with and
// without the grid, Predict returns identical (class, ok) everywhere.
func TestGridMatchesWalk(t *testing.T) {
	model, corpus, c := distilledBlobModel(t, 120, 3, 2, 0.8, 21, DistillOptions{Grid: true, GridRes: 16})
	if c.Grid == nil {
		t.Fatal("grid was not built for a 2-dimensional corpus")
	}
	noGrid := *c
	noGrid.Grid = nil
	gridHits := 0
	rng := rand.New(rand.NewSource(8))
	probe := func(scaled []float64) {
		p1, ok1 := c.Predict(scaled)
		p2, ok2 := noGrid.Predict(scaled)
		if ok1 != ok2 || (ok1 && p1 != p2) {
			t.Fatalf("grid diverged from walk at %v: (%d,%v) vs (%d,%v)", scaled, p1, ok1, p2, ok2)
		}
		if c.Grid.lookup(scaled) >= 0 {
			gridHits++
		}
	}
	for _, x := range corpus {
		probe(model.Scaler.Transform(x))
	}
	for i := 0; i < 2000; i++ {
		probe([]float64{rng.Float64()*2.4 - 1.2, rng.Float64()*2.4 - 1.2})
	}
	if gridHits == 0 {
		t.Fatal("grid never resolved a cell — every cell is walk-required")
	}
}

// Serialization must round-trip the compiled artifact and its calibration
// metadata, and the deserialized model must keep serving identical choices.
func TestCompiledSerializationRoundTrip(t *testing.T) {
	model, corpus, c := distilledBlobModel(t, 100, 3, 2, 0.7, 13, DistillOptions{Grid: true})
	data, err := MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	bc := back.Compiled
	if bc == nil {
		t.Fatal("compiled artifact lost in round trip")
	}
	if bc.Agreement != c.Agreement || bc.FallbackRate != c.FallbackRate ||
		bc.Margin != c.Margin || bc.CorpusSize != c.CorpusSize || bc.Dim != c.Dim {
		t.Fatalf("calibration metadata changed: %+v vs %+v", bc, c)
	}
	if (bc.Grid == nil) != (c.Grid == nil) {
		t.Fatal("grid presence changed in round trip")
	}
	for i, x := range corpus {
		wantPred, wantTier := model.PredictTier(x)
		gotPred, gotTier := back.PredictTier(x)
		if gotPred != wantPred || gotTier != wantTier {
			t.Fatalf("corpus point %d: (%d,%s) after round trip, want (%d,%s)",
				i, gotPred, gotTier, wantPred, wantTier)
		}
	}
}

// UnmarshalModel must refuse artifacts whose compiled program is malformed —
// a corrupt program could loop or index out of bounds at dispatch time.
func TestUnmarshalRejectsBadCompiled(t *testing.T) {
	model, _, _ := distilledBlobModel(t, 60, 2, 2, 0.4, 9, DistillOptions{})
	data, err := MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	bad := string(data)
	// Corrupt the program: point the root's left child at itself.
	c := *model.Compiled
	c.Nodes = append([]CompiledNode(nil), c.Nodes...)
	if len(c.Nodes) > 1 && c.Nodes[0].Left > 0 {
		c.Nodes[0].Left = 0
	} else {
		t.Skip("artifact is a single leaf; nothing to corrupt")
	}
	model2 := *model
	model2.Compiled = &c
	badData, err := MarshalModel(&model2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalModel(badData); err == nil {
		t.Fatal("UnmarshalModel accepted a looping compiled program")
	}
	// The original still parses.
	if _, err := UnmarshalModel([]byte(bad)); err != nil {
		t.Fatal(err)
	}
}

// PredictAll must be observationally identical to per-vector PredictTier,
// with nil rows yielding (-1, TierNone).
func TestPredictAllMatchesPredictTier(t *testing.T) {
	model, corpus, _ := distilledBlobModel(t, 80, 3, 2, 0.8, 31, DistillOptions{})
	xs := make([][]float64, 0, len(corpus)+2)
	xs = append(xs, nil)
	xs = append(xs, corpus...)
	xs = append(xs, nil)
	preds, tiers := model.PredictAll(xs)
	if len(preds) != len(xs) || len(tiers) != len(xs) {
		t.Fatalf("result lengths %d/%d, want %d", len(preds), len(tiers), len(xs))
	}
	for i, x := range xs {
		if x == nil {
			if preds[i] != -1 || tiers[i] != TierNone {
				t.Fatalf("nil row %d: got (%d,%s)", i, preds[i], tiers[i])
			}
			continue
		}
		wantPred, wantTier := model.PredictTier(x)
		if preds[i] != wantPred || tiers[i] != wantTier {
			t.Fatalf("row %d: (%d,%s), want (%d,%s)", i, preds[i], tiers[i], wantPred, wantTier)
		}
	}
}

func TestTierString(t *testing.T) {
	want := map[Tier]string{TierNone: "", TierExact: "exact", TierCompiled: "compiled", TierMemo: "memo", Tier(99): ""}
	for tier, s := range want {
		if tier.String() != s {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, tier.String(), s)
		}
	}
}

// The steady-state exact and compiled prediction paths must not allocate.
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	model, corpus, _ := distilledBlobModel(t, 80, 3, 2, 0.8, 17, DistillOptions{})
	x := corpus[0]
	model.PredictExact(x) // warm the pool
	if n := testing.AllocsPerRun(200, func() { model.PredictExact(x) }); n != 0 {
		t.Errorf("PredictExact allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { model.PredictTier(x) }); n != 0 {
		t.Errorf("PredictTier allocates %v per run, want 0", n)
	}
}
