package ml

import (
	"encoding/json"
	"fmt"
	"time"
)

// ModelMeta stamps a trained model with its provenance, so deployment logs,
// statistics and hot-swap events can attribute which model served a call.
// Old model files without a meta block deserialize with a nil Meta — the
// stamp is additive and fully backward compatible.
type ModelMeta struct {
	// Version is a monotonically increasing model generation: 1 for the
	// first offline tuning, incremented by every accepted retrain.
	Version int `json:"version"`
	// CreatedAt records when the model was fitted (UTC). The offline tuner
	// leaves it zero so identical inputs produce byte-identical artifacts;
	// the online retrainer stamps wall-clock time.
	CreatedAt time.Time `json:"created_at"`
	// TrainedOn counts the labelled instances the classifier was fitted on.
	TrainedOn int `json:"trained_on"`
}

// Model is the serializable envelope Nitro persists after tuning: the fitted
// classifier plus the feature scaler, so deployment-time selection needs no
// retraining. It replaces the paper's generated C++ header + libSVM model
// file pair.
type Model struct {
	Classifier Classifier
	Scaler     *Scaler
	// Meta optionally stamps the model's provenance (version, creation time,
	// training-set size); nil for artifacts written before stamping existed.
	Meta *ModelMeta
	// Compiled is the optional distilled fast-dispatch artifact (see Distill).
	// When present, Predict routes confident calls through it and falls back
	// to the exact classifier near decision boundaries. Like the classifier,
	// it is written only at distill/deserialization time and read-only
	// afterwards, so a fitted Model stays safe for concurrent prediction.
	Compiled *Compiled
}

// Version returns the stamped model generation, or 0 when unstamped.
func (m *Model) Version() int {
	if m == nil || m.Meta == nil {
		return 0
	}
	return m.Meta.Version
}

// Predict scales x (if a scaler is present) and classifies it, routing
// through the compiled artifact when one is installed and confident; see
// PredictTier for the tier-reporting variant.
func (m *Model) Predict(x []float64) int {
	pred, _ := m.PredictTier(x)
	return pred
}

// Scores scales x and returns the per-class confidences.
func (m *Model) Scores(x []float64) []float64 {
	if m.Scaler != nil && m.Scaler.Fitted() {
		x = m.Scaler.Transform(x)
	}
	return m.Classifier.Scores(x)
}

type svmPairJSON struct {
	A      int         `json:"a"`
	B      int         `json:"b"`
	SVs    [][]float64 `json:"svs"`
	Coefs  []float64   `json:"coefs"`
	Rho    float64     `json:"rho"`
	Iters  int         `json:"iters"`
	Kernel kernelSpec  `json:"-"`
}

type svmJSON struct {
	C       float64       `json:"c"`
	Kernel  kernelSpec    `json:"kernel"`
	Classes []int         `json:"classes"`
	Pairs   []svmPairJSON `json:"pairs"`
}

type knnJSON struct {
	K       int     `json:"k"`
	Train   Dataset `json:"train"`
	Classes []int   `json:"classes"`
}

type treeJSON struct {
	MaxDepth int       `json:"max_depth"`
	MinLeaf  int       `json:"min_leaf"`
	Root     *treeNode `json:"root"`
	Classes  []int     `json:"classes"`
}

type logisticJSON struct {
	LR      float64     `json:"lr"`
	L2      float64     `json:"l2"`
	Iters   int         `json:"iters"`
	W       [][]float64 `json:"w"`
	Classes []int       `json:"classes"`
}

type ensembleJSON struct {
	Folds   int         `json:"folds,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	Classes []int       `json:"classes"`
	Weights []float64   `json:"weights,omitempty"`
	Calib   []CalibBin  `json:"calib,omitempty"`
	Members []modelJSON `json:"members"`
}

type modelJSON struct {
	Kind     string          `json:"kind"`
	Meta     *ModelMeta      `json:"meta,omitempty"`
	Scaler   *Scaler         `json:"scaler,omitempty"`
	SVM      *svmJSON        `json:"svm,omitempty"`
	KNN      *knnJSON        `json:"knn,omitempty"`
	Tree     *treeJSON       `json:"tree,omitempty"`
	Logistic *logisticJSON   `json:"logistic,omitempty"`
	Ensemble *ensembleJSON   `json:"ensemble,omitempty"`
	Compiled *Compiled       `json:"compiled,omitempty"`
	Extra    json.RawMessage `json:"extra,omitempty"`
}

// envelopeClassifier fills env's Kind and classifier body from c. Ensemble
// members recurse through the same envelope shape (one level only), so a
// serialized ensemble is a list of ordinary member envelopes.
func envelopeClassifier(c Classifier, env *modelJSON, nested bool) error {
	switch c := c.(type) {
	case *SVM:
		env.Kind = "svm"
		sj := &svmJSON{C: c.C, Kernel: specOf(c.kernel), Classes: c.classes}
		for _, p := range c.pairs {
			sj.Pairs = append(sj.Pairs, svmPairJSON{
				A: p.a, B: p.b, SVs: p.sol.svX, Coefs: p.sol.svCoef, Rho: p.sol.rho, Iters: p.sol.iters,
			})
		}
		env.SVM = sj
	case *KNN:
		env.Kind = "knn"
		kj := &knnJSON{K: c.K, Classes: c.classes}
		if c.train != nil {
			kj.Train = *c.train
		}
		env.KNN = kj
	case *DecisionTree:
		env.Kind = "tree"
		env.Tree = &treeJSON{MaxDepth: c.MaxDepth, MinLeaf: c.MinLeafSamples, Root: c.root, Classes: c.classes}
	case *Logistic:
		env.Kind = "logistic"
		env.Logistic = &logisticJSON{LR: c.LR, L2: c.L2, Iters: c.Iters, W: c.W, Classes: c.classes}
	case *Ensemble:
		if nested {
			return ErrNestedEnsemble
		}
		env.Kind = "ensemble"
		ej := &ensembleJSON{
			Folds: c.Folds, Seed: c.Seed,
			Classes: c.classes, Weights: c.weights, Calib: c.calib,
		}
		for _, m := range c.members {
			var me modelJSON
			if err := envelopeClassifier(m, &me, true); err != nil {
				return err
			}
			ej.Members = append(ej.Members, me)
		}
		env.Ensemble = ej
	default:
		return fmt.Errorf("ml: cannot serialize classifier kind %q", c.Name())
	}
	return nil
}

// MarshalModel serializes a fitted model (SVM, KNN, DecisionTree, Logistic or
// Ensemble) with its scaler to JSON.
func MarshalModel(m *Model) ([]byte, error) {
	if m == nil || m.Classifier == nil {
		return nil, fmt.Errorf("ml: nil model")
	}
	env := modelJSON{Scaler: m.Scaler, Meta: m.Meta, Compiled: m.Compiled}
	if err := envelopeClassifier(m.Classifier, &env, false); err != nil {
		return nil, err
	}
	return json.MarshalIndent(env, "", "  ")
}

// UnmarshalModel reconstructs a model serialized by MarshalModel.
func UnmarshalModel(data []byte) (*Model, error) {
	var env modelJSON
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ml: bad model JSON: %w", err)
	}
	m := &Model{Scaler: env.Scaler, Meta: env.Meta}
	if env.Compiled != nil {
		// A compiled artifact is a little interpreted program; validate the
		// structure (forward edges, index bounds) so a corrupted or hostile
		// file cannot make the dispatch hot loop read out of bounds or spin.
		if err := env.Compiled.Validate(); err != nil {
			return nil, fmt.Errorf("ml: bad compiled artifact: %w", err)
		}
		m.Compiled = env.Compiled
	}
	clf, err := classifierFromEnvelope(&env, false)
	if err != nil {
		return nil, err
	}
	m.Classifier = clf
	return m, nil
}

// classifierFromEnvelope reconstructs the classifier named by env.Kind.
// Corrupt ensemble members surface as errors, never panics — the deserializer
// stays total even when a hostile blob nests garbage inside "members".
func classifierFromEnvelope(env *modelJSON, nested bool) (Classifier, error) {
	switch env.Kind {
	case "svm":
		if env.SVM == nil {
			return nil, fmt.Errorf("ml: svm model missing body")
		}
		k, err := env.SVM.Kernel.kernel()
		if err != nil {
			return nil, err
		}
		svm := NewSVM(k, env.SVM.C)
		svm.classes = env.SVM.Classes
		for _, p := range env.SVM.Pairs {
			svm.pairs = append(svm.pairs, svmPair{
				a: p.A, b: p.B,
				sol: &smoResult{svX: p.SVs, svCoef: p.Coefs, rho: p.Rho, iters: p.Iters},
			})
		}
		svm.buildSVCache()
		return svm, nil
	case "knn":
		if env.KNN == nil {
			return nil, fmt.Errorf("ml: knn model missing body")
		}
		knn := NewKNN(env.KNN.K)
		knn.classes = env.KNN.Classes
		train := env.KNN.Train
		knn.train = &train
		return knn, nil
	case "tree":
		if env.Tree == nil {
			return nil, fmt.Errorf("ml: tree model missing body")
		}
		t := NewDecisionTree(env.Tree.MaxDepth, env.Tree.MinLeaf)
		t.root = env.Tree.Root
		t.classes = env.Tree.Classes
		return t, nil
	case "logistic":
		if env.Logistic == nil {
			return nil, fmt.Errorf("ml: logistic model missing body")
		}
		l := NewLogistic(env.Logistic.LR, env.Logistic.L2, env.Logistic.Iters)
		l.W = env.Logistic.W
		l.classes = env.Logistic.Classes
		return l, nil
	case "ensemble":
		if nested {
			return nil, ErrNestedEnsemble
		}
		ej := env.Ensemble
		if ej == nil {
			return nil, fmt.Errorf("ml: ensemble model missing body")
		}
		if len(ej.Members) == 0 {
			return nil, fmt.Errorf("ml: ensemble has no members")
		}
		if len(ej.Weights) != 0 && len(ej.Weights) != len(ej.Members) {
			return nil, fmt.Errorf("ml: ensemble has %d members but %d weights", len(ej.Members), len(ej.Weights))
		}
		e := &Ensemble{Folds: ej.Folds, Seed: ej.Seed, classes: ej.Classes, weights: ej.Weights, calib: ej.Calib}
		for i := range ej.Members {
			member, err := classifierFromEnvelope(&ej.Members[i], true)
			if err != nil {
				return nil, fmt.Errorf("ml: ensemble member %d: %w", i, err)
			}
			e.members = append(e.members, member)
		}
		return e, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
}
