package ml

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
)

// explainFixture trains the 3-class SVM model the core tests use: label 0 for
// x<3, 1 for 3<=x<6, 2 for x>=6, with a fitted [-1,1] scaler.
func explainFixture(t *testing.T) *Model {
	t.Helper()
	ds := &Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		switch {
		case x >= 6:
			label = 2
		case x >= 3:
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	scaler := &Scaler{}
	scaled, err := scaler.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	svm := NewSVM(RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&Dataset{X: scaled, Y: ds.Y}); err != nil {
		t.Fatal(err)
	}
	return &Model{Classifier: svm, Scaler: scaler, Meta: &ModelMeta{Version: 7, TrainedOn: ds.Len()}}
}

func TestExplainMatchesDispatchPaths(t *testing.T) {
	m := explainFixture(t)
	for x := 0.0; x <= 9; x += 0.5 {
		in := []float64{x}
		ex := m.Explain(in)
		if ex.Predicted != m.Predict(in) {
			t.Fatalf("x=%v: Explain.Predicted=%d != Predict=%d", x, ex.Predicted, m.Predict(in))
		}
		ranked := m.RankedClasses(in)
		if fmt.Sprint(ex.Ranked) != fmt.Sprint(ranked) {
			t.Fatalf("x=%v: Explain.Ranked=%v != RankedClasses=%v", x, ex.Ranked, ranked)
		}
		if len(ex.Ranked) == 0 || ex.Ranked[0] != ex.Predicted {
			t.Fatalf("x=%v: Ranked[0]=%v != Predicted=%d", x, ex.Ranked, ex.Predicted)
		}
		scores := m.Scores(in)
		if len(ex.Scores) != len(scores) {
			t.Fatalf("x=%v: scores length mismatch", x)
		}
		for i := range scores {
			if math.Abs(ex.Scores[i]-scores[i]) > 1e-15 {
				t.Fatalf("x=%v: Explain.Scores=%v != Scores=%v", x, ex.Scores, scores)
			}
		}
	}
}

func TestExplainSVMInternals(t *testing.T) {
	m := explainFixture(t)
	svm := m.Classifier.(*SVM)
	in := []float64{4}
	ex := m.Explain(in)

	if ex.Version != 7 {
		t.Errorf("Version = %d, want 7", ex.Version)
	}
	if len(ex.Raw) != 1 || ex.Raw[0] != 4 {
		t.Errorf("Raw = %v", ex.Raw)
	}
	if ex.Scaled == nil {
		t.Fatal("Scaled is nil despite fitted scaler")
	}
	wantScaled := m.Scaler.Transform(in)
	if ex.Scaled[0] != wantScaled[0] {
		t.Errorf("Scaled = %v, want %v", ex.Scaled, wantScaled)
	}
	// Pair decisions must be the raw DecisionValues over the scaled vector.
	wantDV := svm.DecisionValues(wantScaled)
	if fmt.Sprint(ex.PairDecisions) != fmt.Sprint(wantDV) {
		t.Errorf("PairDecisions = %v, want %v", ex.PairDecisions, wantDV)
	}
	pairs := svm.PairClasses()
	if len(pairs) != 3 || len(ex.PairClasses) != 3 {
		t.Fatalf("PairClasses = %v (svm reports %v), want 3 one-vs-one pairs", ex.PairClasses, pairs)
	}
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for i, p := range pairs {
		if p != want[i] {
			t.Errorf("pair %d = %v, want %v", i, p, want[i])
		}
	}
	// The explanation owns its slices: mutating the input must not alter it.
	in[0] = 99
	if ex.Raw[0] != 4 {
		t.Error("Explanation.Raw aliases the caller's slice")
	}
}

func TestExplainNonSVMLeavesPairFieldsNil(t *testing.T) {
	ds := &Dataset{}
	for x := 0.0; x < 8; x++ {
		label := 0
		if x >= 4 {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	knn := NewKNN(3)
	if err := knn.Fit(ds); err != nil {
		t.Fatal(err)
	}
	m := &Model{Classifier: knn}
	ex := m.Explain([]float64{5})
	if ex.PairDecisions != nil || ex.PairClasses != nil {
		t.Fatalf("non-SVM explanation has pair fields: %+v", ex)
	}
	if ex.Scaled != nil {
		t.Fatalf("no scaler, but Scaled = %v", ex.Scaled)
	}
	if ex.Predicted != m.Predict([]float64{5}) {
		t.Fatalf("Predicted = %d", ex.Predicted)
	}
	if ex.Version != 0 {
		t.Fatalf("unstamped model Version = %d", ex.Version)
	}
}

// tiedClassifier returns identical scores for every class: the pathological
// input for rank stability.
type tiedClassifier struct{ classes []int }

func (c *tiedClassifier) Fit(*Dataset) error { return nil }
func (c *tiedClassifier) Predict(x []float64) int {
	// Argmax with first-wins tie break, like every real classifier here.
	return c.classes[0]
}
func (c *tiedClassifier) Scores(x []float64) []float64 {
	return make([]float64, len(c.classes)) // all zero: total tie
}
func (c *tiedClassifier) Classes() []int { return c.classes }
func (c *tiedClassifier) Name() string   { return "tied" }

func TestRankedClassesTieBreakDeterministic(t *testing.T) {
	m := &Model{Classifier: &tiedClassifier{classes: []int{3, 1, 4, 0, 2}}}
	want := fmt.Sprint([]int{3, 1, 4, 0, 2}) // Classes() order under a total tie

	// Stable across serial repetition.
	for i := 0; i < 100; i++ {
		if got := fmt.Sprint(m.RankedClasses([]float64{1})); got != want {
			t.Fatalf("run %d: ranked %v, want Classes() order %v", i, got, want)
		}
	}
	if m.RankedClasses([]float64{1})[0] != m.Predict([]float64{1}) {
		t.Fatal("tie-broken head disagrees with Predict")
	}

	// Stable across GOMAXPROCS values and concurrent callers.
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		old := runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if got := fmt.Sprint(m.RankedClasses([]float64{1})); got != want {
						select {
						case errs <- got:
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
		runtime.GOMAXPROCS(old)
		select {
		case got := <-errs:
			t.Fatalf("GOMAXPROCS=%d: ranked %v, want %v", procs, got, want)
		default:
		}
	}
}

func TestRankedClassesPartialTie(t *testing.T) {
	// Classes 10,20,30 with scores [0.5, 0.9, 0.5]: 20 first, then the tied
	// pair in Classes() order.
	m := &Model{Classifier: &scriptedClassifier{
		classes: []int{10, 20, 30}, scores: []float64{0.5, 0.9, 0.5},
	}}
	got := fmt.Sprint(m.RankedClasses(nil))
	if got != fmt.Sprint([]int{20, 10, 30}) {
		t.Fatalf("partial-tie rank = %v, want [20 10 30]", got)
	}
}

type scriptedClassifier struct {
	classes []int
	scores  []float64
}

func (c *scriptedClassifier) Fit(*Dataset) error           { return nil }
func (c *scriptedClassifier) Predict(x []float64) int      { return c.classes[argmax(c.scores)] }
func (c *scriptedClassifier) Scores(x []float64) []float64 { return c.scores }
func (c *scriptedClassifier) Classes() []int               { return c.classes }
func (c *scriptedClassifier) Name() string                 { return "scripted" }

func argmax(s []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range s {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
