package ml

import (
	"strings"
	"testing"
)

// mustPanic runs fn and returns the recovered panic message, failing the
// test when fn returns normally.
func mustPanic(t *testing.T, what string, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = toString(r)
			} else {
				t.Errorf("%s should panic on dimension mismatch", what)
			}
		}()
		fn()
	}()
	return msg
}

func toString(r any) string {
	if s, ok := r.(string); ok {
		return s
	}
	if e, ok := r.(error); ok {
		return e.Error()
	}
	return ""
}

// TestScalerDimensionMismatchPanics is the regression test for the silent
// truncate/zero-fill bug: Transform and Inverse used to `break` past the
// fitted width, so a wrong-width vector produced a wrong-width (or silently
// padded) output that flowed straight into the SVM. Mismatches must now fail
// loudly with an actionable message.
func TestScalerDimensionMismatchPanics(t *testing.T) {
	s := &Scaler{}
	if err := s.Fit([][]float64{{0, 0, 0}, {1, 2, 3}}); err != nil {
		t.Fatal(err)
	}

	// Matching width stays fine.
	if got := s.Transform([]float64{0.5, 1, 1.5}); len(got) != 3 {
		t.Fatalf("Transform width = %d", len(got))
	}
	if got := s.Inverse([]float64{0, 0, 0}); len(got) != 3 {
		t.Fatalf("Inverse width = %d", len(got))
	}

	tooWide := []float64{1, 2, 3, 4}
	tooNarrow := []float64{1}
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Transform/too-wide", func() { s.Transform(tooWide) }},
		{"Transform/too-narrow", func() { s.Transform(tooNarrow) }},
		{"Inverse/too-wide", func() { s.Inverse(tooWide) }},
		{"Inverse/too-narrow", func() { s.Inverse(tooNarrow) }},
	} {
		msg := mustPanic(t, tc.name, tc.fn)
		if !strings.Contains(msg, "dimension mismatch") {
			t.Errorf("%s: panic message %q should name the dimension mismatch", tc.name, msg)
		}
	}

	// TransformAll inherits the check.
	mustPanic(t, "TransformAll", func() { s.TransformAll([][]float64{{1, 2, 3}, {1, 2}}) })

	// Unfitted scalers fail loudly too instead of emitting zeros.
	unfitted := &Scaler{}
	msg := mustPanic(t, "unfitted Transform", func() { unfitted.Transform([]float64{1}) })
	if !strings.Contains(msg, "unfitted") {
		t.Errorf("unfitted panic message %q should say the scaler is unfitted", msg)
	}
}
