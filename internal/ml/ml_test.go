package ml

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// blobs generates a deterministic gaussian-blob classification problem with
// k well-separated classes in dim dimensions.
func blobs(n, k, dim int, spread float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = float64(c*7) + 3*rng.Float64()
		}
	}
	ds := &Dataset{}
	for i := 0; i < n; i++ {
		c := i % k
		x := make([]float64, dim)
		for j := range x {
			x[j] = centers[c][j] + rng.NormFloat64()*spread
		}
		ds.Append(x, c)
	}
	return ds
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset([][]float64{{1}}, []int{1, 2}); err == nil {
		t.Error("length mismatch not caught")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {1}}, []int{0, 1}); err == nil {
		t.Error("ragged rows not caught")
	}
	ds, err := NewDataset([][]float64{{1, 2}, {3, 4}}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dim() != 2 {
		t.Errorf("Len/Dim wrong: %d %d", ds.Len(), ds.Dim())
	}
	if got := ds.Classes(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Classes = %v", got)
	}
}

func TestDatasetCloneIndependence(t *testing.T) {
	ds := blobs(10, 2, 3, 0.1, 1)
	cl := ds.Clone()
	cl.X[0][0] = 999
	cl.Y[0] = 42
	if ds.X[0][0] == 999 || ds.Y[0] == 42 {
		t.Error("Clone shares storage with original")
	}
}

func TestShuffledDeterministic(t *testing.T) {
	ds := blobs(20, 2, 2, 0.1, 1)
	a, b := ds.Shuffled(7), ds.Shuffled(7)
	if !reflect.DeepEqual(a.Y, b.Y) {
		t.Error("Shuffled not deterministic for fixed seed")
	}
	c := ds.Shuffled(8)
	if reflect.DeepEqual(a.Y, c.Y) && reflect.DeepEqual(a.X, c.X) {
		t.Error("different seeds gave identical shuffles (possible but wildly unlikely)")
	}
}

func TestKFoldPartition(t *testing.T) {
	trains, tests, err := KFold(17, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trains) != 5 || len(tests) != 5 {
		t.Fatalf("want 5 folds, got %d/%d", len(trains), len(tests))
	}
	seen := map[int]int{}
	for f := range tests {
		for _, i := range tests[f] {
			seen[i]++
		}
		union := map[int]bool{}
		for _, i := range trains[f] {
			union[i] = true
		}
		for _, i := range tests[f] {
			if union[i] {
				t.Fatalf("fold %d: index %d in both train and test", f, i)
			}
			union[i] = true
		}
		if len(union) != 17 {
			t.Fatalf("fold %d covers %d of 17 indices", f, len(union))
		}
	}
	for i := 0; i < 17; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears in %d test folds, want 1", i, seen[i])
		}
	}
	if _, _, err := KFold(1, 5, 0); err == nil {
		t.Error("KFold(1) should error")
	}
}

func TestScalerRange(t *testing.T) {
	x := [][]float64{{0, 100, -5}, {10, 200, -5}, {5, 150, -5}}
	var s Scaler
	scaled, err := s.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range scaled {
		for j, v := range row {
			if j == 2 {
				if v != 0 {
					t.Errorf("constant feature should scale to 0, got %v", v)
				}
				continue
			}
			if v < -1-1e-12 || v > 1+1e-12 {
				t.Errorf("scaled value %v outside [-1,1]", v)
			}
		}
	}
	if scaled[0][0] != -1 || scaled[1][0] != 1 {
		t.Errorf("min/max should map to -1/1: %v", scaled)
	}
	if !s.Fitted() {
		t.Error("Fitted() false after Fit")
	}
	var empty Scaler
	if err := empty.Fit(nil); err == nil {
		t.Error("Fit on empty data should error")
	}
}

func TestScalerInverseRoundTrip(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) ||
			math.Abs(a) > 1e100 || math.Abs(b) > 1e100 || math.Abs(c) > 1e100 {
			return true
		}
		x := [][]float64{{a}, {b}, {c}}
		var s Scaler
		if err := s.Fit(x); err != nil {
			return false
		}
		for _, row := range x {
			back := s.Inverse(s.Transform(row))
			span := s.Max[0] - s.Min[0]
			tol := 1e-9 * (1 + math.Abs(span) + math.Abs(row[0]))
			if math.Abs(back[0]-row[0]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKernels(t *testing.T) {
	a, b := []float64{1, 0}, []float64{0, 1}
	if got := (RBFKernel{Gamma: 1}).Eval(a, a); got != 1 {
		t.Errorf("RBF(a,a) = %v, want 1", got)
	}
	if got := (RBFKernel{Gamma: 1}).Eval(a, b); math.Abs(got-math.Exp(-2)) > 1e-12 {
		t.Errorf("RBF(a,b) = %v", got)
	}
	if got := (LinearKernel{}).Eval(a, b); got != 0 {
		t.Errorf("linear = %v", got)
	}
	if got := (PolyKernel{Gamma: 1, Coef0: 1, Degree: 2}).Eval(a, a); got != 4 {
		t.Errorf("poly = %v", got)
	}
}

func TestKernelSymmetryQuick(t *testing.T) {
	k := RBFKernel{Gamma: 0.5}
	f := func(a1, a2, b1, b2 float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		a := []float64{clamp(a1), clamp(a2)}
		b := []float64{clamp(b1), clamp(b2)}
		ab, ba := k.Eval(a, b), k.Eval(b, a)
		return ab == ba && ab >= 0 && ab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSVMBinarySeparable(t *testing.T) {
	ds := blobs(60, 2, 2, 0.3, 42)
	m := NewSVM(RBFKernel{Gamma: 0.5}, 10)
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, ds); acc < 0.99 {
		t.Errorf("training accuracy %v on separable blobs, want ~1", acc)
	}
	if m.NumSupportVectors() == 0 {
		t.Error("no support vectors")
	}
}

func TestSVMMulticlass(t *testing.T) {
	train := blobs(120, 4, 3, 0.5, 7)
	test := blobs(80, 4, 3, 0.5, 8)
	m := NewSVM(RBFKernel{Gamma: 0.3}, 10)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if got := m.Classes(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("classes = %v", got)
	}
	if acc := Accuracy(m, test); acc < 0.95 {
		t.Errorf("test accuracy %v, want >= 0.95", acc)
	}
	// Scores align with prediction.
	for i := 0; i < 10; i++ {
		x := test.X[i]
		pred := m.Predict(x)
		scores := m.Scores(x)
		best, bestS := -1, math.Inf(-1)
		for c, s := range scores {
			if s > bestS {
				best, bestS = c, s
			}
		}
		if m.Classes()[best] != pred {
			t.Fatalf("Predict (%d) disagrees with argmax Scores (%d)", pred, m.Classes()[best])
		}
	}
	if len(m.DecisionValues(test.X[0])) != 6 {
		t.Errorf("want 6 pairwise decisions for 4 classes, got %d", len(m.DecisionValues(test.X[0])))
	}
}

func TestSVMSingleClass(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{5, 5, 5}}
	m := DefaultSVM()
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{100}); got != 5 {
		t.Errorf("single-class predict = %d, want 5", got)
	}
}

func TestSVMGammaDefaultedFromDim(t *testing.T) {
	ds := blobs(40, 2, 5, 0.3, 3)
	m := DefaultSVM()
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	rbf, ok := m.Kernel().(RBFKernel)
	if !ok {
		t.Fatalf("kernel is %T", m.Kernel())
	}
	if math.Abs(rbf.Gamma-0.2) > 1e-12 {
		t.Errorf("gamma = %v, want 1/dim = 0.2", rbf.Gamma)
	}
}

func TestSVMErrors(t *testing.T) {
	m := DefaultSVM()
	if err := m.Fit(&Dataset{}); err == nil {
		t.Error("empty fit should error")
	}
	if _, err := solveBinary(nil, nil, LinearKernel{}, 1, 1e-3, 10); err == nil {
		t.Error("empty binary problem should error")
	}
	if _, err := solveBinary([][]float64{{1}}, []float64{1}, LinearKernel{}, -1, 1e-3, 10); err == nil {
		t.Error("negative C should error")
	}
	if _, err := solveBinary([][]float64{{1}}, []float64{1, 2}, LinearKernel{}, 1, 1e-3, 10); err == nil {
		t.Error("len mismatch should error")
	}
}

// KKT sanity: dual coefficients stay inside the box [-C, C] after folding y.
func TestSMOBoxConstraint(t *testing.T) {
	ds := blobs(50, 2, 2, 1.5, 9) // overlapping blobs force bound SVs
	c := 2.0
	var x [][]float64
	var y []float64
	for i := range ds.X {
		x = append(x, ds.X[i])
		if ds.Y[i] == 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	sol, err := solveBinary(x, y, RBFKernel{Gamma: 0.5}, c, 1e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, coef := range sol.svCoef {
		if math.Abs(coef) > c+1e-9 {
			t.Errorf("|alpha*y| = %v exceeds C = %v", math.Abs(coef), c)
		}
	}
	if sol.iters == 0 {
		t.Error("solver did no iterations on a non-trivial problem")
	}
}

func TestBvSBMargin(t *testing.T) {
	ds := blobs(60, 3, 2, 0.4, 11)
	m := NewSVM(RBFKernel{Gamma: 0.5}, 10)
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// A point at a class centre should have a larger margin than a midpoint
	// between two class centres.
	center := ds.X[0]
	mid := make([]float64, 2)
	for j := range mid {
		mid[j] = (ds.X[0][j] + ds.X[1][j]) / 2
	}
	if BvSBMargin(m, center) <= BvSBMargin(m, mid) {
		t.Errorf("margin at centre (%v) should exceed margin at boundary (%v)",
			BvSBMargin(m, center), BvSBMargin(m, mid))
	}
}

func TestKNN(t *testing.T) {
	train := blobs(90, 3, 2, 0.4, 5)
	test := blobs(30, 3, 2, 0.4, 6)
	m := NewKNN(5)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Errorf("kNN accuracy %v", acc)
	}
	scores := m.Scores(test.X[0])
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("kNN scores sum to %v, want 1", sum)
	}
	if NewKNN(0).K != 3 {
		t.Error("k<1 should default to 3")
	}
	if err := NewKNN(3).Fit(&Dataset{}); err == nil {
		t.Error("empty fit should error")
	}
}

func TestDecisionTree(t *testing.T) {
	train := blobs(90, 3, 2, 0.4, 5)
	test := blobs(30, 3, 2, 0.4, 6)
	m := NewDecisionTree(0, 0)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.85 {
		t.Errorf("tree accuracy %v", acc)
	}
	if m.Depth() < 1 {
		t.Errorf("tree depth %d, expected a real split", m.Depth())
	}
	if err := m.Fit(&Dataset{}); err == nil {
		t.Error("empty fit should error")
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{7, 7, 7}}
	m := NewDecisionTree(4, 1)
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{-10}); got != 7 {
		t.Errorf("pure dataset predict = %d", got)
	}
	if m.Depth() != 0 {
		t.Errorf("pure dataset should be a leaf, depth %d", m.Depth())
	}
}

func TestCrossValidateAndGridSearch(t *testing.T) {
	ds := blobs(60, 3, 2, 0.5, 13)
	acc, err := CrossValidate(func() Classifier { return NewSVM(RBFKernel{Gamma: 0.5}, 10) }, ds, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("CV accuracy %v", acc)
	}
	m, res, err := GridSearchSVM(ds, GridConfig{
		CValues:     []float64{1, 10},
		GammaValues: []float64{0.1, 1},
		Folds:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 4 {
		t.Errorf("evaluated %d grid points, want 4", res.Evaluated)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("grid search best accuracy %v", res.Accuracy)
	}
	if Accuracy(m, ds) < 0.95 {
		t.Errorf("final model training accuracy %v", Accuracy(m, ds))
	}
}

func TestGridSearchDegenerate(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}, {2}}, Y: []int{0, 0}}
	m, res, err := GridSearchSVM(ds, GridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{5}) != 0 {
		t.Error("degenerate grid search should still predict the lone class")
	}
	if res.Evaluated != 0 {
		t.Errorf("degenerate path evaluated %d grid points, want 0", res.Evaluated)
	}
	if want := Accuracy(m, ds); res.Accuracy != want {
		t.Errorf("degenerate path reported accuracy %v, want measured %v", res.Accuracy, want)
	}
	if _, _, err := GridSearchSVM(nil, GridConfig{}); err == nil {
		t.Error("nil dataset should error")
	}
}

func TestActiveLearningBvSBBeatsFewRandomQueries(t *testing.T) {
	full := blobs(200, 3, 2, 0.8, 21)
	test := blobs(100, 3, 2, 0.8, 22)

	// Seed: one example per class.
	var seedX [][]float64
	var seedY []int
	var poolX [][]float64
	var poolY []int
	seen := map[int]bool{}
	for i := range full.X {
		if !seen[full.Y[i]] {
			seen[full.Y[i]] = true
			seedX = append(seedX, full.X[i])
			seedY = append(seedY, full.Y[i])
		} else {
			poolX = append(poolX, full.X[i])
			poolY = append(poolY, full.Y[i])
		}
	}

	run := func(strat QueryStrategy, iters int) float64 {
		al, err := NewActiveLearner(seedX, seedY, poolX, func(i int) int { return poolY[i] })
		if err != nil {
			t.Fatal(err)
		}
		al.Strategy = strat
		al.Factory = func() Classifier { return NewSVM(RBFKernel{Gamma: 0.5}, 10) }
		clf, err := al.RunIterations(iters)
		if err != nil {
			t.Fatal(err)
		}
		return Accuracy(clf, test)
	}

	bvsb := run(BvSBStrategy{}, 20)
	if bvsb < 0.85 {
		t.Errorf("BvSB with 20 queries reached only %v accuracy", bvsb)
	}
}

func TestActiveLearnerAccounting(t *testing.T) {
	full := blobs(50, 2, 2, 0.4, 31)
	seedX := [][]float64{full.X[0], full.X[1]}
	seedY := []int{full.Y[0], full.Y[1]}
	poolX := full.X[2:]
	poolY := full.Y[2:]
	al, err := NewActiveLearner(seedX, seedY, poolX, func(i int) int { return poolY[i] })
	if err != nil {
		t.Fatal(err)
	}
	if al.PoolCount() != 48 || al.LabeledCount() != 2 {
		t.Fatalf("initial counts wrong: pool=%d labeled=%d", al.PoolCount(), al.LabeledCount())
	}
	if _, err := al.RunIterations(5); err != nil {
		t.Fatal(err)
	}
	if al.Queries() != 5 || al.PoolCount() != 43 || al.LabeledCount() != 7 {
		t.Errorf("after 5 steps: queries=%d pool=%d labeled=%d", al.Queries(), al.PoolCount(), al.LabeledCount())
	}
	// Exhaust the pool: further steps report no progress.
	if _, err := al.RunIterations(1000); err != nil {
		t.Fatal(err)
	}
	ok, err := al.Step()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Step on empty pool should report false")
	}
	if _, err := NewActiveLearner(nil, nil, poolX, nil); err == nil {
		t.Error("empty seed should error")
	}
}

func TestActiveLearnerRunToAccuracy(t *testing.T) {
	full := blobs(120, 2, 2, 0.3, 41)
	valid := blobs(60, 2, 2, 0.3, 42)
	seedX := [][]float64{full.X[0], full.X[1]}
	seedY := []int{full.Y[0], full.Y[1]}
	poolX := full.X[2:]
	poolY := full.Y[2:]
	al, _ := NewActiveLearner(seedX, seedY, poolX, func(i int) int { return poolY[i] })
	al.Factory = func() Classifier { return NewSVM(RBFKernel{Gamma: 0.5}, 10) }
	clf, q, err := al.RunToAccuracy(valid, 0.95, 50)
	if err != nil {
		t.Fatal(err)
	}
	if Accuracy(clf, valid) < 0.95 && q < 50 && al.PoolCount() > 0 {
		t.Errorf("stopped early below target: acc=%v queries=%d", Accuracy(clf, valid), q)
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	ds := blobs(60, 3, 2, 0.4, 17)
	var s Scaler
	scaled, err := s.FitTransform(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	scaledDS := &Dataset{X: scaled, Y: ds.Y}

	for _, mk := range []func() Classifier{
		func() Classifier { return NewSVM(RBFKernel{Gamma: 0.7}, 4) },
		func() Classifier { return NewKNN(3) },
		func() Classifier { return NewDecisionTree(6, 1) },
	} {
		clf := mk()
		if err := clf.Fit(scaledDS); err != nil {
			t.Fatal(err)
		}
		model := &Model{Classifier: clf, Scaler: &s}
		data, err := MarshalModel(model)
		if err != nil {
			t.Fatalf("%s: %v", clf.Name(), err)
		}
		back, err := UnmarshalModel(data)
		if err != nil {
			t.Fatalf("%s: %v", clf.Name(), err)
		}
		for i := range ds.X {
			if model.Predict(ds.X[i]) != back.Predict(ds.X[i]) {
				t.Fatalf("%s: prediction changed after round trip at %d", clf.Name(), i)
			}
		}
	}
}

func TestUnmarshalModelErrors(t *testing.T) {
	if _, err := UnmarshalModel([]byte("not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := UnmarshalModel([]byte(`{"kind":"nope"}`)); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := UnmarshalModel([]byte(`{"kind":"svm"}`)); err == nil {
		t.Error("missing body should error")
	}
	if _, err := MarshalModel(nil); err == nil {
		t.Error("nil model should error")
	}
}

// Property: SVM training is deterministic — same data, same model behaviour.
func TestQuickSVMDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		ds := blobs(40, 2, 2, 0.5, seed%1000)
		m1 := NewSVM(RBFKernel{Gamma: 0.5}, 5)
		m2 := NewSVM(RBFKernel{Gamma: 0.5}, 5)
		if m1.Fit(ds) != nil || m2.Fit(ds) != nil {
			return false
		}
		for _, x := range ds.X {
			if m1.Predict(x) != m2.Predict(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := NewKNN(1)
	if got := Accuracy(m, &Dataset{}); got != 0 {
		t.Errorf("accuracy on empty set = %v", got)
	}
}

// TestSMOMaxMarginOptimality solves a tiny linearly separable problem with a
// known optimum: points at x = -1 and x = +1 give the max-margin separator
// f(x) = x (w = 1, b = 0). The SMO solution's decision values must match.
func TestSMOMaxMarginOptimality(t *testing.T) {
	x := [][]float64{{-1}, {1}}
	y := []float64{-1, 1}
	sol, err := solveBinary(x, y, LinearKernel{}, 100, 1e-6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ in, want float64 }{{-1, -1}, {1, 1}, {0, 0}, {3, 3}} {
		got := sol.decision(LinearKernel{}, []float64{tc.in})
		if math.Abs(got-tc.want) > 1e-6 {
			t.Errorf("decision(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestSMOKKTConditions verifies the dual solution satisfies the KKT
// conditions: margin >= 1 for non-SVs, == 1 for free SVs, <= 1 for bound SVs.
func TestSMOKKTConditions(t *testing.T) {
	ds := blobs(60, 2, 2, 1.2, 13) // overlap forces all three SV categories
	c := 2.0
	var x [][]float64
	var y []float64
	for i := range ds.X {
		x = append(x, ds.X[i])
		if ds.Y[i] == 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	k := RBFKernel{Gamma: 0.5}
	sol, err := solveBinary(x, y, k, c, 1e-5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Recover per-point alpha from the SV list (0 for non-SVs).
	alpha := make([]float64, len(x))
	for s, sv := range sol.svX {
		for i := range x {
			if &x[i][0] == &sv[0] { // same backing array: identity match
				alpha[i] = math.Abs(sol.svCoef[s])
			}
		}
	}
	const tol = 1e-2
	for i := range x {
		margin := y[i] * sol.decision(k, x[i])
		switch {
		case alpha[i] < 1e-9: // non-SV
			if margin < 1-tol {
				t.Errorf("non-SV %d has margin %v < 1", i, margin)
			}
		case alpha[i] > c-1e-9: // bound SV
			if margin > 1+tol {
				t.Errorf("bound SV %d has margin %v > 1", i, margin)
			}
		default: // free SV
			if math.Abs(margin-1) > tol {
				t.Errorf("free SV %d has margin %v != 1", i, margin)
			}
		}
	}
}
