package ml

import (
	"bytes"
	"testing"
	"time"
)

// fitTinyDataset returns the shared toy problem (two separable classes) both
// raw and scaled, for cross-classifier parity tests.
func fitTinyDataset(tb testing.TB) (raw, scaled *Dataset, scaler *Scaler) {
	tb.Helper()
	raw = &Dataset{}
	for x := 0.0; x <= 9; x++ {
		label := 0
		if x > 4.5 {
			label = 1
		}
		raw.Append([]float64{x, 9 - x}, label)
	}
	scaler = &Scaler{}
	scaledX, err := scaler.FitTransform(raw.X)
	if err != nil {
		tb.Fatal(err)
	}
	return raw, &Dataset{X: scaledX, Y: raw.Y}, scaler
}

// parityClassifiers returns one fitted classifier of every serializable kind.
func parityClassifiers(tb testing.TB) []Classifier {
	tb.Helper()
	_, scaled, _ := fitTinyDataset(tb)
	ens := NewEnsemble()
	ens.Folds = 2
	out := []Classifier{
		NewSVM(RBFKernel{Gamma: 0.5}, 4),
		NewKNN(3),
		NewDecisionTree(4, 1),
		NewLogistic(0, 0, 50),
		ens,
	}
	for _, clf := range out {
		if err := clf.Fit(scaled); err != nil {
			tb.Fatalf("%s: %v", clf.Name(), err)
		}
	}
	return out
}

// TestMetaStampingParity asserts every classifier kind — not just the SVM —
// carries a ModelMeta stamp losslessly through serialize/deserialize, as a
// byte-identical fixed point.
func TestMetaStampingParity(t *testing.T) {
	_, _, scaler := fitTinyDataset(t)
	meta := &ModelMeta{
		Version:   7,
		CreatedAt: time.Date(2026, 8, 8, 9, 30, 0, 0, time.UTC),
		TrainedOn: 10,
	}
	for _, clf := range parityClassifiers(t) {
		t.Run(clf.Name(), func(t *testing.T) {
			m := &Model{Classifier: clf, Scaler: scaler, Meta: meta}
			data, err := MarshalModel(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalModel(data)
			if err != nil {
				t.Fatal(err)
			}
			if got.Meta == nil || got.Meta.Version != 7 || got.Meta.TrainedOn != 10 || !got.Meta.CreatedAt.Equal(meta.CreatedAt) {
				t.Fatalf("meta round trip = %+v, want %+v", got.Meta, meta)
			}
			if got.Version() != 7 {
				t.Fatalf("Version() = %d, want 7", got.Version())
			}
			again, err := MarshalModel(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("stamped %s round trip is not a fixed point", clf.Name())
			}
		})
	}
}

// TestRankedClassesParity asserts the RankedClasses contract holds for every
// classifier kind: Ranked[0] == Predict(x), the full class set appears
// exactly once, and repeated calls are identical (no hidden nondeterminism).
func TestRankedClassesParity(t *testing.T) {
	_, _, scaler := fitTinyDataset(t)
	for _, clf := range parityClassifiers(t) {
		t.Run(clf.Name(), func(t *testing.T) {
			m := &Model{Classifier: clf, Scaler: scaler}
			for x := 0.0; x <= 9; x += 0.25 {
				vec := []float64{x, 9 - x}
				ranked := m.RankedClasses(vec)
				if len(ranked) != len(clf.Classes()) {
					t.Fatalf("ranked %v misses classes %v", ranked, clf.Classes())
				}
				if ranked[0] != m.Predict(vec) {
					t.Fatalf("at %v: ranked[0]=%d but Predict=%d", vec, ranked[0], m.Predict(vec))
				}
				seen := map[int]bool{}
				for _, c := range ranked {
					if seen[c] {
						t.Fatalf("class %d ranked twice at %v", c, vec)
					}
					seen[c] = true
				}
				for i := 0; i < 3; i++ {
					again := m.RankedClasses(vec)
					for j := range ranked {
						if again[j] != ranked[j] {
							t.Fatalf("ranking at %v not deterministic: %v vs %v", vec, ranked, again)
						}
					}
				}
			}
		})
	}
}

// TestRankedClassesTieBreakDeterminism constructs genuine score ties (every
// training point identical, balanced labels → uniform leaf counts / votes)
// and asserts ties break toward Classes() order with Ranked[0] == Predict —
// for the kinds where ties are reachable.
func TestRankedClassesTieBreakDeterminism(t *testing.T) {
	tied := &Dataset{}
	for i := 0; i < 4; i++ {
		tied.Append([]float64{1, 1}, i%2)
	}
	for _, clf := range []Classifier{NewDecisionTree(4, 1), NewKNN(4), NewLogistic(0, 0, 10)} {
		t.Run(clf.Name(), func(t *testing.T) {
			if err := clf.Fit(tied); err != nil {
				t.Fatal(err)
			}
			m := &Model{Classifier: clf}
			vec := []float64{1, 1}
			scores := m.Scores(vec)
			if scores[0] != scores[1] {
				t.Skipf("no tie produced (scores %v); tie break not exercisable here", scores)
			}
			ranked := m.RankedClasses(vec)
			if ranked[0] != clf.Classes()[0] {
				t.Fatalf("tie broke to %d, want first class %d", ranked[0], clf.Classes()[0])
			}
			if ranked[0] != m.Predict(vec) {
				t.Fatalf("tie break: ranked[0]=%d != Predict=%d", ranked[0], m.Predict(vec))
			}
		})
	}
}
