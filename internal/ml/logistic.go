package ml

import (
	"errors"
	"math"
)

// Logistic is a multinomial (softmax) logistic-regression classifier trained
// by full-batch gradient descent with L2 regularization. It is deterministic
// (zero initialization, fixed iteration count) and provides calibrated
// per-class probabilities, making it a natural alternate for Nitro's
// pluggable-classifier option and for Best-vs-Second-Best margins.
type Logistic struct {
	// LR is the gradient-descent step size (default 0.5).
	LR float64
	// L2 is the ridge penalty (default 1e-3).
	L2 float64
	// Iters is the gradient-step count (default 500).
	Iters int

	W       [][]float64 `json:"w"` // classes x (dim+1), bias last
	classes []int
}

// NewLogistic returns an untrained softmax classifier with defaults for any
// non-positive parameter.
func NewLogistic(lr, l2 float64, iters int) *Logistic {
	if lr <= 0 {
		lr = 0.5
	}
	if l2 <= 0 {
		l2 = 1e-3
	}
	if iters <= 0 {
		iters = 500
	}
	return &Logistic{LR: lr, L2: l2, Iters: iters}
}

// Name implements Classifier.
func (m *Logistic) Name() string { return "logistic" }

// Classes implements Classifier.
func (m *Logistic) Classes() []int { return m.classes }

// Fit implements Classifier.
func (m *Logistic) Fit(ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return errors.New("ml: empty training set")
	}
	m.classes = ds.Classes()
	k, d, n := len(m.classes), ds.Dim(), ds.Len()
	idx := make(map[int]int, k)
	for i, c := range m.classes {
		idx[c] = i
	}
	m.W = make([][]float64, k)
	for c := range m.W {
		m.W[c] = make([]float64, d+1)
	}
	if k == 1 {
		return nil
	}
	probs := make([]float64, k)
	grad := make([][]float64, k)
	for c := range grad {
		grad[c] = make([]float64, d+1)
	}
	for it := 0; it < m.Iters; it++ {
		for c := range grad {
			for j := range grad[c] {
				grad[c][j] = m.L2 * m.W[c][j]
			}
		}
		for i := 0; i < n; i++ {
			m.softmax(ds.X[i], probs)
			yi := idx[ds.Y[i]]
			for c := 0; c < k; c++ {
				delta := probs[c]
				if c == yi {
					delta -= 1
				}
				for j := 0; j < d; j++ {
					grad[c][j] += delta * ds.X[i][j] / float64(n)
				}
				grad[c][d] += delta / float64(n)
			}
		}
		for c := 0; c < k; c++ {
			for j := 0; j <= d; j++ {
				m.W[c][j] -= m.LR * grad[c][j]
			}
		}
	}
	return nil
}

func (m *Logistic) softmax(x []float64, out []float64) {
	maxZ := math.Inf(-1)
	for c := range m.W {
		z := m.W[c][len(m.W[c])-1]
		for j := 0; j < len(x) && j < len(m.W[c])-1; j++ {
			z += m.W[c][j] * x[j]
		}
		out[c] = z
		if z > maxZ {
			maxZ = z
		}
	}
	var sum float64
	for c := range out {
		out[c] = math.Exp(out[c] - maxZ)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Predict implements Classifier.
func (m *Logistic) Predict(x []float64) int {
	if len(m.classes) == 0 {
		return 0
	}
	s := m.Scores(x)
	best, bestS := 0, math.Inf(-1)
	for c, v := range s {
		if v > bestS {
			best, bestS = c, v
		}
	}
	return m.classes[best]
}

// Scores implements Classifier: softmax probabilities.
func (m *Logistic) Scores(x []float64) []float64 {
	out := make([]float64, len(m.classes))
	if len(m.classes) == 0 {
		return out
	}
	if len(m.classes) == 1 {
		out[0] = 1
		return out
	}
	m.softmax(x, out)
	return out
}

// Confusion is a confusion matrix over a label set.
type Confusion struct {
	Classes []int
	// Counts[i][j] counts examples of true class Classes[i] predicted as
	// Classes[j].
	Counts [][]int
}

// ConfusionMatrix evaluates clf on ds. Labels absent from the classifier's
// training set still get rows/columns.
func ConfusionMatrix(clf Classifier, ds *Dataset) Confusion {
	seen := map[int]bool{}
	for _, c := range clf.Classes() {
		seen[c] = true
	}
	for _, y := range ds.Y {
		seen[y] = true
	}
	var classes []int
	for c := range seen {
		classes = append(classes, c)
	}
	// Deterministic order.
	for i := 0; i < len(classes); i++ {
		for j := i + 1; j < len(classes); j++ {
			if classes[j] < classes[i] {
				classes[i], classes[j] = classes[j], classes[i]
			}
		}
	}
	idx := make(map[int]int, len(classes))
	for i, c := range classes {
		idx[c] = i
	}
	cm := Confusion{Classes: classes, Counts: make([][]int, len(classes))}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, len(classes))
	}
	for i, x := range ds.X {
		pred := clf.Predict(x)
		if _, ok := idx[pred]; !ok {
			continue
		}
		cm.Counts[idx[ds.Y[i]]][idx[pred]]++
	}
	return cm
}

// Accuracy returns the trace fraction.
func (c Confusion) Accuracy() float64 {
	total, diag := 0, 0
	for i := range c.Counts {
		for j, v := range c.Counts[i] {
			total += v
			if i == j {
				diag += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// Recall returns per-class recall aligned with Classes (0 where a class has
// no examples).
func (c Confusion) Recall() []float64 {
	out := make([]float64, len(c.Classes))
	for i := range c.Counts {
		row := 0
		for _, v := range c.Counts[i] {
			row += v
		}
		if row > 0 {
			out[i] = float64(c.Counts[i][i]) / float64(row)
		}
	}
	return out
}
