package ml_test

import (
	"fmt"

	"nitro/internal/ml"
)

// ExampleSVM trains the paper's default classifier on a toy variant-selection
// problem and classifies a new input.
func ExampleSVM() {
	ds := &ml.Dataset{}
	for x := 0.0; x < 10; x++ {
		label := 0
		if x >= 5 {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	scaler := &ml.Scaler{}
	scaled, _ := scaler.FitTransform(ds.X)

	svm := ml.NewSVM(ml.RBFKernel{Gamma: 1}, 10)
	if err := svm.Fit(&ml.Dataset{X: scaled, Y: ds.Y}); err != nil {
		panic(err)
	}
	model := &ml.Model{Classifier: svm, Scaler: scaler}
	fmt.Println(model.Predict([]float64{2}), model.Predict([]float64{8}))
	// Output:
	// 0 1
}
