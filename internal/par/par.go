// Package par provides the tiny worker-pool substrate shared by Nitro's
// offline tuning pipeline: the autotuner's exhaustive-search labelling stage,
// the dataset corpus builders, the experiment harness and the ml grid search
// all fan independent work items out over a bounded number of goroutines.
//
// The package deliberately has no knobs beyond a worker count. Every caller
// threads a single `Parallelism int` option through to Workers, with the
// shared convention: 0 (the zero value) means "use all available cores"
// (runtime.GOMAXPROCS) and 1 means "run serially on the calling goroutine" —
// today's pre-parallel behaviour, bit-for-bit. Determinism is the caller's
// concern: callers must write results into index-addressed slots (never
// append in completion order) so the output is independent of scheduling.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob to a concrete worker count:
// n <= 0 selects runtime.GOMAXPROCS(0), any positive n is returned as-is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) using at most workers goroutines
// (workers <= 1 runs everything on the calling goroutine) and returns once
// all calls have completed. Work items are handed out via a shared atomic
// counter, so the assignment of items to workers is scheduling-dependent —
// fn must therefore be safe for concurrent invocation and must write its
// result to an index-addressed slot to keep the overall computation
// deterministic.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64 // shared work counter: workers claim indices
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForCtx runs fn(i) for every i in [0, n) like For, but stops handing out new
// work items once ctx is cancelled: items not yet claimed never run, items
// already claimed finish normally. It returns ctx.Err() when the run was cut
// short and nil when every item ran. Callers that need to know which items
// ran must track that themselves (e.g. a ran[i] flag set inside fn), since
// cancellation races with the work hand-out.
//
// With a nil or never-cancellable context (ctx.Done() == nil) it degrades to
// exactly For — same hand-out, same scheduling, no per-item Err check — so
// serial/parallel determinism guarantees carry over unchanged.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		For(n, workers, fn)
		return nil
	}
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForErr runs fn(i) for every i in [0, n) like For and returns the error
// from the lowest index that failed (deterministic regardless of which
// worker observed its error first), or nil when every call succeeded.
// All n calls run even when some fail; short-circuiting would make the set
// of executed side effects scheduling-dependent.
func ForErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
