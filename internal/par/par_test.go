package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndSmall(t *testing.T) {
	For(0, 8, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	For(1, 8, func(i int) { ran = i == 0 })
	if !ran {
		t.Error("fn not called for n=1")
	}
}

func TestForErrLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForErr(100, workers, func(i int) error {
			if i == 7 || i == 93 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-7" {
			t.Errorf("workers=%d: err = %v, want fail-7", workers, err)
		}
		if err := ForErr(50, workers, func(int) error { return nil }); err != nil {
			t.Errorf("workers=%d: unexpected error %v", workers, err)
		}
	}
	if !errors.Is(ForErr(1, 1, func(int) error { return errSentinel }), errSentinel) {
		t.Error("error identity not preserved")
	}
}

var errSentinel = errors.New("sentinel")

func TestForCtxBackgroundMatchesFor(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 500
		a := make([]int, n)
		b := make([]int, n)
		For(n, workers, func(i int) { a[i] = i * i })
		if err := ForCtx(context.Background(), n, workers, func(i int) { b[i] = i * i }); err != nil {
			t.Fatalf("workers=%d: ForCtx = %v", workers, err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: index %d differs", workers, i)
			}
		}
	}
	if err := ForCtx(nil, 3, 2, func(int) {}); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}

func TestForCtxCancellationStopsHandout(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 100000
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForCtx(ctx, n, workers, func(i int) {
			if ran.Add(1) == 10 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: cancellation did not stop the hand-out (%d items ran)", workers, got)
		}
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForCtx(ctx, 50, 4, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Parallel workers may each claim at most a first item before observing
	// cancellation on the serial path; the serial path runs nothing.
	if got := ran.Load(); got > 4 {
		t.Fatalf("pre-cancelled ForCtx ran %d items", got)
	}
}
