// Package sparse implements the sparse-matrix substrate of the Nitro
// reproduction: the COO, CSR, DIA and ELL storage formats with conversions
// (the formats CUSP exposes and the paper's SpMV benchmark selects among),
// the structural features Nitro uses for SpMV variant selection, seeded
// matrix generators standing in for the UFL Sparse Matrix collection, a
// Matrix Market-style text codec, and the six SpMV code variants
// (CSR-Vec, DIA, ELL and their texture-cached twins) costed on the GPU
// model in internal/gpusim.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// COO is the coordinate format: (row, col, value) triplets. It is the
// exchange format generators and the Matrix Market codec produce.
type COO struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Vals       []float64
}

// NNZ returns the stored-entry count.
func (m *COO) NNZ() int { return len(m.Vals) }

// Validate checks structural invariants.
func (m *COO) Validate() error {
	if len(m.RowIdx) != len(m.Vals) || len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("sparse: COO arrays disagree: %d/%d/%d", len(m.RowIdx), len(m.ColIdx), len(m.Vals))
	}
	for i := range m.Vals {
		if r, c := int(m.RowIdx[i]), int(m.ColIdx[i]); r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
			return fmt.Errorf("sparse: entry %d at (%d,%d) outside %dx%d", i, r, c, m.Rows, m.Cols)
		}
	}
	return nil
}

// MulVec computes y = A*x with the reference COO kernel (the loop from the
// paper's Section II). y must have length Rows; it is zeroed first.
func (m *COO) MulVec(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for i := range m.Vals {
		y[m.RowIdx[i]] += m.Vals[i] * x[m.ColIdx[i]]
	}
}

// CSR is the compressed sparse row format: RowPtr has Rows+1 entries.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Vals       []float64
}

// NNZ returns the stored-entry count.
func (m *CSR) NNZ() int { return len(m.Vals) }

// RowLen returns the number of stored entries in row i.
func (m *CSR) RowLen(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Validate checks structural invariants: monotone row pointers, in-range and
// sorted column indices.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: CSR RowPtr has %d entries, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || int(m.RowPtr[m.Rows]) != len(m.Vals) {
		return errors.New("sparse: CSR RowPtr endpoints wrong")
	}
	if len(m.ColIdx) != len(m.Vals) {
		return errors.New("sparse: CSR ColIdx/Vals length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: CSR RowPtr not monotone at row %d", i)
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := int(m.ColIdx[p])
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("sparse: CSR column %d out of range in row %d", c, i)
			}
			if p > m.RowPtr[i] && m.ColIdx[p] <= m.ColIdx[p-1] {
				return fmt.Errorf("sparse: CSR columns not strictly sorted in row %d", i)
			}
		}
	}
	return nil
}

// MulVec computes y = A*x with the reference row-serial CSR kernel.
func (m *CSR) MulVec(x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			sum += m.Vals[p] * x[m.ColIdx[p]]
		}
		y[i] = sum
	}
}

// Diag returns the main-diagonal entries (zero where absent).
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.ColIdx[p]) == i {
				d[i] = m.Vals[p]
			}
		}
	}
	return d
}

// Transpose returns the transposed matrix in CSR form.
func (m *CSR) Transpose() *CSR {
	counts := make([]int32, m.Cols+1)
	for _, c := range m.ColIdx {
		counts[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		counts[i+1] += counts[i]
	}
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: counts,
		ColIdx: make([]int32, m.NNZ()),
		Vals:   make([]float64, m.NNZ()),
	}
	next := append([]int32(nil), counts[:m.Cols]...)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			dst := next[c]
			next[c]++
			t.ColIdx[dst] = int32(i)
			t.Vals[dst] = m.Vals[p]
		}
	}
	return t
}

// ToCOO converts to coordinate form.
func (m *CSR) ToCOO() *COO {
	out := &COO{Rows: m.Rows, Cols: m.Cols,
		RowIdx: make([]int32, m.NNZ()), ColIdx: make([]int32, m.NNZ()), Vals: make([]float64, m.NNZ())}
	copy(out.ColIdx, m.ColIdx)
	copy(out.Vals, m.Vals)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.RowIdx[p] = int32(i)
		}
	}
	return out
}

// ToCSR converts coordinate form to CSR, summing duplicate entries and
// sorting columns within each row.
func (m *COO) ToCSR() *CSR {
	type ent struct {
		r, c int32
		v    float64
	}
	ents := make([]ent, m.NNZ())
	for i := range m.Vals {
		ents[i] = ent{m.RowIdx[i], m.ColIdx[i], m.Vals[i]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].r != ents[b].r {
			return ents[a].r < ents[b].r
		}
		return ents[a].c < ents[b].c
	})
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int32, m.Rows+1)}
	for i := 0; i < len(ents); {
		j := i
		v := 0.0
		for j < len(ents) && ents[j].r == ents[i].r && ents[j].c == ents[i].c {
			v += ents[j].v
			j++
		}
		out.ColIdx = append(out.ColIdx, ents[i].c)
		out.Vals = append(out.Vals, v)
		out.RowPtr[ents[i].r+1]++
		i = j
	}
	for i := 0; i < m.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// DIA stores a matrix by diagonals: Offsets[d] is the diagonal offset
// (col - row) and Data[d] its Rows entries (zero-padded where the diagonal
// leaves the matrix). It is only viable when the matrix has few distinct
// diagonals.
type DIA struct {
	Rows, Cols int
	Offsets    []int
	Data       [][]float64
}

// NDiags returns the stored-diagonal count.
func (m *DIA) NDiags() int { return len(m.Offsets) }

// Fill returns the DIA fill-in ratio: stored cells / nonzeros. 1 means no
// padding waste. Returns +Inf for an empty matrix.
func (m *DIA) Fill(nnz int) float64 {
	if nnz == 0 {
		return float64(m.Rows * m.NDiags())
	}
	return float64(m.Rows*m.NDiags()) / float64(nnz)
}

// MulVec computes y = A*x with the reference DIA kernel.
func (m *DIA) MulVec(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for d, off := range m.Offsets {
		data := m.Data[d]
		for i := 0; i < m.Rows; i++ {
			j := i + off
			if j >= 0 && j < m.Cols {
				y[i] += data[i] * x[j]
			}
		}
	}
}

// ErrTooManyDiagonals reports a CSR→DIA conversion abandoned because the
// matrix has more distinct diagonals than the caller allowed; attempting it
// would explode memory, which is exactly why the paper's SpMV benchmark
// guards the DIA variant with a cutoff constraint.
var ErrTooManyDiagonals = errors.New("sparse: matrix has too many distinct diagonals for DIA")

// ToDIA converts to DIA form, failing with ErrTooManyDiagonals if the number
// of distinct diagonals exceeds maxDiags (<=0 means Rows+Cols, i.e. no limit).
func (m *CSR) ToDIA(maxDiags int) (*DIA, error) {
	if maxDiags <= 0 {
		maxDiags = m.Rows + m.Cols
	}
	seen := map[int]int{} // offset -> slot
	var offsets []int
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			off := int(m.ColIdx[p]) - i
			if _, ok := seen[off]; !ok {
				if len(offsets) >= maxDiags {
					return nil, fmt.Errorf("%w: > %d", ErrTooManyDiagonals, maxDiags)
				}
				seen[off] = 0
				offsets = append(offsets, off)
			}
		}
	}
	sort.Ints(offsets)
	for slot, off := range offsets {
		seen[off] = slot
	}
	out := &DIA{Rows: m.Rows, Cols: m.Cols, Offsets: offsets, Data: make([][]float64, len(offsets))}
	for d := range out.Data {
		out.Data[d] = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			off := int(m.ColIdx[p]) - i
			out.Data[seen[off]][i] = m.Vals[p]
		}
	}
	return out, nil
}

// ELL is the ELLPACK format: every row is padded to MaxNZ entries; storage is
// column-major (entry k of every row is contiguous) so GPU lanes coalesce.
// Padding slots have ColIdx -1.
type ELL struct {
	Rows, Cols, MaxNZ int
	ColIdx            []int32   // len Rows*MaxNZ, column-major
	Vals              []float64 // len Rows*MaxNZ, column-major
}

// Fill returns the ELL fill-in ratio: stored cells / nonzeros.
func (m *ELL) Fill(nnz int) float64 {
	if nnz == 0 {
		return float64(m.Rows * m.MaxNZ)
	}
	return float64(m.Rows*m.MaxNZ) / float64(nnz)
}

// MulVec computes y = A*x with the reference ELL kernel.
func (m *ELL) MulVec(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for k := 0; k < m.MaxNZ; k++ {
		base := k * m.Rows
		for i := 0; i < m.Rows; i++ {
			if c := m.ColIdx[base+i]; c >= 0 {
				y[i] += m.Vals[base+i] * x[c]
			}
		}
	}
}

// ErrRowTooLong reports a CSR→ELL conversion abandoned because the widest
// row exceeds the caller's padding budget.
var ErrRowTooLong = errors.New("sparse: longest row exceeds ELL width budget")

// ToELL converts to ELL form, failing with ErrRowTooLong if the widest row
// exceeds maxWidth (<=0 means no limit).
func (m *CSR) ToELL(maxWidth int) (*ELL, error) {
	width := 0
	for i := 0; i < m.Rows; i++ {
		if l := m.RowLen(i); l > width {
			width = l
		}
	}
	if maxWidth > 0 && width > maxWidth {
		return nil, fmt.Errorf("%w: %d > %d", ErrRowTooLong, width, maxWidth)
	}
	out := &ELL{Rows: m.Rows, Cols: m.Cols, MaxNZ: width,
		ColIdx: make([]int32, m.Rows*width), Vals: make([]float64, m.Rows*width)}
	for i := range out.ColIdx {
		out.ColIdx[i] = -1
	}
	for i := 0; i < m.Rows; i++ {
		k := 0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.ColIdx[k*m.Rows+i] = m.ColIdx[p]
			out.Vals[k*m.Rows+i] = m.Vals[p]
			k++
		}
	}
	return out, nil
}
