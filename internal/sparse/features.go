package sparse

import "math"

// Features holds the five structural features the paper uses for SpMV
// variant selection (Section IV, Fig. 4), plus the raw size quantities the
// example in Fig. 2 registers (NNZ, NumRows).
type Features struct {
	NNZ          float64 // stored nonzeros
	NumRows      float64
	NumCols      float64
	AvgNZPerRow  float64 // average row length
	RowLenStdDev float64 // "RL-SD"
	MaxDeviation float64 // longest row minus average row length
	DIAFill      float64 // (ndiags*rows)/nnz fill-in estimate for DIA
	ELLFill      float64 // (maxRowLen*rows)/nnz fill-in estimate for ELL
}

// Vector returns the paper's 5-feature vector in a fixed order:
// [AvgNZPerRow, RowLenStdDev, MaxDeviation, DIAFill, ELLFill].
func (f Features) Vector() []float64 {
	return []float64{f.AvgNZPerRow, f.RowLenStdDev, f.MaxDeviation, f.DIAFill, f.ELLFill}
}

// FeatureNames lists the feature order used by Features.Vector.
func FeatureNames() []string {
	return []string{"AvgNZPerRow", "RL-SD", "MaxDeviation", "DIA-Fill", "ELL-Fill"}
}

// ComputeFeatures derives the SpMV selection features from a CSR matrix in
// one pass over the row-pointer array (cheap: O(rows), no value traffic) plus
// one pass over the column indices for the diagonal count (the expensive
// part, O(nnz) — this asymmetry is what Fig. 8's overhead analysis is about).
func ComputeFeatures(m *CSR) Features {
	f := Features{
		NNZ:     float64(m.NNZ()),
		NumRows: float64(m.Rows),
		NumCols: float64(m.Cols),
	}
	if m.Rows == 0 {
		return f
	}
	maxLen := 0
	var sum, sumSq float64
	for i := 0; i < m.Rows; i++ {
		l := m.RowLen(i)
		if l > maxLen {
			maxLen = l
		}
		sum += float64(l)
		sumSq += float64(l) * float64(l)
	}
	n := float64(m.Rows)
	f.AvgNZPerRow = sum / n
	variance := sumSq/n - f.AvgNZPerRow*f.AvgNZPerRow
	if variance < 0 {
		variance = 0
	}
	f.RowLenStdDev = math.Sqrt(variance)
	f.MaxDeviation = float64(maxLen) - f.AvgNZPerRow

	ndiags := CountDiagonals(m)
	nnz := f.NNZ
	if nnz == 0 {
		nnz = 1
	}
	f.DIAFill = float64(ndiags) * n / nnz
	f.ELLFill = float64(maxLen) * n / nnz
	return f
}

// CountDiagonals returns the number of distinct occupied diagonals.
func CountDiagonals(m *CSR) int {
	seen := make(map[int]struct{})
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			seen[int(m.ColIdx[p])-i] = struct{}{}
		}
	}
	return len(seen)
}

// XReuse estimates the average number of times each touched element of the
// input vector x is gathered during one SpMV: nnz over distinct columns. It
// feeds the texture-cache model.
func XReuse(m *CSR) float64 {
	if m.NNZ() == 0 {
		return 1
	}
	seen := make(map[int32]struct{})
	for _, c := range m.ColIdx {
		seen[c] = struct{}{}
	}
	if len(seen) == 0 {
		return 1
	}
	return float64(m.NNZ()) / float64(len(seen))
}
