package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes m in MatrixMarket coordinate/real/general format,
// the interchange format of the UFL collection the paper trains from.
// Indices are 1-based on the wire per the format specification.
func WriteMatrixMarket(w io.Writer, m *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := range m.Vals {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", m.RowIdx[i]+1, m.ColIdx[i]+1, m.Vals[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file. The general,
// symmetric and pattern qualifiers are supported (symmetric entries are
// mirrored, pattern entries get value 1).
func ReadMatrixMarket(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header[2])
	}
	pattern := header[3] == "pattern"
	symmetric := len(header) > 4 && (header[4] == "symmetric" || header[4] == "skew-symmetric")
	skew := len(header) > 4 && header[4] == "skew-symmetric"

	// Skip comments, read size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: bad dimensions %dx%d", rows, cols)
	}
	m := &COO{Rows: rows, Cols: cols}
	read := 0
	for sc.Scan() && read < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if pattern {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		ri, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q", fields[0])
		}
		ci, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q", fields[1])
		}
		v := 1.0
		if !pattern {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q", fields[2])
			}
		}
		if ri < 1 || ri > rows || ci < 1 || ci > cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", ri, ci, rows, cols)
		}
		m.RowIdx = append(m.RowIdx, int32(ri-1))
		m.ColIdx = append(m.ColIdx, int32(ci-1))
		m.Vals = append(m.Vals, v)
		if symmetric && ri != ci {
			mv := v
			if skew {
				mv = -v
			}
			m.RowIdx = append(m.RowIdx, int32(ci-1))
			m.ColIdx = append(m.ColIdx, int32(ri-1))
			m.Vals = append(m.Vals, mv)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, found %d", nnz, read)
	}
	return m, nil
}
