package sparse

import (
	"math"
	"strings"
	"testing"

	"nitro/internal/gpusim"
)

func dev() *gpusim.Device { return gpusim.Fermi() }

// runAll executes every feasible variant on p and returns name->seconds,
// checking every returned product against the CSR reference.
func runAll(t *testing.T, p *Problem) map[string]float64 {
	t.Helper()
	ref := make([]float64, p.A.Rows)
	p.A.MulVec(p.X, ref)
	times := map[string]float64{}
	for _, v := range Variants() {
		if v.Constraint != nil && !v.Constraint(p) {
			continue
		}
		res, err := v.Run(p, dev())
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		vecAlmostEqual(t, ref, res.Y, 1e-9, v.Name)
		if res.Seconds <= 0 || math.IsNaN(res.Seconds) {
			t.Fatalf("%s: bad time %v", v.Name, res.Seconds)
		}
		times[v.Name] = res.Seconds
	}
	return times
}

func best(times map[string]float64) string {
	name, t := "", math.Inf(1)
	for k, v := range times {
		if v < t {
			name, t = k, v
		}
	}
	return name
}

func TestProblemValidation(t *testing.T) {
	m := Stencil2D(4, 4)
	if _, err := NewProblem(m, make([]float64, 3)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewProblem(nil, nil); err == nil {
		t.Error("nil matrix accepted")
	}
}

func TestVariantNamesStable(t *testing.T) {
	want := []string{"CSR-Vec", "DIA", "ELL", "CSR-Tx", "DIA-Tx", "ELL-Tx"}
	got := VariantNames()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("variant order changed: %v", got)
		}
	}
}

func TestStencilFavoursDIA(t *testing.T) {
	m := Stencil2D(128, 128)
	p, _ := NewProblem(m, randVec(m.Cols, 1))
	times := runAll(t, p)
	if len(times) != 6 {
		t.Fatalf("stencil should permit all 6 variants, got %v", times)
	}
	b := best(times)
	if !strings.HasPrefix(b, "DIA") {
		t.Errorf("stencil best = %s (times %v), want a DIA variant", b, times)
	}
}

func TestRegularFavoursELL(t *testing.T) {
	m := RegularRandom(40000, 12, 7)
	p, _ := NewProblem(m, randVec(m.Cols, 2))
	times := runAll(t, p)
	if _, ok := times["DIA"]; ok {
		t.Log("note: DIA feasible on random-regular matrix (unexpected but not fatal)")
	}
	b := best(times)
	if !strings.HasPrefix(b, "ELL") {
		t.Errorf("regular best = %s (times %v), want an ELL variant", b, times)
	}
}

func TestPowerLawVetoesPaddedFormatsAndFavoursCSR(t *testing.T) {
	m := PowerLaw(3000, 12, 1.4, 9)
	p, _ := NewProblem(m, randVec(m.Cols, 3))
	f := p.Features()
	if f.ELLFill <= ELLFillCutoff {
		t.Skipf("power-law draw too tame: ELL fill %v", f.ELLFill)
	}
	times := runAll(t, p)
	for name := range times {
		if strings.HasPrefix(name, "ELL") || strings.HasPrefix(name, "DIA") {
			t.Errorf("padded variant %s should be vetoed on power-law matrix", name)
		}
	}
	if !strings.HasPrefix(best(times), "CSR") {
		t.Errorf("best = %s, want CSR variant", best(times))
	}
}

func TestTextureWinsWithHighReuse(t *testing.T) {
	// Dense-ish rows on a modest column count: every x element reused many
	// times, far beyond the texture cache capacity benefit threshold.
	m := BlockClustered(20000, 32, 256, 5)
	p, _ := NewProblem(m, randVec(m.Cols, 4))
	times := runAll(t, p)
	if times["CSR-Tx"] >= times["CSR-Vec"] {
		t.Errorf("texture variant (%v) should beat plain (%v) at reuse %v",
			times["CSR-Tx"], times["CSR-Vec"], p.Reuse())
	}
}

func TestTextureDoesNotWinWithoutReuse(t *testing.T) {
	// One nonzero per row scattered across a huge column space: reuse ~1.
	m := RegularRandom(20000, 2, 6)
	p, _ := NewProblem(m, randVec(m.Cols, 5))
	csr, _ := NewProblem(m, p.X)
	rTx, err := CSRVecTx(p, dev())
	if err != nil {
		t.Fatal(err)
	}
	rPlain, err := CSRVec(csr, dev())
	if err != nil {
		t.Fatal(err)
	}
	if rTx.Seconds < rPlain.Seconds*0.98 {
		t.Errorf("texture (%v) should not beat plain (%v) without reuse", rTx.Seconds, rPlain.Seconds)
	}
}

func TestDIACatastrophicWhenFillHigh(t *testing.T) {
	// A banded matrix with one extra scattered diagonal pattern has moderate
	// fill; compare DIA on fill ~1 vs fill ~8 matrices.
	good := Stencil2D(64, 64)
	pg, _ := NewProblem(good, randVec(good.Cols, 1))
	dg, err := DIAKernel(pg, dev())
	if err != nil {
		t.Fatal(err)
	}
	// Same size but with far more distinct diagonals (higher fill).
	offsets := []int{-900, -500, -123, -7, -1, 0, 1, 7, 123, 500, 900}
	sparse := Banded(4096, offsets, 2)
	// Remove most entries from the wide diagonals to inflate fill: emulate
	// by dropping values — easier: use scattered regular matrix with DIA
	// feasible? Instead compare per-nnz efficiency.
	ps, _ := NewProblem(sparse, randVec(sparse.Cols, 2))
	dsr, err := DIAKernel(ps, dev())
	if err != nil {
		t.Fatal(err)
	}
	perNNZGood := dg.Seconds / float64(good.NNZ())
	perNNZBad := dsr.Seconds / float64(sparse.NNZ())
	_ = perNNZGood
	_ = perNNZBad
	// Both are near-fill-1; the real check is the cutoff constraint:
	scattered := RandomUniform(2000, 20000, 3)
	pb, _ := NewProblem(scattered, randVec(2000, 3))
	for _, v := range Variants() {
		if v.Name == "DIA" && v.Constraint(pb) {
			t.Errorf("DIA constraint should veto scattered matrix (fill %v)", pb.Features().DIAFill)
		}
	}
}

func TestVariantTimesDeterministic(t *testing.T) {
	m := Stencil2D(32, 32)
	p1, _ := NewProblem(m, randVec(m.Cols, 7))
	p2, _ := NewProblem(m, p1.X)
	r1, _ := CSRVec(p1, dev())
	r2, _ := CSRVec(p2, dev())
	if r1.Seconds != r2.Seconds {
		t.Errorf("same problem, different times: %v vs %v", r1.Seconds, r2.Seconds)
	}
}

func TestProblemCachesConversions(t *testing.T) {
	m := Stencil2D(16, 16)
	p, _ := NewProblem(m, randVec(m.Cols, 8))
	d1, err1 := p.DIA()
	d2, err2 := p.DIA()
	if d1 != d2 || err1 != err2 {
		t.Error("DIA conversion not cached")
	}
	e1, _ := p.ELL()
	e2, _ := p.ELL()
	if e1 != e2 {
		t.Error("ELL conversion not cached")
	}
}

func TestBiggerMatrixTakesLonger(t *testing.T) {
	small := Stencil2D(32, 32)
	large := Stencil2D(256, 256)
	ps, _ := NewProblem(small, randVec(small.Cols, 1))
	pl, _ := NewProblem(large, randVec(large.Cols, 1))
	rs, _ := CSRVec(ps, dev())
	rl, _ := CSRVec(pl, dev())
	if rl.Seconds <= rs.Seconds {
		t.Errorf("64x larger matrix should take longer: %v vs %v", rl.Seconds, rs.Seconds)
	}
}
