package sparse

import (
	"testing"

	"nitro/internal/gpusim"
)

func benchProblem(b *testing.B, m *CSR) *Problem {
	b.Helper()
	p, err := NewProblem(m, randVec(m.Cols, 1))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchVariant(b *testing.B, run func(*Problem, *gpusim.Device) (Result, error), m *CSR) {
	b.Helper()
	p := benchProblem(b, m)
	d := gpusim.Fermi()
	// Warm the conversion caches so the bench measures the kernel path.
	if _, err := run(p, d); err != nil {
		b.Skip(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(p, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpMVCSRVec(b *testing.B)  { benchVariant(b, CSRVec, Stencil2D(128, 128)) }
func BenchmarkSpMVCSRTx(b *testing.B)   { benchVariant(b, CSRVecTx, Stencil2D(128, 128)) }
func BenchmarkSpMVDIA(b *testing.B)     { benchVariant(b, DIAKernel, Stencil2D(128, 128)) }
func BenchmarkSpMVELL(b *testing.B)     { benchVariant(b, ELLKernel, RegularRandom(10000, 12, 1)) }
func BenchmarkSpMVCOOFlat(b *testing.B) { benchVariant(b, COOFlat, PowerLaw(8000, 10, 1.4, 2)) }
func BenchmarkSpMVHYB(b *testing.B)     { benchVariant(b, HYBKernel, PowerLaw(8000, 10, 1.4, 2)) }

func BenchmarkConvertToCSR(b *testing.B) {
	coo := RandomUniform(5000, 50000, 3).ToCOO()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = coo.ToCSR()
	}
}

func BenchmarkConvertToDIA(b *testing.B) {
	m := Stencil2D(100, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ToDIA(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvertToELL(b *testing.B) {
	m := RegularRandom(5000, 10, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ToELL(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvertToHYB(b *testing.B) {
	m := PowerLaw(5000, 10, 1.4, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ToHYB(0)
	}
}

func BenchmarkComputeFeatures(b *testing.B) {
	m := PowerLaw(20000, 10, 1.4, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeFeatures(m)
	}
}
