package sparse

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestToHYBAgreesWithCSR(t *testing.T) {
	for _, m := range []*CSR{
		Stencil2D(12, 14),
		PowerLaw(300, 8, 1.5, 3),
		RegularRandom(200, 5, 4),
		RandomUniform(150, 600, 5),
	} {
		h := m.ToHYB(0)
		x := randVec(m.Cols, 1)
		y1, y2 := make([]float64, m.Rows), make([]float64, m.Rows)
		m.MulVec(x, y1)
		h.MulVec(x, y2)
		vecAlmostEqual(t, y1, y2, 1e-12, "HYB MulVec")
		if h.NNZ() != m.NNZ() {
			t.Errorf("HYB stores %d entries, CSR %d", h.NNZ(), m.NNZ())
		}
	}
}

func TestTypicalWidth(t *testing.T) {
	reg := RegularRandom(100, 7, 1)
	if w := TypicalWidth(reg); w != 7 {
		t.Errorf("regular matrix typical width = %d, want 7", w)
	}
	pl := PowerLaw(500, 10, 1.4, 2)
	w := TypicalWidth(pl)
	maxLen := 0
	for i := 0; i < pl.Rows; i++ {
		if l := pl.RowLen(i); l > maxLen {
			maxLen = l
		}
	}
	if w >= maxLen {
		t.Errorf("power-law typical width %d should be far below max row %d", w, maxLen)
	}
	// ELL storage bound: width*rows <= 1.5*nnz (or width 1).
	if w > 1 && w*pl.Rows > 3*pl.NNZ()/2 {
		t.Errorf("typical width %d violates the storage bound", w)
	}
	if TypicalWidth(&CSR{RowPtr: []int32{0}}) != 0 {
		t.Error("empty matrix width should be 0")
	}
}

func TestToHYBExplicitWidth(t *testing.T) {
	m := PowerLaw(200, 6, 1.5, 7)
	h := m.ToHYB(2)
	if h.Ell.MaxNZ != 2 {
		t.Errorf("explicit width ignored: %d", h.Ell.MaxNZ)
	}
	x := randVec(m.Cols, 2)
	y1, y2 := make([]float64, m.Rows), make([]float64, m.Rows)
	m.MulVec(x, y1)
	h.MulVec(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-12, "HYB width-2 MulVec")
}

func TestQuickHYBSplitPreservesProduct(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		m := RandomUniform(50, 200, seed%300)
		h := m.ToHYB(int(width%10) + 1)
		x := randVec(50, seed+1)
		y1, y2 := make([]float64, 50), make([]float64, 50)
		m.MulVec(x, y1)
		h.MulVec(x, y2)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-9*(1+math.Abs(y1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExtendedVariantsCorrectAndFeasible(t *testing.T) {
	m := PowerLaw(2000, 10, 1.4, 11)
	p, _ := NewProblem(m, randVec(m.Cols, 3))
	ref := make([]float64, m.Rows)
	m.MulVec(p.X, ref)
	names := ExtendedVariantNames()
	if len(names) != 8 || names[6] != "COO" || names[7] != "HYB" {
		t.Fatalf("extended set wrong: %v", names)
	}
	for _, v := range ExtendedVariants()[6:] {
		res, err := v.Run(p, dev())
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		vecAlmostEqual(t, ref, res.Y, 1e-9, v.Name)
		if res.Seconds <= 0 {
			t.Fatalf("%s: bad time", v.Name)
		}
	}
}

func TestCOOBeatsCSROnExtremeSkew(t *testing.T) {
	// One gigantic row dwarfs everything: CSR-Vec eats the imbalance, the
	// flat COO kernel does not.
	coo := &COO{Rows: 20000, Cols: 20000}
	for i := 0; i < 20000; i++ {
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32(i))
		coo.Vals = append(coo.Vals, 1)
	}
	for j := 0; j < 15000; j++ {
		coo.RowIdx = append(coo.RowIdx, 0)
		coo.ColIdx = append(coo.ColIdx, int32(j+1))
		coo.Vals = append(coo.Vals, 0.1)
	}
	m := coo.ToCSR()
	p, _ := NewProblem(m, randVec(m.Cols, 4))
	rCSR, err := CSRVec(p, dev())
	if err != nil {
		t.Fatal(err)
	}
	rCOO, err := COOFlat(p, dev())
	if err != nil {
		t.Fatal(err)
	}
	if rCOO.Seconds >= rCSR.Seconds {
		t.Errorf("COO (%v) should beat CSR-Vec (%v) on a one-monster-row matrix", rCOO.Seconds, rCSR.Seconds)
	}
}

func TestHYBCompetitiveOnMildSkew(t *testing.T) {
	// Mostly-regular rows with a few heavy ones: HYB should beat pure COO
	// (its ELL part streams the regular majority) and the best extended
	// variant should not be a padded pure format.
	base := RegularRandom(20000, 8, 5).ToCOO()
	for j := 0; j < 4000; j++ {
		base.RowIdx = append(base.RowIdx, int32(j%37))
		base.ColIdx = append(base.ColIdx, int32((j*131)%20000))
		base.Vals = append(base.Vals, 0.01)
	}
	m := base.ToCSR()
	p, _ := NewProblem(m, randVec(m.Cols, 6))
	rHYB, err := HYBKernel(p, dev())
	if err != nil {
		t.Fatal(err)
	}
	rCOO, err := COOFlat(p, dev())
	if err != nil {
		t.Fatal(err)
	}
	rCSR, err := CSRVec(p, dev())
	if err != nil {
		t.Fatal(err)
	}
	// HYB's ELL part streams the regular majority without CSR-Vec's
	// warp-waste penalty, and stays within range of the flat COO kernel
	// (both pay the same x-gather).
	if rHYB.Seconds >= rCSR.Seconds {
		t.Errorf("HYB (%v) should beat CSR-Vec (%v) on fine regular rows", rHYB.Seconds, rCSR.Seconds)
	}
	if rHYB.Seconds > rCOO.Seconds*1.25 {
		t.Errorf("HYB (%v) should be competitive with flat COO (%v)", rHYB.Seconds, rCOO.Seconds)
	}
	name, _ := BestExtended(p, dev())
	if strings.HasPrefix(name, "DIA") {
		t.Errorf("best extended variant = %s, DIA should be vetoed/poor here", name)
	}
}
