package sparse

import (
	"math"
	"math/rand"
)

// The generators below build the synthetic corpus that substitutes for the
// UFL Sparse Matrix collection (see DESIGN.md). Each targets the structural
// regime of a UFL group: stencil/banded matrices favour DIA,
// regular-row-length matrices favour ELL, power-law matrices force CSR, and
// clustered-column matrices reward the texture-cached variants. All are
// seeded and deterministic.

// Stencil2D returns the 5-point Laplacian on an nx x ny grid: symmetric
// positive definite, 3 to 5 entries per row, exactly 5 diagonals — the
// DIA-format sweet spot.
func Stencil2D(nx, ny int) *CSR {
	n := nx * ny
	coo := &COO{Rows: n, Cols: n}
	add := func(r, c int, v float64) {
		coo.RowIdx = append(coo.RowIdx, int32(r))
		coo.ColIdx = append(coo.ColIdx, int32(c))
		coo.Vals = append(coo.Vals, v)
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := y*nx + x
			add(i, i, 4)
			if x > 0 {
				add(i, i-1, -1)
			}
			if x < nx-1 {
				add(i, i+1, -1)
			}
			if y > 0 {
				add(i, i-nx, -1)
			}
			if y < ny-1 {
				add(i, i+nx, -1)
			}
		}
	}
	return coo.ToCSR()
}

// Stencil3D returns the 7-point Laplacian on an nx x ny x nz grid (7
// diagonals, SPD).
func Stencil3D(nx, ny, nz int) *CSR {
	n := nx * ny * nz
	coo := &COO{Rows: n, Cols: n}
	add := func(r, c int, v float64) {
		coo.RowIdx = append(coo.RowIdx, int32(r))
		coo.ColIdx = append(coo.ColIdx, int32(c))
		coo.Vals = append(coo.Vals, v)
	}
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				add(i, i, 6)
				if x > 0 {
					add(i, idx(x-1, y, z), -1)
				}
				if x < nx-1 {
					add(i, idx(x+1, y, z), -1)
				}
				if y > 0 {
					add(i, idx(x, y-1, z), -1)
				}
				if y < ny-1 {
					add(i, idx(x, y+1, z), -1)
				}
				if z > 0 {
					add(i, idx(x, y, z-1), -1)
				}
				if z < nz-1 {
					add(i, idx(x, y, z+1), -1)
				}
			}
		}
	}
	return coo.ToCSR()
}

// Banded returns an n x n matrix with the given diagonal offsets fully
// populated (plus a dominant main diagonal), values in (0, 1]. A pure DIA
// matrix with zero fill-in.
func Banded(n int, offsets []int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := &COO{Rows: n, Cols: n}
	hasMain := false
	for _, off := range offsets {
		if off == 0 {
			hasMain = true
		}
		for i := 0; i < n; i++ {
			j := i + off
			if j < 0 || j >= n {
				continue
			}
			v := rng.Float64()
			if off == 0 {
				v += float64(len(offsets)) // diagonal dominance
			}
			coo.RowIdx = append(coo.RowIdx, int32(i))
			coo.ColIdx = append(coo.ColIdx, int32(j))
			coo.Vals = append(coo.Vals, v)
		}
	}
	if !hasMain {
		for i := 0; i < n; i++ {
			coo.RowIdx = append(coo.RowIdx, int32(i))
			coo.ColIdx = append(coo.ColIdx, int32(i))
			coo.Vals = append(coo.Vals, float64(len(offsets))+rng.Float64())
		}
	}
	return coo.ToCSR()
}

// RegularRandom returns an n x n matrix with exactly k nonzeros in every row
// at uniformly random columns — the ELL sweet spot (fill-in exactly 1, but
// scattered columns defeat DIA).
func RegularRandom(n, k int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		seen := map[int32]bool{int32(i): true}
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32(i))
		coo.Vals = append(coo.Vals, float64(k)+rng.Float64())
		for len(seen) < min(k, n) {
			c := int32(rng.Intn(n))
			if seen[c] {
				continue
			}
			seen[c] = true
			coo.RowIdx = append(coo.RowIdx, int32(i))
			coo.ColIdx = append(coo.ColIdx, c)
			coo.Vals = append(coo.Vals, rng.Float64()-0.5)
		}
	}
	return coo.ToCSR()
}

// PowerLaw returns an n x n matrix whose row lengths follow a truncated
// power law (a few very long rows, many short ones) — the regime where ELL
// and DIA fill-in explode and CSR-Vec wins.
func PowerLaw(n int, avgNZ float64, alpha float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	if alpha <= 1 {
		alpha = 2
	}
	coo := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		// Pareto-ish row length scaled to the target average.
		u := rng.Float64()
		l := int(avgNZ * (alpha - 1) / alpha / math.Pow(1-u, 1/alpha))
		if l < 1 {
			l = 1
		}
		if l > n {
			l = n
		}
		seen := map[int32]bool{int32(i): true}
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32(i))
		coo.Vals = append(coo.Vals, avgNZ+rng.Float64())
		for len(seen) < min(l, n) {
			c := int32(rng.Intn(n))
			if seen[c] {
				continue
			}
			seen[c] = true
			coo.RowIdx = append(coo.RowIdx, int32(i))
			coo.ColIdx = append(coo.ColIdx, c)
			coo.Vals = append(coo.Vals, rng.Float64()-0.5)
		}
	}
	return coo.ToCSR()
}

// BlockClustered returns an n x n matrix whose rows gather from a small
// window of columns (block structure, like FEM meshes): the input-vector
// working set per row is tiny and heavily reused, which is the regime where
// the texture-cached variants pay off.
func BlockClustered(n, rowLen, window int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	if window < rowLen {
		window = rowLen
	}
	coo := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		base := i - window/2
		if base < 0 {
			base = 0
		}
		if base+window > n {
			base = n - window
		}
		if base < 0 {
			base = 0
		}
		seen := map[int32]bool{int32(i): true}
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32(i))
		coo.Vals = append(coo.Vals, float64(rowLen)+rng.Float64())
		limit := min(rowLen, min(window, n))
		for len(seen) < limit {
			c := int32(base + rng.Intn(min(window, n)))
			if seen[c] {
				continue
			}
			seen[c] = true
			coo.RowIdx = append(coo.RowIdx, int32(i))
			coo.ColIdx = append(coo.ColIdx, c)
			coo.Vals = append(coo.Vals, rng.Float64()-0.5)
		}
	}
	return coo.ToCSR()
}

// RandomUniform returns an Erdos-Renyi style n x n matrix with expected
// density nnz entries plus a guaranteed dominant diagonal.
func RandomUniform(n, nnz int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := &COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32(i))
		coo.Vals = append(coo.Vals, float64(nnz)/float64(n)+1+rng.Float64())
	}
	for e := 0; e < nnz; e++ {
		r, c := int32(rng.Intn(n)), int32(rng.Intn(n))
		coo.RowIdx = append(coo.RowIdx, r)
		coo.ColIdx = append(coo.ColIdx, c)
		coo.Vals = append(coo.Vals, (rng.Float64()-0.5)*0.5)
	}
	return coo.ToCSR()
}

// SPD returns a symmetric positive-definite matrix built from a base pattern:
// B + B^T plus a diagonal shift that guarantees strict diagonal dominance
// scaled by dominance (>1 keeps it SPD; values near 1 are barely dominant and
// slow iterative solvers down, large values converge fast).
func SPD(base *CSR, dominance float64, seed int64) *CSR {
	if dominance < 1.01 {
		dominance = 1.01
	}
	t := base.Transpose()
	coo := &COO{Rows: base.Rows, Cols: base.Cols}
	push := func(m *CSR, scale float64) {
		for i := 0; i < m.Rows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if int(m.ColIdx[p]) == i {
					continue // diagonal rebuilt below
				}
				coo.RowIdx = append(coo.RowIdx, int32(i))
				coo.ColIdx = append(coo.ColIdx, m.ColIdx[p])
				coo.Vals = append(coo.Vals, m.Vals[p]*scale)
			}
		}
	}
	push(base, 0.5)
	push(t, 0.5)
	sym := coo.ToCSR()
	// Diagonal = dominance * sum |offdiag| per row (plus a floor).
	rowAbs := make([]float64, sym.Rows)
	for i := 0; i < sym.Rows; i++ {
		for p := sym.RowPtr[i]; p < sym.RowPtr[i+1]; p++ {
			rowAbs[i] += math.Abs(sym.Vals[p])
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := sym.ToCOO()
	for i := 0; i < sym.Rows; i++ {
		out.RowIdx = append(out.RowIdx, int32(i))
		out.ColIdx = append(out.ColIdx, int32(i))
		out.Vals = append(out.Vals, dominance*rowAbs[i]+0.1+0.01*rng.Float64())
	}
	return out.ToCSR()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
