package sparse

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := RandomUniform(25, 80, 3).ToCOO()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := m.ToCSR(), back.ToCSR()
	if a.NNZ() != b.NNZ() || a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("shape changed: %dx%d/%d vs %dx%d/%d", a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
	}
	x := randVec(a.Cols, 1)
	y1, y2 := make([]float64, a.Rows), make([]float64, a.Rows)
	a.MulVec(x, y1)
	b.MulVec(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-12, "MM round trip")
}

func TestMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
3 2 -1.0
3 3 2.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 6 { // two off-diagonals mirrored
		t.Errorf("symmetric expansion produced %d entries, want 6", m.NNZ())
	}
	csr := m.ToCSR()
	tt := csr.Transpose()
	x := []float64{1, 2, 3}
	y1, y2 := make([]float64, 3), make([]float64, 3)
	csr.MulVec(x, y1)
	tt.MulVec(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-12, "symmetric matrix")
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vals[0] != 1 || m.Vals[1] != 1 {
		t.Errorf("pattern values should be 1: %v", m.Vals)
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage header\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n", // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n", // truncated
		"%%MatrixMarket matrix coordinate real general\n-1 2 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
	}
	for i, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

// Property: MatrixMarket write/read round-trips arbitrary random matrices.
func TestQuickMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64, nz uint8) bool {
		n := 10 + int(seed%20+20)%20
		m := RandomUniform(n, n*(1+int(nz%8)), seed%997).ToCOO()
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			return false
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			return false
		}
		a, b := m.ToCSR(), back.ToCSR()
		if a.NNZ() != b.NNZ() {
			return false
		}
		for i := range a.Vals {
			if a.Vals[i] != b.Vals[i] || a.ColIdx[i] != b.ColIdx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
