package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vecAlmostEqual(t *testing.T, a, b []float64, tol float64, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			t.Fatalf("%s: element %d differs: %v vs %v", what, i, a[i], b[i])
		}
	}
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestCOOToCSRRoundTrip(t *testing.T) {
	coo := &COO{Rows: 3, Cols: 3,
		RowIdx: []int32{2, 0, 1, 0},
		ColIdx: []int32{2, 1, 0, 1}, // (0,1) duplicated
		Vals:   []float64{3, 1, 2, 4},
	}
	csr := coo.ToCSR()
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if csr.NNZ() != 3 {
		t.Fatalf("duplicates not summed: nnz=%d", csr.NNZ())
	}
	// (0,1) should hold 1+4=5.
	if csr.Vals[0] != 5 || csr.ColIdx[0] != 1 {
		t.Errorf("dup sum wrong: %v %v", csr.Vals[0], csr.ColIdx[0])
	}
	back := csr.ToCOO()
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3}
	y1, y2 := make([]float64, 3), make([]float64, 3)
	csr.MulVec(x, y1)
	back.MulVec(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-14, "COO round trip MulVec")
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	m := Stencil2D(4, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *m
	bad.RowPtr = append([]int32(nil), m.RowPtr...)
	bad.RowPtr[3] = bad.RowPtr[5] + 1 // non-monotone
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone RowPtr accepted")
	}
	bad2 := *m
	bad2.ColIdx = append([]int32(nil), m.ColIdx...)
	bad2.ColIdx[0] = 99
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestTranspose(t *testing.T) {
	m := RandomUniform(30, 120, 7)
	tt := m.Transpose().Transpose()
	x := randVec(30, 1)
	y1, y2 := make([]float64, 30), make([]float64, 30)
	m.MulVec(x, y1)
	tt.MulVec(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-12, "double transpose")

	// (A^T x) . y == x . (A y)
	a := m.Transpose()
	yv := randVec(30, 2)
	atx := make([]float64, 30)
	ay := make([]float64, 30)
	a.MulVec(x, atx)
	m.MulVec(yv, ay)
	var lhs, rhs float64
	for i := range x {
		lhs += atx[i] * yv[i]
		rhs += x[i] * ay[i]
	}
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Errorf("adjoint identity broken: %v vs %v", lhs, rhs)
	}
}

func TestDIAConversionAgreesWithCSR(t *testing.T) {
	m := Stencil2D(8, 9)
	d, err := m.ToDIA(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NDiags() != 5 {
		t.Errorf("5-point stencil should have 5 diagonals, got %d", d.NDiags())
	}
	x := randVec(m.Cols, 3)
	y1, y2 := make([]float64, m.Rows), make([]float64, m.Rows)
	m.MulVec(x, y1)
	d.MulVec(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-12, "DIA MulVec")
	if f := d.Fill(m.NNZ()); f < 1 {
		t.Errorf("fill %v < 1", f)
	}
}

func TestDIABudgetExceeded(t *testing.T) {
	m := RandomUniform(64, 512, 5) // scattered: many diagonals
	if _, err := m.ToDIA(8); err == nil {
		t.Error("expected ErrTooManyDiagonals")
	}
}

func TestELLConversionAgreesWithCSR(t *testing.T) {
	m := RegularRandom(50, 6, 11)
	e, err := m.ToELL(0)
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxNZ != 6 {
		t.Errorf("regular matrix width should be 6, got %d", e.MaxNZ)
	}
	if f := e.Fill(m.NNZ()); math.Abs(f-1) > 1e-12 {
		t.Errorf("regular matrix ELL fill should be 1, got %v", f)
	}
	x := randVec(m.Cols, 4)
	y1, y2 := make([]float64, m.Rows), make([]float64, m.Rows)
	m.MulVec(x, y1)
	e.MulVec(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-12, "ELL MulVec")
}

func TestELLBudgetExceeded(t *testing.T) {
	m := PowerLaw(200, 8, 1.5, 13)
	maxLen := 0
	for i := 0; i < m.Rows; i++ {
		if l := m.RowLen(i); l > maxLen {
			maxLen = l
		}
	}
	if maxLen < 3 {
		t.Skip("power-law draw too tame")
	}
	if _, err := m.ToELL(maxLen - 1); err == nil {
		t.Error("expected ErrRowTooLong")
	}
}

func TestDiag(t *testing.T) {
	m := Stencil2D(3, 3)
	d := m.Diag()
	for i, v := range d {
		if v != 4 {
			t.Errorf("diag[%d] = %v, want 4", i, v)
		}
	}
}

// Property: all four formats produce the same SpMV result on random
// matrices.
func TestQuickFormatAgreement(t *testing.T) {
	f := func(seed int64) bool {
		s := seed % 1000
		m := RandomUniform(40, 150, s)
		x := randVec(40, s+1)
		ref := make([]float64, 40)
		m.MulVec(x, ref)

		coo := m.ToCOO()
		y := make([]float64, 40)
		coo.MulVec(x, y)
		for i := range y {
			if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
				return false
			}
		}
		if e, err := m.ToELL(0); err == nil {
			e.MulVec(x, y)
			for i := range y {
				if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
					return false
				}
			}
		}
		if d, err := m.ToDIA(0); err == nil {
			d.MulVec(x, y)
			for i := range y {
				if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFeaturesStencil(t *testing.T) {
	m := Stencil2D(10, 10)
	f := ComputeFeatures(m)
	if f.NumRows != 100 || f.NNZ != float64(m.NNZ()) {
		t.Errorf("size features wrong: %+v", f)
	}
	if f.DIAFill > 1.5 {
		t.Errorf("stencil DIA fill should be near 1, got %v", f.DIAFill)
	}
	if f.AvgNZPerRow < 3 || f.AvgNZPerRow > 5 {
		t.Errorf("AvgNZPerRow = %v", f.AvgNZPerRow)
	}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Error("Vector/FeatureNames length mismatch")
	}
}

func TestFeaturesPowerLawVsRegular(t *testing.T) {
	pl := ComputeFeatures(PowerLaw(300, 10, 1.6, 3))
	reg := ComputeFeatures(RegularRandom(300, 10, 3))
	if pl.RowLenStdDev <= reg.RowLenStdDev {
		t.Errorf("power-law RL-SD (%v) should exceed regular (%v)", pl.RowLenStdDev, reg.RowLenStdDev)
	}
	if pl.ELLFill <= reg.ELLFill {
		t.Errorf("power-law ELL fill (%v) should exceed regular (%v)", pl.ELLFill, reg.ELLFill)
	}
	if math.Abs(reg.ELLFill-1) > 1e-9 {
		t.Errorf("regular ELL fill should be 1, got %v", reg.ELLFill)
	}
}

func TestXReuse(t *testing.T) {
	m := Banded(50, []int{-1, 0, 1}, 1)
	r := XReuse(m)
	if r < 2 || r > 3.5 {
		t.Errorf("tridiagonal reuse ~3, got %v", r)
	}
	empty := &CSR{Rows: 2, Cols: 2, RowPtr: []int32{0, 0, 0}}
	if XReuse(empty) != 1 {
		t.Error("empty matrix reuse should be 1")
	}
}

func TestSPDIsSymmetricDominant(t *testing.T) {
	base := RandomUniform(40, 100, 9)
	m := SPD(base, 1.5, 1)
	tt := m.Transpose()
	x := randVec(40, 5)
	y1, y2 := make([]float64, 40), make([]float64, 40)
	m.MulVec(x, y1)
	tt.MulVec(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-9, "SPD symmetry")
	d := m.Diag()
	for i := 0; i < m.Rows; i++ {
		var off float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.ColIdx[p]) != i {
				off += math.Abs(m.Vals[p])
			}
		}
		if d[i] <= off {
			t.Fatalf("row %d not strictly dominant: diag %v vs off %v", i, d[i], off)
		}
	}
}

func TestGeneratorsShapes(t *testing.T) {
	cases := []struct {
		name string
		m    *CSR
	}{
		{"stencil2d", Stencil2D(6, 7)},
		{"stencil3d", Stencil3D(4, 3, 5)},
		{"banded", Banded(30, []int{-2, 0, 2}, 1)},
		{"regular", RegularRandom(30, 4, 2)},
		{"powerlaw", PowerLaw(60, 6, 1.8, 3)},
		{"clustered", BlockClustered(50, 8, 16, 4)},
		{"uniform", RandomUniform(30, 90, 5)},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if c.m.NNZ() == 0 {
			t.Errorf("%s: empty matrix", c.name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PowerLaw(50, 5, 1.7, 42)
	b := PowerLaw(50, 5, 1.7, 42)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different matrices")
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("same seed produced different matrices")
		}
	}
}

func TestEmptyRowsThroughVariants(t *testing.T) {
	// A matrix with many completely empty rows must flow through every
	// feasible variant without panicking and still produce the right product.
	coo := &COO{Rows: 500, Cols: 500}
	for i := 0; i < 500; i += 5 { // only every fifth row has entries
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32((i*3)%500))
		coo.Vals = append(coo.Vals, 1.5)
	}
	m := coo.ToCSR()
	p, err := NewProblem(m, randVec(500, 9))
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, 500)
	m.MulVec(p.X, ref)
	for _, v := range ExtendedVariants() {
		if v.Constraint != nil && !v.Constraint(p) {
			continue
		}
		res, err := v.Run(p, dev())
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		vecAlmostEqual(t, ref, res.Y, 1e-12, v.Name)
	}
}
