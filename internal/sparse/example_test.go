package sparse_test

import (
	"fmt"

	"nitro/internal/gpusim"
	"nitro/internal/sparse"
)

// ExampleComputeFeatures shows the structural features Nitro's SpMV model
// selects on for a 5-point stencil (the DIA sweet spot: fill-in 1).
func ExampleComputeFeatures() {
	m := sparse.Stencil2D(100, 100)
	f := sparse.ComputeFeatures(m)
	fmt.Printf("rows=%d nnz=%d avg=%.2f diaFill=%.2f ellFill=%.2f\n",
		int(f.NumRows), int(f.NNZ), f.AvgNZPerRow, f.DIAFill, f.ELLFill)
	// Output:
	// rows=10000 nnz=49600 avg=4.96 diaFill=1.01 ellFill=1.01
}

// ExampleVariants runs every feasible SpMV variant on a banded matrix and
// reports the winner (a DIA-format kernel, as expected for a pure band).
func ExampleVariants() {
	m := sparse.Banded(5000, []int{-1, 0, 1}, 7)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	p, err := sparse.NewProblem(m, x)
	if err != nil {
		panic(err)
	}
	dev := gpusim.Fermi()
	best, bestT := "", 0.0
	for _, v := range sparse.Variants() {
		if v.Constraint != nil && !v.Constraint(p) {
			continue
		}
		res, err := v.Run(p, dev)
		if err != nil {
			panic(err)
		}
		if best == "" || res.Seconds < bestT {
			best, bestT = v.Name, res.Seconds
		}
	}
	fmt.Println("fastest on a tridiagonal matrix:", best)
	// Output:
	// fastest on a tridiagonal matrix: DIA
}
