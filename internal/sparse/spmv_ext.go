package sparse

import (
	"math"

	"nitro/internal/gpusim"
)

// This file holds the extension variant set beyond the paper's six: the
// CUSP COO (flat segmented-reduction) kernel and the HYB (ELL+COO) kernel.
// They are not part of the Fig. 4 reproduction, but DESIGN.md's extension
// experiment uses them to show Nitro absorbing a richer variant space
// without any framework change.

// cooCharge accounts a COO flat kernel over nnz entries.
func cooCharge(p *Problem, k *gpusim.Kernel, nnz int) {
	k.GlobalRead(float64(16 * nnz)) // row idx + col idx + value
	k.Gather(nnz, 8, float64(8*p.A.Cols), p.Reuse())
	// Segmented reduction: carry propagation between warps plus scattered
	// partial-sum writes, but perfectly balanced regardless of row lengths.
	k.ComputeDP(float64(4 * nnz))
	k.Gather(nnz/32+1, 8, float64(8*p.A.Rows), 1) // per-warp carry writes
}

// COOFlat is the CUSP coo_flat kernel: one thread per nonzero with a
// segmented reduction, completely insensitive to row-length distribution.
func COOFlat(p *Problem, dev *gpusim.Device) (Result, error) {
	run := gpusim.NewRun(dev)
	nnz := p.A.NNZ()
	k := run.Launch("spmv_coo_flat", nnz)
	cooCharge(p, k, nnz)
	run.Done(k)

	y := make([]float64, p.A.Rows)
	coo := p.A.ToCOO()
	coo.MulVec(p.X, y)
	return Result{Y: y, Seconds: run.Seconds()}, nil
}

// hyb caches the HYB conversion on the problem via a tiny side table keyed
// by the problem pointer-free way: recompute is cheap relative to variant
// execution, so no cache is kept.
func hybOf(p *Problem) *HYB { return p.A.ToHYB(0) }

// HYBKernel is the CUSP hyb kernel: the ELL part runs the regular coalesced
// kernel, the COO overflow runs the flat kernel.
func HYBKernel(p *Problem, dev *gpusim.Device) (Result, error) {
	h := hybOf(p)
	run := gpusim.NewRun(dev)

	ke := run.Launch("spmv_hyb_ell", h.Ell.Rows)
	cells := h.Ell.Rows * h.Ell.MaxNZ
	ke.GlobalRead(float64(12 * cells))
	ke.GlobalWrite(float64(8 * h.Ell.Rows))
	ke.ComputeDP(float64(2 * cells))
	stored := cells
	if pad := h.ellPadding(); pad > 0 {
		stored -= pad
		if cells > 0 {
			ke.Divergence(float64(stored) / float64(cells))
		}
	}
	ke.Gather(stored, 8, float64(8*p.A.Cols), p.Reuse())
	run.Done(ke)

	if n := h.Coo.NNZ(); n > 0 {
		kc := run.Launch("spmv_hyb_coo", n)
		cooCharge(p, kc, n)
		run.Done(kc)
	}

	y := make([]float64, p.A.Rows)
	h.MulVec(p.X, y)
	return Result{Y: y, Seconds: run.Seconds()}, nil
}

// ExtendedVariants returns the paper's six variants plus the COO and HYB
// extension kernels (eight in total).
func ExtendedVariants() []Variant {
	return append(Variants(),
		Variant{Name: "COO", Run: COOFlat},
		Variant{Name: "HYB", Run: HYBKernel},
	)
}

// ExtendedVariantNames returns the names in ExtendedVariants order.
func ExtendedVariantNames() []string {
	vs := ExtendedVariants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

// BestExtended runs every feasible extended variant and returns the winning
// name, for diagnostics.
func BestExtended(p *Problem, dev *gpusim.Device) (string, float64) {
	best, bestT := "", math.Inf(1)
	for _, v := range ExtendedVariants() {
		if v.Constraint != nil && !v.Constraint(p) {
			continue
		}
		res, err := v.Run(p, dev)
		if err != nil {
			continue
		}
		if res.Seconds < bestT {
			best, bestT = v.Name, res.Seconds
		}
	}
	return best, bestT
}
