package sparse

import "sort"

// HYB is CUSP's hybrid format: an ELL part holding up to Width entries per
// row (the "typical" row length) and a COO part holding the overflow of the
// long rows. It combines ELL's coalesced regular access with COO's
// insensitivity to row-length skew, and is the format CUSP recommends as the
// general-purpose default.
type HYB struct {
	Ell *ELL
	Coo *COO
}

// NNZ returns the stored-entry count across both parts.
func (m *HYB) NNZ() int { return m.Ell.Rows*m.Ell.MaxNZ - m.ellPadding() + m.Coo.NNZ() }

func (m *HYB) ellPadding() int {
	pad := 0
	for _, c := range m.Ell.ColIdx {
		if c < 0 {
			pad++
		}
	}
	return pad
}

// MulVec computes y = A*x with the reference HYB kernel (ELL part then COO
// accumulation).
func (m *HYB) MulVec(x, y []float64) {
	m.Ell.MulVec(x, y)
	for i := range m.Coo.Vals {
		y[m.Coo.RowIdx[i]] += m.Coo.Vals[i] * x[m.Coo.ColIdx[i]]
	}
}

// TypicalWidth returns CUSP's heuristic ELL width for a matrix: the largest
// width w such that at least two thirds of the rows have w or more entries —
// bounded so the ELL part never stores more than ~1.5x the nonzeros.
func TypicalWidth(m *CSR) int {
	if m.Rows == 0 {
		return 0
	}
	lens := make([]int, m.Rows)
	for i := range lens {
		lens[i] = m.RowLen(i)
	}
	sort.Ints(lens)
	// Width at the 33rd percentile: two thirds of rows are at least this
	// long, so padding waste in the ELL part stays low.
	w := lens[m.Rows/3]
	if w < 1 {
		w = 1
	}
	for w > 1 && w*m.Rows > 3*m.NNZ()/2 {
		w--
	}
	return w
}

// ToHYB splits the matrix at the given ELL width (<= 0 selects
// TypicalWidth): the first width entries of each row go to the ELL part, the
// rest to the COO part.
func (m *CSR) ToHYB(width int) *HYB {
	if width <= 0 {
		width = TypicalWidth(m)
	}
	ell := &ELL{Rows: m.Rows, Cols: m.Cols, MaxNZ: width,
		ColIdx: make([]int32, m.Rows*width), Vals: make([]float64, m.Rows*width)}
	for i := range ell.ColIdx {
		ell.ColIdx[i] = -1
	}
	coo := &COO{Rows: m.Rows, Cols: m.Cols}
	for i := 0; i < m.Rows; i++ {
		k := 0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if k < width {
				ell.ColIdx[k*m.Rows+i] = m.ColIdx[p]
				ell.Vals[k*m.Rows+i] = m.Vals[p]
				k++
				continue
			}
			coo.RowIdx = append(coo.RowIdx, int32(i))
			coo.ColIdx = append(coo.ColIdx, m.ColIdx[p])
			coo.Vals = append(coo.Vals, m.Vals[p])
		}
	}
	return &HYB{Ell: ell, Coo: coo}
}
