package sparse

import (
	"errors"
	"fmt"
	"math"

	"nitro/internal/gpusim"
)

// Conversion budgets: beyond these the DIA/ELL representations explode in
// memory and the variants are structurally infeasible (their constraints
// veto them, as in the paper's __dia_cutoff example).
const (
	MaxDIADiagonals = 2048
	MaxELLWidth     = 2048
	// DIAFillCutoff and ELLFillCutoff veto the padded formats when the
	// wasted storage exceeds the cutoff multiple of nnz.
	DIAFillCutoff = 20.0
	ELLFillCutoff = 12.0
)

// Problem is one SpMV instance: a CSR matrix and an input vector, with the
// derived formats and features cached so repeated variant executions (as in
// exhaustive search) do not pay conversion repeatedly.
type Problem struct {
	A *CSR
	X []float64

	feats    *Features
	reuse    float64
	haveDIA  bool
	dia      *DIA
	diaErr   error
	haveELL  bool
	ell      *ELL
	ellErr   error
	haveReus bool
}

// NewProblem validates dimensions and wraps the matrix/vector pair.
func NewProblem(a *CSR, x []float64) (*Problem, error) {
	if a == nil {
		return nil, errors.New("sparse: nil matrix")
	}
	if len(x) != a.Cols {
		return nil, fmt.Errorf("sparse: x has %d entries, matrix has %d columns", len(x), a.Cols)
	}
	return &Problem{A: a, X: x}, nil
}

// Features returns the cached selection features.
func (p *Problem) Features() Features {
	if p.feats == nil {
		f := ComputeFeatures(p.A)
		p.feats = &f
	}
	return *p.feats
}

// Reuse returns the cached x-vector reuse factor.
func (p *Problem) Reuse() float64 {
	if !p.haveReus {
		p.reuse = XReuse(p.A)
		p.haveReus = true
	}
	return p.reuse
}

// DIA returns the cached DIA conversion (or its failure).
func (p *Problem) DIA() (*DIA, error) {
	if !p.haveDIA {
		p.dia, p.diaErr = p.A.ToDIA(MaxDIADiagonals)
		p.haveDIA = true
	}
	return p.dia, p.diaErr
}

// ELL returns the cached ELL conversion (or its failure).
func (p *Problem) ELL() (*ELL, error) {
	if !p.haveELL {
		p.ell, p.ellErr = p.A.ToELL(MaxELLWidth)
		p.haveELL = true
	}
	return p.ell, p.ellErr
}

// Result is a variant execution: the computed product and the simulated GPU
// time. Variants return the time as their optimization value, matching the
// paper's convention that operator() returns a double-precision cost.
type Result struct {
	Y       []float64
	Seconds float64
}

// Variant is one SpMV code variant: a runner plus an optional constraint
// (false vetoes the variant for this input).
type Variant struct {
	Name       string
	Run        func(p *Problem, dev *gpusim.Device) (Result, error)
	Constraint func(p *Problem) bool
}

// Variants returns the paper's six SpMV code variants in a fixed order:
// CSR-Vec, DIA, ELL, CSR-Tx, DIA-Tx, ELL-Tx.
func Variants() []Variant {
	diaOK := func(p *Problem) bool {
		if f := p.Features(); f.DIAFill > DIAFillCutoff {
			return false
		}
		_, err := p.DIA()
		return err == nil
	}
	ellOK := func(p *Problem) bool {
		if f := p.Features(); f.ELLFill > ELLFillCutoff {
			return false
		}
		_, err := p.ELL()
		return err == nil
	}
	return []Variant{
		{Name: "CSR-Vec", Run: CSRVec},
		{Name: "DIA", Run: DIAKernel, Constraint: diaOK},
		{Name: "ELL", Run: ELLKernel, Constraint: ellOK},
		{Name: "CSR-Tx", Run: CSRVecTx},
		{Name: "DIA-Tx", Run: DIATx, Constraint: diaOK},
		{Name: "ELL-Tx", Run: ELLTx, Constraint: ellOK},
	}
}

// VariantNames returns the names in Variants order.
func VariantNames() []string {
	vs := Variants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

// ChargeCSRSpMV charges one CSR-vector SpMV (including the x gather through
// the global path) to an existing kernel; iterative solvers use it to account
// their per-iteration matrix-vector cost.
func ChargeCSRSpMV(k *gpusim.Kernel, m *CSR, reuse float64) {
	p := &Problem{A: m, reuse: reuse, haveReus: true}
	csrTraffic(p, k)
	k.Gather(m.NNZ(), 8, float64(8*m.Cols), reuse)
}

// csrTraffic charges the CSR index/value streams shared by both CSR variants
// and returns the active-lane fraction of the warp-per-row decomposition.
func csrTraffic(p *Problem, k *gpusim.Kernel) {
	m := p.A
	k.GlobalRead(float64(8 * m.Rows))        // row pointers (two per row)
	k.GlobalRead(float64(4 * m.NNZ()))       // column indices
	k.GlobalRead(float64(8 * m.NNZ()))       // values
	k.GlobalWrite(float64(8 * m.Rows))       // y
	k.ComputeDP(float64(2*m.NNZ() + m.Rows)) // FMA per entry + reduction tail

	// Warp-per-row: lanes beyond the row length idle in every instruction,
	// so rows shorter than the warp waste the whole pipeline, not just ALU
	// slots. The floor keeps the penalty at the ~4x that csr_vector shows
	// against csr_scalar on one-entry rows.
	padded := 0
	maxLen, sum := 0, 0
	for i := 0; i < m.Rows; i++ {
		l := m.RowLen(i)
		padded += (l + 31) / 32 * 32
		if l == 0 {
			padded += 32
		}
		if l > maxLen {
			maxLen = l
		}
		sum += l
	}
	if padded > 0 {
		eff := float64(sum) / float64(padded)
		if eff < 0.25 {
			eff = 0.25
		}
		k.Throughput(eff)
	}
	if m.Rows > 0 && sum > 0 {
		k.Imbalance(float64(maxLen), float64(sum)/float64(m.Rows))
	}
}

// CSRVec is the CUSP csr_vector kernel: one warp per row, x gathered through
// the plain global-memory path.
func CSRVec(p *Problem, dev *gpusim.Device) (Result, error) {
	run := gpusim.NewRun(dev)
	k := run.Launch("spmv_csr_vector", p.A.Rows*dev.WarpSize)
	csrTraffic(p, k)
	k.Gather(p.A.NNZ(), 8, float64(8*p.A.Cols), p.Reuse())
	run.Done(k)

	y := make([]float64, p.A.Rows)
	p.A.MulVec(p.X, y)
	return Result{Y: y, Seconds: run.Seconds()}, nil
}

// CSRVecTx is CSRVec with the input vector bound to the texture cache.
func CSRVecTx(p *Problem, dev *gpusim.Device) (Result, error) {
	run := gpusim.NewRun(dev)
	k := run.Launch("spmv_csr_vector_tex", p.A.Rows*dev.WarpSize)
	csrTraffic(p, k)
	k.TextureGather(p.A.NNZ(), 8, float64(8*p.A.Cols), p.Reuse())
	run.Done(k)

	y := make([]float64, p.A.Rows)
	p.A.MulVec(p.X, y)
	return Result{Y: y, Seconds: run.Seconds()}, nil
}

// diaTraffic charges the diagonal-format streams shared by both DIA variants.
func diaTraffic(d *DIA, k *gpusim.Kernel) {
	cells := d.Rows * d.NDiags()
	k.GlobalRead(float64(8 * cells))      // diagonal data (padded)
	k.GlobalRead(float64(4 * d.NDiags())) // offsets
	k.GlobalWrite(float64(8 * d.Rows))    // y
	k.ComputeDP(float64(2 * cells))       // FMA per stored cell
	k.Latency(float64(d.NDiags()) * 2)    // per-diagonal loop overhead
	_ = cells
}

// DIAKernel is the CUSP dia kernel: one thread per row marching over the
// stored diagonals; x is read with unit stride per diagonal (coalesced).
func DIAKernel(p *Problem, dev *gpusim.Device) (Result, error) {
	d, err := p.DIA()
	if err != nil {
		return Result{}, err
	}
	run := gpusim.NewRun(dev)
	k := run.Launch("spmv_dia", d.Rows)
	diaTraffic(d, k)
	k.GlobalRead(float64(8 * d.Rows * d.NDiags())) // x, coalesced per diagonal
	run.Done(k)

	y := make([]float64, d.Rows)
	d.MulVec(p.X, y)
	return Result{Y: y, Seconds: run.Seconds()}, nil
}

// DIATx is DIAKernel with x read through the texture cache; sequential
// texture fetches have near-perfect spatial locality, modelled as a high
// effective reuse (4 elements per cache line times the per-element reuse
// across diagonals).
func DIATx(p *Problem, dev *gpusim.Device) (Result, error) {
	d, err := p.DIA()
	if err != nil {
		return Result{}, err
	}
	run := gpusim.NewRun(dev)
	k := run.Launch("spmv_dia_tex", d.Rows)
	diaTraffic(d, k)
	k.TextureGather(d.Rows*d.NDiags(), 8, float64(8*d.Cols), 4*math.Max(float64(d.NDiags()), 1))
	run.Done(k)

	y := make([]float64, d.Rows)
	d.MulVec(p.X, y)
	return Result{Y: y, Seconds: run.Seconds()}, nil
}

// ellTraffic charges the ELL streams shared by both ELL variants.
func ellTraffic(p *Problem, e *ELL, k *gpusim.Kernel) {
	cells := e.Rows * e.MaxNZ
	k.GlobalRead(float64(4 * cells)) // column indices (padded, coalesced)
	k.GlobalRead(float64(8 * cells)) // values (padded, coalesced)
	k.GlobalWrite(float64(8 * e.Rows))
	k.ComputeDP(float64(2 * cells))
	// Padding slots branch away: active fraction is nnz over padded cells.
	if cells > 0 {
		k.Divergence(float64(p.A.NNZ()) / float64(cells))
	}
}

// ELLKernel is the CUSP ell kernel: one thread per row over the padded
// column-major arrays, x gathered through the global path.
func ELLKernel(p *Problem, dev *gpusim.Device) (Result, error) {
	e, err := p.ELL()
	if err != nil {
		return Result{}, err
	}
	run := gpusim.NewRun(dev)
	k := run.Launch("spmv_ell", e.Rows)
	ellTraffic(p, e, k)
	k.Gather(p.A.NNZ(), 8, float64(8*p.A.Cols), p.Reuse())
	run.Done(k)

	y := make([]float64, e.Rows)
	e.MulVec(p.X, y)
	return Result{Y: y, Seconds: run.Seconds()}, nil
}

// ELLTx is ELLKernel with texture-cached x gathers.
func ELLTx(p *Problem, dev *gpusim.Device) (Result, error) {
	e, err := p.ELL()
	if err != nil {
		return Result{}, err
	}
	run := gpusim.NewRun(dev)
	k := run.Launch("spmv_ell_tex", e.Rows)
	ellTraffic(p, e, k)
	k.TextureGather(p.A.NNZ(), 8, float64(8*p.A.Cols), p.Reuse())
	run.Done(k)

	y := make([]float64, e.Rows)
	e.MulVec(p.X, y)
	return Result{Y: y, Seconds: run.Seconds()}, nil
}
