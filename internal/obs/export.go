// Telemetry export: a small metrics registry with Prometheus text exposition
// and an expvar-compatible JSON view, served over an opt-in HTTP endpoint.
//
// The registry is pull-based: sources register Collector closures that emit
// Metric values at scrape time, so the hot path pays nothing for telemetry —
// all aggregation work happens when a scraper asks. Metric naming is linted
// at exposition time: every metric must carry the "nitro_" prefix (enforced,
// not advised), names and label sets are validated against the Prometheus
// data model, and output is sorted so scrapes of an idle process are
// byte-identical.
package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MetricKind is the Prometheus metric type.
type MetricKind string

const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// Label is one metric label; ordered slices keep exposition deterministic.
type Label struct {
	Key   string
	Value string
}

// Bucket is one cumulative histogram bucket (observations <= LE).
type Bucket struct {
	LE    float64
	Count int64
}

// Metric is one exported sample (or, for KindHistogram, one bucketed series).
type Metric struct {
	Name   string
	Help   string
	Kind   MetricKind
	Labels []Label
	// Value carries the sample for counters and gauges.
	Value float64
	// Buckets / Count / Sum carry the series for histograms.
	Buckets []Bucket
	Count   int64
	Sum     float64
}

// Counter builds a counter Metric (labels optional).
func Counter(name, help string, value float64, labels ...Label) Metric {
	return Metric{Name: name, Help: help, Kind: KindCounter, Value: value, Labels: labels}
}

// Gauge builds a gauge Metric (labels optional).
func Gauge(name, help string, value float64, labels ...Label) Metric {
	return Metric{Name: name, Help: help, Kind: KindGauge, Value: value, Labels: labels}
}

// HistogramMetric exports a live Histogram as a (optionally labeled)
// Prometheus histogram Metric with cumulative buckets at bounds — the
// bridge between the lock-free recording side and the exposition format.
func HistogramMetric(name, help string, h *Histogram, bounds []float64, labels ...Label) Metric {
	counts, count, sum := h.Cumulative(bounds)
	buckets := make([]Bucket, len(bounds))
	for i, le := range bounds {
		buckets[i] = Bucket{LE: le, Count: counts[i]}
	}
	return Metric{Name: name, Help: help, Kind: KindHistogram, Labels: labels,
		Buckets: buckets, Count: count, Sum: sum}
}

// Collector emits metrics at scrape time.
type Collector func(emit func(Metric))

// Registry aggregates collectors and debug variables into one telemetry
// surface: Prometheus text at /metrics, a JSON dump at /vars (also published
// as the process-wide "nitro" expvar), and /healthz. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	vars       []debugVar
}

type debugVar struct {
	name string
	fn   func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a metrics collector.
func (r *Registry) Register(c Collector) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// RegisterVar adds a named debug variable to the JSON view (/vars and the
// "nitro" expvar). fn is called at dump time and must return a
// JSON-marshalable value.
func (r *Registry) RegisterVar(name string, fn func() any) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vars = append(r.vars, debugVar{name: name, fn: fn})
}

// gather runs every collector and returns the metrics.
func (r *Registry) gather() []Metric {
	r.mu.Lock()
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	var out []Metric
	for _, c := range collectors {
		c(func(m Metric) { out = append(out, m) })
	}
	return out
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// validateMetric enforces the naming contract: Prometheus-legal names and
// label keys, and the repo-wide "nitro_" prefix on every exported metric.
func validateMetric(m Metric) error {
	if !strings.HasPrefix(m.Name, "nitro_") {
		return fmt.Errorf("obs: metric %q violates the nitro_ prefix convention", m.Name)
	}
	if !metricNameRe.MatchString(m.Name) {
		return fmt.Errorf("obs: metric %q is not a legal Prometheus name", m.Name)
	}
	for _, l := range m.Labels {
		if !labelNameRe.MatchString(l.Key) {
			return fmt.Errorf("obs: metric %q has illegal label name %q", m.Name, l.Key)
		}
	}
	switch m.Kind {
	case KindCounter, KindGauge, KindHistogram:
	default:
		return fmt.Errorf("obs: metric %q has unknown kind %q", m.Name, m.Kind)
	}
	return nil
}

// labelString renders {k="v",...} (empty string for no labels), with one
// extra label appended when extra is non-nil.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra.Key, extra.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// fmtValue renders a sample value the way Prometheus expects.
func fmtValue(v float64) string { return strconv64(v) }

func strconv64(v float64) string {
	s := fmt.Sprintf("%g", v)
	if s == "+Inf" || s == "-Inf" {
		return s
	}
	return s
}

// WritePrometheus writes the registry's metrics in Prometheus text
// exposition format (version 0.0.4). Metrics are grouped by name with one
// HELP/TYPE header each and sorted by (name, labels), so repeated scrapes of
// an unchanged registry are byte-identical. A metric violating the naming
// contract fails the whole exposition — the lint is load-bearing, not
// advisory.
func (r *Registry) WritePrometheus(w *strings.Builder) error {
	metrics := r.gather()
	for _, m := range metrics {
		if err := validateMetric(m); err != nil {
			return err
		}
	}
	byName := map[string][]Metric{}
	var names []string
	for _, m := range metrics {
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		if group[0].Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, group[0].Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, group[0].Kind)
		lines := make([]string, 0, len(group))
		for _, m := range group {
			switch m.Kind {
			case KindHistogram:
				var cum string
				for _, b := range m.Buckets {
					le := Label{"le", fmtValue(b.LE)}
					cum = fmt.Sprintf("%s_bucket%s %d\n", name, labelString(m.Labels, &le), b.Count)
					lines = append(lines, cum)
				}
				inf := Label{"le", "+Inf"}
				lines = append(lines,
					fmt.Sprintf("%s_bucket%s %d\n", name, labelString(m.Labels, &inf), m.Count),
					fmt.Sprintf("%s_sum%s %s\n", name, labelString(m.Labels, nil), fmtValue(m.Sum)),
					fmt.Sprintf("%s_count%s %d\n", name, labelString(m.Labels, nil), m.Count))
			default:
				lines = append(lines, fmt.Sprintf("%s%s %s\n", name, labelString(m.Labels, nil), fmtValue(m.Value)))
			}
		}
		sort.Strings(lines)
		for _, l := range lines {
			w.WriteString(l)
		}
	}
	return nil
}

// PrometheusText returns the full exposition (or an error when a collector
// emitted an illegal metric).
func (r *Registry) PrometheusText() (string, error) {
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// varsSnapshot builds the JSON debug view: every registered variable plus a
// flat dump of the metric samples.
func (r *Registry) varsSnapshot() map[string]any {
	r.mu.Lock()
	vars := make([]debugVar, len(r.vars))
	copy(vars, r.vars)
	r.mu.Unlock()
	out := map[string]any{}
	for _, v := range vars {
		out[v.name] = v.fn()
	}
	samples := map[string]any{}
	for _, m := range r.gather() {
		key := m.Name + labelString(m.Labels, nil)
		if m.Kind == KindHistogram {
			samples[key] = map[string]any{"count": m.Count, "sum": m.Sum}
		} else {
			samples[key] = m.Value
		}
	}
	out["metrics"] = samples
	return out
}

// VarsJSON returns the JSON debug view (deterministic: object keys sort).
func (r *Registry) VarsJSON() ([]byte, error) {
	return json.MarshalIndent(r.varsSnapshot(), "", "  ")
}

// liveRegistries tracks every registry that has built an HTTP handler, so the
// process-wide "nitro" expvar (published once) can enumerate them all.
var (
	liveRegistries sync.Map // *Registry -> struct{}
	publishOnce    sync.Once
)

func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("nitro", expvar.Func(func() any {
			all := []map[string]any{}
			liveRegistries.Range(func(k, _ any) bool {
				all = append(all, k.(*Registry).varsSnapshot())
				return true
			})
			if len(all) == 1 {
				return all[0]
			}
			return all
		}))
	})
}

// Handler returns the telemetry endpoint:
//
//	/metrics     Prometheus text exposition
//	/vars        this registry's JSON debug view
//	/debug/vars  the standard expvar page (includes the "nitro" var)
//	/healthz     "ok"
//
// Building a handler registers the registry with the process-wide "nitro"
// expvar.
func (r *Registry) Handler() http.Handler {
	liveRegistries.Store(r, struct{}{})
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		text, err := r.PrometheusText()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, text)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, req *http.Request) {
		data, err := r.VarsJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(data)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// ServerConfig hardens an HTTP listener against slow or stuck clients. The
// zero value of any field selects the documented default; a negative value
// disables that timeout explicitly. Without these limits a single client
// that dribbles its request header (Slowloris) holds a connection — and its
// goroutine — forever, which matters as soon as the listener faces a
// network instead of localhost.
type ServerConfig struct {
	// ReadHeaderTimeout bounds how long a client may take to send the full
	// request header (default 5s).
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the entire request including the body
	// (default 15s).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response (default 30s — a scrape of a
	// large exposition to a slow collector still fits comfortably).
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit idle
	// between requests (default 2m).
	IdleTimeout time.Duration
}

// DefaultServerConfig returns the hardened defaults.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// withDefaults resolves the zero/negative convention: zero fields take the
// defaults, negative fields disable the timeout (http.Server treats 0 as
// "no timeout").
func (c ServerConfig) withDefaults() ServerConfig {
	d := DefaultServerConfig()
	resolve := func(v, def time.Duration) time.Duration {
		if v == 0 {
			return def
		}
		if v < 0 {
			return 0
		}
		return v
	}
	c.ReadHeaderTimeout = resolve(c.ReadHeaderTimeout, d.ReadHeaderTimeout)
	c.ReadTimeout = resolve(c.ReadTimeout, d.ReadTimeout)
	c.WriteTimeout = resolve(c.WriteTimeout, d.WriteTimeout)
	c.IdleTimeout = resolve(c.IdleTimeout, d.IdleTimeout)
	return c
}

// Server is a running telemetry endpoint.
type Server struct {
	listener net.Listener
	srv      *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close shuts the endpoint down abruptly: in-flight requests are aborted
// mid-body. Prefer Shutdown for anything a scraper might be reading.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains the endpoint gracefully: the listener closes immediately
// (no new connections), in-flight requests run to completion, and idle
// keep-alive connections are closed. When ctx expires first the remaining
// connections are aborted (Close) and ctx's error is returned — a stuck
// client cannot wedge a teardown.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close() //nolint:errcheck // best-effort abort of stragglers
	}
	return err
}

// ServeHandler starts a hardened HTTP server for h on addr (":0" picks a
// free port) and serves it on a background goroutine until Close/Shutdown.
// It is the one listener-construction path in the repo: the telemetry
// endpoint and the tuning daemon both front their handlers with it, so the
// slow-client limits apply everywhere by construction.
func ServeHandler(addr string, h http.Handler, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	cfg = cfg.withDefaults()
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       cfg.IdleTimeout,
	}
	go srv.Serve(ln) //nolint:errcheck // Close/Shutdown surface as ErrServerClosed
	return &Server{listener: ln, srv: srv}, nil
}

// Serve starts the telemetry endpoint on addr (":0" picks a free port) with
// the default hardening limits and serves it on a background goroutine until
// Close/Shutdown.
func (r *Registry) Serve(addr string) (*Server, error) {
	return r.ServeConfig(addr, ServerConfig{})
}

// ServeConfig is Serve with explicit listener limits.
func (r *Registry) ServeConfig(addr string, cfg ServerConfig) (*Server, error) {
	return ServeHandler(addr, r.Handler(), cfg)
}

// ValidatePrometheusText lints a scraped exposition: every sample line must
// parse, every metric must be nitro_-prefixed and covered by a preceding
// TYPE header. This is the checker `make metrics-smoke` runs against a live
// scrape.
func ValidatePrometheusText(text string) error {
	typed := map[string]string{}
	sawSample := false
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("obs: line %d: malformed TYPE comment %q", ln+1, line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sawSample = true
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("obs: line %d: illegal metric name %q", ln+1, name)
		}
		if !strings.HasPrefix(name, "nitro_") {
			return fmt.Errorf("obs: line %d: metric %q violates the nitro_ prefix convention", ln+1, name)
		}
		if !sampleTyped(name, typed) {
			return fmt.Errorf("obs: line %d: sample %q has no TYPE header", ln+1, name)
		}
		rest := line[len(name):]
		if strings.HasPrefix(rest, "{") {
			n, err := validateLabelBlock(rest)
			if err != nil {
				return fmt.Errorf("obs: line %d: sample %q: %w", ln+1, name, err)
			}
			rest = rest[n:]
		}
		if !strings.HasPrefix(rest, " ") || strings.TrimSpace(rest) == "" {
			return fmt.Errorf("obs: line %d: sample %q has no value", ln+1, line)
		}
		value := strings.TrimSpace(rest)
		if i := strings.IndexByte(value, ' '); i >= 0 {
			// An optional timestamp may follow the value.
			value = value[:i]
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("obs: line %d: sample %q has unparsable value %q", ln+1, name, value)
		}
	}
	if !sawSample {
		return fmt.Errorf("obs: exposition contains no samples")
	}
	return nil
}

// validateLabelBlock checks a {k="v",...} label block at the start of s
// against the exposition grammar — legal label names, double-quoted values
// with only \\, \" and \n escapes, comma separation, no duplicate keys —
// and returns how many bytes the block spans (including both braces).
func validateLabelBlock(s string) (int, error) {
	i := 1 // past '{'
	seen := map[string]bool{}
	afterComma := false
	for {
		if i < len(s) && s[i] == '}' {
			if afterComma {
				return 0, fmt.Errorf("trailing comma in label block")
			}
			return i + 1, nil
		}
		afterComma = false
		start := i
		for i < len(s) && (s[i] == '_' ||
			s[i] >= 'a' && s[i] <= 'z' || s[i] >= 'A' && s[i] <= 'Z' ||
			s[i] >= '0' && s[i] <= '9') {
			i++
		}
		name := s[start:i]
		if !labelNameRe.MatchString(name) {
			return 0, fmt.Errorf("illegal label name %q", name)
		}
		if seen[name] {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		seen[name] = true
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label %q not followed by '='", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %q value is not quoted", name)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) || (s[i] != '\\' && s[i] != '"' && s[i] != 'n') {
					return 0, fmt.Errorf("label %q value has illegal escape", name)
				}
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("label %q value is unterminated", name)
		}
		i++ // closing quote
		switch {
		case i < len(s) && s[i] == ',':
			i++
			afterComma = true
		case i < len(s) && s[i] == '}':
			// loop terminates at the top
		default:
			return 0, fmt.Errorf("label block not closed after %q", name)
		}
	}
}

// sampleTyped reports whether a sample name is covered by a TYPE header: the
// name itself carries one, or the name is a histogram series — exactly one of
// the _bucket/_sum/_count suffixes stripped resolves to a base declared as a
// histogram. Each suffix alternative is resolved independently: stripping
// them sequentially would peel two suffixes off a metric literally named
// e.g. nitro_foo_sum_bucket (base nitro_foo instead of nitro_foo_sum),
// letting an untyped sample pass — or a validly typed one fail — the lint.
func sampleTyped(name string, typed map[string]string) bool {
	if _, ok := typed[name]; ok {
		return true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if typed[base] == string(KindHistogram) {
				return true
			}
		}
	}
	return false
}
