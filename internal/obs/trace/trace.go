// Package trace is the control-plane correlation layer: request-scoped
// trace ids minted at the client, carried on the X-Nitro-Trace-Id header,
// propagated through context.Context on the server, stamped onto slog
// events, journal WAL frames and canary verdicts — so one grep by id
// reconstructs register→tune→stage→reports→promote as a span tree.
//
// The package is stdlib-only and a leaf: internal/server, client and
// autotuner all import it, nothing here imports them. Production ids come
// from crypto/rand; tests seed a deterministic PCG source so double runs
// stay byte-identical.
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
)

// Header is the HTTP header carrying the trace id on requests and echoed
// back on every response.
const Header = "X-Nitro-Trace-Id"

// MaxIDLen bounds accepted trace ids; longer inbound headers are treated
// as absent so a hostile client cannot bloat logs or journal frames.
const MaxIDLen = 64

// Source mints trace ids. The zero value (and a nil *Source) mints
// unpredictable crypto/rand ids; NewSeededSource returns a deterministic
// stream for replayable tests and smoke transcripts.
type Source struct {
	mu  sync.Mutex
	rng *rand.Rand // nil: crypto/rand
}

// NewSource returns a production source backed by crypto/rand.
func NewSource() *Source { return &Source{} }

// NewSeededSource returns a deterministic source: the same seed always
// yields the same id sequence (PCG, no global state).
func NewSeededSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewPCG(uint64(seed), uint64(seed)^0x9e3779b97f4a7c15))}
}

// NewID mints a fresh id of the form "t-" + 16 lowercase hex digits.
// Safe for concurrent use; a nil receiver falls back to crypto/rand.
func (s *Source) NewID() string {
	if s == nil {
		return cryptoID()
	}
	s.mu.Lock()
	rng := s.rng
	if rng == nil {
		s.mu.Unlock()
		return cryptoID()
	}
	v := rng.Uint64()
	s.mu.Unlock()
	return fmt.Sprintf("t-%016x", v)
}

func cryptoID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id is
		// still well-formed if it somehow does.
		return "t-0000000000000000"
	}
	return "t-" + hex.EncodeToString(b[:])
}

// Sanitize validates an externally supplied trace id (an inbound header,
// a replayed journal field). It returns id unchanged when it is non-empty,
// at most MaxIDLen bytes, and contains only [A-Za-z0-9._-]; otherwise ""
// — the caller mints a fresh id instead of propagating hostile bytes into
// logs and WAL frames.
func Sanitize(id string) string {
	if id == "" || len(id) > MaxIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

type ctxKey struct{}

// With returns ctx carrying the trace id. An empty or invalid id returns
// ctx unchanged.
func With(ctx context.Context, id string) context.Context {
	if Sanitize(id) == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// From extracts the trace id carried by ctx, or "" when none is attached.
func From(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
