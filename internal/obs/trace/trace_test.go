package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSeededSourceDeterministic(t *testing.T) {
	a, b := NewSeededSource(42), NewSeededSource(42)
	for i := 0; i < 10; i++ {
		ida, idb := a.NewID(), b.NewID()
		if ida != idb {
			t.Fatalf("seeded sources diverged at %d: %q vs %q", i, ida, idb)
		}
		if Sanitize(ida) != ida {
			t.Fatalf("seeded id %q fails its own sanitizer", ida)
		}
	}
	if NewSeededSource(42).NewID() == NewSeededSource(43).NewID() {
		t.Fatal("different seeds produced the same first id")
	}
}

func TestCryptoSourceUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, src := range []*Source{NewSource(), nil} {
		for i := 0; i < 100; i++ {
			id := src.NewID()
			if !strings.HasPrefix(id, "t-") || len(id) != 18 {
				t.Fatalf("malformed id %q", id)
			}
			if Sanitize(id) != id {
				t.Fatalf("id %q fails sanitizer", id)
			}
			if seen[id] {
				t.Fatalf("duplicate crypto id %q", id)
			}
			seen[id] = true
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"t-0123456789abcdef", "t-0123456789abcdef"},
		{"simple_id.1-2", "simple_id.1-2"},
		{"", ""},
		{"has space", ""},
		{"newline\ninjection", ""},
		{`quote"breaker`, ""},
		{"unicode-héllo", ""},
		{strings.Repeat("a", MaxIDLen), strings.Repeat("a", MaxIDLen)},
		{strings.Repeat("a", MaxIDLen+1), ""},
	}
	for _, c := range cases {
		if got := Sanitize(c.in); got != c.want {
			t.Errorf("Sanitize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != "" {
		t.Fatal("empty context carries an id")
	}
	ctx = With(ctx, "t-abc")
	if got := From(ctx); got != "t-abc" {
		t.Fatalf("From = %q, want t-abc", got)
	}
	// Invalid ids must not attach.
	if got := From(With(context.Background(), "bad id")); got != "" {
		t.Fatalf("invalid id attached: %q", got)
	}
	if From(nil) != "" { //nolint:staticcheck // nil-safety contract
		t.Fatal("nil context should yield empty id")
	}
}

func TestRecorderRingRetainsLastN(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(Event{Component: "test", Name: fmt.Sprintf("e%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap))
	}
	for i, e := range snap {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, wantSeq)
		}
	}
	if r.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", r.Recorded())
	}
}

func TestRecorderConcurrentAndNil(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(Event{Component: "test", Name: "concurrent", Fields: []Field{F("g", fmt.Sprint(g))}})
			}
		}(g)
	}
	wg.Wait()
	if r.Recorded() != 1600 {
		t.Fatalf("Recorded = %d, want 1600", r.Recorded())
	}
	snap := r.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("retained %d, want 64", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatal("snapshot not strictly ordered by seq")
		}
	}

	var nilRec *Recorder
	if nilRec.Record(Event{}) != 0 || nilRec.Snapshot() != nil || nilRec.Recorded() != 0 {
		t.Fatal("nil recorder is not a no-op")
	}
}

func TestDumpJSONDeterministicAndParseable(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Trace: "t-1", Component: "server", Name: "canary.start",
		Fields: []Field{F("fn", "sort"), F("version", "2")}})
	r.Record(Event{Component: "server", Name: "journal.compact"})

	d1, d2 := r.DumpJSON(), r.DumpJSON()
	if !bytes.Equal(d1, d2) {
		t.Fatal("idle double dump differs")
	}
	var doc struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Seq    uint64            `json:"seq"`
			Trace  string            `json:"trace"`
			Event  string            `json:"event"`
			Fields map[string]string `json:"fields"`
		} `json:"events"`
	}
	if err := json.Unmarshal(d1, &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, d1)
	}
	if doc.Recorded != 2 || len(doc.Events) != 2 {
		t.Fatalf("dump = %+v, want 2 events", doc)
	}
	if doc.Events[0].Trace != "t-1" || doc.Events[0].Fields["fn"] != "sort" {
		t.Fatalf("first event mangled: %+v", doc.Events[0])
	}
	if strings.Contains(string(d1), "time") {
		t.Fatal("dump contains a wall-clock field")
	}

	var empty *Recorder
	if err := json.Unmarshal(empty.DumpJSON(), &doc); err != nil {
		t.Fatalf("nil recorder dump invalid: %v", err)
	}
}

func TestLogDeterministicStream(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
		l := NewLog(LogConfig{Writer: &buf, Clock: func() time.Time { return fixed }})
		src := NewSeededSource(7)
		ctx := With(context.Background(), src.NewID())
		l.Event(ctx, "server", "canary.start", F("fn", "sort"), F("version", "2"))
		l.Event(With(context.Background(), src.NewID()), "server", "canary.promote", F("fn", "sort"))
		return buf.String()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("seeded double-run log streams differ:\n%s\nvs\n%s", s1, s2)
	}
	lines := strings.Split(strings.TrimSpace(s1), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 log lines, got %d", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	for _, key := range []string{"trace", "component", "msg", "fn", "version"} {
		if _, ok := rec[key]; !ok {
			t.Fatalf("log line missing %q: %s", key, lines[0])
		}
	}
	if rec["trace"] != NewSeededSource(7).NewID() {
		t.Fatalf("trace id %v does not match seeded source", rec["trace"])
	}
}

func TestLogLevelsAndRecorderFanIn(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(16)
	l := NewLog(LogConfig{Writer: &buf, Recorder: rec,
		Clock: func() time.Time { return time.Unix(0, 0) }})
	ctx := With(context.Background(), "t-fan")
	l.Debug(ctx, "server", "http.request", F("route", "pull"))
	l.Event(ctx, "server", "canary.start")
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("stream has %d lines, want 1 (Debug suppressed at Info level)", got)
	}
	if rec.Recorded() != 2 {
		t.Fatalf("flight ring has %d events, want 2 (all levels)", rec.Recorded())
	}
	if l.Recorder() != rec {
		t.Fatal("Recorder() accessor broken")
	}

	// nil Log must be inert.
	var nl *Log
	nl.Event(ctx, "x", "y")
	nl.Debug(ctx, "x", "y")
	nl.Error(ctx, "x", "y")
	if nl.Recorder() != nil {
		t.Fatal("nil log recorder should be nil")
	}

	// Writer-less Log still feeds the ring.
	rec2 := NewRecorder(4)
	l2 := NewLog(LogConfig{Recorder: rec2})
	l2.Event(nil, "server", "startup") //nolint:staticcheck // nil-ctx contract
	if rec2.Recorded() != 1 {
		t.Fatal("writer-less log dropped the event")
	}
}
