package trace

// Structured control-plane logging on log/slog. Every event carries the
// trace id from its context, a component, a transition name, and ordered
// key/value fields; the JSON stream is one object per line. Two knobs make
// the stream replayable in tests: an injectable clock (a fixed or stepping
// fake makes the "time" attribute deterministic) and the seeded id Source.
// Each event is also fanned into the flight Recorder (when one is
// attached) regardless of the slog level, so /debug/flight retains recent
// Debug-level transitions even when the log stream only emits Info.

import (
	"context"
	"io"
	"log/slog"
	"time"
)

// Clock supplies event timestamps. Inject a fake for byte-identical test
// streams.
type Clock func() time.Time

// LogConfig configures a Log.
type LogConfig struct {
	// Writer receives the JSON event stream, one object per line. nil
	// disables the stream (events still reach the Recorder).
	Writer io.Writer
	// Level is the minimum level written to Writer (default slog.LevelInfo;
	// per-request events are Debug so the default keeps the pull path quiet).
	Level slog.Level
	// Clock stamps events (default time.Now).
	Clock Clock
	// Recorder, when non-nil, retains every event — any level — in the
	// flight ring.
	Recorder *Recorder
}

// Log emits trace-stamped control-plane events. A nil *Log drops
// everything, so call sites never nil-check.
type Log struct {
	h     slog.Handler
	level slog.Level
	clock Clock
	rec   *Recorder
}

// NewLog builds a Log. With a nil Writer and nil Recorder the Log is
// still valid — it just discards events.
func NewLog(cfg LogConfig) *Log {
	l := &Log{level: cfg.Level, clock: cfg.Clock, rec: cfg.Recorder}
	if l.clock == nil {
		l.clock = time.Now
	}
	if cfg.Writer != nil {
		l.h = slog.NewJSONHandler(cfg.Writer, &slog.HandlerOptions{Level: cfg.Level})
	}
	return l
}

// Recorder returns the attached flight ring (nil when none).
func (l *Log) Recorder() *Recorder {
	if l == nil {
		return nil
	}
	return l.rec
}

// Event records an Info-level control-plane transition.
func (l *Log) Event(ctx context.Context, component, name string, fields ...Field) {
	l.emit(ctx, slog.LevelInfo, component, name, fields)
}

// Debug records a high-rate transition (per-request, per-sample): it
// reaches the flight ring always, the stream only at Debug level.
func (l *Log) Debug(ctx context.Context, component, name string, fields ...Field) {
	l.emit(ctx, slog.LevelDebug, component, name, fields)
}

// Error records a failure-path transition.
func (l *Log) Error(ctx context.Context, component, name string, fields ...Field) {
	l.emit(ctx, slog.LevelError, component, name, fields)
}

func (l *Log) emit(ctx context.Context, level slog.Level, component, name string, fields []Field) {
	if l == nil {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	id := From(ctx)
	l.rec.Record(Event{Trace: id, Component: component, Name: name, Fields: fields})
	if l.h == nil || level < l.level {
		return
	}
	r := slog.NewRecord(l.clock(), level, name, 0)
	r.AddAttrs(slog.String("trace", id), slog.String("component", component))
	for _, f := range fields {
		r.AddAttrs(slog.String(f.Key, f.Value))
	}
	_ = l.h.Handle(ctx, r)
}
