package trace

// Flight recorder: a lock-free ring of the last N control-plane events.
// Writers pay one atomic add and one atomic pointer store; there is no
// mutex on the record path, so it is safe to feed from request handlers.
// The dump carries no wall-clock timestamps — events are ordered by a
// monotone sequence number only — so two runs of the same seeded scenario
// produce byte-identical dumps and a double scrape of an idle daemon
// diffs clean.

import (
	"bytes"
	"encoding/json"
	"sort"
	"sync/atomic"
)

// Field is one key/value annotation on an Event. Fields keep declaration
// order in the API but render as a sorted-key JSON object, so dumps are
// deterministic regardless of call-site ordering.
type Field struct {
	Key   string
	Value string
}

// F is shorthand for Field{k, v}.
func F(k, v string) Field { return Field{Key: k, Value: v} }

// Event is one recorded control-plane transition.
type Event struct {
	// Seq is the global record sequence number (1-based), assigned by the
	// Recorder. It is the only ordering; there is deliberately no timestamp.
	Seq uint64 `json:"seq"`
	// Trace is the correlation id of the request or episode that caused the
	// transition ("" when none was attached).
	Trace string `json:"trace,omitempty"`
	// Component names the emitting subsystem ("server", "autotuner",
	// "client", "poller").
	Component string `json:"component"`
	// Name is the transition ("canary.promote", "job.start", ...).
	Name string `json:"event"`
	// Fields carry event-specific annotations.
	Fields []Field `json:"fields,omitempty"`
}

// MarshalJSON renders Fields as a JSON object with sorted keys.
func (e Event) MarshalJSON() ([]byte, error) {
	fields := make(map[string]string, len(e.Fields))
	for _, f := range e.Fields {
		fields[f.Key] = f.Value
	}
	return json.Marshal(struct {
		Seq       uint64            `json:"seq"`
		Trace     string            `json:"trace,omitempty"`
		Component string            `json:"component"`
		Name      string            `json:"event"`
		Fields    map[string]string `json:"fields,omitempty"`
	}{e.Seq, e.Trace, e.Component, e.Name, fields})
}

// DefaultFlightCapacity is the ring size when a caller asks for <= 0.
const DefaultFlightCapacity = 256

// Recorder is the flight ring. A nil *Recorder is a valid no-op sink.
type Recorder struct {
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64
}

// NewRecorder returns a ring holding the last capacity events
// (DefaultFlightCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Recorder{slots: make([]atomic.Pointer[Event], capacity)}
}

// Record appends one event, assigning and returning its sequence number.
// Lock-free; nil receivers drop the event and return 0.
func (r *Recorder) Record(e Event) uint64 {
	if r == nil {
		return 0
	}
	seq := r.seq.Add(1)
	e.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&e)
	return seq
}

// Recorded reports how many events were ever recorded (>= len(Snapshot())).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot returns the retained events ordered by sequence number. Under
// concurrent writes the snapshot is a consistent set of fully written
// events (each slot is an atomic pointer swap), though the newest few may
// be racing in.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	events := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			events = append(events, *p)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	return events
}

// DumpJSON renders the flight dump: a stable JSON document with the
// retained events in sequence order and the total-ever-recorded count.
// No timestamps, so idle double scrapes are byte-identical.
func (r *Recorder) DumpJSON() []byte {
	events := r.Snapshot()
	if events == nil {
		events = []Event{}
	}
	var buf bytes.Buffer
	buf.WriteString("{\n  \"recorded\": ")
	b, _ := json.Marshal(r.Recorded())
	buf.Write(b)
	buf.WriteString(",\n  \"events\": [")
	for i, e := range events {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString("\n    ")
		b, err := json.Marshal(e)
		if err != nil {
			b = []byte(`{"error":"unencodable event"}`)
		}
		buf.Write(b)
	}
	if len(events) > 0 {
		buf.WriteString("\n  ")
	}
	buf.WriteString("]\n}\n")
	return buf.Bytes()
}
