// Package obs is Nitro's observability subsystem: decision traces, latency
// histograms, phase timing and telemetry export for the deployment runtime.
//
// On-line autotuners are only trustworthy when the selection loop is
// continuously monitored (cf. Martinovič et al., "On-line Application
// Autotuning Exploiting Ensemble Models"): a deployed CodeVariant must be
// able to answer "why did call #N dispatch variant X?" and "what is variant
// Y's p99?". This package supplies the building blocks; internal/core wires
// them through every dispatch path and internal/online exports its drift
// gauges through them.
//
// The package is a leaf: it imports only the standard library, so core, ml,
// autotuner and online can all depend on it without cycles. Everything here
// is designed for the hot path of a lock-free runtime:
//
//   - Tracer admission is one atomic counter op (Sampled) or nothing
//     (Always); the un-traced runtime pays exactly one atomic pointer load
//     per call to discover that no tracer is installed.
//   - Histogram.Record is a handful of integer bit operations plus one
//     sharded atomic add — no floating-point log, no locks.
//   - The trace ring buffer stores atomically swapped pointers; readers
//     never block writers.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// TraceMode is the decision-trace policy knob.
type TraceMode int32

const (
	// TraceOff records nothing. The hot path pays one atomic pointer load.
	TraceOff TraceMode = iota
	// TraceSampled records every SamplePeriod-th dispatch (exact counter, so
	// serial replays are deterministic).
	TraceSampled
	// TraceAlways records every dispatch.
	TraceAlways
)

// String implements fmt.Stringer.
func (m TraceMode) String() string {
	switch m {
	case TraceOff:
		return "off"
	case TraceSampled:
		return "sampled"
	case TraceAlways:
		return "always"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// ParseTraceMode parses "off", "sampled" or "always".
func ParseTraceMode(s string) (TraceMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return TraceOff, nil
	case "sampled", "sample":
		return TraceSampled, nil
	case "always", "on", "all":
		return TraceAlways, nil
	default:
		return TraceOff, fmt.Errorf("obs: unknown trace mode %q (want off, sampled or always)", s)
	}
}

// TracePolicy configures a Tracer.
type TracePolicy struct {
	// Mode selects Off / Sampled / Always.
	Mode TraceMode
	// SamplePeriod records 1 of every N admitted dispatches in Sampled mode
	// (default 64). The counter is exact, so a serial replay traces the same
	// calls every run.
	SamplePeriod int
	// Capacity is the trace ring-buffer size (default 256). When full, the
	// oldest record is overwritten.
	Capacity int
}

// normalized fills defaults.
func (p TracePolicy) normalized() TracePolicy {
	if p.SamplePeriod < 1 {
		p.SamplePeriod = 64
	}
	if p.Capacity < 1 {
		p.Capacity = 256
	}
	return p
}

// DecisionTrace is one explained dispatch decision: everything the selection
// engine knew when it chose a variant, plus what actually happened. Slices
// are owned by the trace (copied at capture time); readers may retain them.
type DecisionTrace struct {
	// Seq is the trace's position in this tracer's timeline (1-based).
	Seq int64 `json:"seq"`
	// Function names the tunable function.
	Function string `json:"function"`
	// RawFeatures is the feature vector as evaluated from the input.
	RawFeatures []float64 `json:"raw_features"`
	// ScaledFeatures is the vector after the model's scaler ([-1,1] space);
	// nil when no model (or no scaler) was installed.
	ScaledFeatures []float64 `json:"scaled_features,omitempty"`
	// Classes / Scores are the model's known class labels and per-class
	// decision values (confidences), aligned; nil without a model.
	Classes []int     `json:"classes,omitempty"`
	Scores  []float64 `json:"scores,omitempty"`
	// PairDecisions holds the raw one-vs-one SVM decision values (pair order),
	// when the classifier is an SVM.
	PairDecisions []float64 `json:"pair_decisions,omitempty"`
	// Ranked is the model's full preference order (best first) — the failure
	// fallback chain dispatch would walk.
	Ranked []int `json:"ranked,omitempty"`
	// Predicted is the model's raw class prediction (-1 without a model).
	Predicted int `json:"predicted"`
	// Tier names the dispatch tier that produced Predicted — "memo",
	// "compiled" or "exact" — empty when no model participated (or the trace
	// predates tiered dispatch).
	Tier string `json:"tier,omitempty"`
	// ModelVersion is the installed model's stamped generation (0 unstamped
	// or uninstalled).
	ModelVersion int `json:"model_version"`
	// Vetoed lists variants whose constraints rejected this input.
	Vetoed []string `json:"vetoed,omitempty"`
	// Quarantined lists variants excluded by an open circuit breaker at
	// selection time.
	Quarantined []string `json:"quarantined,omitempty"`
	// FellBack reports a selection-time fallback (constraint veto, quarantine
	// or missing model); FallbackHops counts failure-driven fallback attempts
	// after the primary pick failed (panic / Abort / timeout).
	FellBack     bool `json:"fell_back"`
	FallbackHops int  `json:"fallback_hops"`
	// ChosenIdx / Chosen identify the variant that finally executed
	// (-1 / "" when the dispatch errored).
	ChosenIdx int    `json:"chosen_idx"`
	Chosen    string `json:"chosen,omitempty"`
	// Value is the executed variant's optimization value (by convention,
	// seconds).
	Value float64 `json:"value"`
	// Err is the dispatch error, when it failed ("" on success).
	Err string `json:"err,omitempty"`
	// Start / WallNanos record when the dispatch started and how long the
	// whole dispatch (selection + execution + fallbacks) took. Excluded from
	// String so serial replays print byte-identical timelines.
	Start     time.Time `json:"start"`
	WallNanos int64     `json:"wall_nanos"`
}

// String renders one deterministic timeline line: every field that is a pure
// function of the call (and the seeded replay) appears; wall-clock fields do
// not, so two replays of the same stream print byte-identical traces.
func (t DecisionTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[trace %06d] %s", t.Seq, t.Function)
	if t.ModelVersion > 0 {
		fmt.Fprintf(&b, " v%d", t.ModelVersion)
	}
	fmt.Fprintf(&b, " features=%s", floats(t.RawFeatures))
	if t.Scores != nil {
		fmt.Fprintf(&b, " scores=%s ranked=%v", floats(t.Scores), t.Ranked)
	}
	fmt.Fprintf(&b, " predicted=%d", t.Predicted)
	if t.Tier != "" {
		fmt.Fprintf(&b, " tier=%s", t.Tier)
	}
	if len(t.Vetoed) > 0 {
		fmt.Fprintf(&b, " vetoed=%v", t.Vetoed)
	}
	if len(t.Quarantined) > 0 {
		fmt.Fprintf(&b, " quarantined=%v", t.Quarantined)
	}
	if t.Err != "" {
		fmt.Fprintf(&b, " error=%q", t.Err)
		return b.String()
	}
	fmt.Fprintf(&b, " chosen=%s(%d)", t.Chosen, t.ChosenIdx)
	if t.FellBack {
		b.WriteString(" fellback")
	}
	if t.FallbackHops > 0 {
		fmt.Fprintf(&b, " hops=%d", t.FallbackHops)
	}
	fmt.Fprintf(&b, " value=%.6g", t.Value)
	return b.String()
}

// floats renders a float slice compactly and deterministically.
func floats(v []float64) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.4g", x)
	}
	b.WriteByte(']')
	return b.String()
}

// TraceSink receives every emitted DecisionTrace synchronously on the
// dispatching goroutine; implementations must be safe for concurrent calls
// and should return quickly.
type TraceSink func(DecisionTrace)

// Tracer is a sampled, lock-free decision-trace collector: an admission
// policy plus a ring buffer of recent traces and an optional sink. One Tracer
// serves one tunable function; all methods are safe for concurrent use.
type Tracer struct {
	pol TracePolicy
	// admits counts admission attempts in Sampled mode (exact 1-in-N).
	admits atomic.Int64
	// seq numbers emitted traces (1-based).
	seq atomic.Int64
	// ring holds the last Capacity traces; slot = (Seq-1) % Capacity.
	ring []atomic.Pointer[DecisionTrace]
	sink atomic.Pointer[TraceSink]
}

// NewTracer builds a tracer with the (normalized) policy.
func NewTracer(pol TracePolicy) *Tracer {
	pol = pol.normalized()
	return &Tracer{pol: pol, ring: make([]atomic.Pointer[DecisionTrace], pol.Capacity)}
}

// Mode returns the tracer's mode.
func (t *Tracer) Mode() TraceMode { return t.pol.Mode }

// Policy returns the tracer's normalized policy.
func (t *Tracer) Policy() TracePolicy { return t.pol }

// SetSink installs (or with nil removes) the synchronous trace sink.
func (t *Tracer) SetSink(s TraceSink) {
	if s == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&s)
}

// Admit reports whether the next dispatch should be traced. Off admits
// nothing; Always everything; Sampled exactly every SamplePeriod-th call
// (counter-exact, so serial replays admit the same calls every run).
func (t *Tracer) Admit() bool {
	switch t.pol.Mode {
	case TraceAlways:
		return true
	case TraceSampled:
		return (t.admits.Add(1)-1)%int64(t.pol.SamplePeriod) == 0
	default:
		return false
	}
}

// Emit records one trace: it assigns the sequence number, stores the record
// in the ring (overwriting the oldest when full) and forwards it to the sink.
func (t *Tracer) Emit(tr DecisionTrace) {
	tr.Seq = t.seq.Add(1)
	t.ring[(tr.Seq-1)%int64(len(t.ring))].Store(&tr)
	if sp := t.sink.Load(); sp != nil {
		(*sp)(tr)
	}
}

// Count returns the number of traces emitted so far.
func (t *Tracer) Count() int64 { return t.seq.Load() }

// Recent returns up to n of the most recent traces in chronological order.
// Taken under concurrent traffic the snapshot is consistent per slot but may
// interleave with in-flight emits.
func (t *Tracer) Recent(n int) []DecisionTrace {
	total := t.seq.Load()
	if int64(n) > total {
		n = int(total)
	}
	if n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]DecisionTrace, 0, n)
	for s := total - int64(n) + 1; s <= total; s++ {
		if p := t.ring[(s-1)%int64(len(t.ring))].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Collector exports the tracer's own meta-metrics (trace volume and mode).
func (t *Tracer) Collector(function string) Collector {
	return func(emit func(Metric)) {
		labels := []Label{{"function", function}}
		emit(Metric{Name: "nitro_traces_recorded_total", Help: "Decision traces recorded.",
			Kind: KindCounter, Labels: labels, Value: float64(t.Count())})
		emit(Metric{Name: "nitro_trace_mode", Help: "Trace mode (0=off,1=sampled,2=always).",
			Kind: KindGauge, Labels: labels, Value: float64(t.pol.Mode)})
	}
}

// MarshalJSON gives Tracer a stable JSON form (its policy plus counters), so
// debug dumps can include tracers directly.
func (t *Tracer) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Mode         string `json:"mode"`
		SamplePeriod int    `json:"sample_period"`
		Capacity     int    `json:"capacity"`
		Recorded     int64  `json:"recorded"`
	}{t.pol.Mode.String(), t.pol.SamplePeriod, t.pol.Capacity, t.Count()})
}
