// Phase timing: coarse progress instrumentation for the offline tuning
// pipeline (corpus generation, exhaustive-search labelling, grid search).
// A PhaseTracker is optional everywhere it is accepted — the nil tracker is
// a valid no-op — so library code can instrument unconditionally and leave
// the decision to the caller.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase is one named timed span (accumulated over possibly many Start/stop
// pairs).
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration"`
	Count    int           `json:"count"`
}

// PhaseTracker accumulates named phase durations. Safe for concurrent use;
// the nil *PhaseTracker is a valid no-op tracker.
type PhaseTracker struct {
	mu     sync.Mutex
	order  []string
	phases map[string]*Phase
	clock  func() time.Time // test seam; nil = time.Now
}

// NewPhaseTracker returns an empty tracker.
func NewPhaseTracker() *PhaseTracker {
	return &PhaseTracker{phases: map[string]*Phase{}}
}

func (p *PhaseTracker) now() time.Time {
	if p.clock != nil {
		return p.clock()
	}
	return time.Now()
}

// Start begins timing the named phase and returns the stop function. The nil
// tracker returns a no-op stop.
func (p *PhaseTracker) Start(name string) func() {
	if p == nil {
		return func() {}
	}
	start := p.now()
	return func() { p.Add(name, p.now().Sub(start)) }
}

// Add accumulates one span into the named phase. No-op on the nil tracker.
func (p *PhaseTracker) Add(name string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ph, ok := p.phases[name]
	if !ok {
		ph = &Phase{Name: name}
		p.phases[name] = ph
		p.order = append(p.order, name)
	}
	ph.Duration += d
	ph.Count++
}

// Phases returns the accumulated phases in first-seen order. Nil tracker
// returns nil.
func (p *PhaseTracker) Phases() []Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Phase, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, *p.phases[name])
	}
	return out
}

// String renders "phase timings: a=1.2s b=340ms (total 1.54s)" in first-seen
// order; "phase timings: none" when empty or nil.
func (p *PhaseTracker) String() string {
	phases := p.Phases()
	if len(phases) == 0 {
		return "phase timings: none"
	}
	var b strings.Builder
	b.WriteString("phase timings:")
	var total time.Duration
	for _, ph := range phases {
		fmt.Fprintf(&b, " %s=%s", ph.Name, ph.Duration.Round(time.Microsecond))
		total += ph.Duration
	}
	fmt.Fprintf(&b, " (total %s)", total.Round(time.Microsecond))
	return b.String()
}

// Collector exports each phase as a nitro_tuner_phase_seconds gauge.
func (p *PhaseTracker) Collector() Collector {
	return func(emit func(Metric)) {
		phases := p.Phases()
		sort.Slice(phases, func(i, j int) bool { return phases[i].Name < phases[j].Name })
		for _, ph := range phases {
			emit(Metric{
				Name:   "nitro_tuner_phase_seconds",
				Help:   "Accumulated wall time per offline-tuning phase.",
				Kind:   KindGauge,
				Labels: []Label{{"phase", ph.Name}},
				Value:  ph.Duration.Seconds(),
			})
		}
	}
}
