package obs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func staticCollector(ms ...Metric) Collector {
	return func(emit func(Metric)) {
		for _, m := range ms {
			emit(m)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Register(staticCollector(
		Metric{Name: "nitro_calls_total", Help: "Calls.", Kind: KindCounter,
			Labels: []Label{{"function", "b"}}, Value: 2},
		Metric{Name: "nitro_calls_total", Help: "Calls.", Kind: KindCounter,
			Labels: []Label{{"function", "a"}}, Value: 1},
		Metric{Name: "nitro_adapt_state", Help: "State.", Kind: KindGauge, Value: 0},
	))
	a, err := r.PrometheusText()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.PrometheusText()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two scrapes differ:\n%s\n---\n%s", a, b)
	}
	want := `# HELP nitro_adapt_state State.
# TYPE nitro_adapt_state gauge
nitro_adapt_state 0
# HELP nitro_calls_total Calls.
# TYPE nitro_calls_total counter
nitro_calls_total{function="a"} 1
nitro_calls_total{function="b"} 2
`
	if a != want {
		t.Fatalf("exposition =\n%s\nwant\n%s", a, want)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	r.Register(staticCollector(Metric{
		Name: "nitro_call_seconds", Help: "Latency.", Kind: KindHistogram,
		Labels:  []Label{{"variant", "dia"}},
		Buckets: []Bucket{{LE: 0.001, Count: 5}, {LE: 0.01, Count: 9}},
		Count:   10, Sum: 0.042,
	}))
	text, err := r.PrometheusText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE nitro_call_seconds histogram",
		`nitro_call_seconds_bucket{variant="dia",le="0.001"} 5`,
		`nitro_call_seconds_bucket{variant="dia",le="0.01"} 9`,
		`nitro_call_seconds_bucket{variant="dia",le="+Inf"} 10`,
		`nitro_call_seconds_sum{variant="dia"} 0.042`,
		`nitro_call_seconds_count{variant="dia"} 10`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := ValidatePrometheusText(text); err != nil {
		t.Fatalf("histogram exposition fails its own lint: %v", err)
	}
}

func TestPrefixLintIsLoadBearing(t *testing.T) {
	r := NewRegistry()
	r.Register(staticCollector(Metric{Name: "rogue_total", Kind: KindCounter}))
	if _, err := r.PrometheusText(); err == nil || !strings.Contains(err.Error(), "nitro_ prefix") {
		t.Fatalf("un-prefixed metric did not fail exposition: %v", err)
	}
}

func TestValidateMetricRejections(t *testing.T) {
	cases := []Metric{
		{Name: "nitro_bad name", Kind: KindGauge},
		{Name: "nitro_ok", Kind: KindGauge, Labels: []Label{{"bad-key", "v"}}},
		{Name: "nitro_ok", Kind: MetricKind("summary")},
	}
	for _, m := range cases {
		if err := validateMetric(m); err == nil {
			t.Errorf("validateMetric(%+v) accepted an illegal metric", m)
		}
	}
	if err := validateMetric(Metric{Name: "nitro_ok_total", Kind: KindCounter,
		Labels: []Label{{"function", "f"}}}); err != nil {
		t.Errorf("legal metric rejected: %v", err)
	}
}

func TestRegistryVarsJSON(t *testing.T) {
	r := NewRegistry()
	r.RegisterVar("model", func() any { return map[string]any{"version": 3} })
	r.Register(staticCollector(Metric{Name: "nitro_calls_total", Kind: KindCounter, Value: 7}))
	data, err := r.VarsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if mv, ok := m["model"].(map[string]any); !ok || mv["version"] != float64(3) {
		t.Fatalf("vars model = %v", m["model"])
	}
	metrics, ok := m["metrics"].(map[string]any)
	if !ok || metrics["nitro_calls_total"] != float64(7) {
		t.Fatalf("vars metrics = %v", m["metrics"])
	}
}

func TestServeScrape(t *testing.T) {
	r := NewRegistry()
	r.Register(staticCollector(Metric{Name: "nitro_up", Help: "Up.", Kind: KindGauge, Value: 1}))
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content-type = %q", ct)
	}
	if err := ValidatePrometheusText(metrics); err != nil {
		t.Errorf("live scrape fails lint: %v\n%s", err, metrics)
	}
	if !strings.Contains(metrics, "nitro_up 1") {
		t.Errorf("scrape missing sample:\n%s", metrics)
	}

	vars, _ := get("/vars")
	if !strings.Contains(vars, "nitro_up") {
		t.Errorf("/vars missing metric: %s", vars)
	}

	debugVars, _ := get("/debug/vars")
	if !strings.Contains(debugVars, `"nitro"`) {
		t.Errorf("/debug/vars missing published nitro var")
	}

	health, _ := get("/healthz")
	if strings.TrimSpace(health) != "ok" {
		t.Errorf("/healthz = %q", health)
	}
}

func TestValidatePrometheusText(t *testing.T) {
	good := "# HELP nitro_x X.\n# TYPE nitro_x gauge\nnitro_x 1\n"
	if err := ValidatePrometheusText(good); err != nil {
		t.Errorf("good text rejected: %v", err)
	}
	cases := map[string]string{
		"no samples":     "# TYPE nitro_x gauge\n",
		"no TYPE header": "nitro_x 1\n",
		"bad prefix":     "# TYPE other_x gauge\nother_x 1\n",
		"illegal name":   "# TYPE nitro_x gauge\n0bad 1\n",
		"malformed TYPE": "# TYPE nitro_x\nnitro_x 1\n",
	}
	for what, text := range cases {
		if err := ValidatePrometheusText(text); err == nil {
			t.Errorf("%s: accepted %q", what, text)
		}
	}
	// Histogram suffixes resolve to the base TYPE header.
	hist := "# TYPE nitro_h histogram\n" +
		`nitro_h_bucket{le="+Inf"} 3` + "\nnitro_h_sum 0.5\nnitro_h_count 3\n"
	if err := ValidatePrometheusText(hist); err != nil {
		t.Errorf("histogram suffix samples rejected: %v", err)
	}
}

// TestValidatePrometheusTextSuffixResolution: each of the histogram-series
// suffixes must be resolved independently against the TYPE table. The old
// sequential TrimSuffix chain peeled multiple suffixes off one name — a
// sample literally named nitro_x_sum_bucket resolved to base nitro_x — so an
// untyped sample could pass the lint (and a validly typed one fail it).
func TestValidatePrometheusTextSuffixResolution(t *testing.T) {
	cases := []struct {
		name string
		text string
		ok   bool
	}{
		{
			// Belongs to histogram "nitro_x_sum", which has no TYPE header;
			// double-stripping used to resolve it to the typed "nitro_x" and
			// wave it through.
			name: "untyped double-suffix sample must fail",
			text: "# TYPE nitro_x histogram\nnitro_x_sum_bucket{le=\"+Inf\"} 1\n",
			ok:   false,
		},
		{
			// A histogram family legitimately named with a trailing _count:
			// its _sum series used to double-strip to "nitro_x" (untyped) and
			// fail, though the TYPE header for nitro_x_count is right there.
			name: "histogram family named *_count must pass",
			text: "# TYPE nitro_x_count histogram\nnitro_x_count_sum 0.5\nnitro_x_count_count 2\n" +
				"nitro_x_count_bucket{le=\"+Inf\"} 2\n",
			ok: true,
		},
		{
			// Suffix resolution only applies to histogram bases: a _count
			// sample hanging off a gauge is not a histogram series and must
			// not inherit the gauge's TYPE header.
			name: "suffix on non-histogram base must fail",
			text: "# TYPE nitro_g gauge\nnitro_g 1\nnitro_g_count 2\n",
			ok:   false,
		},
		{
			// A sample with its own exact TYPE header passes regardless of a
			// suffix-looking name.
			name: "exact TYPE header on suffixed name must pass",
			text: "# TYPE nitro_requests_count counter\nnitro_requests_count 7\n",
			ok:   true,
		},
		{
			// Exactly one suffix strips: _bucket on a typed histogram.
			name: "single-suffix histogram series must pass",
			text: "# TYPE nitro_h histogram\nnitro_h_bucket{le=\"1\"} 1\nnitro_h_sum 1\nnitro_h_count 1\n",
			ok:   true,
		},
	}
	for _, tc := range cases {
		err := ValidatePrometheusText(tc.text)
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.text)
		}
	}
}

// TestServeSlowHeaderClientTimesOut: a client that opens a connection and
// never finishes its request header must be disconnected by
// ReadHeaderTimeout instead of holding the connection forever (Slowloris).
func TestServeSlowHeaderClientTimesOut(t *testing.T) {
	r := NewRegistry()
	r.Register(staticCollector(Metric{Name: "nitro_up", Help: "Up.", Kind: KindGauge, Value: 1}))
	srv, err := r.ServeConfig("127.0.0.1:0", ServerConfig{ReadHeaderTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Dribble a partial request line and stop — never send the final CRLF.
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\nX-Slow: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("slow-header connection was not closed by the server (read err=%v)", err)
	}
}

// TestShutdownDrainsInflightScrape: Shutdown must let an in-flight scrape
// finish its body (Close aborts it mid-response), then return.
func TestShutdownDrainsInflightScrape(t *testing.T) {
	r := NewRegistry()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	r.Register(func(emit func(Metric)) {
		once.Do(func() { close(started); <-gate }) // first scrape blocks until released
		emit(Metric{Name: "nitro_up", Help: "Up.", Kind: KindGauge, Value: 1})
	})
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		code int
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			err = rerr
		}
		got <- scrape{body: string(body), code: resp.StatusCode, err: err}
	}()

	<-started // the scrape is in flight, blocked inside the collector
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// Give Shutdown a moment to close the listener, then release the scrape.
	time.Sleep(20 * time.Millisecond)
	close(gate)

	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("in-flight scrape aborted by graceful shutdown: %v", s.err)
	}
	if s.code != http.StatusOK || !strings.Contains(s.body, "nitro_up 1") {
		t.Fatalf("in-flight scrape incomplete: code=%d body=%q", s.code, s.body)
	}
	// The listener is closed: new connections must be refused.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
