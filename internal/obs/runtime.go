package obs

// Go runtime telemetry for the profiling surface: goroutine count, heap
// occupancy and GC pause totals as nitro_runtime_* series. Registered
// opt-in alongside /debug/pprof — ReadMemStats stops the world briefly,
// so the collector only runs when a scraper actually asks and only when
// profiling was enabled.

import "runtime"

// RuntimeCollector emits Go runtime health series.
func RuntimeCollector() Collector {
	return func(emit func(Metric)) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit(Gauge("nitro_runtime_goroutines", "Live goroutines.", float64(runtime.NumGoroutine())))
		emit(Gauge("nitro_runtime_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc)))
		emit(Gauge("nitro_runtime_heap_objects", "Allocated heap objects.", float64(ms.HeapObjects)))
		emit(Gauge("nitro_runtime_next_gc_bytes", "Heap size target of the next GC cycle.", float64(ms.NextGC)))
		emit(Counter("nitro_runtime_alloc_bytes_total", "Cumulative bytes allocated on the heap.", float64(ms.TotalAlloc)))
		emit(Counter("nitro_runtime_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC)))
		emit(Counter("nitro_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", float64(ms.PauseTotalNs)/1e9))
	}
}
