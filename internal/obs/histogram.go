// Log-bucketed, sharded, lock-free latency histograms.
//
// Record is designed for the dispatch hot path of internal/core: the bucket
// index is computed from the float64 bit pattern (exponent + top two mantissa
// bits — no math.Log), and the increment is one atomic add on one of several
// cache-line-independent shards, exactly the trick core's funcStats uses for
// its call counters. Snapshots merge the shards; quantiles are read off the
// bucket boundaries (relative error is bounded by the 1/4-octave bucket
// width, ~9%, which is plenty for p50/p95/p99 dashboards).
package obs

import (
	"math"
	"math/rand/v2"
	"sync/atomic"
)

const (
	// histExpMin / histExpMax bound the binary exponent range covered with
	// full resolution: 2^-50 (~8.9e-16 s) to 2^14 (~16384 s). Values outside
	// clamp to the edge buckets.
	histExpMin = -50
	histExpMax = 13
	// histSubBuckets splits each octave into 4 sub-buckets (top two mantissa
	// bits), bounding the quantile error at ~9%.
	histSubBuckets = 4
	// histBuckets is the positive-value bucket count; slot 0 is reserved for
	// values <= 0 (and NaN), so the array has histBuckets+1 slots.
	histBuckets = (histExpMax - histExpMin + 1) * histSubBuckets

	// histShards spreads concurrent writers; each shard has its own bucket
	// array and sum, so two cores recording different calls do not share a
	// cache line (a smaller count than funcStats's 32 because each shard here
	// is a whole bucket array, not a single counter line).
	histShards = 4
)

// histShard is one writer shard: bucket counts plus a CAS-accumulated sum.
type histShard struct {
	counts  [histBuckets + 1]atomic.Int64
	sumBits atomic.Uint64
	_       [64]byte
}

func (s *histShard) addSum(v float64) {
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram is a lock-free log-bucketed histogram of nonnegative values
// (by convention, seconds). The zero value is NOT ready; use NewHistogram.
type Histogram struct {
	shards [histShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket using only integer bit operations.
func bucketIndex(v float64) int {
	if !(v > 0) { // catches <= 0 and NaN
		return 0
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023
	sub := int(bits >> 50 & 3)
	if exp < histExpMin {
		return 1
	}
	if exp > histExpMax {
		return histBuckets
	}
	return 1 + (exp-histExpMin)*histSubBuckets + sub
}

// bucketLower returns the inclusive lower bound of a positive-value bucket.
func bucketLower(idx int) float64 {
	idx--
	exp := histExpMin + idx/histSubBuckets
	sub := idx % histSubBuckets
	return math.Ldexp(1+float64(sub)/histSubBuckets, exp)
}

// bucketUpper returns the exclusive upper bound of a positive-value bucket.
func bucketUpper(idx int) float64 {
	if idx >= histBuckets {
		return math.Inf(1)
	}
	return bucketLower(idx + 1)
}

// bucketMid returns the bucket's representative value (geometric midpoint).
func bucketMid(idx int) float64 {
	if idx == 0 {
		return 0
	}
	lo := bucketLower(idx)
	up := bucketUpper(idx)
	if math.IsInf(up, 1) {
		return lo
	}
	return math.Sqrt(lo * up)
}

// Record adds one observation. Lock-free: a per-thread random shard pick,
// one atomic bucket increment and one CAS sum accumulation.
func (h *Histogram) Record(v float64) {
	sh := &h.shards[rand.Uint64N(histShards)]
	sh.counts[bucketIndex(v)].Add(1)
	sh.addSum(v)
}

// merged sums the shards into one bucket array plus (count, sum).
func (h *Histogram) merged() (buckets [histBuckets + 1]int64, count int64, sum float64) {
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			c := sh.counts[b].Load()
			buckets[b] += c
			count += c
		}
		sum += math.Float64frombits(sh.sumBits.Load())
	}
	return buckets, count, sum
}

// LatencySummary is a point-in-time digest of one histogram: count, sum and
// the quantiles a dashboard wants, plus the per-variant regret estimate the
// runtime computes relative to the best variant of the same function
// (0 for the best variant; 0.25 means "25% slower on average").
type LatencySummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Regret is filled by the caller that can see sibling histograms (see
	// core.CallStats); the histogram itself leaves it 0.
	Regret float64 `json:"regret"`
}

// Snapshot digests the histogram. Min/Max are bucket-resolution
// approximations (lower bound of the lowest / highest non-empty bucket).
func (h *Histogram) Snapshot() LatencySummary {
	buckets, count, sum := h.merged()
	out := LatencySummary{Count: count, Sum: sum}
	if count == 0 {
		return out
	}
	out.Mean = sum / float64(count)
	minB, maxB := -1, -1
	for b, c := range buckets {
		if c == 0 {
			continue
		}
		if minB < 0 {
			minB = b
		}
		maxB = b
	}
	lowerOf := func(b int) float64 {
		if b == 0 {
			return 0
		}
		return bucketLower(b)
	}
	out.Min = lowerOf(minB)
	out.Max = lowerOf(maxB)
	q := func(p float64) float64 {
		target := int64(math.Ceil(p * float64(count)))
		if target < 1 {
			target = 1
		}
		var cum int64
		for b, c := range buckets {
			cum += c
			if cum >= target {
				return bucketMid(b)
			}
		}
		return bucketMid(histBuckets)
	}
	out.P50, out.P95, out.P99 = q(0.50), q(0.95), q(0.99)
	return out
}

// DefaultBounds is the coarse `le` bound set histograms export to Prometheus
// (decade steps over the simulated-seconds range this repo works in).
func DefaultBounds() []float64 {
	return []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}
}

// Cumulative returns, for each le bound, the number of observations <= le
// (bucket-resolution approximation: a fine bucket counts toward a bound when
// its representative value is <= le), plus the exact total count and sum —
// exactly the triple a Prometheus histogram exposition needs.
func (h *Histogram) Cumulative(bounds []float64) (counts []int64, count int64, sum float64) {
	buckets, count, sum := h.merged()
	counts = make([]int64, len(bounds))
	for b, c := range buckets {
		if c == 0 {
			continue
		}
		mid := bucketMid(b)
		for i, le := range bounds {
			if mid <= le {
				counts[i] += c
			}
		}
	}
	return counts, count, sum
}
