package obs

import (
	"math"
	"sync"
	"testing"
)

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{math.Inf(-1), 0},
		{5e-17, 1},                 // below 2^-50: clamps to lowest positive bucket
		{math.Inf(1), histBuckets}, // clamps to top bucket
		{1e30, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketIndexBoundsContainValue(t *testing.T) {
	// Every in-range value must land in a bucket whose [lower, upper) contains it.
	vals := []float64{1e-9, 3.7e-6, 0.001, 0.0123, 0.5, 1, 1.999, 2, 3, 7.5, 100, 8191}
	for _, v := range vals {
		idx := bucketIndex(v)
		lo, up := bucketLower(idx), bucketUpper(idx)
		if v < lo || v >= up {
			t.Errorf("value %g landed in bucket %d [%g, %g)", v, idx, lo, up)
		}
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for v := 1e-12; v < 1e4; v *= 1.07 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %g: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramSnapshotQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations: 90 around 1ms, 9 around 10ms, 1 around 100ms.
	for i := 0; i < 90; i++ {
		h.Record(1e-3)
	}
	for i := 0; i < 9; i++ {
		h.Record(1e-2)
	}
	h.Record(1e-1)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	wantSum := 90*1e-3 + 9*1e-2 + 1e-1
	if math.Abs(s.Sum-wantSum) > 1e-12 {
		t.Fatalf("Sum = %g, want %g", s.Sum, wantSum)
	}
	if math.Abs(s.Mean-wantSum/100) > 1e-12 {
		t.Fatalf("Mean = %g", s.Mean)
	}
	// Quantiles are bucket-resolution approximations: within ~15% is fine.
	checkApprox := func(name string, got, want float64) {
		t.Helper()
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s = %g, want ~%g", name, got, want)
		}
	}
	checkApprox("P50", s.P50, 1e-3)
	checkApprox("P95", s.P95, 1e-2)
	checkApprox("P99", s.P99, 1e-2)
	if s.Min > 1e-3 || s.Min < 1e-3/1.3 {
		t.Errorf("Min = %g, want ~1e-3 lower bound", s.Min)
	}
	if s.Max > 1e-1 || s.Max < 1e-1/1.3 {
		t.Errorf("Max = %g, want ~1e-1 lower bound", s.Max)
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	// Relative quantile error must stay under the 1/4-octave bucket width (~19%
	// worst case at the geometric midpoint).
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i) * 1e-4) // uniform 0.1ms .. 100ms
	}
	s := h.Snapshot()
	if rel := math.Abs(s.P50-0.05) / 0.05; rel > 0.2 {
		t.Errorf("P50 rel error %.3f too large (P50=%g)", rel, s.P50)
	}
	if rel := math.Abs(s.P99-0.099) / 0.099; rel > 0.2 {
		t.Errorf("P99 rel error %.3f too large (P99=%g)", rel, s.P99)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(1e-3)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", s.Count, goroutines*per)
	}
	if math.Abs(s.Sum-goroutines*per*1e-3) > 1e-6 {
		t.Fatalf("Sum = %g", s.Sum)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	h.Record(5e-4) // <= 1e-3
	h.Record(5e-4)
	h.Record(5e-2) // <= 1e-1
	bounds := []float64{1e-3, 1e-1, 10}
	counts, count, sum := h.Cumulative(bounds)
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if math.Abs(sum-0.051) > 1e-12 {
		t.Fatalf("sum = %g", sum)
	}
	if counts[0] != 2 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("cumulative counts = %v, want [2 3 3]", counts)
	}
}

func TestHistogramZeroAndNegativeGoToSlotZero(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(-5)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Fatalf("snapshot of nonpositive values = %+v", s)
	}
}

func TestDefaultBoundsSorted(t *testing.T) {
	b := DefaultBounds()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("DefaultBounds not strictly increasing at %d", i)
		}
	}
}
