package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilPhaseTrackerIsNoop(t *testing.T) {
	var p *PhaseTracker
	stop := p.Start("x") // must not panic
	stop()
	p.Add("x", time.Second)
	if got := p.Phases(); got != nil {
		t.Fatalf("nil tracker Phases = %v", got)
	}
	if got := p.String(); got != "phase timings: none" {
		t.Fatalf("nil tracker String = %q", got)
	}
}

func TestPhaseTrackerAccumulates(t *testing.T) {
	p := NewPhaseTracker()
	now := time.Unix(0, 0)
	p.clock = func() time.Time { return now }

	stop := p.Start("corpus")
	now = now.Add(2 * time.Second)
	stop()
	p.Add("label", 500*time.Millisecond)
	p.Add("corpus", time.Second)

	phases := p.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[0].Name != "corpus" || phases[0].Duration != 3*time.Second || phases[0].Count != 2 {
		t.Fatalf("corpus phase = %+v", phases[0])
	}
	if phases[1].Name != "label" || phases[1].Duration != 500*time.Millisecond || phases[1].Count != 1 {
		t.Fatalf("label phase = %+v", phases[1])
	}
	want := "phase timings: corpus=3s label=500ms (total 3.5s)"
	if got := p.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestPhaseTrackerFirstSeenOrder(t *testing.T) {
	p := NewPhaseTracker()
	for _, name := range []string{"z", "a", "m", "a"} {
		p.Add(name, time.Millisecond)
	}
	phases := p.Phases()
	got := make([]string, len(phases))
	for i, ph := range phases {
		got[i] = ph.Name
	}
	if strings.Join(got, ",") != "z,a,m" {
		t.Fatalf("order = %v, want first-seen [z a m]", got)
	}
}

func TestPhaseTrackerConcurrent(t *testing.T) {
	p := NewPhaseTracker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Add("shared", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	phases := p.Phases()
	if len(phases) != 1 || phases[0].Count != 800 || phases[0].Duration != 800*time.Microsecond {
		t.Fatalf("concurrent accumulation = %+v", phases)
	}
}

func TestPhaseTrackerCollector(t *testing.T) {
	p := NewPhaseTracker()
	p.Add("label", 2*time.Second)
	p.Add("corpus", time.Second)
	var got []Metric
	p.Collector()(func(m Metric) { got = append(got, m) })
	if len(got) != 2 {
		t.Fatalf("collector emitted %d metrics", len(got))
	}
	// Sorted by phase name for deterministic exposition.
	if got[0].Labels[0].Value != "corpus" || got[0].Value != 1 {
		t.Fatalf("metric 0 = %+v", got[0])
	}
	if got[1].Labels[0].Value != "label" || got[1].Value != 2 {
		t.Fatalf("metric 1 = %+v", got[1])
	}
	for _, m := range got {
		if m.Name != "nitro_tuner_phase_seconds" || m.Kind != KindGauge {
			t.Fatalf("metric = %+v", m)
		}
	}
}
