package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseTraceMode(t *testing.T) {
	cases := []struct {
		in   string
		want TraceMode
		err  bool
	}{
		{"", TraceOff, false},
		{"off", TraceOff, false},
		{"OFF", TraceOff, false},
		{"sampled", TraceSampled, false},
		{"sample", TraceSampled, false},
		{"always", TraceAlways, false},
		{"on", TraceAlways, false},
		{"all", TraceAlways, false},
		{" Always ", TraceAlways, false},
		{"bogus", TraceOff, true},
	}
	for _, c := range cases {
		got, err := ParseTraceMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseTraceMode(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if got != c.want {
			t.Errorf("ParseTraceMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTraceModeString(t *testing.T) {
	if TraceOff.String() != "off" || TraceSampled.String() != "sampled" || TraceAlways.String() != "always" {
		t.Fatalf("mode strings wrong: %v %v %v", TraceOff, TraceSampled, TraceAlways)
	}
	if got := TraceMode(42).String(); got != "mode(42)" {
		t.Fatalf("unknown mode = %q", got)
	}
}

func TestTracerAdmitOff(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceOff})
	for i := 0; i < 10; i++ {
		if tr.Admit() {
			t.Fatal("TraceOff admitted a call")
		}
	}
}

func TestTracerAdmitAlways(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceAlways})
	for i := 0; i < 10; i++ {
		if !tr.Admit() {
			t.Fatal("TraceAlways rejected a call")
		}
	}
}

func TestTracerAdmitSampledExact(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceSampled, SamplePeriod: 4})
	var admitted []int
	for i := 0; i < 12; i++ {
		if tr.Admit() {
			admitted = append(admitted, i)
		}
	}
	want := []int{0, 4, 8}
	if fmt.Sprint(admitted) != fmt.Sprint(want) {
		t.Fatalf("sampled admissions = %v, want %v", admitted, want)
	}
}

func TestTracerSampledDeterministicAcrossRuns(t *testing.T) {
	run := func() []int64 {
		tr := NewTracer(TracePolicy{Mode: TraceSampled, SamplePeriod: 8})
		var seqs []int64
		for i := 0; i < 100; i++ {
			if tr.Admit() {
				tr.Emit(DecisionTrace{Function: "f", Predicted: i})
				seqs = append(seqs, int64(i))
			}
		}
		return seqs
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("two serial runs admitted different calls:\n%v\n%v", a, b)
	}
}

func TestTracerEmitRingAndRecent(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceAlways, Capacity: 4})
	for i := 1; i <= 10; i++ {
		tr.Emit(DecisionTrace{Function: "f", Predicted: i})
	}
	if tr.Count() != 10 {
		t.Fatalf("Count = %d, want 10", tr.Count())
	}
	recent := tr.Recent(10) // capped at capacity
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d traces, want 4", len(recent))
	}
	for i, tc := range recent {
		wantSeq := int64(7 + i)
		if tc.Seq != wantSeq {
			t.Errorf("recent[%d].Seq = %d, want %d (chronological order)", i, tc.Seq, wantSeq)
		}
	}
	// Recent(n) with n smaller than stored.
	two := tr.Recent(2)
	if len(two) != 2 || two[0].Seq != 9 || two[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v", two)
	}
}

func TestTracerSink(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceAlways})
	var mu sync.Mutex
	var got []int64
	tr.SetSink(func(d DecisionTrace) {
		mu.Lock()
		got = append(got, d.Seq)
		mu.Unlock()
	})
	tr.Emit(DecisionTrace{Function: "f"})
	tr.Emit(DecisionTrace{Function: "f"})
	tr.SetSink(nil)
	tr.Emit(DecisionTrace{Function: "f"})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("sink saw %v, want [1 2]", got)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceAlways, Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if tr.Admit() {
					tr.Emit(DecisionTrace{Function: "f"})
				}
			}
		}()
	}
	wg.Wait()
	if tr.Count() != 1600 {
		t.Fatalf("Count = %d, want 1600", tr.Count())
	}
	if n := len(tr.Recent(1000)); n != 64 {
		t.Fatalf("Recent after overflow = %d, want 64", n)
	}
}

func TestDecisionTraceStringDeterministic(t *testing.T) {
	d := DecisionTrace{
		Seq:          42,
		Function:     "mult",
		RawFeatures:  []float64{1024, 0.033333},
		Scores:       []float64{0.81, 0.19},
		Ranked:       []int{0, 1},
		Predicted:    0,
		ModelVersion: 3,
		Vetoed:       []string{"csr"},
		ChosenIdx:    0,
		Chosen:       "dia",
		FellBack:     true,
		FallbackHops: 1,
		Value:        0.0123,
		Start:        time.Now(),
		WallNanos:    999,
	}
	got := d.String()
	want := `[trace 000042] mult v3 features=[1024 0.03333] scores=[0.81 0.19] ranked=[0 1] predicted=0 vetoed=[csr] chosen=dia(0) fellback hops=1 value=0.0123`
	if got != want {
		t.Fatalf("String() =\n%q\nwant\n%q", got, want)
	}
	// Wall-clock fields must not leak into the deterministic form.
	d2 := d
	d2.Start = time.Time{}
	d2.WallNanos = 0
	if d2.String() != got {
		t.Fatal("String() depends on wall-clock fields")
	}
}

func TestDecisionTraceStringError(t *testing.T) {
	d := DecisionTrace{Seq: 7, Function: "f", RawFeatures: []float64{1}, Predicted: -1, Err: "boom"}
	want := `[trace 000007] f features=[1] predicted=-1 error="boom"`
	if got := d.String(); got != want {
		t.Fatalf("error String() = %q, want %q", got, want)
	}
}

func TestTracerMarshalJSON(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceSampled, SamplePeriod: 16, Capacity: 8})
	tr.Emit(DecisionTrace{})
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["mode"] != "sampled" || m["sample_period"] != float64(16) || m["capacity"] != float64(8) || m["recorded"] != float64(1) {
		t.Fatalf("MarshalJSON = %s", b)
	}
}

func TestTracerCollector(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceAlways})
	tr.Emit(DecisionTrace{})
	tr.Emit(DecisionTrace{})
	var metrics []Metric
	tr.Collector("mult")(func(m Metric) { metrics = append(metrics, m) })
	if len(metrics) != 2 {
		t.Fatalf("collector emitted %d metrics, want 2", len(metrics))
	}
	if metrics[0].Name != "nitro_traces_recorded_total" || metrics[0].Value != 2 {
		t.Fatalf("metric 0 = %+v", metrics[0])
	}
	if metrics[1].Name != "nitro_trace_mode" || metrics[1].Value != float64(TraceAlways) {
		t.Fatalf("metric 1 = %+v", metrics[1])
	}
	if len(metrics[0].Labels) != 1 || metrics[0].Labels[0] != (Label{"function", "mult"}) {
		t.Fatalf("labels = %+v", metrics[0].Labels)
	}
}

func TestPolicyNormalization(t *testing.T) {
	tr := NewTracer(TracePolicy{Mode: TraceSampled})
	p := tr.Policy()
	if p.SamplePeriod != 64 || p.Capacity != 256 {
		t.Fatalf("normalized policy = %+v", p)
	}
	if tr.Mode() != TraceSampled {
		t.Fatalf("Mode = %v", tr.Mode())
	}
}
