package obs

import (
	"strings"
	"testing"
)

// TestValidatePrometheusTextLabels: the lint parses label blocks, not just
// names — per-tenant series introduced by the observability plane must be
// grammatically checkable, and hostile or mangled blocks must fail.
func TestValidatePrometheusTextLabels(t *testing.T) {
	header := "# TYPE nitro_server_tenant_requests_total counter\n"
	cases := []struct {
		name string
		line string
		ok   bool
	}{
		{"simple label", `nitro_server_tenant_requests_total{tenant="acme"} 7`, true},
		{"multiple labels", `nitro_server_tenant_requests_total{tenant="acme",route="pull"} 7`, true},
		{"empty block", `nitro_server_tenant_requests_total{} 7`, true},
		{"escaped quote", `nitro_server_tenant_requests_total{tenant="a\"b"} 1`, true},
		{"escaped backslash and newline", `nitro_server_tenant_requests_total{tenant="a\\b\n"} 1`, true},
		{"value with spaces and braces", `nitro_server_tenant_requests_total{tenant="a b{c}"} 1`, true},
		{"duplicate key", `nitro_server_tenant_requests_total{tenant="a",tenant="b"} 1`, false},
		{"illegal label name", `nitro_server_tenant_requests_total{0ten="a"} 1`, false},
		{"unquoted value", `nitro_server_tenant_requests_total{tenant=acme} 1`, false},
		{"unterminated value", `nitro_server_tenant_requests_total{tenant="acme} 1`, false},
		{"missing equals", `nitro_server_tenant_requests_total{tenant"acme"} 1`, false},
		{"unclosed block", `nitro_server_tenant_requests_total{tenant="acme" 1`, false},
		{"illegal escape", `nitro_server_tenant_requests_total{tenant="a\t"} 1`, false},
		{"trailing comma", `nitro_server_tenant_requests_total{tenant="acme",} 1`, false},
		{"missing value", `nitro_server_tenant_requests_total{tenant="acme"}`, false},
		{"unparsable value", `nitro_server_tenant_requests_total{tenant="acme"} seven`, false},
		{"inf value ok", `nitro_server_tenant_requests_total{tenant="acme"} +Inf`, true},
	}
	for _, tc := range cases {
		err := ValidatePrometheusText(header + tc.line + "\n")
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.line)
		}
	}
}

// TestLabeledSeriesRoundTrip: labeled metrics written by the registry must
// pass the same lint a live scrape runs, and distinct label values must
// produce distinct sorted sample lines under one TYPE header.
func TestLabeledSeriesRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Register(func(emit func(Metric)) {
		emit(Counter("nitro_server_tenant_requests_total", "Requests per tenant.", 3,
			Label{Key: "tenant", Value: "zeta"}))
		emit(Counter("nitro_server_tenant_requests_total", "Requests per tenant.", 5,
			Label{Key: "tenant", Value: "acme"}))
	})
	text, err := r.PrometheusText()
	if err != nil {
		t.Fatalf("exposition failed: %v", err)
	}
	if err := ValidatePrometheusText(text); err != nil {
		t.Fatalf("labeled exposition fails lint: %v\n%s", err, text)
	}
	acme := strings.Index(text, `nitro_server_tenant_requests_total{tenant="acme"} 5`)
	zeta := strings.Index(text, `nitro_server_tenant_requests_total{tenant="zeta"} 3`)
	if acme < 0 || zeta < 0 {
		t.Fatalf("labeled samples missing:\n%s", text)
	}
	if acme > zeta {
		t.Fatalf("samples not sorted by label value:\n%s", text)
	}
	if strings.Count(text, "# TYPE nitro_server_tenant_requests_total") != 1 {
		t.Fatalf("labeled family should share one TYPE header:\n%s", text)
	}
}

// TestHistogramMetricExport: a live Histogram exported through
// HistogramMetric must carry cumulative buckets and survive the lint with
// a route label attached.
func TestHistogramMetricExport(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0.0001, 0.0002, 0.05, 1.5} {
		h.Record(v)
	}
	m := HistogramMetric("nitro_server_http_request_seconds", "Request latency.",
		h, DefaultBounds(), Label{Key: "route", Value: "pull"})
	if m.Count != 4 {
		t.Fatalf("Count = %d, want 4", m.Count)
	}
	if m.Sum <= 0 {
		t.Fatalf("Sum = %v, want > 0", m.Sum)
	}
	last := int64(-1)
	for _, b := range m.Buckets {
		if b.Count < last {
			t.Fatalf("buckets not cumulative: %+v", m.Buckets)
		}
		last = b.Count
	}
	r := NewRegistry()
	r.Register(func(emit func(Metric)) { emit(m) })
	text, err := r.PrometheusText()
	if err != nil {
		t.Fatalf("exposition failed: %v", err)
	}
	if err := ValidatePrometheusText(text); err != nil {
		t.Fatalf("histogram exposition fails lint: %v\n%s", err, text)
	}
	if !strings.Contains(text, `nitro_server_http_request_seconds_bucket{route="pull",le="+Inf"} 4`) {
		t.Fatalf("+Inf bucket missing:\n%s", text)
	}
}

// TestRuntimeCollector: the opt-in runtime series must be present,
// plausible and lint-clean.
func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	r.Register(RuntimeCollector())
	text, err := r.PrometheusText()
	if err != nil {
		t.Fatalf("exposition failed: %v", err)
	}
	if err := ValidatePrometheusText(text); err != nil {
		t.Fatalf("runtime series fail lint: %v", err)
	}
	for _, name := range []string{
		"nitro_runtime_goroutines", "nitro_runtime_heap_alloc_bytes",
		"nitro_runtime_gc_pause_seconds_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("runtime series %s missing", name)
		}
	}
	var metrics []Metric
	RuntimeCollector()(func(m Metric) { metrics = append(metrics, m) })
	for _, m := range metrics {
		if m.Name == "nitro_runtime_goroutines" && m.Value < 1 {
			t.Errorf("goroutines = %v, want >= 1", m.Value)
		}
	}
}
