package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"nitro/internal/autotuner"
	"nitro/internal/gpusim"
	"nitro/internal/par"
	"nitro/internal/sparse"
)

// spmvGroups mirrors the UFL-group structure of the paper's SpMV corpus:
// each group produces matrices in one structural regime.
var spmvGroups = []string{"stencil2d", "stencil3d", "banded", "regular", "powerlaw", "clustered", "uniform"}

// spmvMatrix generates the i-th matrix of a group.
func spmvMatrix(group string, i int, cfg Config, rng *rand.Rand) *sparse.CSR {
	seed := rng.Int63()
	switch group {
	case "stencil2d":
		side := cfg.scaledSide(48+12*(i%6), 10)
		return sparse.Stencil2D(side, side+i%3)
	case "stencil3d":
		side := cfg.scaledSide(14+2*(i%4), 4)
		return sparse.Stencil3D(side, side, side+i%2)
	case "banded":
		n := cfg.scaled(3000+900*(i%5), 200)
		offsets := []int{0}
		for d := 1; d <= 2+i%4; d++ {
			offsets = append(offsets, d*(1+i%3), -d*(1+i%3))
		}
		return sparse.Banded(n, offsets, seed)
	case "regular":
		n := cfg.scaled(4000+1500*(i%5), 300)
		return sparse.RegularRandom(n, 6+4*(i%6), seed)
	case "powerlaw":
		n := cfg.scaled(3000+1200*(i%5), 300)
		return sparse.PowerLaw(n, 6+2*float64(i%4), 1.3+0.15*float64(i%4), seed)
	case "clustered":
		n := cfg.scaled(6000+2000*(i%4), 400)
		rowLen := 20 + 8*(i%4)
		return sparse.BlockClustered(n, rowLen, rowLen*6, seed)
	default: // uniform
		n := cfg.scaled(2500+800*(i%4), 250)
		return sparse.RandomUniform(n, n*(5+i%6), seed)
	}
}

// spmvProblem builds the problem and the instance skeleton (features and
// feature costs, but no Times) for one matrix. It consumes rng and therefore
// must run serially in instance order.
func spmvProblem(id string, m *sparse.CSR, rng *rand.Rand) (*sparse.Problem, autotuner.Instance) {
	x := make([]float64, m.Cols)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	p, err := sparse.NewProblem(m, x)
	if err != nil {
		panic(err) // generator bug: dimensions always match
	}
	f := p.Features()
	return p, autotuner.Instance{
		ID:       id,
		Features: f.Vector(),
		FeatureCosts: []float64{
			host.Scan(float64(4*m.Rows), 1, 4),  // AvgNZPerRow: row-pointer pass
			host.Scan(float64(4*m.Rows), 2, 4),  // RL-SD
			host.Scan(float64(4*m.Rows), 1, 4),  // MaxDeviation
			host.Scan(float64(4*m.NNZ()), 3, 4), // DIA-Fill: column-index pass
			host.Scan(float64(4*m.Rows), 1, 4),  // ELL-Fill
		},
	}
}

// spmvTimes exhaustively runs the given variants on one problem (the
// labelling stage). It is pure in p and dev, so instances label in parallel.
func spmvTimes(p *sparse.Problem, dev *gpusim.Device, variants []sparse.Variant) []float64 {
	times := make([]float64, 0, len(variants))
	for _, v := range variants {
		if v.Constraint != nil && !v.Constraint(p) {
			times = append(times, math.Inf(1))
			continue
		}
		res, err := v.Run(p, dev)
		if err != nil {
			times = append(times, math.Inf(1))
			continue
		}
		times = append(times, res.Seconds)
	}
	return times
}

// SpMV builds the sparse matrix-vector multiply suite (paper: 54 training /
// 100 test matrices over six CUSP variants).
func SpMV(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error) {
	return spmvSuite(cfg, dev, "SpMV", sparse.Variants(), sparse.VariantNames())
}

// SpMVExtended builds the same corpus over the eight-variant extension set
// (the paper's six plus COO and HYB), for the richer-variant-space
// experiment.
func SpMVExtended(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error) {
	return spmvSuite(cfg, dev, "SpMV+ext", sparse.ExtendedVariants(), sparse.ExtendedVariantNames())
}

func spmvSuite(cfg Config, dev *gpusim.Device, name string, variants []sparse.Variant, names []string) (*autotuner.Suite, error) {
	cfg = cfg.Norm()
	nTrain, nTest := cfg.counts(54, 100)
	s := &autotuner.Suite{
		Name:           name,
		VariantNames:   names,
		FeatureNames:   sparse.FeatureNames(),
		DefaultVariant: 0, // CSR-Vec handles every matrix
	}
	build := func(n int, seedOff int64) []autotuner.Instance {
		// Phase 1 (serial): generate matrices and feature vectors in
		// instance order — the RNG stream must be consumed deterministically.
		stopGen := cfg.Phases.Start("generate")
		rng := rand.New(rand.NewSource(cfg.Seed + seedOff))
		out := make([]autotuner.Instance, n)
		probs := make([]*sparse.Problem, n)
		for i := 0; i < n; i++ {
			group := spmvGroups[i%len(spmvGroups)]
			m := spmvMatrix(group, i/len(spmvGroups), cfg, rng)
			probs[i], out[i] = spmvProblem(fmt.Sprintf("%s-%d", group, i), m, rng)
		}
		stopGen()
		// Phase 2 (parallel): exhaustive-search labelling, independent per
		// instance; results land in index order.
		defer cfg.Phases.Start("label")()
		par.For(n, cfg.workers(), func(i int) {
			out[i].Times = spmvTimes(probs[i], dev, variants)
		})
		return out
	}
	s.Train = build(nTrain, 1)
	s.Test = build(nTest, 2)
	return s, nil
}
