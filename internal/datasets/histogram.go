package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"nitro/internal/autotuner"
	"nitro/internal/gpusim"
	"nitro/internal/histogram"
	"nitro/internal/par"
)

// histGroups spans the input-distribution regimes that flip the histogram
// winner: uniform (atomics win), gaussian (mild concentration), hot-spot
// (atomic collapse, sort wins) and patchy (dynamic mapping wins).
var histGroups = []string{"uniform", "gaussian", "hotspot", "patchy", "hotspot-mild"}

var histBins = []int{16, 64, 256, 1024}

func histData(group string, i, n int, rng *rand.Rand) []float64 {
	seed := rng.Int63()
	switch group {
	case "uniform":
		return histogram.Uniform(n, seed)
	case "gaussian":
		return histogram.Gaussian(n, seed)
	case "hotspot":
		return histogram.HotSpot(n, 0.7+0.08*float64(i%4), seed)
	case "patchy":
		return histogram.Patchy(n, histogram.TileSize/(1+i%3), seed)
	default: // hotspot-mild
		return histogram.HotSpot(n, 0.2+0.1*float64(i%3), seed)
	}
}

// Histogram builds the histogram suite (paper: 200 training / 1291 test
// inputs over six CUB variants).
func Histogram(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error) {
	cfg = cfg.Norm()
	nTrain, nTest := cfg.counts(200, 1291)
	s := &autotuner.Suite{
		Name:           "Histogram",
		VariantNames:   histogram.VariantNames(),
		FeatureNames:   histogram.FeatureNames(),
		DefaultVariant: 0, // Sort-ES: contention-proof
	}
	build := func(n int, seedOff int64) []autotuner.Instance {
		// Phase 1 (serial): generate inputs and features in instance order
		// so the RNG stream is consumed deterministically.
		stopGen := cfg.Phases.Start("generate")
		rng := rand.New(rand.NewSource(cfg.Seed + seedOff))
		out := make([]autotuner.Instance, n)
		probs := make([]*histogram.Problem, n)
		for i := 0; i < n; i++ {
			group := histGroups[i%len(histGroups)]
			size := cfg.scaled(8192*(1+i%8), 2048)
			bins := histBins[(i/len(histGroups))%len(histBins)]
			data := histData(group, i/len(histGroups), size, rng)
			p, err := histogram.NewProblem(data, bins)
			if err != nil {
				panic(err) // generator bug: sizes/bins always valid
			}
			sub := histogram.DefaultSubSample(size)
			f := histogram.ComputeFeatures(p, sub)
			probs[i] = p
			out[i] = autotuner.Instance{
				ID:       fmt.Sprintf("%s-%d-b%d", group, i, bins),
				Features: f.Vector(),
				FeatureCosts: []float64{
					host.Constant(),                 // N
					host.Constant(),                 // N/#bins
					host.Scan(float64(8*sub), 2, 8), // SubSampleSD
				},
			}
		}
		stopGen()
		// Phase 2 (parallel): label each input by exhaustive search.
		defer cfg.Phases.Start("label")()
		par.For(n, cfg.workers(), func(i int) {
			var times []float64
			for _, v := range histogram.Variants() {
				res, err := v.Run(probs[i], dev)
				if err != nil {
					times = append(times, math.Inf(1))
					continue
				}
				times = append(times, res.Seconds)
			}
			out[i].Times = times
		})
		return out
	}
	s.Train = build(nTrain, 31)
	s.Test = build(nTest, 32)
	return s, nil
}
