package datasets

import (
	"fmt"
	"math/rand"

	"nitro/internal/autotuner"
	"nitro/internal/gpusim"
	"nitro/internal/par"
	"nitro/internal/solver"
	"nitro/internal/sparse"
)

// solverGroups spans the regimes that flip the (solver, preconditioner)
// winner: easy SPD systems, barely-dominant SPD systems (strong
// preconditioners pay off), block-structured SPD systems (Block-Jacobi
// captures the blocks), nonsymmetric systems (CG unreliable), and hard
// indefinite systems where nothing converges — the paper reports 6 such test
// matrices.
// The "hard" group appears once per 14 instances so the paper's rate of
// fully unsolvable systems (6 of 100) is approximated (~7 of 100).
var solverGroups = []string{
	"spd-stencil", "spd-tight", "spd-block", "nonsym", "nonsym-weak", "spd-random", "hard",
	"spd-stencil", "spd-tight", "spd-block", "nonsym", "spd-random", "spd-tight", "nonsym-weak",
}

// solverMatrix generates the i-th system of a group.
func solverMatrix(group string, i int, cfg Config, rng *rand.Rand) *sparse.CSR {
	seed := rng.Int63()
	switch group {
	case "spd-stencil":
		side := cfg.scaledSide(14+3*(i%4), 6)
		return sparse.Stencil2D(side, side)
	case "spd-tight":
		n := cfg.scaled(220+60*(i%4), 60)
		return sparse.SPD(sparse.BlockClustered(n, 5+i%3, 20, seed), 1.02+0.02*float64(i%4), seed+1)
	case "spd-block":
		return blockSystem(cfg.scaled(240+40*(i%4), 64), 8, seed)
	case "nonsym":
		n := cfg.scaled(200+50*(i%4), 60)
		return skewify(sparse.RandomUniform(n, n*(4+i%3), seed), 0.8, seed+3)
	case "nonsym-weak":
		n := cfg.scaled(180+40*(i%4), 60)
		m := skewify(sparse.RandomUniform(n, n*4, seed), 1.2, seed+3)
		return weakenDiagonal(m, 0.6)
	case "spd-random":
		n := cfg.scaled(200+60*(i%4), 60)
		return sparse.SPD(sparse.RandomUniform(n, n*3, seed), 1.1+0.2*float64(i%4), seed+1)
	default: // hard: symmetric indefinite with mixed-sign weak diagonal
		return indefiniteSystem(cfg.scaled(160+40*(i%3), 50), seed)
	}
}

// blockSystem builds a strongly block-diagonal SPD system with weak random
// coupling between blocks — the Block-Jacobi sweet spot.
func blockSystem(n, bs int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := &sparse.COO{Rows: n, Cols: n}
	for b := 0; b < n; b += bs {
		end := b + bs
		if end > n {
			end = n
		}
		for i := b; i < end; i++ {
			for j := b; j < end; j++ {
				v := rng.Float64() * 0.5
				if i == j {
					v += float64(bs) * 2
				} else {
					v = (v + rng.Float64()*0.5) / 2
				}
				coo.RowIdx = append(coo.RowIdx, int32(i))
				coo.ColIdx = append(coo.ColIdx, int32(j))
				coo.Vals = append(coo.Vals, v)
			}
		}
	}
	// Weak symmetric coupling between neighbouring blocks.
	for i := 0; i+bs < n; i++ {
		v := rng.Float64() * 0.05
		coo.RowIdx = append(coo.RowIdx, int32(i), int32(i+bs))
		coo.ColIdx = append(coo.ColIdx, int32(i+bs), int32(i))
		coo.Vals = append(coo.Vals, v, v)
	}
	m := coo.ToCSR()
	return sparse.SPD(m, 1.01, seed+2) // symmetrize exactly, keep dominance
}

// skewify adds an antisymmetric perturbation (+v at (i,j), -v at (j,i))
// scaled relative to the matrix's typical diagonal: the symmetric part stays
// positive definite so the system remains solvable, but CG's convergence
// theory no longer applies and it stalls — only BiCGStab handles the system.
func skewify(m *sparse.CSR, strength float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	d := m.Diag()
	var avg float64
	for _, v := range d {
		avg += v
	}
	if len(d) > 0 {
		avg /= float64(len(d))
	}
	out := m.ToCOO()
	n := m.Rows
	for k := 0; k < 2*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := strength * avg * (0.2 + 0.8*rng.Float64())
		out.RowIdx = append(out.RowIdx, int32(i), int32(j))
		out.ColIdx = append(out.ColIdx, int32(j), int32(i))
		out.Vals = append(out.Vals, v, -v)
	}
	return out.ToCSR()
}

// weakenDiagonal scales the diagonal down, degrading Jacobi-family
// preconditioners and convergence margins.
func weakenDiagonal(m *sparse.CSR, factor float64) *sparse.CSR {
	out := m.ToCOO()
	for k := range out.Vals {
		if out.RowIdx[k] == out.ColIdx[k] {
			out.Vals[k] *= factor
		}
	}
	return out.ToCSR()
}

// indefiniteSystem builds a symmetric system with mixed-sign, non-dominant
// diagonal: CG breaks down, FSAI construction fails, and BiCGStab usually
// stalls within the iteration budget.
func indefiniteSystem(n int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := &sparse.COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32(i))
		coo.Vals = append(coo.Vals, sign*0.05*(1+rng.Float64()))
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64() - 0.5
			coo.RowIdx = append(coo.RowIdx, int32(i), int32(j))
			coo.ColIdx = append(coo.ColIdx, int32(j), int32(i))
			coo.Vals = append(coo.Vals, v, v)
		}
	}
	return coo.ToCSR()
}

// Solver builds the linear-solver suite (paper: 26 training / 100 test
// systems over six CULA (solver, preconditioner) combinations).
func Solver(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error) {
	return solverSuite(cfg, dev, "Solvers", solver.Variants(), solver.VariantNames())
}

// SolverExtended builds the same corpus over the nine-variant extension set
// (the paper's six plus GMRES(30) with each preconditioner).
func SolverExtended(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error) {
	return solverSuite(cfg, dev, "Solvers+ext", solver.ExtendedVariants(), solver.ExtendedVariantNames())
}

func solverSuite(cfg Config, dev *gpusim.Device, name string, variants []solver.Variant, names []string) (*autotuner.Suite, error) {
	cfg = cfg.Norm()
	nTrain, nTest := cfg.counts(26, 100)
	s := &autotuner.Suite{
		Name:           name,
		VariantNames:   names,
		FeatureNames:   solver.FeatureNames(),
		DefaultVariant: 3, // BiCGStab-Jacobi: the most broadly applicable combination
	}
	build := func(n int, seedOff int64) []autotuner.Instance {
		// Phase 1 (serial): generate systems and features in instance order
		// so the RNG stream is consumed deterministically.
		stopGen := cfg.Phases.Start("generate")
		rng := rand.New(rand.NewSource(cfg.Seed + seedOff))
		out := make([]autotuner.Instance, n)
		probs := make([]*solver.Problem, n)
		for i := 0; i < n; i++ {
			group := solverGroups[i%len(solverGroups)]
			m := solverMatrix(group, i/len(solverGroups), cfg, rng)
			b := make([]float64, m.Rows)
			for j := range b {
				b[j] = rng.NormFloat64()
			}
			p, err := solver.NewProblem(m, b)
			if err != nil {
				panic(err) // generator bug: systems are always square/matched
			}
			f := solver.ComputeFeatures(m)
			nnzBytes := float64(12 * m.NNZ())
			probs[i] = p
			out[i] = autotuner.Instance{
				ID:       fmt.Sprintf("%s-%d", group, i),
				Features: f.Vector(),
				FeatureCosts: []float64{
					host.Constant(),                    // NNZ
					host.Constant(),                    // Nrows
					host.Scan(nnzBytes, 1, 12),         // Trace
					host.Scan(nnzBytes, 1, 12),         // DiagAvg
					host.Scan(nnzBytes, 2, 12),         // DiagVar
					host.Scan(nnzBytes, 2, 12),         // DiagDominance
					host.Scan(float64(4*m.Rows), 1, 4), // LBw
					host.Scan(nnzBytes, 2, 12),         // Norm1
				},
			}
		}
		stopGen()
		// Phase 2 (parallel): label each system by exhaustive search.
		defer cfg.Phases.Start("label")()
		par.For(n, cfg.workers(), func(i int) {
			times := make([]float64, 0, len(variants))
			for _, v := range variants {
				res, err := v.Run(probs[i], dev)
				times = append(times, solver.Cost(res, err))
			}
			out[i].Times = times
		})
		return out
	}
	s.Train = build(nTrain, 11)
	s.Test = build(nTest, 12)
	return s, nil
}
