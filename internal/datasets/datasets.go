// Package datasets builds the training and test corpora for the five
// benchmarks of the Nitro reproduction. Seeded synthetic generators stand in
// for the paper's external collections (UFL Sparse Matrix collection,
// DIMACS10 graphs, generated key/sample sequences); corpus sizes default to
// the paper's Fig. 4 (SpMV 54/100, Solver 26/100, BFS 20/148, Histogram
// 200/1291, Sort 120/600). Each builder runs every code variant on every
// input once (constraint-vetoed or failing variants score +Inf) and packages
// the results as autotuner.Suite instances, including per-feature
// evaluation-cost estimates for the Fig. 8 overhead analysis.
package datasets

import (
	"math"
	"sync"

	"nitro/internal/autotuner"
	"nitro/internal/gpusim"
	"nitro/internal/obs"
	"nitro/internal/par"
)

// Config controls corpus construction.
type Config struct {
	// Seed drives every generator; corpora are fully deterministic in it.
	Seed int64
	// Scale in (0, 1] shrinks instance sizes (not corpus counts) for fast
	// tests and benchmarks; 1 reproduces the evaluation scale.
	Scale float64
	// TrainCount / TestCount override the paper's corpus sizes when > 0.
	TrainCount int
	TestCount  int
	// Parallelism caps the worker count of each builder's labelling stage
	// (running every variant on every input): 0 uses all cores, 1 runs
	// serially. Input generation stays serial either way — the seeded RNG
	// stream is consumed in instance order — so corpora are bit-identical
	// at every setting.
	Parallelism int
	// Phases, when non-nil, accumulates per-phase wall time for corpus
	// construction ("generate" for the serial seeded generation, "label" for
	// the parallel exhaustive-search labelling); the nil tracker is a valid
	// no-op.
	Phases *obs.PhaseTracker
}

// workers resolves the Parallelism knob for the labelling stage.
func (c Config) workers() int { return par.Workers(c.Parallelism) }

// Norm fills defaults: seed 42, scale 1.
func (c Config) Norm() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	return c
}

func (c Config) counts(paperTrain, paperTest int) (int, int) {
	tr, te := paperTrain, paperTest
	if c.TrainCount > 0 {
		tr = c.TrainCount
	}
	if c.TestCount > 0 {
		te = c.TestCount
	}
	return tr, te
}

// scaled shrinks a size linearly with Scale, with a floor.
func (c Config) scaled(base, min int) int {
	v := int(float64(base) * c.Scale)
	if v < min {
		v = min
	}
	return v
}

// scaledSide shrinks a 2-D side length with sqrt(Scale), with a floor.
func (c Config) scaledSide(base, min int) int {
	v := int(float64(base) * math.Sqrt(c.Scale))
	if v < min {
		v = min
	}
	return v
}

// host is the feature-evaluation cost model (the features run on the CPU).
var host = gpusim.DefaultHost()

// SuiteBuilder names one benchmark corpus builder.
type SuiteBuilder struct {
	Name  string
	Build func(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error)
}

// Builders returns the five benchmark corpus builders in the paper's order.
func Builders() []SuiteBuilder {
	return []SuiteBuilder{
		{Name: "SpMV", Build: SpMV},
		{Name: "Solvers", Build: Solver},
		{Name: "BFS", Build: BFS},
		{Name: "Histogram", Build: Histogram},
		{Name: "Sort", Build: Sort},
	}
}

// All builds every benchmark suite. Builders are independent and seeded per
// suite, so they run concurrently without affecting determinism.
func All(cfg Config, dev *gpusim.Device) ([]*autotuner.Suite, error) {
	builders := Builders()
	out := make([]*autotuner.Suite, len(builders))
	errs := make([]error, len(builders))
	var wg sync.WaitGroup
	for i, b := range builders {
		wg.Add(1)
		go func(i int, b SuiteBuilder) {
			defer wg.Done()
			out[i], errs[i] = b.Build(cfg, dev)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
