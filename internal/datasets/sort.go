package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"nitro/internal/autotuner"
	"nitro/internal/gpusim"
	"nitro/internal/par"
	"nitro/internal/sortbench"
)

// sortCategories are the paper's three test categories; the training set
// additionally mixes in normal/exponential keys (which the paper found
// indistinguishable from uniform).
var sortCategories = []string{"uniform", "reverse", "almost"}

func sortKeys(category string, i, n int, rng *rand.Rand) []float64 {
	seed := rng.Int63()
	switch category {
	case "uniform":
		switch i % 3 {
		case 1:
			return sortbench.NormalKeys(n, seed)
		case 2:
			return sortbench.ExponentialKeys(n, seed)
		default:
			return sortbench.UniformKeys(n, seed)
		}
	case "reverse":
		return sortbench.ReverseSortedKeys(n, seed)
	default: // almost sorted: 20-25% of keys swapped locally
		frac := 0.20 + 0.0125*float64(i%5)
		window := 32 << (i % 3)
		return sortbench.AlmostSortedKeys(n, frac, window, seed)
	}
}

// Sort builds the sorting suite (paper: 120 training / 600 test sequences —
// half 32-bit, half 64-bit keys — over Merge, Locality and Radix sorts; key
// lengths 100K-20M in the paper, scaled down here).
func Sort(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error) {
	cfg = cfg.Norm()
	nTrain, nTest := cfg.counts(120, 600)
	s := &autotuner.Suite{
		Name:           "Sort",
		VariantNames:   sortbench.VariantNames(),
		FeatureNames:   sortbench.FeatureNames(),
		DefaultVariant: 0, // Merge: competitive on both key widths
	}
	build := func(n int, seedOff int64) []autotuner.Instance {
		// Phase 1 (serial): generate key sequences and features in instance
		// order so the RNG stream is consumed deterministically.
		stopGen := cfg.Phases.Start("generate")
		rng := rand.New(rand.NewSource(cfg.Seed + seedOff))
		out := make([]autotuner.Instance, n)
		probs := make([]*sortbench.Problem, n)
		for i := 0; i < n; i++ {
			bits := 32
			if i%2 == 1 {
				bits = 64
			}
			category := sortCategories[(i/2)%len(sortCategories)]
			// The paper sorts 100K-20M keys; at tiny sizes kernel-launch
			// overhead would mask the pass-count crossovers, so keep keys
			// large enough for traffic to dominate.
			size := cfg.scaled(32768*(1+i%8), 2048)
			keys := sortKeys(category, i/2/len(sortCategories), size, rng)
			p, err := sortbench.NewProblem(keys, bits)
			if err != nil {
				panic(err) // generator bug: sizes/widths always valid
			}
			f := sortbench.ComputeFeatures(p)
			probs[i] = p
			out[i] = autotuner.Instance{
				ID:       fmt.Sprintf("%s-%dbit-%d", category, bits, i),
				Features: f.Vector(),
				FeatureCosts: []float64{
					host.Constant(), // N
					host.Constant(), // Nbits
					host.Scan(float64(size*bits/8), 1, bits/8), // NAscSeq
				},
			}
		}
		stopGen()
		// Phase 2 (parallel): label each sequence by exhaustive search.
		defer cfg.Phases.Start("label")()
		par.For(n, cfg.workers(), func(i int) {
			var times []float64
			for _, v := range sortbench.Variants() {
				res, err := v.Run(probs[i], dev)
				if err != nil {
					times = append(times, math.Inf(1))
					continue
				}
				times = append(times, res.Seconds)
			}
			out[i].Times = times
		})
		return out
	}
	s.Train = build(nTrain, 41)
	s.Test = build(nTest, 42)
	return s, nil
}
