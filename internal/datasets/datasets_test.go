package datasets

import (
	"math"
	"reflect"
	"testing"

	"nitro/internal/autotuner"
	"nitro/internal/gpusim"
)

// smallCfg keeps suite construction fast in unit tests.
func smallCfg() Config {
	return Config{Seed: 7, Scale: 0.15, TrainCount: 14, TestCount: 21}
}

func checkSuite(t *testing.T, s *autotuner.Suite, wantVariants int) {
	t.Helper()
	if len(s.VariantNames) != wantVariants {
		t.Fatalf("%s: %d variants, want %d", s.Name, len(s.VariantNames), wantVariants)
	}
	if len(s.Train) != 14 || len(s.Test) != 21 {
		t.Fatalf("%s: corpus sizes %d/%d", s.Name, len(s.Train), len(s.Test))
	}
	if s.DefaultVariant < 0 || s.DefaultVariant >= wantVariants {
		t.Fatalf("%s: default variant %d out of range", s.Name, s.DefaultVariant)
	}
	labels := map[int]int{}
	for _, set := range [][]autotuner.Instance{s.Train, s.Test} {
		for _, in := range set {
			if len(in.Features) != len(s.FeatureNames) {
				t.Fatalf("%s: instance %s has %d features, want %d", s.Name, in.ID, len(in.Features), len(s.FeatureNames))
			}
			if len(in.Times) != wantVariants {
				t.Fatalf("%s: instance %s has %d times", s.Name, in.ID, len(in.Times))
			}
			if len(in.FeatureCosts) != len(in.Features) {
				t.Fatalf("%s: instance %s feature costs misaligned", s.Name, in.ID)
			}
			for _, f := range in.Features {
				if math.IsNaN(f) {
					t.Fatalf("%s: NaN feature in %s", s.Name, in.ID)
				}
			}
			for _, tm := range in.Times {
				if tm <= 0 && !math.IsInf(tm, 1) {
					t.Fatalf("%s: non-positive time in %s", s.Name, in.ID)
				}
			}
			if b, _ := in.Best(); b >= 0 {
				labels[b]++
			}
		}
	}
	if len(labels) < 2 {
		t.Errorf("%s: only %d distinct best-variant labels — corpus not diverse: %v", s.Name, len(labels), labels)
	}
	// The default variant is the deployment fallback: it must be feasible
	// on the large majority of feasible training instances (hard solver
	// systems may defeat even the fallback, as in the paper).
	feasible, defOK := 0, 0
	for _, in := range s.Train {
		if b, _ := in.Best(); b < 0 {
			continue
		}
		feasible++
		if !math.IsInf(in.Times[s.DefaultVariant], 1) {
			defOK++
		}
	}
	if feasible > 0 && float64(defOK)/float64(feasible) < 0.8 {
		t.Errorf("%s: default variant feasible on only %d of %d instances", s.Name, defOK, feasible)
	}
}

func TestSpMVSuite(t *testing.T) {
	s, err := SpMV(smallCfg(), gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	checkSuite(t, s, 6)
}

func TestSolverSuite(t *testing.T) {
	s, err := Solver(smallCfg(), gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	checkSuite(t, s, 6)
	// The corpus must include systems where some variant fails to converge
	// (the paper's at-risk instances) — the hard group guarantees it.
	atRisk := 0
	for _, in := range s.Test {
		for _, tm := range in.Times {
			if math.IsInf(tm, 1) {
				atRisk++
				break
			}
		}
	}
	if atRisk == 0 {
		t.Error("solver corpus has no instance with a failing variant")
	}
}

func TestBFSSuite(t *testing.T) {
	s, err := BFS(smallCfg(), gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	checkSuite(t, s, 6)
	hybrid, err := BFSHybridTimes(smallCfg(), gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	if len(hybrid) != len(s.Test) {
		t.Fatalf("hybrid times %d, test %d", len(hybrid), len(s.Test))
	}
	// Hybrid adapts per level, so it may edge out the best *fixed* variant
	// on individual graphs, but on average it must trail the oracle (the
	// paper puts it at ~88% of best) and never win by a large margin.
	var ratioSum float64
	n := 0
	for i, in := range s.Test {
		b, bestT := in.Best()
		if b < 0 {
			continue
		}
		if hybrid[i] < bestT*0.8 {
			t.Errorf("hybrid beats oracle by >25%% on %s: %v vs %v", in.ID, hybrid[i], bestT)
		}
		ratioSum += bestT / hybrid[i]
		n++
	}
	if n > 0 && ratioSum/float64(n) > 1.0 {
		t.Errorf("hybrid better than oracle on average (%.3f) — baseline too strong", ratioSum/float64(n))
	}
}

func TestHistogramSuite(t *testing.T) {
	s, err := Histogram(smallCfg(), gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	checkSuite(t, s, 6)
}

func TestSortSuite(t *testing.T) {
	s, err := Sort(smallCfg(), gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	checkSuite(t, s, 3)
}

func TestSuitesDeterministic(t *testing.T) {
	cfg := smallCfg()
	a, err := Sort(cfg, gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sort(cfg, gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Test {
		for j := range a.Test[i].Times {
			if a.Test[i].Times[j] != b.Test[i].Times[j] {
				t.Fatalf("suite not deterministic at instance %d variant %d", i, j)
			}
		}
	}
}

// TestSuitesParallelismInvariant asserts the two-phase builders' guarantee:
// corpora are bit-identical at every Parallelism setting, because instance
// generation consumes the seeded RNG serially and only the RNG-free variant
// labelling fans out over workers.
func TestSuitesParallelismInvariant(t *testing.T) {
	for _, b := range Builders() {
		serial, parallel := smallCfg(), smallCfg()
		serial.Parallelism = 1
		parallel.Parallelism = 4
		s1, err := b.Build(serial, gpusim.Fermi())
		if err != nil {
			t.Fatalf("%s serial: %v", b.Name, err)
		}
		s4, err := b.Build(parallel, gpusim.Fermi())
		if err != nil {
			t.Fatalf("%s parallel: %v", b.Name, err)
		}
		if !reflect.DeepEqual(s1, s4) {
			t.Errorf("%s: suite differs between Parallelism 1 and 4", b.Name)
		}
	}
}

func TestConfigNorm(t *testing.T) {
	c := Config{}.Norm()
	if c.Seed != 42 || c.Scale != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if got := (Config{Scale: 0.5}).Norm().scaled(100, 10); got != 50 {
		t.Errorf("scaled = %d", got)
	}
	if got := (Config{Scale: 0.01}).Norm().scaled(100, 10); got != 10 {
		t.Errorf("floor = %d", got)
	}
	tr, te := Config{TrainCount: 5}.Norm().counts(54, 100)
	if tr != 5 || te != 100 {
		t.Errorf("counts override wrong: %d %d", tr, te)
	}
}

func TestBuildersComplete(t *testing.T) {
	bs := Builders()
	if len(bs) != 5 {
		t.Fatalf("want 5 builders, got %d", len(bs))
	}
	names := []string{"SpMV", "Solvers", "BFS", "Histogram", "Sort"}
	for i, b := range bs {
		if b.Name != names[i] {
			t.Errorf("builder %d = %s, want %s", i, b.Name, names[i])
		}
	}
}

func TestTrainOnEachSuite(t *testing.T) {
	// End-to-end sanity: every suite must be learnable well above chance.
	suites, err := All(smallCfg(), gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range suites {
		model, rep, err := autotuner.Train(s.Train, autotuner.TrainOptions{Classifier: "svm"})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if rep.TrainAccuracy < 0.5 {
			t.Errorf("%s: train accuracy %v", s.Name, rep.TrainAccuracy)
		}
		eval := autotuner.Evaluate(model, s, s.Test)
		if eval.MeanPerf < 0.6 {
			t.Errorf("%s: tiny-corpus mean perf %v — suite may be unlearnable", s.Name, eval.MeanPerf)
		}
	}
}

func TestExtendedSuites(t *testing.T) {
	cfg := smallCfg()
	dev := gpusim.Fermi()
	spmv, err := SpMVExtended(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(spmv.VariantNames) != 8 {
		t.Fatalf("SpMV extended variants = %v", spmv.VariantNames)
	}
	checkSuite(t, spmv, 8)
	solv, err := SolverExtended(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(solv.VariantNames) != 9 {
		t.Fatalf("Solver extended variants = %v", solv.VariantNames)
	}
	checkSuite(t, solv, 9)

	// The extension sets prepend the base variants, so base suites are
	// exact prefixes: times of shared variants must agree bit-for-bit.
	base, err := SpMV(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Test {
		for v := range base.Test[i].Times {
			if base.Test[i].Times[v] != spmv.Test[i].Times[v] {
				t.Fatalf("extended suite changed base variant time at instance %d variant %d", i, v)
			}
		}
	}
}

func TestKeplerSuiteDiffers(t *testing.T) {
	cfg := smallCfg()
	fermi, err := SpMV(cfg, gpusim.Fermi())
	if err != nil {
		t.Fatal(err)
	}
	kepler, err := SpMV(cfg, gpusim.Kepler())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range fermi.Test {
		for v := range fermi.Test[i].Times {
			if fermi.Test[i].Times[v] != kepler.Test[i].Times[v] {
				same = false
			}
		}
		for j, f := range fermi.Test[i].Features {
			if kepler.Test[i].Features[j] != f {
				t.Fatal("features must be device-independent")
			}
		}
	}
	if same {
		t.Error("Kepler and Fermi produced identical cost surfaces")
	}
}
