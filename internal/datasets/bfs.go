package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"nitro/internal/autotuner"
	"nitro/internal/gpusim"
	"nitro/internal/graph"
	"nitro/internal/par"
)

// bfsGroups spans the degree/diameter axis of the DIMACS10 suite: meshes
// (low degree, high diameter), social-network-like RMAT graphs (high skewed
// degree, low diameter), uniform random-regular graphs, small worlds and hub
// stars.
var bfsGroups = []string{"grid2d", "rmat", "regular", "grid3d", "smallworld", "star"}

// bfsSourcesPerGraph is the number of randomly chosen traversal sources per
// graph. The paper uses 100; the reproduction defaults to 3 to keep suite
// construction fast — relative variant ordering is insensitive to the count
// because all variants price the same cached traversals.
const bfsSourcesPerGraph = 3

func bfsGraph(group string, i int, cfg Config, rng *rand.Rand) *graph.Graph {
	seed := rng.Int63()
	switch group {
	case "grid2d":
		side := cfg.scaledSide(60+20*(i%4), 12)
		return graph.Grid2D(side, side+i%5)
	case "rmat":
		scale := 10 + i%3
		if cfg.Scale < 0.5 {
			scale = 9 + i%2
		}
		return graph.RMAT(scale, 12+6*(i%3), seed)
	case "regular":
		n := cfg.scaled(4000+1500*(i%4), 400)
		return graph.RandomRegular(n, 3+3*(i%5), seed)
	case "grid3d":
		side := cfg.scaledSide(16+3*(i%4), 5)
		return graph.Grid3D(side, side, side)
	case "smallworld":
		n := cfg.scaled(5000+1500*(i%4), 500)
		return graph.SmallWorld(n, 2+i%3, 0.05+0.1*float64(i%3), seed)
	default: // star
		hubs := 4 + i%5
		leaves := cfg.scaled(800+300*(i%3), 80)
		return graph.Star(hubs, leaves, seed)
	}
}

// BFS builds the breadth-first-search suite (paper: 20 training / 148 test
// graphs over six Back40 variants, TEPS metric).
func BFS(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error) {
	return bfsSuite(cfg, dev, "BFS", graph.Variants(), graph.VariantNames())
}

// BFSExtended builds the same corpus over the seven-variant extension set
// (the paper's six plus direction-optimizing BFS).
func BFSExtended(cfg Config, dev *gpusim.Device) (*autotuner.Suite, error) {
	return bfsSuite(cfg, dev, "BFS+ext", graph.ExtendedVariants(), graph.ExtendedVariantNames())
}

func bfsSuite(cfg Config, dev *gpusim.Device, name string, variants []graph.Variant, names []string) (*autotuner.Suite, error) {
	cfg = cfg.Norm()
	nTrain, nTest := cfg.counts(20, 148)
	s := &autotuner.Suite{
		Name:           name,
		VariantNames:   names,
		FeatureNames:   graph.FeatureNames(),
		DefaultVariant: 2, // CE-Fused: robust across the corpus
	}
	build := func(n int, seedOff int64) []autotuner.Instance {
		// Phase 1 (serial): generate graphs, sources and features in
		// instance order so the RNG stream is consumed deterministically.
		stopGen := cfg.Phases.Start("generate")
		rng := rand.New(rand.NewSource(cfg.Seed + seedOff))
		out := make([]autotuner.Instance, n)
		probs := make([]*graph.Problem, n)
		for i := 0; i < n; i++ {
			group := bfsGroups[i%len(bfsGroups)]
			g := bfsGraph(group, i/len(bfsGroups), cfg, rng)
			sources := make([]int, bfsSourcesPerGraph)
			for k := range sources {
				sources[k] = rng.Intn(g.V)
			}
			p, err := graph.NewProblem(g, sources)
			if err != nil {
				panic(err) // generator bug: sources are always in range
			}
			f := graph.ComputeFeatures(g)
			probs[i] = p
			out[i] = autotuner.Instance{
				ID:       fmt.Sprintf("%s-%d", group, i),
				Features: f.Vector(),
				FeatureCosts: []float64{
					host.Constant(),                 // AvgOutDeg = E/V
					host.Scan(float64(4*g.V), 2, 4), // Deg-SD
					host.Scan(float64(4*g.V), 1, 4), // MaxDeviation
					host.Constant(),                 // Nvertices
					host.Constant(),                 // Nedges
				},
			}
		}
		stopGen()
		// Phase 2 (parallel): label each graph by exhaustive search.
		defer cfg.Phases.Start("label")()
		par.For(n, cfg.workers(), func(i int) {
			var times []float64
			for _, v := range variants {
				res, err := v.Run(probs[i], dev)
				if err != nil {
					times = append(times, math.Inf(1))
					continue
				}
				times = append(times, res.Seconds)
			}
			out[i].Times = times
		})
		return out
	}
	s.Train = build(nTrain, 21)
	s.Test = build(nTest, 22)
	return s, nil
}

// BFSHybridTimes returns the Hybrid baseline's simulated time for every test
// instance of a freshly generated corpus matching cfg (same seeds as BFS),
// for the paper's Nitro-vs-Hybrid comparison.
func BFSHybridTimes(cfg Config, dev *gpusim.Device) ([]float64, error) {
	cfg = cfg.Norm()
	_, nTest := cfg.counts(20, 148)
	rng := rand.New(rand.NewSource(cfg.Seed + 22))
	out := make([]float64, 0, nTest)
	for i := 0; i < nTest; i++ {
		group := bfsGroups[i%len(bfsGroups)]
		g := bfsGraph(group, i/len(bfsGroups), cfg, rng)
		sources := make([]int, bfsSourcesPerGraph)
		for k := range sources {
			sources[k] = rng.Intn(g.V)
		}
		p, err := graph.NewProblem(g, sources)
		if err != nil {
			return nil, err
		}
		res, err := graph.Hybrid(p, dev)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Seconds)
	}
	return out, nil
}
