package ensemble

import (
	"math"
	"reflect"
	"testing"
)

// TestBanditOptimisticInit asserts each eligible arm is tried once, lowest
// index first, before any UCB ordering kicks in.
func TestBanditOptimisticInit(t *testing.T) {
	bd := NewBandit(0, 0)
	x := []float64{0.5, -0.5}
	eligible := []int{2, 0, 3}
	got := bd.Select(x, eligible)
	if got != 2 {
		t.Fatalf("first select = %d, want first eligible 2", got)
	}
	bd.Update(2, x, 0.1)
	if got := bd.Select(x, eligible); got != 0 {
		t.Fatalf("second select = %d, want next unpulled arm 0", got)
	}
	bd.Update(0, x, 0.1)
	if got := bd.Select(x, eligible); got != 3 {
		t.Fatalf("third select = %d, want last unpulled arm 3", got)
	}
	if bd.Select(x, nil) != -1 {
		t.Fatal("empty eligible set must return -1")
	}
}

// TestBanditLearnsContextualArm feeds a reward structure where the best arm
// flips with the sign of the first feature, and asserts LinUCB routes each
// context to its own winner — the property epsilon-greedy uniform cannot
// express.
func TestBanditLearnsContextualArm(t *testing.T) {
	bd := NewBandit(0.3, 1)
	reward := func(arm int, x []float64) float64 {
		if (x[0] > 0) == (arm == 1) {
			return 1
		}
		return -1
	}
	ctxs := [][]float64{{1, 0.2}, {-1, 0.4}}
	eligible := []int{0, 1}
	for i := 0; i < 200; i++ {
		x := ctxs[i%2]
		arm := bd.Select(x, eligible)
		bd.Update(arm, x, reward(arm, x))
	}
	if got := bd.Select([]float64{1, 0.3}, eligible); got != 1 {
		t.Fatalf("positive context routed to arm %d, want 1", got)
	}
	if got := bd.Select([]float64{-1, 0.3}, eligible); got != 0 {
		t.Fatalf("negative context routed to arm %d, want 0", got)
	}
	if bd.Pulls() != 200 {
		t.Fatalf("pulls = %d, want 200", bd.Pulls())
	}
}

// TestBanditDeterministicReplay runs the same decision stream twice and
// asserts identical selections — the replay-determinism contract the online
// engine depends on.
func TestBanditDeterministicReplay(t *testing.T) {
	run := func() []int {
		bd := NewBandit(1, 1)
		var picks []int
		for i := 0; i < 50; i++ {
			x := []float64{math.Sin(float64(i)), math.Cos(float64(i) * 0.7)}
			arm := bd.Select(x, []int{0, 1, 2})
			picks = append(picks, arm)
			bd.Update(arm, x, math.Sin(float64(i)*1.3))
		}
		return picks
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("bandit replay diverged:\n%v\n%v", a, b)
	}
}

// TestBanditStateRoundTrip asserts a snapshot restores to a bandit that makes
// identical decisions, and that corrupt snapshots are rejected.
func TestBanditStateRoundTrip(t *testing.T) {
	bd := NewBandit(0.8, 2)
	for i := 0; i < 30; i++ {
		x := []float64{float64(i%5) / 5, 1 - float64(i%3)/3}
		arm := bd.Select(x, []int{0, 1})
		bd.Update(arm, x, float64(i%7)/7-0.5)
	}
	st := bd.State()
	restored := NewBandit(0, 0)
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 20, float64(20-i) / 20}
		if a, b := bd.Select(x, []int{0, 1}), restored.Select(x, []int{0, 1}); a != b {
			t.Fatalf("restored bandit diverged at %d: %d vs %d", i, a, b)
		}
	}
	if !reflect.DeepEqual(bd.State(), restored.State()) {
		t.Fatal("restored state does not round-trip")
	}

	bad := st
	bad.Arms = append([]BanditArmDup(nil), st.Arms...)
	bad.Arms[0].A = bad.Arms[0].A[:1]
	if err := NewBandit(0, 0).RestoreState(bad); err == nil {
		t.Fatal("corrupt arm shape must be rejected")
	}
	dup := st
	dup.Arms = append(append([]BanditArmDup(nil), st.Arms...), st.Arms[0])
	if err := NewBandit(0, 0).RestoreState(dup); err == nil {
		t.Fatal("duplicate arm must be rejected")
	}
}
