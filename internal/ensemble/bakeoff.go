package ensemble

import (
	"errors"
	"math"
)

// BakeoffConfig tunes the sequential stopper. The zero value selects the
// defaults shown on each field.
type BakeoffConfig struct {
	// MinSamples is the floor before any verdict (default 8) — below it the
	// t statistic is too noisy to act on.
	MinSamples int `json:"min_samples,omitempty"`
	// MaxSamples caps the experiment (default 200); reaching it without a
	// verdict times out and the incumbent stays.
	MaxSamples int `json:"max_samples,omitempty"`
	// Z is the paired-t stopping bound (default 2.0, ≈95% two-sided): promote
	// when t ≥ Z, reject when t ≤ -Z.
	Z float64 `json:"z,omitempty"`
	// MinEffect is the minimum mean relative improvement that counts as a
	// win (default 0.005, i.e. 0.5%) — guards against promoting a
	// statistically significant but practically irrelevant speedup.
	MinEffect float64 `json:"min_effect,omitempty"`
}

func (c BakeoffConfig) normalized() BakeoffConfig {
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 200
	}
	if c.MaxSamples < c.MinSamples {
		c.MaxSamples = c.MinSamples
	}
	if c.Z <= 0 {
		c.Z = 2.0
	}
	if c.MinEffect <= 0 {
		c.MinEffect = 0.005
	}
	return c
}

// Verdict is a bakeoff outcome.
type Verdict int

const (
	// Undecided means the stopper wants more paired samples.
	Undecided Verdict = iota
	// Promote means the challenger is statistically faster: hot-swap it.
	Promote
	// Reject means the challenger is statistically slower (or not better by
	// MinEffect): keep the incumbent.
	Reject
	// Timeout means MaxSamples elapsed without significance: keep the
	// incumbent — absence of evidence is not a promotion.
	Timeout
)

// String names the verdict for events and logs.
func (v Verdict) String() string {
	switch v {
	case Promote:
		return "promote"
	case Reject:
		return "reject"
	case Timeout:
		return "timeout"
	default:
		return "undecided"
	}
}

// Bakeoff is a sequential paired-timing experiment: challenger vs incumbent
// on the same live inputs. Each Observe feeds one paired relative delta
// d = (t_incumbent − t_challenger) / t_incumbent (positive → challenger
// faster); the stopper runs a paired-t test after every sample and stops the
// moment the evidence clears the bound, instead of burning a fixed holdout
// budget. State is three floats — Snapshot/Restore make it journalable so a
// daemon crash mid-bakeoff resumes the experiment, like a canary.
//
// Not goroutine-safe; callers serialize access.
type Bakeoff struct {
	cfg   BakeoffConfig
	n     int
	sum   float64
	sumsq float64
}

// NewBakeoff returns an empty experiment with the normalized config.
func NewBakeoff(cfg BakeoffConfig) *Bakeoff {
	return &Bakeoff{cfg: cfg.normalized()}
}

// Config returns the normalized configuration in force.
func (b *Bakeoff) Config() BakeoffConfig { return b.cfg }

// N returns the paired samples observed so far.
func (b *Bakeoff) N() int { return b.n }

// Mean returns the running mean relative improvement of the challenger.
func (b *Bakeoff) Mean() float64 {
	if b.n == 0 {
		return 0
	}
	return b.sum / float64(b.n)
}

// TStat returns the paired-t statistic of the mean against zero; 0 until two
// samples exist, ±Inf when the deltas have zero variance.
func (b *Bakeoff) TStat() float64 {
	if b.n < 2 {
		return 0
	}
	mean := b.Mean()
	variance := (b.sumsq - b.sum*mean) / float64(b.n-1)
	if variance <= 0 {
		if mean > 0 {
			return math.Inf(1)
		}
		if mean < 0 {
			return math.Inf(-1)
		}
		return 0
	}
	return mean / math.Sqrt(variance/float64(b.n))
}

// Observe folds one paired delta in and returns the verdict so far. Non-
// finite deltas are clamped into [-1, 1] like real ones, so a single wild
// timing cannot force a verdict by itself.
func (b *Bakeoff) Observe(delta float64) Verdict {
	if math.IsNaN(delta) {
		return b.Verdict()
	}
	if delta > 1 {
		delta = 1
	}
	if delta < -1 {
		delta = -1
	}
	b.n++
	b.sum += delta
	b.sumsq += delta * delta
	return b.Verdict()
}

// Verdict evaluates the stopping rule on the current state without adding a
// sample.
func (b *Bakeoff) Verdict() Verdict {
	if b.n < b.cfg.MinSamples {
		return Undecided
	}
	t, mean := b.TStat(), b.Mean()
	switch {
	case t >= b.cfg.Z && mean >= b.cfg.MinEffect:
		return Promote
	case t <= -b.cfg.Z:
		return Reject
	case b.n >= b.cfg.MaxSamples:
		return Timeout
	default:
		return Undecided
	}
}

// BakeoffState is the journalable snapshot of a running experiment.
type BakeoffState struct {
	Config BakeoffConfig `json:"config"`
	N      int           `json:"n"`
	Sum    float64       `json:"sum"`
	SumSq  float64       `json:"sumsq"`
}

// Snapshot captures the experiment for the write-ahead journal.
func (b *Bakeoff) Snapshot() BakeoffState {
	return BakeoffState{Config: b.cfg, N: b.n, Sum: b.sum, SumSq: b.sumsq}
}

// RestoreBakeoff rebuilds an experiment from a journaled snapshot; a resumed
// bakeoff continues exactly where the crashed run stopped and converges to
// the same verdict on the same sample stream.
func RestoreBakeoff(st BakeoffState) (*Bakeoff, error) {
	if st.N < 0 || math.IsNaN(st.Sum) || math.IsNaN(st.SumSq) || st.SumSq < 0 {
		return nil, errors.New("ensemble: corrupt bakeoff snapshot")
	}
	b := NewBakeoff(st.Config)
	b.n, b.sum, b.sumsq = st.N, st.Sum, st.SumSq
	return b, nil
}
