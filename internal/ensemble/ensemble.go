// Package ensemble is the adaptive-selection subsystem layered over
// internal/ml's committee classifier: a parallel ensemble trainer, a LinUCB
// contextual bandit that spends exploration where the committee is unsure,
// and a sequential paired-timing bakeoff that promotes challenger models on
// statistical evidence instead of a fixed temporal holdout.
//
// The pieces compose into one loop: the ensemble's calibrated confidence
// flags the calls worth exploring, the bandit picks which alternate variant
// to re-time on those calls, the labelled timings feed retraining, and the
// bakeoff decides — promote, reject, or time out — from live paired deltas.
// internal/online wires the loop to dispatch; internal/server journals
// bakeoff state so a daemon crash resumes the experiment like a canary.
package ensemble

import (
	"nitro/internal/ml"
)

// Options configures Train.
type Options struct {
	// Members are the committee members to fit; nil uses
	// ml.DefaultEnsembleMembers (SVM + 3-NN + CART + logistic).
	Members []ml.Classifier
	// Folds is the cross-validation fold count for member weighting and
	// confidence calibration (default 3).
	Folds int
	// Seed fixes fold assignment; Train is deterministic for a given seed.
	Seed int64
	// Parallelism caps concurrent member×fold fits: 0 = all cores, 1 =
	// serial. Bit-identical results at any setting.
	Parallelism int
}

// Train fits an agreement-weighted voting ensemble on the (already scaled)
// dataset, fanning member×fold jobs over internal/par. The returned
// classifier plugs into the ml.Model envelope exactly like a single SVM.
func Train(ds *ml.Dataset, opts Options) (*ml.Ensemble, error) {
	e := ml.NewEnsemble(opts.Members...)
	e.Folds = opts.Folds
	e.Seed = opts.Seed
	e.Parallelism = opts.Parallelism
	if err := e.Fit(ds); err != nil {
		return nil, err
	}
	return e, nil
}
