package ensemble

import (
	"errors"
	"math"
)

// Bandit is a LinUCB contextual bandit over scaled feature vectors: one
// linear reward model per arm (variant index), selected by upper confidence
// bound. It replaces epsilon-greedy uniform re-timing in the online explore
// path — instead of re-timing a uniformly random alternate, the bandit
// re-times the alternate whose payoff is most uncertain-or-promising for
// *this* input, so exploration samples concentrate where the decision
// boundary actually moved.
//
// Everything is deterministic: selection is a pure argmax with a lowest-index
// tie break and unpulled arms are optimistically infinite (each eligible arm
// is tried once before any UCB math matters), so a seeded replay produces a
// byte-identical timeline. The struct is not goroutine-safe; the online
// engine serializes access under its own mutex.
type Bandit struct {
	// Alpha scales the confidence width (default 1.0): larger explores more.
	Alpha float64
	// Ridge is the l2 prior λ on each arm's design matrix (default 1.0).
	Ridge float64

	d    int // augmented dimension (features + bias)
	arms map[int]*banditArm
}

type banditArm struct {
	// a is the d×d design matrix λI + Σ x·xᵀ, stored row-major; b is Σ r·x.
	a []float64
	b []float64
	n int
}

// NewBandit returns an empty bandit; non-positive parameters select the
// defaults.
func NewBandit(alpha, ridge float64) *Bandit {
	if alpha <= 0 {
		alpha = 1
	}
	if ridge <= 0 {
		ridge = 1
	}
	return &Bandit{Alpha: alpha, Ridge: ridge, arms: make(map[int]*banditArm)}
}

// augment appends the bias term so arms can learn input-independent offsets.
func (bd *Bandit) augment(x []float64) []float64 {
	ax := make([]float64, len(x)+1)
	copy(ax, x)
	ax[len(x)] = 1
	return ax
}

func (bd *Bandit) arm(id, d int) *banditArm {
	if arm, ok := bd.arms[id]; ok {
		return arm
	}
	arm := &banditArm{a: make([]float64, d*d), b: make([]float64, d)}
	for i := 0; i < d; i++ {
		arm.a[i*d+i] = bd.Ridge
	}
	bd.arms[id] = arm
	return arm
}

// Select returns the eligible arm with the highest upper confidence bound
// θᵀx + α·√(xᵀA⁻¹x) for context x. Unpulled arms rank +Inf (optimistic
// initialization); ties break toward the lowest arm index. Returns -1 when
// eligible is empty.
func (bd *Bandit) Select(x []float64, eligible []int) int {
	if len(eligible) == 0 {
		return -1
	}
	ax := bd.augment(x)
	if bd.d == 0 {
		bd.d = len(ax)
	}
	best, bestUCB := -1, math.Inf(-1)
	for _, id := range eligible {
		arm, ok := bd.arms[id]
		ucb := math.Inf(1)
		if ok && arm.n > 0 && len(ax) == bd.d {
			theta, ainvX := solveArm(arm, bd.d, ax)
			var mean, width float64
			for i := range ax {
				mean += theta[i] * ax[i]
				width += ainvX[i] * ax[i]
			}
			if width < 0 {
				width = 0
			}
			ucb = mean + bd.Alpha*math.Sqrt(width)
		}
		if ucb > bestUCB {
			best, bestUCB = id, ucb
		}
	}
	return best
}

// Update folds one observed (context, arm, reward) triple into the arm's
// linear model.
func (bd *Bandit) Update(id int, x []float64, reward float64) {
	ax := bd.augment(x)
	if bd.d == 0 {
		bd.d = len(ax)
	}
	if len(ax) != bd.d {
		return // dimension changed mid-flight; drop rather than corrupt
	}
	arm := bd.arm(id, bd.d)
	for i := range ax {
		for j := range ax {
			arm.a[i*bd.d+j] += ax[i] * ax[j]
		}
		arm.b[i] += reward * ax[i]
	}
	arm.n++
}

// Pulls returns the total number of rewarded pulls across all arms.
func (bd *Bandit) Pulls() int {
	total := 0
	for _, arm := range bd.arms {
		total += arm.n
	}
	return total
}

// ArmPulls returns the rewarded pull count of one arm.
func (bd *Bandit) ArmPulls(id int) int {
	if arm, ok := bd.arms[id]; ok {
		return arm.n
	}
	return 0
}

// solveArm returns θ = A⁻¹b and A⁻¹x for an arm, via one Gaussian
// elimination with partial pivoting on the two stacked right-hand sides.
// Feature vectors are tiny (≤ ~8 dims), so an O(d³) dense solve per explore
// decision is noise next to the re-timing it gates.
func solveArm(arm *banditArm, d int, x []float64) (theta, ainvX []float64) {
	m := make([]float64, d*(d+2))
	for i := 0; i < d; i++ {
		copy(m[i*(d+2):i*(d+2)+d], arm.a[i*d:(i+1)*d])
		m[i*(d+2)+d] = arm.b[i]
		m[i*(d+2)+d+1] = x[i]
	}
	w := d + 2
	for col := 0; col < d; col++ {
		// Partial pivot: largest |value| in the column, lowest row on ties.
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(m[r*w+col]) > math.Abs(m[piv*w+col]) {
				piv = r
			}
		}
		if piv != col {
			for c := 0; c < w; c++ {
				m[col*w+c], m[piv*w+c] = m[piv*w+c], m[col*w+c]
			}
		}
		p := m[col*w+col]
		if p == 0 {
			continue // singular column; the ridge prior makes this unreachable
		}
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := m[r*w+col] / p
			if f == 0 {
				continue
			}
			for c := col; c < w; c++ {
				m[r*w+c] -= f * m[col*w+c]
			}
		}
	}
	theta = make([]float64, d)
	ainvX = make([]float64, d)
	for i := 0; i < d; i++ {
		p := m[i*w+i]
		if p == 0 {
			continue
		}
		theta[i] = m[i*w+d] / p
		ainvX[i] = m[i*w+d+1] / p
	}
	return theta, ainvX
}

// BanditState is the serializable snapshot of a bandit (journal/metrics
// plane). Arms are listed in ascending id order so snapshots are
// deterministic.
type BanditState struct {
	Alpha float64        `json:"alpha"`
	Ridge float64        `json:"ridge"`
	D     int            `json:"d"`
	Arms  []BanditArmDup `json:"arms,omitempty"`
}

// BanditArmDup is one arm's state in a BanditState.
type BanditArmDup struct {
	ID int       `json:"id"`
	A  []float64 `json:"a"`
	B  []float64 `json:"b"`
	N  int       `json:"n"`
}

// State snapshots the bandit for journaling.
func (bd *Bandit) State() BanditState {
	st := BanditState{Alpha: bd.Alpha, Ridge: bd.Ridge, D: bd.d}
	ids := make([]int, 0, len(bd.arms))
	for id := range bd.arms {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; arm counts are tiny
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		arm := bd.arms[id]
		st.Arms = append(st.Arms, BanditArmDup{
			ID: id,
			A:  append([]float64(nil), arm.a...),
			B:  append([]float64(nil), arm.b...),
			N:  arm.n,
		})
	}
	return st
}

// RestoreState rebuilds a bandit from a snapshot, validating shapes so a
// corrupted journal cannot install an inconsistent design matrix.
func (bd *Bandit) RestoreState(st BanditState) error {
	if st.D < 0 {
		return errors.New("ensemble: bandit snapshot has negative dimension")
	}
	arms := make(map[int]*banditArm, len(st.Arms))
	for _, a := range st.Arms {
		if len(a.A) != st.D*st.D || len(a.B) != st.D || a.N < 0 {
			return errors.New("ensemble: bandit snapshot arm has inconsistent shape")
		}
		if _, dup := arms[a.ID]; dup {
			return errors.New("ensemble: bandit snapshot has duplicate arm")
		}
		arms[a.ID] = &banditArm{
			a: append([]float64(nil), a.A...),
			b: append([]float64(nil), a.B...),
			n: a.N,
		}
	}
	if st.Alpha > 0 {
		bd.Alpha = st.Alpha
	}
	if st.Ridge > 0 {
		bd.Ridge = st.Ridge
	}
	bd.d = st.D
	bd.arms = arms
	return nil
}
