package ensemble

import (
	"math"
	"testing"
)

// deltas yields a deterministic stream of paired deltas with the given mean
// and a small sawtooth wobble, so t grows with evidence like real timings.
func deltas(mean float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + 0.01*math.Sin(float64(i))
	}
	return out
}

func runBakeoff(b *Bakeoff, ds []float64) (Verdict, int) {
	for _, d := range ds {
		if v := b.Observe(d); v != Undecided {
			return v, b.N()
		}
	}
	return b.Verdict(), b.N()
}

// TestBakeoffPromotesFasterChallenger: a genuinely faster challenger promotes
// well before the max-samples budget — the sample-efficiency claim vs a fixed
// temporal holdout.
func TestBakeoffPromotesFasterChallenger(t *testing.T) {
	b := NewBakeoff(BakeoffConfig{MinSamples: 8, MaxSamples: 200, Z: 2})
	v, n := runBakeoff(b, deltas(0.15, 200))
	if v != Promote {
		t.Fatalf("verdict = %v, want promote", v)
	}
	if n >= 200/2 {
		t.Fatalf("promotion took %d samples; expected early stop well under the 200 budget", n)
	}
}

// TestBakeoffRejectsSlowerChallenger: a slower challenger is rejected, also
// early.
func TestBakeoffRejectsSlowerChallenger(t *testing.T) {
	b := NewBakeoff(BakeoffConfig{MinSamples: 8, MaxSamples: 200, Z: 2})
	v, n := runBakeoff(b, deltas(-0.2, 200))
	if v != Reject {
		t.Fatalf("verdict = %v, want reject", v)
	}
	if n >= 100 {
		t.Fatalf("rejection took %d samples; expected early stop", n)
	}
}

// TestBakeoffTimesOutOnNoise: pure noise neither promotes nor rejects; the
// budget cap returns timeout (incumbent stays).
func TestBakeoffTimesOutOnNoise(t *testing.T) {
	b := NewBakeoff(BakeoffConfig{MinSamples: 8, MaxSamples: 60, Z: 3})
	ds := make([]float64, 60)
	for i := range ds {
		if i%2 == 0 {
			ds[i] = 0.05
		} else {
			ds[i] = -0.05
		}
	}
	v, n := runBakeoff(b, ds)
	if v != Timeout {
		t.Fatalf("verdict = %v after %d, want timeout", v, n)
	}
}

// TestBakeoffMinEffectBlocksTinyWins: a significant but sub-MinEffect
// improvement must not promote.
func TestBakeoffMinEffectBlocksTinyWins(t *testing.T) {
	b := NewBakeoff(BakeoffConfig{MinSamples: 8, MaxSamples: 50, Z: 2, MinEffect: 0.05})
	v, _ := runBakeoff(b, deltas(0.01, 50))
	if v == Promote {
		t.Fatal("sub-MinEffect challenger must not promote")
	}
}

// TestBakeoffResumeConvergesSameVerdict: snapshotting mid-experiment and
// restoring (the crash path) yields the same verdict at the same sample index
// as the uninterrupted run.
func TestBakeoffResumeConvergesSameVerdict(t *testing.T) {
	cfg := BakeoffConfig{MinSamples: 10, MaxSamples: 100, Z: 2}
	stream := deltas(0.12, 100)

	full := NewBakeoff(cfg)
	wantV, wantN := runBakeoff(full, stream)

	crashed := NewBakeoff(cfg)
	for _, d := range stream[:7] { // crash before any verdict is possible
		crashed.Observe(d)
	}
	resumed, err := RestoreBakeoff(crashed.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	gotV, gotN := runBakeoff(resumed, stream[7:])
	if gotV != wantV || gotN != wantN {
		t.Fatalf("resumed run: verdict %v at n=%d, uninterrupted: %v at n=%d", gotV, gotN, wantV, wantN)
	}

	if _, err := RestoreBakeoff(BakeoffState{N: -1}); err == nil {
		t.Fatal("negative sample count must be rejected")
	}
	if _, err := RestoreBakeoff(BakeoffState{Sum: math.NaN()}); err == nil {
		t.Fatal("NaN sum must be rejected")
	}
}

// TestBakeoffClampsWildDeltas: a single absurd timing cannot flip the
// verdict because deltas clamp to [-1, 1] and NaNs are dropped.
func TestBakeoffClampsWildDeltas(t *testing.T) {
	b := NewBakeoff(BakeoffConfig{MinSamples: 4, MaxSamples: 50, Z: 2})
	b.Observe(math.Inf(1))
	if b.Mean() > 1 {
		t.Fatalf("mean %v escaped the clamp", b.Mean())
	}
	n := b.N()
	b.Observe(math.NaN())
	if b.N() != n {
		t.Fatal("NaN delta must not count as a sample")
	}
}
