package solver

import (
	"errors"
	"math"

	"nitro/internal/gpusim"
	"nitro/internal/sparse"
)

// Config controls an iterative solve.
type Config struct {
	// Tol is the relative-residual convergence threshold ||r||/||b||.
	Tol float64
	// MaxIters bounds the iteration count; exceeding it is reported as
	// non-convergence (the paper's "variant did not converge").
	MaxIters int
}

// DefaultConfig returns the evaluation defaults (1e-8, 400).
func DefaultConfig() Config { return Config{Tol: 1e-8, MaxIters: 400} }

// Result is the outcome of one (solver, preconditioner) variant execution.
type Result struct {
	X           []float64
	Iters       int
	Converged   bool
	RelResidual float64
	// Seconds is the simulated GPU time of the whole solve (iterations x
	// per-iteration kernel cost). Non-converged runs still report the time
	// they burned before giving up.
	Seconds float64
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// axpy computes y += alpha*x.
func axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// chargeIteration accounts one Krylov iteration: nSpMV matrix products, one
// preconditioner application, and nVecOps streaming vector kernels (dots and
// axpys, fused two per kernel).
func chargeIteration(run *gpusim.Run, a *sparse.CSR, reuse float64, m Preconditioner, nSpMV, nVecOps int) {
	n := a.Rows
	for s := 0; s < nSpMV; s++ {
		k := run.Launch("spmv", n*run.Device().WarpSize)
		sparse.ChargeCSRSpMV(k, a, reuse)
		run.Done(k)
	}
	kp := run.Launch("precond", n)
	m.Charge(kp)
	run.Done(kp)
	kv := run.Launch("vecops", n)
	kv.GlobalRead(float64(16 * n * nVecOps))
	kv.GlobalWrite(float64(8 * n * nVecOps))
	kv.ComputeDP(float64(2 * n * nVecOps))
	run.Done(kv)
	// Dot products require a host-visible reduction (pipeline bubble).
	run.HostSync()
}

// CG solves A x = b for symmetric positive-definite A with preconditioned
// conjugate gradients. On indefinite or non-symmetric systems the iteration
// breaks down or stagnates, which is reported as non-convergence — exactly
// the failure mode the paper's model learns to dodge.
func CG(a *sparse.CSR, b []float64, m Preconditioner, cfg Config, dev *gpusim.Device) (Result, error) {
	n := a.Rows
	if len(b) != n {
		return Result{}, errors.New("solver: rhs dimension mismatch")
	}
	run := gpusim.NewRun(dev)
	reuse := sparse.XReuse(a)

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	m.Apply(r, z)
	p := append([]float64(nil), z...)
	ap := make([]float64, n)

	bnorm := norm2(b)
	if bnorm == 0 {
		return Result{X: x, Converged: true, Seconds: run.Seconds()}, nil
	}
	rz := dot(r, z)
	res := Result{X: x}
	for it := 1; it <= cfg.MaxIters; it++ {
		a.MulVec(p, ap)
		pap := dot(p, ap)
		chargeIteration(run, a, reuse, m, 1, 6)
		res.Iters = it
		if pap <= 0 || math.IsNaN(pap) {
			break // breakdown: A not SPD along this direction
		}
		alpha := rz / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		rn := norm2(r)
		res.RelResidual = rn / bnorm
		if res.RelResidual <= cfg.Tol {
			res.Converged = true
			break
		}
		if math.IsNaN(rn) || math.IsInf(rn, 0) || res.RelResidual > 1e8 {
			break // divergence
		}
		m.Apply(r, z)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Seconds = run.Seconds()
	return res, nil
}

// BiCGStab solves A x = b for general (possibly non-symmetric) A with the
// preconditioned stabilized bi-conjugate gradient method.
func BiCGStab(a *sparse.CSR, b []float64, m Preconditioner, cfg Config, dev *gpusim.Device) (Result, error) {
	n := a.Rows
	if len(b) != n {
		return Result{}, errors.New("solver: rhs dimension mismatch")
	}
	run := gpusim.NewRun(dev)
	reuse := sparse.XReuse(a)

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	rhat := append([]float64(nil), r...)
	v := make([]float64, n)
	p := make([]float64, n)
	phat := make([]float64, n)
	s := make([]float64, n)
	shat := make([]float64, n)
	t := make([]float64, n)

	bnorm := norm2(b)
	if bnorm == 0 {
		return Result{X: x, Converged: true, Seconds: run.Seconds()}, nil
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	res := Result{X: x}
	for it := 1; it <= cfg.MaxIters; it++ {
		res.Iters = it
		rhoNew := dot(rhat, r)
		chargeIteration(run, a, reuse, m, 2, 10)
		if math.Abs(rhoNew) < 1e-300 {
			break // breakdown
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		m.Apply(p, phat)
		a.MulVec(phat, v)
		den := dot(rhat, v)
		if math.Abs(den) < 1e-300 {
			break
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if sn := norm2(s); sn/bnorm <= cfg.Tol {
			axpy(alpha, phat, x)
			res.RelResidual = sn / bnorm
			res.Converged = true
			break
		}
		m.Apply(s, shat)
		a.MulVec(shat, t)
		tt := dot(t, t)
		if tt < 1e-300 {
			break
		}
		omega = dot(t, s) / tt
		if math.Abs(omega) < 1e-300 {
			break
		}
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		rn := norm2(r)
		res.RelResidual = rn / bnorm
		if res.RelResidual <= cfg.Tol {
			res.Converged = true
			break
		}
		if math.IsNaN(rn) || math.IsInf(rn, 0) || res.RelResidual > 1e8 {
			break
		}
	}
	res.Seconds = run.Seconds()
	return res, nil
}
