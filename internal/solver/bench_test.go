package solver

import (
	"testing"

	"nitro/internal/gpusim"
	"nitro/internal/sparse"
)

func benchSolve(b *testing.B, run func(*sparse.CSR, []float64, Preconditioner, Config, *gpusim.Device) (Result, error), mk func(*sparse.CSR) (Preconditioner, error)) {
	b.Helper()
	a := sparse.SPD(sparse.Stencil2D(24, 24), 1.1, 1)
	rhsV := rhs(a.Rows, 2)
	d := gpusim.Fermi()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := mk(a)
		if err != nil {
			b.Fatal(err)
		}
		res, err := run(a, rhsV, m, DefaultConfig(), d)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("solver did not converge in bench")
		}
	}
}

func BenchmarkCGJacobi(b *testing.B) {
	benchSolve(b, CG, func(a *sparse.CSR) (Preconditioner, error) { return NewJacobi(a) })
}

func BenchmarkCGFainv(b *testing.B) {
	benchSolve(b, CG, func(a *sparse.CSR) (Preconditioner, error) { return NewFAI(a) })
}

func BenchmarkBiCGStabBJacobi(b *testing.B) {
	benchSolve(b, BiCGStab, func(a *sparse.CSR) (Preconditioner, error) { return NewBlockJacobi(a, 8) })
}

func BenchmarkGMRESJacobi(b *testing.B) {
	benchSolve(b, GMRES, func(a *sparse.CSR) (Preconditioner, error) { return NewJacobi(a) })
}

func BenchmarkFAISetup(b *testing.B) {
	a := sparse.SPD(sparse.Stencil2D(30, 30), 1.2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewFAI(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverFeatures(b *testing.B) {
	a := sparse.RandomUniform(2000, 12000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeFeatures(a)
	}
}
