// Package solver implements the sparse linear-solver substrate of the Nitro
// reproduction, standing in for the CULA Sparse toolkit: the Conjugate
// Gradients and BiCGStab iterative methods combined with Jacobi, Block-Jacobi
// and Factorized Approximate Inverse (FSAI) preconditioners — the paper's six
// (solver, preconditioner) code variants — plus the numeric matrix features
// of Bhowmick et al. used for selection. Solvers run the real arithmetic in
// Go; their simulated GPU cost is charged per iteration to internal/gpusim.
package solver

import (
	"errors"
	"fmt"
	"math"

	"nitro/internal/gpusim"
	"nitro/internal/sparse"
)

// Preconditioner applies z = M^{-1} r and knows how to charge its per-
// application GPU cost.
type Preconditioner interface {
	// Apply computes z = M^{-1} r; z and r have the system dimension.
	Apply(r, z []float64)
	// Charge accounts one application on the kernel cost accumulator.
	Charge(k *gpusim.Kernel)
	// Name identifies the preconditioner.
	Name() string
}

// Jacobi is diagonal scaling: z_i = r_i / a_ii.
type Jacobi struct {
	invDiag []float64
}

// NewJacobi builds the Jacobi preconditioner; it fails if any diagonal entry
// is zero (the preconditioner would be singular).
func NewJacobi(a *sparse.CSR) (*Jacobi, error) {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("solver: zero diagonal at row %d", i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{invDiag: inv}, nil
}

// Apply implements Preconditioner.
func (j *Jacobi) Apply(r, z []float64) {
	for i := range r {
		z[i] = r[i] * j.invDiag[i]
	}
}

// Charge implements Preconditioner: one coalesced stream over three vectors.
func (j *Jacobi) Charge(k *gpusim.Kernel) {
	n := float64(len(j.invDiag))
	k.GlobalRead(16 * n)
	k.GlobalWrite(8 * n)
	k.ComputeDP(n)
}

// Name implements Preconditioner.
func (j *Jacobi) Name() string { return "Jacobi" }

// BlockJacobi inverts dense diagonal blocks of the matrix at setup time and
// applies them per block.
type BlockJacobi struct {
	n, bs  int
	blocks [][]float64 // row-major bs x bs inverses (last block may be smaller)
	sizes  []int
}

// NewBlockJacobi builds the block-Jacobi preconditioner with the given block
// size; it fails if any diagonal block is singular.
func NewBlockJacobi(a *sparse.CSR, blockSize int) (*BlockJacobi, error) {
	if blockSize < 1 {
		blockSize = 8
	}
	n := a.Rows
	bj := &BlockJacobi{n: n, bs: blockSize}
	for start := 0; start < n; start += blockSize {
		end := start + blockSize
		if end > n {
			end = n
		}
		s := end - start
		block := make([]float64, s*s)
		for i := start; i < end; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				c := int(a.ColIdx[p])
				if c >= start && c < end {
					block[(i-start)*s+(c-start)] = a.Vals[p]
				}
			}
		}
		inv, err := invertDense(block, s)
		if err != nil {
			return nil, fmt.Errorf("solver: singular diagonal block at row %d: %w", start, err)
		}
		bj.blocks = append(bj.blocks, inv)
		bj.sizes = append(bj.sizes, s)
	}
	return bj, nil
}

// Apply implements Preconditioner.
func (b *BlockJacobi) Apply(r, z []float64) {
	start := 0
	for bi, s := range b.sizes {
		inv := b.blocks[bi]
		for i := 0; i < s; i++ {
			var sum float64
			for j := 0; j < s; j++ {
				sum += inv[i*s+j] * r[start+j]
			}
			z[start+i] = sum
		}
		start += s
	}
}

// Charge implements Preconditioner: one dense bs x bs matvec per block.
func (b *BlockJacobi) Charge(k *gpusim.Kernel) {
	var cells float64
	for _, s := range b.sizes {
		cells += float64(s * s)
	}
	k.GlobalRead(8*cells + 8*float64(b.n))
	k.GlobalWrite(8 * float64(b.n))
	k.ComputeDP(2 * cells)
}

// Name implements Preconditioner.
func (b *BlockJacobi) Name() string { return "BJacobi" }

// invertDense inverts an s x s row-major matrix by Gauss-Jordan elimination
// with partial pivoting.
func invertDense(m []float64, s int) ([]float64, error) {
	a := append([]float64(nil), m...)
	inv := make([]float64, s*s)
	for i := 0; i < s; i++ {
		inv[i*s+i] = 1
	}
	for col := 0; col < s; col++ {
		piv, pv := -1, 0.0
		for r := col; r < s; r++ {
			if v := math.Abs(a[r*s+col]); v > pv {
				piv, pv = r, v
			}
		}
		if piv < 0 || pv < 1e-300 {
			return nil, errors.New("singular")
		}
		if piv != col {
			for j := 0; j < s; j++ {
				a[col*s+j], a[piv*s+j] = a[piv*s+j], a[col*s+j]
				inv[col*s+j], inv[piv*s+j] = inv[piv*s+j], inv[col*s+j]
			}
		}
		d := a[col*s+col]
		for j := 0; j < s; j++ {
			a[col*s+j] /= d
			inv[col*s+j] /= d
		}
		for r := 0; r < s; r++ {
			if r == col {
				continue
			}
			f := a[r*s+col]
			if f == 0 {
				continue
			}
			for j := 0; j < s; j++ {
				a[r*s+j] -= f * a[col*s+j]
				inv[r*s+j] -= f * inv[col*s+j]
			}
		}
	}
	return inv, nil
}

// FAI is a factorized sparse approximate inverse (FSAI-1): a lower-triangular
// factor G with the sparsity of tril(A) chosen so that M^{-1} = G^T G
// approximates A^{-1}; it is the "Fainv" preconditioner of the paper's CULA
// variant set. Construction solves one small dense system per row.
type FAI struct {
	g   *sparse.CSR
	gt  *sparse.CSR
	tmp []float64
}

// NewFAI builds the FSAI preconditioner; it fails when a local system is
// singular (typically a non-SPD matrix), which the variant surface reports as
// a setup failure — one source of the paper's non-converging combinations.
func NewFAI(a *sparse.CSR) (*FAI, error) {
	n := a.Rows
	coo := &sparse.COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		// Pattern: lower-triangular part of row i, diagonal last.
		var pat []int
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if c := int(a.ColIdx[p]); c <= i {
				pat = append(pat, c)
			}
		}
		if len(pat) == 0 || pat[len(pat)-1] != i {
			return nil, fmt.Errorf("solver: row %d has no diagonal entry", i)
		}
		s := len(pat)
		// Solve A[pat,pat] y = e_s (unit vector on the diagonal position).
		local := make([]float64, s*s)
		for ri, rg := range pat {
			for p := a.RowPtr[rg]; p < a.RowPtr[rg+1]; p++ {
				cg := int(a.ColIdx[p])
				for ci, c := range pat {
					if c == cg {
						local[ri*s+ci] = a.Vals[p]
					}
				}
			}
		}
		inv, err := invertDense(local, s)
		if err != nil {
			return nil, fmt.Errorf("solver: FSAI local system singular at row %d: %w", i, err)
		}
		// y = inv * e_s is the last column of inv.
		y := make([]float64, s)
		for ri := 0; ri < s; ri++ {
			y[ri] = inv[ri*s+(s-1)]
		}
		d := y[s-1]
		if d <= 0 {
			return nil, fmt.Errorf("solver: FSAI pivot not positive at row %d (matrix not SPD?)", i)
		}
		scale := 1 / math.Sqrt(d)
		for ci, c := range pat {
			coo.RowIdx = append(coo.RowIdx, int32(i))
			coo.ColIdx = append(coo.ColIdx, int32(c))
			coo.Vals = append(coo.Vals, y[ci]*scale)
		}
	}
	g := coo.ToCSR()
	return &FAI{g: g, gt: g.Transpose(), tmp: make([]float64, n)}, nil
}

// Apply implements Preconditioner: z = G^T (G r).
func (f *FAI) Apply(r, z []float64) {
	f.g.MulVec(r, f.tmp)
	f.gt.MulVec(f.tmp, z)
}

// Charge implements Preconditioner: two sparse matvecs with G.
func (f *FAI) Charge(k *gpusim.Kernel) {
	nnz := float64(f.g.NNZ())
	n := float64(f.g.Rows)
	k.GlobalRead(2 * (12*nnz + 8*n)) // two triangular matvecs
	k.GlobalWrite(2 * 8 * n)
	k.ComputeDP(4 * nnz)
}

// Name implements Preconditioner.
func (f *FAI) Name() string { return "Fainv" }

// G exposes the lower-triangular factor for tests.
func (f *FAI) G() *sparse.CSR { return f.g }
