package solver

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nitro/internal/gpusim"
	"nitro/internal/sparse"
)

func dev() *gpusim.Device { return gpusim.Fermi() }

func rhs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// residual returns ||b - Ax|| / ||b||.
func residual(a *sparse.CSR, x, b []float64) float64 {
	ax := make([]float64, a.Rows)
	a.MulVec(x, ax)
	var rn, bn float64
	for i := range b {
		d := b[i] - ax[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn / bn)
}

func TestJacobiApply(t *testing.T) {
	m := sparse.Stencil2D(4, 4)
	j, err := NewJacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rhs(m.Rows, 1)
	z := make([]float64, m.Rows)
	j.Apply(r, z)
	for i := range z {
		if math.Abs(z[i]-r[i]/4) > 1e-12 {
			t.Fatalf("Jacobi apply wrong at %d: %v vs %v", i, z[i], r[i]/4)
		}
	}
	if j.Name() != "Jacobi" {
		t.Error("name")
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	coo := &sparse.COO{Rows: 2, Cols: 2, RowIdx: []int32{0, 1}, ColIdx: []int32{1, 0}, Vals: []float64{1, 1}}
	if _, err := NewJacobi(coo.ToCSR()); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestBlockJacobiExactOnBlockDiagonal(t *testing.T) {
	// A block-diagonal matrix is solved exactly by its block-Jacobi
	// preconditioner: z = M^{-1} r must satisfy A z = r.
	n, bs := 24, 4
	rng := rand.New(rand.NewSource(3))
	coo := &sparse.COO{Rows: n, Cols: n}
	for b := 0; b < n; b += bs {
		for i := 0; i < bs; i++ {
			for j := 0; j < bs; j++ {
				v := rng.Float64() - 0.5
				if i == j {
					v += float64(bs) // dominance
				}
				coo.RowIdx = append(coo.RowIdx, int32(b+i))
				coo.ColIdx = append(coo.ColIdx, int32(b+j))
				coo.Vals = append(coo.Vals, v)
			}
		}
	}
	a := coo.ToCSR()
	bj, err := NewBlockJacobi(a, bs)
	if err != nil {
		t.Fatal(err)
	}
	r := rhs(n, 4)
	z := make([]float64, n)
	bj.Apply(r, z)
	az := make([]float64, n)
	a.MulVec(z, az)
	for i := range az {
		if math.Abs(az[i]-r[i]) > 1e-9 {
			t.Fatalf("block-Jacobi not exact on block-diagonal: %v vs %v", az[i], r[i])
		}
	}
}

func TestBlockJacobiRaggedTail(t *testing.T) {
	m := sparse.Stencil2D(5, 5) // 25 rows, not a multiple of 8
	bj, err := NewBlockJacobi(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rhs(25, 5)
	z := make([]float64, 25)
	bj.Apply(r, z) // must not panic
	if bj.Name() != "BJacobi" {
		t.Error("name")
	}
}

func TestFAIFactorIsLowerTriangular(t *testing.T) {
	m := sparse.SPD(sparse.RandomUniform(40, 120, 7), 1.5, 1)
	f, err := NewFAI(m)
	if err != nil {
		t.Fatal(err)
	}
	g := f.G()
	for i := 0; i < g.Rows; i++ {
		for p := g.RowPtr[i]; p < g.RowPtr[i+1]; p++ {
			if int(g.ColIdx[p]) > i {
				t.Fatalf("G has an upper-triangular entry at (%d,%d)", i, g.ColIdx[p])
			}
		}
	}
	if f.Name() != "Fainv" {
		t.Error("name")
	}
}

func TestFAIExactOnDiagonalMatrix(t *testing.T) {
	// For a diagonal SPD matrix, FSAI is exact: G^T G = A^{-1}.
	coo := &sparse.COO{Rows: 3, Cols: 3, RowIdx: []int32{0, 1, 2}, ColIdx: []int32{0, 1, 2}, Vals: []float64{4, 9, 16}}
	a := coo.ToCSR()
	f, err := NewFAI(a)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{4, 9, 16}
	z := make([]float64, 3)
	f.Apply(r, z)
	want := []float64{1, 1, 1}
	for i := range z {
		if math.Abs(z[i]-want[i]) > 1e-12 {
			t.Fatalf("FSAI on diagonal: z=%v want %v", z, want)
		}
	}
}

func TestCGConvergesOnSPD(t *testing.T) {
	a := sparse.Stencil2D(20, 20)
	b := rhs(a.Rows, 1)
	for _, mk := range []func() (Preconditioner, error){
		func() (Preconditioner, error) { return NewJacobi(a) },
		func() (Preconditioner, error) { return NewBlockJacobi(a, 8) },
		func() (Preconditioner, error) { return NewFAI(a) },
	} {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := CG(a, b, m, DefaultConfig(), dev())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s: CG did not converge (res %v after %d iters)", m.Name(), res.RelResidual, res.Iters)
		}
		if r := residual(a, res.X, b); r > 1e-6 {
			t.Errorf("%s: true residual %v too high", m.Name(), r)
		}
		if res.Seconds <= 0 {
			t.Errorf("%s: non-positive simulated time", m.Name())
		}
	}
}

func TestPreconditionerReducesIterations(t *testing.T) {
	a := sparse.SPD(sparse.BlockClustered(300, 6, 24, 2), 1.05, 3) // barely dominant: slow convergence
	b := rhs(a.Rows, 2)
	jac, _ := NewJacobi(a)
	fai, err := NewFAI(a)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tol: 1e-8, MaxIters: 2000}
	rj, _ := CG(a, b, jac, cfg, dev())
	rf, _ := CG(a, b, fai, cfg, dev())
	if !rj.Converged || !rf.Converged {
		t.Fatalf("convergence: jacobi=%v fainv=%v", rj.Converged, rf.Converged)
	}
	if rf.Iters > rj.Iters {
		t.Errorf("FSAI (%d iters) should not need more iterations than Jacobi (%d)", rf.Iters, rj.Iters)
	}
}

func TestBiCGStabConvergesOnNonsymmetric(t *testing.T) {
	// Nonsymmetric diagonally dominant system: CG is unreliable, BiCGStab
	// should converge.
	a := sparse.RandomUniform(200, 800, 11)
	b := rhs(a.Rows, 3)
	jac, _ := NewJacobi(a)
	res, err := BiCGStab(a, b, jac, Config{Tol: 1e-8, MaxIters: 1000}, dev())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGStab did not converge: res %v after %d iters", res.RelResidual, res.Iters)
	}
	if r := residual(a, res.X, b); r > 1e-6 {
		t.Errorf("true residual %v", r)
	}
}

func TestCGFailsOnHardNonsymmetric(t *testing.T) {
	// A strongly skew system: CG assumptions are violated; expect either
	// breakdown or non-convergence within the budget.
	coo := &sparse.COO{Rows: 100, Cols: 100}
	for i := 0; i < 100; i++ {
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32(i))
		coo.Vals = append(coo.Vals, 0.05)
		j := (i + 13) % 100
		coo.RowIdx = append(coo.RowIdx, int32(i))
		coo.ColIdx = append(coo.ColIdx, int32(j))
		coo.Vals = append(coo.Vals, 1.0)
		coo.RowIdx = append(coo.RowIdx, int32(j))
		coo.ColIdx = append(coo.ColIdx, int32(i))
		coo.Vals = append(coo.Vals, -1.0)
	}
	a := coo.ToCSR()
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CG(a, rhs(100, 4), jac, Config{Tol: 1e-10, MaxIters: 200}, dev())
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && residual(a, res.X, rhs(100, 4)) > 1e-6 {
		t.Error("CG claimed convergence with a bad solution")
	}
	if res.Converged {
		t.Log("note: CG converged on skew system (lucky); main check is no false solution")
	}
	if Cost(res, nil) != math.Inf(1) && !res.Converged {
		t.Error("Cost should be +Inf for non-converged runs")
	}
}

func TestVariantsRunAndLabel(t *testing.T) {
	a := sparse.SPD(sparse.Stencil2D(12, 12), 1.2, 5)
	p, err := NewProblem(a, rhs(a.Rows, 6))
	if err != nil {
		t.Fatal(err)
	}
	names := VariantNames()
	if len(names) != 6 {
		t.Fatalf("want 6 variants, got %v", names)
	}
	if names[0] != "CG-Jacobi" || names[5] != "BiCGStab-Fainv" {
		t.Fatalf("unexpected order: %v", names)
	}
	finite := 0
	for _, v := range Variants() {
		res, err := v.Run(p, dev())
		c := Cost(res, err)
		if !math.IsInf(c, 1) {
			finite++
			if c <= 0 {
				t.Errorf("%s: non-positive cost %v", v.Name, c)
			}
		}
	}
	if finite < 4 {
		t.Errorf("only %d of 6 variants converged on an easy SPD system", finite)
	}
}

func TestProblemValidation(t *testing.T) {
	a := sparse.Stencil2D(3, 3)
	if _, err := NewProblem(nil, nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := NewProblem(a, make([]float64, 2)); err == nil {
		t.Error("bad rhs accepted")
	}
	rect := &sparse.COO{Rows: 2, Cols: 3, RowIdx: []int32{0}, ColIdx: []int32{2}, Vals: []float64{1}}
	if _, err := NewProblem(rect.ToCSR(), make([]float64, 2)); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestComputeFeatures(t *testing.T) {
	a := sparse.Stencil2D(5, 5)
	f := ComputeFeatures(a)
	if f.NRows != 25 || f.NNZ != float64(a.NNZ()) {
		t.Errorf("sizes wrong: %+v", f)
	}
	if math.Abs(f.Trace-100) > 1e-9 { // 25 rows x diagonal 4
		t.Errorf("trace = %v, want 100", f.Trace)
	}
	if math.Abs(f.DiagAvg-4) > 1e-9 || f.DiagVar > 1e-9 {
		t.Errorf("diag stats wrong: %+v", f)
	}
	if f.LBw != 5 { // the -nx diagonal
		t.Errorf("LBw = %v, want 5", f.LBw)
	}
	if f.DiagDominance < 0 || f.DiagDominance > 1 {
		t.Errorf("dominance out of range: %v", f.DiagDominance)
	}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Error("Vector/FeatureNames mismatch")
	}
}

func TestZeroRHSTrivial(t *testing.T) {
	a := sparse.Stencil2D(4, 4)
	jac, _ := NewJacobi(a)
	res, err := CG(a, make([]float64, a.Rows), jac, DefaultConfig(), dev())
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs should converge trivially: %v %v", res.Converged, err)
	}
	res2, err := BiCGStab(a, make([]float64, a.Rows), jac, DefaultConfig(), dev())
	if err != nil || !res2.Converged {
		t.Fatalf("zero rhs should converge trivially: %v %v", res2.Converged, err)
	}
}

func TestInvertDense(t *testing.T) {
	m := []float64{2, 1, 1, 3}
	inv, err := invertDense(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.6, -0.2, -0.2, 0.4}
	for i := range want {
		if math.Abs(inv[i]-want[i]) > 1e-12 {
			t.Fatalf("inverse wrong: %v", inv)
		}
	}
	if _, err := invertDense([]float64{0, 0, 0, 0}, 2); err == nil {
		t.Error("singular matrix inverted")
	}
}

func TestMoreIterationsCostMore(t *testing.T) {
	a := sparse.SPD(sparse.Stencil2D(16, 16), 1.05, 7)
	b := rhs(a.Rows, 8)
	jac, _ := NewJacobi(a)
	fast, _ := CG(a, b, jac, Config{Tol: 1e-2, MaxIters: 1000}, dev())
	slow, _ := CG(a, b, jac, Config{Tol: 1e-10, MaxIters: 1000}, dev())
	if !(fast.Iters < slow.Iters && fast.Seconds < slow.Seconds) {
		t.Errorf("tighter tolerance should cost more: %d/%v vs %d/%v",
			fast.Iters, fast.Seconds, slow.Iters, slow.Seconds)
	}
}

func TestFAIOnNonSPDFails(t *testing.T) {
	// A matrix with a negative diagonal block should trip the SPD pivot
	// check during FSAI construction.
	coo := &sparse.COO{Rows: 2, Cols: 2, RowIdx: []int32{0, 1}, ColIdx: []int32{0, 1}, Vals: []float64{-1, 2}}
	if _, err := NewFAI(coo.ToCSR()); err == nil {
		t.Error("FSAI accepted a matrix with negative diagonal")
	} else if !strings.Contains(err.Error(), "SPD") && !strings.Contains(err.Error(), "singular") {
		t.Logf("error kind: %v", err)
	}
}

func TestOneByOneSystem(t *testing.T) {
	coo := &sparse.COO{Rows: 1, Cols: 1, RowIdx: []int32{0}, ColIdx: []int32{0}, Vals: []float64{4}}
	a := coo.ToCSR()
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []func(*sparse.CSR, []float64, Preconditioner, Config, *gpusim.Device) (Result, error){CG, BiCGStab, GMRES} {
		res, err := run(a, []float64{8}, jac, DefaultConfig(), dev())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || math.Abs(res.X[0]-2) > 1e-8 {
			t.Errorf("1x1 solve wrong: converged=%v x=%v", res.Converged, res.X)
		}
	}
}

func TestBlockJacobiBlockLargerThanMatrix(t *testing.T) {
	a := sparse.SPD(sparse.Stencil2D(2, 2), 1.5, 1) // 4x4 matrix, block size 8
	bj, err := NewBlockJacobi(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(4, 2)
	res, err := CG(a, b, bj, DefaultConfig(), dev())
	if err != nil || !res.Converged {
		t.Fatalf("oversized block failed: %v %v", res.Converged, err)
	}
	// A single full-matrix block is a direct solve: one iteration suffices.
	if res.Iters > 2 {
		t.Errorf("full-block Jacobi should converge immediately, took %d", res.Iters)
	}
}

// Property: CG always converges on generated strictly-dominant SPD systems
// within a generous budget, and the solution satisfies the system.
func TestQuickCGConvergesOnSPD(t *testing.T) {
	f := func(seed int64) bool {
		s := seed % 500
		a := sparse.SPD(sparse.RandomUniform(60, 180, s), 1.3, s+1)
		b := rhs(60, s+2)
		jac, err := NewJacobi(a)
		if err != nil {
			return false
		}
		res, err := CG(a, b, jac, Config{Tol: 1e-8, MaxIters: 600}, dev())
		if err != nil || !res.Converged {
			return false
		}
		return residual(a, res.X, b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
