package solver

import (
	"errors"
	"math"

	"nitro/internal/gpusim"
	"nitro/internal/sparse"
)

// Problem is one linear system A x = b.
type Problem struct {
	A *sparse.CSR
	B []float64

	Cfg Config
}

// NewProblem wraps a system with the default solve configuration.
func NewProblem(a *sparse.CSR, b []float64) (*Problem, error) {
	if a == nil {
		return nil, errors.New("solver: nil matrix")
	}
	if a.Rows != a.Cols {
		return nil, errors.New("solver: matrix must be square")
	}
	if len(b) != a.Rows {
		return nil, errors.New("solver: rhs dimension mismatch")
	}
	return &Problem{A: a, B: b, Cfg: DefaultConfig()}, nil
}

// Variant is one (solver, preconditioner) combination. Run returns an error
// only for structural failures (e.g. preconditioner setup on an unsuitable
// matrix); numerical non-convergence is reported in Result.Converged.
type Variant struct {
	Name string
	Run  func(p *Problem, dev *gpusim.Device) (Result, error)
}

// blockSize is the Block-Jacobi block edge used by the benchmark variants.
const blockSize = 8

// Variants returns the paper's six (solver, preconditioner) combinations in
// a fixed order: CG-{Jacobi, BJacobi, Fainv}, BiCGStab-{Jacobi, BJacobi,
// Fainv}.
func Variants() []Variant {
	type krylov struct {
		name string
		run  func(a *sparse.CSR, b []float64, m Preconditioner, cfg Config, dev *gpusim.Device) (Result, error)
	}
	type precond struct {
		name  string
		build func(a *sparse.CSR) (Preconditioner, error)
	}
	solvers := []krylov{{"CG", CG}, {"BiCGStab", BiCGStab}}
	preconds := []precond{
		{"Jacobi", func(a *sparse.CSR) (Preconditioner, error) { return NewJacobi(a) }},
		{"BJacobi", func(a *sparse.CSR) (Preconditioner, error) { return NewBlockJacobi(a, blockSize) }},
		{"Fainv", func(a *sparse.CSR) (Preconditioner, error) { return NewFAI(a) }},
	}
	var out []Variant
	for _, s := range solvers {
		for _, pc := range preconds {
			s, pc := s, pc
			out = append(out, Variant{
				Name: s.name + "-" + pc.name,
				Run: func(p *Problem, dev *gpusim.Device) (Result, error) {
					m, err := pc.build(p.A)
					if err != nil {
						return Result{}, err
					}
					return s.run(p.A, p.B, m, p.Cfg, dev)
				},
			})
		}
	}
	return out
}

// VariantNames returns the names in Variants order.
func VariantNames() []string {
	vs := Variants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

// Cost converts a variant result to the optimization value Nitro trains on:
// the simulated time for converged runs, +Inf otherwise (the paper's
// constraint convention that keeps failing variants out of the label set).
func Cost(r Result, err error) float64 {
	if err != nil || !r.Converged {
		return math.Inf(1)
	}
	return r.Seconds
}

// Features holds the numeric matrix properties used for (solver,
// preconditioner) selection, after Bhowmick et al. as cited by the paper.
type Features struct {
	NNZ           float64
	NRows         float64
	Trace         float64
	DiagAvg       float64
	DiagVar       float64
	DiagDominance float64 // fraction of rows with |a_ii| > sum_j!=i |a_ij|
	LBw           float64 // left bandwidth: max_i (i - min col in row i)
	Norm1         float64 // max column sum of |a_ij|
}

// Vector returns the 8-feature vector in the fixed order the paper's Fig. 4
// lists: [NNZ, Nrows, Trace, DiagAvg, DiagVar, DiagDominance, LBw, Norm1].
func (f Features) Vector() []float64 {
	return []float64{f.NNZ, f.NRows, f.Trace, f.DiagAvg, f.DiagVar, f.DiagDominance, f.LBw, f.Norm1}
}

// FeatureNames lists the feature order used by Features.Vector.
func FeatureNames() []string {
	return []string{"NNZ", "Nrows", "Trace", "DiagAvg", "DiagVar", "DiagDominance", "LBw", "Norm1"}
}

// ComputeFeatures derives the solver-selection features in one pass over the
// matrix.
func ComputeFeatures(a *sparse.CSR) Features {
	f := Features{NNZ: float64(a.NNZ()), NRows: float64(a.Rows)}
	if a.Rows == 0 {
		return f
	}
	colAbs := make([]float64, a.Cols)
	var trace, dsum, dsq float64
	dominant := 0
	maxLBw := 0
	for i := 0; i < a.Rows; i++ {
		var diag, off float64
		minCol := i
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := int(a.ColIdx[p])
			v := a.Vals[p]
			colAbs[c] += math.Abs(v)
			if c == i {
				diag = v
			} else {
				off += math.Abs(v)
			}
			if c < minCol {
				minCol = c
			}
		}
		trace += diag
		dsum += diag
		dsq += diag * diag
		if math.Abs(diag) > off {
			dominant++
		}
		if bw := i - minCol; bw > maxLBw {
			maxLBw = bw
		}
	}
	n := float64(a.Rows)
	f.Trace = trace
	f.DiagAvg = dsum / n
	f.DiagVar = dsq/n - f.DiagAvg*f.DiagAvg
	if f.DiagVar < 0 {
		f.DiagVar = 0
	}
	f.DiagDominance = float64(dominant) / n
	f.LBw = float64(maxLBw)
	for _, v := range colAbs {
		if v > f.Norm1 {
			f.Norm1 = v
		}
	}
	return f
}
