package solver

import (
	"errors"
	"math"

	"nitro/internal/gpusim"
	"nitro/internal/sparse"
)

// gmresRestart is the Krylov subspace size of the restarted GMRES variant
// (the usual GMRES(30) default of solver toolkits like CULA Sparse).
const gmresRestart = 30

// GMRES solves A x = b with left-preconditioned restarted GMRES(30). It is
// the extension solver beyond the paper's CG/BiCGStab pair: robust on
// nonsymmetric and mildly indefinite systems at the price of growing
// per-iteration orthogonalization work.
func GMRES(a *sparse.CSR, b []float64, m Preconditioner, cfg Config, dev *gpusim.Device) (Result, error) {
	n := a.Rows
	if len(b) != n {
		return Result{}, errors.New("solver: rhs dimension mismatch")
	}
	run := gpusim.NewRun(dev)
	reuse := sparse.XReuse(a)

	x := make([]float64, n)
	res := Result{X: x}
	bnorm := norm2(b)
	if bnorm == 0 {
		res.Converged = true
		res.Seconds = run.Seconds()
		return res, nil
	}

	ax := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	w := make([]float64, n)

	total := 0
	for total < cfg.MaxIters {
		// Restart cycle.
		a.MulVec(x, ax)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		m.Apply(r, z)
		beta := norm2(z)
		if beta == 0 {
			break
		}
		dim := gmresRestart
		if rem := cfg.MaxIters - total; rem < dim {
			dim = rem
		}
		v := make([][]float64, 1, dim+1)
		v[0] = make([]float64, n)
		for i := range z {
			v[0][i] = z[i] / beta
		}
		h := make([][]float64, dim+1)
		for i := range h {
			h[i] = make([]float64, dim)
		}
		cs := make([]float64, dim)
		sn := make([]float64, dim)
		g := make([]float64, dim+1)
		g[0] = beta

		j := 0
		for ; j < dim && total < cfg.MaxIters; j++ {
			total++
			res.Iters = total
			a.MulVec(v[j], ax)
			m.Apply(ax, w)
			chargeIteration(run, a, reuse, m, 1, 2*(j+2))
			// Modified Gram-Schmidt.
			for i := 0; i <= j; i++ {
				h[i][j] = dot(w, v[i])
				axpy(-h[i][j], v[i], w)
			}
			h[j+1][j] = norm2(w)
			if h[j+1][j] > 1e-300 {
				vj := make([]float64, n)
				for i := range w {
					vj[i] = w[i] / h[j+1][j]
				}
				v = append(v, vj)
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < j; i++ {
				t := cs[i]*h[i][j] + sn[i]*h[i+1][j]
				h[i+1][j] = -sn[i]*h[i][j] + cs[i]*h[i+1][j]
				h[i][j] = t
			}
			denom := math.Hypot(h[j][j], h[j+1][j])
			if denom < 1e-300 {
				j++
				break
			}
			cs[j] = h[j][j] / denom
			sn[j] = h[j+1][j] / denom
			h[j][j] = denom
			h[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			if math.Abs(g[j+1])/bnorm <= cfg.Tol/10 {
				j++
				break
			}
			if h[j+1][j] == 0 && len(v) == j+1 {
				j++
				break // happy breakdown
			}
		}
		// Solve the triangular system and update x.
		y := make([]float64, j)
		for i := j - 1; i >= 0; i-- {
			sum := g[i]
			for k := i + 1; k < j; k++ {
				sum -= h[i][k] * y[k]
			}
			if h[i][i] == 0 {
				break
			}
			y[i] = sum / h[i][i]
		}
		for i := 0; i < j && i < len(v); i++ {
			axpy(y[i], v[i], x)
		}
		// True residual check.
		a.MulVec(x, ax)
		var rn float64
		for i := range b {
			d := b[i] - ax[i]
			rn += d * d
		}
		res.RelResidual = math.Sqrt(rn) / bnorm
		if res.RelResidual <= cfg.Tol {
			res.Converged = true
			break
		}
		if math.IsNaN(res.RelResidual) || res.RelResidual > 1e8 {
			break
		}
		if j == 0 {
			break
		}
	}
	res.Seconds = run.Seconds()
	return res, nil
}

// ExtendedVariants returns the paper's six (solver, preconditioner)
// combinations plus GMRES(30) with the same three preconditioners — nine in
// total, for the richer-variant-space extension experiment.
func ExtendedVariants() []Variant {
	out := Variants()
	type precond struct {
		name  string
		build func(a *sparse.CSR) (Preconditioner, error)
	}
	preconds := []precond{
		{"Jacobi", func(a *sparse.CSR) (Preconditioner, error) { return NewJacobi(a) }},
		{"BJacobi", func(a *sparse.CSR) (Preconditioner, error) { return NewBlockJacobi(a, blockSize) }},
		{"Fainv", func(a *sparse.CSR) (Preconditioner, error) { return NewFAI(a) }},
	}
	for _, pc := range preconds {
		pc := pc
		out = append(out, Variant{
			Name: "GMRES-" + pc.name,
			Run: func(p *Problem, dev *gpusim.Device) (Result, error) {
				m, err := pc.build(p.A)
				if err != nil {
					return Result{}, err
				}
				return GMRES(p.A, p.B, m, p.Cfg, dev)
			},
		})
	}
	return out
}

// ExtendedVariantNames returns the names in ExtendedVariants order.
func ExtendedVariantNames() []string {
	vs := ExtendedVariants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}
