package solver

import (
	"math"
	"testing"

	"nitro/internal/sparse"
)

func TestGMRESConvergesOnSPD(t *testing.T) {
	a := sparse.Stencil2D(16, 16)
	b := rhs(a.Rows, 1)
	jac, _ := NewJacobi(a)
	res, err := GMRES(a, b, jac, Config{Tol: 1e-8, MaxIters: 500}, dev())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GMRES did not converge: res %v after %d iters", res.RelResidual, res.Iters)
	}
	if r := residual(a, res.X, b); r > 1e-6 {
		t.Errorf("true residual %v", r)
	}
}

func TestGMRESConvergesOnNonsymmetric(t *testing.T) {
	a := sparse.RandomUniform(150, 600, 3)
	b := rhs(a.Rows, 2)
	jac, _ := NewJacobi(a)
	res, err := GMRES(a, b, jac, Config{Tol: 1e-8, MaxIters: 600}, dev())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GMRES did not converge on nonsymmetric system: %v after %d", res.RelResidual, res.Iters)
	}
	if r := residual(a, res.X, b); r > 1e-6 {
		t.Errorf("true residual %v", r)
	}
}

func TestGMRESRestartBoundary(t *testing.T) {
	// Force multiple restart cycles with a modest iteration budget and a
	// slowly converging system.
	a := sparse.SPD(sparse.BlockClustered(250, 6, 24, 4), 1.03, 5)
	b := rhs(a.Rows, 6)
	jac, _ := NewJacobi(a)
	res, err := GMRES(a, b, jac, Config{Tol: 1e-10, MaxIters: 120}, dev())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 120 {
		t.Errorf("iteration budget exceeded: %d", res.Iters)
	}
	if res.Converged {
		if r := residual(a, res.X, b); r > 1e-7 {
			t.Errorf("claimed convergence with residual %v", r)
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := sparse.Stencil2D(5, 5)
	jac, _ := NewJacobi(a)
	res, err := GMRES(a, make([]float64, a.Rows), jac, DefaultConfig(), dev())
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs should converge trivially: %v %v", res.Converged, err)
	}
}

func TestGMRESDimensionMismatch(t *testing.T) {
	a := sparse.Stencil2D(4, 4)
	jac, _ := NewJacobi(a)
	if _, err := GMRES(a, make([]float64, 3), jac, DefaultConfig(), dev()); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestExtendedVariantsComplete(t *testing.T) {
	names := ExtendedVariantNames()
	if len(names) != 9 {
		t.Fatalf("want 9 extended variants, got %v", names)
	}
	want := []string{"GMRES-Jacobi", "GMRES-BJacobi", "GMRES-Fainv"}
	for i, w := range want {
		if names[6+i] != w {
			t.Fatalf("extended order wrong: %v", names)
		}
	}
	a := sparse.SPD(sparse.Stencil2D(10, 10), 1.2, 7)
	p, err := NewProblem(a, rhs(a.Rows, 8))
	if err != nil {
		t.Fatal(err)
	}
	finite := 0
	for _, v := range ExtendedVariants() {
		res, err := v.Run(p, dev())
		if c := Cost(res, err); !math.IsInf(c, 1) {
			finite++
		}
	}
	if finite < 6 {
		t.Errorf("only %d of 9 extended variants converged on an easy SPD system", finite)
	}
}

func TestGMRESHandlesSkewWhereCGFails(t *testing.T) {
	// Strong antisymmetric part: CG stalls, GMRES should converge.
	base := sparse.RandomUniform(120, 360, 9)
	coo := base.ToCOO()
	for k := 0; k < 240; k++ {
		i, j := (k*7)%120, (k*13+1)%120
		if i == j {
			continue
		}
		coo.RowIdx = append(coo.RowIdx, int32(i), int32(j))
		coo.ColIdx = append(coo.ColIdx, int32(j), int32(i))
		coo.Vals = append(coo.Vals, 2.0, -2.0)
	}
	a := coo.ToCSR()
	b := rhs(a.Rows, 10)
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tol: 1e-8, MaxIters: 400}
	gm, err := GMRES(a, b, jac, cfg, dev())
	if err != nil {
		t.Fatal(err)
	}
	if !gm.Converged {
		t.Fatalf("GMRES failed on skew system: %v after %d", gm.RelResidual, gm.Iters)
	}
	cg, err := CG(a, b, jac, cfg, dev())
	if err != nil {
		t.Fatal(err)
	}
	if cg.Converged && residual(a, cg.X, b) < 1e-6 {
		t.Log("note: CG also converged on this skew system (lucky); GMRES robustness still shown")
	}
}
