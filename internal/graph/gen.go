package graph

import "math/rand"

// The generators below stand in for the DIMACS10 test suite. They span the
// axis that drives variant selection in Merrill et al. and the paper: average
// out-degree (low-degree/high-diameter meshes vs high-degree/low-diameter
// social networks) and degree skew.

// Grid2D returns the 4-neighbour lattice on w x h vertices: out-degree <= 4,
// diameter w+h — the regime where fused kernels and CE win.
func Grid2D(w, h int) *Graph {
	var src, dst []int32
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				src = append(src, id(x, y))
				dst = append(dst, id(x+1, y))
			}
			if y+1 < h {
				src = append(src, id(x, y))
				dst = append(dst, id(x, y+1))
			}
		}
	}
	return FromEdges(w*h, src, dst, true)
}

// Grid3D returns the 6-neighbour lattice on nx x ny x nz vertices.
func Grid3D(nx, ny, nz int) *Graph {
	var src, dst []int32
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					src = append(src, id(x, y, z))
					dst = append(dst, id(x+1, y, z))
				}
				if y+1 < ny {
					src = append(src, id(x, y, z))
					dst = append(dst, id(x, y+1, z))
				}
				if z+1 < nz {
					src = append(src, id(x, y, z))
					dst = append(dst, id(x, y, z+1))
				}
			}
		}
	}
	return FromEdges(nx*ny*nz, src, dst, true)
}

// RMAT returns a Kronecker/R-MAT graph with 2^scale vertices and about
// edgeFactor directed edges per vertex: skewed degrees and tiny diameter —
// the social-network regime where scan-based 2-Phase gathering wins.
func RMAT(scale int, edgeFactor int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	e := n * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	src := make([]int32, 0, e)
	dst := make([]int32, 0, e)
	for i := 0; i < e; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// stay in quadrant (0,0)
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		src = append(src, int32(u))
		dst = append(dst, int32(v))
	}
	return FromEdges(n, src, dst, true)
}

// RandomRegular returns a graph where every vertex has out-degree d with
// uniformly random targets (moderate diameter, zero skew).
func RandomRegular(n, d int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	src := make([]int32, 0, n*d)
	dst := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			src = append(src, int32(v))
			dst = append(dst, int32(rng.Intn(n)))
		}
	}
	return FromEdges(n, src, dst, false)
}

// SmallWorld returns a Watts-Strogatz style ring lattice of degree 2k with
// rewiring probability p: low degree with a few long-range shortcuts.
func SmallWorld(n, k int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var src, dst []int32
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			t := (v + j) % n
			if rng.Float64() < p {
				t = rng.Intn(n)
			}
			src = append(src, int32(v))
			dst = append(dst, int32(t))
		}
	}
	return FromEdges(n, src, dst, true)
}

// Star returns hubs high-degree centres each connected to leaves satellites
// (extreme skew: MaxDeviation >> AvgOutDeg).
func Star(hubs, leaves int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := hubs + hubs*leaves
	var src, dst []int32
	for h := 0; h < hubs; h++ {
		base := hubs + h*leaves
		for l := 0; l < leaves; l++ {
			src = append(src, int32(h))
			dst = append(dst, int32(base+l))
		}
		if h+1 < hubs {
			src = append(src, int32(h))
			dst = append(dst, int32(h+1))
		}
		_ = rng
	}
	return FromEdges(n, src, dst, true)
}
