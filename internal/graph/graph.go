// Package graph implements the BFS substrate of the Nitro reproduction,
// standing in for the Back40/Merrill GPU traversal library: a CSR graph
// representation, seeded generators replacing the DIMACS10 suite, the six
// level-synchronous BFS code variants the paper selects among
// (EC/CE/2-Phase, each Fused or Iterative), the hand-built Hybrid baseline
// the paper compares against, the five selection features, and the TEPS
// metric. Traversals compute real distance labels; their simulated GPU cost
// is charged per level to internal/gpusim from the measured frontier shape.
package graph

import (
	"errors"
	"math"
)

// Graph is a directed graph in CSR adjacency form.
type Graph struct {
	V      int
	RowPtr []int32
	Adj    []int32
}

// E returns the directed edge count.
func (g *Graph) E() int { return len(g.Adj) }

// OutDeg returns the out-degree of v.
func (g *Graph) OutDeg(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	if len(g.RowPtr) != g.V+1 {
		return errors.New("graph: RowPtr length mismatch")
	}
	if g.RowPtr[0] != 0 || int(g.RowPtr[g.V]) != len(g.Adj) {
		return errors.New("graph: RowPtr endpoints wrong")
	}
	for v := 0; v < g.V; v++ {
		if g.RowPtr[v] > g.RowPtr[v+1] {
			return errors.New("graph: RowPtr not monotone")
		}
	}
	for _, w := range g.Adj {
		if w < 0 || int(w) >= g.V {
			return errors.New("graph: neighbour out of range")
		}
	}
	return nil
}

// FromEdges builds a CSR graph from an edge list; when undirected is set,
// each edge is inserted in both directions.
func FromEdges(v int, src, dst []int32, undirected bool) *Graph {
	count := make([]int32, v+1)
	bump := func(s int32) { count[s+1]++ }
	for i := range src {
		bump(src[i])
		if undirected {
			bump(dst[i])
		}
	}
	for i := 0; i < v; i++ {
		count[i+1] += count[i]
	}
	g := &Graph{V: v, RowPtr: count, Adj: make([]int32, count[v])}
	next := append([]int32(nil), count[:v]...)
	put := func(s, d int32) {
		g.Adj[next[s]] = d
		next[s]++
	}
	for i := range src {
		put(src[i], dst[i])
		if undirected {
			put(dst[i], src[i])
		}
	}
	return g
}

// LevelStats records the shape of one BFS level: the vertex-frontier size,
// the edge-frontier size (edges out of the frontier), the number of newly
// discovered vertices, and the degree profile of the frontier (driving
// warp-waste and load-imbalance charges).
type LevelStats struct {
	Fv       int // vertices in the frontier
	Fe       int // edges leaving the frontier
	U        int // newly discovered vertices
	MaxDeg   int // largest out-degree in the frontier
	PaddedFe int // sum over frontier of out-degree rounded up to warp size
	// Unvisited is the number of undiscovered vertices at the start of the
	// level — the work pool a bottom-up (direction-optimizing) step scans.
	Unvisited int
}

// BFS runs a level-synchronous breadth-first traversal from src and returns
// the distance labels (-1 for unreached) together with per-level statistics.
func (g *Graph) BFS(src int) ([]int32, []LevelStats) {
	levels := make([]int32, g.V)
	for i := range levels {
		levels[i] = -1
	}
	if src < 0 || src >= g.V {
		return levels, nil
	}
	levels[src] = 0
	frontier := []int32{int32(src)}
	var stats []LevelStats
	depth := int32(0)
	visited := 1
	for len(frontier) > 0 {
		st := LevelStats{Fv: len(frontier), Unvisited: g.V - visited}
		var next []int32
		for _, v := range frontier {
			deg := g.OutDeg(int(v))
			st.Fe += deg
			st.PaddedFe += (deg + 31) / 32 * 32
			if deg == 0 {
				st.PaddedFe += 32
			}
			if deg > st.MaxDeg {
				st.MaxDeg = deg
			}
			for p := g.RowPtr[v]; p < g.RowPtr[v+1]; p++ {
				w := g.Adj[p]
				if levels[w] < 0 {
					levels[w] = depth + 1
					next = append(next, w)
				}
			}
		}
		st.U = len(next)
		visited += len(next)
		stats = append(stats, st)
		frontier = next
		depth++
	}
	return levels, stats
}

// EdgesTraversed returns the number of directed edges inspected by a
// traversal with the given per-level stats (the TEPS numerator).
func EdgesTraversed(stats []LevelStats) int {
	total := 0
	for _, s := range stats {
		total += s.Fe
	}
	return total
}

// Features holds the paper's five BFS selection features.
type Features struct {
	AvgOutDeg    float64
	DegStdDev    float64
	MaxDeviation float64 // max out-degree minus average
	NVertices    float64
	NEdges       float64
}

// Vector returns the feature vector in the fixed Fig. 4 order:
// [AvgOutDeg, Deg-SD, MaxDeviation, Nvertices, Nedges].
func (f Features) Vector() []float64 {
	return []float64{f.AvgOutDeg, f.DegStdDev, f.MaxDeviation, f.NVertices, f.NEdges}
}

// FeatureNames lists the feature order used by Features.Vector.
func FeatureNames() []string {
	return []string{"AvgOutDeg", "Deg-SD", "MaxDeviation", "Nvertices", "Nedges"}
}

// ComputeFeatures derives the selection features in one pass over the
// degree array.
func ComputeFeatures(g *Graph) Features {
	f := Features{NVertices: float64(g.V), NEdges: float64(g.E())}
	if g.V == 0 {
		return f
	}
	var sum, sumSq float64
	maxDeg := 0
	for v := 0; v < g.V; v++ {
		d := g.OutDeg(v)
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	n := float64(g.V)
	f.AvgOutDeg = sum / n
	variance := sumSq/n - f.AvgOutDeg*f.AvgOutDeg
	if variance < 0 {
		variance = 0
	}
	f.DegStdDev = math.Sqrt(variance)
	f.MaxDeviation = float64(maxDeg) - f.AvgOutDeg
	return f
}
