package graph

import (
	"errors"
	"math"

	"nitro/internal/gpusim"
)

// Strategy is the frontier-processing scheme of a BFS variant.
type Strategy int

// The three schemes of Merrill et al.: expand-contract (vertex frontier),
// contract-expand (edge frontier), and the two-phase split that isolates
// expansion and contraction into separate kernels.
const (
	EC Strategy = iota
	CE
	TwoPhase
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case EC:
		return "EC"
	case CE:
		return "CE"
	default:
		return "2Phase"
	}
}

// Problem is one BFS workload: a graph and the traversal source vertices
// (the paper runs 100 randomly-sourced traversals per graph). Per-source
// level statistics are cached so every variant prices the same traversals.
type Problem struct {
	G       *Graph
	Sources []int

	stats  [][]LevelStats
	levels []int32 // labels of the last traversal, for correctness checks
	edges  int
}

// NewProblem validates and wraps a BFS workload.
func NewProblem(g *Graph, sources []int) (*Problem, error) {
	if g == nil || g.V == 0 {
		return nil, errors.New("graph: empty graph")
	}
	if len(sources) == 0 {
		return nil, errors.New("graph: no sources")
	}
	for _, s := range sources {
		if s < 0 || s >= g.V {
			return nil, errors.New("graph: source out of range")
		}
	}
	return &Problem{G: g, Sources: sources}, nil
}

func (p *Problem) traverse() {
	if p.stats != nil {
		return
	}
	p.stats = make([][]LevelStats, len(p.Sources))
	for i, s := range p.Sources {
		p.levels, p.stats[i] = p.G.BFS(s)
		p.edges += EdgesTraversed(p.stats[i])
	}
}

// Edges returns the total edges inspected across all sources.
func (p *Problem) Edges() int {
	p.traverse()
	return p.edges
}

// LastLevels returns the distance labels of the final traversal.
func (p *Problem) LastLevels() []int32 {
	p.traverse()
	return p.levels
}

// Result is a variant execution: simulated time, traversed edges and the
// TEPS rate (the paper's optimization metric for BFS).
type Result struct {
	Levels  []int32
	Edges   int
	Seconds float64
}

// TEPS returns traversed edges per second.
func (r Result) TEPS() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Edges) / r.Seconds
}

// Variant is one BFS code variant.
type Variant struct {
	Name     string
	Strategy Strategy
	Fused    bool
	Run      func(p *Problem, dev *gpusim.Device) (Result, error)
}

// Variants returns the six selection variants in the paper's Fig. 4 order.
func Variants() []Variant {
	mk := func(name string, s Strategy, fused bool) Variant {
		return Variant{
			Name: name, Strategy: s, Fused: fused,
			Run: func(p *Problem, dev *gpusim.Device) (Result, error) {
				return runVariant(p, s, fused, dev)
			},
		}
	}
	return []Variant{
		mk("EC-Fused", EC, true),
		mk("EC-Iter", EC, false),
		mk("CE-Fused", CE, true),
		mk("CE-Iter", CE, false),
		mk("2Phase-Fused", TwoPhase, true),
		mk("2Phase-Iter", TwoPhase, false),
	}
}

// VariantNames returns the names in Variants order.
func VariantNames() []string {
	vs := Variants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

// fusedOverhead is the extra traffic fraction a fused (persistent-CTA)
// kernel pays for software queue management and work stealing; it is what
// lets iterative launches win back large, low-diameter traversals.
const fusedOverhead = 0.10

// barrierNs is the cost of one software global barrier inside a fused kernel.
const barrierNs = 1200

// chargeLevel accounts the memory/compute work of one BFS level on k.
func chargeLevel(k *gpusim.Kernel, g *Graph, st LevelStats, strat Strategy, fused bool) {
	fv, fe, u := float64(st.Fv), float64(st.Fe), float64(st.U)
	scale := 1.0
	if fused {
		scale += fusedOverhead
	}
	vBytes := float64(4 * g.V)

	k.GlobalRead(scale * 4 * fv)                             // frontier queue
	k.Gather(st.Fv, 8, 8*float64(g.V+1), 1)                  // row offsets
	k.GlobalRead(scale * 4 * fe)                             // adjacency segments
	k.Gather(st.Fe, 4, vBytes, math.Max(1, fe/float64(g.V))) // status lookups
	k.Gather(st.U, 4, vBytes, 1)                             // label writes (scattered)
	k.GlobalWrite(scale * 4 * u)                             // output queue
	k.ComputeSP(2 * fe)

	avgDeg := 1.0
	if st.Fv > 0 {
		avgDeg = fe / fv
	}
	switch strat {
	case EC:
		// Warp-per-vertex gathering idles lanes on low degrees and
		// serializes on skewed ones.
		if st.PaddedFe > 0 {
			eff := fe / float64(st.PaddedFe)
			if eff < 0.25 {
				eff = 0.25
			}
			k.Throughput(eff)
		}
		if st.MaxDeg > 0 {
			k.Imbalance(float64(st.MaxDeg), math.Max(avgDeg, 1))
		}
	case CE:
		// Edge-queue traffic doubles, and the per-thread serial expansion
		// of a discovered vertex's adjacency makes skew expensive.
		k.GlobalRead(scale * 4 * fe)
		k.GlobalWrite(scale * 4 * fe)
		if st.MaxDeg > 0 {
			eff := math.Max(avgDeg, 1) / float64(st.MaxDeg)
			if eff < 0.15 {
				eff = 0.15
			}
			k.Throughput(eff)
		}
	case TwoPhase:
		// Scan-based gathering is perfectly balanced but stages the edge
		// frontier through an intermediate queue.
		k.GlobalRead(scale * 4 * fe)
		k.GlobalWrite(scale * 4 * fe)
	}
}

// levelThreads returns the launched-thread count of one level's kernel.
func levelThreads(st LevelStats, strat Strategy, dev *gpusim.Device) int {
	switch strat {
	case EC:
		return st.Fv * dev.WarpSize
	case CE:
		return st.Fe + st.Fv
	default:
		return st.Fe + st.Fv*2
	}
}

// runVariant prices every cached traversal of p under (strat, fused) and
// returns the summed simulated time with the shared functional result.
func runVariant(p *Problem, strat Strategy, fused bool, dev *gpusim.Device) (Result, error) {
	p.traverse()
	run := gpusim.NewRun(dev)
	for _, stats := range p.stats {
		if fused {
			// One persistent kernel for the whole traversal; levels are
			// separated by software global barriers.
			k := run.Launch("bfs_"+strat.String()+"_fused", dev.MaxResidentThreads())
			for _, st := range stats {
				chargeLevel(k, p.G, st, strat, true)
				k.Latency(barrierNs)
				if strat == TwoPhase {
					k.Latency(barrierNs) // expansion|contraction split
				}
			}
			run.Done(k)
		} else {
			for _, st := range stats {
				k := run.Launch("bfs_"+strat.String()+"_iter", levelThreads(st, strat, dev))
				chargeLevel(k, p.G, st, strat, false)
				run.Done(k)
				if strat == TwoPhase {
					k2 := run.Launch("bfs_2phase_contract", levelThreads(st, strat, dev))
					k2.GlobalRead(4 * float64(st.Fe))
					k2.GlobalWrite(4 * float64(st.U))
					run.Done(k2)
				}
				run.HostSync()
			}
		}
	}
	return Result{Levels: p.LastLevels(), Edges: p.Edges(), Seconds: run.Seconds()}, nil
}

// HybridThresholdFraction tunes the hand-built Hybrid baseline: it switches
// from CE-style to 2-Phase-style processing when the edge frontier exceeds
// this fraction of the vertex count.
const HybridThresholdFraction = 0.125

// Hybrid is the paper's hand-built baseline (Merrill et al.'s Hybrid
// kernel): a fused traversal that dynamically picks CE-style processing for
// small edge frontiers and 2-Phase-style processing for large ones. Its
// adaptivity is not free — every level pays a frontier-size inspection and
// an extra barrier, and each strategy switch reformats the frontier queue —
// so it runs uniformly close to, but almost never at, the best fixed
// variant. The paper quantifies this at ~88% of optimal on average.
func Hybrid(p *Problem, dev *gpusim.Device) (Result, error) {
	p.traverse()
	threshold := float64(p.G.V) * HybridThresholdFraction
	run := gpusim.NewRun(dev)
	for _, stats := range p.stats {
		k := run.Launch("bfs_hybrid_fused", dev.MaxResidentThreads())
		prev := CE
		for li, st := range stats {
			strat := CE
			if float64(st.Fe) > threshold {
				strat = TwoPhase
			}
			if strat != prev && li > 0 {
				// Queue reformat: edge queue <-> vertex queue round trip.
				k.GlobalRead(4 * float64(st.Fv+st.Fe))
				k.GlobalWrite(4 * float64(st.Fv+st.Fe))
			}
			prev = strat
			chargeLevel(k, p.G, st, strat, true)
			// The frontier-size inspection piggybacks on the level barrier
			// (a fractional surcharge); 2-Phase levels keep their second
			// barrier.
			k.Latency(1.25 * barrierNs)
			if strat == TwoPhase {
				k.Latency(barrierNs)
			}
		}
		run.Done(k)
	}
	return Result{Levels: p.LastLevels(), Edges: p.Edges(), Seconds: run.Seconds()}, nil
}
