package graph

import (
	"testing"

	"nitro/internal/gpusim"
)

func BenchmarkBFSTraversalGrid(b *testing.B) {
	g := Grid2D(200, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.BFS(0)
	}
}

func BenchmarkBFSTraversalRMAT(b *testing.B) {
	g := RMAT(14, 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.BFS(1)
	}
}

func benchBFSVariant(b *testing.B, name string, g *Graph) {
	b.Helper()
	p, err := NewProblem(g, []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	p.traverse() // cache so the bench isolates the pricing path
	var v Variant
	for _, cand := range Variants() {
		if cand.Name == name {
			v = cand
		}
	}
	d := gpusim.Fermi()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Run(p, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSVariantCEFused(b *testing.B) { benchBFSVariant(b, "CE-Fused", Grid2D(120, 120)) }
func BenchmarkBFSVariant2PhaseFused(b *testing.B) {
	benchBFSVariant(b, "2Phase-Fused", RMAT(12, 16, 2))
}
func BenchmarkBFSVariantECIter(b *testing.B) { benchBFSVariant(b, "EC-Iter", Grid2D(120, 120)) }

func BenchmarkBFSHybrid(b *testing.B) {
	p, err := NewProblem(RMAT(12, 16, 3), []int{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	p.traverse()
	d := gpusim.Fermi()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hybrid(p, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphFeatures(b *testing.B) {
	g := RMAT(14, 16, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeFeatures(g)
	}
}
