package graph

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nitro/internal/gpusim"
)

func dev() *gpusim.Device { return gpusim.Fermi() }

func TestFromEdgesAndValidate(t *testing.T) {
	g := FromEdges(4, []int32{0, 1, 2}, []int32{1, 2, 3}, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.E() != 3 || g.OutDeg(0) != 1 || g.OutDeg(3) != 0 {
		t.Errorf("degrees wrong: E=%d", g.E())
	}
	u := FromEdges(3, []int32{0}, []int32{1}, true)
	if u.E() != 2 || u.OutDeg(1) != 1 {
		t.Error("undirected insertion failed")
	}
}

func TestBFSChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3
	g := FromEdges(4, []int32{0, 1, 2}, []int32{1, 2, 3}, false)
	levels, stats := g.BFS(0)
	for i, want := range []int32{0, 1, 2, 3} {
		if levels[i] != want {
			t.Errorf("level[%d] = %d, want %d", i, levels[i], want)
		}
	}
	if len(stats) != 4 { // three productive levels + final empty-expansion level
		t.Errorf("stats levels = %d", len(stats))
	}
	if EdgesTraversed(stats) != 3 {
		t.Errorf("edges traversed = %d, want 3", EdgesTraversed(stats))
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromEdges(4, []int32{0}, []int32{1}, false)
	levels, _ := g.BFS(0)
	if levels[2] != -1 || levels[3] != -1 {
		t.Error("unreachable vertices should stay -1")
	}
	levels, stats := g.BFS(-1)
	if stats != nil {
		t.Error("invalid source should produce no stats")
	}
	for _, l := range levels {
		if l != -1 {
			t.Error("invalid source should mark nothing")
		}
	}
}

func TestBFSGridDistances(t *testing.T) {
	g := Grid2D(5, 5)
	levels, _ := g.BFS(0)
	// Manhattan distance from corner (0,0).
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			if int(levels[y*5+x]) != x+y {
				t.Fatalf("grid distance wrong at (%d,%d): %d", x, y, levels[y*5+x])
			}
		}
	}
}

func TestGeneratorsValid(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"grid2d", Grid2D(10, 12)},
		{"grid3d", Grid3D(4, 5, 6)},
		{"rmat", RMAT(10, 8, 1)},
		{"regular", RandomRegular(200, 8, 2)},
		{"smallworld", SmallWorld(150, 3, 0.1, 3)},
		{"star", Star(3, 40, 4)},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if c.g.E() == 0 {
			t.Errorf("%s: no edges", c.name)
		}
	}
}

func TestFeaturesShapes(t *testing.T) {
	grid := ComputeFeatures(Grid2D(30, 30))
	rmat := ComputeFeatures(RMAT(12, 16, 5))
	if grid.AvgOutDeg > 4.01 {
		t.Errorf("grid avg degree %v > 4", grid.AvgOutDeg)
	}
	if rmat.AvgOutDeg <= grid.AvgOutDeg {
		t.Errorf("RMAT avg degree (%v) should exceed grid (%v)", rmat.AvgOutDeg, grid.AvgOutDeg)
	}
	if rmat.MaxDeviation <= grid.MaxDeviation {
		t.Errorf("RMAT skew (%v) should exceed grid (%v)", rmat.MaxDeviation, grid.MaxDeviation)
	}
	if len(grid.Vector()) != len(FeatureNames()) {
		t.Error("Vector/FeatureNames mismatch")
	}
}

func TestProblemValidation(t *testing.T) {
	g := Grid2D(3, 3)
	if _, err := NewProblem(nil, []int{0}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewProblem(g, nil); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := NewProblem(g, []int{99}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

// runAllVariants returns name->seconds and checks functional agreement.
func runAllVariants(t *testing.T, p *Problem) map[string]float64 {
	t.Helper()
	ref, _ := p.G.BFS(p.Sources[len(p.Sources)-1])
	out := map[string]float64{}
	for _, v := range Variants() {
		res, err := v.Run(p, dev())
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		for i := range ref {
			if res.Levels[i] != ref[i] {
				t.Fatalf("%s: wrong level at %d", v.Name, i)
			}
		}
		if res.Seconds <= 0 || math.IsNaN(res.Seconds) {
			t.Fatalf("%s: bad time %v", v.Name, res.Seconds)
		}
		if res.TEPS() <= 0 {
			t.Fatalf("%s: bad TEPS", v.Name)
		}
		out[v.Name] = res.Seconds
	}
	return out
}

func bestOf(times map[string]float64) string {
	name, b := "", math.Inf(1)
	for k, v := range times {
		if v < b {
			name, b = k, v
		}
	}
	return name
}

func TestGridFavoursFusedLowDegree(t *testing.T) {
	g := Grid2D(120, 120) // high diameter, degree <= 4
	p, _ := NewProblem(g, []int{0})
	times := runAllVariants(t, p)
	b := bestOf(times)
	if !strings.HasSuffix(b, "Fused") {
		t.Errorf("high-diameter grid best = %s (%v), want a fused variant", b, times)
	}
	if strings.HasPrefix(b, "EC") {
		t.Errorf("EC should not win on degree-4 grid, got %s", b)
	}
	if times["CE-Fused"] >= times["CE-Iter"] {
		t.Errorf("fused (%v) should beat iterative (%v) on 200+ levels", times["CE-Fused"], times["CE-Iter"])
	}
}

func TestRMATFavours2Phase(t *testing.T) {
	g := RMAT(14, 24, 7) // high average degree, heavy skew, low diameter
	p, _ := NewProblem(g, []int{1, 2, 3})
	times := runAllVariants(t, p)
	b := bestOf(times)
	if !strings.HasPrefix(b, "2Phase") {
		t.Errorf("skewed high-degree graph best = %s (%v), want 2Phase", b, times)
	}
	if times["CE-Fused"] <= times["2Phase-Fused"] {
		t.Errorf("CE (%v) should lose to 2Phase (%v) under heavy skew", times["CE-Fused"], times["2Phase-Fused"])
	}
}

func TestHybridBetweenWorstAndBest(t *testing.T) {
	for _, g := range []*Graph{Grid2D(80, 80), RMAT(13, 16, 9)} {
		p, _ := NewProblem(g, []int{0, 5})
		times := runAllVariants(t, p)
		h, err := Hybrid(p, dev())
		if err != nil {
			t.Fatal(err)
		}
		bestT, worstT := math.Inf(1), 0.0
		for _, v := range times {
			bestT = math.Min(bestT, v)
			worstT = math.Max(worstT, v)
		}
		if h.Seconds < bestT {
			t.Errorf("hybrid (%v) beat the best fixed variant (%v) — baseline too strong", h.Seconds, bestT)
		}
		if h.Seconds > worstT*1.5 {
			t.Errorf("hybrid (%v) much worse than worst variant (%v) — baseline too weak", h.Seconds, worstT)
		}
	}
}

func TestVariantNamesOrder(t *testing.T) {
	want := []string{"EC-Fused", "EC-Iter", "CE-Fused", "CE-Iter", "2Phase-Fused", "2Phase-Iter"}
	got := VariantNames()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order changed: %v", got)
		}
	}
}

func TestTEPSComputation(t *testing.T) {
	r := Result{Edges: 1000, Seconds: 0.001}
	if r.TEPS() != 1e6 {
		t.Errorf("TEPS = %v", r.TEPS())
	}
	if (Result{Edges: 10}).TEPS() != 0 {
		t.Error("zero-time TEPS should be 0")
	}
}

func TestProblemCachesTraversals(t *testing.T) {
	g := Grid2D(20, 20)
	p, _ := NewProblem(g, []int{0, 10})
	e1 := p.Edges()
	e2 := p.Edges()
	if e1 != e2 || e1 == 0 {
		t.Errorf("edge caching wrong: %d %d", e1, e2)
	}
}

// Property: BFS levels satisfy the triangle property — every edge (u,v)
// has level(v) <= level(u)+1 when u is reached.
func TestQuickBFSLevelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomRegular(100, 4, seed%500)
		levels, _ := g.BFS(0)
		for u := 0; u < g.V; u++ {
			if levels[u] < 0 {
				continue
			}
			for p := g.RowPtr[u]; p < g.RowPtr[u+1]; p++ {
				v := g.Adj[p]
				if levels[v] < 0 || levels[v] > levels[u]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMoreSourcesCostMore(t *testing.T) {
	g := Grid2D(40, 40)
	p1, _ := NewProblem(g, []int{0})
	p3, _ := NewProblem(g, []int{0, 100, 200})
	r1, _ := Variants()[2].Run(p1, dev())
	r3, _ := Variants()[2].Run(p3, dev())
	if r3.Seconds <= r1.Seconds {
		t.Errorf("3 sources (%v) should cost more than 1 (%v)", r3.Seconds, r1.Seconds)
	}
}

func TestDOBFSCorrectAndWinsOnSocialGraphs(t *testing.T) {
	// Low diameter, high degree: bottom-up steps skip most of the edge
	// frontier, so DOBFS should beat every fixed top-down variant.
	g := RMAT(14, 24, 17)
	p, _ := NewProblem(g, []int{1, 2})
	res, err := DOBFS(p, dev())
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := g.BFS(p.Sources[len(p.Sources)-1])
	for i := range ref {
		if res.Levels[i] != ref[i] {
			t.Fatalf("DOBFS levels wrong at %d", i)
		}
	}
	times := runAllVariants(t, p)
	bestFixed := math.Inf(1)
	for _, v := range times {
		bestFixed = math.Min(bestFixed, v)
	}
	if res.Seconds >= bestFixed {
		t.Errorf("DOBFS (%v) should beat the best fixed variant (%v) on an RMAT graph", res.Seconds, bestFixed)
	}
}

func TestDOBFSNeutralOnMeshes(t *testing.T) {
	// High diameter, degree 4: the frontier never crosses E/alpha, so DOBFS
	// degenerates to CE-Fused plus the per-level direction check.
	g := Grid2D(100, 100)
	p, _ := NewProblem(g, []int{0})
	res, err := DOBFS(p, dev())
	if err != nil {
		t.Fatal(err)
	}
	ce, err := Variants()[2].Run(p, dev()) // CE-Fused
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Seconds / ce.Seconds
	if ratio < 0.95 || ratio > 1.3 {
		t.Errorf("DOBFS on a mesh should track CE-Fused closely, ratio %v", ratio)
	}
}

func TestExtendedVariantNames(t *testing.T) {
	names := ExtendedVariantNames()
	if len(names) != 7 || names[6] != "DOBFS" {
		t.Fatalf("extended names = %v", names)
	}
	g := Grid2D(20, 20)
	p, _ := NewProblem(g, []int{0})
	name, secs, err := BestVariant(p, dev(), ExtendedVariants())
	if err != nil {
		t.Fatal(err)
	}
	if name == "" || secs <= 0 {
		t.Fatalf("BestVariant returned %q/%v", name, secs)
	}
}

func TestUnvisitedStats(t *testing.T) {
	g := FromEdges(4, []int32{0, 1, 2}, []int32{1, 2, 3}, false)
	_, stats := g.BFS(0)
	want := []int{3, 2, 1, 0}
	for i, st := range stats {
		if st.Unvisited != want[i] {
			t.Errorf("level %d unvisited = %d, want %d", i, st.Unvisited, want[i])
		}
	}
}

func TestSingleVertexAndSelfLoop(t *testing.T) {
	lone := FromEdges(1, nil, nil, false)
	p, err := NewProblem(lone, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ExtendedVariants() {
		res, err := v.Run(p, dev())
		if err != nil {
			t.Fatalf("%s on single vertex: %v", v.Name, err)
		}
		if res.Levels[0] != 0 {
			t.Fatalf("%s: wrong level on single vertex", v.Name)
		}
	}
	loop := FromEdges(2, []int32{0, 0}, []int32{0, 1}, false)
	levels, _ := loop.BFS(0)
	if levels[0] != 0 || levels[1] != 1 {
		t.Errorf("self-loop BFS wrong: %v", levels)
	}
}
