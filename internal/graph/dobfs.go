package graph

import (
	"math"

	"nitro/internal/gpusim"
)

// Direction-optimizing BFS (Beamer et al.) is the extension variant beyond
// the paper's six: when the frontier grows past a threshold the traversal
// flips to a bottom-up step where every *undiscovered* vertex scans its
// incoming edges for an already-visited parent and stops at the first hit.
// On low-diameter, high-degree graphs the bottom-up steps examine a tiny
// fraction of the edge frontier, which is why DOBFS dominates
// social-network-style inputs while adding nothing on meshes.

// dobfsAlpha is the top-down -> bottom-up switch threshold: flip when the
// edge frontier exceeds E/alpha (Beamer's alpha heuristic).
const dobfsAlpha = 14.0

// dobfsBeta is the bottom-up -> top-down switch-back threshold: flip back
// when the vertex frontier shrinks below V/beta.
const dobfsBeta = 24.0

// DOBFS prices a direction-optimizing traversal over the cached per-level
// statistics. Top-down levels cost like CE; bottom-up levels cost the
// unvisited scan with early exit (discovered vertices scan ~2 edges on
// average, undiscovered ones scan their whole adjacency).
func DOBFS(p *Problem, dev *gpusim.Device) (Result, error) {
	p.traverse()
	g := p.G
	avgDeg := 1.0
	if g.V > 0 {
		avgDeg = float64(g.E()) / float64(g.V)
	}
	run := gpusim.NewRun(dev)
	for _, stats := range p.stats {
		k := run.Launch("bfs_dobfs_fused", dev.MaxResidentThreads())
		bottomUp := false
		for _, st := range stats {
			if !bottomUp && float64(st.Fe) > float64(g.E())/dobfsAlpha {
				bottomUp = true
				// Frontier converts to a bitmap.
				k.GlobalWrite(float64(g.V) / 8)
			} else if bottomUp && float64(st.Fv) < float64(g.V)/dobfsBeta {
				bottomUp = false
				// Bitmap converts back to a queue.
				k.GlobalRead(float64(g.V) / 8)
			}
			if bottomUp {
				found := float64(st.U)
				notFound := float64(st.Unvisited - st.U)
				if notFound < 0 {
					notFound = 0
				}
				// Early exit: discovered vertices scan ~2 in-edges before
				// hitting a visited parent; the rest scan everything.
				scanned := 2*found + notFound*avgDeg
				k.GlobalRead(4 * float64(st.Unvisited)) // status bitmap sweep
				k.GlobalRead(4 * scanned)               // in-edge scans
				k.Gather(int(found+notFound), 8, 8*float64(g.V+1), 1)
				k.ComputeSP(2 * scanned)
			} else {
				chargeLevel(k, g, st, CE, true)
			}
			k.Latency(barrierNs * 1.25) // direction check + level barrier
		}
		run.Done(k)
	}
	return Result{Levels: p.LastLevels(), Edges: p.Edges(), Seconds: run.Seconds()}, nil
}

// ExtendedVariants returns the paper's six BFS variants plus DOBFS.
func ExtendedVariants() []Variant {
	return append(Variants(), Variant{
		Name:     "DOBFS",
		Strategy: CE, // top-down phase scheme
		Fused:    true,
		Run:      DOBFS,
	})
}

// ExtendedVariantNames returns the names in ExtendedVariants order.
func ExtendedVariantNames() []string {
	vs := ExtendedVariants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

// BestVariant runs every variant in the given set and returns the winner.
func BestVariant(p *Problem, dev *gpusim.Device, variants []Variant) (string, float64, error) {
	best, bestT := "", math.Inf(1)
	for _, v := range variants {
		res, err := v.Run(p, dev)
		if err != nil {
			return "", 0, err
		}
		if res.Seconds < bestT {
			best, bestT = v.Name, res.Seconds
		}
	}
	return best, bestT, nil
}
