package server

// Double-run determinism of the observability plane: the same control-plane
// scenario, driven twice with a seeded trace source and a fixed clock, must
// produce byte-identical slog streams and byte-identical flight dumps. Any
// divergence means wall-clock, map ordering, or unseeded randomness leaked
// into the evidence — the property the chaos transcripts and trace smoke
// rely on.

import (
	"bytes"
	"context"
	"log/slog"
	"testing"
	"time"

	"nitro/internal/obs/trace"
	"nitro/internal/online"
)

// obsScenario drives one synchronous canary lifecycle against a registry
// wired with seeded observability and returns (slog stream, flight dump).
func obsScenario(t *testing.T, seed int64) ([]byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(128)
	fixed := time.Unix(1700000000, 0).UTC()
	log := trace.NewLog(trace.LogConfig{
		Writer: &buf, Level: slog.LevelDebug,
		Clock: func() time.Time { return fixed }, Recorder: rec,
	})
	src := trace.NewSeededSource(seed)
	r, err := NewRegistry(RegistryConfig{
		Tenants:     []TenantConfig{{Name: "acme", Token: "tok-acme"}},
		Workers:     1,
		Canary:      CanaryPolicy{Fraction: 0.5, MinSamples: 20, MaxFailureRate: 0.2},
		Clock:       func() time.Time { return fixed },
		Log:         log,
		TraceSource: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Mint one id per logical request, exactly as the HTTP middleware
	// would; the seeded source makes the sequence reproducible.
	next := func() context.Context {
		return trace.With(context.Background(), src.NewID())
	}
	if err := r.RegisterFunction(next(), "acme", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushModel(next(), "acme", "sort", boundaryArtifact(t, 4.5), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PushModel(next(), "acme", "sort", boundaryArtifact(t, 6.5), ""); err != nil {
		t.Fatal(err)
	}
	if dec, _, err := r.ReportCanary(next(), "acme", "sort", 2, "rep-1", 10, 0); err != nil || dec != DecisionPending {
		t.Fatalf("mid report: (%q, %v)", dec, err)
	}
	samples := []online.RemoteSample{{Features: []float64{1}, Times: []float64{1, 2}, Predicted: -1}}
	if _, err := r.PushObservations(next(), "acme", "sort", samples); err != nil {
		t.Fatal(err)
	}
	if dec, _, err := r.ReportCanary(next(), "acme", "sort", 2, "rep-1", 20, 0); err != nil || dec != DecisionPromoted {
		t.Fatalf("final report: (%q, %v)", dec, err)
	}
	return bytes.Clone(buf.Bytes()), rec.DumpJSON()
}

func TestObservabilityDoubleRunDeterminism(t *testing.T) {
	log1, flight1 := obsScenario(t, 99)
	log2, flight2 := obsScenario(t, 99)
	if !bytes.Equal(log1, log2) {
		t.Fatalf("slog streams diverge between identically seeded runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", log1, log2)
	}
	if !bytes.Equal(flight1, flight2) {
		t.Fatalf("flight dumps diverge between identically seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", flight1, flight2)
	}
	if len(log1) == 0 || len(flight1) == 0 {
		t.Fatal("scenario produced no observability output")
	}
	// A different seed must change the ids (the streams are genuinely
	// seed-dependent, not constant).
	log3, _ := obsScenario(t, 100)
	if bytes.Equal(log1, log3) {
		t.Fatal("differently seeded runs produced identical streams — ids are not flowing")
	}
}
