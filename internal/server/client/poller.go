package client

// Poller: the deployment-following side of the registry protocol. Each
// PollOnce reconciles a local core.Context against the server's deployment
// state for one function:
//
//   - a new stable version is pulled (ETag-cached) and installed through the
//     context's atomic hot-swap; a pull or validation failure leaves the
//     incumbent serving — rollback is "don't install", never "uninstall";
//   - a live canary installs the challenger at the server's fraction via
//     SetCanary, so the challenger serves real traffic through the dispatch
//     ladder while the stable model keeps the rest;
//   - local challenger outcomes feed the server's fleet aggregate as
//     cumulative totals under a per-poller reporter ID, so a report the
//     retry layer replays (applied once, response lost) cannot be counted
//     twice; the server's verdict — promoted or rolled back — clears the
//     local canary, and a promotion installs the challenger as the new
//     stable without re-pulling bytes.
//
// Under a network partition the poller degrades, never breaks: PollOnce
// returns the transport error (or ErrCircuitOpen once the client's breaker
// trips), the installed incumbent — and any in-hand canary — keeps serving
// local traffic untouched, and the failure streak is tracked in Stats().
// The first successful poll after a streak reconciles against whatever the
// server decided while the poller was dark: a canary that settled during
// the partition is adopted (promoted) or dropped (rolled back) exactly as
// if the poller had seen the verdict live.

import (
	"context"
	"fmt"
	"strconv"

	"nitro/internal/core"
	"nitro/internal/ml"
	"nitro/internal/obs/trace"
	"nitro/internal/server"
)

// Poller reconciles one function on one core.Context with the registry.
// Not safe for concurrent PollOnce calls; the context it manages is fully
// concurrent-safe (hot-swap + canary are atomic).
type Poller struct {
	c  *Client
	cx *core.Context
	fn string
	// reporter identifies this poller in canary reports; the server keys
	// its retry-dedup baselines on it.
	reporter string

	stableVersion int
	stableETag    string

	canaryVersion int
	canaryModel   *ml.Model

	stats PollerStats
}

// PollerStats tracks the poller's health across reconciliation cycles.
type PollerStats struct {
	// Polls counts PollOnce invocations; Failures counts the ones that
	// returned an error (the incumbent kept serving through every one).
	Polls    int64
	Failures int64
	// ConsecutiveFailures is the current unbroken failure streak — nonzero
	// means the poller is presently degraded (partitioned from or rejected
	// by the registry) and serving its installed incumbent.
	ConsecutiveFailures int64
	// Heals counts streak endings: a successful poll after >= 1 failures.
	Heals int64
}

// NewPoller builds a poller that installs models for fn into cx.
func NewPoller(c *Client, cx *core.Context, fn string) *Poller {
	return &Poller{c: c, cx: cx, fn: fn, reporter: c.newReporterID()}
}

// PollResult reports what one reconciliation did.
type PollResult struct {
	// StableVersion is the locally installed stable generation (0 = none).
	StableVersion int
	// InstalledStable reports that this poll hot-swapped a new stable.
	InstalledStable bool
	// CanaryVersion is the locally serving challenger (0 = none).
	CanaryVersion int
	// StartedCanary / Decision report canary lifecycle edges: Decision is
	// "" while nothing settled, otherwise the server's verdict.
	StartedCanary bool
	Decision      string
	// Healed reports that this poll ended a failure streak: the registry
	// is reachable again and the local state was reconciled.
	Healed bool
	// Trace is the correlation id this poll ran under: the id carried by
	// the caller's context, or one minted for the poll. Every request the
	// poll issued sent it as X-Nitro-Trace-Id, so the server's log,
	// journal and flight recorder are greppable by it.
	Trace string
}

// StableVersion reports the currently installed stable generation.
func (p *Poller) StableVersion() int { return p.stableVersion }

// Stats reports the poller's cumulative health counters.
func (p *Poller) Stats() PollerStats { return p.stats }

// Degraded reports whether the poller is mid failure streak: the registry
// is unreachable and the installed incumbent is serving solo.
func (p *Poller) Degraded() bool { return p.stats.ConsecutiveFailures > 0 }

// PollOnce runs one reconciliation pass. Each poll runs under one trace
// id — taken from ctx when the caller attached one (trace.With), minted
// otherwise — which every request of the pass carries to the server.
func (p *Poller) PollOnce(ctx context.Context) (PollResult, error) {
	id := trace.From(ctx)
	if id == "" {
		id = p.c.cfg.TraceSource.NewID()
		ctx = trace.With(ctx, id)
	}
	log := p.c.cfg.Log
	log.Debug(ctx, "client", "poll.start", trace.F("fn", p.fn))
	res, err := p.pollOnce(ctx)
	res.Trace = id
	p.stats.Polls++
	if err != nil {
		p.stats.Failures++
		p.stats.ConsecutiveFailures++
		log.Error(ctx, "client", "poll.fail", trace.F("fn", p.fn),
			trace.F("streak", strconv.FormatInt(p.stats.ConsecutiveFailures, 10)),
			trace.F("error", err.Error()))
		return res, err
	}
	if p.stats.ConsecutiveFailures > 0 {
		p.stats.ConsecutiveFailures = 0
		p.stats.Heals++
		res.Healed = true
		log.Event(ctx, "client", "poll.heal", trace.F("fn", p.fn),
			trace.F("stable", strconv.Itoa(res.StableVersion)))
	}
	// One poll can do both: install a new stable AND adopt the canary
	// staged on top of it. They are separate transitions — log each.
	if res.InstalledStable {
		log.Event(ctx, "client", "model.install", trace.F("fn", p.fn),
			trace.F("version", strconv.Itoa(res.StableVersion)))
	}
	if res.StartedCanary {
		log.Event(ctx, "client", "canary.adopt", trace.F("fn", p.fn),
			trace.F("version", strconv.Itoa(res.CanaryVersion)))
	}
	if res.Decision != "" && res.Decision != server.DecisionPending {
		log.Event(ctx, "client", "canary.verdict", trace.F("fn", p.fn),
			trace.F("decision", res.Decision))
	}
	return res, nil
}

func (p *Poller) pollOnce(ctx context.Context) (PollResult, error) {
	res := PollResult{StableVersion: p.stableVersion, CanaryVersion: p.canaryVersion}
	dep, err := p.c.Deployment(ctx, p.fn)
	if err != nil {
		return res, err
	}

	// Reconcile the stable model first: canary verdicts below may assume
	// the current stable is installed.
	if dep.Stable != 0 && dep.Stable != p.stableVersion {
		if err := p.installStable(ctx, dep.Stable); err != nil {
			return res, err
		}
		res.InstalledStable = true
	}
	res.StableVersion = p.stableVersion

	switch {
	case dep.Canary == nil && p.canaryVersion != 0:
		// The episode settled while we weren't looking (another client's
		// report crossed the threshold). Stop serving the challenger; the
		// stable reconciliation above already follows a promotion.
		p.clearCanary()
	case dep.Canary != nil && dep.Canary.Version != p.canaryVersion:
		if err := p.startCanary(ctx, dep); err != nil {
			return res, err
		}
		res.StartedCanary = true
	case dep.Canary != nil:
		dec, err := p.reportCanary(ctx)
		if err != nil {
			return res, err
		}
		res.Decision = dec
	}
	res.CanaryVersion = p.canaryVersion
	return res, nil
}

func (p *Poller) installStable(ctx context.Context, version int) error {
	// A promoted challenger is already in hand — install the bytes we have
	// been serving as canary instead of re-pulling them.
	if p.canaryModel != nil && p.canaryVersion == version {
		if err := p.cx.SetModel(p.fn, p.canaryModel); err != nil {
			return fmt.Errorf("client: installing promoted canary v%d: %w", version, err)
		}
		p.stableVersion = version
		p.stableETag = ""
		return nil
	}
	pull, err := p.c.PullModel(ctx, p.fn, version, p.stableETag)
	if err != nil {
		return err
	}
	if pull.NotModified {
		p.stableVersion = version
		return nil
	}
	// SetModel validates before swapping; a bad artifact leaves the
	// incumbent model serving.
	if err := p.cx.SetModel(p.fn, pull.Model); err != nil {
		return fmt.Errorf("client: installing v%d: %w", version, err)
	}
	p.stableVersion = version
	p.stableETag = pull.ETag
	return nil
}

func (p *Poller) startCanary(ctx context.Context, dep server.Deployment) error {
	pull, err := p.c.PullModel(ctx, p.fn, dep.Canary.Version, "")
	if err != nil {
		return err
	}
	if err := p.cx.SetCanary(p.fn, pull.Model, dep.Canary.Fraction); err != nil {
		return fmt.Errorf("client: installing canary v%d: %w", dep.Canary.Version, err)
	}
	p.canaryVersion = dep.Canary.Version
	p.canaryModel = pull.Model
	return nil
}

func (p *Poller) reportCanary(ctx context.Context) (string, error) {
	// The context's counters are already cumulative for the installed
	// challenger; reporting them as-is under the poller's reporter ID lets
	// the server compute the delta itself and drop retry replays — no
	// local delta bookkeeping, no double counts when a response is lost.
	st := p.cx.CanaryStats(p.fn)
	dec, _, err := p.c.ReportCanaryAs(ctx, p.fn, p.canaryVersion, p.reporter, st.Calls, st.Failures)
	if err != nil {
		return "", err
	}
	switch dec {
	case "promoted":
		promoted := p.canaryVersion
		if err := p.cx.SetModel(p.fn, p.canaryModel); err != nil {
			return dec, fmt.Errorf("client: promoting canary v%d: %w", promoted, err)
		}
		p.stableVersion = promoted
		p.stableETag = ""
		p.clearCanary()
	case "rolledback":
		p.clearCanary()
	}
	return dec, nil
}

func (p *Poller) clearCanary() {
	p.cx.ClearCanary(p.fn)
	p.canaryVersion = 0
	p.canaryModel = nil
}
