// Package client talks to a nitro-server model registry: registering
// function specs, pulling versioned model artifacts (ETag-cached), pushing
// observation samples, and driving the canary handshake. The Poller turns
// the registry's deployment state into local hot-swaps on a core.Context.
package client

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/ml"
	"nitro/internal/obs/trace"
	"nitro/internal/online"
	"nitro/internal/server"
)

// Config configures a registry client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Token is the tenant bearer token.
	Token string
	// HTTPClient overrides the transport (default: http.Client with a 10s
	// timeout).
	HTTPClient *http.Client
	// Retries is how many times a failed request is retried (default 2;
	// negative disables). Transport errors, 5xx and 429 retry; other
	// statuses are returned immediately.
	Retries int
	// Backoff scales the retry delay: attempt k sleeps a full-jittered
	// uniform draw from [0, min(MaxBackoff, Backoff<<k)] (default 100ms).
	// A Retry-After header on a 429/503 overrides the schedule — the
	// server's hint is honored (plus up to 25% jitter so a restarted server
	// is not re-synchronized into a thundering herd).
	Backoff time.Duration
	// MaxBackoff caps a single retry delay (default 2s).
	MaxBackoff time.Duration
	// AttemptBudget bounds the total wall-clock spent on one logical call,
	// attempts plus sleeps; a retry whose delay would overrun the budget is
	// abandoned and the last failure returned (0: no budget).
	AttemptBudget time.Duration
	// BreakerThreshold is the number of consecutive failed exchanges
	// (transport errors, 5xx, 429) that open the client's circuit breaker;
	// while open, calls fail fast with ErrCircuitOpen instead of hammering
	// a struggling server. After BreakerCooldown one half-open probe
	// request is admitted; its outcome closes or re-opens the circuit.
	// Default 8; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects without trying
	// the network (default 1s).
	BreakerCooldown time.Duration
	// Seed seeds the jitter RNG; 0 derives a stream from the token so
	// distinct clients jitter independently. Fix it for replayable tests.
	Seed int64
	// Log, when non-nil, receives structured client-side events (poll
	// transitions, breaker open/close) stamped with the active trace id.
	Log *trace.Log
	// TraceSource mints per-poll trace ids (default: seeded from Seed when
	// set, crypto/rand otherwise). A caller-supplied context id wins.
	TraceSource *trace.Source
	// sleep / now are injectable for tests (fake clock).
	sleep func(time.Duration)
	now   func() time.Time
}

// Client is a registry API client. Safe for concurrent use.
type Client struct {
	cfg     Config
	breaker *circuit

	mu  sync.Mutex
	rng *rand.Rand
}

// New validates the config and returns a client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: empty base URL")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.Token == "" {
		return nil, fmt.Errorf("client: empty token")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		// Derive a per-client stream (FNV-1a over the token) so a fleet of
		// zero-config clients never shares one jitter sequence.
		seed = 0xcbf29ce484222325
		for i := 0; i < len(cfg.Token); i++ {
			seed = (seed ^ uint64(cfg.Token[i])) * 0x100000001b3
		}
	}
	if cfg.TraceSource == nil {
		if cfg.Seed != 0 {
			cfg.TraceSource = trace.NewSeededSource(cfg.Seed)
		} else {
			cfg.TraceSource = trace.NewSource()
		}
	}
	return &Client{
		cfg: cfg,
		breaker: &circuit{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown,
			now: cfg.now, log: cfg.Log},
		rng: rand.New(rand.NewPCG(seed, 0x6a697474)), // "jitt"
	}, nil
}

// randFloat draws one uniform jitter value from the client's seeded stream.
func (c *Client) randFloat() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// newReporterID mints a reporter identity for a Poller. With an explicit
// Seed the ID comes from the client's seeded stream (replayable tests);
// zero-config clients draw from crypto/rand, because fleet members share
// a token and the token-derived stream would hand every process the same
// IDs — colliding reporters would clobber each other's dedup baselines.
func (c *Client) newReporterID() string {
	if c.cfg.Seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			return fmt.Sprintf("r-%x", b)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("r-%016x", c.rng.Uint64())
}

// ErrCircuitOpen fails calls fast while the client's circuit breaker is
// open: the recent exchanges all failed and the cooldown has not elapsed.
// Callers serving live traffic (the Poller) treat it like any transient
// error — keep the installed incumbent and try again next cycle.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// circuit is a consecutive-failure circuit breaker with a single half-open
// probe, mirroring the per-variant quarantine breaker in internal/core at
// the protocol layer.
type circuit struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	log       *trace.Log // nil-safe; open/close transitions only

	mu        sync.Mutex
	failures  int
	openUntil time.Time
	probing   bool
}

// disabled reports whether breaking is turned off by configuration.
func (b *circuit) disabled() bool { return b.threshold < 0 }

// allow admits or rejects one exchange. probe is true when this caller
// holds the single half-open probe and must report its outcome.
func (b *circuit) allow() (probe bool, err error) {
	if b.disabled() {
		return false, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return false, nil
	}
	if now := b.now(); now.Before(b.openUntil) {
		return false, fmt.Errorf("%w (retry after %s)", ErrCircuitOpen, b.openUntil.Sub(now).Round(time.Millisecond))
	}
	// Cooldown elapsed: half-open. Admit exactly one probe; concurrent
	// callers keep failing fast until the probe reports.
	if b.probing {
		return false, fmt.Errorf("%w (half-open probe in flight)", ErrCircuitOpen)
	}
	b.probing = true
	return true, nil
}

// success reports a completed exchange (any HTTP response, including 4xx —
// the server is reachable and responsive).
func (b *circuit) success() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	wasOpen := !b.openUntil.IsZero()
	b.failures = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
	if wasOpen {
		b.log.Event(nil, "client", "breaker.close")
	}
}

// abort releases the half-open probe slot for an exchange that never
// reached the wire (request construction failed). The breaker learned
// nothing about the server, so its state is otherwise unchanged — without
// this the probe slot would stay occupied forever and every future call
// would fail fast with "probe in flight".
func (b *circuit) abort(probe bool) {
	if !probe || b.disabled() {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// failure reports a failed exchange; at threshold the circuit opens. A
// failed half-open probe re-opens immediately.
func (b *circuit) failure(probe bool) {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	wasOpen := !b.openUntil.IsZero()
	b.failures++
	tripped := probe || b.failures >= b.threshold
	if tripped {
		b.openUntil = b.now().Add(b.cooldown)
		b.probing = false
	}
	failures := b.failures
	b.mu.Unlock()
	if tripped && !wasOpen {
		b.log.Error(nil, "client", "breaker.open",
			trace.F("consecutive_failures", fmt.Sprint(failures)))
	}
}

// State reports the breaker's current admission state for observability:
// "closed", "open", or "half-open".
func (c *Client) BreakerState() string {
	b := c.breaker
	if b.disabled() {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openUntil.IsZero():
		return "closed"
	case b.now().Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}

// apiResponse is one completed exchange.
type apiResponse struct {
	status int
	header http.Header
	body   []byte
}

func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// do runs one request with retry/backoff through the circuit breaker.
// Bodies are replayed from the byte slice, so every attempt sends the full
// payload. Retry delays are fully jittered; a Retry-After hint on a
// 429/503 overrides the exponential schedule; the attempt budget (when
// configured) bounds total time spent including sleeps.
func (c *Client) do(ctx context.Context, method, path string, headers map[string]string, body []byte) (apiResponse, error) {
	start := c.cfg.now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		probe, err := c.breaker.allow()
		if err != nil {
			if lastErr != nil {
				return apiResponse{}, fmt.Errorf("%w; last failure: %v", err, lastErr)
			}
			return apiResponse{}, err
		}
		var retryAfter time.Duration
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			c.breaker.abort(probe)
			return apiResponse{}, err
		}
		req.Header.Set("Authorization", "Bearer "+c.cfg.Token)
		if id := trace.From(ctx); id != "" {
			req.Header.Set(trace.Header, id)
		}
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && !retryableStatus(resp.StatusCode) {
				c.breaker.success()
				return apiResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
			}
			c.breaker.failure(probe)
			if rerr != nil {
				lastErr = fmt.Errorf("client: %s %s: reading response: %w", method, path, rerr)
			} else {
				lastErr = fmt.Errorf("client: %s %s: status %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
				retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), c.cfg.now())
				if attempt >= c.cfg.Retries {
					return apiResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
				}
			}
		} else {
			c.breaker.failure(probe)
			lastErr = err
		}
		if attempt >= c.cfg.Retries || ctx.Err() != nil {
			return apiResponse{}, lastErr
		}
		delay := c.backoffDelay(attempt, retryAfter)
		if budget := c.cfg.AttemptBudget; budget > 0 && c.cfg.now().Sub(start)+delay > budget {
			return apiResponse{}, fmt.Errorf("client: attempt budget %v exhausted after %d attempts: %w",
				budget, attempt+1, lastErr)
		}
		c.cfg.sleep(delay)
	}
}

// backoffDelay computes the sleep before retry number attempt+1. With a
// Retry-After hint the server's figure is honored plus up to 25% jitter;
// otherwise full jitter over an exponentially growing, capped ceiling —
// uniform in [0, min(MaxBackoff, Backoff<<attempt)] — so a fleet of
// clients re-syncing after a server restart spreads out instead of
// thundering back in lockstep.
func (c *Client) backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter + time.Duration(c.randFloat()*0.25*float64(retryAfter))
	}
	ceil := c.cfg.MaxBackoff
	if shifted := c.cfg.Backoff << attempt; shifted > 0 && shifted < ceil {
		ceil = shifted
	}
	return time.Duration(c.randFloat() * float64(ceil))
}

// parseRetryAfter reads a Retry-After header: either delta-seconds or an
// HTTP-date. Unparseable or non-positive values mean "no hint".
func parseRetryAfter(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// decodeOrErr maps non-2xx responses to errors carrying the server's
// message, and decodes 2xx bodies into out (when non-nil).
func decodeOrErr(resp apiResponse, path string, out any) error {
	if resp.status < 200 || resp.status >= 300 {
		var ae struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(resp.body))
		if json.Unmarshal(resp.body, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &APIError{Status: resp.status, Path: path, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(resp.body, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// APIError is a non-2xx registry response.
type APIError struct {
	Status  int
	Path    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s: status %d: %s", e.Path, e.Status, e.Message)
}

// IsStatus reports whether err is an APIError with the given status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// RegisterFunction registers (idempotently) a function spec.
func (c *Client) RegisterFunction(ctx context.Context, spec server.FunctionSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := c.do(ctx, http.MethodPost, "/api/v1/functions", jsonHeaders, body)
	if err != nil {
		return err
	}
	return decodeOrErr(resp, "/api/v1/functions", nil)
}

var jsonHeaders = map[string]string{"Content-Type": "application/json"}

// Status fetches a function's full observable state (spec, deployment,
// drift, corpus size).
func (c *Client) Status(ctx context.Context, fn string) (server.FunctionStatus, error) {
	path := "/api/v1/functions/" + fn
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil)
	if err != nil {
		return server.FunctionStatus{}, err
	}
	var st server.FunctionStatus
	if err := decodeOrErr(resp, path, &st); err != nil {
		return server.FunctionStatus{}, err
	}
	return st, nil
}

// Deployment fetches the stable/canary deployment state of a function.
func (c *Client) Deployment(ctx context.Context, fn string) (server.Deployment, error) {
	path := "/api/v1/functions/" + fn + "/deployment"
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil)
	if err != nil {
		return server.Deployment{}, err
	}
	var dep server.Deployment
	if err := decodeOrErr(resp, path, &dep); err != nil {
		return server.Deployment{}, err
	}
	return dep, nil
}

// Pull is one model-pull result.
type Pull struct {
	// NotModified reports a 304: the caller's cached artifact is current.
	NotModified bool
	Version     int
	ETag        string
	Data        []byte
	Model       *ml.Model
}

// PullModel fetches a model artifact. version 0 selects the server's stable
// version; cachedETag, when non-empty, is sent as If-None-Match so an
// unchanged artifact costs a 304 instead of a body. The artifact bytes are
// verified against the response ETag before decoding.
func (c *Client) PullModel(ctx context.Context, fn string, version int, cachedETag string) (Pull, error) {
	path := "/api/v1/functions/" + fn + "/model"
	if version > 0 {
		path += "?version=" + strconv.Itoa(version)
	}
	headers := map[string]string{}
	if cachedETag != "" {
		headers["If-None-Match"] = cachedETag
	}
	resp, err := c.do(ctx, http.MethodGet, path, headers, nil)
	if err != nil {
		return Pull{}, err
	}
	if resp.status == http.StatusNotModified {
		return Pull{NotModified: true, ETag: cachedETag, Version: atoi(resp.header.Get("X-Nitro-Model-Version"))}, nil
	}
	if err := decodeOrErr(resp, path, nil); err != nil {
		return Pull{}, err
	}
	etag := resp.header.Get("ETag")
	m, err := ml.DecodeArtifact(resp.body, etag)
	if err != nil {
		return Pull{}, fmt.Errorf("client: pulled artifact for %q is corrupt: %w", fn, err)
	}
	return Pull{Version: atoi(resp.header.Get("X-Nitro-Model-Version")), ETag: etag, Data: resp.body, Model: m}, nil
}

func atoi(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}

// PushModel uploads an externally trained artifact. ifMatch carries the
// If-Match precondition ("" = unconditional).
func (c *Client) PushModel(ctx context.Context, fn string, data []byte, ifMatch string) (server.Deployment, error) {
	path := "/api/v1/functions/" + fn + "/model"
	headers := map[string]string{"Content-Type": "application/octet-stream"}
	if ifMatch != "" {
		headers["If-Match"] = ifMatch
	}
	resp, err := c.do(ctx, http.MethodPut, path, headers, data)
	if err != nil {
		return server.Deployment{}, err
	}
	var dep server.Deployment
	if err := decodeOrErr(resp, path, &dep); err != nil {
		return server.Deployment{}, err
	}
	return dep, nil
}

// PushObservations ships a batch of labelled samples to the fleet detector
// and returns the server's drift stats.
func (c *Client) PushObservations(ctx context.Context, fn string, samples []online.RemoteSample) (online.FleetStats, error) {
	path := "/api/v1/functions/" + fn + "/observations"
	body, err := json.Marshal(map[string]any{"samples": samples})
	if err != nil {
		return online.FleetStats{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, path, jsonHeaders, body)
	if err != nil {
		return online.FleetStats{}, err
	}
	var out struct {
		Drift online.FleetStats `json:"drift"`
	}
	if err := decodeOrErr(resp, path, &out); err != nil {
		return online.FleetStats{}, err
	}
	return out.Drift, nil
}

// Tune requests a tuning job over the server's observation corpus.
func (c *Client) Tune(ctx context.Context, fn string) (string, error) {
	path := "/api/v1/functions/" + fn + "/tune"
	resp, err := c.do(ctx, http.MethodPost, path, nil, nil)
	if err != nil {
		return "", err
	}
	var out struct {
		Job string `json:"job"`
	}
	if err := decodeOrErr(resp, path, &out); err != nil {
		return "", err
	}
	return out.Job, nil
}

// Job fetches a tune job's status.
func (c *Client) Job(ctx context.Context, id string) (autotuner.JobStatus, error) {
	path := "/api/v1/jobs/" + id
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil)
	if err != nil {
		return autotuner.JobStatus{}, err
	}
	var st autotuner.JobStatus
	if err := decodeOrErr(resp, path, &st); err != nil {
		return autotuner.JobStatus{}, err
	}
	return st, nil
}

// ReportCanary folds local challenger outcome deltas into the fleet
// aggregate and returns the server's decision plus the (possibly updated)
// deployment. The deltas are applied verbatim on every delivery, so a
// report retried after a lost response can double-count; long-lived
// pollers use ReportCanaryAs, whose cumulative totals are idempotent.
func (c *Client) ReportCanary(ctx context.Context, fn string, version int, calls, failures int64) (string, server.Deployment, error) {
	return c.reportCanary(ctx, fn, version, "", calls, failures)
}

// ReportCanaryAs reports this poller's *cumulative* challenger totals for
// the episode under a stable reporter identity. The server folds in only
// the movement past the reporter's last accepted totals, so a report
// replayed by the retry layer (applied once, response lost, body re-sent)
// is a no-op instead of a double count.
func (c *Client) ReportCanaryAs(ctx context.Context, fn string, version int, reporter string, calls, failures int64) (string, server.Deployment, error) {
	return c.reportCanary(ctx, fn, version, reporter, calls, failures)
}

func (c *Client) reportCanary(ctx context.Context, fn string, version int, reporter string, calls, failures int64) (string, server.Deployment, error) {
	path := "/api/v1/functions/" + fn + "/canary/report"
	body, err := json.Marshal(struct {
		Version  int    `json:"version"`
		Reporter string `json:"reporter,omitempty"`
		Calls    int64  `json:"calls"`
		Failures int64  `json:"failures"`
	}{version, reporter, calls, failures})
	if err != nil {
		return "", server.Deployment{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, path, jsonHeaders, body)
	if err != nil {
		return "", server.Deployment{}, err
	}
	var out struct {
		Decision   string            `json:"decision"`
		Deployment server.Deployment `json:"deployment"`
	}
	if err := decodeOrErr(resp, path, &out); err != nil {
		return "", server.Deployment{}, err
	}
	return out.Decision, out.Deployment, nil
}
