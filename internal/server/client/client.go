// Package client talks to a nitro-server model registry: registering
// function specs, pulling versioned model artifacts (ETag-cached), pushing
// observation samples, and driving the canary handshake. The Poller turns
// the registry's deployment state into local hot-swaps on a core.Context.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/ml"
	"nitro/internal/online"
	"nitro/internal/server"
)

// Config configures a registry client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Token is the tenant bearer token.
	Token string
	// HTTPClient overrides the transport (default: http.Client with a 10s
	// timeout).
	HTTPClient *http.Client
	// Retries is how many times a failed request is retried (default 2;
	// negative disables). Transport errors, 5xx and 429 retry; other
	// statuses are returned immediately.
	Retries int
	// Backoff is the first retry delay, doubled per attempt (default 100ms).
	Backoff time.Duration
	// sleep is injectable for tests.
	sleep func(time.Duration)
}

// Client is a registry API client. Safe for concurrent use.
type Client struct {
	cfg Config
}

// New validates the config and returns a client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: empty base URL")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.Token == "" {
		return nil, fmt.Errorf("client: empty token")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	return &Client{cfg: cfg}, nil
}

// apiResponse is one completed exchange.
type apiResponse struct {
	status int
	header http.Header
	body   []byte
}

func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// do runs one request with retry/backoff. Bodies are replayed from the
// byte slice, so every attempt sends the full payload.
func (c *Client) do(ctx context.Context, method, path string, headers map[string]string, body []byte) (apiResponse, error) {
	var lastErr error
	delay := c.cfg.Backoff
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return apiResponse{}, err
		}
		req.Header.Set("Authorization", "Bearer "+c.cfg.Token)
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := c.cfg.HTTPClient.Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && !retryableStatus(resp.StatusCode) {
				return apiResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
			}
			if rerr != nil {
				lastErr = rerr
			} else {
				lastErr = fmt.Errorf("client: %s %s: status %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
				if attempt >= c.cfg.Retries {
					return apiResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
				}
			}
		} else {
			lastErr = err
		}
		if attempt >= c.cfg.Retries || ctx.Err() != nil {
			return apiResponse{}, lastErr
		}
		c.cfg.sleep(delay)
		delay *= 2
	}
}

// decodeOrErr maps non-2xx responses to errors carrying the server's
// message, and decodes 2xx bodies into out (when non-nil).
func decodeOrErr(resp apiResponse, path string, out any) error {
	if resp.status < 200 || resp.status >= 300 {
		var ae struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(resp.body))
		if json.Unmarshal(resp.body, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &APIError{Status: resp.status, Path: path, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(resp.body, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// APIError is a non-2xx registry response.
type APIError struct {
	Status  int
	Path    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s: status %d: %s", e.Path, e.Status, e.Message)
}

// IsStatus reports whether err is an APIError with the given status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// RegisterFunction registers (idempotently) a function spec.
func (c *Client) RegisterFunction(ctx context.Context, spec server.FunctionSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := c.do(ctx, http.MethodPost, "/api/v1/functions", jsonHeaders, body)
	if err != nil {
		return err
	}
	return decodeOrErr(resp, "/api/v1/functions", nil)
}

var jsonHeaders = map[string]string{"Content-Type": "application/json"}

// Status fetches a function's full observable state (spec, deployment,
// drift, corpus size).
func (c *Client) Status(ctx context.Context, fn string) (server.FunctionStatus, error) {
	path := "/api/v1/functions/" + fn
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil)
	if err != nil {
		return server.FunctionStatus{}, err
	}
	var st server.FunctionStatus
	if err := decodeOrErr(resp, path, &st); err != nil {
		return server.FunctionStatus{}, err
	}
	return st, nil
}

// Deployment fetches the stable/canary deployment state of a function.
func (c *Client) Deployment(ctx context.Context, fn string) (server.Deployment, error) {
	path := "/api/v1/functions/" + fn + "/deployment"
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil)
	if err != nil {
		return server.Deployment{}, err
	}
	var dep server.Deployment
	if err := decodeOrErr(resp, path, &dep); err != nil {
		return server.Deployment{}, err
	}
	return dep, nil
}

// Pull is one model-pull result.
type Pull struct {
	// NotModified reports a 304: the caller's cached artifact is current.
	NotModified bool
	Version     int
	ETag        string
	Data        []byte
	Model       *ml.Model
}

// PullModel fetches a model artifact. version 0 selects the server's stable
// version; cachedETag, when non-empty, is sent as If-None-Match so an
// unchanged artifact costs a 304 instead of a body. The artifact bytes are
// verified against the response ETag before decoding.
func (c *Client) PullModel(ctx context.Context, fn string, version int, cachedETag string) (Pull, error) {
	path := "/api/v1/functions/" + fn + "/model"
	if version > 0 {
		path += "?version=" + strconv.Itoa(version)
	}
	headers := map[string]string{}
	if cachedETag != "" {
		headers["If-None-Match"] = cachedETag
	}
	resp, err := c.do(ctx, http.MethodGet, path, headers, nil)
	if err != nil {
		return Pull{}, err
	}
	if resp.status == http.StatusNotModified {
		return Pull{NotModified: true, ETag: cachedETag, Version: atoi(resp.header.Get("X-Nitro-Model-Version"))}, nil
	}
	if err := decodeOrErr(resp, path, nil); err != nil {
		return Pull{}, err
	}
	etag := resp.header.Get("ETag")
	m, err := ml.DecodeArtifact(resp.body, etag)
	if err != nil {
		return Pull{}, fmt.Errorf("client: pulled artifact for %q is corrupt: %w", fn, err)
	}
	return Pull{Version: atoi(resp.header.Get("X-Nitro-Model-Version")), ETag: etag, Data: resp.body, Model: m}, nil
}

func atoi(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}

// PushModel uploads an externally trained artifact. ifMatch carries the
// If-Match precondition ("" = unconditional).
func (c *Client) PushModel(ctx context.Context, fn string, data []byte, ifMatch string) (server.Deployment, error) {
	path := "/api/v1/functions/" + fn + "/model"
	headers := map[string]string{"Content-Type": "application/octet-stream"}
	if ifMatch != "" {
		headers["If-Match"] = ifMatch
	}
	resp, err := c.do(ctx, http.MethodPut, path, headers, data)
	if err != nil {
		return server.Deployment{}, err
	}
	var dep server.Deployment
	if err := decodeOrErr(resp, path, &dep); err != nil {
		return server.Deployment{}, err
	}
	return dep, nil
}

// PushObservations ships a batch of labelled samples to the fleet detector
// and returns the server's drift stats.
func (c *Client) PushObservations(ctx context.Context, fn string, samples []online.RemoteSample) (online.FleetStats, error) {
	path := "/api/v1/functions/" + fn + "/observations"
	body, err := json.Marshal(map[string]any{"samples": samples})
	if err != nil {
		return online.FleetStats{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, path, jsonHeaders, body)
	if err != nil {
		return online.FleetStats{}, err
	}
	var out struct {
		Drift online.FleetStats `json:"drift"`
	}
	if err := decodeOrErr(resp, path, &out); err != nil {
		return online.FleetStats{}, err
	}
	return out.Drift, nil
}

// Tune requests a tuning job over the server's observation corpus.
func (c *Client) Tune(ctx context.Context, fn string) (string, error) {
	path := "/api/v1/functions/" + fn + "/tune"
	resp, err := c.do(ctx, http.MethodPost, path, nil, nil)
	if err != nil {
		return "", err
	}
	var out struct {
		Job string `json:"job"`
	}
	if err := decodeOrErr(resp, path, &out); err != nil {
		return "", err
	}
	return out.Job, nil
}

// Job fetches a tune job's status.
func (c *Client) Job(ctx context.Context, id string) (autotuner.JobStatus, error) {
	path := "/api/v1/jobs/" + id
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil)
	if err != nil {
		return autotuner.JobStatus{}, err
	}
	var st autotuner.JobStatus
	if err := decodeOrErr(resp, path, &st); err != nil {
		return autotuner.JobStatus{}, err
	}
	return st, nil
}

// ReportCanary folds local challenger outcome deltas into the fleet
// aggregate and returns the server's decision plus the (possibly updated)
// deployment.
func (c *Client) ReportCanary(ctx context.Context, fn string, version int, calls, failures int64) (string, server.Deployment, error) {
	path := "/api/v1/functions/" + fn + "/canary/report"
	body, err := json.Marshal(map[string]any{"version": version, "calls": calls, "failures": failures})
	if err != nil {
		return "", server.Deployment{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, path, jsonHeaders, body)
	if err != nil {
		return "", server.Deployment{}, err
	}
	var out struct {
		Decision   string            `json:"decision"`
		Deployment server.Deployment `json:"deployment"`
	}
	if err := decodeOrErr(resp, path, &out); err != nil {
		return "", server.Deployment{}, err
	}
	return out.Decision, out.Deployment, nil
}
