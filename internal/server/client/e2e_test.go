package client

// End-to-end registry protocol test, per the serving-architecture
// acceptance criteria: two clients register against one daemon, pull a
// byte-identical versioned model, push observations that trip fleet-wide
// drift detection, follow the resulting canary through fraction-gated
// promotion, and exercise rollback on an injected failing challenger.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"nitro/internal/core"
	"nitro/internal/ml"
	"nitro/internal/online"
	"nitro/internal/server"
)

type e2eInput struct{ X float64 }

const e2eFn = "select"

// slow stands in for +Inf in pushed observations (JSON cannot carry Inf);
// any variant this slow never labels a training instance.
const slow = 1000.0

// newFleetMember builds one deployed process: a context with a 3-variant
// function ("a" wins below 4.5, "b" above, "boom" always panics) and a
// poller reconciling it against the registry.
func newFleetMember(t *testing.T, c *Client) (*core.CodeVariant[e2eInput], *core.Context, *Poller) {
	t.Helper()
	cx := core.NewContext()
	cv := core.New[e2eInput](cx, core.DefaultPolicy(e2eFn))
	cv.AddVariant("a", func(in e2eInput) float64 { return 1 + in.X })
	cv.AddVariant("b", func(in e2eInput) float64 { return 10 - in.X })
	cv.AddVariant("boom", func(in e2eInput) float64 { panic("injected challenger failure") })
	if err := cv.SetDefault("a"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(core.Feature[e2eInput]{Name: "x", Eval: func(in e2eInput) float64 { return in.X }})
	return cv, cx, NewPoller(c, cx, e2eFn)
}

// seedSamples labels the original distribution: a wins below the boundary,
// b above, boom never.
func seedSamples(n int, predicted func(x float64) int) []online.RemoteSample {
	out := make([]online.RemoteSample, n)
	for i := range out {
		x := float64(i % 10)
		times := []float64{1, 2, slow}
		if x > 4.5 {
			times = []float64{2, 1, slow}
		}
		p := -1
		if predicted != nil {
			p = predicted(x)
		}
		out[i] = online.RemoteSample{Features: []float64{x}, Times: times, Predicted: p}
	}
	return out
}

// driftedSamples is the shifted distribution: b now wins everywhere, while
// the deployed model still predicts a for small x — sustained mismatch.
func driftedSamples(n int) []online.RemoteSample {
	out := make([]online.RemoteSample, n)
	for i := range out {
		x := float64(i % 5) // small inputs, where the v1 model says a
		out[i] = online.RemoteSample{Features: []float64{x}, Times: []float64{3, 1, slow}, Predicted: 0}
	}
	return out
}

func TestEndToEndCanaryLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test")
	}
	ctx := context.Background()

	d, err := server.NewDaemon(server.Config{Registry: server.RegistryConfig{
		Tenants:           []server.TenantConfig{{Name: "fleet", Token: "tok-fleet"}},
		Workers:           1,
		MinRetrainSamples: 16,
		Drift:             online.Policy{Window: 10, DriftWindows: 2},
		Canary:            server.CanaryPolicy{Fraction: 0.5, MinSamples: 40, MaxFailureRate: 0.2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Listen through the hardened obs path, exactly like the daemon binary.
	if err := d.Start(server.Config{Addr: "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	shutdownDone := false
	defer func() {
		if !shutdownDone {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			d.Shutdown(sctx)
		}
	}()

	newClient := func() *Client {
		c, err := New(Config{BaseURL: "http://" + d.Addr(), Token: "tok-fleet"})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := newClient(), newClient()

	// Both clients register the same spec; the second registration is a
	// no-op, not a conflict.
	spec := server.FunctionSpec{Name: e2eFn, Features: []string{"x"}, Variants: []string{"a", "b", "boom"}, Default: 0}
	if err := c1.RegisterFunction(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if err := c2.RegisterFunction(ctx, spec); err != nil {
		t.Fatal(err)
	}

	cv1, cx1, p1 := newFleetMember(t, c1)
	cv2, cx2, p2 := newFleetMember(t, c2)
	_ = cx2

	// Phase 1: seed the corpus and tune the first generation.
	if _, err := c1.PushObservations(ctx, e2eFn, seedSamples(40, nil)); err != nil {
		t.Fatal(err)
	}
	job, err := c1.Tune(ctx, e2eFn)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tune job v1", func() bool {
		st, err := c1.Job(ctx, job)
		return err == nil && st.State.Terminal()
	})
	dep, err := c1.Deployment(ctx, e2eFn)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || dep.Canary != nil {
		t.Fatalf("after first tune: %+v, want stable v1 with no canary (first generation skips the gate)", dep)
	}

	// Phase 2: both clients pull — byte-identical artifacts, and a cached
	// re-pull revalidates to a 304.
	pull1, err := c1.PullModel(ctx, e2eFn, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	pull2, err := c2.PullModel(ctx, e2eFn, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pull1.Data, pull2.Data) || pull1.ETag != pull2.ETag || pull1.Version != 1 {
		t.Fatalf("fleet pulls diverge: v%d/%s vs v%d/%s", pull1.Version, pull1.ETag, pull2.Version, pull2.ETag)
	}
	if again, err := c2.PullModel(ctx, e2eFn, 0, pull2.ETag); err != nil || !again.NotModified {
		t.Fatalf("cached re-pull: %+v, %v, want a 304", again, err)
	}

	// Pollers install the stable generation; traffic dispatches through it.
	for _, p := range []*Poller{p1, p2} {
		res, err := p.PollOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !res.InstalledStable || res.StableVersion != 1 {
			t.Fatalf("poll result %+v, want stable v1 installed", res)
		}
	}
	if _, name, err := cv1.Call(e2eInput{X: 1}); err != nil || name != "a" {
		t.Fatalf("v1 dispatch: (%q, %v), want a", name, err)
	}
	if _, name, err := cv2.Call(e2eInput{X: 8}); err != nil || name != "b" {
		t.Fatalf("v1 dispatch: (%q, %v), want b", name, err)
	}

	// Phase 3: both clients push drifted observations; the pooled samples
	// trip fleet-wide drift and auto-submit a retrain, which stages v2 as a
	// canary because a stable incumbent exists.
	for i := 0; i < 4; i++ {
		if _, err := c1.PushObservations(ctx, e2eFn, driftedSamples(10)); err != nil {
			t.Fatal(err)
		}
		if _, err := c2.PushObservations(ctx, e2eFn, driftedSamples(10)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c1.Status(ctx, e2eFn)
	if err != nil {
		t.Fatal(err)
	}
	if st.Drift.Drifts == 0 {
		t.Fatalf("fleet drift not detected: %+v", st.Drift)
	}
	waitFor(t, "auto-tuned canary v2", func() bool {
		dep, err := c1.Deployment(ctx, e2eFn)
		return err == nil && dep.Canary != nil && dep.Canary.Version == 2
	})

	// Phase 4: pollers start serving the challenger at the gated fraction,
	// report fleet outcomes, and the clean challenger promotes only once the
	// fleet-wide sample floor is reached.
	for _, p := range []*Poller{p1, p2} {
		res, err := p.PollOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !res.StartedCanary || res.CanaryVersion != 2 {
			t.Fatalf("poll result %+v, want canary v2 started", res)
		}
	}
	if cs := cx1.CanaryStats(e2eFn); !cs.Active || cs.Fraction != 0.5 {
		t.Fatalf("local canary stats %+v, want active at fraction 0.5", cs)
	}

	promoted := false
	for round := 0; round < 50 && !promoted; round++ {
		for i := 0; i < 20; i++ {
			if _, _, err := cv1.Call(e2eInput{X: float64(i % 10)}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := cv2.Call(e2eInput{X: float64(i % 10)}); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range []*Poller{p1, p2} {
			res, err := p.PollOnce(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Decision == server.DecisionPromoted {
				promoted = true
			}
		}
	}
	if !promoted {
		t.Fatal("clean challenger never promoted")
	}
	// Both members converge on stable v2 with no canary serving.
	for i, p := range []*Poller{p1, p2} {
		if _, err := p.PollOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if p.StableVersion() != 2 {
			t.Fatalf("member %d stable version %d, want 2", i+1, p.StableVersion())
		}
	}
	for i, cx := range []*core.Context{cx1, cx2} {
		if cs := cx.CanaryStats(e2eFn); cs.Active {
			t.Fatalf("member %d still serving a canary after promotion: %+v", i+1, cs)
		}
	}

	// Phase 5: an injected failing challenger — a model that always picks
	// the panicking variant — is pushed as v3, serves its fraction, fails
	// every admitted call, and is rolled back fleet-wide; stable stays v2.
	badData := alwaysBoomArtifact(t)
	if _, err := c1.PushModel(ctx, e2eFn, badData, ""); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Poller{p1, p2} {
		res, err := p.PollOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !res.StartedCanary || res.CanaryVersion != 3 {
			t.Fatalf("poll result %+v, want canary v3 started", res)
		}
	}
	rolledBack := false
	for round := 0; round < 50 && !rolledBack; round++ {
		for i := 0; i < 20; i++ {
			// The runtime's fallback keeps every call succeeding even when
			// the challenger's pick panics.
			if _, _, err := cv1.Call(e2eInput{X: float64(i % 10)}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := cv2.Call(e2eInput{X: float64(i % 10)}); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range []*Poller{p1, p2} {
			res, err := p.PollOnce(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Decision == server.DecisionRolledBack {
				rolledBack = true
			}
		}
	}
	if !rolledBack {
		t.Fatal("failing challenger never rolled back")
	}
	dep, err = c1.Deployment(ctx, e2eFn)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 2 || dep.Canary != nil || dep.LastDecision != server.DecisionRolledBack {
		t.Fatalf("post-rollback deployment %+v, want stable v2, no canary", dep)
	}
	for i, p := range []*Poller{p1, p2} {
		if _, err := p.PollOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if p.StableVersion() != 2 {
			t.Fatalf("member %d stable version %d after rollback, want 2", i+1, p.StableVersion())
		}
	}
	if _, name, err := cv1.Call(e2eInput{X: 1}); err != nil || name == "boom" {
		t.Fatalf("post-rollback dispatch: (%q, %v)", name, err)
	}

	// Graceful daemon shutdown drains cleanly.
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	shutdownDone = true
}

// alwaysBoomArtifact trains a single-class model that predicts the
// panicking variant for every input.
func alwaysBoomArtifact(t *testing.T) []byte {
	t.Helper()
	ds := &ml.Dataset{}
	for x := 0.0; x < 4; x++ {
		ds.Append([]float64{x}, 2)
	}
	svm := ml.NewSVM(ml.LinearKernel{}, 1)
	if err := svm.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, _, err := ml.EncodeArtifact(&ml.Model{Classifier: svm})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
