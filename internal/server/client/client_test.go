package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(t *testing.T, url string, sleeps *[]time.Duration) *Client {
	t.Helper()
	c, err := New(Config{
		BaseURL: url,
		Token:   "tok",
		Retries: 2,
		Backoff: 10 * time.Millisecond,
		Seed:    1,
		sleep: func(d time.Duration) {
			if sleeps != nil {
				*sleeps = append(*sleeps, d)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRetryBackoff: transient 5xx responses retry with full-jittered
// exponential backoff and eventually succeed; each sleep stays inside its
// attempt's jitter ceiling.
func TestRetryBackoff(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != "Bearer tok" {
			t.Errorf("missing bearer token on attempt %d", attempts.Load())
		}
		if attempts.Add(1) <= 2 {
			http.Error(w, "temporarily down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"function":"f","stable":1,"latest":1,"last_decision":"promoted"}`))
	}))
	defer hs.Close()

	var sleeps []time.Duration
	c := testClient(t, hs.URL, &sleeps)
	dep, err := c.Deployment(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || attempts.Load() != 3 {
		t.Fatalf("deployment %+v after %d attempts, want success on the 3rd", dep, attempts.Load())
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(sleeps))
	}
	for i, ceil := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond} {
		if sleeps[i] < 0 || sleeps[i] >= ceil {
			t.Fatalf("sleep %d = %v, want full jitter in [0, %v)", i, sleeps[i], ceil)
		}
	}
}

// TestBackoffDelayTable drives the delay computation directly: jitter
// bounds, the MaxBackoff cap, and Retry-After hints overriding the
// exponential schedule (with bounded added jitter).
func TestBackoffDelayTable(t *testing.T) {
	cases := []struct {
		name       string
		backoff    time.Duration
		maxBackoff time.Duration
		attempt    int
		retryAfter time.Duration
		lo, hi     time.Duration // inclusive lower bound, exclusive upper
	}{
		{"first attempt jitters under base", 100 * time.Millisecond, 2 * time.Second, 0, 0,
			0, 100 * time.Millisecond},
		{"third attempt jitters under base<<2", 100 * time.Millisecond, 2 * time.Second, 2, 0,
			0, 400 * time.Millisecond},
		{"ceiling capped at MaxBackoff", 100 * time.Millisecond, 250 * time.Millisecond, 10, 0,
			0, 250 * time.Millisecond},
		{"retry-after honored plus <=25% jitter", 100 * time.Millisecond, 250 * time.Millisecond, 0, 2 * time.Second,
			2 * time.Second, 2*time.Second + 500*time.Millisecond},
		{"retry-after wins over tiny schedule", time.Millisecond, time.Second, 0, 4 * time.Second,
			4 * time.Second, 5 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(Config{BaseURL: "http://x", Token: "tok",
				Backoff: tc.backoff, MaxBackoff: tc.maxBackoff, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			// Many draws: every one must respect the bounds.
			for i := 0; i < 200; i++ {
				d := c.backoffDelay(tc.attempt, tc.retryAfter)
				if d < tc.lo || d >= tc.hi {
					t.Fatalf("draw %d: delay %v outside [%v, %v)", i, d, tc.lo, tc.hi)
				}
			}
		})
	}
}

// TestParseRetryAfter covers both header forms against a fixed clock.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 10 ", 10 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"garbage", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // date in the past
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.header, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestRetryAfterDrivesSleep: a 429 carrying Retry-After overrides the
// exponential schedule — the observed sleep is the server's hint plus at
// most 25% jitter, not the sub-millisecond backoff the schedule would give.
func TestRetryAfterDrivesSleep(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"function":"f","stable":1,"latest":1,"last_decision":"promoted"}`))
	}))
	defer hs.Close()

	var sleeps []time.Duration
	c, err := New(Config{BaseURL: hs.URL, Token: "tok", Retries: 1,
		Backoff: time.Microsecond, Seed: 1,
		sleep: func(d time.Duration) { sleeps = append(sleeps, d) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deployment(context.Background(), "f"); err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 1 || sleeps[0] < 2*time.Second || sleeps[0] > 2500*time.Millisecond {
		t.Fatalf("sleeps = %v, want one sleep in [2s, 2.5s] from Retry-After", sleeps)
	}
}

// TestAttemptBudget: a fake clock advanced by the sleep hook exhausts the
// total-attempt budget — the client abandons the retry loop with a typed
// message instead of sleeping past it.
func TestAttemptBudget(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "still down", http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	clock := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	c, err := New(Config{BaseURL: hs.URL, Token: "tok",
		Retries: 10, Backoff: 40 * time.Millisecond, MaxBackoff: 40 * time.Millisecond,
		AttemptBudget: 100 * time.Millisecond, Seed: 1, BreakerThreshold: -1,
		now:   func() time.Time { return clock },
		sleep: func(d time.Duration) { clock = clock.Add(d) }})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Deployment(context.Background(), "f")
	if err == nil {
		t.Fatal("budget-bounded call against a dead server succeeded")
	}
	if got := attempts.Load(); got >= 11 {
		t.Fatalf("%d attempts, want the budget to cut the retry loop short", got)
	}
	if want := "attempt budget"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err %q does not mention %q", err, want)
	}
}

// TestCircuitBreakerOpensAndProbes: consecutive failures open the circuit
// (calls fail fast with no network attempt); after the cooldown a single
// half-open probe is admitted, and its success closes the circuit.
func TestCircuitBreakerOpensAndProbes(t *testing.T) {
	var healthy atomic.Bool
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"function":"f","stable":1,"latest":1,"last_decision":"promoted"}`))
	}))
	defer hs.Close()

	clock := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	c, err := New(Config{BaseURL: hs.URL, Token: "tok",
		Retries: -1, Backoff: time.Millisecond, Seed: 1,
		BreakerThreshold: 3, BreakerCooldown: time.Second,
		now:   func() time.Time { return clock },
		sleep: func(d time.Duration) { clock = clock.Add(d) }})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Three failing exchanges trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Deployment(ctx, "f"); err == nil {
			t.Fatalf("call %d against a failing server succeeded", i)
		}
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker state %q after threshold failures, want open", st)
	}
	// While open: fail fast, no network attempt.
	before := attempts.Load()
	if _, err := c.Deployment(ctx, "f"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-circuit call returned %v, want ErrCircuitOpen", err)
	}
	if attempts.Load() != before {
		t.Fatal("open circuit still hit the network")
	}

	// Cooldown elapses; the server heals; the single probe closes the circuit.
	clock = clock.Add(2 * time.Second)
	healthy.Store(true)
	if st := c.BreakerState(); st != "half-open" {
		t.Fatalf("breaker state %q after cooldown, want half-open", st)
	}
	if _, err := c.Deployment(ctx, "f"); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker state %q after successful probe, want closed", st)
	}
}

// TestCircuitHalfOpenSingleProbe: while one probe is in flight, every
// other caller is rejected; a failed probe re-opens immediately.
func TestCircuitHalfOpenSingleProbe(t *testing.T) {
	clock := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	b := &circuit{threshold: 1, cooldown: time.Second, now: func() time.Time { return clock }}
	b.failure(false) // trip
	if _, err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("open circuit admitted a call")
	}
	clock = clock.Add(2 * time.Second)
	probe, err := b.allow()
	if err != nil || !probe {
		t.Fatalf("first half-open caller: probe=%v err=%v, want the probe", probe, err)
	}
	if _, err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	b.failure(true) // probe fails: re-open for a full cooldown
	if _, err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("circuit closed after a failed probe")
	}
	clock = clock.Add(2 * time.Second)
	if probe, err := b.allow(); err != nil || !probe {
		t.Fatalf("probe not re-admitted after second cooldown: probe=%v err=%v", probe, err)
	}
	b.success()
	if probe, err := b.allow(); err != nil || probe {
		t.Fatalf("closed circuit: probe=%v err=%v, want plain admission", probe, err)
	}
}

// TestProbeAbortOnRequestBuildError: an exchange that dies before reaching
// the wire (request construction fails after allow() granted the half-open
// probe) must release the probe slot — otherwise the breaker reports
// "probe in flight" forever and can never close.
func TestProbeAbortOnRequestBuildError(t *testing.T) {
	clock := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	c, err := New(Config{BaseURL: "http://127.0.0.1:0", Token: "tok",
		Retries: -1, BreakerThreshold: 1, BreakerCooldown: time.Second, Seed: 1,
		now:   func() time.Time { return clock },
		sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	c.breaker.failure(false) // trip the breaker
	clock = clock.Add(2 * time.Second)
	// A method with a space fails http.NewRequestWithContext — after the
	// breaker already granted this call the half-open probe.
	if _, err := c.do(context.Background(), "bad method", "/x", nil, nil); err == nil {
		t.Fatal("request with a broken method succeeded")
	}
	// The probe slot must be free again for the next caller.
	probe, err := c.breaker.allow()
	if err != nil || !probe {
		t.Fatalf("after aborted probe: probe=%v err=%v, want the slot re-admitted", probe, err)
	}
}

// TestNoRetryOnClientError: 4xx responses are terminal — no retries, and the
// server's error message surfaces in the typed APIError.
func TestNoRetryOnClientError(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"server: not found: function \"f\""}`))
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, nil)
	_, err := c.Deployment(context.Background(), "f")
	if err == nil || attempts.Load() != 1 {
		t.Fatalf("err = %v after %d attempts, want immediate failure", err, attempts.Load())
	}
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("err %v is not a 404 APIError", err)
	}
}

// TestRetriesExhausted: persistent 5xx returns the terminal status response
// after the retry budget is spent.
func TestRetriesExhausted(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "still down", http.StatusInternalServerError)
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, nil)
	_, err := c.Deployment(context.Background(), "f")
	if err == nil || attempts.Load() != 3 {
		t.Fatalf("err = %v after %d attempts, want failure after 1 try + 2 retries", err, attempts.Load())
	}
	if !IsStatus(err, http.StatusInternalServerError) {
		t.Fatalf("err %v is not a 500 APIError", err)
	}
}

// TestPullRejectsCorruptArtifact: a body that does not hash to the
// advertised ETag is refused before it can be installed.
func TestPullRejectsCorruptArtifact(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"sha256-deadbeef"`)
		w.Header().Set("X-Nitro-Model-Version", "1")
		w.Write([]byte("truncated garbage"))
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, nil)
	if _, err := c.PullModel(context.Background(), "f", 0, ""); err == nil {
		t.Fatal("corrupt artifact pull succeeded")
	}
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Token: "tok"}); err == nil {
		t.Fatal("empty base URL accepted")
	}
	if _, err := New(Config{BaseURL: "http://x"}); err == nil {
		t.Fatal("empty token accepted")
	}
}
