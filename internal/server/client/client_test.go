package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(t *testing.T, url string, sleeps *[]time.Duration) *Client {
	t.Helper()
	c, err := New(Config{
		BaseURL: url,
		Token:   "tok",
		Retries: 2,
		Backoff: 10 * time.Millisecond,
		sleep: func(d time.Duration) {
			if sleeps != nil {
				*sleeps = append(*sleeps, d)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRetryBackoff: transient 5xx responses retry with doubling backoff and
// eventually succeed; the request body is replayed on every attempt.
func TestRetryBackoff(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != "Bearer tok" {
			t.Errorf("missing bearer token on attempt %d", attempts.Load())
		}
		if attempts.Add(1) <= 2 {
			http.Error(w, "temporarily down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"function":"f","stable":1,"latest":1,"last_decision":"promoted"}`))
	}))
	defer hs.Close()

	var sleeps []time.Duration
	c := testClient(t, hs.URL, &sleeps)
	dep, err := c.Deployment(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || attempts.Load() != 3 {
		t.Fatalf("deployment %+v after %d attempts, want success on the 3rd", dep, attempts.Load())
	}
	if len(sleeps) != 2 || sleeps[0] != 10*time.Millisecond || sleeps[1] != 20*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want doubling from 10ms", sleeps)
	}
}

// TestNoRetryOnClientError: 4xx responses are terminal — no retries, and the
// server's error message surfaces in the typed APIError.
func TestNoRetryOnClientError(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"server: not found: function \"f\""}`))
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, nil)
	_, err := c.Deployment(context.Background(), "f")
	if err == nil || attempts.Load() != 1 {
		t.Fatalf("err = %v after %d attempts, want immediate failure", err, attempts.Load())
	}
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("err %v is not a 404 APIError", err)
	}
}

// TestRetriesExhausted: persistent 5xx returns the terminal status response
// after the retry budget is spent.
func TestRetriesExhausted(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "still down", http.StatusInternalServerError)
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, nil)
	_, err := c.Deployment(context.Background(), "f")
	if err == nil || attempts.Load() != 3 {
		t.Fatalf("err = %v after %d attempts, want failure after 1 try + 2 retries", err, attempts.Load())
	}
	if !IsStatus(err, http.StatusInternalServerError) {
		t.Fatalf("err %v is not a 500 APIError", err)
	}
}

// TestPullRejectsCorruptArtifact: a body that does not hash to the
// advertised ETag is refused before it can be installed.
func TestPullRejectsCorruptArtifact(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"sha256-deadbeef"`)
		w.Header().Set("X-Nitro-Model-Version", "1")
		w.Write([]byte("truncated garbage"))
	}))
	defer hs.Close()

	c := testClient(t, hs.URL, nil)
	if _, err := c.PullModel(context.Background(), "f", 0, ""); err == nil {
		t.Fatal("corrupt artifact pull succeeded")
	}
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Token: "tok"}); err == nil {
		t.Fatal("empty base URL accepted")
	}
	if _, err := New(Config{BaseURL: "http://x"}); err == nil {
		t.Fatal("empty token accepted")
	}
}
