package client

// Chaos capstone: the daemon is killed mid-canary (no drain, no
// clean-shutdown marker), restarted over the same data directory, and then
// driven to promotion through a fault-injecting transport. The acceptance
// bar is exact: the canary resumes at its recorded sample counts instead
// of aborting, promotes through injected drops / 5xx bursts / resets /
// partitions, and not one client call is dropped — every API call either
// succeeds through retries or the test fails.

import (
	"context"
	"net/http"
	"testing"
	"time"

	"nitro/internal/core"
	"nitro/internal/faultnet"
	"nitro/internal/ml"
	"nitro/internal/server"
)

const chaosFn = "chaos"

// chaosArtifact trains a 1-feature/2-class model (class 1 above the
// boundary); distinct boundaries yield distinct artifact bytes/ETags.
func chaosArtifact(t *testing.T, boundary float64) []byte {
	t.Helper()
	ds := &ml.Dataset{}
	for x := 0.0; x < 10; x++ {
		label := 0
		if x > boundary {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	svm := ml.NewSVM(ml.LinearKernel{}, 1)
	if err := svm.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, _, err := ml.EncodeArtifact(&ml.Model{Classifier: svm})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// chaosMember builds one deployed process for the chaos function.
func chaosMember(t *testing.T, c *Client) (*core.CodeVariant[e2eInput], *Poller) {
	t.Helper()
	cx := core.NewContext()
	cv := core.New[e2eInput](cx, core.DefaultPolicy(chaosFn))
	cv.AddVariant("a", func(in e2eInput) float64 { return 1 + in.X })
	cv.AddVariant("b", func(in e2eInput) float64 { return 10 - in.X })
	if err := cv.SetDefault("a"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(core.Feature[e2eInput]{Name: "x", Eval: func(in e2eInput) float64 { return in.X }})
	return cv, NewPoller(c, cx, chaosFn)
}

func TestChaosKillRestartResumePromote(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e")
	}
	ctx := context.Background()
	dataDir := t.TempDir()

	startDaemon := func() *server.Daemon {
		t.Helper()
		d, err := server.NewDaemon(server.Config{Registry: server.RegistryConfig{
			Tenants: []server.TenantConfig{{Name: "fleet", Token: "tok-fleet"}},
			Workers: 1,
			DataDir: dataDir,
			Canary:  server.CanaryPolicy{Fraction: 0.5, MinSamples: 40, MaxFailureRate: 0.2},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start(server.Config{Addr: "127.0.0.1:0"}); err != nil {
			t.Fatal(err)
		}
		return d
	}

	// --- Phase 1: stage a canary and crash mid-count ---------------------

	d1 := startDaemon()
	c1, err := New(Config{BaseURL: "http://" + d1.Addr(), Token: "tok-fleet"})
	if err != nil {
		t.Fatal(err)
	}
	spec := server.FunctionSpec{Name: chaosFn, Features: []string{"x"}, Variants: []string{"a", "b"}, Default: 0}
	if err := c1.RegisterFunction(ctx, spec); err != nil {
		t.Fatal(err)
	}
	// First generation promotes straight to stable; the second stages a
	// fraction-gated canary.
	if _, err := c1.PushModel(ctx, chaosFn, chaosArtifact(t, 4.5), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.PushModel(ctx, chaosFn, chaosArtifact(t, 6.5), ""); err != nil {
		t.Fatal(err)
	}
	// Half the gate's samples are in when the daemon dies.
	if dec, _, err := c1.ReportCanary(ctx, chaosFn, 2, 20, 1); err != nil || dec != server.DecisionPending {
		t.Fatalf("mid-canary report: (%q, %v), want pending", dec, err)
	}
	d1.Kill()

	// --- Phase 2: restart resumes the canary from the journal ------------

	d2 := startDaemon()
	stopped := false
	defer func() {
		if !stopped {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			d2.Shutdown(sctx)
		}
	}()
	rec := d2.Registry().Recovery()
	if !rec.Journal || rec.CleanShutdown || rec.ResumedCanaries != 1 || rec.CorruptTail != "" {
		t.Fatalf("recovery after kill = %+v, want 1 resumed canary from an unclean journal", rec)
	}

	// Everything from here on flows through the chaos transport: drops,
	// 5xx bursts, mid-body resets and injected latency — all seeded, all
	// absorbed by the client's retry/backoff layer.
	ft := faultnet.New(nil, faultnet.Policy{
		Seed:      42,
		DropRate:  0.10,
		Rate5xx:   0.10,
		BurstLen:  2,
		ResetRate: 0.10,
		DelayRate: 0.05,
		Delay:     time.Millisecond,
	})
	c2, err := New(Config{
		BaseURL:    "http://" + d2.Addr(),
		Token:      "tok-fleet",
		HTTPClient: &http.Client{Transport: ft},
		Retries:         8,
		Backoff:         2 * time.Millisecond,
		MaxBackoff:      20 * time.Millisecond,
		BreakerCooldown: 10 * time.Millisecond,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}

	dep, err := c2.Deployment(ctx, chaosFn)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || dep.Canary == nil || dep.Canary.Version != 2 {
		t.Fatalf("post-restart deployment %+v, want stable v1 with canary v2 live", dep)
	}
	if dep.Canary.Calls != 20 || dep.Canary.Failures != 1 {
		t.Fatalf("resumed canary counters %d/%d, want 20/1 from the journal", dep.Canary.Calls, dep.Canary.Failures)
	}

	// --- Phase 3: a partitioned poller degrades, then reconciles ---------

	cv, p := chaosMember(t, c2)
	if res, err := p.PollOnce(ctx); err != nil || !res.InstalledStable {
		t.Fatalf("first poll: (%+v, %v), want stable installed", res, err)
	}
	ft.Partition(true)
	if _, err := p.PollOnce(ctx); err == nil {
		t.Fatal("poll through a full partition succeeded")
	}
	if !p.Degraded() {
		t.Fatal("poller not degraded while partitioned")
	}
	// The member keeps serving its installed incumbent.
	if _, name, err := cv.Call(e2eInput{X: 1}); err != nil || name == "" {
		t.Fatalf("partitioned dispatch: (%q, %v)", name, err)
	}
	// On heal the first polls may still hit the opened circuit breaker;
	// reconciliation succeeds as soon as its half-open probe goes through.
	ft.Partition(false)
	var res PollResult
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err = p.PollOnce(ctx)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poller never reconciled after heal: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !res.Healed || p.Degraded() {
		t.Fatalf("post-heal poll %+v (degraded=%v), want a recorded heal", res, p.Degraded())
	}

	// --- Phase 4: promote through chaos with zero dropped calls ----------

	calls := 0
	decision := server.DecisionPending
	for decision == server.DecisionPending {
		dec, _, err := c2.ReportCanary(ctx, chaosFn, 2, 10, 0)
		calls++
		if err != nil {
			t.Fatalf("canary report %d dropped under chaos: %v", calls, err)
		}
		decision = dec
		if calls > 20 {
			t.Fatalf("canary did not settle after %d clean reports", calls)
		}
	}
	if decision != server.DecisionPromoted {
		t.Fatalf("canary decision %q, want promoted (resumed 20/1 + clean reports stay under the failure gate)", decision)
	}
	dep, err = c2.Deployment(ctx, chaosFn)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 2 || dep.Canary != nil {
		t.Fatalf("post-promotion deployment %+v, want stable v2, no canary", dep)
	}
	st := ft.Stats()
	if st.Drops+st.Faults5xx+st.Resets == 0 {
		t.Fatalf("chaos run injected no faults (%v) — the test proved nothing", st)
	}
	if st.Partitioned == 0 {
		t.Fatalf("partition phase injected nothing: %v", st)
	}

	// --- Phase 5: graceful shutdown leaves a clean journal ---------------

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d2.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	stopped = true
	d3 := startDaemon()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d3.Shutdown(sctx)
	}()
	rec = d3.Registry().Recovery()
	if !rec.CleanShutdown || rec.ResumedCanaries != 0 {
		t.Fatalf("recovery after graceful shutdown = %+v, want a clean marker and nothing to resume", rec)
	}
	if dep, err := freshDeployment(ctx, t, d3); err != nil || dep.Stable != 2 {
		t.Fatalf("post-restart deployment (%+v, %v), want stable v2", dep, err)
	}
}

// freshDeployment reads the deployment through a plain client against d.
func freshDeployment(ctx context.Context, t *testing.T, d *server.Daemon) (server.Deployment, error) {
	t.Helper()
	c, err := New(Config{BaseURL: "http://" + d.Addr(), Token: "tok-fleet"})
	if err != nil {
		t.Fatal(err)
	}
	return c.Deployment(ctx, chaosFn)
}
