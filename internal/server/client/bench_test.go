package client

import (
	"context"
	"fmt"
	"testing"

	"nitro/internal/online"
	"nitro/internal/server"
)

// benchSetup starts a daemon with one tuned function and returns a client.
func benchSetup(b *testing.B) (*Client, func()) {
	b.Helper()
	cfg := server.Config{
		Addr: "127.0.0.1:0",
		Registry: server.RegistryConfig{
			Tenants: []server.TenantConfig{{Name: "bench", Token: "tok"}},
			Workers: 1,
		},
	}
	d, err := server.NewDaemon(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(cfg); err != nil {
		b.Fatal(err)
	}
	c, err := New(Config{BaseURL: "http://" + d.Addr(), Token: "tok", Retries: -1})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	spec := server.FunctionSpec{Name: "bench-fn", Features: []string{"x"}, Variants: []string{"a", "b"}, Default: 0}
	if err := c.RegisterFunction(ctx, spec); err != nil {
		b.Fatal(err)
	}
	if _, err := c.PushObservations(ctx, "bench-fn", benchSamples(64)); err != nil {
		b.Fatal(err)
	}
	job, err := c.Tune(ctx, "bench-fn")
	if err != nil {
		b.Fatal(err)
	}
	for {
		st, err := c.Job(ctx, job)
		if err != nil {
			b.Fatal(err)
		}
		if st.State.Terminal() {
			if st.Error != "" {
				b.Fatalf("bench tune failed: %s", st.Error)
			}
			break
		}
	}
	return c, func() { d.Shutdown(context.Background()) }
}

func benchSamples(n int) []online.RemoteSample {
	out := make([]online.RemoteSample, n)
	for i := range out {
		x := float64(i % 10)
		times := []float64{1, 2}
		if x > 4.5 {
			times = []float64{2, 1}
		}
		out[i] = online.RemoteSample{Features: []float64{x}, Times: times, Predicted: 0}
	}
	return out
}

// BenchmarkPullModelCold measures a full artifact pull (body + decode +
// ETag verification) over a loopback HTTP connection.
func BenchmarkPullModelCold(b *testing.B) {
	c, stop := benchSetup(b)
	defer stop()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := c.PullModel(ctx, "bench-fn", 0, "")
		if err != nil || p.Model == nil {
			b.Fatalf("pull: %v", err)
		}
	}
}

// BenchmarkPullModelRevalidate measures the steady-state poll: an
// If-None-Match re-pull answered 304 with no body.
func BenchmarkPullModelRevalidate(b *testing.B) {
	c, stop := benchSetup(b)
	defer stop()
	ctx := context.Background()
	p, err := c.PullModel(ctx, "bench-fn", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		again, err := c.PullModel(ctx, "bench-fn", 0, p.ETag)
		if err != nil || !again.NotModified {
			b.Fatalf("revalidate: %v %+v", err, again)
		}
	}
}

// BenchmarkPushObservations measures shipping a batch of labelled samples
// through validation, rate accounting, reservoir ingest and the fleet
// drift detector, per batch size.
func BenchmarkPushObservations(b *testing.B) {
	for _, batch := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, stop := benchSetup(b)
			defer stop()
			ctx := context.Background()
			samples := benchSamples(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.PushObservations(ctx, "bench-fn", samples); err != nil {
					b.Fatalf("push: %v", err)
				}
			}
		})
	}
}
