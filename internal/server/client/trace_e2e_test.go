package client

// Trace-correlation capstone: ONE trace id enters the system at the
// poller, the daemon is killed mid-canary and restarted over the same
// data directory, and the id must still be recoverable from every
// observability surface — both daemons' slog streams, the journal WAL
// bytes on disk, the resumed canary's episode, the settled verdict on
// the deployment, and the /debug/flight ring of the surviving daemon.
// Correlation that does not survive a crash is not correlation.

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nitro/internal/core"
	"nitro/internal/obs/trace"
	"nitro/internal/server"
)

const tracedFn = "traced"
const tracedID = "t-e2e-crash-0042"

// tracedMember builds one deployed process for the traced function.
func tracedMember(t *testing.T, c *Client) (*core.CodeVariant[e2eInput], *Poller) {
	t.Helper()
	cx := core.NewContext()
	cv := core.New[e2eInput](cx, core.DefaultPolicy(tracedFn))
	cv.AddVariant("a", func(in e2eInput) float64 { return 1 + in.X })
	cv.AddVariant("b", func(in e2eInput) float64 { return 10 - in.X })
	if err := cv.SetDefault("a"); err != nil {
		t.Fatal(err)
	}
	cv.AddInputFeature(core.Feature[e2eInput]{Name: "x", Eval: func(in e2eInput) float64 { return in.X }})
	return cv, NewPoller(c, cx, tracedFn)
}

// traceLines returns the slog lines of buf that carry the given trace id.
func traceLines(buf *bytes.Buffer, id string) []string {
	var out []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, `"trace":"`+id+`"`) {
			out = append(out, line)
		}
	}
	return out
}

// hasEvent reports whether one of lines is the named slog event.
func hasEvent(lines []string, event string) bool {
	for _, line := range lines {
		if strings.Contains(line, `"msg":"`+event+`"`) {
			return true
		}
	}
	return false
}

func TestTraceSurvivesKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("trace e2e")
	}
	ctx := trace.With(context.Background(), tracedID)
	dataDir := t.TempDir()
	fixed := time.Unix(1700000000, 0).UTC()

	startDaemon := func(buf *bytes.Buffer, seed int64) *server.Daemon {
		t.Helper()
		d, err := server.NewDaemon(server.Config{
			Registry: server.RegistryConfig{
				Tenants: []server.TenantConfig{{Name: "fleet", Token: "tok-fleet"}},
				Workers: 1,
				DataDir: dataDir,
				Canary:  server.CanaryPolicy{Fraction: 0.5, MinSamples: 20, MaxFailureRate: 0.2},
			},
			Obs: server.ObsConfig{
				LogWriter: buf,
				Debug:     true,
				Clock:     func() time.Time { return fixed },
				TraceSeed: seed,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start(server.Config{Addr: "127.0.0.1:0"}); err != nil {
			t.Fatal(err)
		}
		return d
	}

	// --- Phase 1: the id enters at the poller, canary goes live ----------

	var buf1 bytes.Buffer
	d1 := startDaemon(&buf1, 5)
	var clientLog bytes.Buffer
	c1, err := New(Config{
		BaseURL: "http://" + d1.Addr(),
		Token:   "tok-fleet",
		Seed:    11,
		Log: trace.NewLog(trace.LogConfig{
			Writer: &clientLog, Level: slog.LevelDebug,
			Clock: func() time.Time { return fixed },
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := server.FunctionSpec{Name: tracedFn, Features: []string{"x"}, Variants: []string{"a", "b"}, Default: 0}
	if err := c1.RegisterFunction(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.PushModel(ctx, tracedFn, chaosArtifact(t, 4.5), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.PushModel(ctx, tracedFn, chaosArtifact(t, 6.5), ""); err != nil {
		t.Fatal(err)
	}
	_, p := tracedMember(t, c1)
	res, err := p.PollOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != tracedID {
		t.Fatalf("poll ran under trace %q, want the injected %q", res.Trace, tracedID)
	}
	if !res.InstalledStable || !res.StartedCanary {
		t.Fatalf("first poll %+v, want stable installed and canary adopted", res)
	}
	// Half the gate's samples are in when the daemon dies mid-canary.
	if dec, _, err := c1.ReportCanary(ctx, tracedFn, 2, 10, 0); err != nil || dec != server.DecisionPending {
		t.Fatalf("mid-canary report: (%q, %v), want pending", dec, err)
	}
	d1.Kill()

	// Surface: the client's own slog stream saw the poll under the id.
	cl := traceLines(&clientLog, tracedID)
	if !hasEvent(cl, "poll.start") || !hasEvent(cl, "canary.adopt") {
		t.Fatalf("client log missing poll.start/canary.adopt under %s:\n%s", tracedID, clientLog.String())
	}

	// Surface: the dead daemon's slog stream carries the whole span tree.
	l1 := traceLines(&buf1, tracedID)
	for _, event := range []string{"function.register", "model.push", "canary.start", "canary.report"} {
		if !hasEvent(l1, event) {
			t.Fatalf("pre-kill slog stream missing %q under %s:\n%s", event, tracedID, buf1.String())
		}
	}

	// Surface: the journal WAL frames on disk carry the id — that is what
	// recovery will read.
	wal, err := os.ReadFile(filepath.Join(dataDir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(wal, []byte(tracedID)) {
		t.Fatalf("journal WAL does not carry trace id %s", tracedID)
	}

	// --- Phase 2: restart re-attaches the id to the resumed episode ------

	var buf2 bytes.Buffer
	d2 := startDaemon(&buf2, 6)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d2.Shutdown(sctx)
	}()
	rec := d2.Registry().Recovery()
	if !rec.Journal || rec.CleanShutdown || rec.ResumedCanaries != 1 {
		t.Fatalf("recovery after kill = %+v, want 1 resumed canary", rec)
	}
	l2 := traceLines(&buf2, tracedID)
	if !hasEvent(l2, "canary.resume") {
		t.Fatalf("restart did not re-attach %s to the resumed canary:\n%s", tracedID, buf2.String())
	}

	// --- Phase 3: the verdict settles under the id -----------------------

	c2, err := New(Config{BaseURL: "http://" + d2.Addr(), Token: "tok-fleet", Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	dec, dep, err := c2.ReportCanary(ctx, tracedFn, 2, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec != server.DecisionPromoted {
		t.Fatalf("post-restart decision %q, want promoted (10 resumed + 10 fresh samples)", dec)
	}
	if dep.LastDecisionTrace != tracedID {
		t.Fatalf("verdict trace %q, want %q", dep.LastDecisionTrace, tracedID)
	}
	l2 = traceLines(&buf2, tracedID)
	if !hasEvent(l2, "canary.promote") {
		t.Fatalf("promotion not logged under %s:\n%s", tracedID, buf2.String())
	}

	// --- Phase 4: the flight ring still holds the id ---------------------

	resp, err := http.Get("http://" + d2.Addr() + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(dump, []byte(tracedID)) {
		t.Fatalf("/debug/flight does not carry trace id %s: %s", tracedID, dump)
	}
}
