package server

// Route-level tests against the assembled daemon handler: authentication
// and tenant isolation, registration validation, artifact preconditions
// (ETag / If-None-Match / If-Match), observation quotas, the tune job flow,
// and a -race stress of concurrent pulls during hot-swap publishes.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nitro/internal/autotuner"
	"nitro/internal/ml"
	"nitro/internal/obs"
	"nitro/internal/online"
)

func testTenants() []TenantConfig {
	return []TenantConfig{
		{Name: "acme", Token: "tok-acme"},
		{Name: "globex", Token: "tok-globex"},
	}
}

func newTestDaemon(t *testing.T, mutate func(*Config)) (*Daemon, *httptest.Server) {
	t.Helper()
	cfg := Config{Registry: RegistryConfig{Tenants: testTenants()}}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		hs.Close()
		d.Registry().Close()
	})
	return d, hs
}

func req(t *testing.T, hs *httptest.Server, method, path, token string, body []byte, headers map[string]string) *http.Response {
	t.Helper()
	r, err := http.NewRequest(method, hs.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		r.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range headers {
		r.Header.Set(k, v)
	}
	resp, err := hs.Client().Do(r)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func bodyOf(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustStatus(t *testing.T, resp *http.Response, want int) []byte {
	t.Helper()
	data := bodyOf(t, resp)
	if resp.StatusCode != want {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, want, data)
	}
	return data
}

func testSpec() FunctionSpec {
	return FunctionSpec{Name: "sort", Features: []string{"n"}, Variants: []string{"small", "large"}, Default: 0}
}

func specBody(t *testing.T, spec FunctionSpec) []byte {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// boundaryArtifact trains a 1-feature/2-class model (class 1 above the
// boundary) and returns its artifact bytes.
func boundaryArtifact(t *testing.T, boundary float64) []byte {
	t.Helper()
	ds := &ml.Dataset{}
	for x := 0.0; x < 10; x++ {
		label := 0
		if x > boundary {
			label = 1
		}
		ds.Append([]float64{x}, label)
	}
	svm := ml.NewSVM(ml.LinearKernel{}, 1)
	if err := svm.Fit(ds); err != nil {
		t.Fatal(err)
	}
	data, _, err := ml.EncodeArtifact(&ml.Model{Classifier: svm})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestAuthAndTenantIsolation(t *testing.T) {
	_, hs := newTestDaemon(t, nil)

	// No token and a bad token are both 401.
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions", "", nil, nil), http.StatusUnauthorized)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions", "wrong", nil, nil), http.StatusUnauthorized)

	// acme registers a function; globex cannot see it.
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort", "tok-acme", nil, nil), http.StatusOK)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort", "tok-globex", nil, nil), http.StatusNotFound)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort/deployment", "tok-globex", nil, nil), http.StatusNotFound)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-globex", nil, nil), http.StatusNotFound)

	// Same name in the other tenant is an independent namespace.
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-globex", specBody(t, testSpec()), nil), http.StatusCreated)
	data := mustStatus(t, req(t, hs, "GET", "/api/v1/functions", "tok-globex", nil, nil), http.StatusOK)
	if !strings.Contains(string(data), `"sort"`) {
		t.Fatalf("globex listing missing its own function: %s", data)
	}
}

func TestRegisterValidation(t *testing.T) {
	_, hs := newTestDaemon(t, nil)

	// Malformed JSON and structurally invalid specs are 400.
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", []byte(`{"name":`), nil), http.StatusBadRequest)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", []byte(`{"name":"x","unknown_field":1}`), nil), http.StatusBadRequest)
	bad := testSpec()
	bad.Variants = []string{"only"}
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, bad), nil), http.StatusBadRequest)
	bad = testSpec()
	bad.Default = 5
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, bad), nil), http.StatusBadRequest)
	bad = testSpec()
	bad.Name = "../escape"
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, bad), nil), http.StatusBadRequest)

	// Re-registering the identical spec is idempotent; a changed spec is a
	// conflict.
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
	changed := testSpec()
	changed.Features = []string{"n", "sortedness"}
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, changed), nil), http.StatusConflict)
}

func TestFunctionQuota(t *testing.T) {
	_, hs := newTestDaemon(t, func(cfg *Config) {
		cfg.Registry.Tenants = []TenantConfig{{Name: "acme", Token: "tok-acme", Quotas: Quotas{MaxFunctions: 1}}}
	})
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
	second := testSpec()
	second.Name = "other"
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, second), nil), http.StatusTooManyRequests)
}

func TestModelPullPushPreconditions(t *testing.T) {
	_, hs := newTestDaemon(t, nil)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)

	// No model yet: pull is 404, If-Match=* push is 412.
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-acme", nil, nil), http.StatusNotFound)
	mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 4.5),
		map[string]string{"If-Match": "*"}), http.StatusPreconditionFailed)

	// Unconditional first push becomes stable v1.
	data := mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 4.5), nil), http.StatusCreated)
	var dep Deployment
	if err := json.Unmarshal(data, &dep); err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || dep.Canary != nil || dep.LastDecision != DecisionPromoted {
		t.Fatalf("first push deployment = %+v, want direct promotion to v1", dep)
	}

	// Pull carries a strong ETag; If-None-Match revalidation is a 304.
	resp := req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-acme", nil, nil)
	pulled := mustStatus(t, resp, http.StatusOK)
	etag := resp.Header.Get("ETag")
	if etag == "" || ml.ETagOf(pulled) != etag {
		t.Fatalf("pull etag %q does not match body hash", etag)
	}
	if got := resp.Header.Get("X-Nitro-Model-Version"); got != "1" {
		t.Fatalf("pulled version header %q, want 1", got)
	}
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-acme", nil,
		map[string]string{"If-None-Match": etag}), http.StatusNotModified)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort/model?version=99", "tok-acme", nil, nil), http.StatusNotFound)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort/model?version=bogus", "tok-acme", nil, nil), http.StatusBadRequest)

	// A stale If-Match loses; the current ETag wins and stages a canary
	// (stable already exists). Garbage bodies are 400.
	mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 6.5),
		map[string]string{"If-Match": `"sha256-stale"`}), http.StatusPreconditionFailed)
	mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", []byte("not a model"), nil), http.StatusBadRequest)
	data = mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 6.5),
		map[string]string{"If-Match": etag}), http.StatusCreated)
	if err := json.Unmarshal(data, &dep); err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || dep.Canary == nil || dep.Canary.Version != 2 {
		t.Fatalf("second push deployment = %+v, want canary v2 over stable v1", dep)
	}
}

func observationsBatch(t *testing.T, n int, predicted int) []byte {
	t.Helper()
	samples := make([]online.RemoteSample, n)
	for i := range samples {
		x := float64(i % 10)
		times := []float64{1, 2}
		if x > 4.5 {
			times = []float64{2, 1}
		}
		samples[i] = online.RemoteSample{Features: []float64{x}, Times: times, Predicted: predicted}
	}
	data, err := json.Marshal(map[string]any{"samples": samples})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestObservationValidationAndRateLimit(t *testing.T) {
	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	advance := func(d time.Duration) {
		clockMu.Lock()
		defer clockMu.Unlock()
		now = now.Add(d)
	}
	_, hs := newTestDaemon(t, func(cfg *Config) {
		cfg.Registry.Tenants = []TenantConfig{
			{Name: "acme", Token: "tok-acme", Quotas: Quotas{SamplesPerSec: 10, SampleBurst: 20}},
		}
		cfg.Registry.Clock = func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return now
		}
	})
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)

	obsPath := "/api/v1/functions/sort/observations"
	mustStatus(t, req(t, hs, "POST", obsPath, "tok-acme", []byte(`{"samples":`), nil), http.StatusBadRequest)
	mustStatus(t, req(t, hs, "POST", obsPath, "tok-acme", []byte(`{"samples":[]}`), nil), http.StatusBadRequest)
	// Shape mismatch: 2 features registered as 1.
	badShape, _ := json.Marshal(map[string]any{"samples": []online.RemoteSample{
		{Features: []float64{1, 2}, Times: []float64{1, 2}, Predicted: 0}}})
	mustStatus(t, req(t, hs, "POST", obsPath, "tok-acme", badShape, nil), http.StatusBadRequest)

	// The burst admits 20 samples; the next batch at the same instant is
	// rate-limited, and advancing the clock refills the bucket.
	mustStatus(t, req(t, hs, "POST", obsPath, "tok-acme", observationsBatch(t, 20, 0), nil), http.StatusAccepted)
	mustStatus(t, req(t, hs, "POST", obsPath, "tok-acme", observationsBatch(t, 5, 0), nil), http.StatusTooManyRequests)
	advance(2 * time.Second) // +20 tokens
	mustStatus(t, req(t, hs, "POST", obsPath, "tok-acme", observationsBatch(t, 5, 0), nil), http.StatusAccepted)
}

func TestTuneJobFlow(t *testing.T) {
	_, hs := newTestDaemon(t, nil)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)

	// Tuning an empty corpus is a 400; jobs need observations first.
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions/sort/tune", "tok-acme", nil, nil), http.StatusBadRequest)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions/sort/observations", "tok-acme", observationsBatch(t, 40, -1), nil), http.StatusAccepted)

	data := mustStatus(t, req(t, hs, "POST", "/api/v1/functions/sort/tune", "tok-acme", nil, nil), http.StatusAccepted)
	var tuneResp struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(data, &tuneResp); err != nil || tuneResp.Job == "" {
		t.Fatalf("tune response %s: %v", data, err)
	}

	// Jobs are tenant-scoped.
	mustStatus(t, req(t, hs, "GET", "/api/v1/jobs/"+tuneResp.Job, "tok-globex", nil, nil), http.StatusNotFound)

	var st autotuner.JobStatus
	deadline := time.Now().Add(15 * time.Second)
	for {
		data := mustStatus(t, req(t, hs, "GET", "/api/v1/jobs/"+tuneResp.Job, "tok-acme", nil, nil), http.StatusOK)
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != autotuner.JobDone || st.Version != 1 {
		t.Fatalf("job status = %+v, want done at v1", st)
	}

	// First-ever version promotes directly to stable.
	data = mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort/deployment", "tok-acme", nil, nil), http.StatusOK)
	var dep Deployment
	if err := json.Unmarshal(data, &dep); err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || dep.Canary != nil {
		t.Fatalf("deployment = %+v, want stable v1, no canary", dep)
	}
}

// TestPendingJobQuota wedges the single tune worker, fills the backlog with
// one pending job, and verifies the tenant's MaxPendingJobs rejects the
// next submission with 429.
func TestPendingJobQuota(t *testing.T) {
	d, hs := newTestDaemon(t, func(cfg *Config) {
		cfg.Registry.Tenants = []TenantConfig{
			{Name: "acme", Token: "tok-acme", Quotas: Quotas{MaxPendingJobs: 1}},
		}
		cfg.Registry.Workers = 1
		cfg.Registry.QueueCapacity = 4
	})
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions/sort/observations", "tok-acme", observationsBatch(t, 10, -1), nil), http.StatusAccepted)

	// Wedge the worker with a job submitted outside the registry.
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	blocked := make(chan struct{})
	if _, err := d.Registry().jobs.Submit(autotuner.TuneJob{Function: "wedge", Done: func(autotuner.JobStatus) {
		close(blocked)
		<-gate
	}}); err != nil {
		t.Fatal(err)
	}
	<-blocked

	mustStatus(t, req(t, hs, "POST", "/api/v1/functions/sort/tune", "tok-acme", nil, nil), http.StatusAccepted)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions/sort/tune", "tok-acme", nil, nil), http.StatusTooManyRequests)
	once.Do(func() { close(gate) })
}

// TestConcurrentPullsDuringPublish races artifact pulls and deployment
// reads against a publisher that hot-swaps new versions; every pulled body
// must hash to its own ETag (no torn or stale-mixed responses).
func TestConcurrentPullsDuringPublish(t *testing.T) {
	_, hs := newTestDaemon(t, nil)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
	mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 4.5), nil), http.StatusCreated)

	stop := make(chan struct{})
	var pubWG, pullWG sync.WaitGroup
	pubWG.Add(1)
	go func() { // publisher: keeps staging new versions
		defer pubWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			boundary := 2.5 + float64(i%5)
			resp := req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, boundary), nil)
			bodyOf(t, resp)
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("publish %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		pullWG.Add(1)
		go func() {
			defer pullWG.Done()
			for i := 0; i < 50; i++ {
				resp := req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-acme", nil, nil)
				body := bodyOf(t, resp)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("pull: status %d: %s", resp.StatusCode, body)
					return
				}
				if etag := resp.Header.Get("ETag"); ml.ETagOf(body) != etag {
					t.Errorf("pull %d: body does not hash to its etag", i)
					return
				}
				if _, err := ml.DecodeArtifact(body, resp.Header.Get("ETag")); err != nil {
					t.Errorf("pull %d: %v", i, err)
					return
				}
			}
		}()
	}
	// Let the pullers finish, then stop the publisher.
	done := make(chan struct{})
	go func() { pullWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress did not finish")
	}
	close(stop)
	pubWG.Wait()
}

// TestMetricsSurface: the daemon handler serves the telemetry routes next
// to the API, and the exposition passes the repo's Prometheus lint.
func TestMetricsSurface(t *testing.T) {
	_, hs := newTestDaemon(t, nil)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)

	resp := req(t, hs, "GET", "/metrics", "", nil, nil)
	text := string(mustStatus(t, resp, http.StatusOK))
	if err := obs.ValidatePrometheusText(text); err != nil {
		t.Fatalf("metrics lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"nitro_server_requests_total", "nitro_server_functions 1",
		"nitro_server_bakeoff_promotes_total", "nitro_server_bakeoff_rejects_total",
		"nitro_server_bakeoff_timeouts_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	mustStatus(t, req(t, hs, "GET", "/healthz", "", nil, nil), http.StatusOK)
}

// TestPersistenceReload: artifacts and deployment pointers survive a daemon
// restart from DataDir. With the journal on (the default) an in-flight
// canary is resumed at its recorded gate; with DisableJournal it aborts
// back to stable (the pre-journal behavior).
func TestPersistenceReload(t *testing.T) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"journal resumes canary", false},
		{"disabled journal aborts canary", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			mutate := func(cfg *Config) {
				cfg.Registry.DataDir = dir
				cfg.Registry.DisableJournal = tc.disable
			}

			_, hs := newTestDaemon(t, mutate)
			mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
			mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 4.5), nil), http.StatusCreated)
			resp := req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-acme", nil, nil)
			first := mustStatus(t, resp, http.StatusOK)
			etag := resp.Header.Get("ETag")
			// Stage (but never settle) a canary v2.
			mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 6.5), nil), http.StatusCreated)
			hs.Close()

			_, hs2 := newTestDaemon(t, mutate)
			resp = req(t, hs2, "GET", "/api/v1/functions/sort/model", "tok-acme", nil, nil)
			reloaded := mustStatus(t, resp, http.StatusOK)
			if !bytes.Equal(first, reloaded) || resp.Header.Get("ETag") != etag {
				t.Fatal("reloaded stable artifact differs from the original")
			}
			data := mustStatus(t, req(t, hs2, "GET", "/api/v1/functions/sort/deployment", "tok-acme", nil, nil), http.StatusOK)
			var dep Deployment
			if err := json.Unmarshal(data, &dep); err != nil {
				t.Fatal(err)
			}
			if dep.Stable != 1 || dep.Latest != 2 {
				t.Fatalf("reloaded deployment = %+v, want stable v1, latest v2", dep)
			}
			if tc.disable {
				if dep.Canary != nil {
					t.Fatalf("journal disabled but canary restored: %+v", dep.Canary)
				}
			} else if dep.Canary == nil || dep.Canary.Version != 2 {
				t.Fatalf("journaled canary not resumed: %+v", dep.Canary)
			}
			// The v2 artifact is still pullable by version.
			mustStatus(t, req(t, hs2, "GET", "/api/v1/functions/sort/model?version=2", "tok-acme", nil, nil), http.StatusOK)
		})
	}
}
