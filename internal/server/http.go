package server

// HTTP/JSON API of the registry daemon, mounted under /api/v1. Every route
// requires a tenant bearer token; tenants only ever see their own
// namespace, so two tenants can register functions with the same name
// without interference. Model artifacts travel as opaque bytes with strong
// ETags: pulls honour If-None-Match (cache revalidation costs a 304, not a
// body), pushes honour If-Match (lost-update protection between racing
// publishers).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"nitro/internal/obs/trace"
	"nitro/internal/online"
)

// apiRoutes is the fixed route-name set used as histogram keys for
// nitro_server_http_request_seconds{route=...}. Cardinality is bounded by
// this list — route labels never come from request data.
var apiRoutes = []string{
	"register", "list", "status", "deployment", "pull",
	"push", "observations", "tune", "report", "job",
}

// maxBodyBytes bounds request bodies (model artifacts and observation
// batches are small; anything larger is abuse).
const maxBodyBytes = 8 << 20

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnauthorized):
		code = http.StatusUnauthorized
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		code = http.StatusConflict
	case errors.Is(err, ErrQuota):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrInvalid):
		code = http.StatusBadRequest
	case errors.Is(err, ErrPrecondition):
		code = http.StatusPreconditionFailed
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return nil
}

// shedClass ranks routes by how droppable they are under overload:
// observation pushes are pure telemetry (clients re-batch and resend),
// artifact/deployment pulls can wait a poll cycle, control-plane calls
// (registration, pushes, canary reports) are shed only at the hard cap —
// the canary lifecycle keeps converging while the fleet backs off.
type shedClass int

const (
	classObservation shedClass = iota
	classPull
	classControl
)

// shedder is a prioritized concurrent-request limiter: class thresholds
// are fractions of one shared in-flight cap, so pressure from cheap
// traffic sheds cheap traffic first.
type shedder struct {
	max      int64
	inflight atomic.Int64
	shedding atomic.Bool
	m        *serverMetrics
	log      *trace.Log // nil-safe; shed-episode transitions only
}

// threshold returns the class's admission ceiling.
func (s *shedder) threshold(class shedClass) int64 {
	switch class {
	case classObservation:
		return s.max / 2
	case classPull:
		return s.max * 3 / 4
	default:
		return s.max
	}
}

// acquire admits or sheds one request; on true the caller must release.
func (s *shedder) acquire(class shedClass) bool {
	n := s.inflight.Add(1)
	if n <= s.threshold(class) {
		return true
	}
	s.inflight.Add(-1)
	if s.shedding.CompareAndSwap(false, true) {
		// Episode transitions only, not per-shed: the log stays quiet under
		// sustained overload while the counters below carry the volume.
		s.log.Event(nil, "server", "shed.start",
			trace.F("inflight", fmt.Sprint(n)), trace.F("max", fmt.Sprint(s.max)))
	}
	switch class {
	case classObservation:
		s.m.shedObservations.Add(1)
	case classPull:
		s.m.shedPulls.Add(1)
	default:
		s.m.shedControl.Add(1)
	}
	return false
}

// release ends one admitted request; dropping back below half the lowest
// threshold after a shed episode counts as a recovery transition.
func (s *shedder) release() {
	n := s.inflight.Add(-1)
	if n < s.threshold(classObservation)/2+1 && s.shedding.CompareAndSwap(true, false) {
		s.m.shedRecoveries.Add(1)
		s.log.Event(nil, "server", "shed.end", trace.F("inflight", fmt.Sprint(n)))
	}
}

// instrument wraps a handler with the per-route observability stack:
// prioritized admission control (shed responses are 503 with a Retry-After
// hint, which the client's backoff honors — a fleet pushed away comes back
// spread out, not in a herd), trace correlation (the inbound
// X-Nitro-Trace-Id is sanitized and attached to the request context, or a
// fresh id is minted; either way the id is echoed on the response), and
// per-route latency recording into the labeled histogram family.
func (r *Registry) instrument(route string, class shedClass, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if !r.shed.acquire(class) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server: overloaded, request shed"})
			return
		}
		defer r.shed.release()
		id := trace.Sanitize(req.Header.Get(trace.Header))
		if id == "" {
			id = r.cfg.TraceSource.NewID()
		}
		w.Header().Set(trace.Header, id)
		req = req.WithContext(trace.With(req.Context(), id))
		// Per-request events are Debug: the flight ring keeps them, the
		// stream stays quiet at the Info default so the pull path is cheap.
		r.cfg.Log.Debug(req.Context(), "server", "http.request",
			trace.F("route", route), trace.F("method", req.Method))
		start := r.cfg.Clock()
		h(w, req)
		if hist := r.routeHist[route]; hist != nil {
			hist.Record(r.cfg.Clock().Sub(start).Seconds())
		}
	}
}

// APIHandler builds the authenticated API router. The handler carries no
// state of its own; everything lives in the registry.
func (r *Registry) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/functions", r.instrument("register", classControl, r.withTenant(r.handleRegister)))
	mux.HandleFunc("GET /api/v1/functions", r.instrument("list", classPull, r.withTenant(r.handleList)))
	mux.HandleFunc("GET /api/v1/functions/{fn}", r.instrument("status", classPull, r.withTenant(r.handleStatus)))
	mux.HandleFunc("GET /api/v1/functions/{fn}/deployment", r.instrument("deployment", classPull, r.withTenant(r.handleDeployment)))
	mux.HandleFunc("GET /api/v1/functions/{fn}/model", r.instrument("pull", classPull, r.withTenant(r.handlePull)))
	mux.HandleFunc("PUT /api/v1/functions/{fn}/model", r.instrument("push", classControl, r.withTenant(r.handlePush)))
	mux.HandleFunc("POST /api/v1/functions/{fn}/observations", r.instrument("observations", classObservation, r.withTenant(r.handleObservations)))
	mux.HandleFunc("POST /api/v1/functions/{fn}/tune", r.instrument("tune", classControl, r.withTenant(r.handleTune)))
	mux.HandleFunc("POST /api/v1/functions/{fn}/canary/report", r.instrument("report", classControl, r.withTenant(r.handleCanaryReport)))
	mux.HandleFunc("GET /api/v1/jobs/{id}", r.instrument("job", classControl, r.withTenant(r.handleJob)))
	return mux
}

// withTenant authenticates the bearer token and passes the tenant name on.
func (r *Registry) withTenant(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		r.metrics.requests.Add(1)
		auth := req.Header.Get("Authorization")
		token, ok := strings.CutPrefix(auth, "Bearer ")
		if !ok || token == "" {
			r.metrics.authFailures.Add(1)
			writeErr(w, fmt.Errorf("%w: missing bearer token", ErrUnauthorized))
			return
		}
		tenant, err := r.Authenticate(token)
		if err != nil {
			r.metrics.authFailures.Add(1)
			writeErr(w, err)
			return
		}
		r.mu.Lock()
		if ts := r.tenants[tenant]; ts != nil {
			ts.tm.requests.Add(1)
		}
		r.mu.Unlock()
		h(w, req, tenant)
	}
}

func (r *Registry) handleRegister(w http.ResponseWriter, req *http.Request, tenant string) {
	var spec FunctionSpec
	if err := decodeBody(req, &spec); err != nil {
		writeErr(w, err)
		return
	}
	if err := r.RegisterFunction(req.Context(), tenant, spec); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, spec)
}

func (r *Registry) handleList(w http.ResponseWriter, req *http.Request, tenant string) {
	names, err := r.Functions(tenant)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"functions": names})
}

func (r *Registry) handleStatus(w http.ResponseWriter, req *http.Request, tenant string) {
	st, err := r.Status(tenant, req.PathValue("fn"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (r *Registry) handleDeployment(w http.ResponseWriter, req *http.Request, tenant string) {
	dep, err := r.Deployment(tenant, req.PathValue("fn"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, dep)
}

// handlePull serves a model artifact. ?version=N pins a version (the poller
// pulls canary challengers this way); the default is the stable version.
// If-None-Match with the current ETag short-circuits to 304.
func (r *Registry) handlePull(w http.ResponseWriter, req *http.Request, tenant string) {
	version := 0
	if q := req.URL.Query().Get("version"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErr(w, fmt.Errorf("%w: bad version %q", ErrInvalid, q))
			return
		}
		version = v
	}
	data, etag, v, err := r.Artifact(tenant, req.PathValue("fn"), version)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Both outcomes carry the validator pair: a 304 must let the poller
	// confirm which version its cached artifact corresponds to without a
	// body, exactly as a 200 does.
	for _, cand := range strings.Split(req.Header.Get("If-None-Match"), ",") {
		if strings.TrimSpace(cand) == etag {
			r.metrics.pullsNotModified.Add(1)
			w.Header().Set("ETag", etag)
			w.Header().Set("X-Nitro-Model-Version", strconv.Itoa(v))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Nitro-Model-Version", strconv.Itoa(v))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (r *Registry) handlePush(w http.ResponseWriter, req *http.Request, tenant string) {
	data, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", ErrInvalid, err))
		return
	}
	dep, err := r.PushModel(req.Context(), tenant, req.PathValue("fn"), data, req.Header.Get("If-Match"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, dep)
}

// observationsBody is the push payload: a batch of remote samples.
type observationsBody struct {
	Samples []online.RemoteSample `json:"samples"`
}

func (r *Registry) handleObservations(w http.ResponseWriter, req *http.Request, tenant string) {
	var body observationsBody
	if err := decodeBody(req, &body); err != nil {
		writeErr(w, err)
		return
	}
	if len(body.Samples) == 0 {
		writeErr(w, fmt.Errorf("%w: empty sample batch", ErrInvalid))
		return
	}
	stats, err := r.PushObservations(req.Context(), tenant, req.PathValue("fn"), body.Samples)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"drift": stats})
}

func (r *Registry) handleTune(w http.ResponseWriter, req *http.Request, tenant string) {
	id, err := r.Tune(req.Context(), tenant, req.PathValue("fn"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"job": id})
}

func (r *Registry) handleJob(w http.ResponseWriter, req *http.Request, tenant string) {
	st, err := r.Job(tenant, req.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// canaryReportBody carries one client's challenger outcomes. With a
// reporter ID the counters are that reporter's cumulative totals for the
// episode (idempotent under retries); without one they are verbatim
// deltas.
type canaryReportBody struct {
	Version  int    `json:"version"`
	Reporter string `json:"reporter,omitempty"`
	Calls    int64  `json:"calls"`
	Failures int64  `json:"failures"`
}

func (r *Registry) handleCanaryReport(w http.ResponseWriter, req *http.Request, tenant string) {
	var body canaryReportBody
	if err := decodeBody(req, &body); err != nil {
		writeErr(w, err)
		return
	}
	decision, dep, err := r.ReportCanary(req.Context(), tenant, req.PathValue("fn"), body.Version, body.Reporter, body.Calls, body.Failures)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"decision": decision, "deployment": dep})
}
