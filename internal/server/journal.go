package server

// Durable control-plane journal: a write-ahead log of canary lifecycle
// transitions and fleet-drift detector episodes, so a daemon crash (or
// kill -9) mid-canary does not silently abort the episode. On restart the
// registry replays the journal against the artifact store and resumes the
// in-flight canary at its recorded fraction and fleet-aggregated sample
// counts — a half-finished promotion picks up where it left off instead of
// restarting the gate from zero.
//
// Records are framed [4-byte LE payload length][4-byte LE CRC32 (IEEE) of
// the payload][JSON payload] and fsync'd on append, so the journal is
// consistent up to the last completed write. A torn or corrupt tail —
// the expected artifact of dying mid-append — is quarantined to a side
// file and reported as a typed *CorruptTailError, never a panic: every
// intact prefix record still replays.
//
// The write discipline is WAL-first for decisions (the verdict is
// journaled before deployment.json is rewritten) and artifact-first for
// starts (the artifact hits disk before the canary_start record), so a
// replayed record always references on-disk state that exists.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"nitro/internal/ensemble"
	"nitro/internal/online"
)

// Journal record operations.
const (
	// opCanaryStart stages a challenger: version, gate policy, provenance.
	opCanaryStart = "canary_start"
	// opCanaryProgress carries the cumulative fleet-aggregated outcome
	// counters for the live canary (cumulative, not deltas, so replay needs
	// only the last progress record and double-replay cannot double-count),
	// plus the per-reporter baselines that dedupe retried client reports —
	// restoring them on replay keeps a report retried across a daemon crash
	// idempotent too.
	opCanaryProgress = "canary_progress"
	// opCanaryEnd settles an episode with a decision.
	opCanaryEnd = "canary_end"
	// opDrift snapshots one function's fleet drift detector (written on
	// state transitions and at shutdown drain).
	opDrift = "drift"
	// opCleanShutdown marks an orderly Close; a journal ending with it is
	// known intact without tail forensics.
	opCleanShutdown = "clean_shutdown"
)

// reporterCounts is one poller's cumulative contribution to the live
// canary episode, keyed by reporter ID both in the server's dedup map and
// in canary_progress records.
type reporterCounts struct {
	Calls    int64 `json:"calls"`
	Failures int64 `json:"failures"`
}

// journalRecord is one journal entry. A single struct covers every op;
// unused fields stay zero and are omitted from the JSON.
type journalRecord struct {
	Op       string `json:"op"`
	Tenant   string `json:"tenant,omitempty"`
	Function string `json:"fn,omitempty"`
	// Trace is the correlation id of the request (or tune job) that caused
	// this record, so a WAL grep by trace id reconstructs the control-plane
	// span tree across crashes. Optional and backward-compatible: journals
	// written before the field decode fine (Unmarshal ignores unknown
	// fields in either direction), and replay treats "" as "no trace".
	Trace string `json:"trace,omitempty"`

	// Canary fields.
	Version        int     `json:"version,omitempty"`
	ETag           string  `json:"etag,omitempty"`
	Fraction       float64 `json:"fraction,omitempty"`
	MinSamples     int64   `json:"min_samples,omitempty"`
	MaxFailureRate float64 `json:"max_failure_rate,omitempty"`
	Auto           bool    `json:"auto,omitempty"`
	Calls          int64   `json:"calls,omitempty"`
	Failures       int64   `json:"failures,omitempty"`
	Decision       string  `json:"decision,omitempty"`
	// Reporters are the per-reporter cumulative totals backing the fleet
	// counters above (canary_progress only).
	Reporters map[string]reporterCounts `json:"reporters,omitempty"`
	// Bakeoff carries the sequential paired-timing experiment's cumulative
	// state (canary_progress only; cumulative like the counters, so only
	// the last snapshot matters on replay).
	Bakeoff *ensemble.BakeoffState `json:"bakeoff,omitempty"`

	// Drift detector snapshot.
	Drift *online.FleetSnapshot `json:"drift,omitempty"`
}

// CorruptTailError reports a torn or corrupt journal tail found during
// recovery. The good prefix was replayed; the bad bytes were moved to
// QuarantinePath and the journal truncated at Offset, so the daemon keeps
// running on every record that survived.
type CorruptTailError struct {
	// Offset is the byte position of the first bad frame.
	Offset int64
	// Reason describes what failed (truncated frame, CRC mismatch, bad JSON).
	Reason string
	// QuarantinePath is where the corrupt tail bytes were preserved for
	// post-mortem ("" when preserving them failed — the error still reports
	// the corruption).
	QuarantinePath string
}

func (e *CorruptTailError) Error() string {
	return fmt.Sprintf("server: journal corrupt at offset %d: %s (tail quarantined to %s)",
		e.Offset, e.Reason, e.QuarantinePath)
}

// journalFrameLimit bounds one record's payload; anything larger is
// corruption (a drift snapshot is < 1 KiB).
const journalFrameLimit = 1 << 20

// journal is the append-side handle. Safe for concurrent use.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64

	appends int64
}

// openJournal reads an existing journal at path (creating an empty one if
// absent), returning the intact records, a non-nil *CorruptTailError when
// a bad tail was quarantined, and the open append handle positioned after
// the last good record.
func openJournal(path string) (*journal, []journalRecord, *CorruptTailError, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("server: opening journal: %w", err)
	}
	records, goodOff, corrupt, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	if corrupt != nil {
		corrupt.QuarantinePath = quarantineTail(f, path, goodOff)
		if err := f.Truncate(goodOff); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("server: truncating corrupt journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
	}
	if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return &journal{f: f, path: path, size: goodOff}, records, corrupt, nil
}

// scanJournal walks the frames from the start, returning every intact
// record, the offset just past the last good frame, and a description of
// the first bad frame (nil when the file is fully intact).
func scanJournal(f *os.File) ([]journalRecord, int64, *CorruptTailError, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, nil, err
	}
	var (
		records []journalRecord
		off     int64
		header  [8]byte
	)
	for {
		n, err := io.ReadFull(f, header[:])
		if err == io.EOF {
			return records, off, nil, nil
		}
		if err == io.ErrUnexpectedEOF {
			return records, off, &CorruptTailError{Offset: off,
				Reason: fmt.Sprintf("truncated frame header (%d of 8 bytes)", n)}, nil
		}
		if err != nil {
			return nil, 0, nil, fmt.Errorf("server: reading journal: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > journalFrameLimit {
			return records, off, &CorruptTailError{Offset: off,
				Reason: fmt.Sprintf("implausible frame length %d", length)}, nil
		}
		payload := make([]byte, length)
		if n, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, off, &CorruptTailError{Offset: off,
					Reason: fmt.Sprintf("truncated payload (%d of %d bytes)", n, length)}, nil
			}
			return nil, 0, nil, fmt.Errorf("server: reading journal: %w", err)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return records, off, &CorruptTailError{Offset: off,
				Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", sum, got)}, nil
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, off, &CorruptTailError{Offset: off,
				Reason: fmt.Sprintf("bad record JSON: %v", err)}, nil
		}
		off += 8 + int64(length)
		records = append(records, rec)
	}
}

// quarantineTail preserves the bytes from off to EOF in a side file for
// post-mortem analysis. Best effort: a quarantine failure must not stop
// recovery, so it returns "" instead of an error.
func quarantineTail(f *os.File, path string, off int64) string {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return ""
	}
	tail, err := io.ReadAll(f)
	if err != nil || len(tail) == 0 {
		return ""
	}
	qpath := path + ".quarantine"
	if err := os.WriteFile(qpath, tail, 0o644); err != nil {
		return ""
	}
	return qpath
}

// append frames, writes and fsyncs one record. The record is durable when
// append returns.
func (j *journal) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("server: journal closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("server: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("server: journal fsync: %w", err)
	}
	j.size += int64(len(frame))
	j.appends++
	return nil
}

// sizeBytes reports the journal's current on-disk size.
func (j *journal) sizeBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// rewrite compacts the journal to exactly recs: written to a temp file,
// fsync'd, and atomically renamed over the old log. History is discarded —
// recs must be the full live state (snapshot + truncate).
func (j *journal) rewrite(recs []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("server: journal closed")
	}
	tmp := j.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: journal compact: %w", err)
	}
	var size int64
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
		frame := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		copy(frame[8:], payload)
		if _, err := nf.Write(frame); err != nil {
			nf.Close()
			os.Remove(tmp)
			return fmt.Errorf("server: journal compact: %w", err)
		}
		size += int64(len(frame))
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: journal compact: %w", err)
	}
	old := j.f
	j.f = nf
	j.size = size
	old.Close()
	// Make the rename itself durable, matching the fsync-on-append
	// discipline: without the directory fsync a power loss right after
	// compaction can resurrect the pre-compaction journal.
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		return fmt.Errorf("server: journal compact: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, committing renames inside it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// close closes the append handle. Records already appended stay durable.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
