package server

// Overload-shedding tests: requests are held in-flight by handing the
// server a request body it can never finish reading (an open pipe), which
// parks the handler inside decodeBody with its shedder slot held. That
// lets the tests walk the in-flight count across the per-class thresholds
// deterministically, without goroutine races on real work.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// holdRequest issues a request whose body never completes, parking the
// handler (and its shedder slot) until the returned writer is closed.
func holdRequest(t *testing.T, hs *httptest.Server, wg *sync.WaitGroup, method, path string) *io.PipeWriter {
	t.Helper()
	pr, pw := io.Pipe()
	r, err := http.NewRequest(method, hs.URL+path, pr)
	if err != nil {
		t.Fatal(err)
	}
	r.Header.Set("Authorization", "Bearer tok-acme")
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := hs.Client().Do(r)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	return pw
}

func waitInflight(t *testing.T, reg *Registry, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.shed.inflight.Load() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("in-flight count stuck at %d, want %d", reg.shed.inflight.Load(), want)
}

func TestLoadSheddingPriorities(t *testing.T) {
	d, hs := newTestDaemon(t, func(cfg *Config) {
		cfg.Registry.MaxInflight = 4 // thresholds: observations 2, pulls 3, control 4
	})
	reg := d.Registry()
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)

	var wg sync.WaitGroup
	var pipes []*io.PipeWriter
	defer func() {
		for _, pw := range pipes {
			pw.Close()
		}
		wg.Wait()
	}()

	// Fill the observation class to its threshold (2 of 4).
	obsPath := "/api/v1/functions/sort/observations"
	pipes = append(pipes, holdRequest(t, hs, &wg, "POST", obsPath))
	pipes = append(pipes, holdRequest(t, hs, &wg, "POST", obsPath))
	waitInflight(t, reg, 2)

	// Third observation push is shed with a Retry-After hint; pulls and
	// control still get through.
	resp := req(t, hs, "POST", obsPath, "tok-acme", []byte(`{"samples":[]}`), nil)
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	mustStatus(t, resp, http.StatusServiceUnavailable)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort", "tok-acme", nil, nil), http.StatusOK)

	// One more held slot (a control-class registration) pushes in-flight to
	// 3: pulls now shed, control is still admitted.
	pipes = append(pipes, holdRequest(t, hs, &wg, "POST", "/api/v1/functions"))
	waitInflight(t, reg, 3)
	mustStatus(t, req(t, hs, "GET", "/api/v1/functions/sort", "tok-acme", nil, nil), http.StatusServiceUnavailable)
	mustStatus(t, req(t, hs, "GET", "/api/v1/jobs/nope", "tok-acme", nil, nil), http.StatusNotFound)

	// At the hard cap even control-plane calls shed.
	pipes = append(pipes, holdRequest(t, hs, &wg, "POST", "/api/v1/functions"))
	waitInflight(t, reg, 4)
	mustStatus(t, req(t, hs, "GET", "/api/v1/jobs/nope", "tok-acme", nil, nil), http.StatusServiceUnavailable)

	if got := reg.metrics.shedObservations.Load(); got != 1 {
		t.Errorf("shed observations = %d, want 1", got)
	}
	if got := reg.metrics.shedPulls.Load(); got != 1 {
		t.Errorf("shed pulls = %d, want 1", got)
	}
	if got := reg.metrics.shedControl.Load(); got != 1 {
		t.Errorf("shed control = %d, want 1", got)
	}

	// Releasing the held requests drains the server back below half the
	// observation threshold, which counts exactly one recovery transition.
	for _, pw := range pipes {
		pw.Close()
	}
	pipes = nil
	wg.Wait()
	waitInflight(t, reg, 0)
	if got := reg.metrics.shedRecoveries.Load(); got != 1 {
		t.Errorf("shed recoveries = %d, want 1", got)
	}
}

// TestShedBeforeAuth proves shedding is the outermost layer: a shed
// request costs no auth work and no registry lock.
func TestShedBeforeAuth(t *testing.T) {
	d, hs := newTestDaemon(t, func(cfg *Config) {
		cfg.Registry.MaxInflight = 2 // observation threshold 1
	})
	reg := d.Registry()

	var wg sync.WaitGroup
	pw := holdRequest(t, hs, &wg, "POST", "/api/v1/functions/sort/observations")
	defer func() {
		pw.Close()
		wg.Wait()
	}()
	waitInflight(t, reg, 1)

	before := reg.metrics.authFailures.Load()
	// No token at all: a shed response must win over the 401.
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions/sort/observations", "", nil, nil), http.StatusServiceUnavailable)
	if got := reg.metrics.authFailures.Load(); got != before {
		t.Errorf("auth ran on a shed request (failures %d -> %d)", before, got)
	}
}
