package server

// Route-level tests for the observability plane: the version/validator
// headers on both pull outcomes, trace-id echo and hostile-header
// sanitization, and the labeled metrics surface (per-tenant counters,
// per-route histograms, recovery gauges) staying inside the exposition
// lint.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"nitro/internal/obs"
	"nitro/internal/obs/trace"
)

// TestPullVersionHeaderOn200And304: both pull outcomes must carry the
// validator pair — a 304 that omitted X-Nitro-Model-Version would leave
// the poller unable to confirm which version its cache corresponds to.
func TestPullVersionHeaderOn200And304(t *testing.T) {
	_, hs := newTestDaemon(t, nil)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
	mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 4.5), nil), http.StatusCreated)

	full := req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-acme", nil, nil)
	etag := full.Header.Get("ETag")
	if full.StatusCode != http.StatusOK || etag == "" || full.Header.Get("X-Nitro-Model-Version") != "1" {
		t.Fatalf("200 pull: status=%d etag=%q version=%q", full.StatusCode, etag, full.Header.Get("X-Nitro-Model-Version"))
	}
	bodyOf(t, full)

	cached := req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-acme", nil,
		map[string]string{"If-None-Match": etag})
	bodyOf(t, cached)
	if cached.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", cached.StatusCode)
	}
	if got := cached.Header.Get("X-Nitro-Model-Version"); got != "1" {
		t.Fatalf("304 X-Nitro-Model-Version = %q, want \"1\"", got)
	}
	if got := cached.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}
}

// TestTraceHeaderEchoAndSanitize: a well-formed inbound trace id is
// echoed; a hostile one (injection bytes) is replaced with a freshly
// minted id; an absent one is minted. The response always carries the id
// the request ran under.
func TestTraceHeaderEchoAndSanitize(t *testing.T) {
	_, hs := newTestDaemon(t, nil)

	good := req(t, hs, "GET", "/api/v1/functions", "tok-acme", nil,
		map[string]string{trace.Header: "my-trace_01.a"})
	bodyOf(t, good)
	if got := good.Header.Get(trace.Header); got != "my-trace_01.a" {
		t.Fatalf("well-formed trace id not echoed: %q", got)
	}

	hostile := req(t, hs, "GET", "/api/v1/functions", "tok-acme", nil,
		map[string]string{trace.Header: "evil{injection}"})
	bodyOf(t, hostile)
	got := hostile.Header.Get(trace.Header)
	if got == "" || got == "evil{injection}" || trace.Sanitize(got) == "" {
		t.Fatalf("hostile trace id handling: got %q, want a freshly minted clean id", got)
	}

	absent := req(t, hs, "GET", "/api/v1/functions", "tok-acme", nil, nil)
	bodyOf(t, absent)
	if got := absent.Header.Get(trace.Header); got == "" || trace.Sanitize(got) == "" {
		t.Fatalf("no minted trace id on bare request: %q", got)
	}
}

// TestLabeledMetricsSurface: after real traffic the scrape must pass the
// full exposition lint and carry the per-tenant counters, the per-route
// latency histograms and the recovery gauges.
func TestLabeledMetricsSurface(t *testing.T) {
	_, hs := newTestDaemon(t, nil)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)
	mustStatus(t, req(t, hs, "PUT", "/api/v1/functions/sort/model", "tok-acme", boundaryArtifact(t, 4.5), nil), http.StatusCreated)
	bodyOf(t, req(t, hs, "GET", "/api/v1/functions/sort/model", "tok-acme", nil, nil))
	bodyOf(t, req(t, hs, "GET", "/api/v1/functions", "tok-globex", nil, nil))

	text := string(mustStatus(t, req(t, hs, "GET", "/metrics", "", nil, nil), http.StatusOK))
	if err := obs.ValidatePrometheusText(text); err != nil {
		t.Fatalf("scrape fails exposition lint: %v", err)
	}
	for _, want := range []string{
		`nitro_server_tenant_requests_total{tenant="acme"}`,
		`nitro_server_tenant_requests_total{tenant="globex"}`,
		`nitro_server_tenant_artifact_pulls_total{tenant="acme"} 1`,
		`nitro_server_http_request_seconds_bucket{route="pull",le="+Inf"} 1`,
		`nitro_server_http_request_seconds_bucket{route="push",le="+Inf"} 1`,
		"nitro_server_recovery_clean_shutdown",
		"nitro_server_recovery_resumed_canaries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %s", want)
		}
	}

	// The recovery report is also a /vars JSON block.
	vars := mustStatus(t, req(t, hs, "GET", "/vars", "", nil, nil), http.StatusOK)
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(vars, &doc); err != nil {
		t.Fatalf("/vars unparsable: %v", err)
	}
	raw, ok := doc["recovery"]
	if !ok {
		t.Fatalf("/vars missing recovery block: %s", vars)
	}
	var rep RecoveryReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("recovery block unparsable: %v", err)
	}
	if rep.Journal {
		t.Fatalf("in-memory daemon reports an active journal: %+v", rep)
	}
}

// TestFlightEndpoint: /debug/flight serves the ring as wall-clock-free
// JSON and scraping it twice returns identical bytes — forensics must not
// perturb the evidence.
func TestFlightEndpoint(t *testing.T) {
	_, hs := newTestDaemon(t, nil)
	mustStatus(t, req(t, hs, "POST", "/api/v1/functions", "tok-acme", specBody(t, testSpec()), nil), http.StatusCreated)

	first := mustStatus(t, req(t, hs, "GET", "/debug/flight", "", nil, nil), http.StatusOK)
	second := mustStatus(t, req(t, hs, "GET", "/debug/flight", "", nil, nil), http.StatusOK)
	if string(first) != string(second) {
		t.Fatalf("flight dump not idempotent:\n%s\nvs\n%s", first, second)
	}
	var dump struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Seq  uint64 `json:"seq"`
			Name string `json:"event"`
		} `json:"events"`
	}
	if err := json.Unmarshal(first, &dump); err != nil {
		t.Fatalf("flight dump unparsable: %v\n%s", err, first)
	}
	if dump.Recorded == 0 {
		t.Fatalf("flight ring empty after traffic: %s", first)
	}
	if strings.Contains(string(first), `"time"`) {
		t.Fatalf("flight dump carries wall-clock: %s", first)
	}
	found := false
	for _, e := range dump.Events {
		if e.Name == "function.register" {
			found = true
		}
	}
	if !found {
		t.Fatalf("flight ring missing the register transition: %s", first)
	}
}

// TestPprofOptIn: the profiling surface is absent by default and mounted
// only when ObsConfig.Profiling is set.
func TestPprofOptIn(t *testing.T) {
	_, plain := newTestDaemon(t, nil)
	resp := req(t, plain, "GET", "/debug/pprof/", "", nil, nil)
	bodyOf(t, resp)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof surface mounted without opt-in")
	}

	_, profiled := newTestDaemon(t, func(cfg *Config) { cfg.Obs.Profiling = true })
	resp = req(t, profiled, "GET", "/debug/pprof/", "", nil, nil)
	bodyOf(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d with profiling on, want 200", resp.StatusCode)
	}
	text := string(mustStatus(t, req(t, profiled, "GET", "/metrics", "", nil, nil), http.StatusOK))
	if !strings.Contains(text, "nitro_runtime_goroutines") {
		t.Fatal("runtime series missing with profiling on")
	}
	if err := obs.ValidatePrometheusText(text); err != nil {
		t.Fatalf("profiled scrape fails lint: %v", err)
	}
}
