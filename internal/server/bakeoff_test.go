package server

// Sequential canary bakeoff tests: the observation stream settles a live
// canary episode through the paired-timing stopper — promoting a genuinely
// faster challenger in far fewer samples than the failure-rate gate's
// MinSamples budget, rejecting a slower one with the stable untouched, and
// surviving a kill -9 mid-experiment with the journaled state converging
// to the same verdict on the remaining stream.

import (
	"context"
	"testing"

	"nitro/internal/ensemble"
	"nitro/internal/ml"
	"nitro/internal/online"
)

// seqConfig wires a sequential bakeoff into the registry config used by
// newJournalRegistry.
func seqConfig(seq ensemble.BakeoffConfig) func(*RegistryConfig) {
	return func(cfg *RegistryConfig) {
		cfg.Canary = CanaryPolicy{MinSamples: 50, Sequential: &seq}
	}
}

// stageBakeoffCanary registers the test function and stages v1 (stable,
// boundary 4.5) against a v2 challenger (boundary 2.5), then sanity-checks
// that the two models genuinely disagree on the disagreement region the
// sample generators use — the fixture is self-validating.
func stageBakeoffCanary(t *testing.T, r *Registry) {
	t.Helper()
	if err := r.RegisterFunction(context.Background(), "acme", testSpec()); err != nil {
		t.Fatal(err)
	}
	v1 := boundaryArtifact(t, 4.5)
	v2 := boundaryArtifact(t, 2.5)
	if _, err := r.PushModel(context.Background(), "acme", "sort", v1, ""); err != nil {
		t.Fatal(err)
	}
	dep, err := r.PushModel(context.Background(), "acme", "sort", v2, "")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Canary == nil || dep.Canary.Version != 2 {
		t.Fatalf("deployment after second push = %+v, want live v2 canary", dep)
	}
	inc, err := ml.DecodeArtifact(v1, "")
	if err != nil {
		t.Fatal(err)
	}
	chal, err := ml.DecodeArtifact(v2, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{3, 3.5, 4} {
		if pi, pc := inc.Predict([]float64{x}), chal.Predict([]float64{x}); pi != 0 || pc != 1 {
			t.Fatalf("fixture models do not disagree at x=%v: incumbent %d challenger %d", x, pi, pc)
		}
	}
}

// pairedStream returns n samples in the models' disagreement region whose
// timing vectors make the challenger's pick (variant 1) faster or slower
// than the incumbent's (variant 0) by a varying margin — non-degenerate
// paired deltas, so the stopper exercises the real t statistic rather than
// the zero-variance shortcut. Predicted is -1: the drift detector labels
// the corpus but sees no mismatch signal, keeping the episode's fate in
// the bakeoff's hands alone.
func pairedStream(n int, challengerFaster bool) []online.RemoteSample {
	xs := []float64{3, 3.5, 4}
	fast := []float64{0.55, 0.6, 0.65}
	samples := make([]online.RemoteSample, 0, n)
	for i := 0; i < n; i++ {
		times := []float64{1.0, fast[i%len(fast)]}
		if !challengerFaster {
			times[0], times[1] = times[1], times[0]
		}
		samples = append(samples, online.RemoteSample{
			Features:  []float64{xs[i%len(xs)]},
			Times:     times,
			Predicted: -1,
		})
	}
	return samples
}

// TestBakeoffPromotesFasterChallenger: consistently positive paired deltas
// promote the challenger as soon as the t bound clears — at the bakeoff's
// MinSamples floor, well under the failure-rate gate's 50-sample budget.
func TestBakeoffPromotesFasterChallenger(t *testing.T) {
	r := newJournalRegistry(t, t.TempDir(),
		seqConfig(ensemble.BakeoffConfig{MinSamples: 8, MaxSamples: 100, Z: 2, MinEffect: 0.005}))
	defer r.Close()
	stageBakeoffCanary(t, r)

	fed := 0
	for _, batch := range [][]online.RemoteSample{pairedStream(4, true), pairedStream(4, true)} {
		if _, err := r.PushObservations(context.Background(), "acme", "sort", batch); err != nil {
			t.Fatal(err)
		}
		fed += len(batch)
	}
	dep, err := r.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 2 || dep.Canary != nil || dep.LastDecision != DecisionPromoted {
		t.Fatalf("deployment after %d paired samples = %+v, want v2 promoted with no live canary", fed, dep)
	}
	if fed >= 50 {
		t.Fatalf("promotion took %d samples, want fewer than the failure-rate gate's 50", fed)
	}
	if got := r.metrics.bakeoffPromotes.Load(); got != 1 {
		t.Fatalf("bakeoffPromotes = %d, want 1", got)
	}
}

// TestBakeoffRejectsSlowerChallenger: consistently negative deltas settle
// the episode as a rollback — the stable version never moves.
func TestBakeoffRejectsSlowerChallenger(t *testing.T) {
	r := newJournalRegistry(t, t.TempDir(),
		seqConfig(ensemble.BakeoffConfig{MinSamples: 8, MaxSamples: 100, Z: 2, MinEffect: 0.005}))
	defer r.Close()
	stageBakeoffCanary(t, r)

	if _, err := r.PushObservations(context.Background(), "acme", "sort", pairedStream(10, false)); err != nil {
		t.Fatal(err)
	}
	dep, err := r.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || dep.Canary != nil || dep.LastDecision != DecisionRolledBack {
		t.Fatalf("deployment = %+v, want v1 stable and the challenger rolled back", dep)
	}
	if got := r.metrics.bakeoffRejects.Load(); got != 1 {
		t.Fatalf("bakeoffRejects = %d, want 1", got)
	}
}

// TestBakeoffTimeoutRollsBack: a statistically clear but practically
// irrelevant speedup (MinEffect above the observed mean) exhausts the
// sample budget undecided; the incumbent stays.
func TestBakeoffTimeoutRollsBack(t *testing.T) {
	r := newJournalRegistry(t, t.TempDir(),
		seqConfig(ensemble.BakeoffConfig{MinSamples: 4, MaxSamples: 10, Z: 2, MinEffect: 0.99}))
	defer r.Close()
	stageBakeoffCanary(t, r)

	if _, err := r.PushObservations(context.Background(), "acme", "sort", pairedStream(12, true)); err != nil {
		t.Fatal(err)
	}
	dep, err := r.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != 1 || dep.Canary != nil || dep.LastDecision != DecisionRolledBack {
		t.Fatalf("deployment = %+v, want timeout to keep v1 stable", dep)
	}
	if got := r.metrics.bakeoffTimeouts.Load(); got != 1 {
		t.Fatalf("bakeoffTimeouts = %d, want 1", got)
	}
}

// TestBakeoffResumesAfterKill: a daemon killed mid-experiment restarts,
// replays the journaled paired-sample state at its exact count, and
// converges to the same verdict as an uninterrupted run on the same
// stream.
func TestBakeoffResumesAfterKill(t *testing.T) {
	seq := ensemble.BakeoffConfig{MinSamples: 16, MaxSamples: 100, Z: 2, MinEffect: 0.005}

	// Uninterrupted twin: the whole 16-sample stream in one daemon life.
	twin := newJournalRegistry(t, t.TempDir(), seqConfig(seq))
	defer twin.Close()
	stageBakeoffCanary(t, twin)
	if _, err := twin.PushObservations(context.Background(), "acme", "sort", pairedStream(16, true)); err != nil {
		t.Fatal(err)
	}
	twinDep, err := twin.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}

	// Crashed run: half the stream, kill -9, restart, the other half.
	dir := t.TempDir()
	r := newJournalRegistry(t, dir, seqConfig(seq))
	stageBakeoffCanary(t, r)
	if _, err := r.PushObservations(context.Background(), "acme", "sort", pairedStream(16, true)[:8]); err != nil {
		t.Fatal(err)
	}
	dep, err := r.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Canary == nil || dep.Canary.BakeoffSamples != 8 {
		t.Fatalf("pre-kill canary = %+v, want a live bakeoff with 8 paired samples", dep.Canary)
	}
	r.kill()

	r2 := newJournalRegistry(t, dir, seqConfig(seq))
	defer r2.Close()
	rec := r2.Recovery()
	if rec.CleanShutdown || rec.ResumedCanaries != 1 || rec.TailError != nil {
		t.Fatalf("recovery %+v, want one resumed canary from an unclean shutdown", rec)
	}
	dep, err = r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Canary == nil || dep.Canary.BakeoffSamples != 8 {
		t.Fatalf("resumed canary = %+v, want the bakeoff restored at 8 paired samples", dep.Canary)
	}
	if dep.Canary.BakeoffMean <= 0 {
		t.Fatalf("resumed bakeoff mean = %v, want the positive running mean restored", dep.Canary.BakeoffMean)
	}
	if _, err := r2.PushObservations(context.Background(), "acme", "sort", pairedStream(16, true)[8:]); err != nil {
		t.Fatal(err)
	}
	dep, err = r2.Deployment("acme", "sort")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Stable != twinDep.Stable || dep.LastDecision != twinDep.LastDecision {
		t.Fatalf("post-resume verdict (stable %d, %s) differs from uninterrupted run (stable %d, %s)",
			dep.Stable, dep.LastDecision, twinDep.Stable, twinDep.LastDecision)
	}
	if dep.Stable != 2 || dep.LastDecision != DecisionPromoted {
		t.Fatalf("deployment = %+v, want the resumed bakeoff to promote v2", dep)
	}
	if got := r2.metrics.bakeoffPromotes.Load(); got != 1 {
		t.Fatalf("bakeoffPromotes after resume = %d, want 1", got)
	}
}
